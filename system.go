// Package resilientos is a deterministic, full-system simulation of the
// failure-resilient operating system of Herder et al., "Failure Resilience
// for Device Drivers" (DSN 2007): a MINIX 3-like microkernel OS whose
// drivers and servers run as isolated processes guarded by a reincarnation
// server, with policy-driven recovery, a publish/subscribe data store for
// post-restart reintegration, and transparent recovery of network and
// block device drivers.
//
// A System boots the whole stack — microkernel, process manager, data
// store, reincarnation server, network server(s), file servers, device
// drivers, and simulated hardware — in virtual time. Applications are
// spawned as simulated processes and use the socket/file libraries;
// drivers can be killed, fault-injected, or dynamically updated while I/O
// is in progress, and the recovery machinery masks the failures exactly
// as the paper describes.
//
//	sys := resilientos.New(resilientos.Config{})
//	sys.Spawn("app", func(p *resilientos.Proc) {
//		conn, _ := p.Dial(resilientos.NetLocal, resilientos.DriverRTL8139, 80)
//		...
//	})
//	sys.Every(2*time.Second, func() { sys.KillDriver(resilientos.DriverRTL8139) })
//	sys.Run(time.Minute)
package resilientos

import (
	"io"
	"time"

	"resilientos/internal/core"
	"resilientos/internal/drivers/chardrv"
	"resilientos/internal/drivers/dp8390"
	"resilientos/internal/drivers/ramdisk"
	"resilientos/internal/drivers/rtl8139"
	"resilientos/internal/drivers/sata"
	"resilientos/internal/hw"
	"resilientos/internal/inet"
	"resilientos/internal/kernel"
	"resilientos/internal/mfs"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
	"resilientos/internal/obs/timeseries"
	"resilientos/internal/perf"
	"resilientos/internal/policy"
	"resilientos/internal/proc"
	"resilientos/internal/ucode"
	"resilientos/internal/vfs"

	"resilientos/internal/ds"
	"resilientos/internal/sim"
)

// Stable driver and server labels of the standard system.
const (
	DriverRTL8139 = "eth.rtl8139" // network driver on NIC0 (Fig. 7 target)
	DriverDP8390  = "eth.dp8390"  // network driver on NIC1 (§7.2 target)
	DriverSATA    = "disk.sata"   // block driver (Fig. 8 target)
	DriverRAMDisk = "disk.ram"    // trusted RAM disk
	DriverAudio   = "chr.audio"
	DriverPrinter = "chr.printer"
	DriverBurner  = "chr.burner"

	ServerInet       = "inet"  // local network server
	ServerRemoteInet = "rinet" // the remote peer's network server
	ServerMFS        = "mfs"   // file server
	ServerVFS        = "vfs"   // virtual file system

	remoteDriver0 = "reth.0" // remote peer's driver on NIC0's wire
	remoteDriver1 = "reth.1" // remote peer's driver on NIC1's wire
)

// NetSide selects which network server an application talks to.
type NetSide int

// Network sides.
const (
	NetLocal  NetSide = iota + 1 // the simulated OS under test
	NetRemote                    // the remote peer ("the Internet")
)

// Config configures a System. The zero value boots the standard machine.
type Config struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Trace, if set, receives the virtual-time event log.
	Trace io.Writer
	// Obs, if set, is wired into the kernel and simulation engine: every
	// instrumented layer emits structured trace events and metrics through
	// it. Nil (the default) keeps all instrumentation free.
	Obs *obs.Recorder
	// Decisions, if set, receives the reincarnation server's recovery
	// decision trace (internal/obs/decision). Nil keeps the RS decision
	// points free.
	Decisions *decision.Recorder
	// Perf, if set, attaches wall-clock telemetry for the simulator
	// itself (internal/perf): scheduler step loop, kernel IPC dispatch,
	// driver ucode VMs, and the obs/decision recorders all report cost
	// into it. Strictly wall-clock: virtual-time results are identical
	// with and without it. Nil (the default) keeps every hook free.
	Perf *perf.Profiler
	// Machine tunes the simulated hardware.
	Machine hw.MachineConfig

	// HeartbeatPeriod for driver liveness pings (default 500ms; 0 keeps
	// the default, negative disables heartbeats).
	HeartbeatPeriod time.Duration
	// HeartbeatMisses is N consecutive misses before a driver is declared
	// stuck (default 3).
	HeartbeatMisses int

	// NetPolicy optionally attaches a recovery policy script (and its
	// parameters) to the network drivers. Disk drivers never get one
	// (§6.2: they are restarted directly from RAM).
	NetPolicy       *policy.Script
	NetPolicyParams []string

	// MaxRestarts bounds consecutive recoveries per driver (0 = forever).
	MaxRestarts int

	// Mechanism selects the recovery mechanism for the guarded ucode
	// drivers (eth.rtl8139, eth.dp8390, disk.sata, disk.ram): classic
	// kill-and-respawn (the zero value), in-place microreboot, or a warm
	// standby replica promoted on failure. Drivers without the matching
	// hooks fall back to respawn behavior transparently.
	Mechanism core.Mechanism
	// Salvage enables the crash-consistent state-capsule handshake: on a
	// clean shutdown a driver flushes a small versioned capsule to the
	// data store, and its successor validates-then-adopts it instead of
	// cold-starting.
	Salvage bool

	// PreallocFiles are materialized by mkfs with pseudo-random content
	// already "on disk" — e.g. the Fig. 8 experiment's 1-GB random file.
	PreallocFiles []PreallocFile

	// DisableNet / DisableDisk / DisableChar skip subsystems to speed up
	// focused experiments.
	DisableNet  bool
	DisableDisk bool
	DisableChar bool

	// RTOInit overrides TCP's initial retransmission timeout.
	RTOInit time.Duration

	// MFSPollInterval switches the file server's driver reintegration
	// from data-store publish/subscribe to periodic polling (ablation
	// benchmarks only; 0 = the paper's pub-sub design).
	MFSPollInterval time.Duration
}

// System is a booted instance of the failure-resilient OS plus its
// hardware and remote peer.
type System struct {
	Env     *sim.Env
	Kernel  *kernel.Kernel
	Machine *hw.Machine
	RS      *core.RS
	DS      *ds.DS // data-store server handle (naming-table inspection)

	PMEp kernel.Endpoint
	DSEp kernel.Endpoint

	LocalInet  *inet.Server
	RemoteInet *inet.Server
	MFS        *mfs.Server
	VFS        *vfs.Server
	RAMStore   *ramdisk.Store

	cfg Config
	vms map[string]*ucode.VM // live driver VMs, by label
}

// New boots a system. It panics only on configuration bugs (boot is a
// build-time invariant of the standard machine).
func New(cfg Config) *System {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.HeartbeatPeriod == 0 {
		cfg.HeartbeatPeriod = 500 * time.Millisecond
	}
	if cfg.HeartbeatMisses == 0 {
		cfg.HeartbeatMisses = 3
	}
	env := sim.NewEnv(cfg.Seed)
	if cfg.Trace != nil {
		env.SetLogOutput(cfg.Trace)
	}
	k := kernel.New(env)
	if cfg.Obs != nil {
		cfg.Obs.SetClock(env.Now)
		obs.AttachSim(env, cfg.Obs)
		k.SetObs(cfg.Obs)
	}
	if cfg.Perf != nil {
		cfg.Perf.Attach(env)
		k.SetPerf(cfg.Perf)
		cfg.Obs.SetPerf(cfg.Perf)
		cfg.Decisions.SetPerf(cfg.Perf)
	}
	machine := hw.NewMachine(env, k, cfg.Machine)
	sys := &System{
		Env:     env,
		Kernel:  k,
		Machine: machine,
		cfg:     cfg,
		vms:     make(map[string]*ucode.VM),
	}

	var err error
	sys.PMEp, err = proc.Start(k)
	if err != nil {
		panic(err)
	}
	sys.DS, sys.DSEp, err = ds.StartServer(k)
	if err != nil {
		panic(err)
	}
	cfg.Decisions.SetClock(env.Now)
	sys.RS, err = core.Start(k, sys.PMEp, sys.DSEp,
		core.WithOnReboot(func() { env.Stop() }),
		core.WithDecisions(cfg.Decisions))
	if err != nil {
		panic(err)
	}

	if !cfg.DisableNet {
		sys.bootNet()
	}
	if !cfg.DisableDisk {
		sys.bootDisk()
	}
	if !cfg.DisableChar {
		sys.bootChar()
	}
	if !cfg.DisableDisk || !cfg.DisableChar {
		// VFS serves both file paths (via MFS) and /dev device nodes, so
		// it boots whenever either subsystem is present.
		sys.VFS = vfs.New(vfs.Config{DS: sys.DSEp, FSLabel: ServerMFS})
		sys.RS.StartService(core.ServiceConfig{
			Label:           ServerVFS,
			Binary:          sys.VFS.Binary(),
			Priv:            sys.serverPriv(false),
			HeartbeatPeriod: sys.hb(),
			HeartbeatMisses: sys.cfg.HeartbeatMisses,
		})
	}
	return sys
}

// hb returns the effective heartbeat period (0 disables).
func (sys *System) hb() sim.Time {
	if sys.cfg.HeartbeatPeriod < 0 {
		return 0
	}
	return sys.cfg.HeartbeatPeriod
}

// trackVM records the live VM of a ucode driver instance (and, when
// wall-clock telemetry is on, brackets its invocations in RegionUcode).
func (sys *System) trackVM(label string) func(*ucode.VM) {
	return func(vm *ucode.VM) {
		sys.vms[label] = vm
		sys.cfg.Perf.AttachVM(vm)
	}
}

// DriverVM returns the currently running instance's ucode VM for a
// driver label — the handle the fault-injection campaign mutates.
func (sys *System) DriverVM(label string) *ucode.VM { return sys.vms[label] }

func (sys *System) driverPriv(ports kernel.PortRange, irq int) kernel.Privileges {
	return kernel.Privileges{
		IPCTo: []string{core.Label, ds.Label, proc.Label, ServerInet,
			ServerRemoteInet, ServerMFS, ServerVFS},
		Calls: []kernel.Call{kernel.CallDevIO, kernel.CallIRQCtl,
			kernel.CallAlarm, kernel.CallSafeCopy},
		Ports: []kernel.PortRange{ports},
		IRQs:  []int{irq},
		UID:   100,
	}
}

func (sys *System) serverPriv(mayComplain bool) kernel.Privileges {
	return kernel.Privileges{
		AllowAllIPC: true,
		Calls:       []kernel.Call{kernel.CallAlarm, kernel.CallSafeCopy},
		MayComplain: mayComplain,
		UID:         10,
	}
}

func (sys *System) bootNet() {
	cfg := sys.cfg
	m := sys.Machine
	// Local drivers.
	sys.RS.StartService(core.ServiceConfig{
		Label: DriverRTL8139,
		Binary: rtl8139.Binary(rtl8139.Config{NIC: m.NIC0, OnVM: sys.trackVM(DriverRTL8139),
			Mechanism: cfg.Mechanism, Salvage: cfg.Salvage}),
		Priv:            sys.driverPriv(m.NIC0.PortRange(), m.NIC0.IRQ()),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: cfg.HeartbeatMisses,
		Policy:          cfg.NetPolicy,
		PolicyParams:    cfg.NetPolicyParams,
		MaxRestarts:     cfg.MaxRestarts,
		Mechanism:       cfg.Mechanism,
	})
	sys.RS.StartService(core.ServiceConfig{
		Label: DriverDP8390,
		Binary: dp8390.Binary(dp8390.Config{NIC: m.NIC1, OnVM: sys.trackVM(DriverDP8390),
			Mechanism: cfg.Mechanism, Salvage: cfg.Salvage}),
		Priv:            sys.driverPriv(m.NIC1.PortRange(), m.NIC1.IRQ()),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: cfg.HeartbeatMisses,
		Policy:          cfg.NetPolicy,
		PolicyParams:    cfg.NetPolicyParams,
		MaxRestarts:     cfg.MaxRestarts,
		Mechanism:       cfg.Mechanism,
	})
	// Remote peer drivers: ideal, never killed by the experiments.
	sys.RS.StartService(core.ServiceConfig{
		Label:  remoteDriver0,
		Binary: rtl8139.Binary(rtl8139.Config{NIC: m.Remote}),
		Priv:   sys.driverPriv(m.Remote.PortRange(), m.Remote.IRQ()),
	})
	sys.RS.StartService(core.ServiceConfig{
		Label:  remoteDriver1,
		Binary: rtl8139.Binary(rtl8139.Config{NIC: m.Remote1}),
		Priv:   sys.driverPriv(m.Remote1.PortRange(), m.Remote1.IRQ()),
	})
	// Network servers.
	sys.LocalInet = inet.New(inet.Config{
		Pattern: "eth.*",
		DS:      sys.DSEp,
		RTOInit: sys.cfg.RTOInit,
	})
	sys.RS.StartService(core.ServiceConfig{
		Label:           ServerInet,
		Binary:          sys.LocalInet.Binary(),
		Priv:            sys.serverPriv(true),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: cfg.HeartbeatMisses,
	})
	sys.RemoteInet = inet.New(inet.Config{
		Pattern: "reth.*",
		DS:      sys.DSEp,
		RTOInit: sys.cfg.RTOInit,
	})
	sys.RS.StartService(core.ServiceConfig{
		Label:  ServerRemoteInet,
		Binary: sys.RemoteInet.Binary(),
		Priv:   sys.serverPriv(false),
	})
}

// PreallocFile names a file mkfs creates over the disk's existing
// pseudo-random content, without writing data blocks.
type PreallocFile struct {
	Name string
	Size int64
}

func (sys *System) bootDisk() {
	m := sys.Machine
	var prealloc []mfs.PreallocFile
	for _, pf := range sys.cfg.PreallocFiles {
		prealloc = append(prealloc, mfs.PreallocFile{Name: pf.Name, Size: pf.Size})
	}
	if _, err := mfs.Mkfs(m.Disk, mfs.MkfsConfig{Ateach: prealloc}); err != nil {
		panic(err)
	}
	sys.RS.StartService(core.ServiceConfig{
		Label: DriverSATA,
		Binary: sata.Binary(sata.Config{Disk: m.Disk, OnVM: sys.trackVM(DriverSATA),
			Mechanism: sys.cfg.Mechanism, Salvage: sys.cfg.Salvage}),
		Priv:            sys.driverPriv(m.Disk.PortRange(), m.Disk.IRQ()),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: sys.cfg.HeartbeatMisses,
		// §6.2: no policy script for disk drivers — direct RAM restart.
		MaxRestarts: sys.cfg.MaxRestarts,
		Mechanism:   sys.cfg.Mechanism,
	})
	sys.RAMStore = ramdisk.NewStore()
	sys.RS.StartService(core.ServiceConfig{
		Label: DriverRAMDisk,
		Binary: ramdisk.Binary(ramdisk.Config{Backing: sys.RAMStore,
			Mechanism: sys.cfg.Mechanism, Salvage: sys.cfg.Salvage}),
		Priv: kernel.Privileges{
			IPCTo: []string{core.Label, ds.Label, ServerMFS, ServerVFS},
			Calls: []kernel.Call{kernel.CallSafeCopy},
			UID:   100,
		},
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: sys.cfg.HeartbeatMisses,
		Mechanism:       sys.cfg.Mechanism,
	})
	// File server stack.
	sys.MFS = mfs.New(mfs.Config{
		DS:           sys.DSEp,
		DriverLabel:  DriverSATA,
		Disk:         mfs.Geometry{Sectors: sys.Machine.Disk.Sectors()},
		PollInterval: sys.cfg.MFSPollInterval,
	})
	sys.RS.StartService(core.ServiceConfig{
		Label:           ServerMFS,
		Binary:          sys.MFS.Binary(),
		Priv:            sys.serverPriv(true),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: sys.cfg.HeartbeatMisses,
	})
}

func (sys *System) bootChar() {
	m := sys.Machine
	sys.RS.StartService(core.ServiceConfig{
		Label:           DriverAudio,
		Binary:          chardrv.AudioBinary(m.Audio),
		Priv:            sys.driverPriv(m.Audio.PortRange(), m.Audio.IRQ()),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: sys.cfg.HeartbeatMisses,
	})
	sys.RS.StartService(core.ServiceConfig{
		Label:           DriverPrinter,
		Binary:          chardrv.PrinterBinary(m.Printer),
		Priv:            sys.driverPriv(m.Printer.PortRange(), m.Printer.IRQ()),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: sys.cfg.HeartbeatMisses,
	})
	sys.RS.StartService(core.ServiceConfig{
		Label:           DriverBurner,
		Binary:          chardrv.BurnerBinary(m.Burner),
		Priv:            sys.driverPriv(m.Burner.PortRange(), m.Burner.IRQ()),
		HeartbeatPeriod: sys.hb(),
		HeartbeatMisses: sys.cfg.HeartbeatMisses,
	})
}

// Obs returns the observability recorder the system was booted with
// (nil when observability is off; all recorder methods are nil-safe).
func (sys *System) Obs() *obs.Recorder { return sys.cfg.Obs }

// Decisions returns the recovery-decision recorder the system was booted
// with (nil when decision tracing is off; all methods are nil-safe).
func (sys *System) Decisions() *decision.Recorder { return sys.cfg.Decisions }

// Run advances the simulation by d of virtual time (0 = until the event
// queue drains). It returns the virtual time reached.
func (sys *System) Run(d time.Duration) time.Duration {
	return sys.Env.Run(d)
}

// Every schedules fn to run every interval of virtual time, first at
// now+interval (the crash-simulation loop of §7.1 uses this). It returns
// a cancelable ticker: stopping it removes the pending event from the
// queue, so a torn-down node (fleet simulation) or a finished experiment
// does not keep re-arming kill timers forever.
func (sys *System) Every(interval time.Duration, fn func()) *sim.Ticker {
	return sys.Env.Tick(interval, fn)
}

// After schedules fn once after d of virtual time.
func (sys *System) After(d time.Duration, fn func()) {
	sys.Env.Schedule(d, fn)
}

// KillDriver sends SIGKILL to a driver — the §7.1 crash simulation
// ("repeatedly looks up the driver's process ID and kills the driver").
func (sys *System) KillDriver(label string) {
	sys.RS.KillService(label, kernel.SIGKILL)
}

// CrashDriverVM overwrites the code of a driver's live ucode VM so that
// its next routine invocation fails a consistency check (every word
// becomes "assert r0", and the VM clears r0 on entry). Unlike KillDriver
// — an external SIGKILL that no in-process mechanism can intercept — this
// is an internal driver defect, so it exercises respawn, microreboot, and
// standby promotion comparably. Drivers without a live VM are unaffected.
func (sys *System) CrashDriverVM(label string) {
	vm := sys.vms[label]
	if vm == nil {
		return
	}
	crash := ucode.Enc(ucode.OpAssert, 0, 0, 0)
	for i := range vm.Img.Code {
		vm.Img.Code[i] = crash
	}
}

// UpdateDriver performs a dynamic update of a running service.
func (sys *System) UpdateDriver(cfg core.ServiceConfig) {
	sys.RS.UpdateService(cfg)
}

// Service classes of the standard machine, for fleet-level health and
// routing: a class is healthy on a node when its driver and the server
// fronting it are both live and not mid-recovery.
const (
	ClassNet  = "net"  // TCP service via inet + eth.rtl8139
	ClassDisk = "disk" // file service via vfs/mfs + disk.sata
	ClassChar = "char" // character-device jobs via the chr.* drivers
)

// Health is a node-level health snapshot derived from the reincarnation
// server's per-service state — the signal a fleet load balancer routes on.
type Health struct {
	NetOK  bool // inet and the primary NIC driver are serving
	DiskOK bool // vfs/mfs and the disk driver are serving
	CharOK bool // every character-device driver is serving

	Recovering int // guarded services currently mid-recovery
	GaveUp     int // services RS abandoned (MaxRestarts exhausted)
	Failures   int // sum of consecutive-failure counts across services
}

// OK reports whether one service class is currently healthy.
func (h Health) OK(class string) bool {
	switch class {
	case ClassNet:
		return h.NetOK
	case ClassDisk:
		return h.DiskOK
	case ClassChar:
		return h.CharOK
	}
	return false
}

// Health snapshots the system's service health from RS state. A class is
// healthy when every component on its path (driver and server) is
// running, not mid-recovery, and not abandoned; subsystems that were
// disabled at boot report unhealthy.
func (sys *System) Health() Health {
	h := Health{NetOK: !sys.cfg.DisableNet, DiskOK: !sys.cfg.DisableDisk,
		CharOK: !sys.cfg.DisableChar}
	up := make(map[string]bool)
	for _, s := range sys.RS.Services() {
		ok := s.Running && !s.Recovering && !s.GaveUp && !s.Stopped
		up[s.Label] = ok
		if s.Recovering {
			h.Recovering++
		}
		if s.GaveUp {
			h.GaveUp++
		}
		h.Failures += s.Failures
	}
	h.NetOK = h.NetOK && up[ServerInet] && up[DriverRTL8139]
	h.DiskOK = h.DiskOK && up[ServerVFS] && up[ServerMFS] && up[DriverSATA]
	h.CharOK = h.CharOK && up[DriverAudio] && up[DriverPrinter] && up[DriverBurner]
	return h
}

// StatusFunc adapts the reincarnation server's service snapshot to the
// windowed-telemetry status column (timeseries.Config.Status) — the
// per-node obs hook single-system figure runs and the fleet simulator
// both sample at window rollovers.
func (sys *System) StatusFunc() func() []timeseries.ServiceStatus {
	return func() []timeseries.ServiceStatus {
		svcs := sys.RS.Services()
		out := make([]timeseries.ServiceStatus, 0, len(svcs))
		for _, s := range svcs {
			state := "dead"
			switch {
			case s.Stopped:
				state = "stopped"
			case s.GaveUp:
				state = "gave-up"
			case s.Recovering:
				state = "recovering"
			case s.Running:
				state = "live"
			}
			out = append(out, timeseries.ServiceStatus{
				Label: s.Label, State: state, Failures: s.Failures,
			})
		}
		return out
	}
}

// InetEndpoint resolves the current endpoint of a network server side.
func (sys *System) InetEndpoint(side NetSide) kernel.Endpoint {
	label := ServerInet
	if side == NetRemote {
		label = ServerRemoteInet
	}
	return sys.Kernel.LookupLabel(label)
}
