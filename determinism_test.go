package resilientos

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"resilientos/internal/core"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
)

// TestSystemDeterminism runs the same failure-laden scenario twice and
// demands bit-identical outcomes: every event time, every recovery, every
// checksum. This is the property that makes the whole evaluation
// reproducible.
func TestSystemDeterminism(t *testing.T) {
	run := func() string {
		sys := New(Config{
			Seed:          42,
			PreallocFiles: []PreallocFile{{Name: "bigdata", Size: 8 << 20}},
		})
		sys.Run(3 * time.Second)
		sys.ServeFile(80, 42, 8<<20)
		var w WgetResult
		sys.Wget(DriverRTL8139, 80, 42, 8<<20, &w)
		var d DdResult
		sys.Dd("/bigdata", 64<<10, &d)
		sys.Every(700*time.Millisecond, func() { sys.KillDriver(DriverRTL8139) })
		sys.Every(1300*time.Millisecond, func() { sys.KillDriver(DriverSATA) })
		sys.Run(2 * time.Minute)
		out := fmt.Sprintf("wget=%x dd=%x bytes=%d/%d\n", w.MD5, d.SHA1, w.Bytes, d.Bytes)
		for _, e := range sys.RS.Events() {
			out += fmt.Sprintf("%v %s %v %d %v\n", e.Time, e.Label, e.Defect, e.Repetition, e.Duration)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestStatefulServiceRecoversFromDataStore verifies §5.3's state-recovery
// mechanism end to end: a stateful service checkpoints to the data store
// and a restarted instance continues where the dead one left off,
// authenticated by its stable name.
func TestStatefulServiceRecoversFromDataStore(t *testing.T) {
	sys := New(Config{DisableNet: true, DisableDisk: true, DisableChar: true})
	dsEp := sys.DSEp
	var observed []int64
	sys.RS.StartService(core.ServiceConfig{
		Label: "counter",
		Binary: func(c *kernel.Ctx) {
			var count int64
			reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSRetrieve, Name: "n"})
			if err == nil && reply.Arg2 == proto.OK && len(reply.Payload) == 8 {
				count = int64(binary.LittleEndian.Uint64(reply.Payload))
			}
			for {
				c.Sleep(50 * time.Millisecond)
				count++
				observed = append(observed, count)
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(count))
				if _, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSStore, Name: "n", Payload: buf}); err != nil {
					return
				}
			}
		},
		Priv: kernel.Privileges{AllowAllIPC: true},
	})
	sys.After(2*time.Second, func() { sys.KillDriver("counter") })
	sys.After(4*time.Second, func() { sys.KillDriver("counter") })
	sys.Run(6 * time.Second)

	if len(observed) < 50 {
		t.Fatalf("only %d ticks", len(observed))
	}
	// The counter must be monotonically nondecreasing ACROSS restarts
	// (allowing a one-step repeat for the unsynced final tick).
	for i := 1; i < len(observed); i++ {
		if observed[i] < observed[i-1] {
			t.Fatalf("counter went backwards at %d: %d -> %d (state lost)",
				i, observed[i-1], observed[i])
		}
	}
	if len(sys.RS.Events()) != 2 {
		t.Fatalf("events = %d, want 2 kills", len(sys.RS.Events()))
	}
	// Without recovery the final count would be ~2s/50ms = 40; with it,
	// close to 6s/50ms = 120.
	final := observed[len(observed)-1]
	if final < 100 {
		t.Fatalf("final count %d: state did not carry across restarts", final)
	}
}

// TestRecoveryTransparencyUnderConcurrentLoad drives all three driver
// classes at once under a kill storm and checks the Fig. 3 contract in
// one run.
func TestRecoveryTransparencyUnderConcurrentLoad(t *testing.T) {
	sys := New(Config{
		Seed:          3,
		PreallocFiles: []PreallocFile{{Name: "bigdata", Size: 12 << 20}},
	})
	sys.Run(3 * time.Second)
	sys.ServeFile(80, 3, 12<<20)
	var w WgetResult
	sys.Wget(DriverRTL8139, 80, 3, 12<<20, &w)
	var d DdResult
	sys.Dd("/bigdata", 64<<10, &d)
	lines := []string{"a", "b", "c", "d"}
	var l LpdResult
	sys.Lpd(lines, &l)
	sys.Every(900*time.Millisecond, func() {
		sys.KillDriver(DriverRTL8139)
		sys.KillDriver(DriverSATA)
		sys.KillDriver(DriverPrinter)
	})
	sys.Run(4 * time.Minute)

	if !w.OK {
		t.Errorf("wget failed: %d bytes err=%v", w.Bytes, w.Err)
	}
	if d.Err != nil || d.Bytes != 12<<20 {
		t.Errorf("dd failed: %d bytes err=%v", d.Bytes, d.Err)
	}
	if l.Submitted != len(lines) {
		t.Errorf("lpd submitted %d/%d", l.Submitted, len(lines))
	}
	for _, e := range sys.RS.Events() {
		if !e.Recovered {
			t.Errorf("unrecovered event: %+v", e)
		}
	}
	if len(sys.RS.Events()) < 10 {
		t.Errorf("only %d recoveries under the storm", len(sys.RS.Events()))
	}
}
