package resilientos

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"resilientos/internal/bench"
	"resilientos/internal/core"
	"resilientos/internal/hw"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
	"resilientos/internal/obs/timeseries"
)

// The figure pipeline renders the paper's Figs. 7 and 8 as *data*: one
// run of the Fig. 7 TCP transfer (or Fig. 8 disk read) under periodic
// driver kills, sampled by the windowed telemetry layer
// (internal/obs/timeseries) into a per-second throughput curve with the
// kills, restarts, and recovery dips resolved — the envelope the paper
// plots, not just the end-to-end averages of the sweep runners in
// experiments.go. For a fixed seed every byte of the CSV/JSON/SVG output
// is reproducible, so the curves double as golden files and as
// bench-gate inputs (internal/bench/compare).

// FigureConfig configures one figure run. The zero value (plus Fig)
// gives the standard quick-run shape: fig7 = 64 MB transfer, fig8 =
// 128 MB read, a kill every 2 s, 1 s windows, seed 1.
type FigureConfig struct {
	Fig      int           // 7 (network) or 8 (disk)
	Size     int64         // transfer size in bytes
	Interval time.Duration // kill interval (0 = uninterrupted)
	Seed     int64
	Window   time.Duration // sampler window width

	// Mechanism selects the recovery mechanism for the run's drivers
	// (zero = classic kill-and-respawn). The paper-style mechanism
	// comparison runs the same figure under each value.
	Mechanism core.Mechanism
	// CrashVM, if set, injects failures by corrupting the driver's live
	// ucode VM (CrashDriverVM) instead of SIGKILL. An external kill can
	// only ever be answered by respawn or promotion; a VM-level defect is
	// also interceptable by microreboot, so mechanism comparisons use it.
	CrashVM bool

	// Decisions, if set, receives the run's recovery decision trace
	// (the golden seed-11 decision log is recorded through this). Note
	// figure runs disable span kinds, so decision events carry no
	// trace/span linkage.
	Decisions *decision.Recorder
}

// FigurePoint is one window of the throughput curve. T is the window's
// start relative to the transfer's start; the final window may be
// narrower than the configured width.
type FigurePoint struct {
	T        time.Duration `json:"t_ns"`
	Width    time.Duration `json:"width_ns"`
	Bytes    int64         `json:"bytes"`
	MBps     float64       `json:"mbps"`
	IPC      int64         `json:"ipc"` // kernel IPC sends in the window
	Kills    int           `json:"kills"`
	Defects  int           `json:"defects"`
	Restarts int           `json:"restarts"`
}

// FigureDip is the throughput dip around one driver kill: how deep the
// curve fell against the pre-kill baseline, how long it stayed below 90%
// of it, and what rate the post-recovery windows sustained. Truncated
// dips (transfer or next kill arrived before recovery was visible) are
// excluded from the recovered-throughput ratio.
type FigureDip struct {
	Kill          time.Duration `json:"kill_ns"` // relative to transfer start
	DepthPct      float64       `json:"depth_pct"`
	Width         time.Duration `json:"width_ns"`
	RecoveredMBps float64       `json:"recovered_mbps"`
	RecoveredPct  float64       `json:"recovered_pct"`
	Truncated     bool          `json:"truncated,omitempty"`
}

// FigureResult is one figure run with its curve, dip analysis, and the
// raw window series.
type FigureResult struct {
	Fig      int
	Seed     int64
	Size     int64
	Interval time.Duration
	Window   time.Duration
	Driver   string

	Bytes    int64
	Duration time.Duration
	MBps     float64
	Kills    int
	OK       bool

	// BaselineMBps is the mean windowed throughput before the first kill;
	// RecoveredPct the mean post-recovery rate across dips, as % of it.
	BaselineMBps float64
	MeanMBps     float64
	MinMBps      float64
	RecoveredPct float64

	Points   []FigurePoint
	Dips     []FigureDip
	Segments []timeseries.Segment // full raw series (boot + transfer)
	Recovery obs.LatencySummary

	// Violation is non-nil if the sampler's window series failed its own
	// structural invariants — never in a correct build.
	Violation error
}

// RunFigure executes one figure run: boot, settle, mark, transfer under
// periodic kills, windowed sampling, dip analysis.
func RunFigure(cfg FigureConfig) FigureResult {
	if cfg.Fig == 0 {
		cfg.Fig = 7
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Size == 0 {
		if cfg.Fig == 8 {
			cfg.Size = 128 << 20
		} else {
			cfg.Size = 64 << 20
		}
	}
	if cfg.Interval < 0 {
		cfg.Interval = 0
	}

	events := &obs.SliceSink{}
	rec := obs.NewRecorder(events)
	// Per-frame kinds off: per-window IPC volume comes from the kernel's
	// registry counters, which stay live under a disabled event mask.
	rec.Disable(obs.KindIPCSend, obs.KindIPCRecv, obs.KindProcSpawn, obs.KindProcExit)
	rec.Disable(obs.SpanKinds...)

	var sysCfg Config
	driver := DriverRTL8139
	bytesName := "inet.bytes." + DriverRTL8139
	if cfg.Fig == 8 {
		driver = DriverSATA
		bytesName = "mfs.bytes." + DriverSATA
		sysCfg = Config{
			Seed:          cfg.Seed,
			DisableNet:    true,
			DisableChar:   true,
			Machine:       hw.MachineConfig{DiskSeed: cfg.Seed},
			PreallocFiles: []PreallocFile{{Name: "bigdata", Size: cfg.Size}},
			Obs:           rec,
		}
	} else {
		sysCfg = Config{Seed: cfg.Seed, DisableDisk: true, DisableChar: true, Obs: rec}
	}
	sysCfg.Decisions = cfg.Decisions
	sysCfg.Mechanism = cfg.Mechanism
	sys := New(sysCfg)
	sampler := timeseries.New(timeseries.Config{
		Window:   cfg.Window,
		Registry: rec.Metrics(),
		Status:   sys.StatusFunc(),
	})
	sampler.Attach(sys.Env)
	rec.AddSink(sampler)

	sys.Run(3 * time.Second) // boot settle
	runDesc := fmt.Sprintf("fig%d interval=%v seed=%d", cfg.Fig, cfg.Interval, cfg.Seed)
	if cfg.Mechanism != core.MechRespawn || cfg.CrashVM {
		// Appended only off the default so pre-mechanism goldens hold.
		runDesc += fmt.Sprintf(" mech=%s crashvm=%v", cfg.Mechanism, cfg.CrashVM)
	}
	rec.Emit(obs.KindMark, "run", runDesc, cfg.Size, 0)
	markT := sys.Env.Now()

	var done func() bool
	var finish func(r *FigureResult)
	if cfg.Fig == 8 {
		var res DdResult
		sys.Dd("/bigdata", 64<<10, &res)
		done = func() bool { return res.Duration != 0 || res.Err != nil }
		finish = func(r *FigureResult) {
			r.Bytes, r.Duration = res.Bytes, res.Duration
			r.OK = res.Err == nil && res.Bytes == cfg.Size
		}
	} else {
		sys.ServeFile(80, cfg.Seed, cfg.Size)
		var res WgetResult
		sys.Wget(driver, 80, cfg.Seed, cfg.Size, &res)
		done = func() bool { return res.Duration != 0 || res.Err != nil }
		finish = func(r *FigureResult) {
			r.Bytes, r.Duration, r.OK = res.Bytes, res.Duration, res.OK
		}
	}

	var killTimes []time.Duration
	if cfg.Interval > 0 {
		sys.Every(cfg.Interval, func() {
			if !done() {
				if cfg.CrashVM {
					sys.CrashDriverVM(driver)
				} else {
					sys.KillDriver(driver)
				}
				killTimes = append(killTimes, sys.Env.Now()-markT)
			}
		})
	}

	// Step in sub-window increments and stop as soon as the transfer
	// resolves: the series ends at the transfer's end instead of padding
	// out a worst-case horizon with empty windows.
	horizon := 4*time.Duration(cfg.Size/1e6)*time.Second + 30*time.Second
	for !done() && sys.Env.Now()-markT < horizon {
		sys.Run(100 * time.Millisecond)
	}
	sampler.Finish()

	res := FigureResult{
		Fig: cfg.Fig, Seed: cfg.Seed, Size: cfg.Size,
		Interval: cfg.Interval, Window: cfg.Window, Driver: driver,
		Kills:    len(killTimes),
		Segments: sampler.Segments(),
	}
	finish(&res)
	res.MBps = mbps(res.Bytes, res.Duration)
	res.Violation = sampler.Err()
	if res.Violation == nil {
		res.Violation = timeseries.Validate(res.Segments, cfg.Window)
	}
	spans := obs.Timeline(events.Events())
	res.Recovery = obs.Summarize(obs.RecoveryLatencies(spans, driver))
	analyzeFigure(&res, bytesName, killTimes)
	return res
}

// analyzeFigure fills the curve, baseline, and dip analysis from the
// transfer segment of the window series.
func analyzeFigure(r *FigureResult, bytesName string, kills []time.Duration) {
	if len(r.Segments) == 0 {
		return
	}
	seg := r.Segments[len(r.Segments)-1] // transfer segment (after the mark)
	for _, w := range seg.Windows {
		width := time.Duration(w.End - w.Start)
		b := w.Counter(bytesName)
		p := FigurePoint{
			T:        time.Duration(w.Start - seg.Start),
			Width:    width,
			Bytes:    b,
			MBps:     mbps(b, width),
			IPC:      w.Counter("kernel.ipc.send"),
			Defects:  w.KindN(obs.KindDefect),
			Restarts: w.KindN(obs.KindRestart),
		}
		for _, k := range kills {
			if k >= p.T && k < p.T+width {
				p.Kills++
			}
		}
		r.Points = append(r.Points, p)
	}

	// Baseline: mean rate of full windows wholly before the first kill
	// (all full windows when uninterrupted).
	firstKill := time.Duration(-1)
	if len(kills) > 0 {
		firstKill = kills[0]
	}
	var sum, n float64
	var all, nAll float64
	min := -1.0
	for _, p := range r.Points {
		if p.Width != r.Window {
			continue // partial final window
		}
		all += p.MBps
		nAll++
		if min < 0 || p.MBps < min {
			min = p.MBps
		}
		if firstKill < 0 || p.T+p.Width <= firstKill {
			sum += p.MBps
			n++
		}
	}
	if nAll > 0 {
		r.MeanMBps = all / nAll
	}
	if min > 0 {
		r.MinMBps = min
	}
	switch {
	case n > 0:
		r.BaselineMBps = sum / n
	case nAll > 0:
		r.BaselineMBps = all / nAll
	default:
		r.BaselineMBps = r.MBps
	}

	r.Dips = analyzeDips(r.Points, kills, r.BaselineMBps, r.Window)
	var rec, nRec float64
	for _, d := range r.Dips {
		if !d.Truncated {
			rec += d.RecoveredPct
			nRec++
		}
	}
	if nRec > 0 {
		r.RecoveredPct = rec / nRec
	} else if len(r.Dips) == 0 {
		r.RecoveredPct = 100
	}
}

// analyzeDips resolves the per-kill throughput dips: for each kill, scan
// forward until the curve regains 90% of baseline (or the next kill /
// end of transfer truncates the dip), then average the post-recovery
// full windows up to the next kill.
func analyzeDips(points []FigurePoint, kills []time.Duration, baseline float64, window time.Duration) []FigureDip {
	if baseline <= 0 || window <= 0 {
		return nil
	}
	thr := 0.9 * baseline
	var dips []FigureDip
	for ki, k := range kills {
		next := time.Duration(-1)
		if ki+1 < len(kills) {
			next = kills[ki+1]
		}
		start := int(k / window)
		if start >= len(points) {
			break
		}
		d := FigureDip{Kill: k, Truncated: true}
		minM := -1.0
		recover := -1
		for j := start; j < len(points); j++ {
			if next >= 0 && points[j].T >= next {
				break
			}
			if minM < 0 || points[j].MBps < minM {
				minM = points[j].MBps
			}
			if points[j].Width == window && points[j].MBps >= thr {
				recover = j
				break
			}
		}
		if minM >= 0 {
			d.DepthPct = 100 * (1 - minM/baseline)
			if d.DepthPct < 0 {
				d.DepthPct = 0
			}
		}
		if recover >= 0 {
			d.Truncated = false
			if w := points[recover].T - k; w > 0 {
				d.Width = w
			}
			// Post-recovery rate: full windows from recovery to next kill.
			var sum, n float64
			for j := recover; j < len(points); j++ {
				if next >= 0 && points[j].T+points[j].Width > next {
					break
				}
				if points[j].Width == window {
					sum += points[j].MBps
					n++
				}
			}
			if n > 0 {
				d.RecoveredMBps = sum / n
				d.RecoveredPct = 100 * d.RecoveredMBps / baseline
			} else {
				d.Truncated = true
			}
		} else {
			// Never recovered inside the scan range: width spans it.
			end := points[len(points)-1].T + points[len(points)-1].Width
			if next >= 0 && next < end {
				end = next
			}
			if end > k {
				d.Width = end - k
			}
		}
		dips = append(dips, d)
	}
	return dips
}

// RecoveryMechanisms is the canonical mechanism order of the recovery
// comparison: the respawn baseline first, then what each alternative buys.
var RecoveryMechanisms = []core.Mechanism{
	core.MechRespawn, core.MechMicroreboot, core.MechStandby,
}

// RunMechanismComparison runs the same figure configuration once per
// recovery mechanism — with VM-level crash injection forced on, since an
// external SIGKILL cannot be microrebooted — and assembles the paper-style
// extension table of Fig. 7/8 dip depth and width per mechanism. Results
// are returned in RecoveryMechanisms order. The document's WallClockS is
// left zero for the caller to stamp; everything else is deterministic for
// a fixed seed.
func RunMechanismComparison(cfg FigureConfig) ([]FigureResult, bench.Recovery) {
	results := make([]FigureResult, 0, len(RecoveryMechanisms))
	doc := bench.Recovery{Schema: bench.SchemaRecovery}
	for _, mech := range RecoveryMechanisms {
		c := cfg
		c.Mechanism = mech
		c.CrashVM = true
		r := RunFigure(c)
		f := r.BenchFigure(0)
		doc.Mechanisms = append(doc.Mechanisms, bench.RecoveryMechanism{
			Mechanism:      mech.String(),
			OK:             r.OK,
			MBps:           r.MBps,
			BaselineMBps:   r.BaselineMBps,
			Crashes:        r.Kills,
			Dips:           len(r.Dips),
			MeanDipDepth:   f.MeanDipDepth,
			MeanDipWidthMs: f.MeanDipWidthMs,
			RecoveredPct:   r.RecoveredPct,
			Recovery:       bench.Latency(r.Recovery),
		})
		results = append(results, r)
	}
	first := results[0]
	doc.Fig, doc.Seed, doc.SizeBytes = first.Fig, first.Seed, first.Size
	doc.CrashEveryS = first.Interval.Seconds()
	respawn, micro, standby := doc.Mechanisms[0], doc.Mechanisms[1], doc.Mechanisms[2]
	doc.StandbyDepthGainPct = respawn.MeanDipDepth - standby.MeanDipDepth
	doc.MicroWidthGainMs = respawn.MeanDipWidthMs - micro.MeanDipWidthMs
	return results, doc
}

// BenchFigure summarizes the result as the bench-gate document.
func (r FigureResult) BenchFigure(wallClock time.Duration) bench.Figure {
	meanDepth, meanWidth := 0.0, 0.0
	if len(r.Dips) > 0 {
		for _, d := range r.Dips {
			meanDepth += d.DepthPct
			meanWidth += float64(d.Width) / 1e6
		}
		meanDepth /= float64(len(r.Dips))
		meanWidth /= float64(len(r.Dips))
	}
	return bench.Figure{
		Schema:         bench.SchemaFigure,
		Name:           fmt.Sprintf("fig%d", r.Fig),
		Seed:           r.Seed,
		SizeBytes:      r.Size,
		KillIntervalS:  r.Interval.Seconds(),
		Windows:        len(r.Points),
		Kills:          r.Kills,
		OK:             r.OK,
		MBps:           r.MBps,
		BaselineMBps:   r.BaselineMBps,
		MeanMBps:       r.MeanMBps,
		MinMBps:        r.MinMBps,
		Dips:           len(r.Dips),
		MeanDipDepth:   meanDepth,
		MeanDipWidthMs: meanWidth,
		RecoveredPct:   r.RecoveredPct,
		Recovery:       bench.Latency(r.Recovery),
		WallClockS:     wallClock.Seconds(),
	}
}

// ---------------------------------------------------------------------
// Deterministic encodings

// figureFloat renders a rate with fixed precision — enough to resolve
// real dips, few enough digits to keep goldens readable.
func figureFloat(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// WriteFigureCSV writes the throughput curve as canonical CSV, one row
// per window. Byte-identical across runs for a fixed seed; the committed
// testdata/fig{7,8}_seed11.csv goldens pin this encoding.
func WriteFigureCSV(w io.Writer, r FigureResult) error {
	var buf []byte
	buf = append(buf, "window,t_ns,width_ns,bytes,mbps,ipc,kills,defects,restarts\n"...)
	for i, p := range r.Points {
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p.T), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p.Width), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, p.Bytes, 10)
		buf = append(buf, ',')
		buf = append(buf, figureFloat(p.MBps)...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, p.IPC, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p.Kills), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p.Defects), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(p.Restarts), 10)
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}

// figureDoc is the JSON series document (curve + dips + summary). It
// deliberately contains no wall-clock fields: the document is
// byte-identical across runs for a fixed seed.
type figureDoc struct {
	Schema       string          `json:"schema"`
	Fig          int             `json:"fig"`
	Seed         int64           `json:"seed"`
	SizeBytes    int64           `json:"size_bytes"`
	KillInterval time.Duration   `json:"kill_interval_ns"`
	Window       time.Duration   `json:"window_ns"`
	Driver       string          `json:"driver"`
	Bytes        int64           `json:"bytes"`
	Duration     time.Duration   `json:"duration_ns"`
	MBps         float64         `json:"mbps"`
	Kills        int             `json:"kills"`
	OK           bool            `json:"ok"`
	BaselineMBps float64         `json:"baseline_mbps"`
	MeanMBps     float64         `json:"mean_mbps"`
	MinMBps      float64         `json:"min_mbps"`
	RecoveredPct float64         `json:"recovered_pct"`
	Recovery     bench.LatencyMs `json:"recovery"`
	Points       []FigurePoint   `json:"points"`
	Dips         []FigureDip     `json:"dips"`
}

// WriteFigureJSON writes the full series document as indented JSON.
func WriteFigureJSON(w io.Writer, r FigureResult) error {
	doc := figureDoc{
		Schema: "resilientos/figure-series/v1",
		Fig:    r.Fig, Seed: r.Seed, SizeBytes: r.Size,
		KillInterval: r.Interval, Window: r.Window, Driver: r.Driver,
		Bytes: r.Bytes, Duration: r.Duration, MBps: r.MBps,
		Kills: r.Kills, OK: r.OK,
		BaselineMBps: r.BaselineMBps, MeanMBps: r.MeanMBps, MinMBps: r.MinMBps,
		RecoveredPct: r.RecoveredPct,
		Recovery:     bench.Latency(r.Recovery),
		Points:       r.Points,
		Dips:         r.Dips,
	}
	if doc.Points == nil {
		doc.Points = []FigurePoint{}
	}
	if doc.Dips == nil {
		doc.Dips = []FigureDip{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteFigureSVG renders the throughput curve as a self-contained SVG:
// the windowed rate as a polyline, kills as red verticals, the 90%-of-
// baseline recovery threshold as a dashed rule. Deterministic output.
func WriteFigureSVG(w io.Writer, r FigureResult) error {
	const (
		width, height  = 720.0, 280.0
		ml, mr, mt, mb = 56.0, 16.0, 40.0, 44.0
		plotW, plotH   = width - ml - mr, height - mt - mb
	)
	maxT := time.Duration(0)
	maxM := 0.0
	for _, p := range r.Points {
		if end := p.T + p.Width; end > maxT {
			maxT = end
		}
		if p.MBps > maxM {
			maxM = p.MBps
		}
	}
	if maxT <= 0 {
		maxT = time.Second
	}
	if maxM <= 0 {
		maxM = 1
	}
	maxM *= 1.1
	x := func(t time.Duration) string {
		return strconv.FormatFloat(ml+plotW*float64(t)/float64(maxT), 'f', 1, 64)
	}
	y := func(m float64) string {
		return strconv.FormatFloat(mt+plotH*(1-m/maxM), 'f', 1, 64)
	}

	var b []byte
	app := func(s string) { b = append(b, s...) }
	app(`<svg xmlns="http://www.w3.org/2000/svg" width="720" height="280" viewBox="0 0 720 280" font-family="sans-serif">` + "\n")
	app(fmt.Sprintf(`<title>fig%d seed=%d</title>`+"\n", r.Fig, r.Seed))
	app(`<rect width="720" height="280" fill="white"/>` + "\n")
	app(fmt.Sprintf(`<text x="%s" y="24" font-size="14">fig%d: %s, %d MB, kill every %s, seed %d</text>`+"\n",
		strconv.FormatFloat(ml, 'f', 1, 64), r.Fig, r.Driver, r.Size>>20, r.Interval, r.Seed))
	// Axes.
	app(fmt.Sprintf(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black"/>`+"\n",
		x(0), y(0), x(maxT), y(0)))
	app(fmt.Sprintf(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black"/>`+"\n",
		x(0), y(0), x(0), y(maxM)))
	app(fmt.Sprintf(`<text x="8" y="%s" font-size="11">%s MB/s</text>`+"\n",
		y(maxM/1.1), figureFloat(maxM/1.1)))
	app(fmt.Sprintf(`<text x="%s" y="%s" font-size="11">%ds</text>`+"\n",
		x(maxT), strconv.FormatFloat(mt+plotH+16, 'f', 1, 64), int(maxT/time.Second)))
	// Recovery threshold.
	if r.BaselineMBps > 0 {
		thr := 0.9 * r.BaselineMBps
		app(fmt.Sprintf(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="green" stroke-dasharray="4 3"/>`+"\n",
			x(0), y(thr), x(maxT), y(thr)))
	}
	// Kills.
	for _, p := range r.Points {
		if p.Kills == 0 {
			continue
		}
		app(fmt.Sprintf(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="red"/>`+"\n",
			x(p.T), y(0), x(p.T), y(maxM)))
	}
	// Curve: step at window midpoints.
	app(`<polyline fill="none" stroke="blue" stroke-width="1.5" points="`)
	for i, p := range r.Points {
		if i > 0 {
			app(" ")
		}
		app(x(p.T + p.Width/2))
		app(",")
		app(y(p.MBps))
	}
	app(`"/>` + "\n")
	app(fmt.Sprintf(`<text x="%s" y="%s" font-size="11">recovered %s%% of baseline, %d kills</text>`+"\n",
		strconv.FormatFloat(ml, 'f', 1, 64),
		strconv.FormatFloat(height-12, 'f', 1, 64),
		figureFloat(r.RecoveredPct), r.Kills))
	app("</svg>\n")
	_, err := w.Write(b)
	return err
}
