// Package fi implements software fault injection into running driver
// "binaries" (ucode images), reproducing the methodology of paper §7.2,
// which is based on the binary-mutation injectors of Ng & Chen and of
// Swift et al. (Nooks). The seven fault types are the paper's own list;
// they emulate programming errors common to operating system code.
package fi

import (
	"fmt"
	"math/rand"

	"resilientos/internal/ucode"
)

// FaultType is one of the paper's seven binary mutation classes.
type FaultType int

// The seven fault types of paper §7.2, in the paper's order.
const (
	FaultSrcReg   FaultType = iota + 1 // (1) change source register
	FaultDstReg                        // (2) change destination register
	FaultPointer                       // (3) garble pointer
	FaultStale                         // (4) use current register value instead of parameter passed
	FaultLoopCond                      // (5) invert termination condition of a loop
	FaultBitFlip                       // (6) flip a bit in an instruction
	FaultElide                         // (7) elide an instruction
	numFaultTypes = 7
)

func (f FaultType) String() string {
	switch f {
	case FaultSrcReg:
		return "src-register"
	case FaultDstReg:
		return "dst-register"
	case FaultPointer:
		return "garbled-pointer"
	case FaultStale:
		return "stale-register"
	case FaultLoopCond:
		return "inverted-loop"
	case FaultBitFlip:
		return "bit-flip"
	case FaultElide:
		return "elided-instruction"
	default:
		return fmt.Sprintf("FaultType(%d)", int(f))
	}
}

// Injection records one applied mutation.
type Injection struct {
	Type   FaultType
	PC     int         // mutated instruction index
	Before ucode.Instr // original encoding
	After  ucode.Instr // mutated encoding
}

func (in Injection) String() string {
	return fmt.Sprintf("%s @%d: %v -> %v", in.Type, in.PC, in.Before, in.After)
}

// Injector mutates ucode images with a deterministic random source.
type Injector struct {
	rng *rand.Rand
}

// New creates an injector driven by rng.
func New(rng *rand.Rand) *Injector { return &Injector{rng: rng} }

// InjectRandom applies one randomly selected fault of a randomly selected
// type at a randomly selected applicable instruction. It mirrors the
// paper's campaign step "inject 1 randomly selected fault into the running
// driver". Mutating an image a driver is currently executing is the whole
// point: the next invocation of the affected routine runs the faulty code.
func (j *Injector) InjectRandom(img *ucode.Image) Injection {
	for {
		ft := FaultType(j.rng.Intn(numFaultTypes) + 1)
		if inj, ok := j.TryInject(img, ft); ok {
			return inj
		}
		// Type not applicable at the sampled site; resample. Every image
		// admits bit flips and elisions, so this terminates.
	}
}

// TryInject applies one fault of the given type at a random applicable
// instruction. It reports false if the image has no applicable site.
func (j *Injector) TryInject(img *ucode.Image, ft FaultType) (Injection, bool) {
	sites := applicableSites(img, ft)
	if len(sites) == 0 {
		return Injection{}, false
	}
	pc := sites[j.rng.Intn(len(sites))]
	before := img.Code[pc]
	after := j.mutate(before, ft)
	img.Code[pc] = after
	return Injection{Type: ft, PC: pc, Before: before, After: after}, true
}

// applicableSites lists instruction indexes where the fault type is
// meaningful.
func applicableSites(img *ucode.Image, ft FaultType) []int {
	var sites []int
	for pc, in := range img.Code {
		if faultApplies(in.Op(), ft) {
			sites = append(sites, pc)
		}
	}
	return sites
}

func faultApplies(op ucode.Op, ft FaultType) bool {
	switch ft {
	case FaultSrcReg:
		switch op {
		case ucode.OpMov, ucode.OpAdd, ucode.OpSub, ucode.OpAnd, ucode.OpOr,
			ucode.OpXor, ucode.OpDiv, ucode.OpLd, ucode.OpSt, ucode.OpIn,
			ucode.OpOut, ucode.OpCmp:
			return true
		}
		return false
	case FaultDstReg:
		switch op {
		case ucode.OpMovI, ucode.OpMov, ucode.OpAdd, ucode.OpAddI, ucode.OpSub,
			ucode.OpAnd, ucode.OpAndI, ucode.OpOr, ucode.OpOrI, ucode.OpXor,
			ucode.OpShlI, ucode.OpShrI, ucode.OpDiv, ucode.OpLd, ucode.OpSt,
			ucode.OpIn, ucode.OpOut, ucode.OpCmp, ucode.OpCmpI, ucode.OpAssert:
			return true
		}
		return false
	case FaultPointer:
		switch op {
		case ucode.OpLd, ucode.OpSt, ucode.OpIn, ucode.OpOut:
			return true
		}
		return false
	case FaultStale:
		// Instructions that load a parameter/value into rd; removing them
		// leaves rd holding its stale previous value.
		switch op {
		case ucode.OpMovI, ucode.OpMov, ucode.OpLd, ucode.OpIn:
			return true
		}
		return false
	case FaultLoopCond:
		switch op {
		case ucode.OpJz, ucode.OpJnz, ucode.OpJlt, ucode.OpJge:
			return true
		}
		return false
	case FaultBitFlip, FaultElide:
		return op != ucode.OpNop
	}
	return false
}

func (j *Injector) mutate(in ucode.Instr, ft FaultType) ucode.Instr {
	switch ft {
	case FaultSrcReg:
		return in.WithRs(j.otherReg(in.Rs()))
	case FaultDstReg:
		return in.WithRd(j.otherReg(in.Rd()))
	case FaultPointer:
		return in.WithImm(uint16(j.rng.Intn(1 << 16)))
	case FaultStale:
		return ucode.Enc(ucode.OpNop, 0, 0, 0)
	case FaultLoopCond:
		switch in.Op() {
		case ucode.OpJz:
			return in.WithOp(ucode.OpJnz)
		case ucode.OpJnz:
			return in.WithOp(ucode.OpJz)
		case ucode.OpJlt:
			return in.WithOp(ucode.OpJge)
		case ucode.OpJge:
			return in.WithOp(ucode.OpJlt)
		}
		return in
	case FaultBitFlip:
		return in ^ ucode.Instr(1<<uint(j.rng.Intn(32)))
	case FaultElide:
		return ucode.Enc(ucode.OpNop, 0, 0, 0)
	}
	return in
}

// otherReg returns a random register different from r.
func (j *Injector) otherReg(r int) int {
	n := j.rng.Intn(ucode.NumRegs - 1)
	if n >= r {
		n++
	}
	return n
}
