package fi

import (
	"math/rand"
	"testing"

	"resilientos/internal/ucode"
)

// TestGoldenInjections pins the exact mutated instruction each fault type
// produces on the fixed test image at a fixed seed. The expected values
// are golden bytes: any change to the injector's site selection, RNG
// consumption order, or mutation encoding shows up here as an exact
// before/after word diff, not just a property violation.
//
// The test image (testProg) assembles to:
//
//	0: movi r1, 0x100    0x01100100
//	1: in   r2, [r1+4]   0x10210004
//	2: cmpi r2, 0        0x13200000
//	3: jz   done         0x15000009
//	4: ld   r3, [r1+8]   0x0e310008
//	5: st   [r1+12], r3  0x0f13000c
//	6: mov  r4, r3       0x02430000
//	7: add  r4, r2       0x03420000
//	8: assert r4         0x1b400000
//	9: halt              0x1c000000
func TestGoldenInjections(t *testing.T) {
	const seed = 7
	cases := []struct {
		ft     FaultType
		pc     int
		before ucode.Instr
		after  ucode.Instr
	}{
		// ld r3, [r1+8] reads through r0 instead of the parameter base.
		{FaultSrcReg, 4, 0x0e310008, 0x0e300008},
		// add r4, r2 writes its sum into r0 instead of r4.
		{FaultDstReg, 7, 0x03420000, 0x03020000},
		// st [r1+12], r3 stores at offset 0x6ee — off the mapped buffer.
		{FaultPointer, 5, 0x0f13000c, 0x0f1306ee},
		// ld r3, [r1+8] elided: r3 keeps its stale previous value.
		{FaultStale, 4, 0x0e310008, 0x00000000},
		// jz done becomes jnz done: the loop exit test is inverted.
		{FaultLoopCond, 3, 0x15000009, 0x16000009},
		// mov r4, r3 gets bit 14 flipped (lands in the imm field).
		{FaultBitFlip, 6, 0x02430000, 0x02434000},
		// mov r4, r3 replaced by nop outright.
		{FaultElide, 6, 0x02430000, 0x00000000},
	}
	for _, tc := range cases {
		t.Run(tc.ft.String(), func(t *testing.T) {
			img := testImage(t)
			if img.Code[tc.pc] != tc.before {
				t.Fatalf("image word at pc %d = %#08x, want %#08x (test image drifted)",
					tc.pc, uint32(img.Code[tc.pc]), uint32(tc.before))
			}
			inj, ok := New(rand.New(rand.NewSource(seed))).TryInject(img, tc.ft)
			if !ok {
				t.Fatal("no applicable site")
			}
			want := Injection{Type: tc.ft, PC: tc.pc, Before: tc.before, After: tc.after}
			if inj != want {
				t.Errorf("injection = %v (%#08x -> %#08x), want %v (%#08x -> %#08x)",
					inj, uint32(inj.Before), uint32(inj.After),
					want, uint32(want.Before), uint32(want.After))
			}
			if got := img.Code[tc.pc]; got != tc.after {
				t.Errorf("image word after injection = %#08x, want %#08x",
					uint32(got), uint32(tc.after))
			}
		})
	}
}

// TestGoldenImageEncoding pins the assembled test image itself, so the
// golden injections above cannot silently drift with the assembler.
func TestGoldenImageEncoding(t *testing.T) {
	want := []ucode.Instr{
		ucode.Enc(ucode.OpMovI, 1, 0, 0x100),
		ucode.Enc(ucode.OpIn, 2, 1, 4),
		ucode.Enc(ucode.OpCmpI, 2, 0, 0),
		ucode.Enc(ucode.OpJz, 0, 0, 9),
		ucode.Enc(ucode.OpLd, 3, 1, 8),
		ucode.Enc(ucode.OpSt, 1, 3, 12),
		ucode.Enc(ucode.OpMov, 4, 3, 0),
		ucode.Enc(ucode.OpAdd, 4, 2, 0),
		ucode.Enc(ucode.OpAssert, 4, 0, 0),
		ucode.Enc(ucode.OpHalt, 0, 0, 0),
	}
	img := testImage(t)
	if len(img.Code) != len(want) {
		t.Fatalf("image has %d instructions, want %d", len(img.Code), len(want))
	}
	for pc, w := range want {
		if img.Code[pc] != w {
			t.Errorf("pc %d: word %#08x, want %#08x", pc, uint32(img.Code[pc]), uint32(w))
		}
	}
	if got, ok := img.Entries["main"]; !ok || got != 0 {
		t.Errorf("entry main = %d, %v; want 0, true", got, ok)
	}
}
