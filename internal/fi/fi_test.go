package fi

import (
	"math/rand"
	"testing"

	"resilientos/internal/ucode"
)

var testProg = `
.entry main
main:
	movi r1, 0x100
	in   r2, [r1+4]
	cmpi r2, 0
	jz   done
	ld   r3, [r1+8]
	st   [r1+12], r3
	mov  r4, r3
	add  r4, r2
	assert r4
done:
	halt
`

func testImage(t *testing.T) *ucode.Image {
	t.Helper()
	img, err := ucode.Assemble(testProg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestInjectRandomMutatesExactlyOneInstruction(t *testing.T) {
	orig := testImage(t)
	for seed := int64(0); seed < 50; seed++ {
		img := orig.Clone()
		inj := New(rand.New(rand.NewSource(seed))).InjectRandom(img)
		diff := 0
		for pc := range img.Code {
			if img.Code[pc] != orig.Code[pc] {
				diff++
				if pc != inj.PC {
					t.Fatalf("seed %d: mutated pc %d but recorded %d", seed, pc, inj.PC)
				}
				if img.Code[pc] != inj.After {
					t.Fatalf("seed %d: After mismatch", seed)
				}
			}
		}
		if diff > 1 {
			t.Fatalf("seed %d: %d instructions mutated", seed, diff)
		}
		// diff may be 0 for a bit flip landing in a don't-care field of a
		// jump — no: flips change the word. diff==0 only if After==Before,
		// which mutate never produces except LoopCond on a non-branch
		// (excluded by applicability). So require a change:
		if diff == 0 {
			t.Fatalf("seed %d: no instruction changed (%v)", seed, inj)
		}
	}
}

func TestSrcRegFault(t *testing.T) {
	img := testImage(t)
	inj, ok := New(rand.New(rand.NewSource(1))).TryInject(img, FaultSrcReg)
	if !ok {
		t.Fatal("no applicable site")
	}
	if inj.Before.Rs() == inj.After.Rs() {
		t.Fatal("rs unchanged")
	}
	if inj.Before.Op() != inj.After.Op() || inj.Before.Rd() != inj.After.Rd() ||
		inj.Before.Imm() != inj.After.Imm() {
		t.Fatal("fields other than rs changed")
	}
}

func TestDstRegFault(t *testing.T) {
	img := testImage(t)
	inj, ok := New(rand.New(rand.NewSource(1))).TryInject(img, FaultDstReg)
	if !ok {
		t.Fatal("no applicable site")
	}
	if inj.Before.Rd() == inj.After.Rd() {
		t.Fatal("rd unchanged")
	}
}

func TestPointerFaultTargetsMemOps(t *testing.T) {
	img := testImage(t)
	for seed := int64(0); seed < 20; seed++ {
		cp := img.Clone()
		inj, ok := New(rand.New(rand.NewSource(seed))).TryInject(cp, FaultPointer)
		if !ok {
			t.Fatal("no applicable site")
		}
		switch inj.Before.Op() {
		case ucode.OpLd, ucode.OpSt, ucode.OpIn, ucode.OpOut:
		default:
			t.Fatalf("pointer fault hit %v", inj.Before.Op())
		}
	}
}

func TestStaleFaultNopsOut(t *testing.T) {
	img := testImage(t)
	inj, ok := New(rand.New(rand.NewSource(3))).TryInject(img, FaultStale)
	if !ok {
		t.Fatal("no applicable site")
	}
	if inj.After.Op() != ucode.OpNop {
		t.Fatalf("after = %v, want nop", inj.After)
	}
	switch inj.Before.Op() {
	case ucode.OpMovI, ucode.OpMov, ucode.OpLd, ucode.OpIn:
	default:
		t.Fatalf("stale fault hit %v", inj.Before.Op())
	}
}

func TestLoopCondFaultInverts(t *testing.T) {
	pairs := map[ucode.Op]ucode.Op{
		ucode.OpJz:  ucode.OpJnz,
		ucode.OpJnz: ucode.OpJz,
		ucode.OpJlt: ucode.OpJge,
		ucode.OpJge: ucode.OpJlt,
	}
	img := testImage(t)
	inj, ok := New(rand.New(rand.NewSource(1))).TryInject(img, FaultLoopCond)
	if !ok {
		t.Fatal("no applicable site")
	}
	if want := pairs[inj.Before.Op()]; inj.After.Op() != want {
		t.Fatalf("inverted %v -> %v, want %v", inj.Before.Op(), inj.After.Op(), want)
	}
	if inj.Before.Imm() != inj.After.Imm() {
		t.Fatal("branch target changed")
	}
}

func TestBitFlipChangesOneBit(t *testing.T) {
	img := testImage(t)
	for seed := int64(0); seed < 20; seed++ {
		cp := img.Clone()
		inj, ok := New(rand.New(rand.NewSource(seed))).TryInject(cp, FaultBitFlip)
		if !ok {
			t.Fatal("no applicable site")
		}
		x := uint32(inj.Before) ^ uint32(inj.After)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("xor = %#x, want single bit", x)
		}
	}
}

func TestElideFault(t *testing.T) {
	img := testImage(t)
	inj, ok := New(rand.New(rand.NewSource(1))).TryInject(img, FaultElide)
	if !ok {
		t.Fatal("no applicable site")
	}
	if inj.After.Op() != ucode.OpNop {
		t.Fatalf("after = %v", inj.After)
	}
}

func TestLoopCondNotApplicableWithoutBranches(t *testing.T) {
	img := ucode.MustAssemble("\n.entry m\nm:\n\tmovi r1, 1\n\thalt\n", nil)
	_, ok := New(rand.New(rand.NewSource(1))).TryInject(img, FaultLoopCond)
	if ok {
		t.Fatal("loop-cond fault applied to branchless code")
	}
}

func TestInjectRandomDeterministic(t *testing.T) {
	a := testImage(t)
	b := testImage(t)
	ia := New(rand.New(rand.NewSource(9))).InjectRandom(a)
	ib := New(rand.New(rand.NewSource(9))).InjectRandom(b)
	if ia != ib {
		t.Fatalf("same seed, different injections: %v vs %v", ia, ib)
	}
}

// Mutated programs must always land in a defined VM outcome — the fault
// campaign depends on never panicking the host.
func TestMutatedProgramsAlwaysClassify(t *testing.T) {
	orig := testImage(t)
	rng := rand.New(rand.NewSource(42))
	inj := New(rng)
	bus := busStub{}
	for i := 0; i < 2000; i++ {
		img := orig.Clone()
		// Pile up several faults for good measure.
		for n := 0; n < 1+rng.Intn(3); n++ {
			inj.InjectRandom(img)
		}
		vm := ucode.New(img, bus)
		vm.Budget = 5000
		res := vm.Run("main")
		switch res.Outcome {
		case ucode.OutcomeOK, ucode.OutcomeFail, ucode.OutcomeAssert,
			ucode.OutcomeMMU, ucode.OutcomeCPU, ucode.OutcomeStall:
		default:
			t.Fatalf("iteration %d: unclassified outcome %v", i, res.Outcome)
		}
	}
}

type busStub struct{}

func (busStub) In(port uint32) (uint32, bool) { return 0, true }

func (busStub) Out(port, val uint32) bool { return true }
