// Package fslib is the application-side file library: blocking wrappers
// over the VFS protocol, playing the role of libc's file calls.
package fslib

import (
	"errors"
	"fmt"
	"strings"

	"resilientos/internal/kernel"
	"resilientos/internal/proto"
)

// Errors mapped from VFS reply codes.
var (
	ErrNotFound = errors.New("fslib: no such file")
	ErrExist    = errors.New("fslib: file exists")
	ErrIO       = errors.New("fslib: I/O error")
	ErrNoSpace  = errors.New("fslib: no space")
	ErrAgain    = errors.New("fslib: try again")
)

func codeErr(code int64) error {
	switch code {
	case proto.ErrNotFound:
		return ErrNotFound
	case proto.ErrExist:
		return ErrExist
	case proto.ErrIO:
		return ErrIO
	case proto.ErrNoSpace:
		return ErrNoSpace
	case proto.ErrAgain:
		return ErrAgain
	default:
		return fmt.Errorf("fslib: error %d", code)
	}
}

// File is one open descriptor belonging to the calling process.
type File struct {
	ctx *kernel.Ctx
	vfs kernel.Endpoint
	fd  int64
}

// call is a SendRec with uniform error mapping.
func call(c *kernel.Ctx, vfs kernel.Endpoint, m kernel.Message) (kernel.Message, error) {
	reply, err := c.SendRec(vfs, m)
	if err != nil {
		return kernel.Message{}, ErrIO
	}
	if reply.Arg1 < 0 {
		return reply, codeErr(reply.Arg1)
	}
	return reply, nil
}

// Open opens an existing file or device node for I/O.
func Open(c *kernel.Ctx, vfs kernel.Endpoint, path string) (*File, error) {
	reply, err := call(c, vfs, kernel.Message{
		Type: proto.FSOpen, Name: path, Arg1: proto.FSFlagRead | proto.FSFlagWrite,
	})
	if err != nil {
		return nil, err
	}
	return &File{ctx: c, vfs: vfs, fd: reply.Arg1}, nil
}

// Create creates (and opens) a new file.
func Create(c *kernel.Ctx, vfs kernel.Endpoint, path string) (*File, error) {
	reply, err := call(c, vfs, kernel.Message{
		Type: proto.FSCreate, Name: path, Arg1: proto.FSFlagRead | proto.FSFlagWrite,
	})
	if err != nil {
		return nil, err
	}
	return &File{ctx: c, vfs: vfs, fd: reply.Arg1}, nil
}

// Read returns up to max bytes from the current offset; nil at EOF.
func (f *File) Read(max int) ([]byte, error) {
	reply, err := call(f.ctx, f.vfs, kernel.Message{
		Type: proto.FSRead, Arg1: f.fd, Arg2: int64(max),
	})
	if err != nil {
		return nil, err
	}
	if reply.Arg1 == 0 {
		return nil, nil // EOF
	}
	return reply.Payload, nil
}

// Write appends b at the current offset.
func (f *File) Write(b []byte) (int, error) {
	reply, err := call(f.ctx, f.vfs, kernel.Message{
		Type: proto.FSWrite, Arg1: f.fd, Payload: b,
	})
	if err != nil {
		return 0, err
	}
	return int(reply.Arg1), nil
}

// Ioctl issues a device control call on a device descriptor.
func (f *File) Ioctl(op, arg int64) (int64, error) {
	reply, err := call(f.ctx, f.vfs, kernel.Message{
		Type: proto.FSIoctl, Arg1: f.fd, Arg2: op, Arg3: arg,
	})
	if err != nil {
		return 0, err
	}
	return reply.Arg1, nil
}

// Close releases the descriptor.
func (f *File) Close() error {
	_, err := call(f.ctx, f.vfs, kernel.Message{Type: proto.FSClose, Arg1: f.fd})
	return err
}

// Stat returns a file's size.
func Stat(c *kernel.Ctx, vfs kernel.Endpoint, path string) (int64, error) {
	reply, err := call(c, vfs, kernel.Message{Type: proto.FSStat, Name: path})
	if err != nil {
		return 0, err
	}
	return reply.Arg2, nil
}

// Unlink removes a file or empty directory.
func Unlink(c *kernel.Ctx, vfs kernel.Endpoint, path string) error {
	_, err := call(c, vfs, kernel.Message{Type: proto.FSUnlink, Name: path})
	return err
}

// Mkdir creates a directory.
func Mkdir(c *kernel.Ctx, vfs kernel.Endpoint, path string) error {
	_, err := call(c, vfs, kernel.Message{Type: proto.FSMkdir, Name: path})
	return err
}

// Readdir lists a directory.
func Readdir(c *kernel.Ctx, vfs kernel.Endpoint, path string) ([]string, error) {
	reply, err := call(c, vfs, kernel.Message{Type: proto.FSReaddir, Name: path})
	if err != nil {
		return nil, err
	}
	if len(reply.Payload) == 0 {
		return nil, nil
	}
	return strings.Split(string(reply.Payload), "\n"), nil
}

// Fd exposes the descriptor number (tests and diagnostics).
func (f *File) Fd() int64 { return f.fd }
