package fslib

import (
	"errors"
	"testing"

	"resilientos/internal/proto"
)

func TestCodeErrMapping(t *testing.T) {
	cases := map[int64]error{
		proto.ErrNotFound: ErrNotFound,
		proto.ErrExist:    ErrExist,
		proto.ErrIO:       ErrIO,
		proto.ErrNoSpace:  ErrNoSpace,
		proto.ErrAgain:    ErrAgain,
	}
	for code, want := range cases {
		if !errors.Is(codeErr(code), want) {
			t.Errorf("code %d not mapped to %v", code, want)
		}
	}
	if err := codeErr(-99); err == nil {
		t.Error("unknown code mapped to nil")
	}
}
