package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	end := e.Run(0)
	if end != 3*time.Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestScheduleTieBreakBySeq(t *testing.T) {
	e := NewEnv(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	e := NewEnv(1)
	fired := false
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() { fired = true })
	})
	e.Run(0)
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock went backwards: %v", e.Now())
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEnv(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	e := NewEnv(1)
	ev := e.Schedule(0, func() {})
	e.Run(0)
	if ev.Cancel() {
		t.Fatal("Cancel after firing returned true")
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEnv(1)
	fired := false
	e.Schedule(10*time.Second, func() { fired = true })
	end := e.Run(5 * time.Second)
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	// Continuing the run past the horizon fires it.
	end = e.Run(10 * time.Second)
	if !fired {
		t.Fatal("event did not fire on resumed run")
	}
	if end != 15*time.Second {
		t.Fatalf("end = %v, want 15s (5s + 10s horizon)", end)
	}
}

func TestRunHorizonAdvancesIdleClock(t *testing.T) {
	e := NewEnv(1)
	end := e.Run(7 * time.Second)
	if end != 7*time.Second {
		t.Fatalf("idle run end = %v, want 7s", end)
	}
}

func TestStop(t *testing.T) {
	e := NewEnv(1)
	count := 0
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stopped mid-run)", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestPending(t *testing.T) {
	e := NewEnv(1)
	ev1 := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	ev1.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEnv(42).Rand()
	b := NewEnv(42).Rand()
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
}
