package sim

import (
	"fmt"
	"runtime/debug"
)

// ProcState describes the lifecycle of a simulated process.
type ProcState int

// Process lifecycle states.
const (
	StateRunnable ProcState = iota + 1
	StateRunning
	StateParked
	StateDead
)

func (s ProcState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// killSentinel unwinds a process goroutine when the process is killed from
// outside while parked.
type killSentinel struct{}

// exitSentinel unwinds a process goroutine when the process exits itself.
type exitSentinel struct{ status int }

// Proc is a simulated process: a goroutine that runs cooperatively under
// the environment's scheduler. Exactly one process goroutine executes at a
// time; it returns control by parking, sleeping, or exiting.
type Proc struct {
	env    *Env
	pid    int
	name   string
	state  ProcState
	resume chan any // scheduler -> process: value to return from Park

	killed     bool // kill requested; delivered at next park point
	exitStatus int
	exitHooks  []func(status int)
	wakeEv     *Event // pending wake/resume event, if any
}

// PID returns the process's simulation-unique ID.
func (p *Proc) PID() int { return p.pid }

// Name returns the process's human-readable name.
func (p *Proc) Name() string { return p.name }

// State returns the process's lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Env returns the environment the process lives on.
func (p *Proc) Env() *Env { return p.env }

// Alive reports whether the process has not yet died.
func (p *Proc) Alive() bool { return p.state != StateDead }

// OnExit registers fn to run (in scheduler context) when the process dies.
// Hooks run in registration order.
func (p *Proc) OnExit(fn func(status int)) {
	p.exitHooks = append(p.exitHooks, fn)
}

// Spawn creates a process named name running body and schedules it to start
// at the current virtual time. The body runs on its own goroutine but only
// while the scheduler has handed it control.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		pid:    e.nextPID,
		name:   name,
		state:  StateRunnable,
		resume: make(chan any),
	}
	e.nextPID++
	e.procs[p.pid] = p
	if e.observer != nil {
		e.observer(ProcSpawn, name, p.pid, 0)
	}
	e.Schedule(0, func() {
		if p.killed || p.state == StateDead {
			// Killed before it ever ran: just report death.
			p.finish(-1)
			return
		}
		go p.top(body)
		p.state = StateRunning
		p.resumeAndWait(nil)
	})
	return p
}

// top is the root frame of a process goroutine. It recovers the unwind
// sentinels, records unexpected panics for the scheduler to re-raise, and
// always returns control.
func (p *Proc) top(body func(*Proc)) {
	status := 0
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case killSentinel:
				status = -1
			case exitSentinel:
				status = v.status
			default:
				p.env.fatal = &procPanic{proc: p.name, value: r, stack: string(debug.Stack())}
				status = -1
			}
		}
		p.finishFromProc(status)
	}()
	// Wait for the first hand-off from the scheduler.
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	body(p)
}

// resumeAndWait hands control to the process goroutine and blocks the
// scheduler until the process parks, exits, or sleeps again.
func (p *Proc) resumeAndWait(v any) {
	p.resume <- v
	<-p.env.yield
}

// finishFromProc marks the process dead from within its own goroutine and
// returns control to the scheduler. Exit hooks are deferred to a fresh
// scheduler event so they run in scheduler context.
func (p *Proc) finishFromProc(status int) {
	p.state = StateDead
	p.exitStatus = status
	env := p.env
	env.Schedule(0, func() { p.runExitHooks() })
	env.yield <- struct{}{}
}

// finish marks a never-started process dead from scheduler context.
func (p *Proc) finish(status int) {
	if p.state == StateDead {
		return
	}
	p.state = StateDead
	p.exitStatus = status
	p.runExitHooks()
}

func (p *Proc) runExitHooks() {
	hooks := p.exitHooks
	p.exitHooks = nil
	delete(p.env.procs, p.pid)
	if p.env.observer != nil {
		p.env.observer(ProcExit, p.name, p.pid, p.exitStatus)
	}
	for _, h := range hooks {
		h(p.exitStatus)
	}
}

// Park blocks the process until another party calls Wake, returning the
// value passed to Wake. If the process is killed while parked, Park never
// returns: the goroutine unwinds through its deferred calls.
//
// Park must only be called from the process's own goroutine.
func (p *Proc) Park() any {
	if p.state != StateRunning {
		panic(fmt.Sprintf("sim: Park on %s process %q", p.state, p.name))
	}
	p.state = StateParked
	p.env.yield <- struct{}{}
	v := <-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	p.state = StateRunning
	return v
}

// Wake schedules the parked process to resume at the current virtual time,
// making Park return v. Waking a process that is not parked panics: callers
// (the kernel layer) are responsible for tracking blocking state.
func (p *Proc) Wake(v any) {
	if p.state != StateParked {
		panic(fmt.Sprintf("sim: Wake on %s process %q", p.state, p.name))
	}
	if p.wakeEv != nil {
		panic(fmt.Sprintf("sim: double Wake on process %q", p.name))
	}
	p.state = StateRunnable
	p.wakeEv = p.env.Schedule(0, func() {
		p.wakeEv = nil
		if p.state != StateRunnable {
			return // killed in the meantime; unwind was handled elsewhere
		}
		p.state = StateRunning
		p.resumeAndWait(v)
	})
}

// Sleep suspends the process for d of virtual time. If the process is
// killed while sleeping, Sleep never returns.
func (p *Proc) Sleep(d Time) {
	if p.state != StateRunning {
		panic(fmt.Sprintf("sim: Sleep on %s process %q", p.state, p.name))
	}
	p.state = StateParked
	p.wakeEv = p.env.Schedule(d, func() {
		p.wakeEv = nil
		if p.state != StateParked {
			return
		}
		p.state = StateRunning
		p.resumeAndWait(nil)
	})
	p.env.yield <- struct{}{}
	v := <-p.resume
	_ = v
	if p.killed {
		panic(killSentinel{})
	}
	p.state = StateRunning
}

// Yield gives other runnable work at the current virtual time a chance to
// execute, then resumes. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// Exit terminates the calling process with the given status. It never
// returns; deferred calls in the process body run as the goroutine unwinds.
func (p *Proc) Exit(status int) {
	panic(exitSentinel{status: status})
}

// Kill requests asynchronous termination of the process. It may be called
// from scheduler context or from another process. The victim unwinds at its
// current (or next) park point; its exit hooks then run with status -1.
// Killing a dead process is a no-op.
func (p *Proc) Kill() {
	if p.state == StateDead || p.killed {
		return
	}
	p.killed = true
	switch p.state {
	case StateParked:
		// Cancel any pending timer wake and schedule the unwind.
		if p.wakeEv != nil {
			p.wakeEv.Cancel()
			p.wakeEv = nil
		}
		p.state = StateRunnable
		p.env.Schedule(0, func() {
			if p.state != StateRunnable {
				return
			}
			p.state = StateRunning
			p.resumeAndWait(killSentinel{})
		})
	case StateRunnable:
		// Either not yet started, or a wake/sleep event is in flight; that
		// event (or the start event) observes p.killed and unwinds.
	case StateRunning:
		// Killing yourself: unwind immediately.
		panic(killSentinel{})
	}
}

// ExitStatus returns the status the process died with (-1 for killed or
// crashed). Only meaningful once the process is dead.
func (p *Proc) ExitStatus() int { return p.exitStatus }
