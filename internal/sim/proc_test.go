package sim

import (
	"testing"
	"time"
)

func TestSpawnRunsBody(t *testing.T) {
	e := NewEnv(1)
	ran := false
	e.Spawn("worker", func(p *Proc) { ran = true })
	e.Run(0)
	if !ran {
		t.Fatal("spawned body did not run")
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		woke = e.Now()
	})
	e.Run(0)
	if woke != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", woke)
	}
}

func TestSleepInterleaving(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(2 * time.Second)
		order = append(order, "a")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1 * time.Second)
		order = append(order, "b")
	})
	e.Run(0)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestParkWake(t *testing.T) {
	e := NewEnv(1)
	var got any
	p := e.Spawn("waiter", func(p *Proc) {
		got = p.Park()
	})
	e.Spawn("waker", func(q *Proc) {
		q.Sleep(time.Second)
		p.Wake("hello")
	})
	e.Run(0)
	if got != "hello" {
		t.Fatalf("Park returned %v, want hello", got)
	}
	if p.State() != StateDead {
		t.Fatalf("waiter state = %v, want dead", p.State())
	}
}

func TestKillParkedProcessRunsDefers(t *testing.T) {
	e := NewEnv(1)
	cleaned := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Park()
		t.Error("Park returned after kill")
	})
	e.Spawn("killer", func(q *Proc) {
		q.Sleep(time.Second)
		p.Kill()
	})
	e.Run(0)
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if p.ExitStatus() != -1 {
		t.Fatalf("ExitStatus = %d, want -1", p.ExitStatus())
	}
}

func TestKillSleepingProcess(t *testing.T) {
	e := NewEnv(1)
	var after bool
	p := e.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		after = true
	})
	e.Spawn("killer", func(q *Proc) {
		q.Sleep(time.Second)
		p.Kill()
	})
	end := e.Run(0)
	if after {
		t.Fatal("sleep returned after kill")
	}
	if end >= time.Hour {
		t.Fatalf("run lasted %v; kill should have canceled the sleep timer", end)
	}
}

func TestKillBeforeStart(t *testing.T) {
	e := NewEnv(1)
	ran := false
	p := e.Spawn("victim", func(p *Proc) { ran = true })
	p.Kill() // before the start event fires
	e.Run(0)
	if ran {
		t.Fatal("killed-before-start process ran")
	}
	if p.State() != StateDead {
		t.Fatalf("state = %v, want dead", p.State())
	}
}

func TestKillRaceWithWake(t *testing.T) {
	// Wake the process, then kill it in the same timestamp before the wake
	// event delivers: the process must unwind, not resume.
	e := NewEnv(1)
	resumed := false
	p := e.Spawn("victim", func(p *Proc) {
		p.Park()
		resumed = true
	})
	e.Spawn("driver", func(q *Proc) {
		q.Sleep(time.Second)
		p.Wake(nil)
		p.Kill()
	})
	e.Run(0)
	if resumed {
		t.Fatal("process resumed after same-instant wake+kill")
	}
}

func TestExitStatus(t *testing.T) {
	e := NewEnv(1)
	p := e.Spawn("exiter", func(p *Proc) {
		p.Exit(42)
	})
	e.Run(0)
	if p.ExitStatus() != 42 {
		t.Fatalf("ExitStatus = %d, want 42", p.ExitStatus())
	}
}

func TestExitRunsDefers(t *testing.T) {
	e := NewEnv(1)
	cleaned := false
	e.Spawn("exiter", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Exit(0)
	})
	e.Run(0)
	if !cleaned {
		t.Fatal("defers skipped on Exit")
	}
}

func TestSelfKill(t *testing.T) {
	e := NewEnv(1)
	var after bool
	p := e.Spawn("suicider", func(p *Proc) {
		p.Kill()
		after = true
	})
	e.Run(0)
	if after {
		t.Fatal("execution continued after self-kill")
	}
	if p.ExitStatus() != -1 {
		t.Fatalf("ExitStatus = %d, want -1", p.ExitStatus())
	}
}

func TestOnExitHooks(t *testing.T) {
	e := NewEnv(1)
	var statuses []int
	p := e.Spawn("child", func(p *Proc) { p.Exit(7) })
	p.OnExit(func(s int) { statuses = append(statuses, s) })
	p.OnExit(func(s int) { statuses = append(statuses, s*10) })
	e.Run(0)
	if len(statuses) != 2 || statuses[0] != 7 || statuses[1] != 70 {
		t.Fatalf("hook statuses = %v, want [7 70]", statuses)
	}
}

func TestOnExitHookForKilled(t *testing.T) {
	e := NewEnv(1)
	status := 99
	p := e.Spawn("victim", func(p *Proc) { p.Park() })
	p.OnExit(func(s int) { status = s })
	e.Spawn("killer", func(q *Proc) { p.Kill() })
	e.Run(0)
	if status != -1 {
		t.Fatalf("hook status = %d, want -1", status)
	}
}

func TestYieldAllowsInterleaving(t *testing.T) {
	e := NewEnv(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run(0)
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcIdentity(t *testing.T) {
	e := NewEnv(1)
	a := e.Spawn("a", func(p *Proc) {})
	b := e.Spawn("b", func(p *Proc) {})
	if a.PID() == b.PID() {
		t.Fatal("PIDs not unique")
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatalf("names = %q, %q", a.Name(), b.Name())
	}
}

func TestDoubleKillIsNoop(t *testing.T) {
	e := NewEnv(1)
	p := e.Spawn("victim", func(p *Proc) { p.Park() })
	e.Spawn("killer", func(q *Proc) {
		p.Kill()
		p.Kill()
	})
	e.Run(0)
	if p.State() != StateDead {
		t.Fatalf("state = %v, want dead", p.State())
	}
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []int {
		e := NewEnv(7)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
				p.Sleep(d)
				order = append(order, i)
			})
		}
		e.Run(0)
		return order
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths = %d, %d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two identical runs diverged")
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv(1)
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		e.Spawn("child", func(c *Proc) { childRan = true })
		p.Sleep(time.Second)
	})
	e.Run(0)
	if !childRan {
		t.Fatal("child spawned from process did not run")
	}
}
