// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine provides a virtual clock, an event heap, and cooperative
// process coroutines: at most one simulated process runs at any moment, and
// control transfers between the scheduler and processes are explicit
// (Park/Wake/Sleep). All randomness flows through a seeded generator, so a
// run is reproducible bit-for-bit given the same seed and inputs.
//
// Everything above this package (kernel, servers, drivers, workloads) runs
// in virtual time; wall-clock speed of the host is irrelevant to simulated
// results.
package sim

import (
	"container/heap"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as an offset from boot.
type Time = time.Duration

// event is a scheduled callback. Events with equal time fire in schedule
// order (seq breaks ties), which keeps runs deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ProcEvent identifies a process-lifecycle transition reported to an
// observer (see Env.SetObserver).
type ProcEvent int

// Process-lifecycle transitions.
const (
	ProcSpawn ProcEvent = iota + 1
	ProcExit
)

// Observer receives process-lifecycle events from the engine. For
// ProcSpawn status is 0; for ProcExit it is the exit status (-1 for
// killed/crashed). Observers run synchronously in scheduler order and
// must be deterministic.
type Observer func(ev ProcEvent, name string, pid, status int)

// Env is a simulation environment: one virtual clock, one event queue, and
// the set of processes living on it. An Env is not safe for concurrent use;
// the entire simulation is single-threaded by design.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	nexec   uint64 // events executed (scheduler work metric)
	rng     *rand.Rand
	yield   chan struct{} // processes signal the scheduler here
	procs   map[int]*Proc
	nextPID int
	stopped bool
	fatal   *procPanic // unexpected panic captured from a process

	observer Observer
	stepHook func()     // runs after every executed event (see SetStepHook)
	perf     *PerfHooks // wall-clock instrumentation (see SetPerfHooks)

	logw    io.Writer
	logTags map[string]bool // nil means log everything when logw != nil
}

// NewEnv returns a fresh environment whose randomness is derived from seed.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// SetObserver installs the process-lifecycle observer (nil disables).
// The observability layer (internal/obs) attaches here.
func (e *Env) SetObserver(o Observer) { e.observer = o }

// SetStepHook installs a callback that runs in scheduler context after
// every executed event (nil disables). The live invariant checker
// (internal/check) attaches here: the hook sees the system exactly at
// event boundaries, when no process is mid-instruction. The hook must not
// call blocking process primitives and must be deterministic.
func (e *Env) SetStepHook(fn func()) { e.stepHook = fn }

// EventsExecuted reports how many scheduler events have run — the
// engine's own work metric, independent of virtual time.
func (e *Env) EventsExecuted() uint64 { return e.nexec }

// PerfHooks are wall-clock instrumentation callbacks for the scheduler
// loop. They are plain funcs so this package keeps zero dependencies on
// the profiler (internal/perf attaches here). The hooks observe wall
// time only and must not touch simulation state: a run's virtual-time
// results are identical with and without them.
type PerfHooks struct {
	EventBegin, EventEnd func() // bracket every executed event
	HookBegin, HookEnd   func() // bracket the step hook (invariant checker)
}

// SetPerfHooks installs wall-clock instrumentation on the scheduler
// loop (nil disables).
func (e *Env) SetPerfHooks(h *PerfHooks) { e.perf = h }

// SetLogOutput directs simulation trace output to w (nil disables tracing).
func (e *Env) SetLogOutput(w io.Writer) { e.logw = w }

// SetLogTags restricts tracing to the given tags. An empty call restores
// all-tags logging.
func (e *Env) SetLogTags(tags ...string) {
	if len(tags) == 0 {
		e.logTags = nil
		return
	}
	e.logTags = make(map[string]bool, len(tags))
	for _, t := range tags {
		e.logTags[t] = true
	}
}

// Logf emits one trace line stamped with the virtual clock. Tracing is off
// unless SetLogOutput was called.
func (e *Env) Logf(tag, format string, args ...any) {
	if e.logw == nil {
		return
	}
	if e.logTags != nil && !e.logTags[tag] {
		return
	}
	fmt.Fprintf(e.logw, "[%12s] %-8s %s\n", e.now, tag, fmt.Sprintf(format, args...))
}

// Schedule arranges for fn to run on the scheduler at now+d. The callback
// runs in scheduler context and must not call blocking process primitives
// (Sleep, Park, ...). It returns a handle that can cancel the event.
func (e *Env) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev := &event{at: e.now + d, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Event{env: e, ev: ev}
}

// Event is a cancelable handle to a scheduled callback.
type Event struct {
	env *Env
	ev  *event
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. It reports whether the event was
// actually stopped before firing.
func (ev *Event) Cancel() bool {
	if ev == nil || ev.ev == nil || ev.ev.canceled {
		return false
	}
	if ev.ev.index < 0 {
		return false // already popped (fired or firing)
	}
	ev.ev.canceled = true
	return true
}

// Ticker is a cancelable periodic callback created by Env.Tick. The
// telemetry sampler (internal/obs/timeseries) uses one per run segment to
// fire window rollovers at exact virtual-time boundaries.
type Ticker struct {
	env     *Env
	ev      *Event
	period  Time
	fn      func()
	stopped bool
}

// Tick schedules fn to run every period of virtual time, first at
// now+period. Unlike hand-rolled Schedule chains, the returned Ticker can
// be stopped, which removes the pending event from the queue — so a
// finished consumer does not keep the event queue from draining. fn runs
// in scheduler context and must not block.
func (e *Env) Tick(period Time, fn func()) *Ticker {
	if period <= 0 {
		period = 1
	}
	t := &Ticker{env: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.env.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped { // fn may have called Stop
			t.arm()
		}
	})
}

// Stop cancels the ticker; the pending rollover never fires. Idempotent.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.ev.Cancel()
}

// Stop makes Run return after the current event completes.
func (e *Env) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Env) Stopped() bool { return e.stopped }

// Run executes events until the queue drains, Stop is called, or the
// optional horizon passes (horizon <= 0 means no horizon). It returns the
// virtual time at which the run ended.
func (e *Env) Run(horizon Time) Time {
	limit := Time(-1)
	if horizon > 0 {
		limit = e.now + horizon
	}
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		if limit >= 0 && ev.at > limit {
			// Put it back; the horizon was reached.
			heap.Push(&e.events, ev)
			e.now = limit
			return e.now
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.nexec++
		if e.perf != nil {
			e.perf.EventBegin()
			ev.fn()
			e.perf.EventEnd()
		} else {
			ev.fn()
		}
		if e.stepHook != nil {
			if e.perf != nil {
				e.perf.HookBegin()
				e.stepHook()
				e.perf.HookEnd()
			} else {
				e.stepHook()
			}
		}
		if e.fatal != nil {
			p := e.fatal
			e.fatal = nil
			panic(fmt.Sprintf("sim: process %q crashed: %v\n%s", p.proc, p.value, p.stack))
		}
	}
	if limit >= 0 && e.now < limit && !e.stopped {
		e.now = limit
	}
	return e.now
}

// Pending reports the number of events waiting in the queue.
func (e *Env) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// procPanic records a non-sentinel panic escaping a process body so it can
// be re-raised on the scheduler goroutine with context.
type procPanic struct {
	proc  string
	value any
	stack string
}
