package sim

import "sync"

// RunUntil advances the environment to the absolute virtual time t,
// executing every event scheduled before or at t. Unlike Run, whose
// horizon is relative to the current clock, RunUntil is idempotent for a
// clock already at or past t. It returns the virtual time reached (t,
// unless Stop fired first).
func (e *Env) RunUntil(t Time) Time {
	if t <= e.now {
		return e.now
	}
	return e.Run(t - e.now)
}

// Lockstep advances a set of fully independent environments to shared
// absolute times — the multi-system clock coordinator the fleet simulation
// (internal/cluster) is built on. Each member keeps its own event queue,
// RNG, and processes; Lockstep only synchronizes their clocks at barrier
// times, so members never observe each other mid-slice.
//
// Because members share no state, AdvanceTo may run them concurrently: a
// worker pool advances every member to the barrier, then waits for all of
// them before returning. Each member's execution is internally sequential
// and seeded, so results are byte-identical for any worker count — the
// same property the sharded campaign runner (internal/campaign) provides
// for independent cells.
type Lockstep struct {
	envs    []*Env
	workers int

	perfBegin, perfEnd func() // bracket AdvanceTo (see SetPerfHooks)
}

// NewLockstep creates a coordinator over envs advancing with the given
// worker-pool size (values < 1 mean 1: strictly sequential, in member
// order).
func NewLockstep(workers int, envs ...*Env) *Lockstep {
	if workers < 1 {
		workers = 1
	}
	return &Lockstep{envs: envs, workers: workers}
}

// Add appends another member environment.
func (l *Lockstep) Add(e *Env) { l.envs = append(l.envs, e) }

// Members returns the coordinated environments, in member order.
func (l *Lockstep) Members() []*Env { return l.envs }

// SetPerfHooks installs wall-clock instrumentation bracketing every
// AdvanceTo barrier (both nil disables). When the same profiler also
// observes member environments, the coordinator must run with one
// worker: the profiler is single-threaded.
func (l *Lockstep) SetPerfHooks(begin, end func()) {
	l.perfBegin, l.perfEnd = begin, end
}

// AdvanceTo advances every member to the absolute virtual time t and
// returns once all have reached it (a barrier). Members already at or
// past t are untouched. The caller must not touch any member while
// AdvanceTo is in flight.
func (l *Lockstep) AdvanceTo(t Time) {
	if l.perfBegin != nil {
		l.perfBegin()
		defer l.perfEnd()
	}
	if l.workers == 1 || len(l.envs) <= 1 {
		for _, e := range l.envs {
			e.RunUntil(t)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := l.workers
	if workers > len(l.envs) {
		workers = len(l.envs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				l.envs[i].RunUntil(t)
			}
		}()
	}
	for i := range l.envs {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
