package sim

import (
	"fmt"
	"testing"
	"time"
)

// A member's events before the barrier run; events after it do not.
func TestRunUntil(t *testing.T) {
	e := NewEnv(1)
	var fired []string
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, "a") })
	e.Schedule(30*time.Millisecond, func() { fired = append(fired, "b") })

	if got := e.RunUntil(20 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("RunUntil reached %v, want 20ms", got)
	}
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v, want [a]", fired)
	}
	// Idempotent at or before the current clock.
	if got := e.RunUntil(5 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("backwards RunUntil moved the clock to %v", got)
	}
	e.RunUntil(40 * time.Millisecond)
	if len(fired) != 2 || fired[1] != "b" {
		t.Fatalf("fired = %v, want [a b]", fired)
	}
}

// lockstepTrace runs N self-rescheduling environments to a shared horizon
// in slices and returns a deterministic transcript of what each saw.
func lockstepTrace(workers int) string {
	const n = 4
	envs := make([]*Env, n)
	logs := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		envs[i] = NewEnv(int64(100 + i))
		period := time.Duration(i+1) * time.Millisecond
		envs[i].Tick(period, func() {
			logs[i] += fmt.Sprintf("%d@%v r=%d;", i, envs[i].Now(), envs[i].Rand().Intn(1000))
		})
	}
	ls := NewLockstep(workers, envs...)
	for bar := 5 * time.Millisecond; bar <= 25*time.Millisecond; bar += 5 * time.Millisecond {
		ls.AdvanceTo(bar)
		for i, e := range envs {
			if e.Now() != bar {
				logs[i] += fmt.Sprintf("CLOCK-SKEW %v != %v;", e.Now(), bar)
			}
		}
	}
	out := ""
	for i := 0; i < n; i++ {
		out += logs[i] + "\n"
	}
	return out
}

// The lockstep barrier yields byte-identical member transcripts for any
// worker count — the determinism contract the fleet simulator relies on.
func TestLockstepWorkerIndependence(t *testing.T) {
	want := lockstepTrace(1)
	for _, w := range []int{2, 3, 8} {
		if got := lockstepTrace(w); got != want {
			t.Fatalf("workers=%d transcript differs:\n%s\nwant:\n%s", w, got, want)
		}
	}
	if want == "" {
		t.Fatal("empty transcript")
	}
}
