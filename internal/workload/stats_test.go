package workload

// The statistical battery: every arrival process must actually sample
// its declared distribution. For each process and each of three seeds we
// draw N=50k unit-mean gaps and check the sample mean and coefficient of
// variation against the family's analytic values, then separate Poisson
// from fixed-rate with a Kolmogorov–Smirnov distance against the Exp(1)
// CDF. A broken sampler (wrong normalisation, biased squeeze, shape
// plumbing dropped) trips a band; a correct one passes for every seed.

import (
	"math"
	"sort"
	"testing"
)

const statN = 50000

var statSeeds = []int64{3, 11, 77}

// sample draws n unit-mean gaps from the process for one seed.
func sample(t *testing.T, p process, seed int64, n int) []float64 {
	t.Helper()
	r := stream(seed, 0, 0)
	out := make([]float64, n)
	for i := range out {
		out[i] = p.gap(r)
		if out[i] < 0 || math.IsNaN(out[i]) || math.IsInf(out[i], 0) {
			t.Fatalf("draw %d invalid: %v", i, out[i])
		}
	}
	return out
}

func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, sd / mean
}

// weibullCV is the analytic CV of a Weibull with shape k:
// sqrt(Gamma(1+2/k)/Gamma(1+1/k)^2 - 1). Computed here independently of
// the sampler so a normalisation bug cannot cancel out.
func weibullCV(k float64) float64 {
	g1 := math.Gamma(1 + 1/k)
	g2 := math.Gamma(1 + 2/k)
	return math.Sqrt(g2/(g1*g1) - 1)
}

func TestProcessMoments(t *testing.T) {
	cases := []struct {
		name    string
		p       process
		wantCV  float64
		meanTol float64 // relative
		cvTol   float64 // absolute
	}{
		{"fixed", fixedProcess{}, 0, 0, 0},
		{"poisson", poissonProcess{}, 1, 0.02, 0.025},
		{"gamma k=4", gammaProcess{shape: 4}, 0.5, 0.02, 0.02},
		{"gamma k=0.5", gammaProcess{shape: 0.5}, math.Sqrt2, 0.03, 0.06},
		{"weibull k=1.5", newWeibull(1.5), weibullCV(1.5), 0.02, 0.02},
		{"weibull k=0.8", newWeibull(0.8), weibullCV(0.8), 0.03, 0.06},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range statSeeds {
				mean, cv := meanCV(sample(t, tc.p, seed, statN))
				if math.Abs(mean-1) > tc.meanTol {
					t.Errorf("seed %d: mean %.4f, want 1 +-%.3f", seed, mean, tc.meanTol)
				}
				if math.Abs(cv-tc.wantCV) > tc.cvTol {
					t.Errorf("seed %d: CV %.4f, want %.4f +-%.3f", seed, cv, tc.wantCV, tc.cvTol)
				}
			}
		})
	}
}

// ksExp computes the Kolmogorov–Smirnov distance between the sample and
// the Exp(1) CDF.
func ksExp(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		cdf := 1 - math.Exp(-x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if v := math.Abs(cdf - lo); v > d {
			d = v
		}
		if v := math.Abs(cdf - hi); v > d {
			d = v
		}
	}
	return d
}

// TestPoissonVsFixedSeparability: the Poisson sampler must match Exp(1)
// to within KS distance 0.01 at N=50k (the 1% critical value is ~0.0073),
// while the degenerate fixed-rate sampler must sit far from it — so the
// battery can tell the two processes apart, not just rubber-stamp both.
func TestPoissonVsFixedSeparability(t *testing.T) {
	for _, seed := range statSeeds {
		if d := ksExp(sample(t, poissonProcess{}, seed, statN)); d > 0.01 {
			t.Errorf("seed %d: poisson KS distance vs Exp(1) = %.4f, want <= 0.01", seed, d)
		}
		if d := ksExp(sample(t, fixedProcess{}, seed, statN)); d < 0.3 {
			t.Errorf("seed %d: fixed-rate KS distance vs Exp(1) = %.4f, want >= 0.3", seed, d)
		}
	}
}

// TestGammaShapeOne: gamma with shape 1 is exactly the exponential, so
// its KS distance against Exp(1) must pass the same band as Poisson.
func TestGammaShapeOne(t *testing.T) {
	for _, seed := range statSeeds {
		if d := ksExp(sample(t, gammaProcess{shape: 1}, seed, statN)); d > 0.01 {
			t.Errorf("seed %d: gamma(1) KS distance vs Exp(1) = %.4f, want <= 0.01", seed, d)
		}
	}
}
