package workload

import (
	"math"
	"math/rand"
	"sort"

	"resilientos/internal/sim"
)

// minGap floors generated inter-arrival times so a heavy-tailed draw (a
// Weibull burst, a deep diurnal peak) cannot collapse the sequence into
// a zero-width pile-up or stall generation.
const minGap = sim.Time(1000) // 1µs

// splitmix64 is the SplitMix64 finalizer — the stream-splitting hash the
// whole repo derives independent seeds with (cluster node seeds use the
// same constants).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// stream returns the deterministic random stream owned by one (class,
// client) chain: the spec seed split through splitmix64 twice, so chains
// are statistically independent and reordering classes in a spec only
// permutes — never perturbs — the per-chain draws.
func stream(seed int64, class, client int) *rand.Rand {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ uint64(class+1)*0xBF58476D1CE4E5B9)
	x = splitmix64(x ^ uint64(client+1)*0x94D049BB133111EB)
	s := int64(x >> 1) // rand.NewSource ignores the sign bit's entropy anyway
	if s == 0 {
		s = 1
	}
	return rand.New(rand.NewSource(s))
}

// process draws unit-mean inter-arrival gaps; the generator scales them
// by the chain's mean gap and the diurnal modulation at the draw time.
type process interface {
	gap(r *rand.Rand) float64
}

type fixedProcess struct{}

func (fixedProcess) gap(*rand.Rand) float64 { return 1 }

type poissonProcess struct{}

func (poissonProcess) gap(r *rand.Rand) float64 { return r.ExpFloat64() }

// gammaProcess draws Gamma(shape, 1/shape): unit mean, CV 1/sqrt(shape).
// Shape > 1 is smoother than Poisson, shape < 1 burstier.
type gammaProcess struct{ shape float64 }

func (p gammaProcess) gap(r *rand.Rand) float64 { return gammaDraw(r, p.shape) / p.shape }

// gammaDraw samples Gamma(k, 1) by Marsaglia–Tsang squeeze for k >= 1,
// boosted by the U^(1/k) identity for k < 1.
func gammaDraw(r *rand.Rand, k float64) float64 {
	if k < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaDraw(r, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullProcess draws Weibull(shape, lambda) with lambda chosen for unit
// mean: gap = Exp(1)^(1/shape) / Gamma(1+1/shape). Shape < 1 produces
// the heavy-tailed bursty arrivals of real user traffic; shape > 1 is
// more regular than Poisson.
type weibullProcess struct {
	shape float64
	norm  float64 // Gamma(1 + 1/shape), precomputed
}

func newWeibull(shape float64) weibullProcess {
	return weibullProcess{shape: shape, norm: math.Gamma(1 + 1/shape)}
}

func (p weibullProcess) gap(r *rand.Rand) float64 {
	return math.Pow(r.ExpFloat64(), 1/p.shape) / p.norm
}

// newProcess builds the sampler for one validated arrival spec.
func newProcess(a ArrivalSpec) process {
	switch a.Process {
	case ProcessFixed:
		return fixedProcess{}
	case ProcessGamma:
		return gammaProcess{shape: a.Shape}
	case ProcessWeibull:
		return newWeibull(a.Shape)
	default:
		return poissonProcess{}
	}
}

// modAt evaluates the diurnal rate multiplier at virtual time t:
// 1 + sum of the period terms, floored at 0.05 so the rate never
// reaches zero (which would stall a chain forever).
func modAt(periods []Period, t sim.Time) float64 {
	if len(periods) == 0 {
		return 1
	}
	m := 1.0
	for _, p := range periods {
		m += p.Amplitude * math.Sin(2*math.Pi*float64(t)/float64(p.Period)+p.Phase)
	}
	if m < 0.05 {
		m = 0.05
	}
	return m
}

// Event is one arrival of a generated (or recorded) workload: at virtual
// time T from campaign start, client Client of class Class issues a
// request of Size bytes.
type Event struct {
	T      sim.Time `json:"t"` // nanoseconds from campaign start
	Class  string   `json:"class"`
	Client int      `json:"client"`
	Size   int64    `json:"size"`
}

// Generate expands the spec into its full arrival sequence over
// [0, Horizon), merged across classes and clients in time order (ties
// keep class-declaration then client order). The output depends only on
// the spec, so generating twice — or on different machines — yields the
// same slice element for element.
func (s *Spec) Generate() []Event {
	horizon := sim.Time(s.Horizon)
	var out []Event
	for ci, cs := range s.Classes {
		// Each client chain runs at RPS/Clients so the class aggregate
		// matches the spec rate.
		meanGapSec := float64(cs.Clients) / cs.RPS
		for cl := 0; cl < cs.Clients; cl++ {
			r := stream(s.Seed, ci, cl)
			p := newProcess(cs.Arrival)
			t := sim.Time(0)
			for {
				g := p.gap(r) * meanGapSec / modAt(cs.Periods, t)
				gap := sim.Time(g * 1e9)
				if gap < minGap {
					gap = minGap
				}
				t += gap
				if t >= horizon {
					break
				}
				size := cs.Size.Min
				if cs.Size.Max > cs.Size.Min {
					size += r.Int63n(cs.Size.Max - cs.Size.Min + 1)
				}
				out = append(out, Event{T: t, Class: cs.Class, Client: cl, Size: size})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
