package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"resilientos/internal/sim"
)

// Format is the trace format identifier; the parser rejects anything
// else, so a stale v1-era file cannot silently replay wrong.
const Format = "resilientos/trace/v2"

// maxTraceLine bounds one trace line; longer lines are a parse error,
// not an unbounded allocation.
const maxTraceLine = 1 << 20

// TraceClass is one class entry of a trace header: the class name plus
// the SLO budget the recording campaign declared for it (0 = none), so
// a replay reproduces the recorded SLO accounting without the spec.
type TraceClass struct {
	Class string   `json:"class"`
	SLONs sim.Time `json:"slo_ns"`
}

// Header is the first line of a tracev2 file. It carries everything a
// replayer needs: provenance (spec name and seed), the campaign horizon,
// the class set with budgets, and the event count (so truncation is an
// error, not a quietly shorter campaign).
type Header struct {
	Format    string       `json:"format"`
	Name      string       `json:"name"`
	Seed      int64        `json:"seed"`
	HorizonNS sim.Time     `json:"horizon_ns"`
	Classes   []TraceClass `json:"classes"`
	Events    int          `json:"events"`
}

// Budgets converts the header's class budgets to the cluster-facing map
// (zero budgets omitted).
func (h Header) Budgets() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, c := range h.Classes {
		if c.SLONs > 0 {
			out[c.Class] = time.Duration(c.SLONs)
		}
	}
	return out
}

// ClassNames returns the header's class names in declaration order.
func (h Header) ClassNames() []string {
	out := make([]string, len(h.Classes))
	for i, c := range h.Classes {
		out[i] = c.Class
	}
	return out
}

// TraceHeader builds the header describing this spec's generated
// sequence of n events.
func (s *Spec) TraceHeader(n int) Header {
	h := Header{
		Format:    Format,
		Name:      s.Name,
		Seed:      s.Seed,
		HorizonNS: sim.Time(s.Horizon),
		Events:    n,
	}
	for _, cs := range s.Classes {
		h.Classes = append(h.Classes, TraceClass{Class: cs.Class, SLONs: sim.Time(cs.SLO)})
	}
	return h
}

// WriteTrace writes a canonical tracev2 stream: the header line, then
// one JSON object per event. Field order is fixed by the struct types
// and numbers are plain integers, so identical inputs always produce
// identical bytes. The header's Events field is forced to len(events).
func WriteTrace(w io.Writer, h Header, events []Event) error {
	h.Format = Format
	h.Events = len(events)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return err
	}
	for i := range events {
		if err := enc.Encode(events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTraceFile writes the trace to path.
func WriteTraceFile(path string, h Header, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, h, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses a tracev2 stream strictly: the first line must be a
// valid header with the exact format identifier; every following line
// must be one event with a non-decreasing timestamp inside the horizon,
// a class declared in the header, and non-negative client and size; and
// the event count must match the header. Any violation is an error with
// its line number — malformed input can never panic or half-load.
func ReadTrace(r io.Reader) (Header, []Event, error) {
	var h Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, fmt.Errorf("workload: trace line 1: %w", err)
		}
		return h, nil, fmt.Errorf("workload: trace is empty")
	}
	if err := strictUnmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("workload: trace line 1: bad header: %w", err)
	}
	if h.Format != Format {
		return h, nil, fmt.Errorf("workload: trace line 1: format %q, want %q", h.Format, Format)
	}
	if h.HorizonNS <= 0 {
		return h, nil, fmt.Errorf("workload: trace line 1: horizon_ns must be positive")
	}
	if h.Events < 0 {
		return h, nil, fmt.Errorf("workload: trace line 1: negative event count")
	}
	if len(h.Classes) == 0 {
		return h, nil, fmt.Errorf("workload: trace line 1: no classes declared")
	}
	classes := make(map[string]bool, len(h.Classes))
	for _, c := range h.Classes {
		if !KnownClass(c.Class) {
			return h, nil, fmt.Errorf("workload: trace line 1: unknown class %q", c.Class)
		}
		if classes[c.Class] {
			return h, nil, fmt.Errorf("workload: trace line 1: class %q declared twice", c.Class)
		}
		if c.SLONs < 0 {
			return h, nil, fmt.Errorf("workload: trace line 1: class %q: negative slo_ns", c.Class)
		}
		classes[c.Class] = true
	}

	var events []Event
	line := 1
	var prev sim.Time
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(bytes.TrimSpace(b)) == 0 {
			return h, nil, fmt.Errorf("workload: trace line %d: blank line", line)
		}
		var ev Event
		if err := strictUnmarshal(b, &ev); err != nil {
			return h, nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		switch {
		case ev.T < 0:
			return h, nil, fmt.Errorf("workload: trace line %d: negative vtime %d", line, ev.T)
		case ev.T < prev:
			return h, nil, fmt.Errorf("workload: trace line %d: vtime %d out of order (previous %d)", line, ev.T, prev)
		case ev.T >= h.HorizonNS:
			return h, nil, fmt.Errorf("workload: trace line %d: vtime %d beyond horizon %d", line, ev.T, h.HorizonNS)
		case !classes[ev.Class]:
			return h, nil, fmt.Errorf("workload: trace line %d: class %q not declared in header", line, ev.Class)
		case ev.Client < 0:
			return h, nil, fmt.Errorf("workload: trace line %d: negative client %d", line, ev.Client)
		case ev.Size < 0:
			return h, nil, fmt.Errorf("workload: trace line %d: negative size %d", line, ev.Size)
		}
		prev = ev.T
		events = append(events, ev)
		if len(events) > h.Events {
			return h, nil, fmt.Errorf("workload: trace line %d: more events than the header's %d", line, h.Events)
		}
	}
	if err := sc.Err(); err != nil {
		return h, nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
	}
	if len(events) != h.Events {
		return h, nil, fmt.Errorf("workload: trace truncated: header declares %d events, found %d", h.Events, len(events))
	}
	return h, events, nil
}

// ReadTraceFile parses the trace at path.
func ReadTraceFile(path string) (Header, []Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing garbage.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}
