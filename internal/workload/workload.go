// Package workload is the declarative workload generator of the fleet
// simulation: JSON specs describe multi-client request streams — per
// service class an arrival process (Poisson, Gamma, Weibull, or
// deterministic fixed-rate), a client population, a request-size range,
// an SLO latency budget, and optional diurnal multi-period rate
// modulation — and the generator expands a spec into the exact arrival
// sequence a fleet campaign (internal/cluster) serves.
//
// Everything is derived from the spec seed through splitmix64 stream
// splitting: every (class, client) pair owns a statistically independent
// random stream, so a spec is byte-reproducible — the same spec always
// generates the same sequence, independent of every other configuration
// knob (fleet size, policy, storm, workers).
//
// A generated sequence can be recorded as a canonical tracev2 JSONL
// file (trace.go) and replayed later: the replayer re-drives exactly the
// recorded (vtime, class, client, size) events through the load
// balancer, which turns any interesting campaign into a pinned
// regression artifact.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Service classes a workload can address. The literals mirror the
// resilientos.Class* constants; they are restated here so the package
// depends only on the simulation clock and can be fuzzed in isolation.
const (
	ClassNet  = "net"  // web fetch via INET + the primary NIC driver
	ClassDisk = "disk" // block I/O via VFS/MFS + the SATA driver
	ClassChar = "char" // character-device jobs via the chr.* drivers
)

// KnownClass reports whether c names a routable service class.
func KnownClass(c string) bool {
	return c == ClassNet || c == ClassDisk || c == ClassChar
}

// Duration is a JSON duration: it unmarshals from either a Go duration
// string ("250ms") or a plain nanosecond integer, and marshals as the
// string form.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("workload: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("workload: duration must be a string or nanosecond integer, got %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Arrival process names.
const (
	ProcessFixed   = "fixed"   // deterministic fixed-rate (CV 0)
	ProcessPoisson = "poisson" // exponential inter-arrivals (CV 1)
	ProcessGamma   = "gamma"   // gamma inter-arrivals (CV 1/sqrt(shape))
	ProcessWeibull = "weibull" // weibull inter-arrivals (bursty for shape<1)
)

// ArrivalSpec selects the inter-arrival process of one class. The mean
// inter-arrival time is always set by the class rate; Shape tunes the
// distribution family where it has one (gamma, weibull).
type ArrivalSpec struct {
	Process string `json:"process"`
	// Shape is the gamma/weibull shape parameter (default 1, which makes
	// both families degenerate to the exponential).
	Shape float64 `json:"shape,omitempty"`
}

// SizeSpec is the per-request size range in bytes; sizes are drawn
// uniformly from [Min, Max]. Min == Max pins a fixed size.
type SizeSpec struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// Period is one diurnal modulation term: the class arrival rate is
// multiplied by 1 + Sum_i Amplitude_i * sin(2*pi*t/Period_i + Phase_i),
// floored at 5% of the base rate. Several periods superpose, so a spec
// can model a daily cycle with a weekly envelope on a compressed clock.
type Period struct {
	Period    Duration `json:"period"`
	Amplitude float64  `json:"amplitude"`
	Phase     float64  `json:"phase,omitempty"` // radians
}

// ClassSpec is one service class's request stream.
type ClassSpec struct {
	Class string `json:"class"`
	// Clients is the number of independent arrival chains; each runs at
	// RPS/Clients so the class aggregate matches RPS (default 1).
	Clients int `json:"clients,omitempty"`
	// RPS is the class-aggregate arrival rate per virtual second.
	RPS     float64     `json:"rps"`
	Arrival ArrivalSpec `json:"arrival"`
	Size    SizeSpec    `json:"size,omitempty"`
	// SLO is the class latency budget; per-class attainment (requests and
	// windows within budget) is reported against it. 0 declares no SLO.
	SLO     Duration `json:"slo,omitempty"`
	Periods []Period `json:"periods,omitempty"`
}

// Spec is one declarative workload: what the fleet serves and how the
// load arrives. See testdata specs and EXPERIMENTS.md for examples.
type Spec struct {
	Name    string      `json:"name"`
	Seed    int64       `json:"seed"`
	Horizon Duration    `json:"horizon"`
	Classes []ClassSpec `json:"classes"`
}

// defaultSizes supplies a per-class size range when the spec leaves the
// size block zero.
var defaultSizes = map[string]SizeSpec{
	ClassNet:  {Min: 1024, Max: 65536},
	ClassDisk: {Min: 4096, Max: 131072},
	ClassChar: {Min: 256, Max: 8192},
}

// Parse decodes and validates a workload spec. Unknown fields are
// rejected so a typo in a spec fails loudly instead of silently running
// the default.
func Parse(b []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload: trailing data after spec")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// normalize applies defaults and validates the spec in place.
func (s *Spec) normalize() error {
	if s.Name == "" {
		s.Name = "workload"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("workload: spec %q: horizon must be positive", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload: spec %q: at least one class required", s.Name)
	}
	seen := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		cs := &s.Classes[i]
		if !KnownClass(cs.Class) {
			return fmt.Errorf("workload: spec %q: unknown class %q (want %s, %s, or %s)",
				s.Name, cs.Class, ClassNet, ClassDisk, ClassChar)
		}
		if seen[cs.Class] {
			return fmt.Errorf("workload: spec %q: class %q declared twice", s.Name, cs.Class)
		}
		seen[cs.Class] = true
		if cs.Clients == 0 {
			cs.Clients = 1
		}
		if cs.Clients < 0 {
			return fmt.Errorf("workload: class %q: clients must be positive", cs.Class)
		}
		if cs.RPS <= 0 {
			return fmt.Errorf("workload: class %q: rps must be positive", cs.Class)
		}
		switch cs.Arrival.Process {
		case ProcessFixed, ProcessPoisson:
			if cs.Arrival.Shape != 0 {
				return fmt.Errorf("workload: class %q: %s takes no shape", cs.Class, cs.Arrival.Process)
			}
		case ProcessGamma, ProcessWeibull:
			if cs.Arrival.Shape == 0 {
				cs.Arrival.Shape = 1
			}
			if cs.Arrival.Shape < 0 {
				return fmt.Errorf("workload: class %q: shape must be positive", cs.Class)
			}
		case "":
			return fmt.Errorf("workload: class %q: arrival.process required (fixed, poisson, gamma, or weibull)", cs.Class)
		default:
			return fmt.Errorf("workload: class %q: unknown arrival process %q", cs.Class, cs.Arrival.Process)
		}
		if cs.Size == (SizeSpec{}) {
			cs.Size = defaultSizes[cs.Class]
		}
		if cs.Size.Min < 1 || cs.Size.Max < cs.Size.Min {
			return fmt.Errorf("workload: class %q: size range [%d,%d] invalid", cs.Class, cs.Size.Min, cs.Size.Max)
		}
		if cs.SLO < 0 {
			return fmt.Errorf("workload: class %q: slo must be non-negative", cs.Class)
		}
		for _, p := range cs.Periods {
			if p.Period <= 0 {
				return fmt.Errorf("workload: class %q: modulation period must be positive", cs.Class)
			}
			if p.Amplitude < 0 {
				return fmt.Errorf("workload: class %q: modulation amplitude must be non-negative", cs.Class)
			}
		}
	}
	return nil
}

// ClassNames returns the spec's class names in declaration order.
func (s *Spec) ClassNames() []string {
	out := make([]string, len(s.Classes))
	for i, cs := range s.Classes {
		out[i] = cs.Class
	}
	return out
}

// Budgets returns the per-class SLO latency budgets (classes without a
// declared SLO are omitted).
func (s *Spec) Budgets() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, cs := range s.Classes {
		if cs.SLO > 0 {
			out[cs.Class] = time.Duration(cs.SLO)
		}
	}
	return out
}
