package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func traceFixture(t *testing.T) (Header, []Event) {
	t.Helper()
	s, err := Parse([]byte(specMixed))
	if err != nil {
		t.Fatal(err)
	}
	events := s.Generate()
	return s.TraceHeader(len(events)), events
}

func TestTraceRoundTrip(t *testing.T) {
	h, events := traceFixture(t)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()

	gotH, gotE, err := ReadTrace(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotH, h) {
		t.Fatalf("header round-trip: got %+v, want %+v", gotH, h)
	}
	if !reflect.DeepEqual(gotE, events) {
		t.Fatal("events did not round-trip")
	}

	// Re-encoding the parsed trace must reproduce the bytes exactly —
	// the canonical form is a fixed point.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, gotH, gotE); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoded trace differs from the original bytes")
	}
}

func TestWriteTraceForcesCount(t *testing.T) {
	h, events := traceFixture(t)
	h.Events = 999999 // lie; WriteTrace must correct it
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, events); err != nil {
		t.Fatal(err)
	}
	gotH, _, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Events != len(events) {
		t.Fatalf("header events = %d, want %d", gotH.Events, len(events))
	}
}

const validHeader = `{"format":"resilientos/trace/v2","name":"t","seed":1,"horizon_ns":1000000000,"classes":[{"class":"net","slo_ns":0}],"events":1}`

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name, trace, want string
	}{
		{"empty", "", "trace is empty"},
		{"garbage header", "not json\n", "bad header"},
		{"unknown header field", `{"format":"resilientos/trace/v2","horizon_ns":1,"classes":[{"class":"net","slo_ns":0}],"events":0,"extra":1}` + "\n", "bad header"},
		{"wrong format", `{"format":"resilientos/trace/v1","horizon_ns":1,"classes":[{"class":"net","slo_ns":0}],"events":0}` + "\n", `format "resilientos/trace/v1"`},
		{"no horizon", `{"format":"resilientos/trace/v2","classes":[{"class":"net","slo_ns":0}],"events":0}` + "\n", "horizon_ns must be positive"},
		{"negative count", `{"format":"resilientos/trace/v2","horizon_ns":1,"classes":[{"class":"net","slo_ns":0}],"events":-1}` + "\n", "negative event count"},
		{"no classes", `{"format":"resilientos/trace/v2","horizon_ns":1,"classes":[],"events":0}` + "\n", "no classes declared"},
		{"unknown class", `{"format":"resilientos/trace/v2","horizon_ns":1,"classes":[{"class":"gpu","slo_ns":0}],"events":0}` + "\n", `unknown class "gpu"`},
		{"dup class", `{"format":"resilientos/trace/v2","horizon_ns":1,"classes":[{"class":"net","slo_ns":0},{"class":"net","slo_ns":0}],"events":0}` + "\n", "declared twice"},
		{"negative slo", `{"format":"resilientos/trace/v2","horizon_ns":1,"classes":[{"class":"net","slo_ns":-5}],"events":0}` + "\n", "negative slo_ns"},
		{"garbage event", validHeader + "\nnope\n", "line 2"},
		{"unknown event field", validHeader + "\n" + `{"t":1,"class":"net","client":0,"size":1,"x":2}` + "\n", "line 2"},
		{"trailing data", validHeader + "\n" + `{"t":1,"class":"net","client":0,"size":1} {}` + "\n", "trailing data"},
		{"blank line", validHeader + "\n\n" + `{"t":1,"class":"net","client":0,"size":1}` + "\n", "blank line"},
		{"negative vtime", validHeader + "\n" + `{"t":-1,"class":"net","client":0,"size":1}` + "\n", "negative vtime"},
		{"beyond horizon", validHeader + "\n" + `{"t":1000000000,"class":"net","client":0,"size":1}` + "\n", "beyond horizon"},
		{"undeclared class", validHeader + "\n" + `{"t":1,"class":"disk","client":0,"size":1}` + "\n", `class "disk" not declared`},
		{"negative client", validHeader + "\n" + `{"t":1,"class":"net","client":-1,"size":1}` + "\n", "negative client"},
		{"negative size", validHeader + "\n" + `{"t":1,"class":"net","client":0,"size":-1}` + "\n", "negative size"},
		{"truncated", validHeader + "\n", "trace truncated"},
		{"too many events", validHeader + "\n" + `{"t":1,"class":"net","client":0,"size":1}` + "\n" + `{"t":2,"class":"net","client":0,"size":1}` + "\n", "more events than"},
		{"out of order", strings.Replace(validHeader, `"events":1`, `"events":2`, 1) + "\n" +
			`{"t":5,"class":"net","client":0,"size":1}` + "\n" + `{"t":4,"class":"net","client":0,"size":1}` + "\n", "out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadTrace(strings.NewReader(tc.trace))
			if err == nil {
				t.Fatalf("trace accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestReadTraceLineCap(t *testing.T) {
	long := validHeader + "\n" + `{"t":1,"class":"net","client":0,"size":1,"pad":"` +
		strings.Repeat("x", maxTraceLine) + `"}` + "\n"
	if _, _, err := ReadTrace(strings.NewReader(long)); err == nil {
		t.Fatal("oversized line accepted")
	}
}

// FuzzTraceParse hammers the strict parser: whatever the input, it must
// return an error or a trace that survives a canonical re-encode +
// re-parse round trip — and never panic.
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte(validHeader + "\n" + `{"t":1,"class":"net","client":0,"size":1}` + "\n"))
	f.Add([]byte(validHeader + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"format":"resilientos/trace/v2"}`))
	f.Add([]byte(`{"format":"resilientos/trace/v1","horizon_ns":1,"classes":[{"class":"net","slo_ns":0}],"events":0}` + "\n"))
	f.Add([]byte(validHeader + "\n" + `{"t":999999999999,"class":"net","client":0,"size":1}` + "\n"))
	f.Add([]byte(validHeader + "\n" + `{"t":-1,"class":"gpu","client":-1,"size":-1}` + "\n"))
	f.Add([]byte(strings.Replace(validHeader, `"events":1`, `"events":2`, 1) + "\n" +
		`{"t":5,"class":"net","client":0,"size":1}` + "\n" + `{"t":4,"class":"net","client":0,"size":1}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, events, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must be canonical fixed points.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, h, events); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		h2, events2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of re-encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(h, h2) || !reflect.DeepEqual(events, events2) {
			t.Fatal("accepted trace did not round-trip")
		}
	})
}
