package workload

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"resilientos/internal/sim"
)

const specMixed = `{
  "name": "mixed",
  "seed": 11,
  "horizon": "4s",
  "classes": [
    {"class": "net", "clients": 4, "rps": 80, "arrival": {"process": "poisson"}, "slo": "25ms"},
    {"class": "disk", "clients": 2, "rps": 40, "arrival": {"process": "gamma", "shape": 4}, "slo": "40ms"},
    {"class": "char", "rps": 10, "arrival": {"process": "weibull", "shape": 1.5}}
  ]
}`

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(specMixed))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mixed" || s.Seed != 11 {
		t.Fatalf("name/seed = %q/%d", s.Name, s.Seed)
	}
	if got := time.Duration(s.Horizon); got != 4*time.Second {
		t.Fatalf("horizon = %v", got)
	}
	if got := s.ClassNames(); !reflect.DeepEqual(got, []string{"net", "disk", "char"}) {
		t.Fatalf("classes = %v", got)
	}
	// Unset knobs default: one client, family shape 1, per-class sizes.
	if s.Classes[2].Clients != 1 {
		t.Fatalf("char clients = %d, want default 1", s.Classes[2].Clients)
	}
	if s.Classes[0].Size != defaultSizes[ClassNet] || s.Classes[2].Size != defaultSizes[ClassChar] {
		t.Fatalf("default sizes not applied: %+v / %+v", s.Classes[0].Size, s.Classes[2].Size)
	}
	want := map[string]time.Duration{"net": 25 * time.Millisecond, "disk": 40 * time.Millisecond}
	if got := s.Budgets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("budgets = %v, want %v", got, want)
	}
}

func TestParseMinimalDefaults(t *testing.T) {
	s, err := Parse([]byte(`{"horizon": "1s", "classes": [{"class": "net", "rps": 5, "arrival": {"process": "fixed"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "workload" || s.Seed != 1 {
		t.Fatalf("defaults: name=%q seed=%d", s.Name, s.Seed)
	}
	if len(s.Budgets()) != 0 {
		t.Fatalf("no SLO declared but budgets = %v", s.Budgets())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"garbage", `{`, "parse spec"},
		{"trailing", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"}}]} {}`, "trailing data"},
		{"unknown field", `{"horizon":"1s","rsp":5,"classes":[]}`, "unknown field"},
		{"no horizon", `{"classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"}}]}`, "horizon must be positive"},
		{"bad duration", `{"horizon":"4 furlongs","classes":[]}`, "bad duration"},
		{"no classes", `{"horizon":"1s","classes":[]}`, "at least one class"},
		{"unknown class", `{"horizon":"1s","classes":[{"class":"gpu","rps":1,"arrival":{"process":"fixed"}}]}`, "unknown class"},
		{"dup class", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"}},{"class":"net","rps":1,"arrival":{"process":"fixed"}}]}`, "declared twice"},
		{"zero rps", `{"horizon":"1s","classes":[{"class":"net","rps":0,"arrival":{"process":"fixed"}}]}`, "rps must be positive"},
		{"negative clients", `{"horizon":"1s","classes":[{"class":"net","clients":-2,"rps":1,"arrival":{"process":"fixed"}}]}`, "clients must be positive"},
		{"no process", `{"horizon":"1s","classes":[{"class":"net","rps":1}]}`, "arrival.process required"},
		{"unknown process", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"pareto"}}]}`, "unknown arrival process"},
		{"poisson shape", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"poisson","shape":2}}]}`, "takes no shape"},
		{"negative shape", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"gamma","shape":-1}}]}`, "shape must be positive"},
		{"bad size range", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"},"size":{"min":100,"max":10}}]}`, "size range"},
		{"negative slo", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"},"slo":"-5ms"}]}`, "slo must be non-negative"},
		{"zero period", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"},"periods":[{"period":"0s","amplitude":0.5}]}]}`, "period must be positive"},
		{"negative amplitude", `{"horizon":"1s","classes":[{"class":"net","rps":1,"arrival":{"process":"fixed"},"periods":[{"period":"1s","amplitude":-0.5}]}]}`, "amplitude must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.spec))
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestDurationForms(t *testing.T) {
	// Nanosecond integers and Go duration strings are the same duration.
	a, err := Parse([]byte(`{"horizon": 1000000000, "classes": [{"class":"net","rps":5,"arrival":{"process":"fixed"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(`{"horizon": "1s", "classes": [{"class":"net","rps":5,"arrival":{"process":"fixed"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Horizon != b.Horizon {
		t.Fatalf("horizons differ: %d vs %d", a.Horizon, b.Horizon)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, err := Parse([]byte(specMixed))
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Generate(), s.Generate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	if len(a) == 0 {
		t.Fatal("no events generated")
	}

	other := *s
	other.Seed = 12
	c := other.Generate()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical sequences")
	}
}

func TestGenerateOrderedInHorizon(t *testing.T) {
	s, err := Parse([]byte(specMixed))
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(s.Horizon)
	sizes := map[string]SizeSpec{}
	for _, cs := range s.Classes {
		sizes[cs.Class] = cs.Size
	}
	var prev sim.Time
	for i, ev := range s.Generate() {
		if ev.T < prev {
			t.Fatalf("event %d out of order: %d after %d", i, ev.T, prev)
		}
		if ev.T <= 0 || ev.T >= horizon {
			t.Fatalf("event %d outside (0, horizon): %d", i, ev.T)
		}
		sz := sizes[ev.Class]
		if ev.Size < sz.Min || ev.Size > sz.Max {
			t.Fatalf("event %d size %d outside [%d, %d]", i, ev.Size, sz.Min, sz.Max)
		}
		prev = ev.T
	}
}

// TestGenerateRate checks end-to-end rate conformance: a 200 rps Poisson
// spec over 50 virtual seconds must land within 5% of 10k events.
func TestGenerateRate(t *testing.T) {
	spec := `{"seed": 7, "horizon": "50s", "classes": [
      {"class": "net", "clients": 8, "rps": 200, "arrival": {"process": "poisson"}}]}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(s.Generate()))
	want := 200.0 * 50
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("generated %.0f events, want %.0f +-5%%", got, want)
	}
}

// TestDiurnalModulation splits a one-period sinusoidal workload into its
// peak and trough halves; the peak half must carry clearly more arrivals.
func TestDiurnalModulation(t *testing.T) {
	spec := `{"seed": 3, "horizon": "10s", "classes": [
      {"class": "net", "clients": 4, "rps": 400, "arrival": {"process": "poisson"},
       "periods": [{"period": "10s", "amplitude": 0.8}]}]}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	// sin is positive on the first half-period and negative on the second.
	half := sim.Time(5 * time.Second)
	var peak, trough int
	for _, ev := range s.Generate() {
		if ev.T < half {
			peak++
		} else {
			trough++
		}
	}
	if trough == 0 {
		t.Fatal("trough half empty — floor failed")
	}
	if ratio := float64(peak) / float64(trough); ratio < 2 {
		t.Fatalf("peak/trough ratio %.2f, want > 2 (peak %d, trough %d)", ratio, peak, trough)
	}
}

func TestModAtFloor(t *testing.T) {
	periods := []Period{{Period: Duration(time.Second), Amplitude: 10}}
	// At 3/4 period the sine is -1: 1 - 10 would be negative without the floor.
	if got := modAt(periods, sim.Time(750*time.Millisecond)); got != 0.05 {
		t.Fatalf("modAt floor = %v, want 0.05", got)
	}
	if got := modAt(nil, 123); got != 1 {
		t.Fatalf("modAt(nil) = %v, want 1", got)
	}
}

func TestStreamIndependence(t *testing.T) {
	// Distinct (class, client) chains must not share a stream.
	seen := map[int64]string{}
	for ci := 0; ci < 3; ci++ {
		for cl := 0; cl < 4; cl++ {
			v := stream(11, ci, cl).Int63()
			key := fmt.Sprintf("class %d client %d", ci, cl)
			if prev, ok := seen[v]; ok {
				t.Fatalf("%s collides with %s", key, prev)
			}
			seen[v] = key
		}
	}
}
