package netlib

import (
	"errors"
	"testing"

	"resilientos/internal/proto"
)

func TestCodeErrMapping(t *testing.T) {
	if !errors.Is(codeErr(proto.ErrClosed), ErrClosed) {
		t.Error("ErrClosed not mapped")
	}
	if !errors.Is(codeErr(proto.ErrNotFound), ErrRefused) {
		t.Error("ErrNotFound not mapped to refused")
	}
	if err := codeErr(proto.ErrIO); err == nil {
		t.Error("unknown code mapped to nil")
	}
}
