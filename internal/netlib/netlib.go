// Package netlib is the application-side socket library: thin, blocking
// wrappers over the network server's message protocol, playing the role
// libc's socket calls play for MINIX applications.
package netlib

import (
	"errors"
	"fmt"

	"resilientos/internal/kernel"
	"resilientos/internal/proto"
)

// Errors mapped from the network server's reply codes.
var (
	ErrClosed   = errors.New("netlib: connection closed")
	ErrRefused  = errors.New("netlib: connection refused")
	ErrNoServer = errors.New("netlib: network server unavailable")
)

func codeErr(code int64) error {
	switch code {
	case proto.ErrClosed:
		return ErrClosed
	case proto.ErrNotFound:
		return ErrRefused
	default:
		return fmt.Errorf("netlib: error %d", code)
	}
}

// Conn is one TCP socket belonging to the calling process.
type Conn struct {
	ctx  *kernel.Ctx
	inet kernel.Endpoint
	id   int64
}

// Dial opens a TCP connection through the network server at inetEp, over
// the named driver channel, to the remote port. It blocks until the
// handshake completes.
func Dial(c *kernel.Ctx, inetEp kernel.Endpoint, channel string, port uint16) (*Conn, error) {
	reply, err := c.SendRec(inetEp, kernel.Message{
		Type: proto.TCPConnect, Name: channel, Arg1: int64(port),
	})
	if err != nil {
		return nil, ErrNoServer
	}
	if reply.Arg1 < 0 {
		return nil, codeErr(reply.Arg1)
	}
	return &Conn{ctx: c, inet: inetEp, id: reply.Arg1}, nil
}

// Listener accepts inbound TCP connections on a port.
type Listener struct {
	ctx  *kernel.Ctx
	inet kernel.Endpoint
	id   int64
}

// Listen binds a TCP listener on the local port.
func Listen(c *kernel.Ctx, inetEp kernel.Endpoint, port uint16) (*Listener, error) {
	reply, err := c.SendRec(inetEp, kernel.Message{Type: proto.TCPListen, Arg1: int64(port)})
	if err != nil {
		return nil, ErrNoServer
	}
	if reply.Arg1 < 0 {
		return nil, codeErr(reply.Arg1)
	}
	return &Listener{ctx: c, inet: inetEp, id: reply.Arg1}, nil
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (*Conn, error) {
	reply, err := l.ctx.SendRec(l.inet, kernel.Message{Type: proto.TCPAccept, Arg1: l.id})
	if err != nil {
		return nil, ErrNoServer
	}
	if reply.Arg1 < 0 {
		return nil, codeErr(reply.Arg1)
	}
	return &Conn{ctx: l.ctx, inet: l.inet, id: reply.Arg1}, nil
}

// Close closes the listener.
func (l *Listener) Close() error {
	_, err := l.ctx.SendRec(l.inet, kernel.Message{Type: proto.TCPClose, Arg1: l.id})
	return err
}

// Write sends b, blocking until the network server has queued all of it.
func (cn *Conn) Write(b []byte) (int, error) {
	reply, err := cn.ctx.SendRec(cn.inet, kernel.Message{
		Type: proto.TCPSend, Arg1: cn.id, Payload: b,
	})
	if err != nil {
		return 0, ErrNoServer
	}
	if reply.Arg1 < 0 {
		return 0, codeErr(reply.Arg1)
	}
	return int(reply.Arg1), nil
}

// Read blocks for up to max bytes; it returns nil, ErrClosed after the
// peer's orderly close has drained.
func (cn *Conn) Read(max int) ([]byte, error) {
	reply, err := cn.ctx.SendRec(cn.inet, kernel.Message{
		Type: proto.TCPRecv, Arg1: cn.id, Arg2: int64(max),
	})
	if err != nil {
		return nil, ErrNoServer
	}
	if reply.Arg1 < 0 {
		return nil, codeErr(reply.Arg1)
	}
	if reply.Arg1 == 0 {
		return nil, ErrClosed // EOF
	}
	return reply.Payload, nil
}

// Close initiates an orderly close.
func (cn *Conn) Close() error {
	_, err := cn.ctx.SendRec(cn.inet, kernel.Message{Type: proto.TCPClose, Arg1: cn.id})
	return err
}

// UDPSend transmits one datagram (fire and forget).
func UDPSend(c *kernel.Ctx, inetEp kernel.Endpoint, channel string, dstPort, srcPort uint16, payload []byte) error {
	reply, err := c.SendRec(inetEp, kernel.Message{
		Type: proto.UDPSend, Name: channel,
		Arg1: int64(dstPort), Arg2: int64(srcPort), Payload: payload,
	})
	if err != nil {
		return ErrNoServer
	}
	if reply.Arg1 < 0 {
		return codeErr(reply.Arg1)
	}
	return nil
}

// UDPRecv blocks for one datagram on the local port.
func UDPRecv(c *kernel.Ctx, inetEp kernel.Endpoint, port uint16) ([]byte, error) {
	reply, err := c.SendRec(inetEp, kernel.Message{Type: proto.UDPRecv, Arg1: int64(port)})
	if err != nil {
		return nil, ErrNoServer
	}
	if reply.Arg1 < 0 {
		return nil, codeErr(reply.Arg1)
	}
	return reply.Payload, nil
}
