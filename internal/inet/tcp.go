package inet

import (
	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// TCP engine. Deliberately small but real: three-way handshake,
// cumulative ACKs, sliding window with receiver flow control,
// retransmission timeout with exponential backoff, fast retransmit on
// three duplicate ACKs, and FIN teardown. This is the reliable transport
// whose retransmission masks every frame lost while a network driver is
// dead (paper §6.1) — and whose timeout is the dominant term in the
// paper's 0.48 s mean network recovery time.

type tcpState int

const (
	stateSynSent tcpState = iota + 1
	stateSynRcvd
	stateEstablished
	stateClosed
)

// Buffer limits.
const (
	sndBufLimit = 256 << 10
	rcvBufLimit = 128 << 10
)

// tcpConn is one TCP connection endpoint.
type tcpConn struct {
	id         int64
	ch         *channel // the driver channel this connection is bound to
	localPort  uint16
	remotePort uint16
	state      tcpState

	// Send side. sndBuf holds bytes [sndUna, sndUna+len(sndBuf)).
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	sndBuf   []byte
	peerWnd  uint16
	dupAcks  int
	closeReq bool // app closed; FIN goes out after the buffer drains
	finSent  bool
	finSeq   uint32
	finAcked bool
	synAcked bool

	// Receive side.
	rcvNxt uint32
	rcvBuf []byte
	rcvFIN bool
	ooo    map[uint32][]byte // out-of-order segments awaiting the gap fill

	// Retransmission.
	rto    sim.Time
	retxAt sim.Time // zero = timer off

	// Teardown.
	deleteAt sim.Time

	// Blocked application calls.
	connectW kernel.Endpoint // waiting TCPConnect caller
	recvW    kernel.Endpoint // waiting TCPRecv caller
	recvMax  int
	sendW    kernel.Endpoint // waiting TCPSend caller
	sendData []byte          // remainder the waiting sender still owes
	sendDone int             // bytes of the blocked send already queued

	// Causal tracing: one op span per outstanding application call,
	// opened when the call arrives and ended at its reply site. Frames
	// the connection emits while an op is outstanding carry that op's
	// context, so driver-side work — including a restarted driver's
	// retransmission handling — nests under the application request.
	connectCtx obs.SpanContext
	recvCtx    obs.SpanContext
	sendCtx    obs.SpanContext
}

// inFlight reports whether unacknowledged data (or control) is
// outstanding.
func (c *tcpConn) inFlight() bool {
	if c.state == stateSynSent || c.state == stateSynRcvd {
		return true
	}
	if c.finSent && !c.finAcked {
		return true
	}
	return seqLT(c.sndUna, c.sndNxt)
}

// rcvWindow is the receive window to advertise.
func (c *tcpConn) rcvWindow() uint16 {
	avail := rcvBufLimit - len(c.rcvBuf)
	if avail < 0 {
		avail = 0
	}
	if avail > 0xFFFF {
		avail = 0xFFFF
	}
	return uint16(avail)
}

// tcpSegOut builds and transmits one segment on the connection's channel.
func (s *Server) tcpSegOut(c *tcpConn, flags uint8, seq uint32, payload []byte) {
	seg := &segment{
		srcPort: c.localPort,
		dstPort: c.remotePort,
		seq:     seq,
		ack:     c.rcvNxt,
		flags:   flags,
		wnd:     c.rcvWindow(),
		payload: payload,
	}
	s.frameOut(c.ch, encodeTCP(seg), c.opCtx())
}

// opCtx picks the causal context an outgoing segment belongs to: the
// handshake while connecting, otherwise the blocked send (data and its
// retransmissions) before the blocked receive (window-update ACKs). Zero
// when no application call is outstanding — the kernel then stamps the
// server's ambient context, typically the inbound frame being answered.
func (c *tcpConn) opCtx() obs.SpanContext {
	switch {
	case c.connectCtx.Valid():
		return c.connectCtx
	case c.sendCtx.Valid():
		return c.sendCtx
	}
	return c.recvCtx
}

// sendAck emits a bare ACK.
func (s *Server) sendAck(c *tcpConn) {
	s.tcpSegOut(c, flagACK, c.sndNxt, nil)
}

// armRetx starts (or restarts) the retransmission timer.
func (s *Server) armRetx(c *tcpConn) {
	c.retxAt = s.now() + c.rto
}

// trySend pushes as much buffered data as the peer's window allows.
func (s *Server) trySend(c *tcpConn) {
	if c.state != stateEstablished {
		return
	}
	wnd := uint32(c.peerWnd)
	if wnd == 0 {
		// Zero window: rely on the retransmission timer as a persist
		// probe when data is pending.
		if len(c.sndBuf) > 0 && c.retxAt == 0 {
			s.armRetx(c)
		}
	}
	for !c.finSent {
		offset := c.sndNxt - c.sndUna // bytes already in flight
		if offset >= uint32(len(c.sndBuf)) {
			break // everything buffered is in flight
		}
		avail := uint32(len(c.sndBuf)) - offset
		if avail == 0 || offset >= wnd {
			break
		}
		n := avail
		if n > MSS {
			n = MSS
		}
		if offset+n > wnd {
			n = wnd - offset
		}
		if n == 0 {
			break
		}
		payload := c.sndBuf[offset : offset+n]
		s.tcpSegOut(c, flagACK, c.sndNxt, payload)
		c.sndNxt += n
		if c.retxAt == 0 {
			s.armRetx(c)
		}
	}
	// All buffered data transmitted: flush a pending FIN.
	if c.closeReq && !c.finSent && c.sndNxt == c.sndUna+uint32(len(c.sndBuf)) {
		c.finSeq = c.sndNxt
		c.finSent = true
		s.tcpSegOut(c, flagFIN|flagACK, c.finSeq, nil)
		c.sndNxt++
		if c.retxAt == 0 {
			s.armRetx(c)
		}
	}
}

// onTcpTimer handles a retransmission timeout for one connection.
func (s *Server) onTcpTimer(c *tcpConn) {
	if !c.inFlight() && len(c.sndBuf) == 0 {
		c.retxAt = 0
		return
	}
	switch c.state {
	case stateSynSent:
		s.tcpSegOut(c, flagSYN, c.iss, nil)
	case stateSynRcvd:
		s.tcpSegOut(c, flagSYN|flagACK, c.iss, nil)
	case stateEstablished:
		switch {
		case seqLT(c.sndUna, c.sndNxt) && len(c.sndBuf) > 0:
			// Retransmit the first unacknowledged chunk.
			n := len(c.sndBuf)
			if n > MSS {
				n = MSS
			}
			inflight := int(c.sndNxt - c.sndUna)
			if c.finSent {
				inflight-- // FIN occupies one sequence number
			}
			if n > inflight && inflight > 0 {
				n = inflight
			}
			s.tcpSegOut(c, flagACK, c.sndUna, c.sndBuf[:n])
			// Go-back-N: a timeout usually means the whole flight was
			// lost (a dead driver drops everything). Collapse the send
			// window so the acks that follow stream the lost region out
			// again immediately, instead of one segment per timeout.
			c.sndNxt = c.sndUna + uint32(n)
			if c.finSent && !c.finAcked {
				c.finSent = false // FIN re-flushes after the data drains
			}
		case c.finSent && !c.finAcked:
			s.tcpSegOut(c, flagFIN|flagACK, c.finSeq, nil)
		case len(c.sndBuf) > 0:
			// Persist probe against a zero window.
			n := 1
			s.tcpSegOut(c, flagACK, c.sndNxt, c.sndBuf[c.sndNxt-c.sndUna:][:n])
			c.sndNxt++
		}
	}
	// Exponential backoff.
	c.rto *= 2
	if c.rto > s.cfg.RTOMax {
		c.rto = s.cfg.RTOMax
	}
	s.armRetx(c)
	s.stats.Retransmits++
}

// handleSegment is the receive-side demultiplexed segment processor.
func (s *Server) handleSegment(ch *channel, seg *segment) {
	c := s.findConn(seg.dstPort, seg.srcPort)
	if c == nil {
		// New connection attempt against a listener?
		if seg.flags&flagSYN != 0 && seg.flags&flagACK == 0 {
			if lst := s.listeners[seg.dstPort]; lst != nil {
				s.acceptSyn(ch, lst, seg)
				return
			}
		}
		if seg.flags&flagRST == 0 {
			// No socket: refuse.
			rst := &segment{
				srcPort: seg.dstPort, dstPort: seg.srcPort,
				seq: seg.ack, ack: seg.seq, flags: flagRST,
			}
			s.frameOut(ch, encodeTCP(rst), obs.SpanContext{})
		}
		return
	}
	if seg.flags&flagRST != 0 {
		s.abortConn(c, proto.ErrClosed)
		return
	}
	c.peerWnd = seg.wnd
	switch c.state {
	case stateSynSent:
		if seg.flags&flagACK != 0 && seg.ack != c.iss+1 {
			// An unacceptable ACK in SYN-SENT — typically the peer's
			// challenge-ACK for a half-open connection left over from a
			// previous network-server instance. Answer RST (RFC 793) so
			// the peer discards the stale connection; our SYN retransmit
			// then reaches its listener.
			s.frameOut(c.ch, encodeTCP(&segment{
				srcPort: c.localPort, dstPort: c.remotePort,
				seq: seg.ack, flags: flagRST,
			}), obs.SpanContext{})
			return
		}
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK && seg.ack == c.iss+1 {
			c.rcvNxt = seg.seq + 1
			c.sndUna = c.iss + 1
			c.sndNxt = c.sndUna
			c.state = stateEstablished
			c.rto = s.cfg.RTOInit
			c.retxAt = 0
			s.sendAck(c)
			if c.connectW != 0 {
				s.reply(c.connectW, kernel.Message{Type: proto.SockReply, Arg1: c.id})
				c.connectW = 0
				s.ctx.EndWork(c.connectCtx, 0)
				c.connectCtx = obs.SpanContext{}
			}
		}
	case stateSynRcvd:
		if seg.flags&flagACK != 0 && seg.ack == c.iss+1 {
			c.sndUna = c.iss + 1
			c.sndNxt = c.sndUna
			c.state = stateEstablished
			c.rto = s.cfg.RTOInit
			c.retxAt = 0
			if lst := s.listeners[c.localPort]; lst != nil {
				lst.acceptQ = append(lst.acceptQ, c.id)
				s.wakeAccepter(lst)
			}
			// Fall through into data processing for piggybacked payload.
			s.processData(c, seg)
		} else if seg.flags&flagSYN != 0 {
			// Duplicate SYN: re-answer.
			s.tcpSegOut(c, flagSYN|flagACK, c.iss, nil)
		}
	case stateEstablished:
		if seg.flags&flagSYN != 0 {
			// A SYN on an established connection means the peer's network
			// server lost its state (it was restarted). Challenge-ACK: the
			// restarted peer answers with RST, we tear down, and the next
			// SYN retransmission reaches the listener cleanly.
			s.sendAck(c)
			return
		}
		if seg.flags&flagACK != 0 {
			s.processAck(c, seg.ack)
		}
		s.processData(c, seg)
	}
}

// processAck advances the send window for a cumulative ACK.
func (s *Server) processAck(c *tcpConn, ack uint32) {
	if seqLT(c.sndUna, ack) {
		if seqLT(c.sndNxt, ack) {
			// The ack lies beyond sndNxt: go-back-N collapsed the send
			// window after those bytes were first transmitted, and the
			// receiver reassembled them out of order. The cumulative ack
			// proves delivery; fast-forward the window.
			c.sndNxt = ack
		}
		acked := ack - c.sndUna
		dataAcked := acked
		if c.finSent && ack == c.finSeq+1 {
			c.finAcked = true
			dataAcked--
		}
		if int(dataAcked) > len(c.sndBuf) {
			dataAcked = uint32(len(c.sndBuf))
		}
		c.sndBuf = c.sndBuf[dataAcked:]
		c.sndUna = ack
		c.dupAcks = 0
		c.rto = s.cfg.RTOInit
		if c.inFlight() {
			s.armRetx(c)
		} else {
			c.retxAt = 0
		}
		s.admitBlockedSend(c)
		s.trySend(c)
		s.maybeFinish(c)
		return
	}
	if ack == c.sndUna && seqLT(c.sndUna, c.sndNxt) {
		// Duplicate ACK: third one triggers fast retransmit.
		c.dupAcks++
		if c.dupAcks == 3 && len(c.sndBuf) > 0 {
			n := len(c.sndBuf)
			if n > MSS {
				n = MSS
			}
			s.tcpSegOut(c, flagACK, c.sndUna, c.sndBuf[:n])
			s.stats.FastRetransmits++
			c.dupAcks = 0
		}
	}
}

// processData ingests in-order payload and FIN, acks, and wakes readers.
func (s *Server) processData(c *tcpConn, seg *segment) {
	advanced := false
	payload := seg.payload
	seq := seg.seq
	if len(payload) > 0 {
		s.stats.SegsData++
		if seqLT(seq, c.rcvNxt) {
			// Retransmission overlapping delivered data: trim.
			skip := c.rcvNxt - seq
			if int(skip) >= len(payload) {
				payload = nil
				s.stats.SegsPast++
			} else {
				payload = payload[skip:]
			}
			seq = c.rcvNxt
		}
		if len(payload) > 0 {
			switch {
			case seq != c.rcvNxt:
				s.stats.SegsFuture++
				// Out of order: park it for reassembly (bounded).
				if c.ooo == nil {
					c.ooo = make(map[uint32][]byte)
				}
				if len(c.ooo) < oooLimit {
					if _, dup := c.ooo[seq]; !dup {
						cp := make([]byte, len(payload))
						copy(cp, payload)
						c.ooo[seq] = cp
					}
				}
			case rcvBufLimit-len(c.rcvBuf) <= 0:
				s.stats.SegsNoRoom++
			}
		}
		if len(payload) > 0 && seq == c.rcvNxt {
			room := rcvBufLimit - len(c.rcvBuf)
			if room > 0 {
				n := len(payload)
				if n > room {
					n = room
				}
				c.rcvBuf = append(c.rcvBuf, payload[:n]...)
				c.rcvNxt += uint32(n)
				advanced = true
				s.stats.SegsAccepted++
				s.drainOoo(c)
			}
		}
	}
	if seg.flags&flagFIN != 0 {
		finSeq := seg.seq + uint32(len(seg.payload))
		if finSeq == c.rcvNxt && !c.rcvFIN {
			c.rcvFIN = true
			c.rcvNxt++
			advanced = true
		}
	}
	// Acknowledge any segment carrying payload or FIN (dup ACKs for
	// out-of-order arrivals drive the sender's fast retransmit).
	if len(seg.payload) > 0 || seg.flags&flagFIN != 0 {
		s.sendAck(c)
	}
	if advanced {
		s.wakeReader(c)
		s.maybeFinish(c)
	}
}

// oooLimit bounds the out-of-order reassembly buffer (segments).
const oooLimit = 128

// drainOoo folds parked out-of-order segments into the in-order stream
// once the gap closes.
func (s *Server) drainOoo(c *tcpConn) {
	for len(c.ooo) > 0 {
		found := false
		for seq, payload := range c.ooo {
			end := seq + uint32(len(payload))
			if seqLE(end, c.rcvNxt) {
				delete(c.ooo, seq) // fully stale
				found = true
				continue
			}
			if seqLE(seq, c.rcvNxt) {
				// Overlaps the gap edge: take the fresh part.
				fresh := payload[c.rcvNxt-seq:]
				room := rcvBufLimit - len(c.rcvBuf)
				if room <= 0 {
					return
				}
				n := len(fresh)
				if n > room {
					n = room
				}
				c.rcvBuf = append(c.rcvBuf, fresh[:n]...)
				c.rcvNxt += uint32(n)
				delete(c.ooo, seq)
				found = true
			}
		}
		if !found {
			return
		}
	}
}

// wakeReader completes a blocked TCPRecv if data or EOF is available.
func (s *Server) wakeReader(c *tcpConn) {
	if c.recvW == 0 {
		return
	}
	if len(c.rcvBuf) == 0 && !c.rcvFIN {
		return
	}
	waiter := c.recvW
	c.recvW = 0
	s.replyRecv(c, waiter, c.recvMax)
}

// replyRecv answers a TCPRecv with available data (or EOF) and closes
// the receive op span.
func (s *Server) replyRecv(c *tcpConn, to kernel.Endpoint, max int) {
	if len(c.rcvBuf) == 0 && c.rcvFIN {
		s.reply(to, kernel.Message{Type: proto.SockReply, Arg1: 0}) // EOF
		s.ctx.EndWork(c.recvCtx, 0)
		c.recvCtx = obs.SpanContext{}
		return
	}
	n := len(c.rcvBuf)
	if n > max {
		n = max
	}
	payload := make([]byte, n)
	copy(payload, c.rcvBuf[:n])
	c.rcvBuf = c.rcvBuf[n:]
	// Reading opened the window: tell the sender.
	s.sendAck(c)
	s.reply(to, kernel.Message{Type: proto.SockReply, Arg1: int64(n), Payload: payload})
	s.ctx.EndWork(c.recvCtx, 0)
	c.recvCtx = obs.SpanContext{}
}

// admitBlockedSend moves bytes from a blocked TCPSend into freed buffer
// space, replying once everything is queued.
func (s *Server) admitBlockedSend(c *tcpConn) {
	if c.sendW == 0 {
		return
	}
	room := sndBufLimit - len(c.sndBuf)
	if room <= 0 {
		return
	}
	n := len(c.sendData)
	if n > room {
		n = room
	}
	c.sndBuf = append(c.sndBuf, c.sendData[:n]...)
	c.sendData = c.sendData[n:]
	c.sendDone += n
	if len(c.sendData) == 0 {
		s.reply(c.sendW, kernel.Message{Type: proto.SockReply, Arg1: int64(c.sendDone)})
		c.sendW = 0
		c.sendDone = 0
		s.ctx.EndWork(c.sendCtx, 0)
		c.sendCtx = obs.SpanContext{}
	}
	s.trySend(c)
}

// maybeFinish schedules connection teardown once both directions closed.
func (s *Server) maybeFinish(c *tcpConn) {
	if c.finSent && c.finAcked && c.rcvFIN && len(c.rcvBuf) == 0 && c.deleteAt == 0 {
		c.deleteAt = s.now() + 2*s.cfg.RTOInit
	}
	if c.rcvFIN {
		s.wakeReader(c)
	}
}

// abortConn errors out all waiters and closes the connection.
func (s *Server) abortConn(c *tcpConn, errCode int64) {
	if c.connectW != 0 {
		s.reply(c.connectW, kernel.Message{Type: proto.SockReply, Arg1: errCode})
		c.connectW = 0
	}
	if c.recvW != 0 {
		s.reply(c.recvW, kernel.Message{Type: proto.SockReply, Arg1: errCode})
		c.recvW = 0
	}
	if c.sendW != 0 {
		s.reply(c.sendW, kernel.Message{Type: proto.SockReply, Arg1: errCode})
		c.sendW = 0
	}
	s.ctx.EndWork(c.connectCtx, 1)
	s.ctx.EndWork(c.recvCtx, 1)
	s.ctx.EndWork(c.sendCtx, 1)
	c.connectCtx = obs.SpanContext{}
	c.recvCtx = obs.SpanContext{}
	c.sendCtx = obs.SpanContext{}
	c.state = stateClosed
	c.retxAt = 0
	s.removeConn(c)
}
