// Package inet implements the network server (INET): TCP and UDP sockets
// for applications, multiplexed over Ethernet driver channels. Its
// recovery role is the paper's §6.1: INET subscribes to 'eth.*' naming
// updates in the data store; when a driver is restarted, the data store
// notifies INET, which reconfigures the fresh driver (promiscuous mode)
// and resumes I/O — while TCP retransmission masks every frame the dead
// driver dropped. The code lines specific to recovery are a minimal
// extension of the code that starts a new driver, marked "// [recovery]"
// for cmd/locstats.
package inet

import (
	"fmt"
	"sort"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// Config configures a network server instance.
type Config struct {
	// Pattern is the DS subscription for this server's drivers
	// (the paper's example: "eth.*").
	Pattern string
	// DS is the data store endpoint.
	DS kernel.Endpoint
	// RTOInit/RTOMin/RTOMax govern TCP retransmission timeouts.
	RTOInit sim.Time
	RTOMax  sim.Time
}

// Defaults fills unset config fields.
func (c *Config) defaults() {
	if c.Pattern == "" {
		c.Pattern = "eth.*"
	}
	if c.RTOInit == 0 {
		c.RTOInit = 300 * sim.Time(1e6) // 300ms
	}
	if c.RTOMax == 0 {
		c.RTOMax = 5 * sim.Time(1e9) // 5s
	}
}

// Stats counts transport events for experiments and tests.
type Stats struct {
	FramesOut       int
	FramesDropped   int // sends that failed because the driver was down
	FramesIn        int
	Retransmits     int
	FastRetransmits int
	ChannelRestarts int // driver reconfigurations after a DS update

	// Receive-path classification (diagnostics).
	SegsData     int // segments carrying payload
	SegsAccepted int // payload (fully or partially) accepted in order
	SegsPast     int // stale retransmissions fully below rcvNxt
	SegsFuture   int // out-of-order segments beyond rcvNxt
	SegsNoRoom   int // in-order segments dropped for lack of buffer
}

// channel is one Ethernet driver binding.
type channel struct {
	label string
	ep    kernel.Endpoint
	up    bool
	bytes *obs.Counter // bytes moved, cached so frameOut never builds names
}

// sock is one application-visible socket.
type sock struct {
	id      int64
	kind    int // 1 = listener, 2 = tcp conn, 3 = udp
	port    uint16
	conn    *tcpConn
	acceptQ []int64
	acceptW kernel.Endpoint

	// UDP state.
	udpQ [][]byte
	udpW kernel.Endpoint
	ch   *channel
}

const (
	sockListen = 1
	sockTCP    = 2
	sockUDP    = 3
)

// Server is the network server. Fields are only touched from its own
// process; accessors for tests read them after the simulation settles.
type Server struct {
	cfg Config
	ctx *kernel.Ctx

	channels []*channel
	chByName map[string]*channel

	socks     map[int64]*sock
	sockOrder []int64 // deterministic iteration order
	listeners map[uint16]*sock
	udpBinds  map[uint16]*sock
	nextSock  int64
	nextPort  uint16
	nextISS   uint32

	// episode is the RS recovery episode's span context, carried on the
	// DSUpdate that announced a restarted driver; held only while
	// resumeIO links outstanding operations to it. // [recovery]
	episode obs.SpanContext

	stats Stats
}

// New creates a network server; run its Binary as an RS service.
func New(cfg Config) *Server {
	cfg.defaults()
	return &Server{
		cfg:       cfg,
		chByName:  make(map[string]*channel),
		socks:     make(map[int64]*sock),
		listeners: make(map[uint16]*sock),
		udpBinds:  make(map[uint16]*sock),
		nextSock:  1,
		nextPort:  40000,
		nextISS:   1000,
	}
}

// Stats returns a copy of the transport counters.
func (s *Server) Stats() Stats { return s.stats }

// Binary returns the service binary for this server.
func (s *Server) Binary() func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) { s.run(c) }
}

func (s *Server) now() sim.Time { return s.ctx.Now() }

func (s *Server) reply(to kernel.Endpoint, m kernel.Message) {
	_ = s.ctx.Send(to, m)
}

// resetState clears all per-incarnation state: a restarted network
// server starts with empty socket and channel tables, exactly like the
// paper's "failure closes all open network connections" (§5.2). The
// cumulative Stats survive for the experiment harness.
func (s *Server) resetState() {
	s.channels = nil
	s.chByName = make(map[string]*channel)
	s.socks = make(map[int64]*sock)
	s.sockOrder = nil
	s.listeners = make(map[uint16]*sock)
	s.udpBinds = make(map[uint16]*sock)
	s.nextSock = 1
	s.nextPort = 40000
	s.nextISS = 1000
}

// run is the INET message loop.
func (s *Server) run(c *kernel.Ctx) {
	s.ctx = c
	s.resetState()
	// Subscribe to driver naming updates; current drivers are replayed.
	if _, err := c.SendRec(s.cfg.DS, kernel.Message{
		Type: proto.DSSubscribe, Name: s.cfg.Pattern,
	}); err != nil {
		c.Panic("subscribe: " + err.Error())
	}
	for {
		s.armTimer(c)
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		switch m.Type {
		case kernel.MsgNotify:
			// Notifications carry no causal context; drop any stale
			// ambient so timer-driven retransmissions aren't attributed
			// to whatever request this loop handled last.
			c.SetTraceCtx(obs.SpanContext{})
			if m.Source == kernel.Clock {
				s.onTimer()
			}
		case proto.RSPing: // [recovery] the reincarnation server monitors servers too
			_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
		case proto.DSUpdate:
			s.onDriverUpdate(c, m) // [recovery]
		case proto.EthRecv:
			s.onFrame(m)
		case proto.TCPConnect:
			s.onConnect(m)
		case proto.TCPListen:
			s.onListen(m)
		case proto.TCPAccept:
			s.onAccept(m)
		case proto.TCPSend:
			s.onSend(m)
		case proto.TCPRecv:
			s.onRecv(m)
		case proto.TCPClose:
			s.onClose(m)
		case proto.UDPSend:
			s.onUDPSend(m)
		case proto.UDPRecv:
			s.onUDPRecv(m)
		}
	}
}

// onDriverUpdate handles a data-store naming update for one of our
// drivers: a new driver, or — the recovery path — a restarted one whose
// endpoint changed. Either way the procedure is the same as first start:
// configure promiscuous mode and resume I/O (§6.1).
func (s *Server) onDriverUpdate(c *kernel.Ctx, m kernel.Message) {
	ch, known := s.chByName[m.Name]
	if !known {
		ch = &channel{label: m.Name}
		s.chByName[m.Name] = ch
		s.channels = append(s.channels, ch)
	}
	if m.Arg1 == proto.InvalidEndpoint { // [recovery] driver withdrawn
		ch.up = false // [recovery]
		return        // [recovery]
	}
	newEp := kernel.Endpoint(m.Arg1)
	restarted := known && ch.ep != newEp // [recovery]
	ch.ep = newEp
	ch.bytes = c.Obs().Metrics().Counter("inet.bytes." + ch.label)
	reply, err := c.SendRec(ch.ep, kernel.Message{
		Type: proto.EthConf,
		Arg1: proto.EthConfPromisc,
	})
	if err != nil || reply.Arg1 != proto.OK {
		ch.up = false
		return
	}
	ch.up = true
	if restarted { // [recovery]
		s.stats.ChannelRestarts++                                               // [recovery]
		s.episode = m.Trace                                                     // [recovery]
		c.Obs().Emit(obs.KindReintegrate, c.Label(), ch.label, int64(newEp), 0) // [recovery]
		s.resumeIO(ch)                                                          // [recovery]
		s.episode = obs.SpanContext{}                                           // [recovery]
	}
}

// resumeIO restarts transmission on every connection bound to a
// recovered channel; anything lost while the driver was dead is covered
// by retransmission.
func (s *Server) resumeIO(ch *channel) { // [recovery]
	for _, id := range s.sockOrder { // [recovery]
		sk := s.socks[id]                                        // [recovery]
		if sk != nil && sk.kind == sockTCP && sk.conn.ch == ch { // [recovery]
			s.linkEpisode(sk.conn) // [recovery]
			s.trySend(sk.conn)     // [recovery]
		} // [recovery]
	} // [recovery]
}

// linkEpisode marks every operation still outstanding on a connection as
// recovered by the current driver-recovery episode: each op span gets a
// "recovered-by" link to the episode span, the network-path (§6.1)
// mirror of the file server's reissue arc (§6.2).
func (s *Server) linkEpisode(c *tcpConn) { // [recovery]
	if !s.episode.Valid() { // [recovery]
		return // [recovery]
	} // [recovery]
	for _, sc := range [...]obs.SpanContext{c.connectCtx, c.sendCtx, c.recvCtx} { // [recovery]
		if sc.Valid() { // [recovery]
			s.ctx.Obs().LinkSpan(s.ctx.Label(), sc, s.episode, "recovered-by") // [recovery]
		} // [recovery]
	} // [recovery]
}

// frameOut transmits one frame on a channel, stamped with the causal
// context of the operation it serves (zero lets the kernel stamp the
// server's ambient context). A down driver drops the frame — exactly the
// window TCP retransmission covers.
func (s *Server) frameOut(ch *channel, frame []byte, trace obs.SpanContext) {
	if ch == nil || !ch.up {
		s.stats.FramesDropped++
		return
	}
	err := s.ctx.AsyncSend(ch.ep, kernel.Message{Type: proto.EthSend, Payload: frame, Trace: trace})
	if err != nil {
		// Driver died since the last DS update.
		ch.up = false // [recovery]
		s.stats.FramesDropped++
		return
	}
	s.stats.FramesOut++
	ch.bytes.Add(int64(len(frame)))
}

// onFrame ingests a frame delivered by a driver.
func (s *Server) onFrame(m kernel.Message) {
	ch := s.channelByEp(m.Source)
	if ch == nil {
		return // stale instance or unknown driver
	}
	s.stats.FramesIn++
	ch.bytes.Add(int64(len(m.Payload)))
	f := m.Payload
	if len(f) == 0 {
		return
	}
	switch f[0] {
	case protoTCP:
		if seg, ok := decodeTCP(f); ok {
			s.handleSegment(ch, seg)
		}
	case protoUDP:
		if d, ok := decodeUDP(f); ok {
			s.handleDatagram(d)
		}
	}
}

func (s *Server) channelByEp(ep kernel.Endpoint) *channel {
	for _, ch := range s.channels {
		if ch.ep == ep {
			return ch
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Socket calls

func (s *Server) newSock(kind int) *sock {
	sk := &sock{id: s.nextSock, kind: kind}
	s.nextSock++
	s.socks[sk.id] = sk
	s.sockOrder = append(s.sockOrder, sk.id)
	return sk
}

func (s *Server) removeSock(id int64) {
	delete(s.socks, id)
	for i, v := range s.sockOrder {
		if v == id {
			s.sockOrder = append(s.sockOrder[:i], s.sockOrder[i+1:]...)
			break
		}
	}
}

func (s *Server) findConn(local, remote uint16) *tcpConn {
	for _, id := range s.sockOrder {
		sk := s.socks[id]
		if sk.kind == sockTCP && sk.conn.localPort == local && sk.conn.remotePort == remote {
			return sk.conn
		}
	}
	return nil
}

func (s *Server) removeConn(c *tcpConn) {
	s.removeSock(c.id)
}

func (s *Server) allocPort() uint16 {
	for {
		s.nextPort++
		if s.nextPort < 40000 {
			s.nextPort = 40000
		}
		p := s.nextPort
		if s.listeners[p] == nil && s.udpBinds[p] == nil {
			return p
		}
	}
}

// onConnect handles TCPConnect: Name = driver channel label, Arg1 =
// remote port. Blocks the caller until established.
func (s *Server) onConnect(m kernel.Message) {
	ch := s.chByName[m.Name]
	if ch == nil && len(s.channels) == 1 {
		ch = s.channels[0]
	}
	if ch == nil {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrNotFound})
		return
	}
	sk := s.newSock(sockTCP)
	s.nextISS += 64000
	c := &tcpConn{
		id:         sk.id,
		ch:         ch,
		localPort:  s.allocPort(),
		remotePort: uint16(m.Arg1),
		state:      stateSynSent,
		iss:        s.nextISS,
		rto:        s.cfg.RTOInit,
		peerWnd:    0xFFFF,
		connectW:   m.Source,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	sk.conn = c
	c.connectCtx = s.ctx.BeginWork("tcp.connect", m.Trace)
	s.tcpSegOut(c, flagSYN, c.iss, nil)
	s.armRetx(c)
}

// acceptSyn creates the passive side of a connection for a SYN aimed at
// a listener.
func (s *Server) acceptSyn(ch *channel, lst *sock, seg *segment) {
	sk := s.newSock(sockTCP)
	s.nextISS += 64000
	c := &tcpConn{
		id:         sk.id,
		ch:         ch,
		localPort:  seg.dstPort,
		remotePort: seg.srcPort,
		state:      stateSynRcvd,
		iss:        s.nextISS,
		rto:        s.cfg.RTOInit,
		peerWnd:    seg.wnd,
		rcvNxt:     seg.seq + 1,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	sk.conn = c
	s.tcpSegOut(c, flagSYN|flagACK, c.iss, nil)
	s.armRetx(c)
}

func (s *Server) onListen(m kernel.Message) {
	port := uint16(m.Arg1)
	if s.listeners[port] != nil {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrExist})
		return
	}
	sk := s.newSock(sockListen)
	sk.port = port
	s.listeners[port] = sk
	s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: sk.id})
}

func (s *Server) onAccept(m kernel.Message) {
	sk := s.socks[m.Arg1]
	if sk == nil || sk.kind != sockListen {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrBadCall})
		return
	}
	sk.acceptW = m.Source
	s.wakeAccepter(sk)
}

func (s *Server) wakeAccepter(lst *sock) {
	if lst.acceptW == 0 || len(lst.acceptQ) == 0 {
		return
	}
	id := lst.acceptQ[0]
	lst.acceptQ = lst.acceptQ[1:]
	w := lst.acceptW
	lst.acceptW = 0
	s.reply(w, kernel.Message{Type: proto.SockReply, Arg1: id})
}

func (s *Server) onSend(m kernel.Message) {
	sk := s.socks[m.Arg1]
	if sk == nil || sk.kind != sockTCP {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrBadCall})
		return
	}
	c := sk.conn
	if c.state == stateClosed || c.closeReq {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrClosed})
		return
	}
	// Queue what fits; block the caller for the rest.
	c.sendW = m.Source
	c.sendData = m.Payload
	c.sendDone = 0
	c.sendCtx = s.ctx.BeginWork("tcp.send", m.Trace)
	s.admitBlockedSend(c)
}

func (s *Server) onRecv(m kernel.Message) {
	sk := s.socks[m.Arg1]
	if sk == nil || sk.kind != sockTCP {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrBadCall})
		return
	}
	c := sk.conn
	max := int(m.Arg2)
	if max <= 0 {
		max = MSS
	}
	c.recvCtx = s.ctx.BeginWork("tcp.recv", m.Trace)
	if len(c.rcvBuf) > 0 || c.rcvFIN {
		s.replyRecv(c, m.Source, max)
		return
	}
	if c.state == stateClosed {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrClosed})
		s.ctx.EndWork(c.recvCtx, 1)
		c.recvCtx = obs.SpanContext{}
		return
	}
	c.recvW = m.Source
	c.recvMax = max
}

func (s *Server) onClose(m kernel.Message) {
	sk := s.socks[m.Arg1]
	if sk == nil {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrBadCall})
		return
	}
	switch sk.kind {
	case sockListen:
		delete(s.listeners, sk.port)
		s.removeSock(sk.id)
	case sockUDP:
		delete(s.udpBinds, sk.port)
		s.removeSock(sk.id)
	case sockTCP:
		sk.conn.closeReq = true
		s.trySend(sk.conn)
	}
	s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.OK})
}

// ---------------------------------------------------------------------
// UDP

func (s *Server) udpBind(port uint16) *sock {
	if sk := s.udpBinds[port]; sk != nil {
		return sk
	}
	sk := s.newSock(sockUDP)
	sk.port = port
	s.udpBinds[port] = sk
	return sk
}

// onUDPSend: Name = channel label, Arg1 = destination port, Arg2 = source
// port (0 = ephemeral). Datagram loss is explicitly tolerated (§6.1).
func (s *Server) onUDPSend(m kernel.Message) {
	ch := s.chByName[m.Name]
	if ch == nil && len(s.channels) == 1 {
		ch = s.channels[0]
	}
	if ch == nil {
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: proto.ErrNotFound})
		return
	}
	src := uint16(m.Arg2)
	if src == 0 {
		src = s.allocPort()
	}
	s.frameOut(ch, encodeUDP(&datagram{
		srcPort: src,
		dstPort: uint16(m.Arg1),
		payload: m.Payload,
	}), m.Trace)
	s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: int64(len(m.Payload))})
}

// onUDPRecv blocks until a datagram arrives on the local port (Arg1).
func (s *Server) onUDPRecv(m kernel.Message) {
	sk := s.udpBind(uint16(m.Arg1))
	if len(sk.udpQ) > 0 {
		d := sk.udpQ[0]
		sk.udpQ = sk.udpQ[1:]
		s.reply(m.Source, kernel.Message{Type: proto.SockReply, Arg1: int64(len(d)), Payload: d})
		return
	}
	sk.udpW = m.Source
}

func (s *Server) handleDatagram(d *datagram) {
	sk := s.udpBinds[d.dstPort]
	if sk == nil {
		return // no listener: dropped, as UDP does
	}
	if sk.udpW != 0 {
		w := sk.udpW
		sk.udpW = 0
		s.reply(w, kernel.Message{Type: proto.SockReply, Arg1: int64(len(d.payload)), Payload: d.payload})
		return
	}
	if len(sk.udpQ) < 64 {
		sk.udpQ = append(sk.udpQ, d.payload)
	}
}

// ---------------------------------------------------------------------
// Timers

func (s *Server) armTimer(c *kernel.Ctx) {
	var next sim.Time
	for _, id := range s.sockOrder {
		sk := s.socks[id]
		if sk.kind != sockTCP {
			continue
		}
		if t := sk.conn.retxAt; t != 0 && (next == 0 || t < next) {
			next = t
		}
		if t := sk.conn.deleteAt; t != 0 && (next == 0 || t < next) {
			next = t
		}
	}
	if next == 0 {
		c.SetAlarm(0)
		return
	}
	d := next - s.now()
	if d <= 0 {
		d = 1
	}
	c.SetAlarm(d)
}

func (s *Server) onTimer() {
	now := s.now()
	// Copy the order: timer handlers can delete sockets.
	ids := append([]int64(nil), s.sockOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sk := s.socks[id]
		if sk == nil || sk.kind != sockTCP {
			continue
		}
		c := sk.conn
		if c.deleteAt != 0 && now >= c.deleteAt {
			c.state = stateClosed
			s.removeConn(c)
			continue
		}
		if c.retxAt != 0 && now >= c.retxAt {
			s.onTcpTimer(c)
		}
	}
}

// DebugConns describes every socket's state for tests and debugging.
func (s *Server) DebugConns() []string {
	var out []string
	for _, id := range s.sockOrder {
		sk := s.socks[id]
		switch sk.kind {
		case sockTCP:
			c := sk.conn
			out = append(out, fmt.Sprintf(
				"tcp %d %d->%d state=%d una=%d nxt=%d buf=%d rcvNxt=%d rcvBuf=%d peerWnd=%d retxAt=%v rto=%v fin(s=%v a=%v r=%v) waiters(c=%v r=%v s=%v)",
				c.id, c.localPort, c.remotePort, c.state,
				c.sndUna-c.iss, c.sndNxt-c.iss, len(c.sndBuf),
				c.rcvNxt, len(c.rcvBuf), c.peerWnd, c.retxAt, c.rto,
				c.finSent, c.finAcked, c.rcvFIN,
				c.connectW != 0, c.recvW != 0, c.sendW != 0))
		case sockListen:
			out = append(out, fmt.Sprintf("listen %d port=%d q=%d", sk.id, sk.port, len(sk.acceptQ)))
		case sockUDP:
			out = append(out, fmt.Sprintf("udp %d port=%d q=%d", sk.id, sk.port, len(sk.udpQ)))
		}
	}
	return out
}
