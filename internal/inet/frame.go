package inet

import (
	"encoding/binary"
	"hash/crc32"
)

// Wire format: one Ethernet frame carries one TCP segment or UDP
// datagram. The header layout is fixed:
//
//	byte 0     protocol (1 = TCP, 2 = UDP)
//	bytes 1-2  source port
//	bytes 3-4  destination port
//
// TCP continues with:
//
//	bytes 5-8   sequence number
//	bytes 9-12  acknowledgment number
//	byte  13    flags (SYN/ACK/FIN/RST)
//	bytes 14-15 advertised receive window
//	bytes 16-19 checksum (CRC-32 over the frame with this field zeroed)
//	bytes 20+   payload
//
// UDP continues with:
//
//	bytes 5-8   checksum
//	bytes 9+    payload
//
// The end-to-end checksum is what guarantees that a buggy driver cannot
// silently corrupt a TCP stream (§6.1: TCP "will notice and reinsert the
// missing packets in the data stream").

// Protocol numbers.
const (
	protoTCP = 1
	protoUDP = 2
)

// TCP header flags.
const (
	flagSYN = 1 << iota
	flagACK
	flagFIN
	flagRST
)

// tcpHeaderLen is the byte length of the TCP-on-wire header.
const tcpHeaderLen = 20

// udpHeaderLen is the byte length of the UDP-on-wire header.
const udpHeaderLen = 9

// MSS is the maximum TCP payload per frame (Ethernet 1500 minus header).
const MSS = 1500 - tcpHeaderLen

// segment is a decoded TCP segment.
type segment struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            uint8
	wnd              uint16
	payload          []byte
}

// datagram is a decoded UDP datagram.
type datagram struct {
	srcPort, dstPort uint16
	payload          []byte
}

// encodeTCP serializes a segment into a frame.
func encodeTCP(s *segment) []byte {
	f := make([]byte, tcpHeaderLen+len(s.payload))
	f[0] = protoTCP
	binary.BigEndian.PutUint16(f[1:], s.srcPort)
	binary.BigEndian.PutUint16(f[3:], s.dstPort)
	binary.BigEndian.PutUint32(f[5:], s.seq)
	binary.BigEndian.PutUint32(f[9:], s.ack)
	f[13] = s.flags
	binary.BigEndian.PutUint16(f[14:], s.wnd)
	copy(f[tcpHeaderLen:], s.payload)
	binary.BigEndian.PutUint32(f[16:], crc32.ChecksumIEEE(f))
	return f
}

// decodeTCP parses a frame as a TCP segment, verifying the checksum.
func decodeTCP(f []byte) (*segment, bool) {
	if len(f) < tcpHeaderLen || f[0] != protoTCP {
		return nil, false
	}
	sum := binary.BigEndian.Uint32(f[16:])
	cp := make([]byte, len(f))
	copy(cp, f)
	binary.BigEndian.PutUint32(cp[16:], 0)
	if crc32.ChecksumIEEE(cp) != sum {
		return nil, false
	}
	return &segment{
		srcPort: binary.BigEndian.Uint16(f[1:]),
		dstPort: binary.BigEndian.Uint16(f[3:]),
		seq:     binary.BigEndian.Uint32(f[5:]),
		ack:     binary.BigEndian.Uint32(f[9:]),
		flags:   f[13],
		wnd:     binary.BigEndian.Uint16(f[14:]),
		payload: f[tcpHeaderLen:],
	}, true
}

// encodeUDP serializes a datagram into a frame.
func encodeUDP(d *datagram) []byte {
	f := make([]byte, udpHeaderLen+len(d.payload))
	f[0] = protoUDP
	binary.BigEndian.PutUint16(f[1:], d.srcPort)
	binary.BigEndian.PutUint16(f[3:], d.dstPort)
	copy(f[udpHeaderLen:], d.payload)
	binary.BigEndian.PutUint32(f[5:], crc32.ChecksumIEEE(f))
	return f
}

// decodeUDP parses a frame as a UDP datagram, verifying the checksum.
func decodeUDP(f []byte) (*datagram, bool) {
	if len(f) < udpHeaderLen || f[0] != protoUDP {
		return nil, false
	}
	sum := binary.BigEndian.Uint32(f[5:])
	cp := make([]byte, len(f))
	copy(cp, f)
	binary.BigEndian.PutUint32(cp[5:], 0)
	if crc32.ChecksumIEEE(cp) != sum {
		return nil, false
	}
	return &datagram{
		srcPort: binary.BigEndian.Uint16(f[1:]),
		dstPort: binary.BigEndian.Uint16(f[3:]),
		payload: f[udpHeaderLen:],
	}, true
}

// seqLT is modular sequence comparison (a < b in sequence space).
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE is modular a <= b.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }
