package inet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"resilientos/internal/ds"
	"resilientos/internal/kernel"
	"resilientos/internal/netlib"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// The inet tests run two network servers joined by a pair of loopback
// stub drivers, so TCP correctness is exercised without the full machine:
// the stubs can delay, drop, or duplicate frames on demand.

// stubPair is a software wire between two stub drivers.
type stubPair struct {
	env       *sim.Env
	k         *kernel.Kernel
	clientA   kernel.Endpoint // inet attached to eth.a
	clientB   kernel.Endpoint
	Delay     sim.Time
	DropEvery int // drop every Nth frame (0 = never)
	DupEvery  int // duplicate every Nth frame
	count     int
	AtoB      int
	BtoA      int
}

// msgWire carries a frame between the two stub drivers.
const msgWire int32 = 990

// stubDriver runs one side of the pair.
func (sp *stubPair) driver(side int) func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) {
		var client *kernel.Endpoint
		if side == 0 {
			client = &sp.clientA
		} else {
			client = &sp.clientB
		}
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			switch m.Type {
			case proto.EthConf:
				*client = m.Source
				_ = c.Send(m.Source, kernel.Message{Type: proto.EthAck, Arg1: proto.OK})
			case proto.EthSend:
				sp.carry(side, m.Payload)
			case msgWire:
				// A frame arriving off the wire: hand it to our network
				// server like a real driver's receive path.
				if m.Source == kernel.System && *client != 0 {
					_ = c.AsyncSend(*client, kernel.Message{Type: proto.EthRecv, Payload: m.Payload})
				}
			case proto.RSPing:
				_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong})
			}
		}
	}
}

func (sp *stubPair) carry(side int, frame []byte) {
	sp.count++
	if side == 0 {
		sp.AtoB++
	} else {
		sp.BtoA++
	}
	if sp.DropEvery > 0 && sp.count%sp.DropEvery == 0 {
		return
	}
	n := 1
	if sp.DupEvery > 0 && sp.count%sp.DupEvery == 0 {
		n = 2
	}
	peer := "eth.b"
	if side == 1 {
		peer = "eth.a"
	}
	for i := 0; i < n; i++ {
		sp.env.Schedule(sp.Delay, func() {
			ep := sp.k.LookupLabel(peer)
			if ep == kernel.None {
				return
			}
			_ = sp.k.PostAsync(ep, kernel.Message{Type: msgWire, Payload: frame})
		})
	}
}

// rig boots kernel + DS + two inets + the stub drivers.
type rig struct {
	env  *sim.Env
	k    *kernel.Kernel
	a, b *Server
	aEp  kernel.Endpoint
	bEp  kernel.Endpoint
	sp   *stubPair
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dsEp, err := ds.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	sp := &stubPair{env: env, k: k, Delay: 100 * sim.Time(1e3)}
	r := &rig{env: env, k: k, sp: sp}
	// The publisher role (normally the reincarnation server).
	trusted := kernel.Privileges{AllowAllIPC: true, Calls: []kernel.Call{kernel.CallAlarm}}
	spawnAndPublish := func(label string, body func(*kernel.Ctx)) kernel.Endpoint {
		c, err := k.Spawn(label, trusted, body)
		if err != nil {
			t.Fatal(err)
		}
		return c.Endpoint()
	}
	drvA := spawnAndPublish("eth.a", sp.driver(0))
	drvB := spawnAndPublish("eth.b", sp.driver(1))
	r.a = New(Config{Pattern: "eth.a", DS: dsEp})
	r.b = New(Config{Pattern: "eth.b", DS: dsEp})
	aCtx, err := k.Spawn("inetA", trusted, r.a.Binary())
	if err != nil {
		t.Fatal(err)
	}
	bCtx, err := k.Spawn("inetB", trusted, r.b.Binary())
	if err != nil {
		t.Fatal(err)
	}
	r.aEp, r.bEp = aCtx.Endpoint(), bCtx.Endpoint()
	// Publish the drivers (as RS would).
	k.Spawn("rs", trusted, func(c *kernel.Ctx) {
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.a", Arg1: int64(drvA)})
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.b", Arg1: int64(drvB)})
		c.Sleep(time.Hour)
	})
	return r
}

func (r *rig) spawnApp(t *testing.T, name string, body func(c *kernel.Ctx)) {
	t.Helper()
	_, err := r.k.Spawn(name, kernel.Privileges{AllowAllIPC: true}, body)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPHandshakeAndEcho(t *testing.T) {
	r := newRig(t)
	r.spawnApp(t, "server", func(c *kernel.Ctx) {
		lst, err := netlib.Listen(c, r.bEp, 7)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := lst.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		data, err := conn.Read(4096)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		conn.Write(bytes.ToUpper(data))
		conn.Close()
	})
	var got []byte
	r.spawnApp(t, "client", func(c *kernel.Ctx) {
		c.Sleep(100 * time.Millisecond)
		conn, err := netlib.Dial(c, r.aEp, "eth.a", 7)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		conn.Write([]byte("hello"))
		got, err = conn.Read(4096)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		conn.Close()
	})
	r.env.Run(time.Minute)
	if string(got) != "HELLO" {
		t.Fatalf("got %q", got)
	}
}

// transfer moves size patterned bytes from B (server) to A (client) and
// verifies content; returns the duration.
func transfer(t *testing.T, r *rig, size int) {
	t.Helper()
	pattern := func(i int) byte { return byte(i*7 + i>>8) }
	r.spawnApp(t, "server", func(c *kernel.Ctx) {
		lst, err := netlib.Listen(c, r.bEp, 80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		conn, err := lst.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 8192)
		for off := 0; off < size; {
			n := len(buf)
			if n > size-off {
				n = size - off
			}
			for i := 0; i < n; i++ {
				buf[i] = pattern(off + i)
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			off += n
		}
		conn.Close()
	})
	done := false
	r.spawnApp(t, "client", func(c *kernel.Ctx) {
		c.Sleep(50 * time.Millisecond)
		conn, err := netlib.Dial(c, r.aEp, "eth.a", 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		off := 0
		for {
			data, err := conn.Read(8192)
			if errors.Is(err, netlib.ErrClosed) {
				break
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			for i, b := range data {
				if b != pattern(off+i) {
					t.Errorf("corruption at %d", off+i)
					return
				}
			}
			off += len(data)
		}
		if off != size {
			t.Errorf("received %d bytes, want %d", off, size)
		}
		done = true
	})
	r.env.Run(10 * time.Minute)
	if !done {
		t.Fatal("transfer did not complete")
	}
}

func TestTCPBulkTransferClean(t *testing.T) {
	r := newRig(t)
	transfer(t, r, 1<<20)
	if r.a.Stats().Retransmits > 0 {
		t.Errorf("clean wire caused %d retransmits", r.a.Stats().Retransmits)
	}
}

func TestTCPBulkTransferWithLoss(t *testing.T) {
	r := newRig(t)
	r.sp.DropEvery = 20 // 5% loss both directions
	transfer(t, r, 512<<10)
	if r.b.Stats().Retransmits == 0 && r.b.Stats().FastRetransmits == 0 {
		t.Error("lossy wire caused no retransmissions")
	}
}

func TestTCPBulkTransferWithHeavyLoss(t *testing.T) {
	r := newRig(t)
	r.sp.DropEvery = 4 // 25% loss
	transfer(t, r, 64<<10)
}

func TestTCPBulkTransferWithDuplication(t *testing.T) {
	r := newRig(t)
	r.sp.DupEvery = 10
	transfer(t, r, 256<<10)
}

func TestTCPConnectRefused(t *testing.T) {
	r := newRig(t)
	var err error
	r.spawnApp(t, "client", func(c *kernel.Ctx) {
		c.Sleep(50 * time.Millisecond)
		_, err = netlib.Dial(c, r.aEp, "eth.a", 9999) // nobody listens
	})
	r.env.Run(time.Minute)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPListenPortConflict(t *testing.T) {
	r := newRig(t)
	var second error
	r.spawnApp(t, "server", func(c *kernel.Ctx) {
		if _, err := netlib.Listen(c, r.bEp, 80); err != nil {
			t.Errorf("first listen: %v", err)
			return
		}
		_, second = netlib.Listen(c, r.bEp, 80)
	})
	r.env.Run(time.Second)
	if second == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestTCPEOFAfterClose(t *testing.T) {
	r := newRig(t)
	r.spawnApp(t, "server", func(c *kernel.Ctx) {
		lst, _ := netlib.Listen(c, r.bEp, 80)
		conn, err := lst.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("bye"))
		conn.Close()
	})
	var readErr error
	var first []byte
	r.spawnApp(t, "client", func(c *kernel.Ctx) {
		c.Sleep(50 * time.Millisecond)
		conn, err := netlib.Dial(c, r.aEp, "eth.a", 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		first, _ = conn.Read(64)
		_, readErr = conn.Read(64)
	})
	r.env.Run(time.Minute)
	if string(first) != "bye" {
		t.Fatalf("first read = %q", first)
	}
	if !errors.Is(readErr, netlib.ErrClosed) {
		t.Fatalf("read after close = %v, want ErrClosed", readErr)
	}
}

func TestTCPFlowControlSlowReader(t *testing.T) {
	// A reader that drains slowly must not lose data or deadlock: the
	// advertised window throttles the sender.
	r := newRig(t)
	const size = 300 << 10 // larger than rcvBufLimit + sndBufLimit
	r.spawnApp(t, "server", func(c *kernel.Ctx) {
		lst, _ := netlib.Listen(c, r.bEp, 80)
		conn, err := lst.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16<<10)
		for off := 0; off < size; {
			n := len(buf)
			if n > size-off {
				n = size - off
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			off += n
		}
		conn.Close()
	})
	total := 0
	r.spawnApp(t, "client", func(c *kernel.Ctx) {
		c.Sleep(50 * time.Millisecond)
		conn, err := netlib.Dial(c, r.aEp, "eth.a", 80)
		if err != nil {
			return
		}
		for {
			data, err := conn.Read(4 << 10)
			if err != nil {
				break
			}
			total += len(data)
			c.Sleep(5 * time.Millisecond) // slow consumer
		}
	})
	r.env.Run(30 * time.Minute)
	if total != size {
		t.Fatalf("slow reader got %d of %d bytes", total, size)
	}
}

func TestUDPRoundtrip(t *testing.T) {
	r := newRig(t)
	var got []byte
	r.spawnApp(t, "sink", func(c *kernel.Ctx) {
		got, _ = netlib.UDPRecv(c, r.bEp, 500)
	})
	r.spawnApp(t, "src", func(c *kernel.Ctx) {
		c.Sleep(50 * time.Millisecond)
		if err := netlib.UDPSend(c, r.aEp, "eth.a", 500, 501, []byte("datagram")); err != nil {
			t.Errorf("udp send: %v", err)
		}
	})
	r.env.Run(time.Minute)
	if string(got) != "datagram" {
		t.Fatalf("got %q", got)
	}
}

func TestUDPQueuesWhenNoReader(t *testing.T) {
	r := newRig(t)
	r.spawnApp(t, "src", func(c *kernel.Ctx) {
		c.Sleep(50 * time.Millisecond)
		for i := 0; i < 3; i++ {
			netlib.UDPSend(c, r.aEp, "eth.a", 500, 501, []byte{byte('a' + i)})
		}
	})
	var got []string
	r.spawnApp(t, "lateSink", func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		// Prime the bind so datagrams queue... too late for that; instead
		// read whatever was queued after binding happened on first recv.
		for i := 0; i < 3; i++ {
			d, err := netlib.UDPRecv(c, r.bEp, 500)
			if err != nil {
				return
			}
			got = append(got, string(d))
		}
	})
	r.env.Run(30 * time.Second)
	// Datagrams sent before any bind existed are dropped (UDP semantics);
	// the first recv binds the port, so this test only asserts no crash
	// and no duplication.
	if len(got) > 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSegmentCodecRoundtrip(t *testing.T) {
	seg := &segment{
		srcPort: 80, dstPort: 40001,
		seq: 12345, ack: 67890, flags: flagACK | flagFIN,
		wnd: 555, payload: []byte("payload bytes"),
	}
	dec, ok := decodeTCP(encodeTCP(seg))
	if !ok {
		t.Fatal("decode failed")
	}
	if dec.srcPort != seg.srcPort || dec.dstPort != seg.dstPort ||
		dec.seq != seg.seq || dec.ack != seg.ack || dec.flags != seg.flags ||
		dec.wnd != seg.wnd || !bytes.Equal(dec.payload, seg.payload) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", dec, seg)
	}
}

func TestSegmentChecksumRejectsCorruption(t *testing.T) {
	f := encodeTCP(&segment{srcPort: 1, dstPort: 2, payload: []byte("x")})
	f[len(f)-1] ^= 0xFF
	if _, ok := decodeTCP(f); ok {
		t.Fatal("corrupted segment accepted")
	}
}

func TestDatagramCodecRoundtrip(t *testing.T) {
	d := &datagram{srcPort: 9, dstPort: 10, payload: []byte("dgram")}
	dec, ok := decodeUDP(encodeUDP(d))
	if !ok {
		t.Fatal("decode failed")
	}
	if dec.srcPort != 9 || dec.dstPort != 10 || !bytes.Equal(dec.payload, d.payload) {
		t.Fatalf("roundtrip mismatch")
	}
}

func TestDatagramChecksumRejectsCorruption(t *testing.T) {
	f := encodeUDP(&datagram{srcPort: 1, dstPort: 2, payload: []byte("x")})
	f[udpHeaderLen] ^= 0xFF
	if _, ok := decodeUDP(f); ok {
		t.Fatal("corrupted datagram accepted")
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{1, 2, true},
		{2, 1, false},
		{0xFFFFFFFF, 0, true}, // wraparound
		{0, 0xFFFFFFFF, false},
		{5, 5, false},
	}
	for _, tc := range cases {
		if got := seqLT(tc.a, tc.b); got != tc.lt {
			t.Errorf("seqLT(%d,%d) = %v", tc.a, tc.b, got)
		}
	}
	if !seqLE(5, 5) || seqLE(6, 5) {
		t.Error("seqLE broken")
	}
}
