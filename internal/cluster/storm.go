package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"resilientos"
	"resilientos/internal/sim"
)

// FaultMode is how a storm damages a driver.
type FaultMode int

// Fault modes.
const (
	// ModeKill delivers SIGKILL — the §7.1 crash-simulation fault model.
	ModeKill FaultMode = iota
	// ModeInject mutates the running driver image with one random fault
	// via the internal/fi injector — the §7.2 SWIFI fault model. The
	// driver keeps running until the corrupted code path is exercised.
	ModeInject
)

func (m FaultMode) String() string {
	if m == ModeInject {
		return "inject"
	}
	return "kill"
}

// Storm is a fleet-wide fault schedule. The zero value is no storm.
type Storm struct {
	// Kind is "none", "correlated", or "poisson".
	Kind string
	// Driver is the victim driver label (default eth.rtl8139).
	Driver string
	// Mode selects SIGKILL or SWIFI injection.
	Mode FaultMode

	// Correlated storms: every Interval, the same driver is hit on K
	// nodes at once (rotating through the fleet wave by wave), modeling a
	// bad rollout or a shared environmental trigger — the scenario that
	// forces parallel recovery.
	K        int
	Interval time.Duration

	// Poisson storms: each node independently draws exponential
	// inter-fault gaps with the given mean — uncorrelated wear-and-tear.
	Mean time.Duration
}

func (s Storm) String() string {
	switch s.Kind {
	case "", "none":
		return "none"
	case "correlated":
		return fmt.Sprintf("correlated:%s,k=%d,every=%s,mode=%s", s.Driver, s.K, s.Interval, s.Mode)
	case "poisson":
		return fmt.Sprintf("poisson:%s,mean=%s,mode=%s", s.Driver, s.Mean, s.Mode)
	}
	return s.Kind
}

// ParseStorm parses a storm spec:
//
//	none
//	correlated:<driver>[,k=N][,every=DUR][,mode=kill|inject]
//	poisson:<driver>[,mean=DUR][,mode=kill|inject]
//
// Durations use Go syntax ("2s", "750ms"). Defaults: driver
// eth.rtl8139, k=2, every=2s, mean=1s, mode=kill.
func ParseStorm(spec string) (Storm, error) {
	s := Storm{Kind: "none", Driver: resilientos.DriverRTL8139, K: 2,
		Interval: 2 * time.Second, Mean: time.Second}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return s, nil
	}
	kind, rest, _ := strings.Cut(spec, ":")
	if kind != "correlated" && kind != "poisson" {
		return s, fmt.Errorf("cluster: unknown storm kind %q (want none, correlated, or poisson)", kind)
	}
	s.Kind = kind
	for i, tok := range strings.Split(rest, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			if i == 0 {
				s.Driver = tok
				continue
			}
			return s, fmt.Errorf("cluster: storm token %q is not key=value", tok)
		}
		switch key {
		case "k":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return s, fmt.Errorf("cluster: bad storm k %q", val)
			}
			s.K = n
		case "every":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return s, fmt.Errorf("cluster: bad storm interval %q", val)
			}
			s.Interval = d
		case "mean":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return s, fmt.Errorf("cluster: bad storm mean %q", val)
			}
			s.Mean = d
		case "mode":
			switch val {
			case "kill":
				s.Mode = ModeKill
			case "inject":
				s.Mode = ModeInject
			default:
				return s, fmt.Errorf("cluster: bad storm mode %q (want kill or inject)", val)
			}
		default:
			return s, fmt.Errorf("cluster: unknown storm key %q", key)
		}
	}
	return s, nil
}

// strike damages the victim driver on one node according to the storm's
// fault mode.
func (c *Cluster) strike(n *Node, s Storm) {
	switch s.Mode {
	case ModeInject:
		if n.inject(s.Driver) {
			c.reg.Counter("fleet.injections").Add(1)
		}
	default:
		n.kill(s.Driver)
		c.reg.Counter("fleet.kills").Add(1)
	}
}

// startStorm schedules the storm on the fleet clock. Returned tickers and
// events live until the fleet env drains; the campaign horizon bounds
// them naturally.
func (c *Cluster) startStorm(s Storm, until sim.Time) {
	switch s.Kind {
	case "correlated":
		wave := 0
		c.fleet.Tick(s.Interval, func() {
			if c.fleet.Now() > until {
				return
			}
			k := s.K
			if k > len(c.nodes) {
				k = len(c.nodes)
			}
			// Rotate the wave's victim window so every node takes turns
			// being hit; all k strikes land at the same instant.
			for i := 0; i < k; i++ {
				c.strike(c.nodes[(wave+i)%len(c.nodes)], s)
			}
			wave = (wave + 1) % len(c.nodes)
		})
	case "poisson":
		// One exponential arrival chain per node, driven by a dedicated
		// RNG so storm draws never interleave with request-path draws.
		rng := rand.New(rand.NewSource(c.cfg.Seed ^ 0x53746F726D)) // "Storm"
		var arm func(n *Node)
		arm = func(n *Node) {
			gap := time.Duration(rng.ExpFloat64() * float64(s.Mean))
			if gap < time.Millisecond {
				gap = time.Millisecond
			}
			c.fleet.Schedule(gap, func() {
				if c.fleet.Now() > until {
					return
				}
				c.strike(n, s)
				arm(n)
			})
		}
		for _, n := range c.nodes {
			arm(n)
		}
	}
}
