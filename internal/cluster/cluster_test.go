package cluster

import (
	"bytes"
	"testing"
	"time"

	"resilientos/internal/obs/timeseries"
)

func testConfig() Config {
	return Config{
		Nodes:   4,
		Seed:    11,
		Horizon: 4 * time.Second,
		Window:  200 * time.Millisecond,
		Settle:  2 * time.Second,
		Drain:   4 * time.Second,
		RPS:     150,
	}
}

func runBytes(t *testing.T, cfg Config) (csv, report []byte) {
	t.Helper()
	c := New(cfg)
	r := c.Run()
	var csvBuf, jsonBuf bytes.Buffer
	if err := timeseries.WriteCSV(&csvBuf, c.Segments()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := timeseries.Validate(c.Segments(), c.sampler.Segments()[0].Windows[0].End-c.sampler.Segments()[0].Windows[0].Start); err != nil {
		t.Fatalf("timeseries.Validate: %v", err)
	}
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return csvBuf.Bytes(), jsonBuf.Bytes()
}

// TestFleetDeterminism is the reproducibility contract: the same fleet
// seed yields byte-identical window series and reports across repeated
// in-process runs AND across node-advance parallelism levels.
func TestFleetDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Storm = Storm{Kind: "correlated", Driver: "eth.rtl8139", K: 2,
		Interval: 1500 * time.Millisecond}

	csv1, rep1 := runBytes(t, cfg)
	csv2, rep2 := runBytes(t, cfg)
	if !bytes.Equal(csv1, csv2) {
		t.Fatalf("repeated run: CSV differs\nrun1:\n%s\nrun2:\n%s", csv1, csv2)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("repeated run: report differs\nrun1:\n%s\nrun2:\n%s", rep1, rep2)
	}

	for _, workers := range []int{2, 3, 8} {
		wcfg := cfg
		wcfg.Workers = workers
		csvW, repW := runBytes(t, wcfg)
		if !bytes.Equal(csv1, csvW) {
			t.Fatalf("workers=%d: CSV differs from workers=1", workers)
		}
		if !bytes.Equal(rep1, repW) {
			t.Fatalf("workers=%d: report differs from workers=1\nbase:\n%s\nworkers:\n%s",
				workers, rep1, repW)
		}
	}
}

// TestFailureAwareBeatsRoundRobin is the campaign acceptance check: under
// a correlated NIC-kill storm, routing around known-sick nodes yields
// strictly higher served availability and strictly lower p99 latency
// than health-blind round-robin, while every crash still recovers.
func TestFailureAwareBeatsRoundRobin(t *testing.T) {
	base := testConfig()
	base.Storm = Storm{Kind: "correlated", Driver: "eth.rtl8139", K: 2,
		Interval: time.Second}

	rrCfg := base
	rrCfg.Policy = &RoundRobin{}
	rr := Run(rrCfg)

	faCfg := base
	faCfg.Policy = FailureAware{}
	fa := Run(faCfg)

	if rr.Policy != "round-robin" || fa.Policy != "failure-aware" {
		t.Fatalf("policy labels: %q vs %q", rr.Policy, fa.Policy)
	}
	if rr.Crashes == 0 {
		t.Fatalf("storm produced no crashes: %+v", rr)
	}
	for _, r := range []*Report{rr, fa} {
		if r.RecoveredPct != 100 || r.GaveUp != 0 {
			t.Fatalf("%s: recovery not 100%%: recovered=%.1f%% gaveup=%d crashes=%d",
				r.Policy, r.RecoveredPct, r.GaveUp, r.Crashes)
		}
		if r.Incomplete != 0 {
			t.Fatalf("%s: %d requests never completed", r.Policy, r.Incomplete)
		}
	}
	if fa.AvailabilityPct <= rr.AvailabilityPct {
		t.Fatalf("failure-aware availability %.2f%% not above round-robin %.2f%%",
			fa.AvailabilityPct, rr.AvailabilityPct)
	}
	if fa.Latency.P99 >= rr.Latency.P99 {
		t.Fatalf("failure-aware p99 %s not below round-robin %s",
			time.Duration(fa.Latency.P99), time.Duration(rr.Latency.P99))
	}
	// The node-level floor is storm-driven, not policy-driven: both runs
	// kill the same drivers at the same times.
	if rr.NodeAvailabilityPct != fa.NodeAvailabilityPct {
		t.Fatalf("node availability floor should be policy-independent: %.2f%% vs %.2f%%",
			rr.NodeAvailabilityPct, fa.NodeAvailabilityPct)
	}
}

// TestPoissonInjectStorm exercises the SWIFI storm mode end to end:
// independent per-node fault injection, detection via the nodes' own
// defect machinery, and full recovery accounting.
func TestPoissonInjectStorm(t *testing.T) {
	cfg := testConfig()
	cfg.Storm = Storm{Kind: "poisson", Driver: "eth.rtl8139",
		Mean: 900 * time.Millisecond, Mode: ModeInject}
	r := Run(cfg)
	if r.Injections == 0 {
		t.Fatalf("no injections recorded: %+v", r)
	}
	if r.GaveUp != 0 {
		t.Fatalf("gave up %d times", r.GaveUp)
	}
	if r.Completed == 0 {
		t.Fatalf("no requests completed")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"round-robin", "least-loaded", "failure-aware"} {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatalf("ParsePolicy(bogus) succeeded")
	}
}

func TestParseStorm(t *testing.T) {
	cases := []struct {
		spec string
		want Storm
		ok   bool
	}{
		{"none", Storm{Kind: "none", Driver: "eth.rtl8139", K: 2,
			Interval: 2 * time.Second, Mean: time.Second}, true},
		{"", Storm{Kind: "none", Driver: "eth.rtl8139", K: 2,
			Interval: 2 * time.Second, Mean: time.Second}, true},
		{"correlated:disk.sata,k=3,every=500ms,mode=inject",
			Storm{Kind: "correlated", Driver: "disk.sata", K: 3,
				Interval: 500 * time.Millisecond, Mean: time.Second, Mode: ModeInject}, true},
		{"poisson:eth.dp8390,mean=750ms",
			Storm{Kind: "poisson", Driver: "eth.dp8390", K: 2,
				Interval: 2 * time.Second, Mean: 750 * time.Millisecond}, true},
		{"hail:everything", Storm{}, false},
		{"correlated:eth.rtl8139,k=0", Storm{}, false},
		{"poisson:eth.rtl8139,mean=xyz", Storm{}, false},
	}
	for _, tc := range cases {
		got, err := ParseStorm(tc.spec)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseStorm(%q): err=%v, want ok=%v", tc.spec, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseStorm(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	// Round trip: String output re-parses to the same storm.
	for _, spec := range []string{
		"correlated:disk.sata,k=3,every=500ms,mode=inject",
		"poisson:eth.dp8390,mean=750ms,mode=kill",
	} {
		s, err := ParseStorm(spec)
		if err != nil {
			t.Fatalf("ParseStorm(%q): %v", spec, err)
		}
		again, err := ParseStorm(s.String())
		if err != nil || again != s {
			t.Fatalf("round trip %q -> %q -> %+v (err %v)", spec, s.String(), again, err)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for fleet := int64(0); fleet < 4; fleet++ {
		for i := 0; i < 16; i++ {
			s := deriveSeed(fleet, i)
			if s <= 0 {
				t.Fatalf("deriveSeed(%d,%d) = %d, want positive", fleet, i, s)
			}
			if seen[s] {
				t.Fatalf("deriveSeed(%d,%d) = %d collides", fleet, i, s)
			}
			seen[s] = true
		}
	}
}
