package cluster

import (
	"bytes"
	"testing"
	"time"

	"resilientos/internal/workload"
)

const testSpec = `{
  "name": "mixed-test",
  "seed": 11,
  "horizon": "4s",
  "classes": [
    {"class": "net", "clients": 4, "rps": 80, "arrival": {"process": "poisson"},
     "slo": "25ms", "periods": [{"period": "2s", "amplitude": 0.4}]},
    {"class": "disk", "clients": 2, "rps": 40, "arrival": {"process": "gamma", "shape": 4}, "slo": "40ms"},
    {"class": "char", "clients": 2, "rps": 12, "arrival": {"process": "weibull", "shape": 1.5}, "slo": "35ms"}
  ]
}`

func workloadConfig(t *testing.T) Config {
	t.Helper()
	spec, err := workload.Parse([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Nodes = 3
	cfg.Arrivals = spec.Generate()
	cfg.Classes = spec.ClassNames()
	cfg.Budgets = spec.Budgets()
	cfg.WorkloadName = spec.Name
	cfg.Horizon = time.Duration(spec.Horizon)
	cfg.Storm = Storm{Kind: "correlated", Driver: "eth.rtl8139", K: 1,
		Interval: 1500 * time.Millisecond}
	return cfg
}

// TestWorkloadDeterminism extends the reproducibility contract to
// workload-driven campaigns: the same generated arrival sequence —
// including the char class, which the legacy mix never exercises —
// yields byte-identical series and reports across repeated runs and
// worker counts 1/2/8.
func TestWorkloadDeterminism(t *testing.T) {
	cfg := workloadConfig(t)

	csv1, rep1 := runBytes(t, cfg)
	csv2, rep2 := runBytes(t, cfg)
	if !bytes.Equal(csv1, csv2) {
		t.Fatalf("repeated workload run: CSV differs")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("repeated workload run: report differs\nrun1:\n%s\nrun2:\n%s", rep1, rep2)
	}

	for _, workers := range []int{2, 8} {
		wcfg := workloadConfig(t)
		wcfg.Workers = workers
		csvW, repW := runBytes(t, wcfg)
		if !bytes.Equal(csv1, csvW) {
			t.Fatalf("workers=%d: CSV differs from workers=1", workers)
		}
		if !bytes.Equal(rep1, repW) {
			t.Fatalf("workers=%d: report differs from workers=1\nbase:\n%s\nworkers:\n%s",
				workers, rep1, repW)
		}
	}
}

// TestWorkloadReplayMatchesGeneration: driving the cluster from a
// recorded trace reproduces the generating run byte for byte — the
// record/replay contract at the library layer.
func TestWorkloadReplayMatchesGeneration(t *testing.T) {
	cfg := workloadConfig(t)
	csv1, rep1 := runBytes(t, cfg)

	spec, err := workload.Parse([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	events := spec.Generate()
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, spec.TraceHeader(len(events)), events); err != nil {
		t.Fatal(err)
	}
	h, replayed, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rcfg := workloadConfig(t)
	rcfg.Arrivals = replayed
	rcfg.Classes = h.ClassNames()
	rcfg.Budgets = h.Budgets()
	rcfg.WorkloadName = h.Name
	rcfg.Horizon = time.Duration(h.HorizonNS)
	csv2, rep2 := runBytes(t, rcfg)

	if !bytes.Equal(csv1, csv2) {
		t.Fatal("replayed trace: CSV differs from generating run")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("replayed trace: report differs from generating run\ngen:\n%s\nreplay:\n%s", rep1, rep2)
	}
}

// TestWorkloadReport checks the per-class accounting a workload-driven
// campaign adds: every declared class serves traffic, every request
// completes, and the report carries the workload name.
func TestWorkloadReport(t *testing.T) {
	cfg := workloadConfig(t)
	r := Run(cfg)
	if r.Workload != "mixed-test" {
		t.Fatalf("workload name = %q", r.Workload)
	}
	if r.Requests != int64(len(cfg.Arrivals)) {
		t.Fatalf("requests %d, want %d arrivals", r.Requests, len(cfg.Arrivals))
	}
	if r.Incomplete != 0 {
		t.Fatalf("%d requests never completed", r.Incomplete)
	}
	if len(r.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(r.Classes))
	}
	for _, cr := range r.Classes {
		if cr.Requests == 0 {
			t.Fatalf("class %q served no requests", cr.Class)
		}
		if cr.SLO == nil {
			t.Fatalf("class %q missing SLO report", cr.Class)
		}
	}
}

// TestSLOAttainment pins the SLO math at its extremes: a generous budget
// attains 100% of requests and windows; a budget below the service floor
// attains (close to) none.
func TestSLOAttainment(t *testing.T) {
	run := func(budget time.Duration) *Report {
		cfg := workloadConfig(t)
		cfg.Storm = Storm{Kind: "none"}
		for cl := range cfg.Budgets {
			cfg.Budgets[cl] = budget
		}
		return Run(cfg)
	}

	generous := run(10 * time.Second)
	for _, cr := range generous.Classes {
		if cr.SLO == nil || cr.SLO.AttainedPct != 100 || cr.SLO.WindowPct != 100 {
			t.Fatalf("generous budget: class %q SLO = %+v, want 100/100", cr.Class, cr.SLO)
		}
	}

	// The service floor is >= 1ms per class, so a 1ns budget is unmeetable.
	impossible := run(time.Nanosecond)
	for _, cr := range impossible.Classes {
		if cr.SLO == nil || cr.SLO.AttainedPct != 0 || cr.SLO.WindowPct == 100 {
			t.Fatalf("impossible budget: class %q SLO = %+v, want 0 attained", cr.Class, cr.SLO)
		}
	}
}
