package cluster

import (
	"time"

	"resilientos"
	"resilientos/internal/sim"
)

// request is one fleet-level client request. Requests are synthetic at
// the cluster layer — their latency is a function of real node state:
// a request dispatched to a node whose driver is down (or that loses it
// mid-flight to a storm strike) pays a reroute penalty and is re-routed
// by the active policy, exactly the traffic-diversion story the fleet
// simulation exists to measure.
type request struct {
	id       int64
	class    string // resilientos.ClassNet or ClassDisk
	arrival  sim.Time
	reroutes int
}

// armArrivals starts the Poisson arrival chain on the fleet clock. The
// chain self-schedules until the campaign horizon.
func (c *Cluster) armArrivals(until sim.Time) {
	if c.cfg.RPS <= 0 {
		return
	}
	mean := float64(time.Second) / c.cfg.RPS
	var next func()
	next = func() {
		if c.fleet.Now() >= until {
			return
		}
		c.arrive()
		gap := sim.Time(c.rng.ExpFloat64() * mean)
		if gap < 10*time.Microsecond {
			gap = 10 * time.Microsecond
		}
		c.fleet.Schedule(gap, next)
	}
	c.fleet.Schedule(sim.Time(c.rng.ExpFloat64()*mean), next)
}

// arrive creates one request and dispatches it.
func (c *Cluster) arrive() {
	class := resilientos.ClassNet
	if c.rng.Float64() < c.cfg.DiskShare {
		class = resilientos.ClassDisk
	}
	c.nextReq++
	r := &request{id: c.nextReq, class: class, arrival: c.fleet.Now()}
	c.outstanding++
	c.reg.Counter("fleet.arrivals").Add(1)
	c.reg.Counter("fleet.arrivals." + class).Add(1)
	c.dispatch(r)
}

// serviceTime draws a deterministic service time for one attempt: a
// per-class base cost plus exponential jitter from the fleet RNG.
func (c *Cluster) serviceTime(class string) sim.Time {
	if class == resilientos.ClassDisk {
		return 6*time.Millisecond + sim.Time(c.rng.ExpFloat64()*float64(2500*time.Microsecond))
	}
	return 2*time.Millisecond + sim.Time(c.rng.ExpFloat64()*float64(1500*time.Microsecond))
}

// dispatch routes a request to a node chosen by the active policy, using
// only barrier health snapshots and cluster bookkeeping (so routing is
// independent of node-advance order).
func (c *Cluster) dispatch(r *request) {
	n := c.nodes[c.policy.Pick(r.class, c.nodes)]
	n.inflight++
	c.reg.Counter("fleet.dispatch." + n.Name).Add(1)
	if !n.health.OK(r.class) {
		// Routed onto a sick node (health-blind policy, or a fleet-wide
		// outage): the attempt stalls until the client re-routes.
		c.bounce(r, n, "sick")
		return
	}
	st := c.serviceTime(r.class)
	c.fleet.Schedule(st, func() { c.finish(r, n) })
}

// bounce records a failed attempt and re-dispatches after the client's
// retry timeout.
func (c *Cluster) bounce(r *request, n *Node, why string) {
	r.reroutes++
	c.rerouted++
	c.reg.Counter("fleet.reroute." + why).Add(1)
	c.tracker.noteBounce(r.class, c.fleet.Now())
	c.fleet.Schedule(c.cfg.RetryAfter, func() {
		n.inflight--
		c.dispatch(r)
	})
}

// finish completes one attempt. If the node lost the request's service
// class mid-flight (a storm strike landed during service), the attempt's
// work is lost and the request re-routes immediately.
func (c *Cluster) finish(r *request, n *Node) {
	if !n.health.OK(r.class) {
		r.reroutes++
		c.rerouted++
		c.reg.Counter("fleet.reroute.midflight").Add(1)
		c.tracker.noteBounce(r.class, c.fleet.Now())
		n.inflight--
		c.dispatch(r)
		return
	}
	n.inflight--
	c.outstanding--
	c.reg.Counter("fleet.complete").Add(1)
	lat := c.fleet.Now() - r.arrival
	c.latencies[r.class] = append(c.latencies[r.class], lat)
	if r.reroutes > 0 {
		c.reroutedReqs++
	}
}
