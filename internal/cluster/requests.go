package cluster

import (
	"time"

	"resilientos"
	"resilientos/internal/sim"
	"resilientos/internal/workload"
)

// request is one fleet-level client request. Requests are synthetic at
// the cluster layer — their latency is a function of real node state:
// a request dispatched to a node whose driver is down (or that loses it
// mid-flight to a storm strike) pays a reroute penalty and is re-routed
// by the active policy, exactly the traffic-diversion story the fleet
// simulation exists to measure.
type request struct {
	id       int64
	class    string // resilientos.ClassNet, ClassDisk, or ClassChar
	arrival  sim.Time
	size     int64 // request payload bytes (0 for the classic built-in mix)
	reroutes int
}

// armArrivals starts the request source on the fleet clock: an explicit
// workload sequence when the campaign carries one, otherwise the classic
// built-in Poisson net/disk mix. Both self-limit to the campaign horizon.
func (c *Cluster) armArrivals(until sim.Time) {
	if len(c.cfg.Arrivals) > 0 {
		c.armWorkload(until)
		return
	}
	if c.cfg.RPS <= 0 {
		return
	}
	mean := float64(time.Second) / c.cfg.RPS
	var next func()
	next = func() {
		if c.fleet.Now() >= until {
			return
		}
		c.arrive()
		gap := sim.Time(c.rng.ExpFloat64() * mean)
		if gap < 10*time.Microsecond {
			gap = 10 * time.Microsecond
		}
		c.fleet.Schedule(gap, next)
	}
	c.fleet.Schedule(sim.Time(c.rng.ExpFloat64()*mean), next)
}

// armWorkload drives the explicit arrival sequence: event i fires at
// settle+T_i. The chain keeps one pending timer instead of flooding the
// event heap with the whole trace, and batches all events that share a
// timestamp. Trace order is arrival order, so a recorded campaign
// replays exactly — the generator's own random stream never touches the
// cluster RNG, which keeps service-time draws identical between a
// recording run and its replay.
func (c *Cluster) armWorkload(until sim.Time) {
	events := c.cfg.Arrivals
	base := c.fleet.Now() // the settle barrier
	i := 0
	var pump func()
	pump = func() {
		now := c.fleet.Now()
		for i < len(events) && base+events[i].T <= now {
			if now < until {
				c.arriveEvent(events[i])
			}
			i++
		}
		if i < len(events) && base+events[i].T < until {
			c.fleet.Schedule(base+events[i].T-now, pump)
		}
	}
	pump()
}

// arrive creates one request of the classic built-in mix.
func (c *Cluster) arrive() {
	class := resilientos.ClassNet
	if c.rng.Float64() < c.cfg.DiskShare {
		class = resilientos.ClassDisk
	}
	c.nextReq++
	r := &request{id: c.nextReq, class: class, arrival: c.fleet.Now()}
	c.outstanding++
	c.reg.Counter("fleet.arrivals").Add(1)
	c.reg.Counter("fleet.arrivals." + class).Add(1)
	c.dispatch(r)
}

// arriveEvent admits one workload event as a request.
func (c *Cluster) arriveEvent(ev workload.Event) {
	c.nextReq++
	r := &request{id: c.nextReq, class: ev.Class, arrival: c.fleet.Now(), size: ev.Size}
	c.outstanding++
	c.reg.Counter("fleet.arrivals").Add(1)
	c.reg.Counter("fleet.arrivals." + ev.Class).Add(1)
	c.dispatch(r)
}

// Per-class service-cost model for sized (workload-driven) requests: a
// fixed per-request base, a size-proportional transfer term, and
// exponential jitter. Bandwidths are ns-per-byte.
const (
	netBase  = 1 * time.Millisecond
	diskBase = 3 * time.Millisecond
	charBase = 4 * time.Millisecond
)

var nsPerByte = map[string]float64{
	resilientos.ClassNet:  1e9 / (16 << 20), // 16 MiB/s
	resilientos.ClassDisk: 1e9 / (32 << 20), // 32 MiB/s
	resilientos.ClassChar: 1e9 / (1 << 20),  // 1 MiB/s
}

// serviceTime draws a deterministic service time for one attempt. Sized
// requests (workload mode) pay base + size/bandwidth + jitter; the
// classic mix keeps its original per-class formula so legacy campaigns
// stay byte-identical.
func (c *Cluster) serviceTime(class string, size int64) sim.Time {
	if size > 0 {
		var base sim.Time
		var jitter time.Duration
		switch class {
		case resilientos.ClassDisk:
			base, jitter = sim.Time(diskBase), 2500*time.Microsecond
		case resilientos.ClassChar:
			base, jitter = sim.Time(charBase), 2000*time.Microsecond
		default:
			base, jitter = sim.Time(netBase), 1500*time.Microsecond
		}
		return base + sim.Time(float64(size)*nsPerByte[class]) +
			sim.Time(c.rng.ExpFloat64()*float64(jitter))
	}
	if class == resilientos.ClassDisk {
		return 6*time.Millisecond + sim.Time(c.rng.ExpFloat64()*float64(2500*time.Microsecond))
	}
	return 2*time.Millisecond + sim.Time(c.rng.ExpFloat64()*float64(1500*time.Microsecond))
}

// dispatch routes a request to a node chosen by the active policy, using
// only barrier health snapshots and cluster bookkeeping (so routing is
// independent of node-advance order).
func (c *Cluster) dispatch(r *request) {
	n := c.nodes[c.policy.Pick(r.class, c.nodes)]
	n.inflight++
	c.reg.Counter("fleet.dispatch." + n.Name).Add(1)
	if !n.health.OK(r.class) {
		// Routed onto a sick node (health-blind policy, or a fleet-wide
		// outage): the attempt stalls until the client re-routes.
		c.bounce(r, n, "sick")
		return
	}
	st := c.serviceTime(r.class, r.size)
	c.fleet.Schedule(st, func() { c.finish(r, n) })
}

// bounce records a failed attempt and re-dispatches after the client's
// retry timeout.
func (c *Cluster) bounce(r *request, n *Node, why string) {
	r.reroutes++
	c.rerouted++
	c.reg.Counter("fleet.reroute." + why).Add(1)
	c.tracker.noteBounce(r.class, c.fleet.Now())
	c.fleet.Schedule(c.cfg.RetryAfter, func() {
		n.inflight--
		c.dispatch(r)
	})
}

// finish completes one attempt. If the node lost the request's service
// class mid-flight (a storm strike landed during service), the attempt's
// work is lost and the request re-routes immediately.
func (c *Cluster) finish(r *request, n *Node) {
	if !n.health.OK(r.class) {
		r.reroutes++
		c.rerouted++
		c.reg.Counter("fleet.reroute.midflight").Add(1)
		c.tracker.noteBounce(r.class, c.fleet.Now())
		n.inflight--
		c.dispatch(r)
		return
	}
	n.inflight--
	c.outstanding--
	c.reg.Counter("fleet.complete").Add(1)
	lat := c.fleet.Now() - r.arrival
	c.latencies[r.class] = append(c.latencies[r.class], lat)
	c.tracker.noteComplete(r.class, c.fleet.Now(), lat)
	if r.reroutes > 0 {
		c.reroutedReqs++
	}
}
