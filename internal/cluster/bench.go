package cluster

import (
	"resilientos/internal/bench"
)

// BenchDoc converts the report to the BENCH_fleet.json baseline document
// consumed by the bench-regression gate. wallSeconds is the only
// non-deterministic field; pass 0 for byte-reproducible output.
func (r *Report) BenchDoc(wallSeconds float64) *bench.Fleet {
	fl := &bench.Fleet{
		Schema:   bench.SchemaFleet,
		Nodes:    r.Nodes,
		Seed:     r.Seed,
		Policy:   r.Policy,
		Storm:    r.Storm,
		Workload: r.Workload,
		HorizonS: r.Horizon.Seconds(),
		WindowMs: float64(r.Window.Milliseconds()),
		Windows:  r.Windows,

		AvailabilityPct:     r.AvailabilityPct,
		NodeAvailabilityPct: r.NodeAvailabilityPct,

		Requests:  r.Requests,
		Completed: r.Completed,
		Reroutes:  r.Reroutes,
		Latency:   bench.Latency(r.Latency),

		Kills:        r.Kills,
		Injections:   r.Injections,
		Crashes:      r.Crashes,
		Recovered:    r.Recovered,
		GaveUp:       r.GaveUp,
		RecoveredPct: r.RecoveredPct,

		MaxRecoveryOverlap:  r.MaxRecoveryOverlap,
		MeanRecoveryOverlap: r.MeanRecoveryOverlap,

		WallClockS: wallSeconds,
	}
	for _, cr := range r.Classes {
		fc := bench.FleetClass{
			Class:               cr.Class,
			AvailabilityPct:     cr.AvailabilityPct,
			NodeAvailabilityPct: cr.NodeAvailabilityPct,
			Requests:            cr.Requests,
			Latency:             bench.Latency(cr.Latency),
		}
		if cr.SLO != nil {
			fc.SLO = &bench.FleetSLO{
				BudgetMs:    float64(cr.SLO.Budget) / 1e6,
				AttainedPct: cr.SLO.AttainedPct,
				WindowPct:   cr.SLO.WindowPct,
			}
		}
		fl.Classes = append(fl.Classes, fc)
	}
	return fl
}
