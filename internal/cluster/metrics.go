package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"resilientos/internal/obs"
	"resilientos/internal/obs/timeseries"
	"resilientos/internal/sim"
)

// tracker accumulates per-window fleet availability. The campaign
// horizon is cut into fixed windows; at every lockstep barrier the
// tracker records the minimum healthy-node count per service class, and
// the request path reports every bounced attempt into the window it
// landed in. A window is available for a class when at least one node
// served the class at every barrier AND no request of that class
// bounced — so health-blind routing hurts availability even while
// healthy nodes exist, which is precisely the failure-aware policy's
// selling point.
type tracker struct {
	start   sim.Time
	width   sim.Time
	windows int

	classes    []string
	minHealthy map[string][]int
	bounces    map[string][]int
	healthySum map[string]int64 // summed healthy counts over barriers

	// SLO accounting, per class with a declared latency budget: sloOver
	// counts over-budget completions per window, sloWithin/sloTotal count
	// requests within/of-all completions (including completions landing
	// in the drain, outside every window).
	budgets   map[string]sim.Time
	sloOver   map[string][]int
	sloWithin map[string]int64
	sloTotal  map[string]int64

	barriers   int
	overlapSum int64 // nodes mid-recovery, summed over barriers
	overlapMax int   // peak concurrently-recovering nodes
}

func newTracker(start, width sim.Time, windows int, classes []string, budgets map[string]time.Duration) *tracker {
	t := &tracker{
		start: start, width: width, windows: windows, classes: classes,
		minHealthy: make(map[string][]int, len(classes)),
		bounces:    make(map[string][]int, len(classes)),
		healthySum: make(map[string]int64, len(classes)),
		budgets:    make(map[string]sim.Time, len(budgets)),
		sloOver:    make(map[string][]int, len(budgets)),
		sloWithin:  make(map[string]int64, len(budgets)),
		sloTotal:   make(map[string]int64, len(budgets)),
	}
	for _, cl := range classes {
		mh := make([]int, windows)
		for i := range mh {
			mh[i] = 1 << 30
		}
		t.minHealthy[cl] = mh
		t.bounces[cl] = make([]int, windows)
		if b := budgets[cl]; b > 0 {
			t.budgets[cl] = sim.Time(b)
			t.sloOver[cl] = make([]int, windows)
		}
	}
	return t
}

func (t *tracker) window(at sim.Time) int {
	if at < t.start || t.width <= 0 {
		return -1
	}
	i := int((at - t.start) / t.width)
	if i >= t.windows {
		return -1
	}
	return i
}

// sampleBarrier records one barrier's healthy-node counts per class and
// the number of nodes with a recovery in flight.
func (t *tracker) sampleBarrier(at sim.Time, healthy map[string]int, recoveringNodes int) {
	t.barriers++
	t.overlapSum += int64(recoveringNodes)
	if recoveringNodes > t.overlapMax {
		t.overlapMax = recoveringNodes
	}
	i := t.window(at)
	for _, cl := range t.classes {
		t.healthySum[cl] += int64(healthy[cl])
		if i >= 0 && healthy[cl] < t.minHealthy[cl][i] {
			t.minHealthy[cl][i] = healthy[cl]
		}
	}
}

// noteBounce attributes one failed request attempt to its window.
func (t *tracker) noteBounce(class string, at sim.Time) {
	if i := t.window(at); i >= 0 {
		t.bounces[class][i]++
	}
}

// noteComplete scores one completed request against its class's latency
// budget (no-op for classes without one).
func (t *tracker) noteComplete(class string, at, lat sim.Time) {
	b, ok := t.budgets[class]
	if !ok {
		return
	}
	t.sloTotal[class]++
	if lat <= b {
		t.sloWithin[class]++
	} else if i := t.window(at); i >= 0 {
		t.sloOver[class][i]++
	}
}

// slo summarizes one class's budget attainment, or nil when the class
// has no budget. AttainedPct is request-level (completions within
// budget); WindowPct is the fraction of horizon windows without an
// over-budget completion — the per-window SLO the spec declares.
func (t *tracker) slo(class string) *SLOReport {
	b, ok := t.budgets[class]
	if !ok {
		return nil
	}
	r := &SLOReport{Budget: time.Duration(b), AttainedPct: 100, WindowPct: 100}
	if n := t.sloTotal[class]; n > 0 {
		r.AttainedPct = 100 * float64(t.sloWithin[class]) / float64(n)
	}
	if t.windows > 0 {
		met := 0
		for _, over := range t.sloOver[class] {
			if over == 0 {
				met++
			}
		}
		r.WindowPct = 100 * float64(met) / float64(t.windows)
	}
	return r
}

// availability returns, for one class, the fraction of windows that were
// served (node up at every barrier, zero bounced attempts) and the
// fraction with at least one healthy node (the policy-independent floor).
func (t *tracker) availability(class string) (servedPct, nodePct float64) {
	if t.windows == 0 {
		return 100, 100
	}
	served, node := 0, 0
	for i := 0; i < t.windows; i++ {
		up := t.minHealthy[class][i] >= 1
		if up {
			node++
			if t.bounces[class][i] == 0 {
				served++
			}
		}
	}
	return 100 * float64(served) / float64(t.windows), 100 * float64(node) / float64(t.windows)
}

// ClassReport is one service class's slice of the fleet report.
type ClassReport struct {
	Class string `json:"class"`
	// AvailabilityPct: fraction of windows in which the class was served —
	// ≥1 healthy node at every barrier and no bounced attempt.
	AvailabilityPct float64 `json:"availability_pct"`
	// NodeAvailabilityPct: fraction of windows with ≥1 healthy node at
	// every barrier (policy-independent).
	NodeAvailabilityPct float64 `json:"node_availability_pct"`
	// MeanHealthyNodes: healthy-node count averaged over barriers.
	MeanHealthyNodes float64            `json:"mean_healthy_nodes"`
	Requests         int64              `json:"requests"`
	Latency          obs.LatencySummary `json:"latency"`
	// SLO is the class's latency-budget attainment; nil when the campaign
	// declared no budget for the class.
	SLO *SLOReport `json:"slo,omitempty"`
}

// SLOReport is one class's attainment against its declared latency
// budget.
type SLOReport struct {
	// Budget is the spec-declared per-request latency budget.
	Budget time.Duration `json:"budget_ns"`
	// AttainedPct is the fraction of completed requests within budget.
	AttainedPct float64 `json:"attained_pct"`
	// WindowPct is the fraction of horizon windows in which no completed
	// request exceeded the budget.
	WindowPct float64 `json:"window_pct"`
}

// NodeReport is one node's slice of the fleet report.
type NodeReport struct {
	Name       string `json:"name"`
	Seed       int64  `json:"seed"`
	Kills      int    `json:"kills"`
	Injections int    `json:"injections"`
	Crashes    int    `json:"crashes"`
	Recovered  int    `json:"recovered"`
	GaveUp     int    `json:"gave_up"`
	// MeanRecoveryMs averages detection-to-republish over this node's
	// recovery episodes.
	MeanRecoveryMs float64 `json:"mean_recovery_ms"`
}

// Report is the outcome of one fleet campaign. All fields derive from
// virtual time and the fleet seed, so two runs with the same Config are
// byte-identical after JSON encoding.
type Report struct {
	Nodes  int    `json:"nodes"`
	Seed   int64  `json:"seed"`
	Policy string `json:"policy"`
	Storm  string `json:"storm"`
	// Workload names the driving workload spec or trace ("" for the
	// classic built-in mix).
	Workload string        `json:"workload,omitempty"`
	Horizon  time.Duration `json:"horizon_ns"`
	Window   time.Duration `json:"window_ns"`
	Windows  int           `json:"windows"`

	// AvailabilityPct is the headline number: fraction of windows in which
	// EVERY service class was served (see ClassReport.AvailabilityPct).
	AvailabilityPct float64 `json:"availability_pct"`
	// NodeAvailabilityPct is the policy-independent floor: fraction of
	// windows with ≥1 healthy node for every class.
	NodeAvailabilityPct float64 `json:"node_availability_pct"`

	Requests     int64 `json:"requests"`
	Completed    int64 `json:"completed"`
	Incomplete   int64 `json:"incomplete"` // still waiting at drain end
	Reroutes     int64 `json:"reroutes"`   // attempt-level bounce count
	ReroutedReqs int64 `json:"rerouted_requests"`

	Latency obs.LatencySummary `json:"latency"` // all classes pooled
	Classes []ClassReport      `json:"classes"`

	Kills        int     `json:"kills"`
	Injections   int     `json:"injections"`
	Crashes      int     `json:"crashes"`
	Recovered    int     `json:"recovered"`
	GaveUp       int     `json:"gave_up"`
	RecoveredPct float64 `json:"recovered_pct"`

	// MaxRecoveryOverlap is the peak number of nodes simultaneously
	// mid-recovery at a barrier; MeanRecoveryOverlap averages over
	// barriers.
	MaxRecoveryOverlap  int     `json:"max_recovery_overlap"`
	MeanRecoveryOverlap float64 `json:"mean_recovery_overlap"`

	PerNode []NodeReport `json:"per_node"`
}

// buildReport assembles the Report after the drain phase.
func (c *Cluster) buildReport() *Report {
	r := &Report{
		Nodes:    len(c.nodes),
		Seed:     c.cfg.Seed,
		Policy:   c.policy.Name(),
		Storm:    c.cfg.Storm.String(),
		Workload: c.cfg.WorkloadName,
		Horizon:  time.Duration(c.horizon),
		Window:   time.Duration(c.cfg.Window),
		Windows:  c.tracker.windows,
	}

	allServed := 100.0
	var pool []sim.Time
	for _, cl := range c.tracker.classes {
		served, node := c.tracker.availability(cl)
		if served < allServed {
			allServed = served
		}
		mean := 0.0
		if c.tracker.barriers > 0 {
			mean = float64(c.tracker.healthySum[cl]) / float64(c.tracker.barriers)
		}
		r.Classes = append(r.Classes, ClassReport{
			Class:               cl,
			AvailabilityPct:     served,
			NodeAvailabilityPct: node,
			MeanHealthyNodes:    mean,
			Requests:            int64(len(c.latencies[cl])),
			Latency:             obs.Summarize(c.latencies[cl]),
			SLO:                 c.tracker.slo(cl),
		})
		pool = append(pool, c.latencies[cl]...)
	}
	r.AvailabilityPct = allServed
	nodeAll := 100.0
	for _, cr := range r.Classes {
		if cr.NodeAvailabilityPct < nodeAll {
			nodeAll = cr.NodeAvailabilityPct
		}
	}
	r.NodeAvailabilityPct = nodeAll
	r.Latency = obs.Summarize(pool)

	r.Requests = c.nextReq
	r.Completed = int64(len(pool))
	r.Incomplete = c.outstanding
	r.Reroutes = c.rerouted
	r.ReroutedReqs = c.reroutedReqs

	for _, n := range c.nodes {
		nr := NodeReport{Name: n.Name, Seed: n.Seed, Kills: n.kills, Injections: n.injections}
		var recSum sim.Time
		for _, ev := range n.Sys.RS.Events() {
			nr.Crashes++
			if ev.Recovered {
				nr.Recovered++
				recSum += ev.Duration
			}
			if ev.GaveUp {
				nr.GaveUp++
			}
		}
		if nr.Recovered > 0 {
			nr.MeanRecoveryMs = float64(recSum.Milliseconds()) / float64(nr.Recovered)
		}
		r.Kills += nr.Kills
		r.Injections += nr.Injections
		r.Crashes += nr.Crashes
		r.Recovered += nr.Recovered
		r.GaveUp += nr.GaveUp
		r.PerNode = append(r.PerNode, nr)
	}
	if r.Crashes > 0 {
		r.RecoveredPct = 100 * float64(r.Recovered) / float64(r.Crashes)
	} else {
		r.RecoveredPct = 100
	}
	if c.tracker.barriers > 0 {
		r.MeanRecoveryOverlap = float64(c.tracker.overlapSum) / float64(c.tracker.barriers)
	}
	r.MaxRecoveryOverlap = c.tracker.overlapMax
	return r
}

// WriteJSON writes the report as canonical indented JSON. Everything in
// it is virtual-time-derived, so the bytes are reproducible from the
// fleet seed.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the human-readable summary.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d nodes, seed %d, policy %s, storm %s\n",
		r.Nodes, r.Seed, r.Policy, r.Storm)
	if r.Workload != "" {
		fmt.Fprintf(w, "workload: %s\n", r.Workload)
	}
	fmt.Fprintf(w, "horizon %s in %d windows of %s\n", r.Horizon, r.Windows, r.Window)
	fmt.Fprintf(w, "availability: %.2f%% served (node floor %.2f%%)\n",
		r.AvailabilityPct, r.NodeAvailabilityPct)
	for _, cr := range r.Classes {
		fmt.Fprintf(w, "  class %-5s %7.2f%% served, %6.2f%% node, mean healthy %.2f, %d reqs, p50 %s p95 %s p99 %s\n",
			cr.Class, cr.AvailabilityPct, cr.NodeAvailabilityPct, cr.MeanHealthyNodes,
			cr.Requests, time.Duration(cr.Latency.P50), time.Duration(cr.Latency.P95),
			time.Duration(cr.Latency.P99))
		if cr.SLO != nil {
			fmt.Fprintf(w, "        slo %s budget: %.2f%% of requests, %.2f%% of windows\n",
				cr.SLO.Budget, cr.SLO.AttainedPct, cr.SLO.WindowPct)
		}
	}
	fmt.Fprintf(w, "requests: %d arrived, %d completed, %d incomplete, %d reroutes (%d requests rerouted)\n",
		r.Requests, r.Completed, r.Incomplete, r.Reroutes, r.ReroutedReqs)
	fmt.Fprintf(w, "latency: p50 %s  p95 %s  p99 %s  max %s\n",
		time.Duration(r.Latency.P50), time.Duration(r.Latency.P95),
		time.Duration(r.Latency.P99), time.Duration(r.Latency.Max))
	fmt.Fprintf(w, "faults: %d kills, %d injections -> %d crashes, %d recovered (%.1f%%), %d gave up\n",
		r.Kills, r.Injections, r.Crashes, r.Recovered, r.RecoveredPct, r.GaveUp)
	fmt.Fprintf(w, "recovery overlap: max %d nodes, mean %.3f\n",
		r.MaxRecoveryOverlap, r.MeanRecoveryOverlap)
	for _, nr := range r.PerNode {
		fmt.Fprintf(w, "  %s seed=%d kills=%d inj=%d crashes=%d recovered=%d gaveup=%d meanrec=%.1fms\n",
			nr.Name, nr.Seed, nr.Kills, nr.Injections, nr.Crashes, nr.Recovered, nr.GaveUp, nr.MeanRecoveryMs)
	}
}

// statusFunc builds the fleet-level Status column for the timeseries
// sampler: one entry per node, summarizing the barrier snapshot.
func (c *Cluster) statusFunc() func() []timeseries.ServiceStatus {
	return func() []timeseries.ServiceStatus {
		out := make([]timeseries.ServiceStatus, 0, len(c.nodes))
		for _, n := range c.nodes {
			h := n.health
			state := "live"
			switch {
			case h.GaveUp > 0:
				state = "gave-up"
			case h.Recovering > 0:
				state = "recovering"
			default:
				for _, cl := range c.classes {
					if !h.OK(cl) {
						state = "dead"
						break
					}
				}
			}
			out = append(out, timeseries.ServiceStatus{
				Label:    n.Name,
				State:    state,
				Failures: h.Failures,
			})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
		return out
	}
}
