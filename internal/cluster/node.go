package cluster

import (
	"fmt"
	"math/rand"
	"strings"

	"resilientos"
	"resilientos/internal/fi"
	"resilientos/internal/perf"
	"resilientos/internal/sim"
)

// Node is one member OS of the fleet: a full resilientos.System (its own
// microkernel, reincarnation server, drivers, and seeded scheduler)
// wrapped with the fleet-level bookkeeping the load balancer and the
// fault-storm driver need. All cross-node interaction happens here, at
// the cluster layer — member systems never talk to each other directly.
type Node struct {
	Index int
	Name  string // stable label, e.g. "node03"
	Seed  int64  // per-node seed, derived from the fleet seed
	Sys   *resilientos.System

	// health is the snapshot taken at the last lockstep barrier. Routing
	// decisions between barriers read this, never live RS state, so
	// results cannot depend on the order nodes were advanced in.
	health resilientos.Health

	// inflight is the number of requests currently dispatched to this
	// node (the least-loaded policy's signal).
	inflight int

	// injector mutates this node's running driver images for fault-mode
	// storms. Its RNG is derived from the node seed but separate from the
	// node's simulation RNG, so storms do not perturb the node's own
	// deterministic execution stream.
	injector   *fi.Injector
	kills      int
	injections int

	// seenEvents is how many RS recovery events were folded into the
	// warmup state so far; warmupUntil tracks, per service class, when the
	// class is trusted again after a recovery. Driver restart itself is
	// near-instant in virtual time, but the service built on it is not —
	// the paper's measurements show network stalls of seconds (TCP
	// retransmission backoff) after a NIC driver restart. The cluster's
	// health channel models that as a fixed warmup window following each
	// recovery's republish, the same hysteresis a real load balancer's
	// health probes impose.
	seenEvents  int
	warmupUntil map[string]sim.Time
}

// classOf maps a guarded service label to the fleet service class it
// carries, or "" for services outside the routable classes.
func classOf(label string) string {
	switch {
	case strings.HasPrefix(label, "eth.") || label == resilientos.ServerInet:
		return resilientos.ClassNet
	case strings.HasPrefix(label, "disk.") ||
		label == resilientos.ServerVFS || label == resilientos.ServerMFS:
		return resilientos.ClassDisk
	case strings.HasPrefix(label, "chr."):
		return resilientos.ClassChar
	}
	return ""
}

// deriveSeed expands the fleet seed into statistically independent
// per-node seeds (splitmix64 over fleet seed and node index). Seed 0 is
// remapped: resilientos.Config treats 0 as "default".
func deriveSeed(fleetSeed int64, index int) int64 {
	x := uint64(fleetSeed)*0x9E3779B97F4A7C15 + uint64(index+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	s := int64(x >> 1) // keep it positive for readable reports
	if s == 0 {
		s = 1
	}
	return s
}

// newNode boots one member system. Nodes always run the network and disk
// stacks; the character devices boot only when the campaign's class set
// routes char jobs (withChar), keeping classic fleet runs lean.
func newNode(index int, fleetSeed int64, maxRestarts int, withChar bool, p *perf.Profiler) *Node {
	seed := deriveSeed(fleetSeed, index)
	n := &Node{
		Index: index,
		Name:  fmt.Sprintf("node%02d", index),
		Seed:  seed,
		Sys: resilientos.New(resilientos.Config{
			Seed:        seed,
			DisableChar: !withChar,
			MaxRestarts: maxRestarts,
			Perf:        p,
		}),
		injector:    fi.New(rand.New(rand.NewSource(seed ^ 0x5DEECE66D))),
		warmupUntil: make(map[string]sim.Time, 3),
	}
	return n
}

// sampleHealth refreshes the node's barrier health snapshot at barrier
// time now, extending per-class warmup windows for any recovery episodes
// since the previous barrier, and reports whether the node is degraded
// (mid-recovery or warming up).
func (n *Node) sampleHealth(now, warmup sim.Time) bool {
	evs := n.Sys.RS.Events()
	for _, ev := range evs[n.seenEvents:] {
		cl := classOf(ev.Label)
		if cl == "" || !ev.Recovered {
			continue
		}
		if end := ev.Time + ev.Duration + warmup; end > n.warmupUntil[cl] {
			n.warmupUntil[cl] = end
		}
	}
	n.seenEvents = len(evs)
	h := n.Sys.Health()
	warming := false
	if now < n.warmupUntil[resilientos.ClassNet] {
		h.NetOK = false
		warming = true
	}
	if now < n.warmupUntil[resilientos.ClassDisk] {
		h.DiskOK = false
		warming = true
	}
	if now < n.warmupUntil[resilientos.ClassChar] {
		h.CharOK = false
		warming = true
	}
	n.health = h
	return warming || h.Recovering > 0
}

// Health returns the node's last barrier snapshot.
func (n *Node) Health() resilientos.Health { return n.health }

// kill delivers a SIGKILL crash to the named driver — the §7.1 fault
// model, applied fleet-wide by the storm driver.
func (n *Node) kill(driver string) {
	n.Sys.KillDriver(driver)
	n.kills++
}

// inject mutates the named driver's running code image with one random
// fault (§7.2 fault model). It reports false when the driver has no live
// VM to mutate (down or mid-restart).
func (n *Node) inject(driver string) bool {
	vm := n.Sys.DriverVM(driver)
	if vm == nil || n.Sys.RS.ServiceEndpoint(driver) < 0 {
		return false
	}
	n.injector.InjectRandom(vm.Img)
	n.injections++
	return true
}
