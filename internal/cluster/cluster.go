// Package cluster simulates a fleet of resilient operating systems
// behind a load balancer, extending the single-node reproduction of
// Herder et al.'s failure-resilient OS to the question the paper's
// availability argument implies: how much does driver-level recovery
// buy a *service* when faults hit many machines at once?
//
// Every node is a full resilientos.System — its own microkernel,
// reincarnation server, drivers, and seeded scheduler — advanced in
// lockstep virtual time by sim.Lockstep. A fleet-level event loop owns
// a separate clock on which request arrivals, routing, storm strikes,
// and metric windows are scheduled. Cluster-level logic only ever reads
// node state at lockstep barriers, so a campaign is byte-reproducible
// from its fleet seed regardless of how many workers advance the nodes.
package cluster

import (
	"math/rand"
	"time"

	"resilientos"
	"resilientos/internal/obs"
	"resilientos/internal/obs/timeseries"
	"resilientos/internal/perf"
	"resilientos/internal/sim"
	"resilientos/internal/workload"
)

// Config parameterizes one fleet campaign. The zero value is usable:
// Fill supplies defaults for everything but the storm (default none).
type Config struct {
	Nodes int   // fleet size (default 4)
	Seed  int64 // fleet seed; node seeds and all draws derive from it (default 1)

	Policy Policy // routing policy (default FailureAware)
	Storm  Storm  // fault schedule (default none)

	Horizon time.Duration // request/storm phase length (default 12s)
	Window  time.Duration // availability window width (default 250ms)
	Slice   time.Duration // lockstep barrier spacing (default 5ms)
	Settle  time.Duration // boot settling before the campaign (default 3s)
	Drain   time.Duration // max extra time for recoveries/in-flight (default 8s)

	RPS        float64       // fleet-wide request arrival rate (default 200)
	DiskShare  float64       // fraction of requests that are disk-class (default 0.25)
	RetryAfter time.Duration // client re-route timeout after a failed attempt (default 40ms)
	// Warmup is how long a node's service class stays distrusted after a
	// recovery republish — the cluster-level model of post-restart service
	// disruption (TCP retransmission stalls after a NIC driver restart in
	// the paper's measurements). Default 500ms.
	Warmup time.Duration

	MaxRestarts int // per-node RS restart budget (0 = unbounded)
	Workers     int // node-advance parallelism; never changes results (default 1)

	// Perf, if set, attaches wall-clock telemetry (internal/perf) to the
	// fleet clock, the lockstep barrier, and every member node. The
	// profiler is single-threaded, so Fill forces Workers to 1 — which
	// never changes results, only wall-clock speed.
	Perf *perf.Profiler

	// Arrivals, when non-empty, replaces the built-in Poisson request mix
	// with an explicit arrival sequence — generated from a workload spec
	// or replayed from a recorded tracev2 trace. Event times are offsets
	// from the end of the settle phase; RPS and DiskShare are ignored.
	Arrivals []workload.Event
	// Classes lists the routable service classes (default net+disk, the
	// classic mix). Workload-driven campaigns derive this from the spec;
	// including the char class boots the character-device subsystem on
	// every node.
	Classes []string
	// Budgets maps a class to its SLO latency budget; classes with a
	// budget get request- and window-level attainment in the report.
	Budgets map[string]time.Duration
	// WorkloadName labels the report with the driving spec or trace.
	WorkloadName string
}

// Fill applies defaults and normalizes the geometry: the window is
// rounded down to a slice multiple and the horizon up to a window
// multiple, so windows tile the campaign exactly.
func (cfg Config) Fill() Config {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = FailureAware{}
	}
	if cfg.Storm.Kind == "" {
		cfg.Storm.Kind = "none"
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 12 * time.Second
	}
	if cfg.Slice <= 0 {
		cfg.Slice = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 250 * time.Millisecond
	}
	if cfg.Window < cfg.Slice {
		cfg.Window = cfg.Slice
	}
	cfg.Window -= cfg.Window % cfg.Slice
	if rem := cfg.Horizon % cfg.Window; rem != 0 {
		cfg.Horizon += cfg.Window - rem
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 3 * time.Second
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 8 * time.Second
	}
	if cfg.RPS == 0 {
		cfg.RPS = 200
	}
	if cfg.DiskShare < 0 || cfg.DiskShare > 1 {
		cfg.DiskShare = 0.25
	} else if cfg.DiskShare == 0 {
		cfg.DiskShare = 0.25
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 40 * time.Millisecond
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 500 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Perf != nil {
		cfg.Workers = 1
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = []string{resilientos.ClassNet, resilientos.ClassDisk}
	}
	return cfg
}

// Cluster is one fleet campaign in flight.
type Cluster struct {
	cfg    Config
	policy Policy

	fleet *sim.Env // fleet clock: arrivals, routing, storms, windows
	lock  *sim.Lockstep
	nodes []*Node

	reg     *obs.Registry
	rec     *obs.Recorder
	sampler *timeseries.Sampler
	tracker *tracker

	rng     *rand.Rand // request-path draws (arrival gaps, classes, service times)
	horizon sim.Time
	classes []string

	nextReq      int64
	outstanding  int64
	rerouted     int64
	reroutedReqs int64
	latencies    map[string][]sim.Time
}

// New boots a fleet. Call Run to execute the campaign.
func New(cfg Config) *Cluster {
	cfg = cfg.Fill()
	c := &Cluster{
		cfg:       cfg,
		policy:    cfg.Policy,
		fleet:     sim.NewEnv(cfg.Seed),
		reg:       obs.NewRegistry(),
		horizon:   sim.Time(cfg.Horizon),
		classes:   cfg.Classes,
		latencies: make(map[string][]sim.Time, len(cfg.Classes)),
	}
	withChar := false
	for _, cl := range cfg.Classes {
		c.latencies[cl] = nil
		if cl == resilientos.ClassChar {
			withChar = true
		}
	}
	c.rng = rand.New(rand.NewSource(cfg.Seed ^ 0x466C656574)) // "Fleet"
	c.sampler = timeseries.New(timeseries.Config{
		Window:   sim.Time(cfg.Window),
		Registry: c.reg,
		Status:   c.statusFunc(),
	})
	c.rec = obs.NewRecorder(c.sampler)
	c.rec.SetClock(c.fleet.Now)
	if cfg.Perf != nil {
		cfg.Perf.Attach(c.fleet)
		c.rec.SetPerf(cfg.Perf)
		c.sampler.SetPerf(cfg.Perf)
	}
	envs := make([]*sim.Env, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := newNode(i, cfg.Seed, cfg.MaxRestarts, withChar, cfg.Perf)
		c.nodes = append(c.nodes, n)
		envs = append(envs, n.Sys.Env)
	}
	c.lock = sim.NewLockstep(cfg.Workers, envs...)
	cfg.Perf.AttachLockstep(c.lock)
	return c
}

// barrier advances fleet and node clocks to the shared instant t and
// refreshes every node's health snapshot. Order is fixed: fleet events
// first (they may kill/inject into nodes), then node catch-up, then
// snapshots — so routing between t and the next barrier sees exactly the
// state the fleet observed at t.
func (c *Cluster) barrier(t sim.Time) {
	c.fleet.RunUntil(t)
	c.lock.AdvanceTo(t)
	recovering := 0
	healthy := make(map[string]int, len(c.classes))
	for _, n := range c.nodes {
		if n.sampleHealth(t, sim.Time(c.cfg.Warmup)) {
			recovering++
		}
		for _, cl := range c.classes {
			if n.health.OK(cl) {
				healthy[cl]++
			}
		}
	}
	if c.tracker != nil {
		c.tracker.sampleBarrier(t, healthy, recovering)
	}
}

// Run executes the campaign: settle, storm+load phase in lockstep
// slices, then a drain that waits for in-flight requests and recoveries
// to finish. Returns the fleet report.
func (c *Cluster) Run() *Report {
	slice := sim.Time(c.cfg.Slice)
	settle := sim.Time(c.cfg.Settle)

	// Boot settling: let every node reach steady state before windows
	// start, so availability measures the storm, not the boot.
	c.barrier(settle)

	c.tracker = newTracker(settle, sim.Time(c.cfg.Window), int(c.horizon/sim.Time(c.cfg.Window)),
		c.classes, c.cfg.Budgets)
	c.sampler.Attach(c.fleet)

	end := settle + c.horizon
	c.armArrivals(end)
	c.startStorm(c.cfg.Storm, end)

	for t := settle + slice; t <= end; t += slice {
		c.barrier(t)
	}

	// Drain: no new arrivals or strikes; keep the fleet stepping until
	// every request completed and every recovery republished (or the
	// drain budget runs out — survivors are reported as Incomplete).
	drainEnd := end + sim.Time(c.cfg.Drain)
	for t := end + slice; t <= drainEnd; t += slice {
		if c.outstanding == 0 && !c.anyRecovering() {
			break
		}
		c.barrier(t)
	}
	c.sampler.Finish()
	return c.buildReport()
}

func (c *Cluster) anyRecovering() bool {
	for _, n := range c.nodes {
		if n.health.Recovering > 0 {
			return true
		}
	}
	return false
}

// Nodes exposes the fleet members (read-only use).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Now returns the fleet clock (the virtual time the campaign reached).
func (c *Cluster) Now() sim.Time { return c.fleet.Now() }

// Segments returns the fleet window series recorded by the sampler.
func (c *Cluster) Segments() []timeseries.Segment { return c.sampler.Segments() }

// Run is the one-call entry point: boot a fleet from cfg and execute it.
func Run(cfg Config) *Report { return New(cfg).Run() }
