package cluster

import "fmt"

// Policy selects the node a request is dispatched to. Implementations
// must be deterministic: the choice may depend only on the request class,
// the nodes' barrier health snapshots, and cluster-level bookkeeping
// (in-flight counts, an internal cursor) — never on live node state.
type Policy interface {
	Name() string
	// Pick returns the index of the target node. nodes is never empty.
	Pick(class string, nodes []*Node) int
}

// RoundRobin cycles through the nodes regardless of health — the naive
// baseline a failure-aware fleet is measured against.
type RoundRobin struct{ next int }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(class string, nodes []*Node) int {
	i := p.next % len(nodes)
	p.next = (p.next + 1) % len(nodes)
	return i
}

// LeastLoaded picks the node with the fewest in-flight requests (lowest
// index breaks ties). Health-blind: a node whose driver just crashed
// quickly drains its in-flight count and becomes the "least loaded"
// target, so this policy can pile new requests onto a sick node.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(class string, nodes []*Node) int {
	best := 0
	for i, n := range nodes {
		if n.inflight < nodes[best].inflight {
			best = i
		}
	}
	return best
}

// FailureAware routes around sick nodes: it considers only nodes whose
// barrier health snapshot reports the request's class as serving — the
// DIR-Net-style detection-to-isolation step — and picks the least loaded
// of them. When every node is sick (a fleet-wide correlated storm) it
// degrades to least-loaded over all nodes: the request will ride out the
// recovery wherever it lands.
type FailureAware struct{}

// Name implements Policy.
func (FailureAware) Name() string { return "failure-aware" }

// Pick implements Policy.
func (FailureAware) Pick(class string, nodes []*Node) int {
	best := -1
	for i, n := range nodes {
		if !n.health.OK(class) {
			continue
		}
		if best < 0 || n.inflight < nodes[best].inflight {
			best = i
		}
	}
	if best < 0 {
		return LeastLoaded{}.Pick(class, nodes)
	}
	return best
}

// Policies lists the built-in routing policies, in canonical order.
func Policies() []Policy {
	return []Policy{&RoundRobin{}, LeastLoaded{}, FailureAware{}}
}

// ParsePolicy resolves a policy by name.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (known: round-robin, least-loaded, failure-aware)", name)
}
