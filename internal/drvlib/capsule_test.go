package drvlib

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCapsuleRoundTrip(t *testing.T) {
	cases := []struct {
		version uint32
		kind    string
		payload []byte
	}{
		{1, "rtl8139.conf", []byte{0x01, 0x52, 0x54, 0x00, 0x12, 0x34, 0x56, 0x3F, 0x01}},
		{7, "ramdisk.geom", []byte{0, 0, 1, 0, 0, 0, 0, 0}},
		{0xFFFFFFFF, "sata.queue", nil},
		{42, "", []byte("x")},
	}
	for _, tc := range cases {
		blob := EncodeCapsule(tc.version, tc.kind, tc.payload)
		version, kind, payload, err := DecodeCapsule(blob)
		if err != nil {
			t.Fatalf("decode(%q v%d): %v", tc.kind, tc.version, err)
		}
		if version != tc.version || kind != tc.kind || !bytes.Equal(payload, tc.payload) {
			t.Fatalf("round trip (%q v%d %d bytes) -> (%q v%d %d bytes)",
				tc.kind, tc.version, len(tc.payload), kind, version, len(payload))
		}
	}
}

func TestCapsuleRejectsCorruption(t *testing.T) {
	blob := EncodeCapsule(3, "test.state", []byte("hello, successor"))

	// Every strict prefix is truncated, never adopted, never a panic.
	for n := 0; n < len(blob); n++ {
		if _, _, _, err := DecodeCapsule(blob[:n]); err == nil {
			t.Fatalf("accepted %d-byte prefix of a %d-byte capsule", n, len(blob))
		}
	}
	// Trailing garbage is not a capsule either (the frame is exact-length).
	if _, _, _, err := DecodeCapsule(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("accepted capsule with trailing garbage")
	}
	// Any single-byte corruption must fail the magic or the checksum.
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		_, _, _, err := DecodeCapsule(bad)
		if err == nil {
			t.Fatalf("accepted capsule with byte %d corrupted", i)
		}
		if !errors.Is(err, ErrCapsuleMagic) && !errors.Is(err, ErrCapsuleCRC) &&
			!errors.Is(err, ErrCapsuleSize) && !errors.Is(err, ErrCapsuleTruncated) {
			t.Fatalf("byte %d corruption: unexpected error %v", i, err)
		}
	}

	if _, _, _, err := DecodeCapsule(nil); !errors.Is(err, ErrCapsuleTruncated) {
		t.Fatalf("nil input: %v, want truncated", err)
	}
	huge := EncodeCapsule(1, strings.Repeat("k", 65), nil)
	if _, _, _, err := DecodeCapsule(huge); !errors.Is(err, ErrCapsuleSize) {
		t.Fatalf("oversized kind: %v, want size error", err)
	}
}

// FuzzDecodeCapsule is the robustness property the salvage path depends
// on: a successor hands DecodeCapsule whatever bytes the data store
// returns, so the parser must never panic, and anything it does accept
// must be the canonical encoding of what it decoded to.
func FuzzDecodeCapsule(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("RSC1"))
	f.Add(EncodeCapsule(1, "rtl8139.conf", []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}))
	f.Add(EncodeCapsule(0, "", nil))
	f.Add(EncodeCapsule(0xFFFFFFFF, "sata.queue", bytes.Repeat([]byte{0xAA}, 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		version, kind, payload, err := DecodeCapsule(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeCapsule(version, kind, payload), data) {
			t.Fatalf("accepted non-canonical capsule: v%d kind=%q payload=%d bytes",
				version, kind, len(payload))
		}
	})
}
