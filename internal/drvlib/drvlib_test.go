package drvlib

import (
	"errors"
	"testing"
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
	"resilientos/internal/ucode"
)

// fakeDevice records dispatches from the message loop.
type fakeDevice struct {
	initErr  error
	requests []int32
	irqs     []uint64
	alarms   int
	shutdown bool
}

func (d *fakeDevice) Init(c *kernel.Ctx) error { return d.initErr }

func (d *fakeDevice) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	d.requests = append(d.requests, m.Type)
	if m.Source.String() != "" && m.Type == 777 {
		_ = c.Send(m.Source, kernel.Message{Type: 778})
	}
}

func (d *fakeDevice) HandleIRQ(c *kernel.Ctx, mask uint64) { d.irqs = append(d.irqs, mask) }

func (d *fakeDevice) HandleAlarm(c *kernel.Ctx) { d.alarms++ }

func (d *fakeDevice) Shutdown(c *kernel.Ctx) { d.shutdown = true }

func spawnDriver(t *testing.T, k *kernel.Kernel, d Device) kernel.Endpoint {
	t.Helper()
	c, err := k.Spawn("drv", kernel.Privileges{
		AllowAllIPC: true,
		Calls:       []kernel.Call{kernel.CallIRQCtl, kernel.CallAlarm},
		IRQs:        []int{3},
	}, func(c *kernel.Ctx) { Run(c, d) })
	if err != nil {
		t.Fatal(err)
	}
	return c.Endpoint()
}

func TestRunDispatchesRequests(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dev := &fakeDevice{}
	ep := spawnDriver(t, k, dev)
	var reply kernel.Message
	k.Spawn("client", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		r, err := c.SendRec(ep, kernel.Message{Type: 777})
		if err != nil {
			t.Errorf("sendrec: %v", err)
		}
		reply = r
	})
	env.Run(time.Second)
	if len(dev.requests) != 1 || dev.requests[0] != 777 {
		t.Fatalf("requests = %v", dev.requests)
	}
	if reply.Type != 778 {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestRunAnswersHeartbeats(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	ep := spawnDriver(t, k, &fakeDevice{})
	pongs := 0
	k.Spawn("rs", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		for i := 0; i < 3; i++ {
			_ = c.AsyncSend(ep, kernel.Message{Type: proto.RSPing})
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.RSPong {
				pongs++
			}
			c.Sleep(100 * time.Millisecond)
		}
	})
	env.Run(time.Second)
	if pongs != 3 {
		t.Fatalf("pongs = %d, want 3", pongs)
	}
}

func TestRunShutdownOnSIGTERM(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dev := &fakeDevice{}
	ep := spawnDriver(t, k, dev)
	k.Spawn("rs", kernel.Privileges{
		AllowAllIPC: true, Calls: []kernel.Call{kernel.CallKill},
	}, func(c *kernel.Ctx) {
		c.Sleep(100 * time.Millisecond)
		if err := c.Kill(ep, kernel.SIGTERM); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	env.Run(time.Second)
	if !dev.shutdown {
		t.Fatal("Shutdown not called on SIGTERM")
	}
	cause, ok := k.CauseOf(ep)
	if !ok || cause.Kind != kernel.CauseExit || cause.Status != 0 {
		t.Fatalf("cause = %v, want clean exit", cause)
	}
}

func TestRunDispatchesIRQsAndAlarms(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dev := &fakeDevice{}
	devSetup := &irqSetupDevice{inner: dev}
	spawnDriver(t, k, devSetup)
	env.Schedule(100*time.Millisecond, func() { k.RaiseIRQ(3) })
	env.Run(time.Second)
	if len(dev.irqs) != 1 || dev.irqs[0] != 1<<3 {
		t.Fatalf("irqs = %v", dev.irqs)
	}
	if dev.alarms != 1 {
		t.Fatalf("alarms = %d, want 1", dev.alarms)
	}
}

// irqSetupDevice subscribes to IRQ 3 and sets an alarm during Init, then
// delegates.
type irqSetupDevice struct{ inner *fakeDevice }

func (d *irqSetupDevice) Init(c *kernel.Ctx) error {
	if err := c.IRQSubscribe(3); err != nil {
		return err
	}
	c.SetAlarm(500 * time.Millisecond)
	return nil
}

func (d *irqSetupDevice) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	d.inner.HandleRequest(c, m)
}
func (d *irqSetupDevice) HandleIRQ(c *kernel.Ctx, mask uint64) { d.inner.HandleIRQ(c, mask) }
func (d *irqSetupDevice) HandleAlarm(c *kernel.Ctx)            { d.inner.HandleAlarm(c) }
func (d *irqSetupDevice) Shutdown(c *kernel.Ctx)               { d.inner.Shutdown(c) }

func TestRunInitFailurePanicsDriver(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	ep := spawnDriver(t, k, &fakeDevice{initErr: errors.New("no such card")})
	env.Run(time.Second)
	cause, ok := k.CauseOf(ep)
	if !ok || cause.Kind != kernel.CauseExit || cause.Status == 0 {
		t.Fatalf("cause = %v, want panic exit", cause)
	}
}

func TestReactOutcomes(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	outcomes := map[string]struct {
		res        ucode.Result
		wantReturn bool // React returns (true/false)
		wantDead   bool // process died
		wantKind   kernel.CauseKind
	}{
		"ok":     {ucode.Result{Outcome: ucode.OutcomeOK}, true, false, 0},
		"fail":   {ucode.Result{Outcome: ucode.OutcomeFail}, false, false, 0},
		"assert": {ucode.Result{Outcome: ucode.OutcomeAssert}, false, true, kernel.CauseExit},
		"mmu":    {ucode.Result{Outcome: ucode.OutcomeMMU}, false, true, kernel.CauseException},
		"cpu":    {ucode.Result{Outcome: ucode.OutcomeCPU}, false, true, kernel.CauseException},
	}
	for name, tc := range outcomes {
		name, tc := name, tc
		returned := false
		var retVal bool
		c, err := k.Spawn("t-"+name, kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
			retVal = React(c, tc.res)
			returned = true
			c.Sleep(time.Hour)
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Run(time.Second)
		if tc.wantDead {
			if returned {
				t.Errorf("%s: React returned instead of terminating", name)
			}
			cause, ok := k.CauseOf(c.Endpoint())
			if !ok || cause.Kind != tc.wantKind {
				t.Errorf("%s: cause = %v", name, cause)
			}
		} else {
			if !returned || retVal != tc.wantReturn {
				t.Errorf("%s: returned=%v val=%v", name, returned, retVal)
			}
		}
	}
}
