// Package drvlib is the shared driver library: the canonical message loop
// every driver in the system runs. It corresponds to MINIX's libdriver —
// and carries the paper's headline reengineering result: supporting
// recovery costs a driver almost nothing, because the only additions are
// replying to heartbeat requests and honoring shutdown requests, about
// five lines in the shared library (Fig. 9 lists both Ethernet drivers and
// the SATA driver at 5 recovery LoC, the RAM disk at 0).
//
// Lines that exist only to support recovery are marked "// [recovery]" —
// the marker cmd/locstats counts to regenerate Fig. 9.
package drvlib

import (
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
	"resilientos/internal/ucode"
)

// Device is the driver-specific half of a driver process. Run supplies
// the message loop; the Device supplies hardware knowledge.
type Device interface {
	// Init resets and initializes the hardware. Called once at startup —
	// which, after a crash, is what reinitializes the device for the
	// fresh driver instance.
	Init(c *kernel.Ctx) error
	// HandleRequest processes one protocol request.
	HandleRequest(c *kernel.Ctx, m kernel.Message)
	// HandleIRQ processes a hardware interrupt (mask of pending lines).
	HandleIRQ(c *kernel.Ctx, mask uint64)
	// HandleAlarm processes a clock alarm.
	HandleAlarm(c *kernel.Ctx)
	// Shutdown quiesces the device for a clean exit (dynamic update).
	Shutdown(c *kernel.Ctx)
}

// Run executes the canonical driver message loop. It does not return
// except by process exit.
//
// When span tracing is on the loop also carries the causal story: the
// process starts under its spawner's ambient context — for an instance
// the reincarnation server spawns mid-recovery that is the episode span,
// so reinitialization nests under the recovery that caused it — and each
// protocol request runs inside a span parented on the request's context.
// A driver that dies mid-request leaves that span open; the kernel's
// reaper orphans it, which is how a crash-interrupted request becomes
// visible in the trace.
func Run(c *kernel.Ctx, d Device) {
	initSpan := c.BeginWork("init", c.TraceCtx())
	if err := d.Init(c); err != nil {
		c.Panic("init: " + err.Error())
	}
	c.EndWork(initSpan, 0)
	c.SetTraceCtx(obs.SpanContext{}) // startup context must not bleed into steady state
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			c.Panic("receive: " + err.Error())
		}
		switch {
		case m.Type == kernel.MsgNotify && m.Source == kernel.Hardware:
			// Interrupts are context-free; clear the stale ambient so
			// frames delivered from IRQ handling aren't attributed to the
			// last request this driver processed.
			c.SetTraceCtx(obs.SpanContext{})
			d.HandleIRQ(c, uint64(m.Arg1))
		case m.Type == kernel.MsgNotify && m.Source == kernel.Clock:
			c.SetTraceCtx(obs.SpanContext{})
			d.HandleAlarm(c)
		case m.Type == kernel.MsgNotify && m.Source == kernel.System:
			for _, sig := range c.SigPending() {
				if sig == kernel.SIGTERM { // [recovery] shutdown request
					d.Shutdown(c) // [recovery]
					c.Exit(0)     // [recovery]
				}
			}
		case m.Type == proto.RSPing: // [recovery] heartbeat request
			_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
		default:
			sc := c.BeginWork(reqName(m.Type), m.Trace)
			d.HandleRequest(c, m)
			c.EndWork(sc, 0)
		}
	}
}

// reqName names a request span after its protocol operation.
func reqName(t int32) string {
	switch t {
	case proto.BdevOpen:
		return "drv.open"
	case proto.BdevRead:
		return "drv.read"
	case proto.BdevWrite:
		return "drv.write"
	case proto.EthConf:
		return "drv.conf"
	case proto.EthSend:
		return "drv.send"
	case proto.ChrOpen:
		return "drv.open"
	case proto.ChrRead:
		return "drv.read"
	case proto.ChrWrite:
		return "drv.write"
	case proto.ChrIoctl:
		return "drv.ioctl"
	}
	return "drv.req"
}

// Stuck emulates a driver wedged in an infinite loop: the process stays
// alive but never again answers messages — detectable only through missed
// heartbeats (defect class 4). It never returns.
func Stuck(c *kernel.Ctx) {
	for {
		c.Sleep(time.Hour)
	}
}

// CtxBus adapts a driver's kernel context to the ucode VM's port bus, so
// VM port instructions go through the kernel's privilege checks.
type CtxBus struct{ C *kernel.Ctx }

var _ ucode.IOBus = CtxBus{}

// In implements ucode.IOBus.
func (b CtxBus) In(port uint32) (uint32, bool) {
	v, err := b.C.DevIn(port)
	return v, err == nil
}

// Out implements ucode.IOBus.
func (b CtxBus) Out(port uint32, val uint32) bool {
	return b.C.DevOut(port, val) == nil
}

// React converts a VM result into driver behavior: consistency failures
// panic the driver, traps kill it with the corresponding exception, and a
// stall wedges the process — the §7.2 failure classes. It returns true if
// the routine succeeded, false if it reported a clean failure. On the
// fatal outcomes it never returns.
func React(c *kernel.Ctx, res ucode.Result) bool {
	switch res.Outcome {
	case ucode.OutcomeOK:
		return true
	case ucode.OutcomeFail:
		return false
	case ucode.OutcomeAssert:
		c.Panic(res.Reason)
	case ucode.OutcomeMMU:
		c.Trap(kernel.ExcMMU)
	case ucode.OutcomeCPU:
		c.Trap(kernel.ExcCPU)
	case ucode.OutcomeStall:
		Stuck(c)
	}
	return false
}
