// Package drvlib is the shared driver library: the canonical message loop
// every driver in the system runs. It corresponds to MINIX's libdriver —
// and carries the paper's headline reengineering result: supporting
// recovery costs a driver almost nothing, because the only additions are
// replying to heartbeat requests and honoring shutdown requests, about
// five lines in the shared library (Fig. 9 lists both Ethernet drivers and
// the SATA driver at 5 recovery LoC, the RAM disk at 0).
//
// Beyond the paper's kill-and-respawn baseline, the library implements
// the driver half of the pluggable recovery mechanisms:
//
//   - warm standby (MechStandby): an instance spawned under the
//     "<label>/sb" replica label parks in a wait loop without touching
//     the hardware (initializing it would reset the card under the live
//     primary), and attaches only when the reincarnation server promotes
//     it — via the Promoter fast path when the device survived the
//     primary's death, or a full Init otherwise.
//   - microreboot (MechMicroreboot): fatal ucode VM outcomes raised
//     during steady-state dispatch are intercepted before they kill the
//     process; the driver asks the reincarnation server for permission
//     and, if granted, resets its VM and ring state in place via the
//     Microrebooter hook — no respawn, no re-grant churn. Denial or a
//     failed reset falls back to the original fatal (full respawn).
//   - state salvage (Options.Salvage): devices implementing Salvager
//     flush a small versioned state capsule to the data store on clean
//     shutdown; the successor instance retrieves, validates, and adopts
//     it instead of cold re-initializing, rejecting corrupt capsules.
//
// Lines that exist only to support the paper's baseline recovery —
// answering heartbeats and honoring shutdown — carry the recovery
// marker cmd/locstats counts to regenerate Fig. 9. The count
// deliberately excludes the beyond-paper mechanism layer (standby
// parking, microreboot interception, salvage): that is opt-in machinery
// the paper's 5-line claim never covered.
package drvlib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
	"resilientos/internal/ucode"
)

// Mechanism selects how the reincarnation server recovers a driver.
type Mechanism uint8

// The recovery mechanisms, in escalation order.
const (
	// MechRespawn is the paper's baseline: kill and respawn.
	MechRespawn Mechanism = iota
	// MechMicroreboot resets the driver's ucode VM state in place on a
	// crash or stuck heartbeat, falling back to a full respawn when the
	// microreboot fails or repeats within its budget.
	MechMicroreboot
	// MechStandby keeps a warm replica pre-spawned; on a crash the data
	// store atomically republishes the service endpoint to the promoted
	// replica and a fresh standby is back-filled in the background.
	MechStandby
)

func (m Mechanism) String() string {
	switch m {
	case MechRespawn:
		return "respawn"
	case MechMicroreboot:
		return "microreboot"
	case MechStandby:
		return "standby"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// ParseMechanism resolves a mechanism name; ok is false for unknown.
func ParseMechanism(s string) (Mechanism, bool) {
	switch s {
	case "respawn":
		return MechRespawn, true
	case "microreboot":
		return MechMicroreboot, true
	case "standby":
		return MechStandby, true
	}
	return 0, false
}

// StandbySuffix is the label suffix of warm standby replica instances
// ("eth.rtl8139/sb"). The reincarnation server spawns replicas under it
// and the kernel relabel at promotion strips it.
const StandbySuffix = "/sb"

// IsStandbyLabel reports whether label names a warm standby replica.
func IsStandbyLabel(label string) bool { return strings.HasSuffix(label, StandbySuffix) }

// StandbyLabel returns the replica label for a service label.
func StandbyLabel(label string) string { return label + StandbySuffix }

// PrimaryLabel returns the service label a replica label belongs to.
func PrimaryLabel(label string) string { return strings.TrimSuffix(label, StandbySuffix) }

// Device is the driver-specific half of a driver process. Run supplies
// the message loop; the Device supplies hardware knowledge.
type Device interface {
	// Init resets and initializes the hardware. Called once at startup —
	// which, after a crash, is what reinitializes the device for the
	// fresh driver instance.
	Init(c *kernel.Ctx) error
	// HandleRequest processes one protocol request.
	HandleRequest(c *kernel.Ctx, m kernel.Message)
	// HandleIRQ processes a hardware interrupt (mask of pending lines).
	HandleIRQ(c *kernel.Ctx, mask uint64)
	// HandleAlarm processes a clock alarm.
	HandleAlarm(c *kernel.Ctx)
	// Shutdown quiesces the device for a clean exit (dynamic update).
	Shutdown(c *kernel.Ctx)
}

// Promoter is the standby fast-attach hook: attach to hardware that is
// already initialized and running (the device survived the primary's
// death), skipping the reset cycle a cold Init would pay. A promoted
// replica without this hook — or whose Promote fails — runs a full Init.
type Promoter interface {
	Promote(c *kernel.Ctx) error
}

// Microrebooter is the in-place reset hook: rebuild the driver's ucode
// VM and ring bookkeeping from pristine state without resetting the
// hardware or respawning the process. An error falls the driver back to
// the fatal outcome the microreboot tried to absorb.
type Microrebooter interface {
	Microreboot(c *kernel.Ctx) error
}

// Salvager is implemented by devices with crash-consistent state worth
// carrying across instances (configuration, open minors, geometry).
type Salvager interface {
	// SaveState returns the state capsule payload to flush on a clean
	// shutdown, tagged with a device-specific kind.
	SaveState(c *kernel.Ctx) (kind string, payload []byte)
	// RestoreState validates a predecessor's capsule payload and adopts
	// it. An error rejects the capsule (the driver keeps its cold state).
	RestoreState(c *kernel.Ctx, kind string, payload []byte) error
}

// Options configures the message loop's recovery behavior beyond the
// paper's baseline. The zero value is the baseline (respawn, no salvage).
type Options struct {
	Mechanism Mechanism
	// Salvage enables the state-capsule save/restore handshake for
	// devices implementing Salvager.
	Salvage bool
}

// runState is the per-instance loop state, parked in the process-local
// slot so package helpers (React, Stuck) can reach it with only a Ctx.
type runState struct {
	opts       Options
	armed      bool   // inside steady-state dispatch: VM fatals are catchable
	capVersion uint32 // version of the last adopted/saved capsule
}

// vmFatal carries an intercepted fatal VM outcome up to the dispatch
// recover.
type vmFatal struct{ res ucode.Result }

func state(c *kernel.Ctx) *runState {
	st, _ := c.Local().(*runState)
	return st
}

// Run executes the canonical driver message loop with baseline recovery
// (kill-and-respawn, no salvage). It does not return except by process
// exit.
func Run(c *kernel.Ctx, d Device) { RunWith(c, d, Options{}) }

// RunWith executes the canonical driver message loop under the given
// recovery options. It does not return except by process exit.
//
// When span tracing is on the loop also carries the causal story: the
// process starts under its spawner's ambient context — for an instance
// the reincarnation server spawns mid-recovery that is the episode span,
// so reinitialization nests under the recovery that caused it — and each
// protocol request runs inside a span parented on the request's context.
// A driver that dies mid-request leaves that span open; the kernel's
// reaper orphans it, which is how a crash-interrupted request becomes
// visible in the trace.
func RunWith(c *kernel.Ctx, d Device, opts Options) {
	st := &runState{opts: opts}
	c.SetLocal(st)
	if IsStandbyLabel(c.Label()) {
		standby(c)
		attach(c, d)
	} else {
		initSpan := c.BeginWork("init", c.TraceCtx())
		if err := d.Init(c); err != nil {
			c.Panic("init: " + err.Error())
		}
		c.EndWork(initSpan, 0)
	}
	adoptCapsule(c, d, st)
	c.SetTraceCtx(obs.SpanContext{}) // startup context must not bleed into steady state
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			c.Panic("receive: " + err.Error())
		}
		if fatal := dispatch(c, d, st, m); fatal != nil {
			microReboot(c, d, st, fatal)
		}
	}
}

// dispatch routes one message. Under MechMicroreboot the handlers run
// armed: a fatal VM outcome unwinds here as a *vmFatal instead of
// killing the process, and is returned for the microreboot path.
func dispatch(c *kernel.Ctx, d Device, st *runState, m kernel.Message) (fatal *vmFatal) {
	if st.opts.Mechanism == MechMicroreboot {
		st.armed = true
		defer func() {
			st.armed = false
			r := recover()
			if r == nil {
				return
			}
			f, ok := r.(*vmFatal)
			if !ok {
				panic(r) // process unwind or a real bug: not ours to absorb
			}
			fatal = f
		}()
	}
	switch {
	case m.Type == kernel.MsgNotify && m.Source == kernel.Hardware:
		// Interrupts are context-free; clear the stale ambient so
		// frames delivered from IRQ handling aren't attributed to the
		// last request this driver processed.
		c.SetTraceCtx(obs.SpanContext{})
		d.HandleIRQ(c, uint64(m.Arg1))
	case m.Type == kernel.MsgNotify && m.Source == kernel.Clock:
		c.SetTraceCtx(obs.SpanContext{})
		d.HandleAlarm(c)
	case m.Type == kernel.MsgNotify && m.Source == kernel.System:
		for _, sig := range c.SigPending() {
			if sig == kernel.SIGTERM { // [recovery] shutdown request
				saveCapsule(c, d, st) // [recovery] flush state capsule
				d.Shutdown(c)         // [recovery]
				c.Exit(0)             // [recovery]
			}
		}
	case m.Type == proto.RSPing: // [recovery] heartbeat request
		_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
	default:
		sc := c.BeginWork(reqName(m.Type), m.Trace)
		d.HandleRequest(c, m)
		c.EndWork(sc, 0)
	}
	return nil
}

// standby is the warm replica's wait loop: answer heartbeats, honor
// shutdown, and return when the reincarnation server promotes us. The
// replica must not touch the hardware here — the primary owns it.
func standby(c *kernel.Ctx) {
	c.SetTraceCtx(obs.SpanContext{})
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			c.Panic("standby receive: " + err.Error())
		}
		switch {
		case m.Type == kernel.MsgNotify && m.Source == kernel.System:
			for _, sig := range c.SigPending() {
				if sig == kernel.SIGTERM {
					c.Exit(0)
				}
			}
		case m.Type == proto.RSPing:
			_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong})
		case m.Type == proto.RSPromote:
			return
		}
	}
}

// attach brings a promoted replica onto the device: the Promoter fast
// path when available (the card survived the primary's death and needs
// no reset), a full Init otherwise. Failure kills the instance — the
// reincarnation server then falls back to an ordinary respawn.
func attach(c *kernel.Ctx, d Device) {
	span := c.BeginWork("promote", c.TraceCtx())
	var err error
	if p, ok := d.(Promoter); ok {
		err = p.Promote(c)
	} else {
		err = d.Init(c)
	}
	if err != nil {
		c.Panic("promote: " + err.Error())
	}
	c.EndWork(span, 0)
}

// microReboot is the in-place recovery path for an intercepted fatal VM
// outcome: ask the reincarnation server for permission, reset via the
// Microrebooter hook, and report completion. On denial or failure it
// executes the original fatal and never returns.
func microReboot(c *kernel.Ctx, d Device, st *runState, f *vmFatal) {
	rs := c.LookupLabel("rs")
	mr, can := d.(Microrebooter)
	if can && rs != kernel.None {
		ask := kernel.Message{Type: proto.RSMicroAsk, Name: c.Label(), Arg1: int64(microClass(f.res.Outcome))}
		reply, err := c.SendRec(rs, ask)
		if err == nil && reply.Arg1 == proto.OK {
			if err := mr.Microreboot(c); err == nil {
				_ = c.AsyncSend(rs, kernel.Message{Type: proto.RSMicroDone, Name: c.Label()})
				return
			}
		}
	}
	executeFatal(c, f.res)
}

// microClass maps a fatal VM outcome to the defect class its uncaught
// form would manifest as (the numeric values of core.Defect): a
// consistency assert panics the process (class 1, exit), traps kill it
// (class 2, exception), a stall wedges it (class 4, heartbeat).
func microClass(o ucode.Outcome) int {
	switch o {
	case ucode.OutcomeAssert:
		return 1
	case ucode.OutcomeMMU, ucode.OutcomeCPU:
		return 2
	case ucode.OutcomeStall:
		return 4
	}
	return 1
}

// executeFatal carries out the process-fatal behavior of a VM outcome.
func executeFatal(c *kernel.Ctx, res ucode.Result) {
	switch res.Outcome {
	case ucode.OutcomeAssert:
		c.Panic(res.Reason)
	case ucode.OutcomeMMU:
		c.Trap(kernel.ExcMMU)
	case ucode.OutcomeCPU:
		c.Trap(kernel.ExcCPU)
	default:
		wedge(c)
	}
}

// microFatal raises a fatal VM outcome as a catchable unwind when the
// caller is inside armed microreboot dispatch; otherwise it returns and
// the caller carries out the process-fatal behavior.
func microFatal(c *kernel.Ctx, res ucode.Result) {
	if st := state(c); st != nil && st.armed {
		st.armed = false
		panic(&vmFatal{res: res})
	}
}

// reqName names a request span after its protocol operation.
func reqName(t int32) string {
	switch t {
	case proto.BdevOpen:
		return "drv.open"
	case proto.BdevRead:
		return "drv.read"
	case proto.BdevWrite:
		return "drv.write"
	case proto.EthConf:
		return "drv.conf"
	case proto.EthSend:
		return "drv.send"
	case proto.ChrOpen:
		return "drv.open"
	case proto.ChrRead:
		return "drv.read"
	case proto.ChrWrite:
		return "drv.write"
	case proto.ChrIoctl:
		return "drv.ioctl"
	}
	return "drv.req"
}

// Stuck emulates a driver wedged in an infinite loop: the process stays
// alive but never again answers messages — detectable only through missed
// heartbeats (defect class 4). Under armed microreboot dispatch the wedge
// is intercepted like any other fatal VM outcome. It never returns.
func Stuck(c *kernel.Ctx) {
	microFatal(c, ucode.Result{Outcome: ucode.OutcomeStall, Reason: "stuck"})
	wedge(c)
}

func wedge(c *kernel.Ctx) {
	for {
		c.Sleep(time.Hour)
	}
}

// CtxBus adapts a driver's kernel context to the ucode VM's port bus, so
// VM port instructions go through the kernel's privilege checks.
type CtxBus struct{ C *kernel.Ctx }

var _ ucode.IOBus = CtxBus{}

// In implements ucode.IOBus.
func (b CtxBus) In(port uint32) (uint32, bool) {
	v, err := b.C.DevIn(port)
	return v, err == nil
}

// Out implements ucode.IOBus.
func (b CtxBus) Out(port uint32, val uint32) bool {
	return b.C.DevOut(port, val) == nil
}

// React converts a VM result into driver behavior: consistency failures
// panic the driver, traps kill it with the corresponding exception, and a
// stall wedges the process — the §7.2 failure classes. It returns true if
// the routine succeeded, false if it reported a clean failure. On the
// fatal outcomes it never returns — except under armed microreboot
// dispatch, where the fatal unwinds to the message loop for an in-place
// recovery attempt instead of killing the process.
func React(c *kernel.Ctx, res ucode.Result) bool {
	switch res.Outcome {
	case ucode.OutcomeOK:
		return true
	case ucode.OutcomeFail:
		return false
	}
	microFatal(c, res)
	executeFatal(c, res)
	return false
}

// ---------------------------------------------------------------------
// State capsules

// Capsule framing constants.
const (
	capsuleMagic      = "RSC1"
	capsuleMaxKind    = 64
	capsuleMaxPayload = 1 << 20
)

// Capsule errors.
var (
	ErrCapsuleTruncated = errors.New("drvlib: capsule truncated")
	ErrCapsuleMagic     = errors.New("drvlib: bad capsule magic")
	ErrCapsuleCRC       = errors.New("drvlib: capsule checksum mismatch")
	ErrCapsuleSize      = errors.New("drvlib: capsule field size out of range")
)

// EncodeCapsule frames a versioned state capsule:
//
//	"RSC1" | version u32 LE | kindLen u8 | kind | payloadLen u32 LE |
//	payload | CRC32-IEEE of everything preceding, u32 LE
//
// The version is monotonically increasing per service label (the
// checker's capsule invariant); the CRC lets a successor reject a
// corrupt capsule instead of adopting garbage.
func EncodeCapsule(version uint32, kind string, payload []byte) []byte {
	b := make([]byte, 0, len(capsuleMagic)+4+1+len(kind)+4+len(payload)+4)
	b = append(b, capsuleMagic...)
	b = binary.LittleEndian.AppendUint32(b, version)
	b = append(b, byte(len(kind)))
	b = append(b, kind...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// DecodeCapsule parses and verifies a capsule. It never panics: a
// truncated, oversized, or corrupt input is an error.
func DecodeCapsule(b []byte) (version uint32, kind string, payload []byte, err error) {
	const header = len(capsuleMagic) + 4 + 1
	if len(b) < header+4+4 {
		return 0, "", nil, ErrCapsuleTruncated
	}
	if string(b[:len(capsuleMagic)]) != capsuleMagic {
		return 0, "", nil, ErrCapsuleMagic
	}
	version = binary.LittleEndian.Uint32(b[len(capsuleMagic):])
	kindLen := int(b[header-1])
	if kindLen > capsuleMaxKind {
		return 0, "", nil, ErrCapsuleSize
	}
	if len(b) < header+kindLen+4+4 {
		return 0, "", nil, ErrCapsuleTruncated
	}
	kind = string(b[header : header+kindLen])
	payLen := int(binary.LittleEndian.Uint32(b[header+kindLen:]))
	if payLen > capsuleMaxPayload {
		return 0, "", nil, ErrCapsuleSize
	}
	body := header + kindLen + 4 + payLen
	if len(b) != body+4 {
		return 0, "", nil, ErrCapsuleTruncated
	}
	if crc32.ChecksumIEEE(b[:body]) != binary.LittleEndian.Uint32(b[body:]) {
		return 0, "", nil, ErrCapsuleCRC
	}
	payload = append([]byte(nil), b[header+kindLen+4:body]...)
	return version, kind, payload, nil
}

// capsuleKey is the data-store key capsules live under (the record is
// additionally bound to the saving instance's stable label).
const capsuleKey = "capsule"

// saveCapsule flushes the device's state capsule to the data store on a
// clean shutdown (the terminate half of the flush/terminate handshake).
func saveCapsule(c *kernel.Ctx, d Device, st *runState) {
	sal, ok := d.(Salvager)
	if !ok || !st.opts.Salvage {
		return
	}
	ds := c.LookupLabel("ds")
	if ds == kernel.None {
		return
	}
	kind, payload := sal.SaveState(c)
	st.capVersion++
	blob := EncodeCapsule(st.capVersion, kind, payload)
	reply, err := c.SendRec(ds, kernel.Message{Type: proto.DSStore, Name: capsuleKey, Payload: blob})
	if err != nil || reply.Arg2 != proto.OK {
		return
	}
	c.Obs().Emit(obs.KindCapsuleSave, c.Label(), kind, int64(st.capVersion), int64(len(payload)))
}

// adoptCapsule retrieves the predecessor instance's state capsule from
// the data store (authenticated by the shared stable label), validates
// it, and adopts it via the Salvager hook. Corrupt or rejected capsules
// leave the driver on its cold state and are reported with V2 = 1.
func adoptCapsule(c *kernel.Ctx, d Device, st *runState) {
	sal, ok := d.(Salvager)
	if !ok || !st.opts.Salvage {
		return
	}
	ds := c.LookupLabel("ds")
	if ds == kernel.None {
		return
	}
	reply, err := c.SendRec(ds, kernel.Message{Type: proto.DSRetrieve, Name: capsuleKey})
	if err != nil || reply.Arg2 != proto.OK || len(reply.Payload) == 0 {
		return // no capsule: cold start
	}
	version, kind, payload, err := DecodeCapsule(reply.Payload)
	if err != nil {
		c.Logf("capsule rejected: %v", err)
		c.Obs().Emit(obs.KindCapsuleAdopt, c.Label(), "corrupt", int64(version), 1)
		return
	}
	if err := sal.RestoreState(c, kind, payload); err != nil {
		c.Logf("capsule v%d rejected: %v", version, err)
		c.Obs().Emit(obs.KindCapsuleAdopt, c.Label(), kind, int64(version), 1)
		return
	}
	st.capVersion = version
	c.Obs().Emit(obs.KindCapsuleAdopt, c.Label(), kind, int64(version), 0)
}
