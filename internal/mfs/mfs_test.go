package mfs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"resilientos/internal/drivers/sata"
	"resilientos/internal/ds"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

func TestSuperblockRoundtrip(t *testing.T) {
	sb := &Superblock{
		Magic: Magic, NInodes: 4096, NZones: 1 << 20,
		ImapBlocks: 1, ZmapBlocks: 32, ITblBlocks: 64, FirstData: 98,
	}
	dec, err := decodeSuperblock(sb.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *dec != *sb {
		t.Fatalf("roundtrip: %+v vs %+v", dec, sb)
	}
}

func TestSuperblockBadMagic(t *testing.T) {
	b := make([]byte, BlockSize)
	if _, err := decodeSuperblock(b); err == nil {
		t.Fatal("accepted zero magic")
	}
}

func TestInodeRoundtrip(t *testing.T) {
	f := func(mode uint32, size int64, z0, z5, ind, dbl uint32) bool {
		in := inode{Mode: mode, Size: size, Indirect: ind, DblInd: dbl}
		in.Zones[0], in.Zones[5] = z0, z5
		buf := make([]byte, InodeSize)
		in.encode(buf)
		return decodeInode(buf) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirentRoundtrip(t *testing.T) {
	buf := make([]byte, DirentSize)
	encodeDirent(dirent{Ino: 42, Name: "notes.txt"}, buf)
	d := decodeDirent(buf)
	if d.Ino != 42 || d.Name != "notes.txt" {
		t.Fatalf("got %+v", d)
	}
	// Max-length name.
	long := string(bytes.Repeat([]byte{'x'}, NameMax))
	encodeDirent(dirent{Ino: 1, Name: long}, buf)
	if got := decodeDirent(buf); got.Name != long {
		t.Fatalf("long name mangled: %d chars", len(got.Name))
	}
}

func TestSplitPath(t *testing.T) {
	cases := map[string][]string{
		"/":          nil,
		"":           nil,
		"/a":         {"a"},
		"/a/b/c":     {"a", "b", "c"},
		"a/b":        {"a", "b"},
		"//a//b/":    {"a", "b"},
		"/./a/./b/.": {"a", "b"},
	}
	for path, want := range cases {
		got := splitPath(path)
		if len(got) != len(want) {
			t.Errorf("splitPath(%q) = %v, want %v", path, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitPath(%q) = %v, want %v", path, got, want)
			}
		}
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(2)
	c.put(1, []byte{1})
	c.put(2, []byte{2})
	c.get(1) // refresh 1
	c.put(3, []byte{3})
	if _, ok := c.get(2); ok {
		t.Fatal("LRU victim 2 still cached")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("recently used 1 evicted")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("new 3 missing")
	}
	c.drop(1)
	if _, ok := c.get(1); ok {
		t.Fatal("dropped block still cached")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestBlockCacheCopies(t *testing.T) {
	c := newBlockCache(4)
	data := []byte{1, 2, 3}
	c.put(1, data)
	data[0] = 99
	got, _ := c.get(1)
	if got[0] != 1 {
		t.Fatal("cache shares caller's slice")
	}
}

func TestMkfsLayout(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	disk := hw.NewDisk(env, k, hw.DiskConfig{Base: 0x2000, IRQ: 14, Sectors: 1 << 16, Seed: 3})
	sb, err := Mkfs(disk, MkfsConfig{Ateach: []PreallocFile{
		{Name: "big", Size: 5 << 20}, // needs indirect + double indirect? 5MB > 4.2MB direct+ind
		{Name: "small", Size: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Superblock must decode back from sector 0.
	raw := make([]byte, BlockSize)
	for s := 0; s < SectorsPerBlock; s++ {
		copy(raw[s*hw.SectorSize:], disk.PeekSector(int64(s)))
	}
	dec, err := decodeSuperblock(raw)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NZones != sb.NZones || dec.FirstData != sb.FirstData {
		t.Fatalf("on-disk superblock mismatch: %+v vs %+v", dec, sb)
	}
}

func TestMkfsTooSmall(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	disk := hw.NewDisk(env, k, hw.DiskConfig{Base: 0x2000, IRQ: 14, Sectors: 64, Seed: 3})
	if _, err := Mkfs(disk, MkfsConfig{}); err == nil {
		t.Fatal("mkfs on tiny disk succeeded")
	}
}

// fsRig boots kernel + DS + disk + SATA driver + MFS, with a fake "rs"
// process acting as publisher/supervisor.
type fsRig struct {
	env   *sim.Env
	k     *kernel.Kernel
	disk  *hw.Disk
	srv   *Server
	mfsEp kernel.Endpoint
	dsEp  kernel.Endpoint
	drv   kernel.Endpoint
}

func newFsRig(t *testing.T, prealloc []PreallocFile) *fsRig {
	t.Helper()
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dsEp, err := ds.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	disk := hw.NewDisk(env, k, hw.DiskConfig{
		Base: 0x2000, IRQ: 14, Sectors: 1 << 18, Seed: 7,
		ResetDelay: 10 * time.Millisecond,
	})
	if _, err := Mkfs(disk, MkfsConfig{Ateach: prealloc}); err != nil {
		t.Fatal(err)
	}
	r := &fsRig{env: env, k: k, disk: disk, dsEp: dsEp}
	r.spawnDriver(t)
	r.srv = New(Config{DS: dsEp, DriverLabel: "disk.sata", Disk: Geometry{Sectors: disk.Sectors()}})
	mc, err := k.Spawn("mfs", kernel.Privileges{
		AllowAllIPC: true,
		Calls:       []kernel.Call{kernel.CallSafeCopy, kernel.CallAlarm},
		MayComplain: true,
	}, r.srv.Binary())
	if err != nil {
		t.Fatal(err)
	}
	r.mfsEp = mc.Endpoint()
	r.publish(t)
	return r
}

func (r *fsRig) spawnDriver(t *testing.T) {
	t.Helper()
	dc, err := r.k.Spawn("disk.sata", kernel.Privileges{
		AllowAllIPC: true,
		Calls:       []kernel.Call{kernel.CallDevIO, kernel.CallIRQCtl, kernel.CallSafeCopy},
		Ports:       []kernel.PortRange{r.disk.PortRange()},
		IRQs:        []int{r.disk.IRQ()},
	}, sata.Binary(sata.Config{Disk: r.disk}))
	if err != nil {
		t.Fatal(err)
	}
	r.drv = dc.Endpoint()
}

func (r *fsRig) publish(t *testing.T) {
	t.Helper()
	drv := r.drv
	if _, err := r.k.Spawn("rs", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.SendRec(r.dsEp, kernel.Message{Type: proto.DSPublish, Name: "disk.sata", Arg1: int64(drv)})
	}); err != nil {
		t.Fatal(err)
	}
}

// client runs body in an app process with FS access.
func (r *fsRig) client(t *testing.T, body func(c *kernel.Ctx)) {
	t.Helper()
	if _, err := r.k.Spawn("app", kernel.Privileges{AllowAllIPC: true}, body); err != nil {
		t.Fatal(err)
	}
}

// fsCall is a SendRec to MFS that retries transient ErrAgain.
func fsCall(t *testing.T, c *kernel.Ctx, ep kernel.Endpoint, m kernel.Message) kernel.Message {
	t.Helper()
	for {
		reply, err := c.SendRec(ep, m)
		if err != nil {
			t.Fatalf("mfs call %d: %v", m.Type, err)
		}
		if reply.Arg1 == proto.ErrAgain {
			c.Sleep(50 * time.Millisecond)
			continue
		}
		return reply
	}
}

func TestMFSCreateWriteRead(t *testing.T) {
	r := newFsRig(t, nil)
	done := false
	r.client(t, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		reply := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSCreate, Name: "/f"})
		if reply.Arg1 <= 0 {
			t.Errorf("create: %d", reply.Arg1)
			return
		}
		ino := reply.Arg1
		content := bytes.Repeat([]byte("filesystem "), 1000) // ~11KB: spans blocks
		reply = fsCall(t, c, r.mfsEp, kernel.Message{
			Type: proto.FSWrite, Arg1: ino, Arg3: 0, Payload: content,
		})
		if reply.Arg1 != int64(len(content)) {
			t.Errorf("write: %d", reply.Arg1)
			return
		}
		reply = fsCall(t, c, r.mfsEp, kernel.Message{
			Type: proto.FSRead, Arg1: ino, Arg2: int64(len(content)) + 100, Arg3: 0,
		})
		if !bytes.Equal(reply.Payload, content) {
			t.Error("read back mismatch")
			return
		}
		// Sparse read past EOF.
		reply = fsCall(t, c, r.mfsEp, kernel.Message{
			Type: proto.FSRead, Arg1: ino, Arg2: 100, Arg3: int64(len(content)) + 5,
		})
		if reply.Arg1 != 0 {
			t.Errorf("read past EOF returned %d", reply.Arg1)
		}
		done = true
	})
	r.env.Run(time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
}

func TestMFSDirectoriesAndUnlink(t *testing.T) {
	r := newFsRig(t, nil)
	done := false
	r.client(t, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		if re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSMkdir, Name: "/d"}); re.Arg1 <= 0 {
			t.Errorf("mkdir: %d", re.Arg1)
			return
		}
		fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSCreate, Name: "/d/x"})
		fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSCreate, Name: "/d/y"})
		// Duplicate create fails.
		if re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSCreate, Name: "/d/x"}); re.Arg1 != proto.ErrExist {
			t.Errorf("dup create: %d", re.Arg1)
		}
		re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSReaddir, Name: "/d"})
		if string(re.Payload) != "x\ny" {
			t.Errorf("readdir: %q", re.Payload)
		}
		// Non-empty directory cannot be unlinked.
		if re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSUnlink, Name: "/d"}); re.Arg1 != proto.ErrExist {
			t.Errorf("unlink non-empty: %d", re.Arg1)
		}
		fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSUnlink, Name: "/d/x"})
		fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSUnlink, Name: "/d/y"})
		if re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSUnlink, Name: "/d"}); re.Arg1 != proto.OK {
			t.Errorf("unlink empty dir: %d", re.Arg1)
		}
		if re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSOpen, Name: "/d"}); re.Arg1 != proto.ErrNotFound {
			t.Errorf("open unlinked: %d", re.Arg1)
		}
		done = true
	})
	r.env.Run(time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
}

func TestMFSPreallocContentMatchesDisk(t *testing.T) {
	r := newFsRig(t, []PreallocFile{{Name: "data", Size: 100 << 10}})
	done := false
	r.client(t, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSOpen, Name: "/data"})
		ino, size := re.Arg1, re.Arg2
		if size != 100<<10 {
			t.Errorf("size = %d", size)
			return
		}
		re = fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSRead, Arg1: ino, Arg2: BlockSize, Arg3: 0})
		// The first data zone of the file follows the root dir zone; its
		// content is the disk's generated sectors.
		// We just verify determinism: two reads agree.
		re2 := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSRead, Arg1: ino, Arg2: BlockSize, Arg3: 0})
		if !bytes.Equal(re.Payload, re2.Payload) {
			t.Error("re-read mismatch")
		}
		if len(re.Payload) != BlockSize {
			t.Errorf("short read: %d", len(re.Payload))
		}
		done = true
	})
	r.env.Run(time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
}

func TestMFSRecoversFromDriverDeath(t *testing.T) {
	r := newFsRig(t, []PreallocFile{{Name: "data", Size: 1 << 20}})
	var firstRead, secondRead []byte
	done := false
	r.client(t, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSOpen, Name: "/data"})
		ino := re.Arg1
		re = fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSRead, Arg1: ino, Arg2: 64 << 10, Arg3: 0})
		firstRead = re.Payload
		// Kill the driver; MFS must block and transparently retry once a
		// new instance is published.
		r.k.Kill(r.drv, kernel.SIGKILL)
		r.env.Schedule(100*time.Millisecond, func() {
			r.spawnDriver(t)
			r.publish(t)
		})
		re = fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSRead, Arg1: ino, Arg2: 64 << 10, Arg3: 0})
		secondRead = re.Payload
		done = true
	})
	r.env.Run(time.Minute)
	if !done {
		t.Fatal("client did not finish (MFS stuck after driver death?)")
	}
	if !bytes.Equal(firstRead, secondRead) {
		t.Fatal("data differs across driver recovery")
	}
	if r.srv.Stats().Recoveries == 0 && r.srv.Stats().Reissues == 0 {
		t.Fatalf("no recovery recorded: %+v", r.srv.Stats())
	}
}

func TestMFSComplainsAboutProtocolViolation(t *testing.T) {
	// A driver that replies with a malformed message type triggers the
	// complaint path (defect class 5).
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dsEp, err := ds.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	disk := hw.NewDisk(env, k, hw.DiskConfig{Base: 0x2000, IRQ: 14, Sectors: 1 << 18, Seed: 7})
	if _, err := Mkfs(disk, MkfsConfig{}); err != nil {
		t.Fatal(err)
	}
	// Misbehaving driver: acks opens, replies garbage to reads.
	evil, err := k.Spawn("disk.sata", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			switch m.Type {
			case proto.BdevOpen:
				c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.OK})
			default:
				c.Send(m.Source, kernel.Message{Type: 9999}) // protocol violation
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DS: dsEp, DriverLabel: "disk.sata", Disk: Geometry{Sectors: disk.Sectors()}})
	if _, err := k.Spawn("mfs", kernel.Privileges{
		AllowAllIPC: true,
		Calls:       []kernel.Call{kernel.CallSafeCopy},
		MayComplain: true,
	}, srv.Binary()); err != nil {
		t.Fatal(err)
	}
	var complaints []string
	k.Spawn("rs", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "disk.sata", Arg1: int64(evil.Endpoint())})
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.RSComplain {
				complaints = append(complaints, m.Name)
				c.Send(m.Source, kernel.Message{Type: proto.RSAck, Arg1: proto.OK})
				// Kill the accused, like the real RS does.
				c.Kill(evil.Endpoint(), kernel.SIGKILL)
				return
			}
		}
	})
	env.Run(30 * time.Second)
	if len(complaints) == 0 || complaints[0] != "disk.sata" {
		t.Fatalf("complaints = %v", complaints)
	}
}

// Property: random write/read sequences through MFS behave like an
// in-memory reference file.
func TestMFSMatchesReferenceModel(t *testing.T) {
	r := newFsRig(t, nil)
	done := false
	r.client(t, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		re := fsCall(t, c, r.mfsEp, kernel.Message{Type: proto.FSCreate, Name: "/model"})
		ino := re.Arg1
		rng := r.env.Rand()
		ref := make([]byte, 0, 1<<20)
		for step := 0; step < 60; step++ {
			off := int64(rng.Intn(256 << 10))
			n := rng.Intn(20<<10) + 1
			data := make([]byte, n)
			rng.Read(data)
			// Grow the reference to cover the write.
			if need := off + int64(n); need > int64(len(ref)) {
				ref = append(ref, make([]byte, need-int64(len(ref)))...)
			}
			copy(ref[off:], data)
			rep := fsCall(t, c, r.mfsEp, kernel.Message{
				Type: proto.FSWrite, Arg1: ino, Arg3: off, Payload: data,
			})
			if rep.Arg1 != int64(n) {
				t.Errorf("step %d: write %d", step, rep.Arg1)
				return
			}
			// Random verification read.
			voff := int64(rng.Intn(len(ref)))
			vn := rng.Intn(16<<10) + 1
			rep = fsCall(t, c, r.mfsEp, kernel.Message{
				Type: proto.FSRead, Arg1: ino, Arg2: int64(vn), Arg3: voff,
			})
			want := ref[voff:]
			if int64(vn) < int64(len(want)) {
				want = want[:vn]
			}
			if !bytes.Equal(rep.Payload, want) {
				t.Errorf("step %d: read mismatch at %d+%d", step, voff, vn)
				return
			}
		}
		done = true
	})
	r.env.Run(10 * time.Minute)
	if !done {
		t.Fatal("model check did not finish")
	}
}
