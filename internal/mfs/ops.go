package mfs

import (
	"encoding/binary"
	"errors"
	"strings"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
)

// File-system operations: bitmaps, inodes, zone mapping, directories,
// and the request dispatcher. The server is stateless with respect to
// clients (handles are inode numbers; offsets are explicit), which keeps
// its own recovery story trivial.

var (
	errNoEnt   = errors.New("mfs: no such file")
	errExist   = errors.New("mfs: file exists")
	errNoSpace = errors.New("mfs: no space")
	errIsDir   = errors.New("mfs: is a directory")
	errNotDir  = errors.New("mfs: not a directory")
	errBadCall = errors.New("mfs: bad request")
)

func errCode(err error) int64 {
	switch {
	case err == nil:
		return proto.OK
	case errors.Is(err, errNoEnt):
		return proto.ErrNotFound
	case errors.Is(err, errExist):
		return proto.ErrExist
	case errors.Is(err, errNoSpace):
		return proto.ErrNoSpace
	case errors.Is(err, errIsDir), errors.Is(err, errNotDir), errors.Is(err, errBadCall):
		return proto.ErrBadCall
	default:
		return proto.ErrIO
	}
}

// fsOpName names a file-system request type for trace spans.
func fsOpName(typ int32) string {
	switch typ {
	case proto.FSOpen:
		return "open"
	case proto.FSStat:
		return "stat"
	case proto.FSCreate:
		return "create"
	case proto.FSMkdir:
		return "mkdir"
	case proto.FSRead:
		return "read"
	case proto.FSWrite:
		return "write"
	case proto.FSUnlink:
		return "unlink"
	case proto.FSReaddir:
		return "readdir"
	case proto.FSSync:
		return "sync"
	default:
		return "badcall"
	}
}

// serve dispatches one file-system request and replies. The whole request
// runs as a span under the caller's context, so block-driver calls (and
// reissues after a driver crash) nest under the user-visible operation.
func (s *Server) serve(m kernel.Message) {
	sc := s.ctx.BeginWork("fs."+fsOpName(m.Type), m.Trace)
	status := s.serveInner(m, sc)
	s.ctx.EndWork(sc, status)
}

func (s *Server) serveInner(m kernel.Message, sc obs.SpanContext) int64 {
	if s.sb == nil {
		// Not mounted yet (driver still coming up at boot): the volume
		// appears shortly; make the caller retry.
		if !s.driverUp {
			s.awaitDriver()
		}
		if s.sb == nil {
			s.mount()
		}
		if s.sb == nil {
			_ = s.ctx.Send(m.Source, kernel.Message{Type: proto.FSReply, Arg1: proto.ErrAgain, Trace: sc})
			return 1
		}
	}
	reply := kernel.Message{Type: proto.FSReply, Trace: sc}
	switch m.Type {
	case proto.FSOpen, proto.FSStat:
		ino, in, err := s.lookupPath(m.Name)
		if err != nil {
			reply.Arg1 = errCode(err)
		} else {
			reply.Arg1 = int64(ino)
			reply.Arg2 = in.Size
			if in.Mode == ModeDir {
				reply.Arg3 = 1
			}
		}
	case proto.FSCreate:
		ino, err := s.create(m.Name, ModeFile)
		if err != nil {
			reply.Arg1 = errCode(err)
		} else {
			reply.Arg1 = int64(ino)
		}
	case proto.FSMkdir:
		ino, err := s.create(m.Name, ModeDir)
		if err != nil {
			reply.Arg1 = errCode(err)
		} else {
			reply.Arg1 = int64(ino)
		}
	case proto.FSRead:
		data, err := s.readFile(uint32(m.Arg1), m.Arg3, int(m.Arg2))
		if err != nil {
			reply.Arg1 = errCode(err)
		} else {
			reply.Arg1 = int64(len(data))
			reply.Payload = data
		}
	case proto.FSWrite:
		n, err := s.writeFile(uint32(m.Arg1), m.Arg3, m.Payload)
		if err != nil {
			reply.Arg1 = errCode(err)
		} else {
			reply.Arg1 = int64(n)
		}
	case proto.FSUnlink:
		reply.Arg1 = errCode(s.unlink(m.Name))
	case proto.FSReaddir:
		names, err := s.readdir(m.Name)
		if err != nil {
			reply.Arg1 = errCode(err)
		} else {
			reply.Payload = []byte(strings.Join(names, "\n"))
			reply.Arg1 = int64(len(names))
		}
	case proto.FSSync:
		reply.Arg1 = proto.OK // write-through: nothing buffered
	default:
		reply.Arg1 = proto.ErrBadCall
	}
	_ = s.ctx.Send(m.Source, reply)
	if reply.Arg1 < 0 {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------
// Inodes

func (s *Server) readInode(ino uint32) (inode, error) {
	if ino == 0 || ino >= s.sb.NInodes {
		return inode{}, errBadCall
	}
	blockNo := int64(s.sb.itblStart() + ino/InodesPerBlock)
	blk, err := s.readBlock(blockNo)
	if err != nil {
		return inode{}, err
	}
	return decodeInode(blk[(ino%InodesPerBlock)*InodeSize:]), nil
}

func (s *Server) writeInode(ino uint32, in inode) error {
	blockNo := int64(s.sb.itblStart() + ino/InodesPerBlock)
	blk, err := s.readBlock(blockNo)
	if err != nil {
		return err
	}
	cp := make([]byte, BlockSize)
	copy(cp, blk)
	in.encode(cp[(ino%InodesPerBlock)*InodeSize:])
	return s.writeBlock(blockNo, cp)
}

// ---------------------------------------------------------------------
// Bitmaps

// allocFromBitmap finds and sets a clear bit in the bitmap region
// starting at block start, spanning blocks, with a cap of limit bits.
func (s *Server) allocFromBitmap(start, blocks, limit uint32) (uint32, error) {
	for b := uint32(0); b < blocks; b++ {
		blk, err := s.readBlock(int64(start + b))
		if err != nil {
			return 0, err
		}
		for i, by := range blk {
			if by == 0xFF {
				continue
			}
			for bit := 0; bit < 8; bit++ {
				idx := b*BlockSize*8 + uint32(i*8+bit)
				if idx >= limit {
					return 0, errNoSpace
				}
				if by&(1<<uint(bit)) == 0 {
					cp := make([]byte, BlockSize)
					copy(cp, blk)
					cp[i] |= 1 << uint(bit)
					if err := s.writeBlock(int64(start+b), cp); err != nil {
						return 0, err
					}
					return idx, nil
				}
			}
		}
	}
	return 0, errNoSpace
}

func (s *Server) freeInBitmap(start uint32, idx uint32) error {
	b := idx / (BlockSize * 8)
	blk, err := s.readBlock(int64(start + b))
	if err != nil {
		return err
	}
	cp := make([]byte, BlockSize)
	copy(cp, blk)
	cp[(idx%(BlockSize*8))/8] &^= 1 << uint(idx%8)
	return s.writeBlock(int64(start+b), cp)
}

func (s *Server) allocInode() (uint32, error) {
	return s.allocFromBitmap(s.sb.imapStart(), s.sb.ImapBlocks, s.sb.NInodes)
}

func (s *Server) allocZone() (uint32, error) {
	z, err := s.allocFromBitmap(s.sb.zmapStart(), s.sb.ZmapBlocks, s.sb.NZones)
	if err != nil {
		return 0, err
	}
	// Fresh zones read as zeros.
	if err := s.writeBlock(int64(z), make([]byte, BlockSize)); err != nil {
		return 0, err
	}
	return z, nil
}

// ---------------------------------------------------------------------
// Zone mapping

// bmap maps a file zone index to a disk zone; with alloc it grows the
// file, allocating indirect blocks as needed.
func (s *Server) bmap(in *inode, zi int64, alloc bool) (uint32, error) {
	if zi < NDirect {
		z := in.Zones[zi]
		if z == 0 && alloc {
			nz, err := s.allocZone()
			if err != nil {
				return 0, err
			}
			in.Zones[zi] = nz
			return nz, nil
		}
		return z, nil
	}
	zi -= NDirect
	if zi < ZonesPerBlock {
		return s.mapThroughIndirect(&in.Indirect, zi, alloc)
	}
	zi -= ZonesPerBlock
	if zi < int64(ZonesPerBlock)*ZonesPerBlock {
		// Double indirect: first level picks the indirect block.
		if in.DblInd == 0 {
			if !alloc {
				return 0, nil
			}
			nz, err := s.allocZone()
			if err != nil {
				return 0, err
			}
			in.DblInd = nz
		}
		di := zi / ZonesPerBlock
		blk, err := s.readBlock(int64(in.DblInd))
		if err != nil {
			return 0, err
		}
		ind := binary.LittleEndian.Uint32(blk[4*di:])
		if ind == 0 {
			if !alloc {
				return 0, nil
			}
			nz, err := s.allocZone()
			if err != nil {
				return 0, err
			}
			ind = nz
			cp := make([]byte, BlockSize)
			copy(cp, blk)
			binary.LittleEndian.PutUint32(cp[4*di:], ind)
			if err := s.writeBlock(int64(in.DblInd), cp); err != nil {
				return 0, err
			}
		}
		return s.mapThroughIndirect(&ind, zi%ZonesPerBlock, alloc)
	}
	return 0, errNoSpace
}

// mapThroughIndirect resolves one level of indirection rooted at *root.
func (s *Server) mapThroughIndirect(root *uint32, idx int64, alloc bool) (uint32, error) {
	if *root == 0 {
		if !alloc {
			return 0, nil
		}
		nz, err := s.allocZone()
		if err != nil {
			return 0, err
		}
		*root = nz
	}
	blk, err := s.readBlock(int64(*root))
	if err != nil {
		return 0, err
	}
	z := binary.LittleEndian.Uint32(blk[4*idx:])
	if z == 0 && alloc {
		nz, err := s.allocZone()
		if err != nil {
			return 0, err
		}
		z = nz
		cp := make([]byte, BlockSize)
		copy(cp, blk)
		binary.LittleEndian.PutUint32(cp[4*idx:], z)
		if err := s.writeBlock(int64(*root), cp); err != nil {
			return 0, err
		}
	}
	return z, nil
}

// ---------------------------------------------------------------------
// File data

// readFile reads up to n bytes at off, coalescing contiguous zone runs
// into single driver transfers.
func (s *Server) readFile(ino uint32, off int64, n int) ([]byte, error) {
	in, err := s.readInode(ino)
	if err != nil {
		return nil, err
	}
	if in.Mode != ModeFile {
		return nil, errIsDir
	}
	if off >= in.Size {
		return nil, nil // EOF
	}
	if int64(n) > in.Size-off {
		n = int(in.Size - off)
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		zi := (off + int64(len(out))) / BlockSize
		inblk := (off + int64(len(out))) % BlockSize
		// Find the contiguous disk-zone run starting here.
		first, err := s.bmap(&in, zi, false)
		if err != nil {
			return nil, err
		}
		if first == 0 {
			// Sparse hole: zeros.
			take := BlockSize - int(inblk)
			if take > n-len(out) {
				take = n - len(out)
			}
			out = append(out, make([]byte, take)...)
			continue
		}
		run := int64(1)
		need := (int64(n-len(out)) + inblk + BlockSize - 1) / BlockSize
		for run < need {
			z, err := s.bmap(&in, zi+run, false)
			if err != nil {
				return nil, err
			}
			if z != uint32(int64(first)+run) {
				break
			}
			run++
		}
		buf := make([]byte, run*BlockSize)
		if err := s.readZones(int64(first), run, buf); err != nil {
			return nil, err
		}
		take := int(run*BlockSize - inblk)
		if take > n-len(out) {
			take = n - len(out)
		}
		out = append(out, buf[inblk:inblk+int64(take)]...)
	}
	return out, nil
}

// writeFile writes data at off, growing the file as needed.
func (s *Server) writeFile(ino uint32, off int64, data []byte) (int, error) {
	in, err := s.readInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Mode != ModeFile {
		return 0, errIsDir
	}
	written := 0
	for written < len(data) {
		pos := off + int64(written)
		zi := pos / BlockSize
		inblk := pos % BlockSize
		z, err := s.bmap(&in, zi, true)
		if err != nil {
			return written, err
		}
		take := BlockSize - int(inblk)
		if take > len(data)-written {
			take = len(data) - written
		}
		if inblk == 0 && take == BlockSize {
			if err := s.writeZones(int64(z), 1, data[written:written+BlockSize]); err != nil {
				return written, err
			}
		} else {
			blk, err := s.readBlock(int64(z))
			if err != nil {
				return written, err
			}
			cp := make([]byte, BlockSize)
			copy(cp, blk)
			copy(cp[inblk:], data[written:written+take])
			if err := s.writeBlock(int64(z), cp); err != nil {
				return written, err
			}
		}
		written += take
	}
	if off+int64(written) > in.Size {
		in.Size = off + int64(written)
	}
	if err := s.writeInode(ino, in); err != nil {
		return written, err
	}
	return written, nil
}

// ---------------------------------------------------------------------
// Directories and paths

// splitPath normalizes "/a/b/c" into components.
func splitPath(path string) []string {
	var comps []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			comps = append(comps, c)
		}
	}
	return comps
}

// lookupPath resolves a path to (ino, inode).
func (s *Server) lookupPath(path string) (uint32, inode, error) {
	ino := uint32(RootIno)
	in, err := s.readInode(ino)
	if err != nil {
		return 0, inode{}, err
	}
	for _, comp := range splitPath(path) {
		if in.Mode != ModeDir {
			return 0, inode{}, errNotDir
		}
		next, err := s.dirLookup(&in, comp)
		if err != nil {
			return 0, inode{}, err
		}
		ino = next
		in, err = s.readInode(ino)
		if err != nil {
			return 0, inode{}, err
		}
	}
	return ino, in, nil
}

// dirLookup finds a name in a directory inode.
func (s *Server) dirLookup(dir *inode, name string) (uint32, error) {
	ents, err := s.readDirents(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.Ino != 0 && e.Name == name {
			return e.Ino, nil
		}
	}
	return 0, errNoEnt
}

func (s *Server) readDirents(dir *inode) ([]dirent, error) {
	var ents []dirent
	for off := int64(0); off < dir.Size; off += BlockSize {
		zi := off / BlockSize
		z, err := s.bmap(dir, zi, false)
		if err != nil {
			return nil, err
		}
		if z == 0 {
			continue
		}
		blk, err := s.readBlock(int64(z))
		if err != nil {
			return nil, err
		}
		limit := dir.Size - off
		if limit > BlockSize {
			limit = BlockSize
		}
		for p := int64(0); p+DirentSize <= limit; p += DirentSize {
			ents = append(ents, decodeDirent(blk[p:]))
		}
	}
	return ents, nil
}

// create makes a file or directory at path.
func (s *Server) create(path string, mode uint32) (uint32, error) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return 0, errExist
	}
	name := comps[len(comps)-1]
	if len(name) > NameMax {
		return 0, errBadCall
	}
	dirPath := "/" + strings.Join(comps[:len(comps)-1], "/")
	dirIno, dir, err := s.lookupPath(dirPath)
	if err != nil {
		return 0, err
	}
	if dir.Mode != ModeDir {
		return 0, errNotDir
	}
	if _, err := s.dirLookup(&dir, name); err == nil {
		return 0, errExist
	}
	ino, err := s.allocInode()
	if err != nil {
		return 0, err
	}
	if err := s.writeInode(ino, inode{Mode: mode}); err != nil {
		return 0, err
	}
	if err := s.dirAdd(dirIno, &dir, dirent{Ino: ino, Name: name}); err != nil {
		return 0, err
	}
	return ino, nil
}

// dirAdd appends (or reuses a free slot for) an entry.
func (s *Server) dirAdd(dirIno uint32, dir *inode, e dirent) error {
	// Scan for a free slot.
	for off := int64(0); off < dir.Size; off += DirentSize {
		z, err := s.bmap(dir, off/BlockSize, false)
		if err != nil {
			return err
		}
		if z == 0 {
			continue
		}
		blk, err := s.readBlock(int64(z))
		if err != nil {
			return err
		}
		p := off % BlockSize
		if decodeDirent(blk[p:]).Ino == 0 {
			cp := make([]byte, BlockSize)
			copy(cp, blk)
			encodeDirent(e, cp[p:])
			return s.writeBlock(int64(z), cp)
		}
	}
	// Append at the end.
	off := dir.Size
	z, err := s.bmap(dir, off/BlockSize, true)
	if err != nil {
		return err
	}
	blk, err := s.readBlock(int64(z))
	if err != nil {
		return err
	}
	cp := make([]byte, BlockSize)
	copy(cp, blk)
	encodeDirent(e, cp[off%BlockSize:])
	if err := s.writeBlock(int64(z), cp); err != nil {
		return err
	}
	dir.Size = off + DirentSize
	return s.writeInode(dirIno, *dir)
}

// unlink removes a file (directories must be empty).
func (s *Server) unlink(path string) error {
	comps := splitPath(path)
	if len(comps) == 0 {
		return errBadCall
	}
	name := comps[len(comps)-1]
	dirPath := "/" + strings.Join(comps[:len(comps)-1], "/")
	_, dir, err := s.lookupPath(dirPath)
	if err != nil {
		return err
	}
	ino, err := s.dirLookup(&dir, name)
	if err != nil {
		return err
	}
	in, err := s.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode == ModeDir {
		ents, err := s.readDirents(&in)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.Ino != 0 {
				return errExist // not empty
			}
		}
	}
	// Clear the directory entry.
	if err := s.dirRemove(&dir, name); err != nil {
		return err
	}
	// Free data zones and the inode.
	if err := s.truncate(&in); err != nil {
		return err
	}
	if err := s.writeInode(ino, inode{}); err != nil {
		return err
	}
	return s.freeInBitmap(s.sb.imapStart(), ino)
}

func (s *Server) dirRemove(dir *inode, name string) error {
	for off := int64(0); off < dir.Size; off += DirentSize {
		z, err := s.bmap(dir, off/BlockSize, false)
		if err != nil {
			return err
		}
		if z == 0 {
			continue
		}
		blk, err := s.readBlock(int64(z))
		if err != nil {
			return err
		}
		p := off % BlockSize
		if e := decodeDirent(blk[p:]); e.Ino != 0 && e.Name == name {
			cp := make([]byte, BlockSize)
			copy(cp, blk)
			encodeDirent(dirent{}, cp[p:])
			return s.writeBlock(int64(z), cp)
		}
	}
	return errNoEnt
}

// truncate frees all zones of an inode.
func (s *Server) truncate(in *inode) error {
	freeZone := func(z uint32) error {
		if z == 0 {
			return nil
		}
		return s.freeInBitmap(s.sb.zmapStart(), z)
	}
	for i := 0; i < NDirect; i++ {
		if err := freeZone(in.Zones[i]); err != nil {
			return err
		}
	}
	freeIndirect := func(root uint32) error {
		if root == 0 {
			return nil
		}
		blk, err := s.readBlock(int64(root))
		if err != nil {
			return err
		}
		for i := 0; i < ZonesPerBlock; i++ {
			if err := freeZone(binary.LittleEndian.Uint32(blk[4*i:])); err != nil {
				return err
			}
		}
		return freeZone(root)
	}
	if err := freeIndirect(in.Indirect); err != nil {
		return err
	}
	if in.DblInd != 0 {
		blk, err := s.readBlock(int64(in.DblInd))
		if err != nil {
			return err
		}
		for i := 0; i < ZonesPerBlock; i++ {
			if err := freeIndirect(binary.LittleEndian.Uint32(blk[4*i:])); err != nil {
				return err
			}
		}
		if err := freeZone(in.DblInd); err != nil {
			return err
		}
	}
	return nil
}

// readdir lists a directory's entry names.
func (s *Server) readdir(path string) ([]string, error) {
	_, dir, err := s.lookupPath(path)
	if err != nil {
		return nil, err
	}
	if dir.Mode != ModeDir {
		return nil, errNotDir
	}
	ents, err := s.readDirents(&dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.Ino != 0 {
			names = append(names, e.Name)
		}
	}
	return names, nil
}
