package mfs

import (
	"errors"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// Geometry describes the served volume.
type Geometry struct {
	Sectors int64
}

// Config configures a file server instance.
type Config struct {
	// DS is the data store endpoint.
	DS kernel.Endpoint
	// DriverLabel is the block driver's stable name ("disk.sata").
	DriverLabel string
	// Disk is the volume geometry.
	Disk Geometry
	// CacheBlocks bounds the block cache (default 512 = 2 MiB).
	CacheBlocks int
	// PollInterval, when nonzero, replaces the data store's
	// publish/subscribe reintegration with periodic DSLookup polling —
	// the strawman the paper's pub-sub design avoids. Used by the
	// ablation benchmarks only.
	PollInterval sim.Time
}

// Stats counts file-server events for experiments.
type Stats struct {
	DriverCalls    int
	DriverFailures int // calls that failed because the driver died
	Reissues       int // pending requests retried after a restart
	Recoveries     int // driver restarts absorbed
	Complaints     int // protocol violations reported to RS
	CacheHits      int
	CacheMisses    int
}

// Server is the file server.
type Server struct {
	cfg Config
	ctx *kernel.Ctx

	driverEp kernel.Endpoint
	driverUp bool

	// episode is the trace context the last driver-recovery announcement
	// arrived under (the RS recovery episode's trace); the next reissued
	// request links to it with a "recovered-by" edge.
	episode obs.SpanContext

	sb    *Superblock
	cache *blockCache

	bytes *obs.Counter // bytes moved through the driver, cached per binding

	stats Stats
}

// New creates a file server; run its Binary as an RS service.
func New(cfg Config) *Server {
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = 512
	}
	return &Server{cfg: cfg}
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Binary returns the service binary.
func (s *Server) Binary() func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) { s.run(c) }
}

var errDriverDown = errors.New("mfs: block driver unavailable")

// run is the MFS message loop.
func (s *Server) run(c *kernel.Ctx) {
	s.ctx = c
	// Fresh per-incarnation state: a restarted file server remounts and
	// rebinds its driver; the write-through cache holds nothing dirty.
	s.cache = newBlockCache(s.cfg.CacheBlocks)
	s.sb = nil
	s.driverEp = 0
	s.driverUp = false
	// Subscribe to the disk driver's naming updates (or rely on polling
	// when the ablation's PollInterval is set).
	if s.cfg.PollInterval == 0 {
		if _, err := c.SendRec(s.cfg.DS, kernel.Message{
			Type: proto.DSSubscribe, Name: s.cfg.DriverLabel,
		}); err != nil {
			c.Panic("subscribe: " + err.Error())
		}
	} else if ep, ok := s.pollOnce(); ok {
		s.onDriverUpdate(kernel.Message{Type: proto.DSUpdate, Arg1: int64(ep)})
	}
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		switch m.Type {
		case proto.RSPing: // [recovery] heartbeat
			_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
		case proto.DSUpdate:
			s.onDriverUpdate(m) // [recovery]
		case proto.FSOpen, proto.FSCreate, proto.FSRead, proto.FSWrite,
			proto.FSUnlink, proto.FSStat, proto.FSSync, proto.FSMkdir,
			proto.FSReaddir:
			s.serve(m)
		}
	}
}

// onDriverUpdate notes the (re)started driver's endpoint and reopens the
// device, re-establishing the device-driver mapping (§6.2).
func (s *Server) onDriverUpdate(m kernel.Message) {
	if m.Arg1 == proto.InvalidEndpoint { // [recovery]
		s.driverUp = false // [recovery]
		return             // [recovery]
	}
	restarted := s.driverEp != 0 && s.driverEp != kernel.Endpoint(m.Arg1) // [recovery]
	s.driverEp = kernel.Endpoint(m.Arg1)
	s.bytes = s.ctx.Obs().Metrics().Counter("mfs.bytes." + s.cfg.DriverLabel)
	// Reopen minor devices on the fresh instance.
	reply, err := s.ctx.SendRec(s.driverEp, kernel.Message{Type: proto.BdevOpen, Arg1: 0})
	if err != nil || reply.Arg1 != proto.OK {
		s.driverUp = false
		return
	}
	s.driverUp = true
	if restarted { // [recovery]
		s.stats.Recoveries++                                                                          // [recovery]
		s.ctx.Obs().Emit(obs.KindReintegrate, s.ctx.Label(), s.cfg.DriverLabel, int64(s.driverEp), 0) // [recovery]
		s.episode = m.Trace                                                                           // [recovery]
	}
	if s.sb == nil {
		s.mount()
	}
}

// mount reads the superblock once the driver is first available.
func (s *Server) mount() {
	blk, err := s.readBlock(0)
	if err != nil {
		s.ctx.Logf("mount: %v", err)
		return
	}
	sb, err := decodeSuperblock(blk)
	if err != nil {
		s.ctx.Logf("mount: %v", err)
		return
	}
	s.sb = sb
	s.ctx.Logf("mounted: %d zones, %d inodes", sb.NZones, sb.NInodes)
}

// rawIO performs one block-driver transfer, transparently absorbing
// driver failures: on a dead driver the request is marked pending, the
// server blocks until the data store publishes the restarted driver, and
// the idempotent operation is reissued (§6.2). It only returns once the
// transfer succeeded (or the volume is impossible, e.g. out of range).
//
// Each attempt is its own span under the enclosing request's context: an
// attempt the driver's death interrupts is orphaned, and the reissue is
// linked back to it ("retry-of") and to the RS recovery episode that
// revived the driver ("recovered-by") — the causal arc the paper's
// transparent-recovery claim is about.
func (s *Server) rawIO(write bool, firstSector int64, count int64, buf []byte) error {
	typ := proto.BdevRead
	opName := "bdev.read"
	access := kernel.GrantWrite
	if write {
		typ = proto.BdevWrite
		opName = "bdev.write"
		access = kernel.GrantRead
	}
	reqCtx := s.ctx.TraceCtx()
	var orphaned obs.SpanContext // the last crash-interrupted attempt
	for attempt := 0; ; attempt++ {
		if !s.driverUp { // [recovery]
			s.awaitDriver() // [recovery]
		}
		sc := s.ctx.BeginWork(opName, reqCtx)
		if orphaned.Valid() { // [recovery]
			s.ctx.Obs().LinkSpan(s.ctx.Label(), sc, orphaned, "retry-of") // [recovery]
			orphaned = obs.SpanContext{}                                  // [recovery]
			if s.episode.Valid() {                                        // [recovery]
				s.ctx.Obs().LinkSpan(s.ctx.Label(), sc, s.episode, "recovered-by") // [recovery]
				s.episode = obs.SpanContext{}                                      // [recovery]
			} // [recovery]
		}
		grant := s.ctx.CreateGrant(buf, access, s.driverEp)
		s.stats.DriverCalls++
		reply, err := s.ctx.SendRec(s.driverEp, kernel.Message{
			Type:  typ,
			Arg1:  firstSector,
			Arg2:  count,
			Grant: grant,
		})
		s.ctx.RevokeGrant(grant)
		switch {
		case err != nil:
			// The rendezvous was aborted: the driver died holding our
			// request. Mark pending and wait for the restart.
			s.ctx.OrphanWork(sc, "crash:"+s.cfg.DriverLabel) // [recovery]
			orphaned = sc                                    // [recovery]
			s.stats.DriverFailures++                         // [recovery]
			s.driverUp = false                               // [recovery]
			s.stats.Reissues++                               // [recovery]
			continue                                         // [recovery]
		case reply.Type != proto.BdevReply:
			// Protocol violation: complain to the reincarnation server
			// (defect class 5) and retry against the replacement.
			s.ctx.OrphanWork(sc, "misbehavior:"+s.cfg.DriverLabel) // [recovery]
			orphaned = sc                                          // [recovery]
			s.complain()                                           // [recovery]
			s.stats.DriverFailures++                               // [recovery]
			s.driverUp = false                                     // [recovery]
			continue                                               // [recovery]
		case reply.Arg1 == proto.ErrIO:
			// The driver survived but the transfer failed (e.g. it was
			// restarted mid-command and lost the device state); retry.
			s.ctx.EndWork(sc, 1)     // [recovery]
			orphaned = sc            // [recovery]
			s.stats.DriverFailures++ // [recovery]
			s.stats.Reissues++       // [recovery]
			continue                 // [recovery]
		case reply.Arg1 < 0:
			s.ctx.EndWork(sc, 1)
			return errDriverDown
		}
		s.bytes.Add(int64(len(buf)))
		s.ctx.EndWork(sc, 0)
		return nil
	}
}

// awaitDriver blocks until the data store announces a live driver — "the
// file server blocks and waits until the disk driver has been restarted".
// While waiting it keeps answering the reincarnation server's heartbeats,
// so being blocked on a dead driver is not mistaken for being stuck.
func (s *Server) awaitDriver() { // [recovery]
	if s.cfg.PollInterval > 0 { // [recovery]
		s.awaitDriverPolling() // [recovery]
		return                 // [recovery]
	} // [recovery]
	for !s.driverUp { // [recovery]
		s.answerPings()                              // [recovery]
		if m, ok := s.ctx.TryReceive(s.cfg.DS); ok { // [recovery]
			if m.Type == proto.DSUpdate { // [recovery]
				s.onDriverUpdate(m) // [recovery]
			} // [recovery]
			continue // [recovery]
		} // [recovery]
		s.ctx.Sleep(20 * sim.Time(1e6)) // [recovery]
	} // [recovery]
}

// answerPings drains queued heartbeat requests; only messages from the
// reincarnation server are touched, so client requests stay queued in
// arrival order.
func (s *Server) answerPings() { // [recovery]
	rsEp := s.ctx.LookupLabel("rs") // [recovery]
	if rsEp == kernel.None {        // [recovery]
		return // [recovery]
	} // [recovery]
	for { // [recovery]
		m, ok := s.ctx.TryReceive(rsEp) // [recovery]
		if !ok {                        // [recovery]
			return // [recovery]
		} // [recovery]
		if m.Type == proto.RSPing { // [recovery]
			_ = s.ctx.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
		} // [recovery]
	} // [recovery]
}

// awaitDriverPolling is the ablation's strawman: rediscover the driver by
// periodic name lookups instead of subscription pushes. Each restart goes
// unnoticed for up to a full poll interval.
func (s *Server) awaitDriverPolling() { // [recovery]
	for !s.driverUp { // [recovery]
		// Sleep one poll interval in heartbeat-friendly slices.
		for slept := sim.Time(0); slept < s.cfg.PollInterval; { // [recovery]
			s.answerPings()                      // [recovery]
			step := 100 * sim.Time(1e6)          // [recovery]
			if step > s.cfg.PollInterval-slept { // [recovery]
				step = s.cfg.PollInterval - slept // [recovery]
			} // [recovery]
			s.ctx.Sleep(step) // [recovery]
			slept += step     // [recovery]
		} // [recovery]
		if ep, ok := s.pollOnce(); ok { // [recovery]
			s.onDriverUpdate(kernel.Message{Type: proto.DSUpdate, Arg1: int64(ep)}) // [recovery]
		} // [recovery]
	} // [recovery]
}

// pollOnce asks the data store for the driver's current endpoint.
func (s *Server) pollOnce() (kernel.Endpoint, bool) { // [recovery]
	reply, err := s.ctx.SendRec(s.cfg.DS, kernel.Message{ // [recovery]
		Type: proto.DSLookup, Name: s.cfg.DriverLabel, // [recovery]
	}) // [recovery]
	if err != nil || reply.Arg2 != proto.OK { // [recovery]
		return kernel.None, false // [recovery]
	} // [recovery]
	return kernel.Endpoint(reply.Arg1), true // [recovery]
}

// complain reports the malfunctioning driver to the reincarnation server.
func (s *Server) complain() { // [recovery]
	s.stats.Complaints++            // [recovery]
	rsEp := s.ctx.LookupLabel("rs") // [recovery]
	if rsEp == kernel.None {        // [recovery]
		return // [recovery]
	} // [recovery]
	_, _ = s.ctx.SendRec(rsEp, kernel.Message{ // [recovery]
		Type: proto.RSComplain, Name: s.cfg.DriverLabel, // [recovery]
	}) // [recovery]
}

// readBlock returns one FS block, through the cache.
func (s *Server) readBlock(blockNo int64) ([]byte, error) {
	if b, ok := s.cache.get(blockNo); ok {
		s.stats.CacheHits++
		return b, nil
	}
	s.stats.CacheMisses++
	buf := make([]byte, BlockSize)
	if err := s.rawIO(false, blockNo*SectorsPerBlock, SectorsPerBlock, buf); err != nil {
		return nil, err
	}
	s.cache.put(blockNo, buf)
	return buf, nil
}

// writeBlock writes one FS block (write-through).
func (s *Server) writeBlock(blockNo int64, data []byte) error {
	if err := s.rawIO(true, blockNo*SectorsPerBlock, SectorsPerBlock, data); err != nil {
		return err
	}
	s.cache.put(blockNo, data)
	return nil
}

// readZones reads a contiguous zone run directly (bypassing the cache for
// bulk data; this is the dd fast path — one driver command per run).
func (s *Server) readZones(zone int64, n int64, buf []byte) error {
	return s.rawIO(false, zone*SectorsPerBlock, n*SectorsPerBlock, buf)
}

func (s *Server) writeZones(zone int64, n int64, buf []byte) error {
	for i := int64(0); i < n; i++ {
		s.cache.drop(zone + i)
	}
	return s.rawIO(true, zone*SectorsPerBlock, n*SectorsPerBlock, buf)
}

// SetCacheBlocks adjusts the block cache capacity. Takes effect
// immediately on a live cache, or at startup if the server has not run
// yet (the ablation benches resize before boot).
func (s *Server) SetCacheBlocks(n int) {
	s.cfg.CacheBlocks = n
	if s.cache != nil {
		s.cache.cap = n
	}
}
