// Package mfs implements the file server: a MINIX-style on-disk file
// system (superblock, inode/zone bitmaps, inode table with direct,
// indirect and double-indirect zones, hierarchical directories) served
// over the block-driver protocol, with a block cache.
//
// Its recovery role is paper §6.2: disk block I/O is idempotent, so when
// the disk driver dies mid-request — the kernel aborts the rendezvous —
// the file server marks the request pending, blocks until the data store
// announces the restarted driver's new endpoint, reopens its minors, and
// reissues the failed operations. Applications never observe the crash.
// Recovery-specific lines are marked "// [recovery]" for cmd/locstats.
package mfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"resilientos/internal/hw"
)

// On-disk layout constants.
const (
	// BlockSize is the file system block (= zone) size in bytes.
	BlockSize = 4096
	// SectorsPerBlock ties the FS block to disk sectors.
	SectorsPerBlock = BlockSize / hw.SectorSize
	// Magic identifies a formatted volume.
	Magic = 0x52465331 // "RFS1"
	// InodeSize is the on-disk inode record size.
	InodeSize = 64
	// InodesPerBlock derives from the sizes above.
	InodesPerBlock = BlockSize / InodeSize
	// DirentSize is the on-disk directory entry size.
	DirentSize = 64
	// NameMax is the longest file name.
	NameMax = DirentSize - 4 - 1
	// NDirect is the number of direct zones per inode.
	NDirect = 10
	// ZonesPerBlock is the fan-out of an indirect block.
	ZonesPerBlock = BlockSize / 4
	// RootIno is the root directory's inode number.
	RootIno = 1
)

// Inode modes.
const (
	ModeFree uint32 = 0
	ModeFile uint32 = 1
	ModeDir  uint32 = 2
)

// MaxFileSize is the largest representable file.
const MaxFileSize = int64(NDirect+ZonesPerBlock+ZonesPerBlock*ZonesPerBlock) * BlockSize

// Superblock is block 0 of the volume.
type Superblock struct {
	Magic      uint32
	NInodes    uint32
	NZones     uint32 // total zones (= FS blocks) on the volume
	ImapBlocks uint32
	ZmapBlocks uint32
	ITblBlocks uint32
	FirstData  uint32 // first data zone
}

func (sb *Superblock) encode() []byte {
	b := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(b[0:], sb.Magic)
	binary.LittleEndian.PutUint32(b[4:], sb.NInodes)
	binary.LittleEndian.PutUint32(b[8:], sb.NZones)
	binary.LittleEndian.PutUint32(b[12:], sb.ImapBlocks)
	binary.LittleEndian.PutUint32(b[16:], sb.ZmapBlocks)
	binary.LittleEndian.PutUint32(b[20:], sb.ITblBlocks)
	binary.LittleEndian.PutUint32(b[24:], sb.FirstData)
	return b
}

func decodeSuperblock(b []byte) (*Superblock, error) {
	if len(b) < 28 {
		return nil, errors.New("mfs: short superblock")
	}
	sb := &Superblock{
		Magic:      binary.LittleEndian.Uint32(b[0:]),
		NInodes:    binary.LittleEndian.Uint32(b[4:]),
		NZones:     binary.LittleEndian.Uint32(b[8:]),
		ImapBlocks: binary.LittleEndian.Uint32(b[12:]),
		ZmapBlocks: binary.LittleEndian.Uint32(b[16:]),
		ITblBlocks: binary.LittleEndian.Uint32(b[20:]),
		FirstData:  binary.LittleEndian.Uint32(b[24:]),
	}
	if sb.Magic != Magic {
		return nil, fmt.Errorf("mfs: bad magic %#x", sb.Magic)
	}
	return sb, nil
}

// Block indexes of the fixed regions.
func (sb *Superblock) imapStart() uint32 { return 1 }
func (sb *Superblock) zmapStart() uint32 { return 1 + sb.ImapBlocks }
func (sb *Superblock) itblStart() uint32 { return 1 + sb.ImapBlocks + sb.ZmapBlocks }

// inode is the in-memory form of an on-disk inode.
type inode struct {
	Mode     uint32
	Size     int64
	Zones    [NDirect]uint32
	Indirect uint32
	DblInd   uint32
}

func (in *inode) encode(dst []byte) {
	binary.LittleEndian.PutUint32(dst[0:], in.Mode)
	binary.LittleEndian.PutUint64(dst[4:], uint64(in.Size))
	for i := 0; i < NDirect; i++ {
		binary.LittleEndian.PutUint32(dst[12+4*i:], in.Zones[i])
	}
	binary.LittleEndian.PutUint32(dst[12+4*NDirect:], in.Indirect)
	binary.LittleEndian.PutUint32(dst[16+4*NDirect:], in.DblInd)
}

func decodeInode(src []byte) inode {
	var in inode
	in.Mode = binary.LittleEndian.Uint32(src[0:])
	in.Size = int64(binary.LittleEndian.Uint64(src[4:]))
	for i := 0; i < NDirect; i++ {
		in.Zones[i] = binary.LittleEndian.Uint32(src[12+4*i:])
	}
	in.Indirect = binary.LittleEndian.Uint32(src[12+4*NDirect:])
	in.DblInd = binary.LittleEndian.Uint32(src[16+4*NDirect:])
	return in
}

// dirent is a directory entry: inode number + NUL-terminated name.
type dirent struct {
	Ino  uint32
	Name string
}

func encodeDirent(d dirent, dst []byte) {
	binary.LittleEndian.PutUint32(dst[0:], d.Ino)
	n := copy(dst[4:4+NameMax], d.Name)
	for i := 4 + n; i < DirentSize; i++ {
		dst[i] = 0
	}
}

func decodeDirent(src []byte) dirent {
	d := dirent{Ino: binary.LittleEndian.Uint32(src[0:])}
	name := src[4:DirentSize]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	d.Name = string(name)
	return d
}

// PreallocFile describes a file mkfs materializes by allocating zones
// without writing their data blocks: the file's content is whatever the
// disk already holds there (the generated pseudo-random sectors) — this is
// how the Fig. 8 "1-GB file filled with random data" exists without a
// gigabyte of host writes.
type PreallocFile struct {
	Name string
	Size int64
}

// MkfsConfig parameterizes volume creation.
type MkfsConfig struct {
	NInodes uint32 // default 4096
	Ateach  []PreallocFile
}

// Mkfs formats the disk in place (factory image: writes bypass the
// driver). Returns the superblock.
func Mkfs(d *hw.Disk, cfg MkfsConfig) (*Superblock, error) {
	if cfg.NInodes == 0 {
		cfg.NInodes = 4096
	}
	nZones := uint32(d.Sectors() / SectorsPerBlock)
	if nZones < 64 {
		return nil, errors.New("mfs: disk too small")
	}
	sb := &Superblock{
		Magic:      Magic,
		NInodes:    cfg.NInodes,
		NZones:     nZones,
		ImapBlocks: (cfg.NInodes + BlockSize*8 - 1) / (BlockSize * 8),
		ZmapBlocks: (nZones + BlockSize*8 - 1) / (BlockSize * 8),
	}
	sb.ITblBlocks = (cfg.NInodes + InodesPerBlock - 1) / InodesPerBlock
	sb.FirstData = sb.itblStart() + sb.ITblBlocks

	w := &rawWriter{d: d}
	w.writeBlock(0, sb.encode())

	imap := newBitmapImage(int(sb.ImapBlocks))
	zmap := newBitmapImage(int(sb.ZmapBlocks))
	imap.set(0) // inode 0 is reserved
	imap.set(RootIno)
	for z := uint32(0); z < sb.FirstData; z++ {
		zmap.set(int(z)) // metadata zones are in use
	}

	itbl := make([]byte, int(sb.ITblBlocks)*BlockSize)
	nextZone := sb.FirstData
	nextIno := uint32(RootIno + 1)

	// Root directory: one zone.
	rootZone := nextZone
	nextZone++
	zmap.set(int(rootZone))
	root := inode{Mode: ModeDir, Size: 0}
	root.Zones[0] = rootZone
	rootBlock := make([]byte, BlockSize)
	rootEntries := 0

	for _, pf := range cfg.Ateach {
		if pf.Size > MaxFileSize {
			return nil, fmt.Errorf("mfs: %s exceeds max file size", pf.Name)
		}
		ino := nextIno
		nextIno++
		if ino >= cfg.NInodes {
			return nil, errors.New("mfs: out of inodes")
		}
		imap.set(int(ino))
		in := inode{Mode: ModeFile, Size: pf.Size}
		zones := (pf.Size + BlockSize - 1) / BlockSize
		// Direct zones.
		zi := int64(0)
		for ; zi < zones && zi < NDirect; zi++ {
			in.Zones[zi] = nextZone
			zmap.set(int(nextZone))
			nextZone++
		}
		// Single indirect.
		if zi < zones {
			indZone := nextZone
			nextZone++
			zmap.set(int(indZone))
			in.Indirect = indZone
			ind := make([]byte, BlockSize)
			for i := 0; zi < zones && i < ZonesPerBlock; i, zi = i+1, zi+1 {
				binary.LittleEndian.PutUint32(ind[4*i:], nextZone)
				zmap.set(int(nextZone))
				nextZone++
			}
			w.writeBlock(int64(indZone), ind)
		}
		// Double indirect.
		if zi < zones {
			dblZone := nextZone
			nextZone++
			zmap.set(int(dblZone))
			in.DblInd = dblZone
			dbl := make([]byte, BlockSize)
			for di := 0; zi < zones && di < ZonesPerBlock; di++ {
				indZone := nextZone
				nextZone++
				zmap.set(int(indZone))
				binary.LittleEndian.PutUint32(dbl[4*di:], indZone)
				ind := make([]byte, BlockSize)
				for i := 0; zi < zones && i < ZonesPerBlock; i, zi = i+1, zi+1 {
					binary.LittleEndian.PutUint32(ind[4*i:], nextZone)
					zmap.set(int(nextZone))
					nextZone++
				}
				w.writeBlock(int64(indZone), ind)
			}
			w.writeBlock(int64(dblZone), dbl)
		}
		if nextZone >= nZones {
			return nil, errors.New("mfs: out of zones")
		}
		in.encode(itbl[int(ino)*InodeSize:])
		encodeDirent(dirent{Ino: ino, Name: pf.Name}, rootBlock[rootEntries*DirentSize:])
		rootEntries++
		root.Size = int64(rootEntries * DirentSize)
	}

	root.encode(itbl[RootIno*InodeSize:])
	w.writeBlock(int64(rootZone), rootBlock)
	for i := uint32(0); i < sb.ImapBlocks; i++ {
		w.writeBlock(int64(sb.imapStart()+i), imap.block(int(i)))
	}
	for i := uint32(0); i < sb.ZmapBlocks; i++ {
		w.writeBlock(int64(sb.zmapStart()+i), zmap.block(int(i)))
	}
	for i := uint32(0); i < sb.ITblBlocks; i++ {
		w.writeBlock(int64(sb.itblStart()+i), itbl[int(i)*BlockSize:int(i+1)*BlockSize])
	}
	return sb, nil
}

// rawWriter writes FS blocks straight to the disk model (mkfs only).
type rawWriter struct{ d *hw.Disk }

func (w *rawWriter) writeBlock(blockNo int64, data []byte) {
	for s := 0; s < SectorsPerBlock; s++ {
		end := (s + 1) * hw.SectorSize
		if end > len(data) {
			end = len(data)
		}
		var sector []byte
		if s*hw.SectorSize < len(data) {
			sector = data[s*hw.SectorSize : end]
		}
		w.d.PokeSector(blockNo*SectorsPerBlock+int64(s), sector)
	}
}

// bitmapImage builds bitmap blocks during mkfs.
type bitmapImage struct{ bits []byte }

func newBitmapImage(blocks int) *bitmapImage {
	return &bitmapImage{bits: make([]byte, blocks*BlockSize)}
}

func (b *bitmapImage) set(i int) { b.bits[i/8] |= 1 << uint(i%8) }

func (b *bitmapImage) block(i int) []byte {
	return b.bits[i*BlockSize : (i+1)*BlockSize]
}
