package mfs

import "container/list"

// blockCache is a small LRU cache of FS blocks (write-through: entries
// are never dirty, so driver crashes cannot lose buffered writes).
type blockCache struct {
	cap   int
	items map[int64]*list.Element
	order *list.List // front = most recent
}

type cacheEntry struct {
	blockNo int64
	data    []byte
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		cap:   capacity,
		items: make(map[int64]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns a copy-safe reference to a cached block.
func (c *blockCache) get(blockNo int64) ([]byte, bool) {
	el, ok := c.items[blockNo]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts or refreshes a block, evicting the least recently used.
func (c *blockCache) put(blockNo int64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	if el, ok := c.items[blockNo]; ok {
		el.Value.(*cacheEntry).data = cp
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{blockNo: blockNo, data: cp})
	c.items[blockNo] = el
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).blockNo)
	}
}

// drop invalidates a block.
func (c *blockCache) drop(blockNo int64) {
	if el, ok := c.items[blockNo]; ok {
		c.order.Remove(el)
		delete(c.items, blockNo)
	}
}

// Len reports the number of cached blocks.
func (c *blockCache) Len() int { return c.order.Len() }
