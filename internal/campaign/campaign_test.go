package campaign

import (
	"bytes"
	"strings"
	"testing"

	"resilientos"
	"resilientos/internal/fi"
	"resilientos/internal/obs/decision"
)

func TestSeq(t *testing.T) {
	s := Seq(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Seq(3) = %v", s)
	}
}

func TestCellsCanonicalOrder(t *testing.T) {
	cfg := Config{
		Seeds:      []int64{1, 2},
		Victims:    []string{"a", "b"},
		FaultTypes: []fi.FaultType{fi.FaultBitFlip, fi.FaultElide},
	}
	cells := Cells(cfg)
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Seed-major, then victim, then fault type; Index matches position.
	want := []Cell{
		{0, 1, "a", fi.FaultBitFlip}, {1, 1, "a", fi.FaultElide},
		{2, 1, "b", fi.FaultBitFlip}, {3, 1, "b", fi.FaultElide},
		{4, 2, "a", fi.FaultBitFlip}, {5, 2, "a", fi.FaultElide},
		{6, 2, "b", fi.FaultBitFlip}, {7, 2, "b", fi.FaultElide},
	}
	for i, c := range cells {
		if c != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, c, want[i])
		}
	}
}

// testConfig is a small but real matrix: two seeds, one network victim,
// two fault types, three faults per cell.
func testConfig(workers int) Config {
	return Config{
		Seeds:         []int64{1, 2},
		Victims:       []string{resilientos.DriverDP8390},
		FaultTypes:    []fi.FaultType{fi.FaultBitFlip, fi.FaultPointer},
		FaultsPerCell: 3,
		Workers:       workers,
		Invariants:    true,
	}
}

// TestWorkersByteIdentical is the campaign's core determinism contract:
// the rendered report of a sharded run must be byte-identical no matter
// how many workers executed it.
func TestWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell campaign in -short mode")
	}
	var seq, par bytes.Buffer
	Run(testConfig(1)).Render(&seq)
	Run(testConfig(8)).Render(&par)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("-workers=1 and -workers=8 reports differ:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			seq.String(), par.String())
	}
}

// TestCampaignHoldsInvariants runs a real injection campaign with the
// live checker attached to every scheduler step of every cell: the
// recovery architecture must hold every invariant while being shot at.
func TestCampaignHoldsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := Config{
		Seeds:         []int64{7},
		Victims:       []string{resilientos.DriverDP8390},
		FaultTypes:    []fi.FaultType{fi.FaultBitFlip},
		FaultsPerCell: 5,
		Workers:       2,
		Invariants:    true,
	}
	rep := Run(cfg)
	if !rep.Ok() {
		var b bytes.Buffer
		rep.Render(&b)
		t.Fatalf("campaign surfaced invariant violations:\n%s", b.String())
	}
	if rep.Injected == 0 {
		t.Fatal("campaign injected nothing")
	}
}

func TestRenderLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := Config{
		Seeds:         []int64{3},
		Victims:       []string{resilientos.DriverDP8390},
		FaultTypes:    []fi.FaultType{fi.FaultElide},
		FaultsPerCell: 3,
		Invariants:    true,
	}
	var b bytes.Buffer
	Run(cfg).Render(&b)
	out := b.String()
	for _, want := range []string{
		"SWIFI campaign:", "fault type", "injected", "recovered",
		"recovery latency, elided-instruction:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestProgressSerialized(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := testConfig(4)
	cfg.Invariants = false
	var calls []int
	cfg.Progress = func(done, total int) {
		calls = append(calls, done)
		if total != 4 {
			t.Errorf("total = %d, want 4", total)
		}
	}
	Run(cfg)
	if len(calls) != 4 || calls[len(calls)-1] != 4 {
		t.Fatalf("progress calls = %v", calls)
	}
}

// TestDecisionLogWorkerIndependent extends the determinism contract to
// the merged decision trace: the encoded log (including cell-boundary
// marks) must be byte-identical for any worker count, well-formed under
// the offline verifier, and carry a sane availability figure.
func TestDecisionLogWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell campaign in -short mode")
	}
	cfg := testConfig(1)
	cfg.Decisions = true
	seq := Run(cfg)
	cfg = testConfig(8)
	cfg.Decisions = true
	par := Run(cfg)

	a, b := decision.Encode(seq.DecisionLog), decision.Encode(par.DecisionLog)
	if !bytes.Equal(a, b) {
		t.Fatalf("-workers=1 and -workers=8 decision logs differ (%d vs %d bytes)", len(a), len(b))
	}
	if len(seq.DecisionLog) == 0 {
		t.Fatal("campaign with Decisions produced an empty log")
	}
	if problems := decision.Check(seq.DecisionLog); len(problems) != 0 {
		t.Fatalf("merged decision log ill-formed: %v", problems)
	}
	// Cell-boundary marks: one per cell, in canonical order.
	var marks []string
	for _, e := range seq.DecisionLog {
		if e.Kind == decision.KindMark {
			marks = append(marks, e.Detail)
		}
	}
	cells := Cells(cfg)
	if len(marks) != len(cells) {
		t.Fatalf("got %d cell marks, want %d", len(marks), len(cells))
	}
	for i, c := range cells {
		if marks[i] != c.String() {
			t.Fatalf("mark %d = %q, want %q", i, marks[i], c.String())
		}
	}
	if seq.Horizon <= 0 {
		t.Fatal("no measurement horizon")
	}
	av := seq.Availability()
	if av <= 0 || av > 100 {
		t.Fatalf("availability = %v", av)
	}
	// Direct restarts complete in the same virtual instant as detection,
	// so downtime can be zero even with crashes; it must never be
	// negative or exceed the horizon.
	if seq.Downtime < 0 || seq.Downtime > seq.Horizon {
		t.Fatalf("downtime %v outside [0, %v]", seq.Downtime, seq.Horizon)
	}
}

// TestCampaignKnobsChangeBehavior: the counterfactual knobs must be
// plumbed through to the per-cell system — a capped restart budget shows
// up as give-ups in the report and in the decision trace.
func TestCampaignKnobsChangeBehavior(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := Config{
		Seeds:         []int64{7},
		Victims:       []string{resilientos.DriverDP8390},
		FaultTypes:    []fi.FaultType{fi.FaultBitFlip},
		FaultsPerCell: 8,
		MaxRestarts:   1,
		Decisions:     true,
	}
	rep := Run(cfg)
	if rep.Crashes < 2 {
		t.Skipf("seed produced only %d crashes; cannot exercise budget", rep.Crashes)
	}
	if rep.GaveUp == 0 {
		t.Fatal("MaxRestarts=1 produced no give-ups")
	}
	gaveUp := 0
	for _, e := range rep.DecisionLog {
		if e.Kind == decision.KindOutcome && e.Action == "gave-up" {
			gaveUp++
		}
	}
	if gaveUp != rep.GaveUp {
		t.Fatalf("decision trace has %d gave-up outcomes, report says %d", gaveUp, rep.GaveUp)
	}
}
