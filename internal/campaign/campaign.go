// Package campaign shards a large SWIFI (software-implemented fault
// injection) campaign — the seed × fault-type × victim-driver matrix of
// paper §7.2 — across a pool of workers, each running its own fully
// independent deterministic simulation. Because every cell is a separate
// virtual machine with its own seeded scheduler, cells parallelize
// perfectly, and because results are merged in cell-index order, the
// merged report is byte-identical no matter how many workers ran it.
//
// Each cell boots the standard system, drives continuous I/O through the
// victim driver, and repeatedly injects one fault of the cell's fault
// type into the running driver's code image, watching the reincarnation
// server's event log for crashes and recoveries. The merged report is the
// paper-style campaign table (crashes by defect class and recovery rate
// per fault type) plus per-fault-type recovery-latency histograms built
// on internal/obs.
//
// With Invariants enabled, every cell also runs the live invariant
// checker (internal/check) on every scheduler step; a violation is
// reported with the cell's seed, the last mutated instruction, and the
// last K trace events — everything needed to re-run the offending cell.
package campaign

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"resilientos"
	"resilientos/internal/check"
	"resilientos/internal/core"
	"resilientos/internal/fi"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
	"resilientos/internal/perf"
	"resilientos/internal/policy"
	"resilientos/internal/sim"
)

// AllFaultTypes is the paper's seven mutation classes, in paper order.
var AllFaultTypes = []fi.FaultType{
	fi.FaultSrcReg, fi.FaultDstReg, fi.FaultPointer, fi.FaultStale,
	fi.FaultLoopCond, fi.FaultBitFlip, fi.FaultElide,
}

// DefaultVictims is the standard victim set: both network drivers and the
// disk driver (§7.2 injects into the network stack; the disk driver rides
// along because its recovery path — direct restart from RAM, no policy —
// is different enough to be worth sweeping).
var DefaultVictims = []string{
	resilientos.DriverDP8390,
	resilientos.DriverRTL8139,
	resilientos.DriverSATA,
}

// Config parameterizes a campaign.
type Config struct {
	// Seeds are the per-cell base seeds. Use Seq(n) for 1..n.
	Seeds []int64
	// Victims are the driver labels to inject into (DefaultVictims when
	// empty). Network drivers get a download workload, the disk driver a
	// dd workload.
	Victims []string
	// FaultTypes to sweep (AllFaultTypes when empty).
	FaultTypes []fi.FaultType
	// FaultsPerCell is how many faults each cell injects (default 10).
	FaultsPerCell int
	// Workers sizes the worker pool (default 1). Output is identical for
	// any value.
	Workers int
	// Invariants attaches the live checker to every cell.
	Invariants bool
	// TraceTail is the number of trace events kept per cell for violation
	// repro dumps (default 32).
	TraceTail int
	// InjectEvery is the virtual time between injections (default 50ms).
	InjectEvery time.Duration
	// Progress, if set, is called after each finished cell with
	// (done, total). Calls are serialized but unordered across cells.
	Progress func(done, total int)

	// The recovery knobs below parameterize every cell's system — the
	// counterfactual levers cmd/whatif sweeps. Zero values keep the
	// standard machine (500ms heartbeat, 3 misses, unlimited restarts,
	// no policy script).

	// HeartbeatPeriod overrides the driver heartbeat period (0 = the
	// standard 500ms; negative disables heartbeats entirely).
	HeartbeatPeriod time.Duration
	// HeartbeatMisses overrides consecutive misses before a driver is
	// declared stuck (0 = the standard 3).
	HeartbeatMisses int
	// MaxRestarts bounds consecutive recoveries per driver (0 = forever).
	MaxRestarts int
	// Policy / PolicyParams attach a recovery policy script to the
	// network drivers (disk drivers always restart directly, §6.2).
	Policy       *policy.Script
	PolicyParams []string
	// Mechanism selects the recovery mechanism for every cell's drivers
	// (zero = classic kill-and-respawn; microreboot, standby).
	Mechanism core.Mechanism

	// Decisions attaches a recovery-decision recorder to every cell: the
	// per-cell trace lands in CellResult.Decisions, the merged log (with
	// cell-boundary marks) in Report.DecisionLog, and victim availability
	// is derived from the detect→terminal downtime windows.
	Decisions bool

	// Perf, if set, attaches wall-clock telemetry (internal/perf) to
	// every cell's system. The profiler is single-threaded, so fill
	// forces Workers to 1 — which never changes results.
	Perf *perf.Profiler
}

// Seq returns seeds 1..n.
func Seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

func (cfg *Config) fill() {
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = Seq(1)
	}
	if len(cfg.Victims) == 0 {
		cfg.Victims = DefaultVictims
	}
	if len(cfg.FaultTypes) == 0 {
		cfg.FaultTypes = AllFaultTypes
	}
	if cfg.FaultsPerCell <= 0 {
		cfg.FaultsPerCell = 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Perf != nil {
		cfg.Workers = 1
	}
	if cfg.TraceTail <= 0 {
		cfg.TraceTail = 32
	}
	if cfg.InjectEvery <= 0 {
		cfg.InjectEvery = 50 * time.Millisecond
	}
}

// Cell is one point of the campaign matrix.
type Cell struct {
	Index  int
	Seed   int64
	Victim string
	Fault  fi.FaultType
}

func (c Cell) String() string {
	return fmt.Sprintf("seed=%d victim=%s fault=%s", c.Seed, c.Victim, c.Fault)
}

// Cells enumerates the matrix in canonical order: seed-major, then
// victim, then fault type. The order is the merge order, so it defines
// the report layout.
func Cells(cfg Config) []Cell {
	cfg.fill()
	var out []Cell
	for _, seed := range cfg.Seeds {
		for _, victim := range cfg.Victims {
			for _, ft := range cfg.FaultTypes {
				out = append(out, Cell{Index: len(out), Seed: seed, Victim: victim, Fault: ft})
			}
		}
	}
	return out
}

// ViolationReport is one invariant violation with its repro context.
type ViolationReport struct {
	Cell      Cell
	Violation check.Violation
	Injection fi.Injection // last mutation before the violation
	HasInj    bool
	Trace     []obs.Event // last K trace events, oldest first
}

// CellResult is the outcome of one cell's run.
type CellResult struct {
	Cell
	Injected  int
	Crashes   int
	ByDefect  map[core.Defect]int
	Recovered int
	GaveUp    int
	Latencies []sim.Time // completed recovery latencies, detection order

	LastInjection fi.Injection
	HasInjection  bool
	Violations    []ViolationReport

	// Decision-trace results (cfg.Decisions only).
	Decisions []decision.Event // the cell's full decision trace
	Downtime  sim.Time         // victim detect→terminal windows, summed
	Horizon   sim.Time         // measured interval (post-settle to end)
}

// Run executes the whole matrix and merges per-cell results in cell-index
// order. The merged Report is byte-identical for any worker count.
func Run(cfg Config) *Report {
	cfg.fill()
	cells := Cells(cfg)
	results := make([]CellResult, len(cells))

	var (
		mu   sync.Mutex
		done int
	)
	finish := func(i int, r CellResult) {
		results[i] = r
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(cells))
			mu.Unlock()
		}
	}

	if cfg.Workers == 1 || len(cells) <= 1 {
		for i, c := range cells {
			finish(i, runCell(c, cfg))
		}
		return merge(cfg, results)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				finish(i, runCell(cells[i], cfg))
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return merge(cfg, results)
}

// runCell boots one independent system and runs the cell's injections.
func runCell(cell Cell, cfg Config) CellResult {
	res := CellResult{Cell: cell, ByDefect: make(map[core.Defect]int)}

	events := &obs.SliceSink{}
	rec := obs.NewRecorder(events)
	// The timeline and the checker only need the recovery-path events;
	// per-frame IPC kinds dominate trace volume and are dropped.
	rec.Disable(obs.KindIPCSend, obs.KindIPCRecv)

	var decSink *decision.SliceSink
	var decRec *decision.Recorder
	if cfg.Decisions {
		decSink = &decision.SliceSink{}
		decRec = decision.NewRecorder(decSink)
	}

	disk := cell.Victim == resilientos.DriverSATA
	syscfg := resilientos.Config{
		Seed:            cell.Seed,
		Obs:             rec,
		Decisions:       decRec,
		DisableChar:     true,
		DisableDisk:     !disk,
		DisableNet:      disk,
		HeartbeatPeriod: cfg.HeartbeatPeriod,
		HeartbeatMisses: cfg.HeartbeatMisses,
		MaxRestarts:     cfg.MaxRestarts,
		NetPolicy:       cfg.Policy,
		NetPolicyParams: cfg.PolicyParams,
		Mechanism:       cfg.Mechanism,
		Perf:            cfg.Perf,
	}
	if disk {
		syscfg.PreallocFiles = []resilientos.PreallocFile{{Name: "/campaign", Size: 16 << 20}}
	}
	sys := resilientos.New(syscfg)

	var ck *check.Checker
	if cfg.Invariants {
		ck = check.Attach(sys.Env, rec, check.Config{
			Kernel:    sys.Kernel,
			RS:        sys.RS,
			DS:        sys.DS,
			TraceTail: cfg.TraceTail,
		})
		if decRec != nil {
			decRec.AddSink(ck.DecisionSink())
		}
	}

	sys.Run(3 * time.Second) // boot settle
	measureStart := sys.Env.Now()
	startWorkload(sys, cell.Victim)

	injector := fi.New(sys.Env.Rand())
	seen := 0
	harvest := func() {
		evs := sys.RS.Events()
		for _, e := range evs[seen:] {
			if e.Label != cell.Victim {
				continue
			}
			res.Crashes++
			res.ByDefect[e.Defect]++
			if e.Recovered {
				res.Recovered++
			}
			if e.GaveUp {
				res.GaveUp++
			}
		}
		seen = len(evs)
	}

	stall := 0
	for res.Injected < cfg.FaultsPerCell {
		sys.Run(cfg.InjectEvery)
		harvest()
		stall++
		if stall > 2000 {
			break // driver irrecoverably wedged; report what we have
		}
		vm := sys.DriverVM(cell.Victim)
		if vm == nil || sys.RS.ServiceEndpoint(cell.Victim) < 0 {
			continue // down or restarting: nothing to mutate
		}
		inj, ok := injector.TryInject(vm.Img, cell.Fault)
		if !ok {
			break // image has no applicable site for this fault type
		}
		res.LastInjection = inj
		res.HasInjection = true
		res.Injected++
		stall = 0
	}
	// Let the final crash (if any) resolve; policy backoff can hold a
	// restart for a few seconds.
	sys.Run(5 * time.Second)
	if cfg.Decisions {
		// The decision log must end with every episode closed (both the
		// offline verifier and the live checker flag an open one), so
		// wait out policy backoff until recovery quiesces. Idle virtual
		// time is nearly free; the bound only guards a wedged recovery,
		// which the checker then rightly reports.
		for extra := 0; extra < 300 && anyRecovering(sys); extra++ {
			sys.Run(time.Second)
		}
	}
	harvest()

	// Recovery latency is the paper's end-to-end span — defect detected to
	// first dependent server rebound to the fresh instance — stitched from
	// the trace, not RS bookkeeping (which only covers detect→respawn).
	res.Latencies = obs.RecoveryLatencies(obs.Timeline(events.Events()), cell.Victim)

	if decSink != nil {
		end := sys.Env.Now()
		res.Decisions = decSink.Events()
		res.Horizon = end - measureStart
		res.Downtime = downtime(res.Decisions, cell.Victim, end)
	}

	if ck != nil {
		ck.Finish()
		for _, v := range ck.Violations() {
			res.Violations = append(res.Violations, ViolationReport{
				Cell:      cell,
				Violation: v,
				Injection: res.LastInjection,
				HasInj:    res.HasInjection,
				Trace:     ck.TraceTail(),
			})
		}
	}
	return res
}

// anyRecovering reports whether any guarded service is mid-recovery.
func anyRecovering(sys *resilientos.System) bool {
	for _, s := range sys.RS.Services() {
		if s.Recovering {
			return true
		}
	}
	return false
}

// downtime sums the victim's unavailability windows from a decision
// trace: a detect opens a window, the episode's terminal decision closes
// it, and an episode still open at the horizon end counts up to the end
// (a gave-up driver is down for the rest of the run).
func downtime(events []decision.Event, victim string, end sim.Time) sim.Time {
	var total sim.Time
	var openAt sim.Time
	open := false
	for _, e := range events {
		if e.Service != victim {
			continue
		}
		switch e.Kind {
		case decision.KindDetect:
			if !open {
				open = true
				openAt = e.T
			}
		case decision.KindOutcome:
			if open {
				total += e.T - openAt
				open = false
			}
		}
	}
	if open && end > openAt {
		total += end - openAt
	}
	return total
}

// startWorkload drives continuous I/O through the victim so injected
// faults are exercised: back-to-back downloads for network drivers, a
// dd loop for the disk driver.
func startWorkload(sys *resilientos.System, victim string) {
	if victim == resilientos.DriverSATA {
		sys.Spawn("dd-loop", func(p *resilientos.Proc) {
			for {
				f, err := p.Open("/campaign")
				if err != nil {
					p.Sleep(200 * time.Millisecond)
					continue
				}
				for {
					if _, err := f.Read(64 << 10); err != nil {
						break
					}
				}
				f.Close()
			}
		})
		return
	}
	sys.ServeFile(80, 1, 8<<20)
	sys.Spawn("wget-loop", func(p *resilientos.Proc) {
		for {
			conn, err := p.Dial(resilientos.NetLocal, victim, 80)
			if err != nil {
				p.Sleep(200 * time.Millisecond)
				continue
			}
			for {
				if _, err := conn.Read(64 << 10); err != nil {
					break
				}
			}
			conn.Close()
		}
	})
}

// ---------------------------------------------------------------------
// Merging and rendering

// FaultAgg aggregates all cells of one fault type.
type FaultAgg struct {
	Fault     fi.FaultType
	Injected  int
	Crashes   int
	ByDefect  map[core.Defect]int
	Recovered int
	GaveUp    int
	Latencies []sim.Time
	Hist      *obs.Histogram
}

// Report is the merged campaign outcome.
type Report struct {
	Config     Config
	Cells      []CellResult
	ByFault    []*FaultAgg // cfg.FaultTypes order
	Violations []ViolationReport
	Injected   int
	Crashes    int
	Recovered  int
	GaveUp     int

	// Decision-trace aggregates (cfg.Decisions only). DecisionLog is the
	// per-cell traces concatenated in cell-index order, each prefixed by
	// a mark event (svc "campaign", action "cell", detail = the cell
	// spec) — so the merged log is byte-identical for any worker count
	// and offline verifiers reset state at each cell boundary.
	DecisionLog []decision.Event
	Downtime    sim.Time
	Horizon     sim.Time
}

// Availability is the victim-service availability over the summed
// measurement horizon, as a percentage (100 when nothing was measured).
func (r *Report) Availability() float64 {
	if r.Horizon <= 0 {
		return 100
	}
	return 100 * (1 - float64(r.Downtime)/float64(r.Horizon))
}

func merge(cfg Config, results []CellResult) *Report {
	r := &Report{Config: cfg, Cells: results}
	agg := make(map[fi.FaultType]*FaultAgg, len(cfg.FaultTypes))
	for _, ft := range cfg.FaultTypes {
		a := &FaultAgg{Fault: ft, ByDefect: make(map[core.Defect]int), Hist: obs.NewHistogram(nil)}
		agg[ft] = a
		r.ByFault = append(r.ByFault, a)
	}
	for _, res := range results { // cell-index order: deterministic merge
		a := agg[res.Fault]
		a.Injected += res.Injected
		a.Crashes += res.Crashes
		a.Recovered += res.Recovered
		a.GaveUp += res.GaveUp
		for d, n := range res.ByDefect {
			a.ByDefect[d] += n
		}
		a.Latencies = append(a.Latencies, res.Latencies...)
		for _, d := range res.Latencies {
			a.Hist.Observe(int64(d))
		}
		r.Injected += res.Injected
		r.Crashes += res.Crashes
		r.Recovered += res.Recovered
		r.GaveUp += res.GaveUp
		r.Violations = append(r.Violations, res.Violations...)
		if cfg.Decisions {
			r.DecisionLog = append(r.DecisionLog, decision.Event{
				Kind: decision.KindMark, Service: "campaign",
				Action: "cell", Detail: res.Cell.String(),
			})
			r.DecisionLog = append(r.DecisionLog, res.Decisions...)
			r.Downtime += res.Downtime
			r.Horizon += res.Horizon
		}
	}
	return r
}

// Ok reports whether no cell surfaced an invariant violation.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Render writes the campaign report: the paper-style table (crashes by
// defect class and recovery rate per fault type), per-fault-type
// recovery-latency histograms, and any invariant violations with their
// repro context. Output is deterministic: byte-identical for runs that
// produced identical per-cell results, regardless of worker count.
func (r *Report) Render(w io.Writer) {
	cfg := r.Config
	fmt.Fprintf(w, "SWIFI campaign: %d seeds x %d victims x %d fault types, %d faults/cell\n",
		len(cfg.Seeds), len(cfg.Victims), len(cfg.FaultTypes), cfg.FaultsPerCell)
	fmt.Fprintf(w, "victims: %s\n\n", strings.Join(cfg.Victims, ", "))

	pct := func(n, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(n) / float64(of)
	}

	// The paper-style table, one row per fault type.
	fmt.Fprintf(w, "%-20s %9s %8s %6s %6s %6s %10s %7s\n",
		"fault type", "injected", "crashes", "exit", "exc", "hbeat", "recovered", "gaveup")
	for _, a := range r.ByFault {
		fmt.Fprintf(w, "%-20s %9d %8d %6d %6d %6d %5d (%3.0f%%) %7d\n",
			a.Fault, a.Injected, a.Crashes,
			a.ByDefect[core.DefectExit], a.ByDefect[core.DefectException],
			a.ByDefect[core.DefectHeartbeat],
			a.Recovered, pct(a.Recovered, a.Crashes), a.GaveUp)
	}
	fmt.Fprintf(w, "%-20s %9d %8d %6s %6s %6s %5d (%3.0f%%) %7d\n\n",
		"total", r.Injected, r.Crashes, "", "", "",
		r.Recovered, pct(r.Recovered, r.Crashes), r.GaveUp)

	// Per-fault-type recovery-latency histograms.
	for _, a := range r.ByFault {
		fmt.Fprintf(w, "recovery latency, %s: %s\n", a.Fault, obs.Summarize(a.Latencies))
		if len(a.Latencies) == 0 {
			fmt.Fprintln(w)
			continue
		}
		renderHist(w, a.Hist)
		fmt.Fprintln(w)
	}

	if cfg.Decisions {
		fmt.Fprintf(w, "decision trace: %d events; victim availability %.3f%% (downtime %v over %v)\n",
			len(r.DecisionLog), r.Availability(),
			time.Duration(r.Downtime), time.Duration(r.Horizon))
	}

	if len(r.Violations) == 0 {
		if cfg.Invariants {
			fmt.Fprintln(w, "invariants: all held")
		}
		return
	}
	fmt.Fprintf(w, "INVARIANT VIOLATIONS: %d\n", len(r.Violations))
	for i, vr := range r.Violations {
		fmt.Fprintf(w, "\n#%d %s\n   %v\n", i+1, vr.Cell, vr.Violation)
		if vr.HasInj {
			fmt.Fprintf(w, "   last mutation: %v\n", vr.Injection)
		}
		fmt.Fprintf(w, "   repro: -matrix seed=%d victim=%s fault=%s\n",
			vr.Cell.Seed, vr.Cell.Victim, vr.Cell.Fault)
		fmt.Fprintf(w, "   last %d trace events:\n", len(vr.Trace))
		for _, e := range vr.Trace {
			fmt.Fprintf(w, "     %12v %-14s %-12s %s v1=%d v2=%d\n",
				time.Duration(e.T), e.Kind, e.Comp, e.Aux, e.V1, e.V2)
		}
	}
}

// renderHist draws one latency histogram as fixed-width bucket rows.
// Empty buckets outside the occupied range are skipped.
func renderHist(w io.Writer, h *obs.Histogram) {
	buckets := h.Buckets()
	lo, hi := -1, -1
	var max int64
	for i, b := range buckets {
		if b.Count > 0 {
			if lo == -1 {
				lo = i
			}
			hi = i
			if b.Count > max {
				max = b.Count
			}
		}
	}
	if lo == -1 {
		return
	}
	for i := lo; i <= hi; i++ {
		b := buckets[i]
		label := "+Inf"
		if b.UpperBound >= 0 {
			label = time.Duration(b.UpperBound).String()
		}
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int((b.Count*40+max-1)/max))
		}
		fmt.Fprintf(w, "  <= %-8s %6d %s\n", label, b.Count, bar)
	}
}

// sortViolations is a helper for tests: violations sorted by cell index
// then time (the merge already yields this order; sorting makes the
// property explicit where asserted).
func sortViolations(v []ViolationReport) {
	sort.SliceStable(v, func(i, j int) bool { return v[i].Cell.Index < v[j].Cell.Index })
}
