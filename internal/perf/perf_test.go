package perf

import (
	"strings"
	"testing"
	"time"

	"resilientos/internal/sim"
	"resilientos/internal/ucode"
)

// A nil profiler must be usable everywhere: every call site in the
// kernel, obs stack, and cluster uses p.Begin/p.End unconditionally.
func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	p.Begin(RegionStep)
	p.End(RegionStep)
	p.SetSampleEvery(1)
	p.Start(0)
	p.Finish(0)
	p.Attach(sim.NewEnv(1))
	p.AttachLockstep(sim.NewLockstep(1))
	p.AttachVM(&ucode.VM{})
	if p.Depth() != 0 || p.Count(RegionStep) != 0 {
		t.Fatal("nil profiler reported state")
	}
	if got := p.Report(); got.Events != 0 || got.Regions != nil {
		t.Fatal("nil profiler produced a report")
	}
	if p.FoldedLines() != nil {
		t.Fatal("nil profiler produced folded lines")
	}
}

// Self-time accounting: a nested region's inclusive time is charged to
// the parent's childNs, so parent self + child total == parent total.
func TestNestingSelfTime(t *testing.T) {
	p := New()
	p.Begin(RegionStep)
	p.Begin(RegionObs)
	time.Sleep(time.Millisecond)
	p.End(RegionObs)
	p.End(RegionStep)

	if p.Depth() != 0 {
		t.Fatalf("stack depth %d after balanced brackets", p.Depth())
	}
	rep := p.Report()
	var step, obs RegionReport
	for _, rr := range rep.Regions {
		switch rr.Region {
		case "step":
			step = rr
		case "obs":
			obs = rr
		}
	}
	if step.Count != 1 || obs.Count != 1 {
		t.Fatalf("counts: step=%d obs=%d, want 1/1", step.Count, obs.Count)
	}
	if obs.TotalNs <= 0 || step.TotalNs < obs.TotalNs {
		t.Fatalf("inclusive times: step=%d obs=%d", step.TotalNs, obs.TotalNs)
	}
	if got := step.SelfNs + obs.TotalNs; got != step.TotalNs {
		t.Fatalf("step self (%d) + obs total (%d) = %d, want step total %d",
			step.SelfNs, obs.TotalNs, got, step.TotalNs)
	}
}

func TestEndMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("End on empty stack", func() { New().End(RegionStep) })
	mustPanic("End out of order", func() {
		p := New()
		p.Begin(RegionStep)
		p.Begin(RegionObs)
		p.End(RegionStep)
	})
	mustPanic("Finish with open region", func() {
		p := New()
		p.Begin(RegionStep)
		p.Start(0)
		p.Finish(0)
	})
}

// Alloc sampling is count-based: exactly every Kth entry samples,
// independent of wall time, so sample counts are deterministic.
func TestSamplingCadence(t *testing.T) {
	p := New()
	p.SetSampleEvery(4)
	for i := 0; i < 10; i++ {
		p.Begin(RegionUcode)
		p.End(RegionUcode)
	}
	rep := p.Report()
	for _, rr := range rep.Regions {
		if rr.Region != "ucode" {
			continue
		}
		if rr.Count != 10 || rr.Samples != 2 {
			t.Fatalf("count=%d samples=%d, want 10/2", rr.Count, rr.Samples)
		}
	}

	off := New()
	off.SetSampleEvery(0)
	for i := 0; i < 10; i++ {
		off.Begin(RegionUcode)
		off.End(RegionUcode)
	}
	if got := off.Report().Regions[int(RegionUcode)].Samples; got != 0 {
		t.Fatalf("sampling disabled but %d samples taken", got)
	}
}

// Attach counts every executed scheduler event, and the step-hook
// bracket counts every post-event hook invocation — both must agree
// with the Env's own deterministic counters.
func TestAttachCountsSchedulerEvents(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		env := sim.NewEnv(7)
		p := New()
		p.Attach(env)
		hooks := uint64(0)
		env.SetStepHook(func() { hooks++ })
		var tick func(d sim.Time)
		tick = func(d sim.Time) {
			if d > 20*sim.Time(time.Millisecond) {
				return
			}
			env.Schedule(d, func() { tick(d + sim.Time(time.Millisecond)) })
		}
		tick(sim.Time(time.Millisecond))
		p.Start(env.Now())
		env.Run(sim.Time(time.Second))
		p.Finish(env.Now())
		return p.Count(RegionStep), p.Count(RegionCheck), env.EventsExecuted()
	}
	steps, checks, executed := run()
	if steps == 0 || steps != executed {
		t.Fatalf("RegionStep count %d, env executed %d", steps, executed)
	}
	if checks != steps {
		t.Fatalf("RegionCheck count %d, want one per event (%d)", checks, steps)
	}
	steps2, checks2, _ := run()
	if steps2 != steps || checks2 != checks {
		t.Fatalf("counts not reproducible: %d/%d vs %d/%d", steps, checks, steps2, checks2)
	}
}

func TestAttachVMCountsInvocations(t *testing.T) {
	img, err := ucode.Assemble(".entry main\nmain:\n\tmovi r1, 1\n\thalt\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := ucode.New(img, nil)
	p := New()
	p.AttachVM(vm)
	for i := 0; i < 3; i++ {
		if res := vm.Run("main"); res.Outcome != ucode.OutcomeOK {
			t.Fatalf("vm run %d: %v", i, res.Outcome)
		}
	}
	if got := p.Count(RegionUcode); got != 3 {
		t.Fatalf("RegionUcode count %d, want 3", got)
	}
}

// AttachLockstep brackets the whole barrier; member events nest inside
// it, exercising the cross-env LIFO discipline the cluster relies on.
func TestAttachLockstepNestsMemberSteps(t *testing.T) {
	a, b := sim.NewEnv(1), sim.NewEnv(2)
	p := New()
	p.Attach(a)
	p.Attach(b)
	for _, env := range []*sim.Env{a, b} {
		env := env
		env.Tick(sim.Time(time.Millisecond), func() {})
	}
	l := sim.NewLockstep(1, a, b)
	p.AttachLockstep(l)
	p.Start(0)
	l.AdvanceTo(sim.Time(10 * time.Millisecond))
	p.Finish(sim.Time(10 * time.Millisecond))

	if got := p.Count(RegionBarrier); got != 1 {
		t.Fatalf("RegionBarrier count %d, want 1", got)
	}
	want := a.EventsExecuted() + b.EventsExecuted()
	if got := p.Count(RegionStep); got == 0 || got != want {
		t.Fatalf("RegionStep count %d, want %d", got, want)
	}
	rep := p.Report()
	barrier := rep.Regions[int(RegionBarrier)]
	step := rep.Regions[int(RegionStep)]
	if barrier.TotalNs < step.TotalNs {
		t.Fatalf("barrier inclusive %dns < nested steps %dns", barrier.TotalNs, step.TotalNs)
	}
}

// The report enumerates every region exactly once in canonical order,
// entered or not, so the document structure is deterministic.
func TestReportStructure(t *testing.T) {
	p := New()
	p.Begin(RegionStep)
	p.End(RegionStep)
	p.Start(0)
	p.Finish(sim.Time(time.Second))
	rep := p.Report()
	if len(rep.Regions) != len(Regions()) {
		t.Fatalf("%d region rows, want %d", len(rep.Regions), len(Regions()))
	}
	for i, r := range Regions() {
		if rep.Regions[i].Region != r.String() {
			t.Fatalf("row %d is %q, want %q", i, rep.Regions[i].Region, r)
		}
	}
	if rep.Events != 1 || rep.VirtualNs != int64(time.Second) {
		t.Fatalf("events=%d virtual=%d", rep.Events, rep.VirtualNs)
	}
	if rep.WallNs <= 0 || rep.EventsPerSec <= 0 {
		t.Fatalf("wall=%d events/sec=%g", rep.WallNs, rep.EventsPerSec)
	}
}

func TestFoldedLines(t *testing.T) {
	p := New()
	p.Begin(RegionStep)
	p.Begin(RegionUcode)
	p.End(RegionUcode)
	p.End(RegionStep)
	lines := p.FoldedLines()
	if len(lines) != 2 {
		t.Fatalf("%d folded lines, want 2 (entered regions only): %v", len(lines), lines)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "wall:") {
			t.Fatalf("folded line %q lacks wall: prefix", ln)
		}
	}
	if lines[0] >= lines[1] {
		t.Fatalf("folded lines not sorted: %v", lines)
	}
}
