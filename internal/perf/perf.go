// Package perf is wall-clock performance telemetry for the simulator
// itself — the meters behind BENCH_simspeed.json and ROADMAP item 1
// ("profile the hot path"). It lives strictly apart from the
// deterministic virtual-time plane: everything the simulation computes
// (event order, virtual clocks, traces, figures) is identical with and
// without a Profiler attached.
//
// The split is enforced by construction. A Profiler keeps two classes of
// state:
//
//   - Deterministic counters: how many times each region was entered,
//     and which entries were alloc-sampled (every Kth entry of a region,
//     a pure count-based rule). These are byte-reproducible across runs
//     and machines and are hard-gated by benchgate.
//   - Wall-clock samples: nanoseconds and allocation deltas observed
//     while inside a region. These vary run to run and are gated
//     warn-only.
//
// Regions are cheap nestable brackets (Begin/End) placed on the
// simulator hot path: the scheduler step loop, kernel IPC dispatch,
// ucode VM execution, obs/decision recording, the invariant checker,
// timeseries rollovers, and the fleet lockstep barrier. Region entry and
// exit must be strictly LIFO on the executed event stream; a region must
// never span a Park (the kernel ends its IPC region before parking a
// process). End panics on a mismatched region to catch such bugs
// immediately.
//
// A Profiler is single-threaded, like the Env it observes: attach one
// profiler to one environment (or to several environments advanced
// sequentially, e.g. a Lockstep with one worker). A nil *Profiler is
// valid everywhere and all methods are no-ops, mirroring obs.Recorder.
package perf

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sort"
	"time"

	"resilientos/internal/sim"
	"resilientos/internal/ucode"
)

// Region identifies one instrumented subsystem of the simulator hot path.
type Region uint8

// The region taxonomy. RegionStep brackets every executed scheduler
// event, so every other region (except RegionBarrier, which contains
// steps) nests inside it and step self-time is "scheduler + everything
// not otherwise attributed".
const (
	RegionStep       Region = iota // one scheduler event: pop, dispatch, run
	RegionKernelIPC                // kernel send/receive/notify dispatch
	RegionUcode                    // driver ucode VM invocations
	RegionObs                      // obs trace-event stamping and fan-out
	RegionCheck                    // live invariant checker (step hook)
	RegionDecision                 // recovery decision-log recording
	RegionTimeseries               // timeseries window rollovers
	RegionBarrier                  // lockstep barrier advance (contains steps)
	regionMax
)

var regionNames = [regionMax]string{
	"step", "kernel.ipc", "ucode", "obs", "check", "decision", "timeseries", "barrier",
}

func (r Region) String() string {
	if r < regionMax {
		return regionNames[r]
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Regions returns the full region taxonomy in canonical order.
func Regions() []Region {
	rs := make([]Region, regionMax)
	for i := range rs {
		rs[i] = Region(i)
	}
	return rs
}

// DefaultSampleEvery is the default alloc-sampling period: every Kth
// entry of a region pays two runtime/metrics reads; the rest pay only a
// counter increment and a monotonic clock read.
const DefaultSampleEvery = 64

// heapAllocsMetric is the cumulative heap-allocation count sampled
// around region entries. runtime/metrics reads are cheap (no
// stop-the-world, unlike runtime.ReadMemStats).
const heapAllocsMetric = "/gc/heap/allocs:objects"

type frame struct {
	region     Region
	start      int64 // ns since p.base
	childNs    int64 // wall ns spent in nested regions
	sampled    bool
	allocStart uint64
}

// Profiler accumulates per-region wall-clock cost for one simulation
// run. The zero value is not usable; call New. A nil *Profiler is a
// no-op everywhere.
type Profiler struct {
	base        time.Time
	sampleEvery uint64

	counts  [regionMax]uint64 // deterministic: region entries
	samples [regionMax]uint64 // deterministic: alloc-sampled entries
	totalNs [regionMax]int64  // wall: inclusive time
	selfNs  [regionMax]int64  // wall: exclusive of nested regions
	allocs  [regionMax]uint64 // wall: heap objects across sampled entries

	stack       []frame
	allocSample []metrics.Sample

	startWall    time.Time
	startVirtual sim.Time
	endVirtual   sim.Time
	wallNs       int64
	startMallocs uint64
	mallocs      uint64
	finished     bool
}

// New returns a profiler with the default alloc-sampling period.
func New() *Profiler {
	return &Profiler{
		base:        time.Now(),
		sampleEvery: DefaultSampleEvery,
		stack:       make([]frame, 0, 16),
		allocSample: []metrics.Sample{{Name: heapAllocsMetric}},
	}
}

// SetSampleEvery changes the alloc-sampling period (0 disables alloc
// sampling entirely). Call before the run starts; changing it mid-run
// changes which entries sample and therefore the deterministic sample
// counts.
func (p *Profiler) SetSampleEvery(k uint64) {
	if p == nil {
		return
	}
	p.sampleEvery = k
}

func (p *Profiler) heapAllocs() uint64 {
	metrics.Read(p.allocSample)
	return p.allocSample[0].Value.Uint64()
}

// Begin enters region r. Every call increments the deterministic entry
// count; every sampleEvery-th entry additionally snapshots the
// cumulative heap-allocation counter.
func (p *Profiler) Begin(r Region) {
	if p == nil {
		return
	}
	p.counts[r]++
	f := frame{region: r, start: int64(time.Since(p.base))}
	if p.sampleEvery != 0 && p.counts[r]%p.sampleEvery == 0 {
		f.sampled = true
		f.allocStart = p.heapAllocs()
	}
	p.stack = append(p.stack, f)
}

// End leaves region r, which must be the innermost open region —
// regions are strictly LIFO and must never span a Park. A mismatch is a
// bug in instrumentation placement and panics.
func (p *Profiler) End(r Region) {
	if p == nil {
		return
	}
	n := len(p.stack)
	if n == 0 {
		panic("perf: End(" + r.String() + ") with empty region stack")
	}
	f := p.stack[n-1]
	if f.region != r {
		panic("perf: End(" + r.String() + ") does not match open region " + f.region.String())
	}
	p.stack = p.stack[:n-1]
	el := int64(time.Since(p.base)) - f.start
	p.totalNs[r] += el
	p.selfNs[r] += el - f.childNs
	if n >= 2 {
		p.stack[n-2].childNs += el
	}
	if f.sampled {
		p.samples[r]++
		p.allocs[r] += p.heapAllocs() - f.allocStart
	}
}

// Depth reports the current region-stack depth (0 outside any region).
func (p *Profiler) Depth() int {
	if p == nil {
		return 0
	}
	return len(p.stack)
}

// Count returns the deterministic entry count for region r.
func (p *Profiler) Count(r Region) uint64 {
	if p == nil {
		return 0
	}
	return p.counts[r]
}

// Start marks the beginning of the measured run: it snapshots wall
// time, the virtual clock, and the exact process-wide allocation count
// (runtime.ReadMemStats).
func (p *Profiler) Start(virtualNow sim.Time) {
	if p == nil {
		return
	}
	p.startVirtual = virtualNow
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.startMallocs = ms.Mallocs
	p.startWall = time.Now()
}

// Finish marks the end of the measured run. The region stack must be
// empty (all regions closed).
func (p *Profiler) Finish(virtualNow sim.Time) {
	if p == nil {
		return
	}
	p.wallNs = int64(time.Since(p.startWall))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.mallocs = ms.Mallocs - p.startMallocs
	p.endVirtual = virtualNow
	p.finished = true
	if len(p.stack) != 0 {
		panic("perf: Finish with " + p.stack[len(p.stack)-1].region.String() + " still open")
	}
}

// Attach installs the profiler on env's scheduler loop: every executed
// event runs inside RegionStep and the post-event step hook (the live
// invariant checker) inside RegionCheck. Passing a nil profiler leaves
// env untouched.
func (p *Profiler) Attach(env *sim.Env) {
	if p == nil || env == nil {
		return
	}
	env.SetPerfHooks(&sim.PerfHooks{
		EventBegin: func() { p.Begin(RegionStep) },
		EventEnd:   func() { p.End(RegionStep) },
		HookBegin:  func() { p.Begin(RegionCheck) },
		HookEnd:    func() { p.End(RegionCheck) },
	})
}

// AttachLockstep brackets every AdvanceTo barrier in RegionBarrier.
// Member environments profiled by the same profiler must advance
// sequentially (workers == 1); the profiler is single-threaded.
func (p *Profiler) AttachLockstep(l *sim.Lockstep) {
	if p == nil || l == nil {
		return
	}
	l.SetPerfHooks(func() { p.Begin(RegionBarrier) }, func() { p.End(RegionBarrier) })
}

// AttachVM brackets every invocation of vm in RegionUcode.
func (p *Profiler) AttachVM(vm *ucode.VM) {
	if p == nil || vm == nil {
		return
	}
	vm.PerfBegin = func() { p.Begin(RegionUcode) }
	vm.PerfEnd = func() { p.End(RegionUcode) }
}

// RegionReport is one region's slice of a Report. Count and Samples are
// deterministic; the ns and alloc fields are wall-clock observations.
type RegionReport struct {
	Region         string  // canonical region name
	Count          uint64  // entries (deterministic)
	Samples        uint64  // alloc-sampled entries (deterministic)
	TotalNs        int64   // inclusive wall ns
	SelfNs         int64   // exclusive wall ns
	NsPerEntry     float64 // SelfNs / Count
	AllocsPerEntry float64 // heap objects per entry, from sampled entries
}

// Report is the profiler's summary of one run. Events, VirtualNs, and
// the per-region Count/Samples fields are deterministic; everything
// else observes the host machine.
type Report struct {
	Events         uint64  // scheduler events executed (RegionStep entries)
	VirtualNs      int64   // virtual time advanced between Start and Finish
	WallNs         int64   // wall time between Start and Finish
	Mallocs        uint64  // exact heap allocations between Start and Finish
	EventsPerSec   float64 // Events / wall seconds
	NsPerEvent     float64 // WallNs / Events
	AllocsPerEvent float64 // Mallocs / Events
	VirtualPerWall float64 // virtual seconds simulated per wall second
	Regions        []RegionReport
}

// Report summarizes the run. Every region appears exactly once, in
// canonical order, whether or not it was entered — so the structure of
// the report is deterministic even when the numbers are not.
func (p *Profiler) Report() Report {
	if p == nil {
		return Report{}
	}
	rep := Report{
		Events:    p.counts[RegionStep],
		VirtualNs: int64(p.endVirtual - p.startVirtual),
		WallNs:    p.wallNs,
		Mallocs:   p.mallocs,
	}
	if rep.WallNs > 0 {
		rep.EventsPerSec = float64(rep.Events) / (float64(rep.WallNs) / 1e9)
		rep.VirtualPerWall = float64(rep.VirtualNs) / float64(rep.WallNs)
	}
	if rep.Events > 0 {
		rep.NsPerEvent = float64(rep.WallNs) / float64(rep.Events)
		rep.AllocsPerEvent = float64(rep.Mallocs) / float64(rep.Events)
	}
	rep.Regions = make([]RegionReport, 0, regionMax)
	for r := Region(0); r < regionMax; r++ {
		rr := RegionReport{
			Region:  r.String(),
			Count:   p.counts[r],
			Samples: p.samples[r],
			TotalNs: p.totalNs[r],
			SelfNs:  p.selfNs[r],
		}
		if rr.Count > 0 {
			rr.NsPerEntry = float64(rr.SelfNs) / float64(rr.Count)
		}
		if rr.Samples > 0 {
			rr.AllocsPerEntry = float64(p.allocs[r]) / float64(rr.Samples)
		}
		rep.Regions = append(rep.Regions, rr)
	}
	return rep
}

// FoldedLines renders the wall-clock region self-times in the folded
// stack-line format of the virtual-time profiler (obs/profile
// WriteFolded): "wall:<region> <self µs>", sorted, one line per region
// that was entered. Appending these to the virtual folded stacks puts
// wall and virtual cost side by side in one flamegraph.
func (p *Profiler) FoldedLines() []string {
	if p == nil {
		return nil
	}
	lines := make([]string, 0, regionMax)
	for r := Region(0); r < regionMax; r++ {
		if p.counts[r] == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("wall:%s %d", r, p.selfNs[r]/1000))
	}
	sort.Strings(lines)
	return lines
}
