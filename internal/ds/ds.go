// Package ds implements the data store (DS) of paper §5.3: a simple name
// server mapping stable component names to current IPC endpoints, a
// publish/subscribe mechanism that disseminates configuration changes
// (restarted drivers' new endpoints) to dependent components, and a small
// database where system processes can back up private state.
//
// Authentication of private records is by *stable name*: a record stored
// by label "inet" can be retrieved by any process instance with that
// label, however many times it has been restarted — exactly the paper's
// scheme for recovering lost state after a crash.
package ds

import (
	"sort"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
)

// Label is DS's stable component label.
const Label = "ds"

// Privileges returns the privilege set DS runs with.
func Privileges() kernel.Privileges {
	return kernel.Privileges{AllowAllIPC: true, UID: 10}
}

// publisherLabel is the only component allowed to publish or withdraw
// naming entries (the reincarnation server keeps the table up to date,
// paper §5.3).
const publisherLabel = "rs"

type subscription struct {
	pattern string
	ep      kernel.Endpoint
	label   string
}

type record struct {
	owner string // stable label of the storing process
	data  []byte
}

// DS is the data store server.
type DS struct {
	ctx    *kernel.Ctx
	names  map[string]kernel.Endpoint
	sorted []string // cached name order; nil = rebuild
	subs   []subscription
	store  map[string]record // key: owner + "\x00" + name
	labels map[kernel.Endpoint]string
}

// sortedNames returns the published names in order, cached between
// naming changes: the live invariant checker walks the table after every
// scheduler step.
func (d *DS) sortedNames() []string {
	if d.sorted == nil {
		d.sorted = make([]string, 0, len(d.names))
		for name := range d.names {
			d.sorted = append(d.sorted, name)
		}
		sort.Strings(d.sorted)
	}
	return d.sorted
}

// Start spawns the data store on k and returns its endpoint.
func Start(k *kernel.Kernel) (kernel.Endpoint, error) {
	_, ep, err := StartServer(k)
	return ep, err
}

// StartServer spawns the data store and also returns the server handle,
// which the live invariant checker inspects via VisitNames.
func StartServer(k *kernel.Kernel) (*DS, kernel.Endpoint, error) {
	d := &DS{
		names: make(map[string]kernel.Endpoint),
		store: make(map[string]record),
	}
	ctx, err := k.Spawn(Label, Privileges(), d.run)
	if err != nil {
		return nil, kernel.None, err
	}
	return d, ctx.Endpoint(), nil
}

// VisitNames calls fn for every published name, in name order. Read-only;
// for the invariant checker's stale-endpoint scan.
func (d *DS) VisitNames(fn func(name string, ep kernel.Endpoint)) {
	for _, name := range d.sortedNames() {
		fn(name, d.names[name])
	}
}

func (d *DS) run(c *kernel.Ctx) {
	d.ctx = c
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		switch m.Type {
		case proto.DSPublish:
			d.publish(m)
		case proto.DSWithdraw:
			d.withdraw(m)
		case proto.DSFailover:
			d.failover(m)
		case proto.DSLookup:
			d.lookup(m)
		case proto.DSSubscribe:
			d.subscribe(m)
		case proto.DSStore:
			d.storePrivate(m)
		case proto.DSRetrieve:
			d.retrievePrivate(m)
		}
	}
}

// senderLabel resolves the stable label of a message's sender. The kernel
// is the authority: labels cannot be forged by the sender.
func (d *DS) senderLabel(ep kernel.Endpoint) string {
	return d.ctx.Kernel().LabelOf(ep)
}

func (d *DS) reply(to kernel.Endpoint, m kernel.Message) {
	_ = d.ctx.Send(to, m)
}

func (d *DS) publish(m kernel.Message) {
	if d.senderLabel(m.Source) != publisherLabel {
		d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.ErrPerm})
		return
	}
	if _, exists := d.names[m.Name]; !exists {
		d.sorted = nil // new name: re-sort on next walk
	}
	d.names[m.Name] = kernel.Endpoint(m.Arg1)
	d.ctx.Logf("publish %s -> %v", m.Name, kernel.Endpoint(m.Arg1))
	d.ctx.Obs().Emit(obs.KindPublish, Label, m.Name, m.Arg1, 0)
	d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.OK})
	d.fanout(m.Name, m.Arg1)
}

func (d *DS) withdraw(m kernel.Message) {
	if d.senderLabel(m.Source) != publisherLabel {
		d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.ErrPerm})
		return
	}
	delete(d.names, m.Name)
	d.sorted = nil
	d.ctx.Obs().Emit(obs.KindPublish, Label, m.Name, proto.InvalidEndpoint, 1)
	d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.OK})
	d.fanout(m.Name, proto.InvalidEndpoint)
}

// failover atomically republishes a name onto a promoted standby
// replica. It refuses (ErrExist) while the currently published endpoint
// is still a live process: a name never has two live owners, so the old
// instance must be dead before the replica may take the name over. The
// republish and fanout happen in one DS turn — subscribers never observe
// an intermediate withdrawn state.
// [recovery:begin]
func (d *DS) failover(m kernel.Message) {
	if d.senderLabel(m.Source) != publisherLabel {
		d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.ErrPerm})
		return
	}
	next := kernel.Endpoint(m.Arg1)
	if cur, ok := d.names[m.Name]; ok && cur != next && d.ctx.Kernel().Alive(cur) {
		d.ctx.Logf("failover %s refused: %v still live", m.Name, cur)
		d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.ErrExist})
		return
	}
	if _, exists := d.names[m.Name]; !exists {
		d.sorted = nil
	}
	d.names[m.Name] = next
	d.ctx.Logf("failover %s -> %v", m.Name, next)
	d.ctx.Obs().Emit(obs.KindPublish, Label, m.Name, m.Arg1, 0)
	d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.OK})
	d.fanout(m.Name, m.Arg1)
}

// [recovery:end]

// fanout pushes a naming change to every matching subscriber. Dead
// subscribers are pruned. This is the publish/subscribe dissemination that
// initiates dependent components' recovery (paper §5.3).
// [recovery:begin]
func (d *DS) fanout(name string, ep int64) {
	alive := d.subs[:0]
	for _, s := range d.subs {
		if !Match(s.pattern, name) {
			alive = append(alive, s)
			continue
		}
		// A subscriber may itself have been restarted; re-resolve its
		// label so updates chase the live instance.
		dst := s.ep
		if cur := d.ctx.LookupLabel(s.label); cur != kernel.None {
			dst = cur
		}
		err := d.ctx.AsyncSend(dst, kernel.Message{
			Type: proto.DSUpdate,
			Name: name,
			Arg1: ep,
		})
		if err == nil {
			s.ep = dst
			alive = append(alive, s)
		}
	}
	d.subs = alive
}

// [recovery:end]

func (d *DS) lookup(m kernel.Message) {
	reply := kernel.Message{Type: proto.DSAck, Name: m.Name}
	if ep, ok := d.names[m.Name]; ok {
		reply.Arg1 = int64(ep)
		reply.Arg2 = proto.OK
	} else {
		reply.Arg1 = proto.InvalidEndpoint
		reply.Arg2 = proto.ErrNotFound
	}
	d.reply(m.Source, reply)
}

func (d *DS) subscribe(m kernel.Message) {
	sub := subscription{
		pattern: m.Name,
		ep:      m.Source,
		label:   d.senderLabel(m.Source),
	}
	d.subs = append(d.subs, sub)
	d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.OK})
	// Replay current matches so a late (or restarted) subscriber learns
	// the present configuration.
	for _, name := range sortedKeys(d.names) {
		if Match(sub.pattern, name) {
			_ = d.ctx.AsyncSend(m.Source, kernel.Message{
				Type: proto.DSUpdate,
				Name: name,
				Arg1: int64(d.names[name]),
			})
		}
	}
}

// The private backup store lets restarted components retrieve state lost
// in a crash, authenticated by stable name (paper §5.3).
// [recovery:begin]
func (d *DS) storePrivate(m kernel.Message) {
	owner := d.senderLabel(m.Source)
	if owner == "" {
		d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.ErrPerm})
		return
	}
	cp := make([]byte, len(m.Payload))
	copy(cp, m.Payload)
	d.store[owner+"\x00"+m.Name] = record{owner: owner, data: cp}
	d.reply(m.Source, kernel.Message{Type: proto.DSAck, Arg2: proto.OK})
}

func (d *DS) retrievePrivate(m kernel.Message) {
	owner := d.senderLabel(m.Source)
	rec, ok := d.store[owner+"\x00"+m.Name]
	reply := kernel.Message{Type: proto.DSAck, Name: m.Name}
	if !ok {
		reply.Arg2 = proto.ErrNotFound
	} else {
		reply.Arg2 = proto.OK
		reply.Payload = append([]byte(nil), rec.data...)
	}
	d.reply(m.Source, reply)
}

// [recovery:end]

// sortedKeys keeps subscription-replay order deterministic.
func sortedKeys(m map[string]kernel.Endpoint) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Match reports whether a DS subscription pattern matches a name.
// Patterns support '*' (any run) and '?' (any single character); the
// paper's example is the network server subscribing to 'eth.*'.
func Match(pattern, name string) bool {
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(name) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == name[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
