package ds

import (
	"math/rand"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Match agrees with a reference implementation built on the
// stdlib regexp engine, across random patterns and names drawn from a
// small alphabet (so collisions actually occur).
func TestMatchAgreesWithRegexp(t *testing.T) {
	alphabet := []rune("ab.*?")
	gen := func(r *rand.Rand, n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(alphabet[r.Intn(len(alphabet))])
		}
		return b.String()
	}
	ref := func(pattern, name string) bool {
		var re strings.Builder
		re.WriteString("^")
		for _, c := range pattern {
			switch c {
			case '*':
				re.WriteString(".*")
			case '?':
				re.WriteString(".")
			default:
				re.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		re.WriteString("$")
		return regexp.MustCompile(re.String()).MatchString(name)
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(gen(r, r.Intn(8)))
			args[1] = reflect.ValueOf(strings.ReplaceAll(strings.ReplaceAll(gen(r, r.Intn(10)), "*", "a"), "?", "b"))
		},
	}
	f := func(pattern, name string) bool {
		return Match(pattern, name) == ref(pattern, name)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
