package ds

import (
	"bytes"
	"testing"
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

func bootDS(t *testing.T) (*sim.Env, *kernel.Kernel, kernel.Endpoint) {
	t.Helper()
	env := sim.NewEnv(1)
	k := kernel.New(env)
	ep, err := Start(k)
	if err != nil {
		t.Fatal(err)
	}
	return env, k, ep
}

// spawnRS spawns a process with the publisher label "rs" running body.
func spawnRS(t *testing.T, k *kernel.Kernel, body func(c *kernel.Ctx)) {
	t.Helper()
	if _, err := k.Spawn("rs", kernel.Privileges{AllowAllIPC: true}, body); err != nil {
		t.Fatal(err)
	}
}

func TestPublishLookup(t *testing.T) {
	env, k, dsEp := bootDS(t)
	spawnRS(t, k, func(c *kernel.Ctx) {
		reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.rtl8139", Arg1: 4242})
		if err != nil || reply.Arg2 != proto.OK {
			t.Errorf("publish: %v %d", err, reply.Arg2)
		}
	})
	var got int64
	k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSLookup, Name: "eth.rtl8139"})
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		got = reply.Arg1
	})
	env.Run(2 * time.Second)
	if got != 4242 {
		t.Fatalf("lookup = %d", got)
	}
}

func TestLookupMissing(t *testing.T) {
	env, k, dsEp := bootDS(t)
	var code int64
	k.Spawn("probe", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSLookup, Name: "nope"})
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		code = reply.Arg2
	})
	env.Run(time.Second)
	if code != proto.ErrNotFound {
		t.Fatalf("code = %d", code)
	}
}

func TestPublishRequiresAuthority(t *testing.T) {
	env, k, dsEp := bootDS(t)
	var code int64
	k.Spawn("rogue", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "evil", Arg1: 1})
		if err != nil {
			t.Errorf("publish: %v", err)
			return
		}
		code = reply.Arg2
	})
	env.Run(time.Second)
	if code != proto.ErrPerm {
		t.Fatalf("code = %d, want ErrPerm", code)
	}
}

func TestSubscribeReceivesUpdates(t *testing.T) {
	env, k, dsEp := bootDS(t)
	var updates []string
	var eps []int64
	k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		if _, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSSubscribe, Name: "eth.*"}); err != nil {
			t.Errorf("subscribe: %v", err)
			return
		}
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.DSUpdate {
				updates = append(updates, m.Name)
				eps = append(eps, m.Arg1)
			}
		}
	})
	spawnRS(t, k, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.rtl8139", Arg1: 7})
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "disk.sata", Arg1: 8})
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.dp8390", Arg1: 9})
	})
	env.Run(3 * time.Second)
	if len(updates) != 2 || updates[0] != "eth.rtl8139" || updates[1] != "eth.dp8390" {
		t.Fatalf("updates = %v (disk.sata must not match eth.*)", updates)
	}
	if eps[0] != 7 || eps[1] != 9 {
		t.Fatalf("eps = %v", eps)
	}
}

func TestSubscribeReplaysCurrentMatches(t *testing.T) {
	env, k, dsEp := bootDS(t)
	spawnRS(t, k, func(c *kernel.Ctx) {
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.a", Arg1: 1})
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.b", Arg1: 2})
	})
	var updates []string
	k.Spawn("late", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second) // subscribe after the publishes
		if _, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSSubscribe, Name: "eth.*"}); err != nil {
			t.Errorf("subscribe: %v", err)
			return
		}
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.DSUpdate {
				updates = append(updates, m.Name)
			}
		}
	})
	env.Run(2 * time.Second)
	if len(updates) != 2 || updates[0] != "eth.a" || updates[1] != "eth.b" {
		t.Fatalf("replayed updates = %v", updates)
	}
}

func TestWithdrawNotifiesSubscribers(t *testing.T) {
	env, k, dsEp := bootDS(t)
	var gone []string
	k.Spawn("watcher", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.SendRec(dsEp, kernel.Message{Type: proto.DSSubscribe, Name: "*"})
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.DSUpdate && m.Arg1 == proto.InvalidEndpoint {
				gone = append(gone, m.Name)
			}
		}
	})
	spawnRS(t, k, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "drv", Arg1: 5})
		c.SendRec(dsEp, kernel.Message{Type: proto.DSWithdraw, Name: "drv"})
	})
	env.Run(2 * time.Second)
	if len(gone) != 1 || gone[0] != "drv" {
		t.Fatalf("withdrawals = %v", gone)
	}
}

func TestPrivateStoreRoundtrip(t *testing.T) {
	env, k, dsEp := bootDS(t)
	var got []byte
	k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(dsEp, kernel.Message{
			Type: proto.DSStore, Name: "state", Payload: []byte("tcp tables"),
		})
		if err != nil || reply.Arg2 != proto.OK {
			t.Errorf("store: %v %d", err, reply.Arg2)
			return
		}
		reply, err = c.SendRec(dsEp, kernel.Message{Type: proto.DSRetrieve, Name: "state"})
		if err != nil || reply.Arg2 != proto.OK {
			t.Errorf("retrieve: %v %d", err, reply.Arg2)
			return
		}
		got = reply.Payload
	})
	env.Run(time.Second)
	if !bytes.Equal(got, []byte("tcp tables")) {
		t.Fatalf("got %q", got)
	}
}

func TestPrivateStoreAuthenticationByStableName(t *testing.T) {
	// A *restarted* instance with the same label can read the record; a
	// different label cannot (paper §5.3).
	env := sim.NewEnv(1)
	k := kernel.New(env)
	dsEp, err := Start(k)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.SendRec(dsEp, kernel.Message{Type: proto.DSStore, Name: "state", Payload: []byte("secret")})
		c.Exit(0) // crash; state outlives the instance
	})
	var stranger int64
	k.Spawn("other", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSRetrieve, Name: "state"})
		if err != nil {
			t.Errorf("retrieve: %v", err)
			return
		}
		stranger = reply.Arg2
	})
	env.Run(2 * time.Second)
	// Restarted instance, same label.
	var got []byte
	k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(dsEp, kernel.Message{Type: proto.DSRetrieve, Name: "state"})
		if err != nil || reply.Arg2 != proto.OK {
			t.Errorf("retrieve after restart: %v %d", err, reply.Arg2)
			return
		}
		got = reply.Payload
	})
	env.Run(time.Second)
	if stranger != proto.ErrNotFound {
		t.Fatalf("stranger got code %d, want ErrNotFound", stranger)
	}
	if !bytes.Equal(got, []byte("secret")) {
		t.Fatalf("restarted instance got %q", got)
	}
}

func TestSubscriberFollowsRestartedProcess(t *testing.T) {
	// A subscriber that is itself restarted keeps receiving updates at
	// its new endpoint because DS chases the stable label.
	env, k, dsEp := bootDS(t)
	secondGen := false
	var got []string
	body := func(c *kernel.Ctx) {
		if !secondGen {
			secondGen = true
			c.SendRec(dsEp, kernel.Message{Type: proto.DSSubscribe, Name: "eth.*"})
			c.Sleep(500 * time.Millisecond)
			c.Exit(0) // dies; a new instance takes over the label
		}
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.DSUpdate {
				got = append(got, m.Name)
			}
		}
	}
	k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, body)
	env.Schedule(time.Second, func() {
		k.Spawn("inet", kernel.Privileges{AllowAllIPC: true}, body)
	})
	spawnRS(t, k, func(c *kernel.Ctx) {
		c.Sleep(2 * time.Second)
		c.SendRec(dsEp, kernel.Message{Type: proto.DSPublish, Name: "eth.x", Arg1: 11})
	})
	env.Run(3 * time.Second)
	if len(got) != 1 || got[0] != "eth.x" {
		t.Fatalf("restarted subscriber got %v", got)
	}
}

func TestMatchPatterns(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"eth.*", "eth.rtl8139", true},
		{"eth.*", "eth.", true},
		{"eth.*", "disk.sata", false},
		{"*", "anything", true},
		{"drv?", "drv1", true},
		{"drv?", "drv12", false},
		{"exact", "exact", true},
	}
	for _, tc := range cases {
		if got := Match(tc.pat, tc.name); got != tc.want {
			t.Errorf("Match(%q, %q) = %v", tc.pat, tc.name, got)
		}
	}
}
