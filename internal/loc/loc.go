// Package loc counts lines of executable code the way the paper's §7.3
// does with sclc.pl: blank lines, comments, and declarations-only lines do
// not add to code complexity and are excluded. It also counts the
// recovery-specific lines, which this code base marks with a trailing
// "// [recovery]" comment — reproducing Fig. 9's reengineering-effort
// metric over this reproduction's own source.
package loc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Count is the line tally of one file, package, or component.
type Count struct {
	Code     int // executable LoC (non-blank, non-comment)
	Comment  int
	Blank    int
	Recovery int // code lines marked "// [recovery]"
}

// Add accumulates.
func (c *Count) Add(o Count) {
	c.Code += o.Code
	c.Comment += o.Comment
	c.Blank += o.Blank
	c.Recovery += o.Recovery
}

// Recovery markers. A trailing RecoveryMarker counts one line; a
// RecoveryBegin/RecoveryEnd comment pair counts every code line between
// (for whole recovery-specific functions).
const (
	RecoveryMarker = "// [recovery]"
	RecoveryBegin  = "// [recovery:begin]"
	RecoveryEnd    = "// [recovery:end]"
)

// CountSource tallies one Go source text.
func CountSource(src string) Count {
	var c Count
	inBlock := false
	inRegion := false
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case inBlock:
			c.Comment++
			if strings.Contains(line, "*/") {
				inBlock = false
			}
		case line == "":
			c.Blank++
		case strings.HasPrefix(line, "//"):
			c.Comment++
			if strings.Contains(line, RecoveryBegin) {
				inRegion = true
			}
			if strings.Contains(line, RecoveryEnd) {
				inRegion = false
			}
		case strings.HasPrefix(line, "/*"):
			c.Comment++
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			c.Code++
			if inRegion || strings.Contains(line, RecoveryMarker) {
				c.Recovery++
			}
		}
	}
	return c
}

// CountFile tallies one file on disk.
func CountFile(path string) (Count, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Count{}, err
	}
	return CountSource(string(b)), nil
}

// CountDir tallies all non-test Go files under dir (non-recursive).
func CountDir(dir string) (Count, error) {
	var total Count
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Count{}, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		c, err := CountFile(filepath.Join(dir, name))
		if err != nil {
			return Count{}, err
		}
		total.Add(c)
	}
	return total, nil
}

// Component maps a Fig. 9 row to the directories implementing it.
type Component struct {
	Name string
	Dirs []string
}

// Fig9Components is this reproduction's component inventory in the order
// of the paper's Fig. 9 (plus the substrates the paper's table does not
// break out).
func Fig9Components(root string) []Component {
	d := func(p string) string { return filepath.Join(root, p) }
	return []Component{
		{"Reinc. Server", []string{d("internal/core")}},
		{"Data Store", []string{d("internal/ds")}},
		{"VFS Server", []string{d("internal/vfs")}},
		{"File Server", []string{d("internal/mfs")}},
		{"SATA Driver", []string{d("internal/drivers/sata")}},
		{"RAM Disk", []string{d("internal/drivers/ramdisk")}},
		{"Network Server", []string{d("internal/inet")}},
		{"RTL8139 Driver", []string{d("internal/drivers/rtl8139")}},
		{"DP8390 Driver", []string{d("internal/drivers/dp8390")}},
		{"Char Drivers", []string{d("internal/drivers/chardrv")}},
		{"Driver Library", []string{d("internal/drvlib")}},
		{"Process Manager", []string{d("internal/proc")}},
		{"Microkernel", []string{d("internal/kernel")}},
		{"Policy Shell", []string{d("internal/policy")}},
	}
}

// Row is one rendered table row.
type Row struct {
	Name     string
	Total    int
	Recovery int
}

// Pct renders the recovery percentage like the paper does ("<1%", "0%").
func (r Row) Pct() string {
	if r.Total == 0 {
		return "-"
	}
	pct := 100 * float64(r.Recovery) / float64(r.Total)
	switch {
	case r.Recovery == 0:
		return "0%"
	case pct < 1:
		return "<1%"
	default:
		return fmt.Sprintf("%.0f%%", pct)
	}
}

// Table computes the Fig. 9 table for the module rooted at root.
func Table(root string) ([]Row, error) {
	var rows []Row
	var total Row
	total.Name = "Total"
	for _, comp := range Fig9Components(root) {
		var c Count
		for _, dir := range comp.Dirs {
			dc, err := CountDir(dir)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", comp.Name, err)
			}
			c.Add(dc)
		}
		rows = append(rows, Row{Name: comp.Name, Total: c.Code, Recovery: c.Recovery})
		total.Total += c.Code
		total.Recovery += c.Recovery
	}
	rows = append(rows, total)
	return rows, nil
}

// Render formats rows as the Fig. 9-style table.
func Render(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %13s %6s\n", "Component", "Total LoC", "Recovery LoC", "%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9d %13d %6s\n", r.Name, r.Total, r.Recovery, r.Pct())
	}
	return b.String()
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loc: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// TotalsByPackage tallies every package under root (for reporting overall
// repository size).
func TotalsByPackage(root string) (map[string]Count, error) {
	out := make(map[string]Count)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == ".git" {
			return fs.SkipDir
		}
		c, err := CountDir(path)
		if err != nil {
			return err
		}
		if c.Code > 0 {
			rel, _ := filepath.Rel(root, path)
			out[rel] = c
		}
		return nil
	})
	return out, err
}

// SortedNames returns map keys in order.
func SortedNames(m map[string]Count) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
