package loc

import (
	"strings"
	"testing"
)

func TestCountSource(t *testing.T) {
	src := `// Package doc.
package x

/* block
comment */
func f() int {
	x := 1 // trailing comment still code
	return x // [recovery]
}
`
	c := CountSource(src)
	if c.Code != 5 {
		t.Errorf("Code = %d, want 5", c.Code)
	}
	if c.Comment != 3 {
		t.Errorf("Comment = %d, want 3", c.Comment)
	}
	if c.Blank != 2 {
		t.Errorf("Blank = %d, want 2 (incl. trailing)", c.Blank)
	}
	if c.Recovery != 1 {
		t.Errorf("Recovery = %d, want 1", c.Recovery)
	}
}

func TestCountSourceBlockComment(t *testing.T) {
	src := "code()\n/*\na\nb\n*/\ncode()\n"
	c := CountSource(src)
	if c.Code != 2 || c.Comment != 4 {
		t.Fatalf("code=%d comment=%d", c.Code, c.Comment)
	}
}

func TestModuleRootAndTable(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d rows", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The paper's qualitative claims about recovery LoC distribution must
	// hold for this code base too:
	// 1. The reincarnation server is where the recovery logic lives.
	if rs := byName["Reinc. Server"]; rs.Recovery == 0 {
		t.Error("reincarnation server shows no recovery code")
	}
	// 2. The process manager and microkernel carry zero recovery code.
	if pm := byName["Process Manager"]; pm.Recovery != 0 {
		t.Errorf("process manager has %d recovery LoC, want 0", pm.Recovery)
	}
	if k := byName["Microkernel"]; k.Recovery != 0 {
		t.Errorf("microkernel has %d recovery LoC, want 0", k.Recovery)
	}
	// 3. Drivers need only the shared driver library's few lines.
	if d := byName["RTL8139 Driver"]; d.Recovery != 0 {
		t.Errorf("rtl8139 has %d device-specific recovery LoC, want 0", d.Recovery)
	}
	if lib := byName["Driver Library"]; lib.Recovery == 0 || lib.Recovery > 10 {
		t.Errorf("driver library recovery LoC = %d, want the paper's ~5", lib.Recovery)
	}
	// 4. The RAM disk has none at all.
	if rd := byName["RAM Disk"]; rd.Recovery != 0 {
		t.Errorf("ram disk has %d recovery LoC, want 0", rd.Recovery)
	}
	// 5. File server recovery code exists but is a small fraction.
	fs := byName["File Server"]
	if fs.Recovery == 0 || fs.Recovery*2 > fs.Total {
		t.Errorf("file server recovery = %d of %d", fs.Recovery, fs.Total)
	}
	out := Render(rows)
	if !strings.Contains(out, "Reinc. Server") || !strings.Contains(out, "Total") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	cases := []struct {
		r    Row
		want string
	}{
		{Row{Total: 100, Recovery: 0}, "0%"},
		{Row{Total: 1000, Recovery: 5}, "<1%"},
		{Row{Total: 100, Recovery: 30}, "30%"},
		{Row{Total: 0, Recovery: 0}, "-"},
	}
	for _, tc := range cases {
		if got := tc.r.Pct(); got != tc.want {
			t.Errorf("Pct(%+v) = %q, want %q", tc.r, got, tc.want)
		}
	}
}

func TestTotalsByPackage(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	totals, err := TotalsByPackage(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(totals) < 15 {
		t.Fatalf("only %d packages", len(totals))
	}
	var sum int
	for _, c := range totals {
		sum += c.Code
	}
	if sum < 5000 {
		t.Fatalf("repository code lines = %d, implausibly small", sum)
	}
}
