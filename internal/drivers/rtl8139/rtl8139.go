// Package rtl8139 implements the RealTek 8139-class Ethernet driver used
// by the Fig. 7 experiment (wget with driver kills). Its control paths —
// reset, receiver enable, transmit kick, receive pop — run as ucode on the
// driver VM, so the fault injector can mutate the running "binary"; bulk
// frame data moves through the NIC's DMA window.
package rtl8139

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"resilientos/internal/drvlib"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/ucode"
)

// src is the driver's control-path program. Results are returned in r1.
const src = `
; RTL8139-class driver control paths.
.entry reset
reset:
	movi r1, BASE
	movi r2, CMDRESET
	out  [r1+REGCMD], r2
	halt

.entry status            ; r1 = status register
status:
	movi r1, BASE
	in   r2, [r1+REGSTATUS]
	mov  r1, r2
	halt

.entry enable            ; enable receiver in promiscuous mode
enable:
	movi r1, BASE
	movi r2, CFGPROMISC
	out  [r1+REGCFG], r2
	in   r3, [r1+REGCFG]
	cmp  r3, r2
	movi r4, 1
	jz   cfgok
	movi r4, 0
cfgok:
	assert r4              ; config readback must match what we wrote
	movi r2, CMDRXEN
	out  [r1+REGCMD], r2
	in   r3, [r1+REGSTATUS]
	andi r3, STENABLED
	assert r3              ; receiver must report enabled
	halt

.entry tx                ; transmit the DMA window; fails if tx busy
tx:
	movi r1, BASE
	in   r2, [r1+REGSTATUS]
	andi r2, STTXBUSY
	cmpi r2, 0
	jnz  txbusy
	movi r2, 1
	out  [r1+REGTXGO], r2
	movi r3, 40            ; tx accounting slot in driver RAM
	ld   r4, [r3+0]
	addi r4, 1
	st   [r3+0], r4
	assert r4              ; counter can never be zero after increment
	movi r1, 1
	halt
txbusy:
	movi r1, 0
	fail

.entry rx                ; pop one received frame; r1 = its length (0 none)
rx:
	movi r1, BASE
	in   r2, [r1+REGRXLEN]
	cmpi r2, 0
	jz   norx
	movi r3, 1
	out  [r1+REGRXPOP], r3
	movi r4, 41            ; rx accounting slot in driver RAM
	ld   r5, [r4+0]
	addi r5, 1
	st   [r4+0], r5
	assert r2              ; popped frame must have nonzero length
	mov  r1, r2
	halt
norx:
	movi r1, 0
	halt
`

// image assembles the pristine driver binary for a NIC at the given base.
func image(base uint32) *ucode.Image {
	return ucode.MustAssemble(src, map[string]uint32{
		"BASE":       base,
		"REGCMD":     hw.NICRegCmd,
		"REGSTATUS":  hw.NICRegStatus,
		"REGCFG":     hw.NICRegCfg,
		"REGRXLEN":   hw.NICRegRxLen,
		"REGRXPOP":   hw.NICRegRxPop,
		"REGTXGO":    hw.NICRegTxGo,
		"CMDRESET":   hw.NICCmdReset,
		"CMDRXEN":    hw.NICCmdRxEnable,
		"CFGPROMISC": hw.NICCfgPromisc,
		"STENABLED":  hw.NICStatEnabled,
		"STTXBUSY":   hw.NICStatTxBusy,
	})
}

// Config configures a driver instance factory.
type Config struct {
	NIC *hw.NIC
	// QueueLen bounds the internal transmit queue (default 64).
	QueueLen int
	// OnVM, if set, is called with each new instance's VM — the hook the
	// fault-injection campaign uses to reach the running binary.
	OnVM func(*ucode.VM)
	// Mechanism selects the driver half of the recovery mechanism; it
	// must match the service's RS configuration.
	Mechanism drvlib.Mechanism
	// Salvage enables the state-capsule save/restore handshake.
	Salvage bool
}

// Binary returns the service binary for this driver. Each (re)start calls
// it afresh, so a restarted instance runs a pristine image.
func Binary(cfg Config) func(c *kernel.Ctx) {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 64
	}
	return func(c *kernel.Ctx) {
		d := &driver{cfg: cfg}
		drvlib.RunWith(c, d, drvlib.Options{Mechanism: cfg.Mechanism, Salvage: cfg.Salvage})
	}
}

type driver struct {
	cfg    Config
	vm     *ucode.VM
	handle *hw.NICHandle
	txQ    [][]byte
	txBusy bool
	client kernel.Endpoint // who gets received frames (last configurer)
	opened bool
}

var errResetTimeout = errors.New("rtl8139: reset did not complete")

// setup builds the instance's pristine VM and attaches it to the card's
// IRQ and DMA window, without touching device state.
func (d *driver) setup(c *kernel.Ctx) error {
	// The image is position-dependent on the NIC's port base; assemble a
	// pristine copy for this instance.
	img := image(d.cfg.NIC.PortRange().Lo)
	d.vm = ucode.New(img, drvlib.CtxBus{C: c})
	if d.cfg.OnVM != nil {
		d.cfg.OnVM(d.vm)
	}
	d.handle = d.cfg.NIC.Handle()
	if err := c.IRQSubscribe(d.cfg.NIC.IRQ()); err != nil {
		return fmt.Errorf("irq: %w", err)
	}
	return nil
}

// Init implements drvlib.Device: reset and (re)initialize the card. After
// a crash this is what puts the card back in promiscuous receive mode
// (paper §6.1).
func (d *driver) Init(c *kernel.Ctx) error {
	if err := d.setup(c); err != nil {
		return err
	}
	return d.resetEnable(c)
}

// resetEnable pays the full hardware reset cycle and re-enables the
// receiver — the NICResetDelay that dominates a respawn's recovery dip.
func (d *driver) resetEnable(c *kernel.Ctx) error {
	drvlib.React(c, d.vm.Run("reset"))
	// Poll for reset completion; the card takes NICResetDelay.
	deadline := c.Now() + 2*time.Second
	for {
		c.Sleep(10 * time.Millisecond)
		if !drvlib.React(c, d.vm.Run("status")) {
			continue
		}
		st := d.vm.Regs[1]
		if st&hw.NICStatResetBsy == 0 {
			break
		}
		if c.Now() > deadline {
			return errResetTimeout
		}
	}
	if !drvlib.React(c, d.vm.Run("enable")) {
		return errors.New("rtl8139: enable failed")
	}
	return nil
}

// Promote implements drvlib.Promoter: attach to the card the dead primary
// left behind. A crash does not reset the hardware, so the receiver is
// normally still enabled and the NICResetDelay cycle can be skipped
// entirely — the fast path that keeps the failover dip shallow. A card
// found disabled or mid-reset pays the full cycle.
func (d *driver) Promote(c *kernel.Ctx) error {
	if err := d.setup(c); err != nil {
		return err
	}
	if drvlib.React(c, d.vm.Run("status")) {
		st := d.vm.Regs[1]
		if st&hw.NICStatEnabled != 0 && st&hw.NICStatResetBsy == 0 {
			d.txBusy = st&hw.NICStatTxBusy != 0
			return nil
		}
	}
	return d.resetEnable(c)
}

// Microreboot implements drvlib.Microrebooter: swap in a pristine VM and
// re-derive the transmit bookkeeping from the live card — no hardware
// reset, no respawn, no re-grant churn, so the stream resumes almost
// immediately. The client binding and queue survive: they were never the
// faulty state, the VM was.
func (d *driver) Microreboot(c *kernel.Ctx) error {
	img := image(d.cfg.NIC.PortRange().Lo)
	d.vm = ucode.New(img, drvlib.CtxBus{C: c})
	if d.cfg.OnVM != nil {
		d.cfg.OnVM(d.vm)
	}
	if !drvlib.React(c, d.vm.Run("status")) {
		return errors.New("rtl8139: status probe failed after vm reset")
	}
	st := d.vm.Regs[1]
	if st&hw.NICStatEnabled == 0 {
		if !drvlib.React(c, d.vm.Run("enable")) {
			return errors.New("rtl8139: re-enable failed")
		}
	}
	d.txBusy = st&hw.NICStatTxBusy != 0
	d.pump(c)
	return nil
}

// capsuleKind tags this driver's state capsules.
const capsuleKind = "rtl8139.conf"

// SaveState implements drvlib.Salvager: the network server binding and
// open state survive a clean handover, so the successor serves without
// waiting to be re-configured.
func (d *driver) SaveState(c *kernel.Ctx) (string, []byte) {
	var b [9]byte
	if d.opened {
		b[0] = 1
	}
	binary.LittleEndian.PutUint64(b[1:], uint64(d.client))
	return capsuleKind, b[:]
}

// RestoreState implements drvlib.Salvager: validate, then adopt. A
// capsule naming a dead client endpoint is stale state from an older
// epoch and is rejected — the successor cold-starts instead.
func (d *driver) RestoreState(c *kernel.Ctx, kind string, payload []byte) error {
	if kind != capsuleKind || len(payload) != 9 {
		return errors.New("rtl8139: foreign or malformed capsule")
	}
	client := kernel.Endpoint(binary.LittleEndian.Uint64(payload[1:]))
	if payload[0] != 1 {
		return nil // predecessor was never configured: nothing to adopt
	}
	if client == kernel.None || !c.Kernel().Alive(client) {
		return errors.New("rtl8139: capsule client endpoint is stale")
	}
	d.client = client
	d.opened = true
	return nil
}

// HandleRequest implements drvlib.Device.
func (d *driver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	switch m.Type {
	case proto.EthConf:
		d.client = m.Source
		d.opened = true
		_ = c.Send(m.Source, kernel.Message{Type: proto.EthAck, Arg1: proto.OK})
	case proto.EthSend:
		if len(d.txQ) >= d.cfg.QueueLen {
			return // queue overflow: frame dropped, TCP will retransmit
		}
		d.txQ = append(d.txQ, m.Payload)
		d.pump(c)
	}
}

// pump pushes queued frames into the card whenever the transmitter idles.
func (d *driver) pump(c *kernel.Ctx) {
	if d.txBusy || len(d.txQ) == 0 {
		return
	}
	frame := d.txQ[0]
	d.txQ = d.txQ[1:]
	d.handle.SetTx(frame)
	if drvlib.React(c, d.vm.Run("tx")) {
		d.txBusy = true
	}
}

// HandleIRQ implements drvlib.Device: drain received frames and continue
// transmitting.
func (d *driver) HandleIRQ(c *kernel.Ctx, mask uint64) {
	// Drain the receive ring.
	for {
		if !drvlib.React(c, d.vm.Run("rx")) {
			break
		}
		if d.vm.Regs[1] == 0 {
			break
		}
		frame := d.handle.TakeRx()
		if frame == nil {
			break
		}
		if d.client != kernel.None && d.client != 0 {
			_ = c.AsyncSend(d.client, kernel.Message{Type: proto.EthRecv, Payload: frame})
		}
	}
	// A tx-done interrupt frees the transmitter.
	if drvlib.React(c, d.vm.Run("status")) {
		if d.vm.Regs[1]&hw.NICStatTxBusy == 0 {
			d.txBusy = false
			d.pump(c)
		}
	}
}

// HandleAlarm implements drvlib.Device.
func (d *driver) HandleAlarm(c *kernel.Ctx) {}

// Shutdown implements drvlib.Device.
func (d *driver) Shutdown(c *kernel.Ctx) {
	drvlib.React(c, d.vm.Run("reset"))
}
