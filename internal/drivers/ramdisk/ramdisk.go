// Package ramdisk implements the memory-backed block driver of the
// paper's §6.2 footnote: a small, trusted disk with no hardware behind it,
// suitable for holding crucial recovery data (driver binaries, the shell,
// policy scripts) so that disk-driver recovery never depends on the failed
// disk itself. The paper's version is 450 lines with zero recovery-
// specific code; this one follows the same protocol as the SATA driver
// but needs no ucode, no IRQs and no device model.
package ramdisk

import (
	"encoding/binary"
	"errors"

	"resilientos/internal/drvlib"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
)

// Config configures a RAM disk instance factory.
type Config struct {
	// Sectors is the capacity (default 2048 sectors = 1 MiB).
	Sectors int64
	// Backing, if non-nil, is shared across instances: a restarted RAM
	// disk driver keeps serving the same memory, like MINIX's RAM disk
	// whose contents live in core, not in the driver process.
	Backing *Store
	// Mechanism selects the driver half of the recovery mechanism.
	Mechanism drvlib.Mechanism
	// Salvage enables the state-capsule save/restore handshake.
	Salvage bool
}

// Store is the RAM disk's backing memory, deliberately held outside the
// driver process so driver restarts do not lose the "disk" contents.
type Store struct {
	sectors map[int64][]byte
}

// NewStore creates empty backing memory.
func NewStore() *Store {
	return &Store{sectors: make(map[int64][]byte)}
}

// Read returns the content of one sector (zeros if never written).
func (s *Store) Read(lba int64) []byte {
	out := make([]byte, hw.SectorSize)
	if sec, ok := s.sectors[lba]; ok {
		copy(out, sec)
	}
	return out
}

// Write replaces the content of one sector.
func (s *Store) Write(lba int64, data []byte) {
	sec := make([]byte, hw.SectorSize)
	copy(sec, data)
	s.sectors[lba] = sec
}

// Binary returns the service binary for this driver.
func Binary(cfg Config) func(c *kernel.Ctx) {
	if cfg.Sectors == 0 {
		cfg.Sectors = 2048
	}
	if cfg.Backing == nil {
		cfg.Backing = NewStore()
	}
	return func(c *kernel.Ctx) {
		d := &driver{cfg: cfg}
		drvlib.RunWith(c, d, drvlib.Options{Mechanism: cfg.Mechanism, Salvage: cfg.Salvage})
	}
}

type driver struct {
	cfg Config
}

// Init implements drvlib.Device. Nothing to initialize: no hardware.
func (d *driver) Init(c *kernel.Ctx) error { return nil }

// HandleRequest implements drvlib.Device.
func (d *driver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	switch m.Type {
	case proto.BdevOpen:
		_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.OK})
	case proto.BdevRead:
		d.rw(c, m, false)
	case proto.BdevWrite:
		d.rw(c, m, true)
	}
}

func (d *driver) rw(c *kernel.Ctx, m kernel.Message, write bool) {
	lba, count := m.Arg1, m.Arg2
	if count <= 0 || lba < 0 || lba+count > d.cfg.Sectors {
		_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.ErrIO})
		return
	}
	nbytes := int(count) * hw.SectorSize
	if write {
		buf := make([]byte, nbytes)
		if err := c.SafeCopyFrom(m.Source, m.Grant, 0, buf); err != nil {
			_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.ErrIO})
			return
		}
		for i := int64(0); i < count; i++ {
			d.cfg.Backing.Write(lba+i, buf[i*hw.SectorSize:(i+1)*hw.SectorSize])
		}
	} else {
		buf := make([]byte, 0, nbytes)
		for i := int64(0); i < count; i++ {
			buf = append(buf, d.cfg.Backing.Read(lba+i)...)
		}
		if err := c.SafeCopyTo(m.Source, m.Grant, 0, buf); err != nil {
			_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.ErrIO})
			return
		}
	}
	_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: int64(nbytes)})
}

// HandleIRQ implements drvlib.Device.
func (d *driver) HandleIRQ(c *kernel.Ctx, mask uint64) {}

// HandleAlarm implements drvlib.Device.
func (d *driver) HandleAlarm(c *kernel.Ctx) {}

// Shutdown implements drvlib.Device.
func (d *driver) Shutdown(c *kernel.Ctx) {}

// capsuleKind tags this driver's state capsules.
const capsuleKind = "ramdisk.geom"

// SaveState implements drvlib.Salvager: the disk geometry survives a
// clean handover.
func (d *driver) SaveState(c *kernel.Ctx) (string, []byte) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(d.cfg.Sectors))
	return capsuleKind, b[:]
}

// RestoreState implements drvlib.Salvager: validate, then adopt. A
// capsule whose geometry disagrees with this instance's backing store
// describes a different disk and is rejected rather than adopted.
func (d *driver) RestoreState(c *kernel.Ctx, kind string, payload []byte) error {
	if kind != capsuleKind || len(payload) != 8 {
		return errors.New("ramdisk: foreign or malformed capsule")
	}
	sectors := int64(binary.LittleEndian.Uint64(payload))
	if sectors <= 0 {
		return errors.New("ramdisk: capsule geometry is non-positive")
	}
	if sectors != d.cfg.Sectors {
		return errors.New("ramdisk: capsule geometry mismatch")
	}
	return nil
}
