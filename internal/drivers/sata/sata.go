// Package sata implements the SATA-class disk driver of the Fig. 8
// experiment (dd + sha1sum with driver kills). Its command-submission path
// runs as ucode; data moves through the disk's DMA window and the file
// server's memory grants.
//
// Disk drivers are the paper's special recovery case (§6.2): they carry no
// policy script — the reincarnation server restarts them directly from a
// RAM image — and the restarted instance's Init resets the device, which
// is where the bulk of the disk recovery time goes.
package sata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"resilientos/internal/drvlib"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/ucode"
)

// src is the command-submission control program. Results in r1.
const src = `
; SATA-class disk driver control paths.
.entry reset
reset:
	movi r1, BASE
	movi r2, CMDRESET
	out  [r1+REGCMD], r2
	halt

.entry status            ; r1 = status register
status:
	movi r1, BASE
	in   r2, [r1+REGSTATUS]
	mov  r1, r2
	halt

; submit: r1 = lba, r2 = count, r3 = command (read/write).
; Writes the transfer registers, reads them back, and asserts the device
; latched what we wrote before issuing the command.
.entry submit
submit:
	movi r4, BASE
	out  [r4+REGLBA], r1
	out  [r4+REGCOUNT], r2
	in   r5, [r4+REGLBA]
	cmp  r5, r1
	movi r6, 1
	jz   lbaok
	movi r6, 0
lbaok:
	assert r6              ; LBA readback must match
	in   r5, [r4+REGCOUNT]
	cmp  r5, r2
	movi r6, 1
	jz   cntok
	movi r6, 0
cntok:
	assert r6              ; COUNT readback must match
	cmpi r2, 0
	movi r6, 1
	jz   zerocnt
	jmp  issue
zerocnt:
	movi r6, 0
issue:
	assert r6              ; zero-sector transfers are a driver bug
	out  [r4+REGCMD], r3
	movi r7, 20            ; command accounting slot
	ld   r8, [r7+0]
	addi r8, 1
	st   [r7+0], r8
	movi r1, 1
	halt

.entry checkdone         ; r1 = 1 ok / 0 error after completion IRQ
checkdone:
	movi r2, BASE
	in   r3, [r2+REGSTATUS]
	andi r3, STERROR
	cmpi r3, 0
	jnz  deverr
	movi r1, 1
	halt
deverr:
	movi r1, 0
	fail
`

func image(base uint32) *ucode.Image {
	return ucode.MustAssemble(src, map[string]uint32{
		"BASE":      base,
		"REGCMD":    hw.DiskRegCmd,
		"REGSTATUS": hw.DiskRegStatus,
		"REGLBA":    hw.DiskRegLBA,
		"REGCOUNT":  hw.DiskRegCount,
		"CMDRESET":  hw.DiskCmdReset,
		"STERROR":   hw.DiskStatError,
	})
}

// Config configures a driver instance factory.
type Config struct {
	Disk *hw.Disk
	// OnVM is the fault-injection hook.
	OnVM func(*ucode.VM)
	// Mechanism selects the driver half of the recovery mechanism; it
	// must match the service's RS configuration.
	Mechanism drvlib.Mechanism
	// Salvage enables the state-capsule save/restore handshake.
	Salvage bool
}

// Binary returns the service binary for this driver.
func Binary(cfg Config) func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) {
		d := &driver{cfg: cfg}
		drvlib.RunWith(c, d, drvlib.Options{Mechanism: cfg.Mechanism, Salvage: cfg.Salvage})
	}
}

type driver struct {
	cfg    Config
	vm     *ucode.VM
	handle *hw.DiskHandle
	opened map[int64]bool // open minor devices
}

var errResetTimeout = errors.New("sata: reset did not complete")

// setup builds the instance's pristine VM and attaches it to the disk's
// IRQ and DMA window, without touching device state.
func (d *driver) setup(c *kernel.Ctx) error {
	img := image(d.cfg.Disk.PortRange().Lo)
	d.vm = ucode.New(img, drvlib.CtxBus{C: c})
	if d.cfg.OnVM != nil {
		d.cfg.OnVM(d.vm)
	}
	d.handle = d.cfg.Disk.Handle()
	if d.opened == nil {
		d.opened = make(map[int64]bool)
	}
	if err := c.IRQSubscribe(d.cfg.Disk.IRQ()); err != nil {
		return fmt.Errorf("irq: %w", err)
	}
	return nil
}

// Init implements drvlib.Device. The reset+identify here is what makes
// disk-driver recovery slower than network-driver recovery in the paper's
// Fig. 8 vs Fig. 7 comparison.
func (d *driver) Init(c *kernel.Ctx) error {
	if err := d.setup(c); err != nil {
		return err
	}
	return d.resetIdentify(c)
}

// resetIdentify pays the full DiskResetDelay cycle.
func (d *driver) resetIdentify(c *kernel.Ctx) error {
	drvlib.React(c, d.vm.Run("reset"))
	deadline := c.Now() + 10*time.Second
	for {
		c.Sleep(20 * time.Millisecond)
		if !drvlib.React(c, d.vm.Run("status")) {
			continue
		}
		st := d.vm.Regs[1]
		if st&hw.DiskStatBusy == 0 && st&hw.DiskStatReady != 0 {
			return nil
		}
		if c.Now() > deadline {
			return errResetTimeout
		}
	}
}

// Promote implements drvlib.Promoter: attach to the disk the dead primary
// left behind. A crash does not reset the device, so it is normally still
// ready and the DiskResetDelay cycle — the dominant term in Fig. 8's
// recovery time — is skipped. A device found busy or not ready pays the
// full reset.
func (d *driver) Promote(c *kernel.Ctx) error {
	if err := d.setup(c); err != nil {
		return err
	}
	if drvlib.React(c, d.vm.Run("status")) {
		st := d.vm.Regs[1]
		if st&hw.DiskStatBusy == 0 && st&hw.DiskStatReady != 0 {
			return nil
		}
	}
	return d.resetIdentify(c)
}

// Microreboot implements drvlib.Microrebooter: swap in a pristine VM
// against the live device. Open minors survive — they were never the
// faulty state.
func (d *driver) Microreboot(c *kernel.Ctx) error {
	img := image(d.cfg.Disk.PortRange().Lo)
	d.vm = ucode.New(img, drvlib.CtxBus{C: c})
	if d.cfg.OnVM != nil {
		d.cfg.OnVM(d.vm)
	}
	if !drvlib.React(c, d.vm.Run("status")) {
		return errors.New("sata: status probe failed after vm reset")
	}
	st := d.vm.Regs[1]
	if st&hw.DiskStatBusy != 0 || st&hw.DiskStatReady == 0 {
		return errors.New("sata: device not ready after vm reset")
	}
	return nil
}

// capsuleKind tags this driver's state capsules.
const capsuleKind = "sata.queue"

// SaveState implements drvlib.Salvager: the open-minor table — the
// pending-queue summary of a quiesced disk driver — survives a clean
// handover, so the file server's open devices stay open.
func (d *driver) SaveState(c *kernel.Ctx) (string, []byte) {
	minors := make([]int64, 0, len(d.opened))
	for m, open := range d.opened {
		if open {
			minors = append(minors, m)
		}
	}
	sort.Slice(minors, func(i, j int) bool { return minors[i] < minors[j] })
	b := make([]byte, 0, 4+8*len(minors))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(minors)))
	for _, m := range minors {
		b = binary.LittleEndian.AppendUint64(b, uint64(m))
	}
	return capsuleKind, b
}

// RestoreState implements drvlib.Salvager: validate, then adopt.
func (d *driver) RestoreState(c *kernel.Ctx, kind string, payload []byte) error {
	if kind != capsuleKind || len(payload) < 4 {
		return errors.New("sata: foreign or malformed capsule")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n < 0 || n > 1024 || len(payload) != 4+8*n {
		return errors.New("sata: capsule minor count out of range")
	}
	for i := 0; i < n; i++ {
		minor := int64(binary.LittleEndian.Uint64(payload[4+8*i:]))
		if minor < 0 {
			return errors.New("sata: capsule names a negative minor")
		}
		d.opened[minor] = true
	}
	return nil
}

// HandleRequest implements drvlib.Device: the synchronous block protocol.
func (d *driver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	switch m.Type {
	case proto.BdevOpen:
		d.opened[m.Arg1] = true
		_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.OK})
	case proto.BdevRead:
		d.transfer(c, m, false)
	case proto.BdevWrite:
		d.transfer(c, m, true)
	}
}

// transfer performs one read or write: submit through the VM, wait for
// the completion interrupt, move data across the caller's grant.
func (d *driver) transfer(c *kernel.Ctx, m kernel.Message, write bool) {
	lba, count := m.Arg1, m.Arg2
	nbytes := int(count) * hw.SectorSize
	fail := func() {
		_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: proto.ErrIO})
	}
	if count <= 0 || lba < 0 {
		fail()
		return
	}
	cmd := uint32(hw.DiskCmdRead)
	if write {
		cmd = hw.DiskCmdWrite
		// Pull the payload from the file server's grant into the DMA
		// window before issuing the command.
		buf := make([]byte, nbytes)
		if err := c.SafeCopyFrom(m.Source, m.Grant, 0, buf); err != nil {
			fail()
			return
		}
		d.handle.PutData(buf)
	}
	if !drvlib.React(c, d.vm.Run("submit", uint32(lba), uint32(count), cmd)) {
		fail()
		return
	}
	// Synchronous wait for the completion interrupt, like the MINIX
	// at_wini driver. Other requests queue behind us meanwhile.
	for {
		if _, err := c.Receive(kernel.Hardware); err != nil {
			fail()
			return
		}
		if !drvlib.React(c, d.vm.Run("status")) {
			fail()
			return
		}
		if d.vm.Regs[1]&hw.DiskStatBusy == 0 {
			break
		}
	}
	if !drvlib.React(c, d.vm.Run("checkdone")) {
		fail()
		return
	}
	if write {
		_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: int64(nbytes)})
		return
	}
	data := d.handle.TakeData()
	if data == nil || len(data) < nbytes {
		fail()
		return
	}
	if err := c.SafeCopyTo(m.Source, m.Grant, 0, data[:nbytes]); err != nil {
		fail()
		return
	}
	_ = c.Send(m.Source, kernel.Message{Type: proto.BdevReply, Arg1: int64(nbytes)})
}

// HandleIRQ implements drvlib.Device. Completion interrupts are consumed
// synchronously inside transfer; anything arriving here is stale.
func (d *driver) HandleIRQ(c *kernel.Ctx, mask uint64) {}

// HandleAlarm implements drvlib.Device.
func (d *driver) HandleAlarm(c *kernel.Ctx) {}

// Shutdown implements drvlib.Device.
func (d *driver) Shutdown(c *kernel.Ctx) {
	drvlib.React(c, d.vm.Run("reset"))
}
