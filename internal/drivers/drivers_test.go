// Package drivers_test exercises each driver against its real device
// model through the kernel's IPC, port-I/O, and IRQ machinery — without
// the servers above them.
package drivers_test

import (
	"bytes"
	"testing"
	"time"

	"resilientos/internal/drivers/dp8390"
	"resilientos/internal/drivers/ramdisk"
	"resilientos/internal/drivers/rtl8139"
	"resilientos/internal/drivers/sata"
	"resilientos/internal/fi"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
	"resilientos/internal/ucode"
)

func driverPriv(ports kernel.PortRange, irq int) kernel.Privileges {
	return kernel.Privileges{
		AllowAllIPC: true,
		Calls: []kernel.Call{kernel.CallDevIO, kernel.CallIRQCtl,
			kernel.CallAlarm, kernel.CallSafeCopy},
		Ports: []kernel.PortRange{ports},
		IRQs:  []int{irq},
	}
}

// netRig: two NICs on a wire, one real driver per side.
type netRig struct {
	env  *sim.Env
	k    *kernel.Kernel
	a, b kernel.Endpoint
	nicA *hw.NIC
	nicB *hw.NIC
}

func newNetRig(t *testing.T, mkA, mkB func(nic *hw.NIC) func(*kernel.Ctx)) *netRig {
	t.Helper()
	env := sim.NewEnv(1)
	k := kernel.New(env)
	nicA := hw.NewNIC(env, k, hw.NICConfig{Base: 0x1000, IRQ: 9})
	nicB := hw.NewNIC(env, k, hw.NICConfig{Base: 0x1100, IRQ: 10})
	hw.Connect(env, nicA, nicB)
	ac, err := k.Spawn("drvA", driverPriv(nicA.PortRange(), nicA.IRQ()), mkA(nicA))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := k.Spawn("drvB", driverPriv(nicB.PortRange(), nicB.IRQ()), mkB(nicB))
	if err != nil {
		t.Fatal(err)
	}
	return &netRig{env: env, k: k, a: ac.Endpoint(), b: bc.Endpoint(), nicA: nicA, nicB: nicB}
}

// pump exchanges frames via two client processes; returns what B's client
// received.
func exchange(t *testing.T, r *netRig, frames [][]byte) [][]byte {
	t.Helper()
	var received [][]byte
	r.k.Spawn("clientB", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		if _, err := c.SendRec(r.b, kernel.Message{Type: proto.EthConf, Arg1: proto.EthConfPromisc}); err != nil {
			t.Errorf("conf B: %v", err)
			return
		}
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.EthRecv {
				received = append(received, m.Payload)
			}
		}
	})
	r.k.Spawn("clientA", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		if _, err := c.SendRec(r.a, kernel.Message{Type: proto.EthConf, Arg1: proto.EthConfPromisc}); err != nil {
			t.Errorf("conf A: %v", err)
			return
		}
		for _, f := range frames {
			_ = c.AsyncSend(r.a, kernel.Message{Type: proto.EthSend, Payload: f})
			c.Sleep(time.Millisecond)
		}
	})
	r.env.Run(10 * time.Second)
	return received
}

func TestRTL8139FrameExchange(t *testing.T) {
	r := newNetRig(t,
		func(n *hw.NIC) func(*kernel.Ctx) { return rtl8139.Binary(rtl8139.Config{NIC: n}) },
		func(n *hw.NIC) func(*kernel.Ctx) { return rtl8139.Binary(rtl8139.Config{NIC: n}) },
	)
	frames := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	got := exchange(t, r, frames)
	if len(got) != 3 {
		t.Fatalf("received %d frames, want 3", len(got))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d = %q", i, got[i])
		}
	}
}

func TestDP8390FrameExchange(t *testing.T) {
	r := newNetRig(t,
		func(n *hw.NIC) func(*kernel.Ctx) { return dp8390.Binary(dp8390.Config{NIC: n}) },
		func(n *hw.NIC) func(*kernel.Ctx) { return dp8390.Binary(dp8390.Config{NIC: n}) },
	)
	var frames [][]byte
	for i := 0; i < 20; i++ {
		frames = append(frames, bytes.Repeat([]byte{byte(i)}, 100+i))
	}
	got := exchange(t, r, frames)
	if len(got) != 20 {
		t.Fatalf("received %d frames, want 20", len(got))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestDP8390SurvivesBenignFaultsAndCrashesOnBadOnes(t *testing.T) {
	// Inject faults into a *running* dp8390 until it dies; the VM must
	// classify the death as one of the §7.2 outcomes.
	env := sim.NewEnv(1)
	k := kernel.New(env)
	nicA := hw.NewNIC(env, k, hw.NICConfig{Base: 0x1000, IRQ: 9})
	nicB := hw.NewNIC(env, k, hw.NICConfig{Base: 0x1100, IRQ: 10})
	hw.Connect(env, nicA, nicB)
	var vm *ucode.VM
	dc, err := k.Spawn("dp", driverPriv(nicB.PortRange(), nicB.IRQ()),
		dp8390.Binary(dp8390.Config{NIC: nicB, OnVM: func(v *ucode.VM) { vm = v }}))
	if err != nil {
		t.Fatal(err)
	}
	drvEp := dc.Endpoint()
	// Feed it frames from the raw A side.
	k.Spawn("feeder", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		if _, err := c.SendRec(drvEp, kernel.Message{Type: proto.EthConf, Arg1: proto.EthConfPromisc}); err != nil {
			return
		}
		for {
			nicA.Handle().SetTx([]byte("traffic"))
			nicA.PortOut(0x1000+hw.NICRegCmd, hw.NICCmdRxEnable)
			nicA.PortOut(0x1000+hw.NICRegTxGo, 1)
			c.Sleep(5 * time.Millisecond)
		}
	})
	inj := fi.New(env.Rand())
	crashed := false
	var cause kernel.Cause
	for i := 0; i < 500 && !crashed; i++ {
		env.Run(20 * time.Millisecond)
		if !k.Alive(drvEp) {
			cause, _ = k.CauseOf(drvEp)
			crashed = true
			break
		}
		if vm != nil {
			inj.InjectRandom(vm.Img)
		}
	}
	if !crashed {
		t.Skip("no crash in 500 faults with this seed (driver may be wedged instead)")
	}
	switch cause.Kind {
	case kernel.CauseExit, kernel.CauseException:
	default:
		t.Fatalf("unexpected death cause %v", cause)
	}
}

func TestSATATransferViaGrant(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	disk := hw.NewDisk(env, k, hw.DiskConfig{
		Base: 0x2000, IRQ: 14, Sectors: 4096, Seed: 5,
		ResetDelay: 10 * time.Millisecond,
	})
	dc, err := k.Spawn("sata", driverPriv(disk.PortRange(), disk.IRQ()),
		sata.Binary(sata.Config{Disk: disk}))
	if err != nil {
		t.Fatal(err)
	}
	drv := dc.Endpoint()
	ok := false
	k.Spawn("fs", kernel.Privileges{
		AllowAllIPC: true, Calls: []kernel.Call{kernel.CallSafeCopy},
	}, func(c *kernel.Ctx) {
		c.Sleep(time.Second) // driver init
		if re, err := c.SendRec(drv, kernel.Message{Type: proto.BdevOpen, Arg1: 0}); err != nil || re.Arg1 != proto.OK {
			t.Errorf("open: %v %d", err, re.Arg1)
			return
		}
		// Write 4 sectors, read them back.
		payload := bytes.Repeat([]byte{0xC3}, 4*hw.SectorSize)
		g := c.CreateGrant(payload, kernel.GrantRead, drv)
		re, err := c.SendRec(drv, kernel.Message{Type: proto.BdevWrite, Arg1: 100, Arg2: 4, Grant: g})
		c.RevokeGrant(g)
		if err != nil || re.Arg1 != int64(len(payload)) {
			t.Errorf("write: %v %d", err, re.Arg1)
			return
		}
		buf := make([]byte, 4*hw.SectorSize)
		g = c.CreateGrant(buf, kernel.GrantWrite, drv)
		re, err = c.SendRec(drv, kernel.Message{Type: proto.BdevRead, Arg1: 100, Arg2: 4, Grant: g})
		c.RevokeGrant(g)
		if err != nil || re.Arg1 != int64(len(buf)) {
			t.Errorf("read: %v %d", err, re.Arg1)
			return
		}
		if !bytes.Equal(buf, payload) {
			t.Error("roundtrip mismatch")
			return
		}
		// Out-of-range access fails cleanly.
		g = c.CreateGrant(buf, kernel.GrantWrite, drv)
		re, err = c.SendRec(drv, kernel.Message{Type: proto.BdevRead, Arg1: 1 << 30, Arg2: 4, Grant: g})
		c.RevokeGrant(g)
		if err != nil || re.Arg1 != proto.ErrIO {
			t.Errorf("oob read: %v %d, want ErrIO", err, re.Arg1)
			return
		}
		ok = true
	})
	env.Run(time.Minute)
	if !ok {
		t.Fatal("fs client did not finish")
	}
}

func TestRAMDiskPersistsAcrossRestart(t *testing.T) {
	env := sim.NewEnv(1)
	k := kernel.New(env)
	store := ramdisk.NewStore()
	mk := func() kernel.Endpoint {
		c, err := k.Spawn("ram", kernel.Privileges{
			AllowAllIPC: true, Calls: []kernel.Call{kernel.CallSafeCopy},
		}, ramdisk.Binary(ramdisk.Config{Backing: store}))
		if err != nil {
			t.Fatal(err)
		}
		return c.Endpoint()
	}
	first := mk()
	done := false
	k.Spawn("fs", kernel.Privileges{
		AllowAllIPC: true, Calls: []kernel.Call{kernel.CallSafeCopy, kernel.CallKill},
	}, func(c *kernel.Ctx) {
		payload := bytes.Repeat([]byte{7}, hw.SectorSize)
		g := c.CreateGrant(payload, kernel.GrantRead, first)
		if re, err := c.SendRec(first, kernel.Message{Type: proto.BdevWrite, Arg1: 9, Arg2: 1, Grant: g}); err != nil || re.Arg1 < 0 {
			t.Errorf("write: %v", err)
			return
		}
		c.RevokeGrant(g)
		// Kill the driver; contents must survive in the backing store.
		if err := c.Kill(first, kernel.SIGKILL); err != nil {
			t.Errorf("kill: %v", err)
			return
		}
		c.Sleep(10 * time.Millisecond)
		second := mk()
		c.Sleep(10 * time.Millisecond)
		buf := make([]byte, hw.SectorSize)
		g = c.CreateGrant(buf, kernel.GrantWrite, second)
		if re, err := c.SendRec(second, kernel.Message{Type: proto.BdevRead, Arg1: 9, Arg2: 1, Grant: g}); err != nil || re.Arg1 < 0 {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(buf, payload) {
			t.Error("RAM disk contents lost across driver restart")
			return
		}
		done = true
	})
	// fs needs kill rights for this test.
	env.Run(time.Minute)
	if !done {
		t.Fatal("client did not finish")
	}
}
