// Package dp8390 implements the DP8390 (NE2000-class) Ethernet driver —
// the target of the paper's §7.2 fault-injection campaign ("targeted the
// DP8390 Ethernet driver and repeatedly injected 1 randomly selected fault
// into the running driver until it crashed").
//
// Compared to the RTL8139 driver, its control program keeps more state in
// driver RAM (mirroring the real chip's ring pointers) and uses more
// loops, consistency asserts, and pointer arithmetic — the raw material
// binary-level faults act on: a garbled pointer lands out of RAM bounds
// (MMU exception), a failed assert panics the driver, and an inverted
// loop condition spins until the step budget marks the driver stuck
// (caught by heartbeats).
package dp8390

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"resilientos/internal/drvlib"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/ucode"
)

// Driver RAM layout (word addresses).
const (
	ramBnry    = 8  // boundary pointer (last page the host consumed)
	ramCurr    = 9  // current page the card writes next
	ramRxCount = 10 // frames delivered to the host
	ramTxCount = 11 // frames handed to the card
	ramCanary  = 12 // state canary; corruption is a driver panic
	ramPageLog = 16 // log of popped frames, indexed per drain loop
)

// canaryMagic is the state canary value planted at reset.
const canaryMagic = 0x5A3C

// nPages is the simulated ring size in pages.
const nPages = 16

// src is the control program. Results in r1. The structure is tuned so
// that injected binary faults manifest the way they do in real driver
// code: most faults either trip one of the driver's own consistency
// checks (panic) or garble a pointer/computed address (MMU exception);
// only loops that touch no memory can spin silently until the heartbeat
// monitor notices.
const src = `
; DP8390-class driver control paths.
.entry reset
reset:
	movi r1, BASE
	movi r2, CMDRESET
	out  [r1+REGCMD], r2
	movi r2, 0              ; ring pointers restart at page 0
	movi r3, BNRY
	st   [r3+0], r2
	movi r3, CURR
	st   [r3+0], r2
	movi r2, MAGIC          ; plant the state canary
	movi r3, CANARY
	st   [r3+0], r2
	halt

; canary: every routine validates the driver-state canary first, the way
; real drivers panic on corrupted state.
canary:
	movi r9, CANARY
	ld   r10, [r9+0]
	cmpi r10, MAGIC
	movi r11, 1
	jz   canaryok
	movi r11, 0
canaryok:
	assert r11             ; driver state block is corrupt
	ret

.entry status            ; r1 = status register
status:
	call canary
	movi r1, BASE
	in   r2, [r1+REGSTATUS]
	mov  r3, r2
	shri r3, 6
	cmpi r3, 0
	movi r4, 1
	jz   stok
	movi r4, 0
stok:
	assert r4              ; reserved status bits must read zero
	mov  r1, r2
	halt

.entry enable
enable:
	call canary
	movi r1, BASE
	movi r2, CFGPROMISC
	out  [r1+REGCFG], r2
	in   r3, [r1+REGCFG]
	cmp  r3, r2
	movi r4, 1
	jz   cfgok
	movi r4, 0
cfgok:
	assert r4              ; config readback must match
	movi r2, CMDRXEN
	out  [r1+REGCMD], r2
	in   r3, [r1+REGSTATUS]
	andi r3, STENABLED
	assert r3              ; receiver must come up
	in   r3, [r1+REGSTATUS]
	andi r3, STCONFUSED
	cmpi r3, 0
	movi r4, 1
	jz   sane
	movi r4, 0
sane:
	assert r4              ; card must not be wedged after init
	halt

.entry tx
tx:
	call canary
	movi r1, BASE
	in   r2, [r1+REGSTATUS]
	mov  r3, r2
	shri r3, 6
	cmpi r3, 0
	movi r4, 1
	jz   txstok
	movi r4, 0
txstok:
	assert r4              ; reserved status bits must read zero
	andi r2, STTXBUSY
	cmpi r2, 0
	jnz  txbusy
	movi r2, 1
	out  [r1+REGTXGO], r2
	movi r3, TXCOUNT
	ld   r4, [r3+0]
	addi r4, 1
	st   [r3+0], r4
	ld   r5, [r3+0]
	cmp  r5, r4
	movi r6, 1
	jz   txacct
	movi r6, 0
txacct:
	assert r6              ; accounting readback must match
	assert r4              ; counter cannot be zero after increment
	movi r1, 1
	halt
txbusy:
	movi r1, 0
	fail

; rxdrain pops up to 8 frames, advancing the software ring pointers the
; way the real chip's BNRY/CURR dance works. r1 = frames popped. Each
; iteration logs into the page log indexed by the loop counter, so a
; runaway loop walks off the state block and faults instead of spinning.
.entry rxdrain
rxdrain:
	call canary
	movi r6, 0             ; popped count
	movi r7, 8             ; drain budget per interrupt
drainloop:
	cmp  r6, r7
	jge  drained
	movi r1, BASE
	in   r2, [r1+REGRXLEN]
	cmpi r2, 0
	jz   drained
	movi r3, 1
	out  [r1+REGRXPOP], r3
	assert r2              ; popped frame must have a length
	cmpi r2, 1519
	movi r3, 1
	jlt  lenok
	movi r3, 0
lenok:
	assert r3              ; frame cannot exceed wire MTU
	; log the pop, indexed by the loop counter (bounds-checked, like a
	; defensive C driver's array guard)
	movi r5, PAGELOG
	add  r5, r6
	cmpi r5, 1024
	movi r3, 1
	jlt  logok
	movi r3, 0
logok:
	assert r3              ; log index within the state block
	st   [r5+0], r2
	; advance boundary pointer modulo NPAGES
	movi r3, BNRY
	ld   r4, [r3+0]
	addi r4, 1
	cmpi r4, NPAGES
	jlt  nowrap
	movi r4, 0
nowrap:
	st   [r3+0], r4
	; program the card's boundary register, like the real chip requires —
	; a garbled value here is what wedges real hardware
	movi r5, BASE
	out  [r5+REGBNRY], r4
	movi r5, NPAGES
	cmp  r4, r5
	movi r2, 1
	jlt  bnryok
	movi r2, 0
bnryok:
	assert r2              ; bnry must remain a valid page index
	movi r3, RXCOUNT
	ld   r4, [r3+0]
	addi r4, 1
	st   [r3+0], r4
	addi r6, 1
	jmp  drainloop
drained:
	mov  r1, r6
	halt
`

// image assembles the pristine driver binary for a NIC at the given base.
func image(base uint32) *ucode.Image {
	return ucode.MustAssemble(src, map[string]uint32{
		"BASE":       base,
		"REGCMD":     hw.NICRegCmd,
		"REGSTATUS":  hw.NICRegStatus,
		"REGCFG":     hw.NICRegCfg,
		"REGRXLEN":   hw.NICRegRxLen,
		"REGRXPOP":   hw.NICRegRxPop,
		"REGTXGO":    hw.NICRegTxGo,
		"REGBNRY":    hw.NICRegBnry,
		"CMDRESET":   hw.NICCmdReset,
		"CMDRXEN":    hw.NICCmdRxEnable,
		"CFGPROMISC": hw.NICCfgPromisc,
		"STENABLED":  hw.NICStatEnabled,
		"STTXBUSY":   hw.NICStatTxBusy,
		"STCONFUSED": hw.NICStatConfused,
		"BNRY":       ramBnry,
		"CANARY":     ramCanary,
		"MAGIC":      canaryMagic,
		"CURR":       ramCurr,
		"RXCOUNT":    ramRxCount,
		"TXCOUNT":    ramTxCount,
		"PAGELOG":    ramPageLog,
		"NPAGES":     nPages,
	})
}

// Image returns a pristine copy of the driver binary for a NIC at base —
// exported for the fault injector's applicability analysis and tests.
func Image(base uint32) *ucode.Image { return image(base) }

// Config configures a driver instance factory.
type Config struct {
	NIC *hw.NIC
	// QueueLen bounds the internal transmit queue (default 64).
	QueueLen int
	// OnVM is the fault-injection hook, called with each instance's VM.
	OnVM func(*ucode.VM)
	// Mechanism selects the driver half of the recovery mechanism; it
	// must match the service's RS configuration.
	Mechanism drvlib.Mechanism
	// Salvage enables the state-capsule save/restore handshake.
	Salvage bool
}

// Binary returns the service binary for this driver.
func Binary(cfg Config) func(c *kernel.Ctx) {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 64
	}
	return func(c *kernel.Ctx) {
		d := &driver{cfg: cfg}
		drvlib.RunWith(c, d, drvlib.Options{Mechanism: cfg.Mechanism, Salvage: cfg.Salvage})
	}
}

type driver struct {
	cfg    Config
	vm     *ucode.VM
	handle *hw.NICHandle
	txQ    [][]byte
	txBusy bool
	client kernel.Endpoint
}

var errResetTimeout = errors.New("dp8390: reset did not complete")

// setup builds the instance's pristine VM and attaches it to the card's
// IRQ and DMA window, without touching device state.
func (d *driver) setup(c *kernel.Ctx) error {
	img := image(d.cfg.NIC.PortRange().Lo)
	d.vm = ucode.New(img, drvlib.CtxBus{C: c})
	if d.cfg.OnVM != nil {
		d.cfg.OnVM(d.vm)
	}
	d.handle = d.cfg.NIC.Handle()
	if err := c.IRQSubscribe(d.cfg.NIC.IRQ()); err != nil {
		return fmt.Errorf("irq: %w", err)
	}
	return nil
}

// plantState seeds the software state block a fresh (zeroed) VM needs to
// pass its own consistency checks: the canary and ring pointers that the
// "reset" routine normally plants.
func (d *driver) plantState() {
	d.vm.RAM[ramCanary] = canaryMagic
	d.vm.RAM[ramBnry] = 0
	d.vm.RAM[ramCurr] = 0
}

// Init implements drvlib.Device.
func (d *driver) Init(c *kernel.Ctx) error {
	if err := d.setup(c); err != nil {
		return err
	}
	return d.resetEnable(c)
}

// resetEnable pays the full hardware reset cycle and re-enables the
// receiver.
func (d *driver) resetEnable(c *kernel.Ctx) error {
	drvlib.React(c, d.vm.Run("reset"))
	deadline := c.Now() + 2*time.Second
	for {
		c.Sleep(10 * time.Millisecond)
		if !drvlib.React(c, d.vm.Run("status")) {
			continue
		}
		if d.vm.Regs[1]&hw.NICStatResetBsy == 0 {
			break
		}
		if c.Now() > deadline {
			return errResetTimeout
		}
	}
	if !drvlib.React(c, d.vm.Run("enable")) {
		return errors.New("dp8390: enable failed")
	}
	return nil
}

// Promote implements drvlib.Promoter: attach to the card the dead primary
// left behind, skipping the reset cycle when the receiver is still
// enabled. The software state block is re-planted either way — it lived
// in the dead instance's VM, not in the card.
func (d *driver) Promote(c *kernel.Ctx) error {
	if err := d.setup(c); err != nil {
		return err
	}
	d.plantState()
	if drvlib.React(c, d.vm.Run("status")) {
		st := d.vm.Regs[1]
		if st&hw.NICStatEnabled != 0 && st&hw.NICStatResetBsy == 0 {
			d.txBusy = st&hw.NICStatTxBusy != 0
			return nil
		}
	}
	return d.resetEnable(c)
}

// Microreboot implements drvlib.Microrebooter: swap in a pristine VM,
// re-plant the software ring state, and re-derive the transmit
// bookkeeping from the live card — the in-place reset that absorbs a
// faulted VM without a hardware reset or respawn.
func (d *driver) Microreboot(c *kernel.Ctx) error {
	img := image(d.cfg.NIC.PortRange().Lo)
	d.vm = ucode.New(img, drvlib.CtxBus{C: c})
	if d.cfg.OnVM != nil {
		d.cfg.OnVM(d.vm)
	}
	d.plantState()
	if !drvlib.React(c, d.vm.Run("status")) {
		return errors.New("dp8390: status probe failed after vm reset")
	}
	st := d.vm.Regs[1]
	if st&hw.NICStatEnabled == 0 {
		if !drvlib.React(c, d.vm.Run("enable")) {
			return errors.New("dp8390: re-enable failed")
		}
	}
	d.txBusy = st&hw.NICStatTxBusy != 0
	d.pump(c)
	return nil
}

// capsuleKind tags this driver's state capsules.
const capsuleKind = "dp8390.conf"

// SaveState implements drvlib.Salvager: the network server binding
// survives a clean handover.
func (d *driver) SaveState(c *kernel.Ctx) (string, []byte) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(d.client))
	return capsuleKind, b[:]
}

// RestoreState implements drvlib.Salvager: validate, then adopt; a stale
// client endpoint rejects the capsule.
func (d *driver) RestoreState(c *kernel.Ctx, kind string, payload []byte) error {
	if kind != capsuleKind || len(payload) != 8 {
		return errors.New("dp8390: foreign or malformed capsule")
	}
	client := kernel.Endpoint(binary.LittleEndian.Uint64(payload))
	if client == 0 || client == kernel.None {
		return nil // predecessor had no client bound
	}
	if !c.Kernel().Alive(client) {
		return errors.New("dp8390: capsule client endpoint is stale")
	}
	d.client = client
	return nil
}

// HandleRequest implements drvlib.Device.
func (d *driver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	switch m.Type {
	case proto.EthConf:
		d.client = m.Source
		_ = c.Send(m.Source, kernel.Message{Type: proto.EthAck, Arg1: proto.OK})
	case proto.EthSend:
		if len(d.txQ) >= d.cfg.QueueLen {
			return // dropped; reliable protocols retransmit
		}
		d.txQ = append(d.txQ, m.Payload)
		d.pump(c)
	}
}

func (d *driver) pump(c *kernel.Ctx) {
	if d.txBusy || len(d.txQ) == 0 {
		return
	}
	frame := d.txQ[0]
	d.txQ = d.txQ[1:]
	d.handle.SetTx(frame)
	if drvlib.React(c, d.vm.Run("tx")) {
		d.txBusy = true
	}
}

// HandleIRQ implements drvlib.Device.
func (d *driver) HandleIRQ(c *kernel.Ctx, mask uint64) {
	for rounds := 0; ; rounds++ {
		if rounds > 32 {
			// A (faulty) drain that always claims a full batch would spin
			// here forever: that is a wedged interrupt handler, observable
			// only through missed heartbeats.
			drvlib.Stuck(c)
		}
		if !drvlib.React(c, d.vm.Run("rxdrain")) {
			break
		}
		popped := int(d.vm.Regs[1])
		for i := 0; i < popped; i++ {
			// rxdrain pops register-side; the DMA window holds the last
			// frame only, so drain one frame per VM call in lockstep.
			frame := d.handle.TakeRx()
			if frame == nil {
				break
			}
			if d.client != kernel.None && d.client != 0 {
				_ = c.AsyncSend(d.client, kernel.Message{Type: proto.EthRecv, Payload: frame})
			}
		}
		if popped < 8 {
			break
		}
	}
	if drvlib.React(c, d.vm.Run("status")) {
		if d.vm.Regs[1]&hw.NICStatTxBusy == 0 {
			d.txBusy = false
			d.pump(c)
		}
	}
}

// HandleAlarm implements drvlib.Device.
func (d *driver) HandleAlarm(c *kernel.Ctx) {}

// Shutdown implements drvlib.Device.
func (d *driver) Shutdown(c *kernel.Ctx) {
	drvlib.React(c, d.vm.Run("reset"))
}
