// Package chardrv implements the character device drivers of paper §6.3 —
// audio, printer, and CD burner. Character streams cannot be transparently
// recovered (input can be read from the controller only once; output
// progress is unobservable), so these drivers simply die with their state
// and leave the error handling to the application layer.
package chardrv

import (
	"resilientos/internal/drvlib"
	"resilientos/internal/hw"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
)

// AudioBinary returns the audio driver's service binary. ChrWrite feeds
// samples; the device plays them at its fixed rate and hiccups audibly if
// a dead driver lets the buffer run dry.
func AudioBinary(dev *hw.Audio) func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) {
		drvlib.Run(c, &audioDriver{dev: dev})
	}
}

type audioDriver struct {
	dev    *hw.Audio
	handle *hw.AudioHandle
}

func (d *audioDriver) Init(c *kernel.Ctx) error {
	d.handle = d.dev.Handle()
	if err := c.IRQSubscribe(d.dev.IRQ()); err != nil {
		return err
	}
	base := d.dev.PortRange().Lo
	// Reset, then start the playback engine. A *restarted* audio driver
	// resets the device: whatever was buffered is gone — the hiccup.
	if err := c.DevOut(base+hw.CharRegCmd, hw.CharCmdReset); err != nil {
		return err
	}
	return c.DevOut(base+hw.CharRegCmd, hw.CharCmdStart)
}

func (d *audioDriver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	switch m.Type {
	case proto.ChrOpen:
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: proto.OK})
	case proto.ChrWrite:
		n := d.handle.Feed(len(m.Payload))
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: int64(n)})
	case proto.ChrRead:
		data := d.handle.ReadCapture(int(m.Arg1))
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: int64(len(data)), Payload: data})
	default:
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: proto.ErrBadCall})
	}
}

func (d *audioDriver) HandleIRQ(c *kernel.Ctx, mask uint64) {} // refill is app-paced

func (d *audioDriver) HandleAlarm(c *kernel.Ctx) {}

func (d *audioDriver) Shutdown(c *kernel.Ctx) {
	_ = c.DevOut(d.dev.PortRange().Lo+hw.CharRegCmd, hw.CharCmdStop)
}

// PrinterBinary returns the printer driver's service binary. ChrWrite
// prints one line synchronously: the reply arrives after the line is on
// paper. A driver crash between submission and reply makes it impossible
// for the client to know whether the line printed — resubmitting may
// duplicate it (§6.3: "duplicate printouts may result").
func PrinterBinary(dev *hw.Printer) func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) {
		drvlib.Run(c, &printerDriver{dev: dev})
	}
}

type printerDriver struct {
	dev    *hw.Printer
	handle *hw.PrinterHandle
}

func (d *printerDriver) Init(c *kernel.Ctx) error {
	d.handle = d.dev.Handle()
	if err := c.IRQSubscribe(d.dev.IRQ()); err != nil {
		return err
	}
	// Reset loses any in-flight line of the previous instance.
	return c.DevOut(d.dev.PortRange().Lo+hw.CharRegCmd, hw.CharCmdReset)
}

func (d *printerDriver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	switch m.Type {
	case proto.ChrOpen:
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: proto.OK})
	case proto.ChrWrite:
		if !d.handle.Submit(string(m.Payload)) {
			_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: proto.ErrAgain})
			return
		}
		// Synchronous completion: wait for the line-done interrupt.
		if _, err := c.Receive(kernel.Hardware); err != nil {
			_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: proto.ErrIO})
			return
		}
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: int64(len(m.Payload))})
	default:
		_ = c.Send(m.Source, kernel.Message{Type: proto.ChrReply, Arg1: proto.ErrBadCall})
	}
}

func (d *printerDriver) HandleIRQ(c *kernel.Ctx, mask uint64) {}

func (d *printerDriver) HandleAlarm(c *kernel.Ctx) {}

func (d *printerDriver) Shutdown(c *kernel.Ctx) {}

// BurnerBinary returns the CD burner driver's service binary. Burns are
// the unrecoverable case: a driver crash stalls the laser past its buffer
// and ruins the disc; the only honest outcome is an error to the user.
func BurnerBinary(dev *hw.Burner) func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) {
		drvlib.Run(c, &burnerDriver{dev: dev})
	}
}

type burnerDriver struct {
	dev    *hw.Burner
	handle *hw.BurnerHandle
}

func (d *burnerDriver) Init(c *kernel.Ctx) error {
	d.handle = d.dev.Handle()
	if err := c.IRQSubscribe(d.dev.IRQ()); err != nil {
		return err
	}
	// Reinitializing the controller aborts any burn in progress — this is
	// exactly why a mid-burn driver failure cannot be recovered (§6.3).
	return c.DevOut(d.dev.PortRange().Lo+hw.CharRegCmd, hw.CharCmdReset)
}

func (d *burnerDriver) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	reply := kernel.Message{Type: proto.ChrReply, Arg1: proto.OK}
	switch m.Type {
	case proto.ChrOpen:
	case proto.ChrWrite:
		d.handle.Write(int64(len(m.Payload)))
		reply.Arg1 = int64(len(m.Payload))
	case proto.ChrIoctl:
		switch m.Arg1 {
		case proto.ChrIoctlBurnBegin:
			d.handle.Begin(m.Arg2)
		case proto.ChrIoctlBurnFinish:
			if d.handle.Finish() {
				reply.Arg1 = 1
			} else {
				reply.Arg1 = 0
			}
		default:
			reply.Arg1 = proto.ErrBadCall
		}
	default:
		reply.Arg1 = proto.ErrBadCall
	}
	_ = c.Send(m.Source, reply)
}

func (d *burnerDriver) HandleIRQ(c *kernel.Ctx, mask uint64) {}

func (d *burnerDriver) HandleAlarm(c *kernel.Ctx) {}

func (d *burnerDriver) Shutdown(c *kernel.Ctx) {}
