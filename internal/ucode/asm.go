package ucode

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates ucode assembly text into an Image.
//
// Syntax, one instruction or label per line; ';' starts a comment:
//
//	.entry rxpath        ; declare the next label as a named entry point
//	rxpath:
//	    movi r1, 0x1000  ; immediates: decimal, 0x hex, or 'name' constants
//	    in   r2, [r1+4]
//	    cmpi r2, 0
//	    jz   done
//	    ld   r3, [r0+8]
//	    st   [r0+12], r3
//	    assert r3
//	done:
//	    halt
//
// Constants may be predefined via the consts map (register names are
// always r0..r15).
func Assemble(src string, consts map[string]uint32) (*Image, error) {
	type pending struct {
		instr int    // instruction index to patch
		label string // target label
		line  int
	}
	img := &Image{Entries: make(map[string]int)}
	labels := make(map[string]int)
	var fixups []pending
	var entryNext []string

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1

		if strings.HasPrefix(line, ".entry") {
			name := strings.TrimSpace(strings.TrimPrefix(line, ".entry"))
			if name == "" {
				return nil, fmt.Errorf("ucode: line %d: .entry needs a name", lineNo)
			}
			entryNext = append(entryNext, name)
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("ucode: line %d: duplicate label %q", lineNo, label)
			}
			labels[label] = len(img.Code)
			for _, e := range entryNext {
				img.Entries[e] = len(img.Code)
			}
			entryNext = nil
			continue
		}

		mnemonic, rest := line, ""
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		var ops []string
		if rest != "" {
			for _, o := range strings.Split(rest, ",") {
				ops = append(ops, strings.TrimSpace(o))
			}
		}

		instr, labelRef, err := assembleOne(mnemonic, ops, consts)
		if err != nil {
			return nil, fmt.Errorf("ucode: line %d: %v", lineNo, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instr: len(img.Code), label: labelRef, line: lineNo})
		}
		img.Code = append(img.Code, instr)
	}
	if len(entryNext) > 0 {
		return nil, fmt.Errorf("ucode: trailing .entry without label")
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("ucode: line %d: undefined label %q", f.line, f.label)
		}
		if target > 0xFFFF {
			return nil, fmt.Errorf("ucode: line %d: label %q out of range", f.line, f.label)
		}
		img.Code[f.instr] = img.Code[f.instr].WithImm(uint16(target))
	}
	return img, nil
}

// MustAssemble is Assemble that panics on error; for compiled-in driver
// programs whose correctness is a build-time invariant.
func MustAssemble(src string, consts map[string]uint32) *Image {
	img, err := Assemble(src, consts)
	if err != nil {
		panic(err)
	}
	return img
}

var asmOps = map[string]struct {
	op    Op
	shape string // operand shape
}{
	"nop":    {OpNop, ""},
	"movi":   {OpMovI, "ri"},
	"mov":    {OpMov, "rr"},
	"add":    {OpAdd, "rr"},
	"addi":   {OpAddI, "ri"},
	"sub":    {OpSub, "rr"},
	"and":    {OpAnd, "rr"},
	"andi":   {OpAndI, "ri"},
	"or":     {OpOr, "rr"},
	"ori":    {OpOrI, "ri"},
	"xor":    {OpXor, "rr"},
	"shli":   {OpShlI, "ri"},
	"shri":   {OpShrI, "ri"},
	"div":    {OpDiv, "rr"},
	"ld":     {OpLd, "rm"},
	"st":     {OpSt, "mr"},
	"in":     {OpIn, "rm"},
	"out":    {OpOut, "mr"},
	"cmp":    {OpCmp, "rr"},
	"cmpi":   {OpCmpI, "ri"},
	"jmp":    {OpJmp, "l"},
	"jz":     {OpJz, "l"},
	"jnz":    {OpJnz, "l"},
	"jlt":    {OpJlt, "l"},
	"jge":    {OpJge, "l"},
	"call":   {OpCall, "l"},
	"ret":    {OpRet, ""},
	"assert": {OpAssert, "r"},
	"halt":   {OpHalt, ""},
	"fail":   {OpFail, ""},
}

func assembleOne(mnemonic string, ops []string, consts map[string]uint32) (Instr, string, error) {
	spec, ok := asmOps[strings.ToLower(mnemonic)]
	if !ok {
		return 0, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	need := map[string]int{"": 0, "r": 1, "l": 1, "ri": 2, "rr": 2, "rm": 2, "mr": 2}[spec.shape]
	if len(ops) != need {
		return 0, "", fmt.Errorf("%s takes %d operand(s), got %d", mnemonic, need, len(ops))
	}
	switch spec.shape {
	case "":
		return Enc(spec.op, 0, 0, 0), "", nil
	case "r":
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, "", err
		}
		return Enc(spec.op, rd, 0, 0), "", nil
	case "l":
		// Jump/call target: a label or a bare number.
		if imm, err := parseImm(ops[0], consts); err == nil {
			return Enc(spec.op, 0, 0, imm), "", nil
		}
		return Enc(spec.op, 0, 0, 0), ops[0], nil
	case "ri":
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, "", err
		}
		imm, err := parseImm(ops[1], consts)
		if err != nil {
			return 0, "", err
		}
		return Enc(spec.op, rd, 0, imm), "", nil
	case "rr":
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, "", err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, "", err
		}
		return Enc(spec.op, rd, rs, 0), "", nil
	case "rm": // ld/in: reg, [reg+imm]
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, "", err
		}
		rs, imm, err := parseMem(ops[1], consts)
		if err != nil {
			return 0, "", err
		}
		return Enc(spec.op, rd, rs, imm), "", nil
	case "mr": // st/out: [reg+imm], reg
		rd, imm, err := parseMem(ops[0], consts)
		if err != nil {
			return 0, "", err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, "", err
		}
		return Enc(spec.op, rd, rs, imm), "", nil
	}
	return 0, "", fmt.Errorf("bad shape %q", spec.shape)
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseImm(s string, consts map[string]uint32) (uint16, error) {
	s = strings.TrimSpace(s)
	if consts != nil {
		if v, ok := consts[s]; ok {
			if v > 0xFFFF {
				return 0, fmt.Errorf("constant %q = %d exceeds 16 bits", s, v)
			}
			return uint16(v), nil
		}
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -0x8000 || v > 0xFFFF {
		return 0, fmt.Errorf("immediate %q out of 16-bit range", s)
	}
	return uint16(v), nil
}

// parseMem parses "[rN+imm]", "[rN]", or "[rN+name]".
func parseMem(s string, consts map[string]uint32) (reg int, imm uint16, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart, immPart := inner, ""
	if i := strings.IndexByte(inner, '+'); i >= 0 {
		regPart, immPart = inner[:i], inner[i+1:]
	}
	reg, err = parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	if immPart != "" {
		imm, err = parseImm(immPart, consts)
		if err != nil {
			return 0, 0, err
		}
	}
	return reg, imm, nil
}
