package ucode

import "fmt"

// Outcome classifies how a VM invocation ended. The mapping to the paper's
// observable failure classes is documented on the package comment.
type Outcome int

// Invocation outcomes.
const (
	OutcomeOK     Outcome = iota + 1 // halt: routine succeeded
	OutcomeFail                      // fail: routine reported an error
	OutcomeAssert                    // consistency check failed -> driver panic
	OutcomeMMU                       // bad memory access -> MMU exception
	OutcomeCPU                       // illegal instruction etc. -> CPU exception
	OutcomeStall                     // step budget exhausted -> driver stuck
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeFail:
		return "fail"
	case OutcomeAssert:
		return "assert"
	case OutcomeMMU:
		return "mmu"
	case OutcomeCPU:
		return "cpu"
	case OutcomeStall:
		return "stall"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// IOBus is the VM's window onto device ports; drivers bind it to their
// kernel context's DevIn/DevOut. A denied or failed port access reads as
// all-ones and writes are dropped — mirroring how a buggy driver's bad
// port access is contained by the kernel's privilege check rather than
// crashing anything else.
type IOBus interface {
	In(port uint32) (uint32, bool)
	Out(port uint32, val uint32) bool
}

// RAMWords is the size of the driver-local scratch RAM in 32-bit words.
const RAMWords = 1024

// callDepth bounds the VM call stack.
const callDepth = 32

// DefaultStepBudget bounds one invocation; exceeding it means the driver
// is stuck (infinite loop) and will be caught by missed heartbeats.
const DefaultStepBudget = 50_000

// VM executes routines of an Image against driver-local RAM and a port
// bus. One VM instance belongs to one driver process instance.
type VM struct {
	Img    *Image
	Bus    IOBus
	RAM    [RAMWords]uint32
	Regs   [NumRegs]uint32
	Budget int // per-invocation step budget; DefaultStepBudget if zero

	IOErrors int // denied/failed port accesses (counted, not fatal)
	Steps    int // total steps executed across invocations

	// PerfBegin/PerfEnd bracket every invocation for the wall-clock
	// profiler (internal/perf). Both nil (the default) or both set;
	// they must not touch VM state.
	PerfBegin, PerfEnd func()
}

// New creates a VM running img (not cloned; clone first if the image will
// be mutated per-instance) on the given bus.
func New(img *Image, bus IOBus) *VM {
	return &VM{Img: img, Bus: bus}
}

// Result is the outcome of one routine invocation.
type Result struct {
	Outcome Outcome
	PC      int    // pc at termination
	Reason  string // human-readable detail for traps/asserts
}

// Run executes the named entry routine with args loaded into r1..rN
// (r0 is cleared). Register and RAM state persist across invocations,
// like a real driver's globals.
func (v *VM) Run(entry string, args ...uint32) Result {
	if v.PerfBegin != nil {
		v.PerfBegin()
		defer v.PerfEnd()
	}
	return v.run(entry, args...)
}

func (v *VM) run(entry string, args ...uint32) Result {
	pc, ok := v.Img.Entries[entry]
	if !ok {
		return Result{Outcome: OutcomeCPU, Reason: fmt.Sprintf("no entry %q", entry)}
	}
	v.Regs[0] = 0
	for i, a := range args {
		if i+1 < NumRegs {
			v.Regs[i+1] = a
		}
	}
	budget := v.Budget
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	var (
		stack [callDepth]int
		sp    int
		zf    bool
		lt    bool
	)
	for step := 0; step < budget; step++ {
		if pc < 0 || pc >= len(v.Img.Code) {
			return Result{Outcome: OutcomeCPU, PC: pc, Reason: "pc out of code"}
		}
		in := v.Img.Code[pc]
		v.Steps++
		pc++
		op, rd, rs, imm := in.Op(), in.Rd(), in.Rs(), in.Imm()
		switch op {
		case OpNop:
		case OpMovI:
			v.Regs[rd] = uint32(imm)
		case OpMov:
			v.Regs[rd] = v.Regs[rs]
		case OpAdd:
			v.Regs[rd] += v.Regs[rs]
		case OpAddI:
			v.Regs[rd] = uint32(int32(v.Regs[rd]) + in.SImm())
		case OpSub:
			v.Regs[rd] -= v.Regs[rs]
		case OpAnd:
			v.Regs[rd] &= v.Regs[rs]
		case OpAndI:
			v.Regs[rd] &= uint32(imm)
		case OpOr:
			v.Regs[rd] |= v.Regs[rs]
		case OpOrI:
			v.Regs[rd] |= uint32(imm)
		case OpXor:
			v.Regs[rd] ^= v.Regs[rs]
		case OpShlI:
			v.Regs[rd] <<= imm & 31
		case OpShrI:
			v.Regs[rd] >>= imm & 31
		case OpDiv:
			if v.Regs[rs] == 0 {
				return Result{Outcome: OutcomeCPU, PC: pc - 1, Reason: "division by zero"}
			}
			v.Regs[rd] /= v.Regs[rs]
		case OpLd:
			addr := v.Regs[rs] + uint32(imm)
			if addr >= RAMWords {
				return Result{Outcome: OutcomeMMU, PC: pc - 1, Reason: fmt.Sprintf("load at %#x", addr)}
			}
			v.Regs[rd] = v.RAM[addr]
		case OpSt:
			addr := v.Regs[rd] + uint32(imm)
			if addr >= RAMWords {
				return Result{Outcome: OutcomeMMU, PC: pc - 1, Reason: fmt.Sprintf("store at %#x", addr)}
			}
			v.RAM[addr] = v.Regs[rs]
		case OpIn:
			val, ok := v.Bus.In(v.Regs[rs] + uint32(imm))
			if !ok {
				v.IOErrors++
				val = 0xFFFFFFFF
			}
			v.Regs[rd] = val
		case OpOut:
			if !v.Bus.Out(v.Regs[rd]+uint32(imm), v.Regs[rs]) {
				v.IOErrors++
			}
		case OpCmp:
			zf = v.Regs[rd] == v.Regs[rs]
			lt = v.Regs[rd] < v.Regs[rs]
		case OpCmpI:
			zf = v.Regs[rd] == uint32(imm)
			lt = v.Regs[rd] < uint32(imm)
		case OpJmp:
			pc = int(imm)
		case OpJz:
			if zf {
				pc = int(imm)
			}
		case OpJnz:
			if !zf {
				pc = int(imm)
			}
		case OpJlt:
			if lt {
				pc = int(imm)
			}
		case OpJge:
			if !lt {
				pc = int(imm)
			}
		case OpCall:
			if sp >= callDepth {
				return Result{Outcome: OutcomeCPU, PC: pc - 1, Reason: "call stack overflow"}
			}
			stack[sp] = pc
			sp++
			pc = int(imm)
		case OpRet:
			if sp == 0 {
				return Result{Outcome: OutcomeCPU, PC: pc - 1, Reason: "return without call"}
			}
			sp--
			pc = stack[sp]
		case OpAssert:
			if v.Regs[rd] == 0 {
				return Result{Outcome: OutcomeAssert, PC: pc - 1, Reason: fmt.Sprintf("assert r%d", rd)}
			}
		case OpHalt:
			return Result{Outcome: OutcomeOK, PC: pc - 1}
		case OpFail:
			return Result{Outcome: OutcomeFail, PC: pc - 1}
		default:
			return Result{Outcome: OutcomeCPU, PC: pc - 1, Reason: fmt.Sprintf("illegal opcode %#02x", uint8(op))}
		}
	}
	return Result{Outcome: OutcomeStall, PC: pc, Reason: "step budget exhausted"}
}
