package ucode

import "testing"

// confCase exercises one opcode with hand-encoded instructions (no
// assembler in the loop) and pins its architectural effect: outcome,
// registers, RAM, and bus state.
type confCase struct {
	name    string
	op      Op
	code    []Instr
	args    []uint32          // loaded into r1.. by Run
	ram     map[uint32]uint32 // pre-set RAM words
	bus     map[uint32]uint32 // pre-set bus ports
	outcome Outcome
	regs    map[int]uint32    // expected register values afterwards
	ramOut  map[uint32]uint32 // expected RAM words afterwards
	busOut  map[uint32]uint32 // expected bus ports afterwards
}

func halt() Instr { return Enc(OpHalt, 0, 0, 0) }

// conformance is the opcode sweep: at least one case for every opcode in
// the ISA, covering both the normal effect and (where an opcode traps)
// the trap. TestOpcodeConformanceComplete enforces full coverage.
var conformance = []confCase{
	{name: "nop", op: OpNop,
		code:    []Instr{Enc(OpNop, 0, 0, 0), halt()},
		args:    []uint32{7},
		outcome: OutcomeOK, regs: map[int]uint32{0: 0, 1: 7}},
	{name: "movi", op: OpMovI,
		code:    []Instr{Enc(OpMovI, 1, 0, 0x1234), halt()},
		outcome: OutcomeOK, regs: map[int]uint32{1: 0x1234}},
	{name: "mov", op: OpMov,
		code:    []Instr{Enc(OpMov, 2, 1, 0), halt()},
		args:    []uint32{77},
		outcome: OutcomeOK, regs: map[int]uint32{1: 77, 2: 77}},
	{name: "add", op: OpAdd,
		code:    []Instr{Enc(OpAdd, 1, 2, 0), halt()},
		args:    []uint32{5, 7},
		outcome: OutcomeOK, regs: map[int]uint32{1: 12, 2: 7}},
	{name: "add/wraps", op: OpAdd,
		code:    []Instr{Enc(OpAdd, 1, 2, 0), halt()},
		args:    []uint32{0xFFFFFFFF, 2},
		outcome: OutcomeOK, regs: map[int]uint32{1: 1}},
	{name: "addi/positive", op: OpAddI,
		code:    []Instr{Enc(OpAddI, 1, 0, 10), halt()},
		args:    []uint32{5},
		outcome: OutcomeOK, regs: map[int]uint32{1: 15}},
	{name: "addi/sign-extends", op: OpAddI,
		code:    []Instr{Enc(OpAddI, 1, 0, 0xFFFF), halt()}, // imm = -1
		args:    []uint32{10},
		outcome: OutcomeOK, regs: map[int]uint32{1: 9}},
	{name: "sub", op: OpSub,
		code:    []Instr{Enc(OpSub, 1, 2, 0), halt()},
		args:    []uint32{10, 3},
		outcome: OutcomeOK, regs: map[int]uint32{1: 7}},
	{name: "and", op: OpAnd,
		code:    []Instr{Enc(OpAnd, 1, 2, 0), halt()},
		args:    []uint32{0b1100, 0b1010},
		outcome: OutcomeOK, regs: map[int]uint32{1: 0b1000}},
	{name: "andi", op: OpAndI,
		code:    []Instr{Enc(OpAndI, 1, 0, 0x0F), halt()},
		args:    []uint32{0xFF},
		outcome: OutcomeOK, regs: map[int]uint32{1: 0x0F}},
	{name: "or", op: OpOr,
		code:    []Instr{Enc(OpOr, 1, 2, 0), halt()},
		args:    []uint32{0b1100, 0b1010},
		outcome: OutcomeOK, regs: map[int]uint32{1: 0b1110}},
	{name: "ori", op: OpOrI,
		code:    []Instr{Enc(OpOrI, 1, 0, 0xF0), halt()},
		args:    []uint32{0x0F},
		outcome: OutcomeOK, regs: map[int]uint32{1: 0xFF}},
	{name: "xor", op: OpXor,
		code:    []Instr{Enc(OpXor, 1, 2, 0), halt()},
		args:    []uint32{0b1100, 0b1010},
		outcome: OutcomeOK, regs: map[int]uint32{1: 0b0110}},
	{name: "shli", op: OpShlI,
		code:    []Instr{Enc(OpShlI, 1, 0, 4), halt()},
		args:    []uint32{1},
		outcome: OutcomeOK, regs: map[int]uint32{1: 16}},
	{name: "shli/count-mod-32", op: OpShlI,
		code:    []Instr{Enc(OpShlI, 1, 0, 33), halt()}, // 33&31 == 1
		args:    []uint32{1},
		outcome: OutcomeOK, regs: map[int]uint32{1: 2}},
	{name: "shri", op: OpShrI,
		code:    []Instr{Enc(OpShrI, 1, 0, 4), halt()},
		args:    []uint32{16},
		outcome: OutcomeOK, regs: map[int]uint32{1: 1}},
	{name: "div", op: OpDiv,
		code:    []Instr{Enc(OpDiv, 1, 2, 0), halt()},
		args:    []uint32{42, 7},
		outcome: OutcomeOK, regs: map[int]uint32{1: 6}},
	{name: "div/by-zero-traps", op: OpDiv,
		code:    []Instr{Enc(OpDiv, 1, 2, 0), halt()},
		args:    []uint32{42, 0},
		outcome: OutcomeCPU, regs: map[int]uint32{1: 42}},
	{name: "ld", op: OpLd,
		code:    []Instr{Enc(OpLd, 2, 1, 4), halt()},
		args:    []uint32{1},
		ram:     map[uint32]uint32{5: 99},
		outcome: OutcomeOK, regs: map[int]uint32{2: 99}},
	{name: "ld/out-of-ram-traps", op: OpLd,
		code:    []Instr{Enc(OpLd, 2, 1, 0), halt()},
		args:    []uint32{RAMWords},
		outcome: OutcomeMMU, regs: map[int]uint32{2: 0}},
	{name: "st", op: OpSt,
		code:    []Instr{Enc(OpSt, 1, 2, 4), halt()},
		args:    []uint32{1, 0xAB},
		outcome: OutcomeOK, ramOut: map[uint32]uint32{5: 0xAB}},
	{name: "st/out-of-ram-traps", op: OpSt,
		code:    []Instr{Enc(OpSt, 1, 2, 0), halt()},
		args:    []uint32{RAMWords, 0xAB},
		outcome: OutcomeMMU},
	{name: "in", op: OpIn,
		code:    []Instr{Enc(OpIn, 2, 1, 4), halt()},
		args:    []uint32{0x100},
		bus:     map[uint32]uint32{0x104: 0xBEEF},
		outcome: OutcomeOK, regs: map[int]uint32{2: 0xBEEF}},
	{name: "out", op: OpOut,
		code:    []Instr{Enc(OpOut, 1, 2, 4), halt()},
		args:    []uint32{0x100, 0xCAFE},
		outcome: OutcomeOK, busOut: map[uint32]uint32{0x104: 0xCAFE}},
	{name: "cmp/equal-sets-zf", op: OpCmp,
		code: []Instr{
			Enc(OpCmp, 1, 2, 0), Enc(OpJz, 0, 0, 4), Enc(OpMovI, 3, 0, 0), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{5, 5},
		outcome: OutcomeOK, regs: map[int]uint32{3: 1}},
	{name: "cmp/less-sets-lt", op: OpCmp,
		code: []Instr{
			Enc(OpCmp, 1, 2, 0), Enc(OpJlt, 0, 0, 4), Enc(OpMovI, 3, 0, 0), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{3, 5},
		outcome: OutcomeOK, regs: map[int]uint32{3: 1}},
	{name: "cmpi", op: OpCmpI,
		code: []Instr{
			Enc(OpCmpI, 1, 0, 5), Enc(OpJz, 0, 0, 4), Enc(OpMovI, 3, 0, 0), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{5},
		outcome: OutcomeOK, regs: map[int]uint32{3: 1}},
	{name: "jmp", op: OpJmp,
		code:    []Instr{Enc(OpJmp, 0, 0, 2), Enc(OpFail, 0, 0, 0), halt()},
		outcome: OutcomeOK},
	{name: "jz/not-taken", op: OpJz,
		code: []Instr{
			Enc(OpCmpI, 1, 0, 5), Enc(OpJz, 0, 0, 4), Enc(OpMovI, 3, 0, 2), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{6},
		outcome: OutcomeOK, regs: map[int]uint32{3: 2}},
	{name: "jnz/taken", op: OpJnz,
		code: []Instr{
			Enc(OpCmpI, 1, 0, 0), Enc(OpJnz, 0, 0, 4), Enc(OpMovI, 3, 0, 2), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{1},
		outcome: OutcomeOK, regs: map[int]uint32{3: 1}},
	{name: "jlt/not-taken-on-ge", op: OpJlt,
		code: []Instr{
			Enc(OpCmp, 1, 2, 0), Enc(OpJlt, 0, 0, 4), Enc(OpMovI, 3, 0, 2), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{5, 3},
		outcome: OutcomeOK, regs: map[int]uint32{3: 2}},
	{name: "jge/taken", op: OpJge,
		code: []Instr{
			Enc(OpCmp, 1, 2, 0), Enc(OpJge, 0, 0, 4), Enc(OpMovI, 3, 0, 2), halt(),
			Enc(OpMovI, 3, 0, 1), halt(),
		},
		args:    []uint32{5, 3},
		outcome: OutcomeOK, regs: map[int]uint32{3: 1}},
	{name: "call-ret", op: OpCall,
		code: []Instr{
			Enc(OpCall, 0, 0, 2), halt(),
			Enc(OpMovI, 1, 0, 7), Enc(OpRet, 0, 0, 0),
		},
		outcome: OutcomeOK, regs: map[int]uint32{1: 7}},
	{name: "ret/without-call-traps", op: OpRet,
		code:    []Instr{Enc(OpRet, 0, 0, 0), halt()},
		outcome: OutcomeCPU},
	{name: "assert/nonzero-passes", op: OpAssert,
		code:    []Instr{Enc(OpAssert, 1, 0, 0), halt()},
		args:    []uint32{1},
		outcome: OutcomeOK},
	{name: "assert/zero-panics", op: OpAssert,
		code:    []Instr{Enc(OpAssert, 1, 0, 0), halt()},
		outcome: OutcomeAssert},
	{name: "halt", op: OpHalt,
		code:    []Instr{halt()},
		outcome: OutcomeOK},
	{name: "fail", op: OpFail,
		code:    []Instr{Enc(OpFail, 0, 0, 0)},
		outcome: OutcomeFail},
}

func runConfCase(t *testing.T, tc confCase) {
	t.Helper()
	img := &Image{Code: tc.code, Entries: map[string]int{"main": 0}}
	bus := newBus()
	for p, v := range tc.bus {
		bus.regs[p] = v
	}
	vm := New(img, bus)
	vm.Budget = 1000
	for a, v := range tc.ram {
		vm.RAM[a] = v
	}
	res := vm.Run("main", tc.args...)
	if res.Outcome != tc.outcome {
		t.Fatalf("outcome = %v (pc %d, %s), want %v", res.Outcome, res.PC, res.Reason, tc.outcome)
	}
	for r, want := range tc.regs {
		if got := vm.Regs[r]; got != want {
			t.Errorf("r%d = %#x, want %#x", r, got, want)
		}
	}
	for a, want := range tc.ramOut {
		if got := vm.RAM[a]; got != want {
			t.Errorf("ram[%d] = %#x, want %#x", a, got, want)
		}
	}
	for p, want := range tc.busOut {
		if got := bus.regs[p]; got != want {
			t.Errorf("port %#x = %#x, want %#x", p, got, want)
		}
	}
}

func TestOpcodeConformance(t *testing.T) {
	for _, tc := range conformance {
		t.Run(tc.name, func(t *testing.T) { runConfCase(t, tc) })
	}
}

// TestOpcodeConformanceComplete fails when an ISA opcode has no
// conformance case — adding an opcode forces adding its semantics here.
func TestOpcodeConformanceComplete(t *testing.T) {
	covered := make(map[Op]bool)
	for _, tc := range conformance {
		covered[tc.op] = true
	}
	for op := OpNop; op <= OpFail; op++ {
		if !covered[op] {
			t.Errorf("opcode %#02x has no conformance case", uint8(op))
		}
	}
}

// FuzzAssemble feeds arbitrary source text to the assembler. Assemble
// must either return an error or produce an image whose every entry runs
// to a classified outcome — never panic the host.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"", "halt", ".entry main\nmain:\n\thalt\n",
		".entry main\nmain:\n\tmovi r1, 0x100\n\tin r2, [r1+4]\n\tcmpi r2, 0\n\tjz done\n\tassert r2\ndone:\n\thalt\n",
		"loop:\n\taddi r1, -1\n\tcmpi r1, 0\n\tjnz loop\n\tret\n",
		".entry x\nx:\n\tld r3, [r0+BASE]\n\tst [r0+8], r3\n\tcall x\n",
		"movi r1, 99999999999", "movi r99, 1", "jz nowhere", "mov r1",
		"st [r1+", "\x00\xff", "a:\na:\n", ".entry", "; comment only\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		img, err := Assemble(src, map[string]uint32{"BASE": 0x20})
		if err != nil {
			return
		}
		for name := range img.Entries {
			vm := New(img.Clone(), newBus())
			vm.Budget = 512
			res := vm.Run(name)
			switch res.Outcome {
			case OutcomeOK, OutcomeFail, OutcomeAssert, OutcomeMMU, OutcomeCPU, OutcomeStall:
			default:
				t.Fatalf("entry %q: unclassified outcome %v", name, res.Outcome)
			}
		}
	})
}
