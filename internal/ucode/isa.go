// Package ucode implements a tiny register VM that hosts the control paths
// of the simulated device drivers.
//
// The paper's fault-injection experiments mutate the *binary code* of a
// running driver (change registers, garble pointers, invert loop
// conditions, flip bits, elide instructions) and observe how the failure
// manifests: an internal panic, a CPU/MMU exception, or a stuck driver
// caught by missing heartbeats. To reproduce that in Go — whose runtime
// cannot survive real code mutation — driver hot paths are written in this
// VM's instruction set. The fault injector (internal/fi) mutates encoded
// instructions exactly the way the paper's injectors do, and the VM yields
// the same observable outcome classes:
//
//   - OutcomeAssert: a driver consistency check failed → driver panic
//   - OutcomeMMU:    out-of-bounds load/store → MMU exception → kill
//   - OutcomeCPU:    illegal opcode, division by zero, call-stack abuse →
//     CPU exception → kill
//   - OutcomeStall:  step budget exceeded (e.g. inverted loop condition) →
//     the driver stops answering → heartbeat misses
//
// A restarted driver instance loads a pristine image, which is what makes
// "replace with a fresh copy" cure these failures.
package ucode

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. The numeric values are part of the "binary"
// encoding the fault injector mutates, so they are stable.
const (
	OpNop    Op = 0x00
	OpMovI   Op = 0x01 // rd = imm
	OpMov    Op = 0x02 // rd = rs
	OpAdd    Op = 0x03 // rd += rs
	OpAddI   Op = 0x04 // rd += imm (sign-extended)
	OpSub    Op = 0x05 // rd -= rs
	OpAnd    Op = 0x06 // rd &= rs
	OpAndI   Op = 0x07 // rd &= imm
	OpOr     Op = 0x08 // rd |= rs
	OpOrI    Op = 0x09 // rd |= imm
	OpXor    Op = 0x0A // rd ^= rs
	OpShlI   Op = 0x0B // rd <<= imm
	OpShrI   Op = 0x0C // rd >>= imm
	OpDiv    Op = 0x0D // rd /= rs; rs == 0 is a CPU exception
	OpLd     Op = 0x0E // rd = ram[rs+imm]
	OpSt     Op = 0x0F // ram[rd+imm] = rs
	OpIn     Op = 0x10 // rd = port[rs+imm]
	OpOut    Op = 0x11 // port[rd+imm] = rs
	OpCmp    Op = 0x12 // flags = compare(rd, rs)
	OpCmpI   Op = 0x13 // flags = compare(rd, imm)
	OpJmp    Op = 0x14 // pc = imm
	OpJz     Op = 0x15 // if Z: pc = imm
	OpJnz    Op = 0x16 // if !Z: pc = imm
	OpJlt    Op = 0x17 // if LT: pc = imm
	OpJge    Op = 0x18 // if !LT: pc = imm
	OpCall   Op = 0x19 // push pc; pc = imm
	OpRet    Op = 0x1A // pc = pop
	OpAssert Op = 0x1B // if rd == 0: consistency panic
	OpHalt   Op = 0x1C // stop, success
	OpFail   Op = 0x1D // stop, failure (r0 = reason code)
	opMax    Op = 0x1E
)

var opNames = map[Op]string{
	OpNop: "nop", OpMovI: "movi", OpMov: "mov", OpAdd: "add", OpAddI: "addi",
	OpSub: "sub", OpAnd: "and", OpAndI: "andi", OpOr: "or", OpOrI: "ori",
	OpXor: "xor", OpShlI: "shli", OpShrI: "shri", OpDiv: "div",
	OpLd: "ld", OpSt: "st", OpIn: "in", OpOut: "out",
	OpCmp: "cmp", OpCmpI: "cmpi", OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpJlt: "jlt", OpJge: "jge", OpCall: "call", OpRet: "ret",
	OpAssert: "assert", OpHalt: "halt", OpFail: "fail",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op%#02x", uint8(o))
}

// NumRegs is the register file size (r0..r15).
const NumRegs = 16

// Instr is one encoded instruction: op(8) | rd(4) | rs(4) | imm(16).
type Instr uint32

// Enc builds an instruction word.
func Enc(op Op, rd, rs int, imm uint16) Instr {
	return Instr(uint32(op)<<24 | uint32(rd&0xF)<<20 | uint32(rs&0xF)<<16 | uint32(imm))
}

// Op extracts the opcode field.
func (i Instr) Op() Op { return Op(i >> 24) }

// Rd extracts the destination register field.
func (i Instr) Rd() int { return int(i>>20) & 0xF }

// Rs extracts the source register field.
func (i Instr) Rs() int { return int(i>>16) & 0xF }

// Imm extracts the immediate field.
func (i Instr) Imm() uint16 { return uint16(i) }

// SImm extracts the immediate as a sign-extended value.
func (i Instr) SImm() int32 { return int32(int16(uint16(i))) }

// WithOp returns the instruction with the opcode replaced.
func (i Instr) WithOp(op Op) Instr { return Instr(uint32(i)&0x00FFFFFF | uint32(op)<<24) }

// WithRd returns the instruction with the rd field replaced.
func (i Instr) WithRd(rd int) Instr {
	return Instr(uint32(i)&^uint32(0xF<<20) | uint32(rd&0xF)<<20)
}

// WithRs returns the instruction with the rs field replaced.
func (i Instr) WithRs(rs int) Instr {
	return Instr(uint32(i)&^uint32(0xF<<16) | uint32(rs&0xF)<<16)
}

// WithImm returns the instruction with the immediate replaced.
func (i Instr) WithImm(imm uint16) Instr {
	return Instr(uint32(i)&^uint32(0xFFFF) | uint32(imm))
}

// String disassembles the instruction.
func (i Instr) String() string {
	op := i.Op()
	switch op {
	case OpNop, OpRet, OpHalt, OpFail:
		return op.String()
	case OpMovI, OpAddI, OpAndI, OpOrI, OpShlI, OpShrI, OpCmpI:
		return fmt.Sprintf("%s r%d, %d", op, i.Rd(), i.Imm())
	case OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpDiv, OpCmp:
		return fmt.Sprintf("%s r%d, r%d", op, i.Rd(), i.Rs())
	case OpLd:
		return fmt.Sprintf("ld r%d, [r%d+%d]", i.Rd(), i.Rs(), i.Imm())
	case OpSt:
		return fmt.Sprintf("st [r%d+%d], r%d", i.Rd(), i.Imm(), i.Rs())
	case OpIn:
		return fmt.Sprintf("in r%d, [r%d+%d]", i.Rd(), i.Rs(), i.Imm())
	case OpOut:
		return fmt.Sprintf("out [r%d+%d], r%d", i.Rd(), i.Imm(), i.Rs())
	case OpJmp, OpJz, OpJnz, OpJlt, OpJge, OpCall:
		return fmt.Sprintf("%s %d", op, i.Imm())
	case OpAssert:
		return fmt.Sprintf("assert r%d", i.Rd())
	default:
		return fmt.Sprintf("%s (raw %#08x)", op, uint32(i))
	}
}

// Image is an executable ucode program: the "driver binary" the fault
// injector mutates. Entry points are named (one routine per driver
// operation).
type Image struct {
	Code    []Instr
	Entries map[string]int // routine name -> instruction index
}

// Clone returns a deep copy; a driver instance runs on a clone so that
// injected faults die with the instance (a restart loads a fresh image).
func (im *Image) Clone() *Image {
	cp := &Image{
		Code:    append([]Instr(nil), im.Code...),
		Entries: make(map[string]int, len(im.Entries)),
	}
	for k, v := range im.Entries {
		cp.Entries[k] = v
	}
	return cp
}
