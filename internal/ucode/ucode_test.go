package ucode

import (
	"strings"
	"testing"
	"testing/quick"
)

// mapBus is a fake port bus backed by a map.
type mapBus struct {
	regs    map[uint32]uint32
	allowed func(uint32) bool
}

func (b *mapBus) In(port uint32) (uint32, bool) {
	if b.allowed != nil && !b.allowed(port) {
		return 0, false
	}
	return b.regs[port], true
}

func (b *mapBus) Out(port uint32, val uint32) bool {
	if b.allowed != nil && !b.allowed(port) {
		return false
	}
	b.regs[port] = val
	return true
}

func newBus() *mapBus { return &mapBus{regs: map[uint32]uint32{}} }

func mustRun(t *testing.T, src string, entry string, args ...uint32) (*VM, Result) {
	t.Helper()
	img, err := Assemble(src, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm := New(img, newBus())
	res := vm.Run(entry, args...)
	return vm, res
}

func TestArithmetic(t *testing.T) {
	vm, res := mustRun(t, `
.entry main
main:
	movi r1, 10
	movi r2, 3
	mov  r3, r1
	add  r3, r2    ; 13
	sub  r1, r2    ; 7
	movi r4, 6
	movi r5, 2
	div  r4, r5    ; 3
	shli r4, 4     ; 48
	halt
`, "main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if vm.Regs[3] != 13 || vm.Regs[1] != 7 || vm.Regs[4] != 48 {
		t.Fatalf("regs: r3=%d r1=%d r4=%d", vm.Regs[3], vm.Regs[1], vm.Regs[4])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	vm, res := mustRun(t, `
.entry main
main:
	movi r1, 0    ; sum
	movi r2, 1    ; i
loop:
	add  r1, r2
	addi r2, 1
	cmpi r2, 11
	jnz  loop
	halt
`, "main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if vm.Regs[1] != 55 {
		t.Fatalf("sum = %d, want 55", vm.Regs[1])
	}
}

func TestMemoryLoadStore(t *testing.T) {
	vm, res := mustRun(t, `
.entry main
main:
	movi r1, 100
	movi r2, 0xBEE
	st   [r1+5], r2
	ld   r3, [r1+5]
	halt
`, "main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if vm.Regs[3] != 0xBEE || vm.RAM[105] != 0xBEE {
		t.Fatalf("r3=%#x ram=%#x", vm.Regs[3], vm.RAM[105])
	}
}

func TestMMUTrapOnBadLoad(t *testing.T) {
	_, res := mustRun(t, `
.entry main
main:
	movi r1, 0xFFFF
	ld   r2, [r1+0]
	halt
`, "main")
	if res.Outcome != OutcomeMMU {
		t.Fatalf("outcome = %v, want MMU", res.Outcome)
	}
}

func TestMMUTrapOnBadStore(t *testing.T) {
	_, res := mustRun(t, `
.entry main
main:
	movi r1, 2000
	st   [r1+0], r1
	halt
`, "main")
	if res.Outcome != OutcomeMMU {
		t.Fatalf("outcome = %v, want MMU", res.Outcome)
	}
}

func TestCPUTrapOnDivZero(t *testing.T) {
	_, res := mustRun(t, `
.entry main
main:
	movi r1, 5
	movi r2, 0
	div  r1, r2
	halt
`, "main")
	if res.Outcome != OutcomeCPU {
		t.Fatalf("outcome = %v, want CPU", res.Outcome)
	}
}

func TestCPUTrapOnIllegalOpcode(t *testing.T) {
	img := &Image{
		Code:    []Instr{Enc(Op(0xEE), 0, 0, 0)},
		Entries: map[string]int{"main": 0},
	}
	res := New(img, newBus()).Run("main")
	if res.Outcome != OutcomeCPU {
		t.Fatalf("outcome = %v, want CPU", res.Outcome)
	}
}

func TestCPUTrapOnRetWithoutCall(t *testing.T) {
	_, res := mustRun(t, "\n.entry main\nmain:\n\tret\n", "main")
	if res.Outcome != OutcomeCPU {
		t.Fatalf("outcome = %v, want CPU", res.Outcome)
	}
}

func TestCPUTrapOnPCOffEnd(t *testing.T) {
	_, res := mustRun(t, "\n.entry main\nmain:\n\tnop\n", "main")
	if res.Outcome != OutcomeCPU {
		t.Fatalf("outcome = %v, want CPU (fell off code end)", res.Outcome)
	}
}

func TestAssertFailure(t *testing.T) {
	_, res := mustRun(t, `
.entry main
main:
	movi r1, 0
	assert r1
	halt
`, "main")
	if res.Outcome != OutcomeAssert {
		t.Fatalf("outcome = %v, want assert", res.Outcome)
	}
}

func TestAssertPass(t *testing.T) {
	_, res := mustRun(t, `
.entry main
main:
	movi r1, 1
	assert r1
	halt
`, "main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestStallOnInfiniteLoop(t *testing.T) {
	img := MustAssemble(`
.entry main
main:
loop:
	jmp loop
`, nil)
	vm := New(img, newBus())
	vm.Budget = 1000
	res := vm.Run("main")
	if res.Outcome != OutcomeStall {
		t.Fatalf("outcome = %v, want stall", res.Outcome)
	}
}

func TestCallRet(t *testing.T) {
	vm, res := mustRun(t, `
.entry main
main:
	movi r1, 1
	call sub
	addi r1, 100
	halt
sub:
	addi r1, 10
	ret
`, "main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if vm.Regs[1] != 111 {
		t.Fatalf("r1 = %d, want 111", vm.Regs[1])
	}
}

func TestCallStackOverflow(t *testing.T) {
	_, res := mustRun(t, `
.entry main
main:
	call main
`, "main")
	if res.Outcome != OutcomeCPU {
		t.Fatalf("outcome = %v, want CPU", res.Outcome)
	}
}

func TestPortIO(t *testing.T) {
	img := MustAssemble(`
.entry main
main:
	movi r1, 0x1000
	movi r2, 0xAB
	out  [r1+4], r2
	in   r3, [r1+4]
	halt
`, nil)
	bus := newBus()
	vm := New(img, bus)
	res := vm.Run("main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if vm.Regs[3] != 0xAB || bus.regs[0x1004] != 0xAB {
		t.Fatalf("r3=%#x bus=%#x", vm.Regs[3], bus.regs[0x1004])
	}
}

func TestPortIODeniedReadsAllOnes(t *testing.T) {
	img := MustAssemble(`
.entry main
main:
	movi r1, 0x2000
	in   r2, [r1+0]
	movi r3, 1
	out  [r1+0], r3
	halt
`, nil)
	bus := newBus()
	bus.allowed = func(p uint32) bool { return p < 0x2000 }
	vm := New(img, bus)
	res := vm.Run("main")
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if vm.Regs[2] != 0xFFFFFFFF {
		t.Fatalf("denied read = %#x, want all-ones", vm.Regs[2])
	}
	if vm.IOErrors != 2 {
		t.Fatalf("IOErrors = %d, want 2", vm.IOErrors)
	}
}

func TestEntryArgsInRegisters(t *testing.T) {
	vm, res := mustRun(t, `
.entry main
main:
	add r1, r2
	halt
`, "main", 40, 2)
	if res.Outcome != OutcomeOK || vm.Regs[1] != 42 {
		t.Fatalf("outcome=%v r1=%d", res.Outcome, vm.Regs[1])
	}
}

func TestUnknownEntry(t *testing.T) {
	img := MustAssemble("\n.entry main\nmain:\n\thalt\n", nil)
	res := New(img, newBus()).Run("nope")
	if res.Outcome != OutcomeCPU {
		t.Fatalf("outcome = %v, want CPU", res.Outcome)
	}
}

func TestConstants(t *testing.T) {
	img, err := Assemble(`
.entry main
main:
	movi r1, BASE
	in   r2, [r1+STATUS]
	halt
`, map[string]uint32{"BASE": 0x1000, "STATUS": 4})
	if err != nil {
		t.Fatal(err)
	}
	if img.Code[0].Imm() != 0x1000 || img.Code[1].Imm() != 4 {
		t.Fatalf("consts not substituted: %v", img.Code)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "frob r1, r2", "unknown mnemonic"},
		{"bad register", "movi rx, 1", "bad register"},
		{"missing operand", "movi r1", "takes 2 operand"},
		{"undefined label", "jmp nowhere", "undefined label"},
		{"duplicate label", "a:\nnop\na:\nnop", "duplicate label"},
		{"immediate range", "movi r1, 70000", "out of 16-bit range"},
		{"bad mem operand", "ld r1, r2", "bad memory operand"},
		{"trailing entry", ".entry x", "trailing .entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestMultipleEntries(t *testing.T) {
	img := MustAssemble(`
.entry init
init:
	movi r1, 1
	halt
.entry rx
rx:
	movi r1, 2
	halt
`, nil)
	vm := New(img, newBus())
	if res := vm.Run("rx"); res.Outcome != OutcomeOK || vm.Regs[1] != 2 {
		t.Fatalf("rx: %v r1=%d", res.Outcome, vm.Regs[1])
	}
	if res := vm.Run("init"); res.Outcome != OutcomeOK || vm.Regs[1] != 1 {
		t.Fatalf("init: %v r1=%d", res.Outcome, vm.Regs[1])
	}
}

func TestStatePersistsAcrossInvocations(t *testing.T) {
	img := MustAssemble(`
.entry bump
bump:
	movi r1, 10
	ld   r2, [r1+0]
	addi r2, 1
	st   [r1+0], r2
	halt
`, nil)
	vm := New(img, newBus())
	for i := 0; i < 3; i++ {
		if res := vm.Run("bump"); res.Outcome != OutcomeOK {
			t.Fatalf("run %d: %v", i, res.Outcome)
		}
	}
	if vm.RAM[10] != 3 {
		t.Fatalf("counter = %d, want 3", vm.RAM[10])
	}
}

func TestImageClone(t *testing.T) {
	img := MustAssemble("\n.entry main\nmain:\n\tmovi r1, 5\n\thalt\n", nil)
	cp := img.Clone()
	cp.Code[0] = cp.Code[0].WithImm(9)
	if img.Code[0].Imm() != 5 {
		t.Fatal("clone shares code with original")
	}
	cp.Entries["other"] = 1
	if _, ok := img.Entries["other"]; ok {
		t.Fatal("clone shares entries with original")
	}
}

// Property: encode/decode round-trips for all field values.
func TestInstrFieldRoundtrip(t *testing.T) {
	f := func(op uint8, rd, rs uint8, imm uint16) bool {
		o := Op(op % uint8(opMax))
		i := Enc(o, int(rd%16), int(rs%16), imm)
		return i.Op() == o && i.Rd() == int(rd%16) && i.Rs() == int(rs%16) && i.Imm() == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: With* setters change exactly their own field.
func TestInstrWithSetters(t *testing.T) {
	f := func(raw uint32, rd, rs uint8, imm uint16) bool {
		i := Instr(raw)
		a := i.WithRd(int(rd % 16))
		b := i.WithRs(int(rs % 16))
		c := i.WithImm(imm)
		return a.Rs() == i.Rs() && a.Imm() == i.Imm() && a.Rd() == int(rd%16) &&
			b.Rd() == i.Rd() && b.Imm() == i.Imm() && b.Rs() == int(rs%16) &&
			c.Rd() == i.Rd() && c.Rs() == i.Rs() && c.Imm() == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the VM never panics on arbitrary single-instruction programs —
// every mutation lands in a defined outcome. This is the guarantee the
// fault injector depends on.
func TestVMNeverPanicsOnArbitraryCode(t *testing.T) {
	f := func(words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		code := make([]Instr, len(words))
		for i, w := range words {
			code[i] = Instr(w)
		}
		img := &Image{Code: code, Entries: map[string]int{"main": 0}}
		vm := New(img, newBus())
		vm.Budget = 2000
		res := vm.Run("main")
		switch res.Outcome {
		case OutcomeOK, OutcomeFail, OutcomeAssert, OutcomeMMU, OutcomeCPU, OutcomeStall:
			return true
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembly(t *testing.T) {
	img := MustAssemble(`
.entry main
main:
	movi r1, 7
	ld r2, [r1+3]
	st [r1+4], r2
	in r5, [r1+0]
	out [r1+8], r5
	assert r5
	jmp main
`, nil)
	wants := []string{"movi r1, 7", "ld r2, [r1+3]", "st [r1+4], r2",
		"in r5, [r1+0]", "out [r1+8], r5", "assert r5", "jmp 0"}
	for i, w := range wants {
		if got := img.Code[i].String(); got != w {
			t.Errorf("disasm[%d] = %q, want %q", i, got, w)
		}
	}
}
