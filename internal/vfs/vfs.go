// Package vfs implements the virtual file system: the single entry point
// applications use for file and device I/O. Regular paths route to the
// file server (MFS); /dev/ paths route to character device drivers.
//
// The recovery split of paper Fig. 3 is visible right here: block-backed
// file I/O is transparently recovered *below* VFS (the file server
// reissues idempotent block requests), while character-device failures
// cannot be hidden — VFS pushes ErrIO up to the application, which may or
// may not be able to recover (§6.3). Recovery-specific lines are marked
// "// [recovery]" for cmd/locstats.
package vfs

import (
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/proto"
)

// DevPrefix routes paths to character drivers: /dev/<driver label>.
const DevPrefix = "/dev/"

// Config configures a VFS instance.
type Config struct {
	// DS is the data store endpoint.
	DS kernel.Endpoint
	// FSLabel is the file server's stable name.
	FSLabel string
}

// Stats counts VFS events.
type Stats struct {
	FileOps   int
	DevOps    int
	DevErrors int // character-driver failures pushed to applications
}

// file is one open descriptor.
type file struct {
	fd     int64
	owner  kernel.Endpoint
	ino    uint32 // file-server handle (0 for devices)
	dev    string // device driver label ("" for regular files)
	offset int64
	flags  int64
}

// Server is the virtual file system.
type Server struct {
	cfg Config
	ctx *kernel.Ctx

	fsEp   kernel.Endpoint
	files  map[int64]*file
	nextFd int64

	stats Stats
	bytes *obs.Counter // bytes moved through read/write, cached per incarnation
}

// New creates a VFS; run its Binary as an RS service.
func New(cfg Config) *Server {
	return &Server{cfg: cfg, files: make(map[int64]*file), nextFd: 3}
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Binary returns the service binary.
func (s *Server) Binary() func(c *kernel.Ctx) {
	return func(c *kernel.Ctx) { s.run(c) }
}

func (s *Server) run(c *kernel.Ctx) {
	s.ctx = c
	// Fresh per-incarnation state: open descriptors die with the server.
	s.files = make(map[int64]*file)
	s.nextFd = 3
	s.fsEp = 0
	s.bytes = c.Obs().Metrics().Counter("vfs.bytes")
	if _, err := c.SendRec(s.cfg.DS, kernel.Message{
		Type: proto.DSSubscribe, Name: s.cfg.FSLabel,
	}); err != nil {
		c.Panic("subscribe: " + err.Error())
	}
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		switch m.Type {
		case proto.RSPing: // [recovery] heartbeat
			_ = s.ctx.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
		case proto.DSUpdate:
			if m.Arg1 != proto.InvalidEndpoint {
				s.fsEp = kernel.Endpoint(m.Arg1)
			}
		case proto.FSOpen, proto.FSCreate, proto.FSClose, proto.FSRead,
			proto.FSWrite, proto.FSIoctl, proto.FSStat, proto.FSUnlink,
			proto.FSMkdir, proto.FSReaddir, proto.FSSync:
			s.dispatch(m)
		}
	}
}

// vfsOpName names a client request type for trace spans.
func vfsOpName(typ int32) string {
	switch typ {
	case proto.FSOpen:
		return "open"
	case proto.FSCreate:
		return "create"
	case proto.FSClose:
		return "close"
	case proto.FSRead:
		return "read"
	case proto.FSWrite:
		return "write"
	case proto.FSIoctl:
		return "ioctl"
	case proto.FSStat:
		return "stat"
	case proto.FSUnlink:
		return "unlink"
	case proto.FSMkdir:
		return "mkdir"
	case proto.FSReaddir:
		return "readdir"
	case proto.FSSync:
		return "sync"
	default:
		return "badcall"
	}
}

// dispatch runs one client request as a span under the caller's context:
// the file-server relay (and everything the file server does below it,
// down to reissued block requests) nests under the user-visible call.
func (s *Server) dispatch(m kernel.Message) {
	sc := s.ctx.BeginWork("vfs."+vfsOpName(m.Type), m.Trace)
	switch m.Type {
	case proto.FSOpen:
		s.open(m, false)
	case proto.FSCreate:
		s.open(m, true)
	case proto.FSClose:
		s.closeFd(m)
	case proto.FSRead:
		s.read(m)
	case proto.FSWrite:
		s.write(m)
	case proto.FSIoctl:
		s.ioctl(m)
	default:
		s.forward(m)
	}
	s.ctx.EndWork(sc, 0)
}

func (s *Server) reply(to kernel.Endpoint, m kernel.Message) {
	m.Type = proto.FSReply
	_ = s.ctx.Send(to, m)
}

// fsCall relays a request to the file server. The wait is heartbeat-
// friendly: the file server may legitimately block for seconds while its
// disk driver is being reincarnated, and VFS must keep answering the
// reincarnation server's pings meanwhile or be mistaken for stuck.
func (s *Server) fsCall(m kernel.Message) (kernel.Message, bool) {
	if s.fsEp == 0 || s.fsEp == kernel.None {
		if ep := s.ctx.LookupLabel(s.cfg.FSLabel); ep != kernel.None {
			s.fsEp = ep
		} else {
			return kernel.Message{}, false
		}
	}
	reply, err := s.callPinging(s.fsEp, m)
	if err != nil {
		return kernel.Message{}, false
	}
	return reply, true
}

// callPinging performs an asynchronous request/reply with a reply wait
// that stays responsive to heartbeats. The poll step starts fine-grained
// (no measurable cost against device timing) and coarsens for long waits.
func (s *Server) callPinging(dst kernel.Endpoint, m kernel.Message) (kernel.Message, error) {
	if err := s.ctx.AsyncSend(dst, m); err != nil {
		return kernel.Message{}, err
	}
	var waited time.Duration
	step := 50 * time.Microsecond
	for {
		if reply, ok := s.ctx.TryReceive(dst); ok {
			return reply, nil
		}
		if !s.ctx.Kernel().Alive(dst) {
			return kernel.Message{}, kernel.ErrSrcDied
		}
		if waited > 100*time.Millisecond { // [recovery]
			s.answerPings()              // [recovery]
			step = 20 * time.Millisecond // [recovery]
		}
		s.ctx.Sleep(step)
		waited += step
	}
}

// answerPings drains queued heartbeat requests from the reincarnation
// server without touching queued client requests.
func (s *Server) answerPings() { // [recovery]
	rsEp := s.ctx.LookupLabel("rs") // [recovery]
	if rsEp == kernel.None {        // [recovery]
		return // [recovery]
	} // [recovery]
	for { // [recovery]
		m, ok := s.ctx.TryReceive(rsEp) // [recovery]
		if !ok {                        // [recovery]
			return // [recovery]
		} // [recovery]
		if m.Type == proto.RSPing { // [recovery]
			_ = s.ctx.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong}) // [recovery]
		} // [recovery]
	} // [recovery]
}

// devEp resolves a character driver's current endpoint via its label.
func (s *Server) devEp(label string) kernel.Endpoint {
	return s.ctx.LookupLabel(label)
}

// open handles FSOpen/FSCreate for files and devices.
func (s *Server) open(m kernel.Message, create bool) {
	path := m.Name
	if len(path) > len(DevPrefix) && path[:len(DevPrefix)] == DevPrefix {
		s.stats.DevOps++
		label := path[len(DevPrefix):]
		ep := s.devEp(label)
		if ep == kernel.None {
			s.reply(m.Source, kernel.Message{Arg1: proto.ErrNotFound})
			return
		}
		reply, err := s.ctx.SendRec(ep, kernel.Message{Type: proto.ChrOpen})
		if err != nil || reply.Arg1 != proto.OK {
			s.stats.DevErrors++ // [recovery] error is pushed up, §6.3
			s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
			return
		}
		f := &file{fd: s.nextFd, owner: m.Source, dev: label, flags: m.Arg1}
		s.nextFd++
		s.files[f.fd] = f
		s.reply(m.Source, kernel.Message{Arg1: f.fd})
		return
	}
	s.stats.FileOps++
	typ := proto.FSOpen
	if create {
		typ = proto.FSCreate
	}
	reply, ok := s.fsCall(kernel.Message{Type: typ, Name: path})
	if !ok {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
		return
	}
	if reply.Arg1 < 0 {
		s.reply(m.Source, kernel.Message{Arg1: reply.Arg1})
		return
	}
	f := &file{
		fd:    s.nextFd,
		owner: m.Source,
		ino:   uint32(reply.Arg1),
		flags: m.Arg1,
	}
	s.nextFd++
	s.files[f.fd] = f
	s.reply(m.Source, kernel.Message{Arg1: f.fd, Arg2: reply.Arg2})
}

func (s *Server) lookupFd(m kernel.Message) *file {
	f := s.files[m.Arg1]
	if f == nil || f.owner != m.Source {
		return nil
	}
	return f
}

func (s *Server) closeFd(m kernel.Message) {
	if f := s.lookupFd(m); f != nil {
		delete(s.files, f.fd)
		s.reply(m.Source, kernel.Message{Arg1: proto.OK})
		return
	}
	s.reply(m.Source, kernel.Message{Arg1: proto.ErrBadCall})
}

// read handles FSRead on a descriptor; Arg2 = max bytes.
func (s *Server) read(m kernel.Message) {
	f := s.lookupFd(m)
	if f == nil {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrBadCall})
		return
	}
	if f.dev != "" {
		s.devCall(m, f, kernel.Message{Type: proto.ChrRead, Arg1: m.Arg2})
		return
	}
	s.stats.FileOps++
	reply, ok := s.fsCall(kernel.Message{
		Type: proto.FSRead, Arg1: int64(f.ino), Arg2: m.Arg2, Arg3: f.offset,
	})
	if !ok {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
		return
	}
	if reply.Arg1 > 0 {
		f.offset += reply.Arg1
		s.bytes.Add(reply.Arg1)
	}
	s.reply(m.Source, kernel.Message{Arg1: reply.Arg1, Payload: reply.Payload})
}

// write handles FSWrite on a descriptor.
func (s *Server) write(m kernel.Message) {
	f := s.lookupFd(m)
	if f == nil {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrBadCall})
		return
	}
	if f.dev != "" {
		s.devCall(m, f, kernel.Message{Type: proto.ChrWrite, Payload: m.Payload})
		return
	}
	s.stats.FileOps++
	reply, ok := s.fsCall(kernel.Message{
		Type: proto.FSWrite, Arg1: int64(f.ino), Arg3: f.offset, Payload: m.Payload,
	})
	if !ok {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
		return
	}
	if reply.Arg1 > 0 {
		f.offset += reply.Arg1
		s.bytes.Add(reply.Arg1)
	}
	s.reply(m.Source, kernel.Message{Arg1: reply.Arg1})
}

// ioctl routes a device control call.
func (s *Server) ioctl(m kernel.Message) {
	f := s.lookupFd(m)
	if f == nil || f.dev == "" {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrBadCall})
		return
	}
	s.devCall(m, f, kernel.Message{Type: proto.ChrIoctl, Arg1: m.Arg2, Arg2: m.Arg3})
}

// devCall relays one request to a character driver. A dead driver —
// including one that dies mid-request, aborting the rendezvous — is an
// ErrIO to the application: there is no transparent recovery for
// character streams (§6.3).
func (s *Server) devCall(m kernel.Message, f *file, req kernel.Message) {
	s.stats.DevOps++
	ep := s.devEp(f.dev)
	if ep == kernel.None {
		s.stats.DevErrors++ // [recovery]
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
		return
	}
	reply, err := s.callPinging(ep, req)
	if err != nil {
		s.stats.DevErrors++ // [recovery] driver died mid-request
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
		return
	}
	switch req.Type {
	case proto.ChrRead:
		s.bytes.Add(int64(len(reply.Payload)))
	case proto.ChrWrite:
		if reply.Arg1 > 0 {
			s.bytes.Add(reply.Arg1)
		}
	}
	s.reply(m.Source, kernel.Message{Arg1: reply.Arg1, Payload: reply.Payload})
}

// forward relays path-based calls (stat/unlink/mkdir/readdir/sync).
func (s *Server) forward(m kernel.Message) {
	s.stats.FileOps++
	reply, ok := s.fsCall(kernel.Message{Type: m.Type, Name: m.Name})
	if !ok {
		s.reply(m.Source, kernel.Message{Arg1: proto.ErrIO})
		return
	}
	s.reply(m.Source, kernel.Message{Arg1: reply.Arg1, Arg2: reply.Arg2, Arg3: reply.Arg3, Payload: reply.Payload})
}
