package vfs

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	s := New(Config{FSLabel: "mfs"})
	if s.nextFd != 3 {
		t.Fatalf("nextFd = %d, want 3 (0-2 reserved by convention)", s.nextFd)
	}
	if s.files == nil {
		t.Fatal("file table not initialized")
	}
	if s.Binary() == nil {
		t.Fatal("Binary returned nil")
	}
}

func TestDevPrefixRouting(t *testing.T) {
	// The routing rule: /dev/<label> goes to a character driver,
	// everything else to the file server.
	cases := map[string]bool{
		"/dev/chr.printer": true,
		"/dev/chr.audio":   true,
		"/dev/":            false, // no label
		"/devx":            false,
		"/home/notes":      false,
		"dev/chr.audio":    false, // not absolute
	}
	for path, wantDev := range cases {
		isDev := len(path) > len(DevPrefix) && strings.HasPrefix(path, DevPrefix)
		if isDev != wantDev {
			t.Errorf("%q: dev=%v, want %v", path, isDev, wantDev)
		}
	}
}

func TestStatsZeroValue(t *testing.T) {
	s := New(Config{})
	st := s.Stats()
	if st.FileOps != 0 || st.DevOps != 0 || st.DevErrors != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
}
