// Package core implements the reincarnation server (RS) — the paper's
// primary contribution. RS is the guardian of all servers and drivers: it
// starts them with least-authority privileges, monitors their health, and
// when a defect is detected runs a policy-driven recovery procedure that
// replaces the malfunctioning component with a fresh instance, publishes
// the new endpoint through the data store, and thereby masks the failure
// from applications and users.
//
// Defect detection covers the six input classes of paper §5.1:
//
//  1. process exit or panic            (PM exit event, CauseExit)
//  2. crashed by CPU or MMU exception  (PM exit event, CauseException)
//  3. killed by user                   (PM exit event, CauseSignal)
//  4. heartbeat message missing        (N consecutive missed pongs)
//  5. complaint by another component   (RSComplain from an authorized server)
//  6. dynamic update by user           (RSUpdate)
//
// Recovery is policy-driven (§5.2): a service may carry a shell script
// (internal/policy) that decides when and how to restart — the default
// direct-restart path covers components without a script, including disk
// drivers, which MINIX restarts straight from a RAM image because their
// script would live on the very disk that just lost its driver (§6.2).
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"resilientos/internal/drvlib"
	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
	"resilientos/internal/policy"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// Label is RS's stable component label.
const Label = "rs"

// Defect identifies one of the six defect classes of paper §5.1. The
// numeric values are the `reason` argument passed to policy scripts,
// matching the paper's Fig. 2.
type Defect int

// The six defect classes.
const (
	DefectExit      Defect = 1 // process exit or panic
	DefectException Defect = 2 // crashed by CPU or MMU exception
	DefectKilled    Defect = 3 // killed by user
	DefectHeartbeat Defect = 4 // heartbeat message missing
	DefectComplaint Defect = 5 // complaint by other component
	DefectUpdate    Defect = 6 // dynamic update by user
)

func (d Defect) String() string {
	switch d {
	case DefectExit:
		return "exit/panic"
	case DefectException:
		return "exception"
	case DefectKilled:
		return "killed"
	case DefectHeartbeat:
		return "heartbeat"
	case DefectComplaint:
		return "complaint"
	case DefectUpdate:
		return "update"
	default:
		return fmt.Sprintf("Defect(%d)", int(d))
	}
}

// Mechanism selects the recovery mechanism for a guarded service. It is
// drvlib.Mechanism re-exported, so configurations need only this package:
// the driver library implements the driver half (standby wait loop,
// microreboot interception), RS the arbitration half.
type Mechanism = drvlib.Mechanism

// The recovery mechanisms, in escalation order.
const (
	MechRespawn     = drvlib.MechRespawn
	MechMicroreboot = drvlib.MechMicroreboot
	MechStandby     = drvlib.MechStandby
)

// Binary is a service's executable image: the body its process runs. A
// restart executes a fresh call of the Binary — the "fresh copy" that
// cures transient failures.
type Binary func(c *kernel.Ctx)

// ServiceConfig describes a service the reincarnation server guards; it
// carries exactly the arguments the paper's service utility passes: the
// binary, a stable name, precise privileges, a heartbeat period, and an
// optional parametrized policy script (§5).
type ServiceConfig struct {
	Label   string
	Binary  Binary
	Version string // informational; dynamic updates may change it
	Priv    kernel.Privileges

	// HeartbeatPeriod enables proactive liveness pings when > 0.
	HeartbeatPeriod sim.Time
	// HeartbeatMisses is N: consecutive unanswered pings before the
	// component is declared stuck (default 3).
	HeartbeatMisses int

	// Policy is the recovery script; nil selects RS's direct restart.
	Policy *policy.Script
	// PolicyParams are the script's trailing parameters ($4...), e.g.
	// "-a root@localhost".
	PolicyParams []string

	// MaxRestarts disables the service after this many consecutive
	// failures (0 = never give up). The policy script can express richer
	// give-up behavior; this is the backstop. Every recovery — respawn,
	// in-place microreboot, or standby promotion — counts against it.
	MaxRestarts int

	// Mechanism selects how RS recovers this service: kill-and-respawn
	// (the zero value, the paper's baseline), in-place microreboot, or
	// warm-standby promotion.
	Mechanism Mechanism
}

// Event is one entry of the recovery log; the experiments read these.
type Event struct {
	Time       sim.Time // detection time
	Label      string
	Defect     Defect
	Repetition int      // consecutive-failure count at detection
	Recovered  bool     // a new instance was published
	GaveUp     bool     // MaxRestarts exhausted
	Duration   sim.Time // detection -> new endpoint published
	NewEp      kernel.Endpoint
}

// Alert is a failure notification produced by a policy script's `mail`.
type Alert struct {
	Time    sim.Time
	To      string
	Subject string
	Body    string
}

// service is RS's per-component bookkeeping.
type service struct {
	cfg     ServiceConfig
	ep      kernel.Endpoint
	running bool
	stopped bool // administratively stopped; don't recover
	gaveUp  bool

	failures    int // consecutive failure count (the script's $3)
	lastFailure sim.Time

	// Heartbeat state.
	nextPing sim.Time
	awaiting bool // ping sent, pong not yet seen
	missed   int

	// killClass records why RS itself is killing the instance, so the
	// resulting exit event is attributed to the right defect class.
	killClass Defect

	updating   bool     // SIGTERM sent for dynamic update
	termKillAt sim.Time // when to escalate SIGTERM to SIGKILL

	detectedAt   sim.Time // set when a defect is detected, for Duration
	pendingClass Defect   // class of the recovery a policy script is driving

	// Warm-standby pool state (Mechanism == MechStandby).
	standbyEp kernel.Endpoint // parked replica (meaningful iff standbyUp)
	standbyUp bool

	// Microreboot accounting (Mechanism == MechMicroreboot).
	microCount   int  // in-place reboots since the last full respawn
	microPending bool // granted microreboot in flight; a death before
	// RSMicroDone is its failed tail and must not be double-counted

	// Heartbeat history window for decision tracing: the last up-to-8
	// ping results of the current instance, bit 0 = most recent,
	// 1 = answered. Maintained only while a decision recorder listens.
	hbBits uint16
	hbN    int

	// episode is the recovery episode's root span, opened at defect
	// detection and closed when the fresh instance is published (or RS
	// gives up). Everything the recovery touches — the policy script, the
	// new instance's initialization, dependents' reintegration — nests
	// under or links back to it.
	episode obs.SpanContext
}

// restartBudget is how many restarts remain before MaxRestarts forces a
// give-up (-1 = unlimited, 0 = the next failure gives up).
func restartBudget(svc *service) int {
	if svc.cfg.MaxRestarts <= 0 {
		return -1
	}
	b := svc.cfg.MaxRestarts - svc.failures
	if b < 0 {
		b = 0
	}
	return b
}

// recordHB appends one heartbeat observation (true = pong seen) to the
// service's sliding window.
func (svc *service) recordHB(ok bool) {
	svc.hbBits <<= 1
	if ok {
		svc.hbBits |= 1
	}
	if svc.hbN < 8 {
		svc.hbN++
	}
}

// hbWindow renders the heartbeat history oldest-first, 'o' = answered,
// 'm' = missed ("" when unmonitored or no pings yet).
func (svc *service) hbWindow() string {
	if svc.hbN == 0 {
		return ""
	}
	b := make([]byte, svc.hbN)
	for i := 0; i < svc.hbN; i++ {
		if svc.hbBits>>uint(svc.hbN-1-i)&1 == 1 {
			b[i] = 'o'
		} else {
			b[i] = 'm'
		}
	}
	return string(b)
}

// policyStepDetail renders one traced script step: the expanded argv
// plus the interpreter's variable state at that point.
func policyStepDetail(argv []string, vars string) string {
	d := strings.Join(argv, " ")
	if vars != "" {
		d += " [" + vars + "]"
	}
	return d
}

// internal message type: drain the pending Go-level requests.
const msgRSDrain int32 = 390

// stableResetAfter: a service that stays up this long gets its
// consecutive-failure count reset, so the exponential backoff reflects
// crash *loops* rather than lifetime totals.
const stableResetAfter = 60 * time.Second

// termGrace is how long a SIGTERM'd component gets before SIGKILL (§6).
const termGrace = 500 * time.Millisecond

// microBudget is how many in-place microreboots one instance may perform
// before RS denies further requests and forces a full respawn — the
// escalation rung for a VM whose state is corrupt beyond an in-place
// reset. A full respawn (or a long stable run) resets the budget.
const microBudget = 3

// RS is the reincarnation server.
type RS struct {
	ctx  *kernel.Ctx
	k    *kernel.Kernel
	dsEp kernel.Endpoint
	pmEp kernel.Endpoint

	services     map[string]*service
	sortedLabels []string     // cached label order for ServicesInto
	pending      []pendingReq // Go-level API requests awaiting the RS loop
	shSeq        int          // policy-script runner sequence numbers

	events   []Event
	alerts   []Alert
	onReboot func()
	rebooted bool

	// dec receives structured recovery-decision events (nil = off; every
	// decision point costs one nil check).
	dec *decision.Recorder
}

type pendingReq struct {
	kind  string // "start", "stop", "restart", "update", "kill"
	cfg   ServiceConfig
	label string
	sig   kernel.Signal
}

// Option configures the reincarnation server.
type Option func(*RS)

// WithOnReboot installs the whole-system reboot hook a policy script's
// `reboot` command triggers.
func WithOnReboot(fn func()) Option {
	return func(rs *RS) { rs.onReboot = fn }
}

// WithDecisions streams every recovery decision RS makes — stuck
// declarations, defect detections, action choices, policy-script steps,
// terminal outcomes — to the given recorder (internal/obs/decision).
// A nil recorder keeps the decision path free.
func WithDecisions(d *decision.Recorder) Option {
	return func(rs *RS) { rs.dec = d }
}

// Start spawns the reincarnation server. It subscribes to PM's exit
// events; services are then added with StartService.
func Start(k *kernel.Kernel, pmEp, dsEp kernel.Endpoint, opts ...Option) (*RS, error) {
	rs := &RS{
		k:        k,
		dsEp:     dsEp,
		pmEp:     pmEp,
		services: make(map[string]*service),
	}
	for _, o := range opts {
		o(rs)
	}
	ctx, err := k.Spawn(Label, kernel.Privileges{
		AllowAllIPC: true,
		Calls: []kernel.Call{
			kernel.CallSpawn, kernel.CallKill, kernel.CallPrivCtl, kernel.CallAlarm,
		},
	}, rs.run)
	if err != nil {
		return nil, err
	}
	rs.ctx = ctx
	return rs, nil
}

// Endpoint returns RS's endpoint.
func (rs *RS) Endpoint() kernel.Endpoint { return rs.ctx.Endpoint() }

// Events returns a copy of the recovery event log.
func (rs *RS) Events() []Event { return append([]Event(nil), rs.events...) }

// Alerts returns a copy of the failure alerts sent by policy scripts.
func (rs *RS) Alerts() []Alert { return append([]Alert(nil), rs.alerts...) }

// Rebooted reports whether a policy script requested a system reboot.
func (rs *RS) Rebooted() bool { return rs.rebooted }

// ServiceEndpoint returns the current endpoint of a service (None when
// down).
func (rs *RS) ServiceEndpoint(label string) kernel.Endpoint {
	if svc, ok := rs.services[label]; ok && svc.running {
		return svc.ep
	}
	return kernel.None
}

// ServiceInfo is a read-only snapshot of one guarded service, for the
// live invariant checker (internal/check).
type ServiceInfo struct {
	Label   string
	Ep      kernel.Endpoint // current (or last) instance endpoint
	Running bool
	Stopped bool // administratively stopped; no recovery expected
	GaveUp  bool

	HeartbeatPeriod sim.Time
	HeartbeatMisses int
	NextPing        sim.Time // next heartbeat deadline (0 = unmonitored)
	Awaiting        bool     // ping sent, pong outstanding
	Missed          int      // consecutive misses so far

	Failures   int
	Recovering bool // defect detected, fresh instance not yet published

	// StandbyEp is the parked warm replica's endpoint (None = no
	// replica). The invariant checker asserts no published name ever
	// resolves to it: a standby never serves before promotion.
	StandbyEp kernel.Endpoint
}

// Services returns a snapshot of every guarded service, in label order.
func (rs *RS) Services() []ServiceInfo { return rs.ServicesInto(nil) }

// ServicesInto appends the snapshot to buf and returns it, letting the
// live invariant checker — which snapshots after every scheduler step —
// reuse one buffer. The sorted label list is cached and rebuilt only
// when services are added.
func (rs *RS) ServicesInto(buf []ServiceInfo) []ServiceInfo {
	if len(rs.sortedLabels) != len(rs.services) {
		rs.sortedLabels = rs.sortedLabels[:0]
		for l := range rs.services {
			rs.sortedLabels = append(rs.sortedLabels, l)
		}
		sort.Strings(rs.sortedLabels)
	}
	out := buf
	for _, l := range rs.sortedLabels {
		svc := rs.services[l]
		standby := kernel.None
		if svc.standbyUp {
			standby = svc.standbyEp
		}
		out = append(out, ServiceInfo{
			Label:           l,
			Ep:              svc.ep,
			Running:         svc.running,
			Stopped:         svc.stopped,
			GaveUp:          svc.gaveUp,
			HeartbeatPeriod: svc.cfg.HeartbeatPeriod,
			HeartbeatMisses: svc.cfg.HeartbeatMisses,
			NextPing:        svc.nextPing,
			Awaiting:        svc.awaiting,
			Missed:          svc.missed,
			Failures:        svc.failures,
			Recovering:      svc.detectedAt != 0,
			StandbyEp:       standby,
		})
	}
	return out
}

// FailureCount returns a service's consecutive-failure count.
func (rs *RS) FailureCount(label string) int {
	if svc, ok := rs.services[label]; ok {
		return svc.failures
	}
	return 0
}

// StartService registers and starts a service. Callable from outside the
// simulation loop (before Run) or from within any process.
func (rs *RS) StartService(cfg ServiceConfig) {
	rs.pending = append(rs.pending, pendingReq{kind: "start", cfg: cfg})
	rs.kick()
}

// StopService administratively stops a service (SIGTERM, then SIGKILL);
// no recovery is performed.
func (rs *RS) StopService(label string) {
	rs.pending = append(rs.pending, pendingReq{kind: "stop", label: label})
	rs.kick()
}

// UpdateService performs a dynamic update (defect class 6): the running
// instance is asked to exit and a fresh instance — possibly a new binary
// registered via cfg — takes its place with no backoff delay.
func (rs *RS) UpdateService(cfg ServiceConfig) {
	rs.pending = append(rs.pending, pendingReq{kind: "update", cfg: cfg, label: cfg.Label})
	rs.kick()
}

// KillService sends the service a signal as the "user kill" defect
// class 3 (the crash-simulation scripts of §7.1 use SIGKILL).
func (rs *RS) KillService(label string, sig kernel.Signal) {
	rs.pending = append(rs.pending, pendingReq{kind: "kill", label: label, sig: sig})
	rs.kick()
}

func (rs *RS) kick() {
	_ = rs.k.PostAsync(rs.ctx.Endpoint(), kernel.Message{Type: msgRSDrain})
}

// run is the RS message loop.
func (rs *RS) run(c *kernel.Ctx) {
	// Subscribe to PM exit events before anything can die.
	if _, err := c.SendRec(rs.pmEp, kernel.Message{Type: proto.PMSubscribe}); err != nil {
		c.Panic("subscribe to pm: " + err.Error())
	}
	rs.drain(c)
	for {
		rs.armTimer(c)
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		switch {
		case m.Type == kernel.MsgNotify && m.Source == kernel.Clock:
			rs.onTimer(c)
		case m.Type == msgRSDrain && m.Source == kernel.System:
			rs.drain(c)
		case m.Type == proto.PMExitEvent:
			if m.Source == rs.pmEp {
				rs.onExitEvent(c, m)
			}
		case m.Type == proto.RSPong:
			rs.onPong(m.Source)
		case m.Type == proto.RSMicroAsk:
			rs.onMicroAsk(c, m)
		case m.Type == proto.RSMicroDone:
			rs.onMicroDone(c, m)
		case m.Type == proto.RSRestart:
			rs.onRestartRequest(c, m)
		case m.Type == proto.RSStop:
			rs.doStop(c, m.Name)
			_ = c.Send(m.Source, kernel.Message{Type: proto.RSAck, Arg1: proto.OK})
		case m.Type == proto.RSComplain:
			rs.onComplaint(c, m)
		case m.Type == proto.RSReboot:
			rs.doReboot(c)
			_ = c.Send(m.Source, kernel.Message{Type: proto.RSAck, Arg1: proto.OK})
		}
	}
}

func (rs *RS) drain(c *kernel.Ctx) {
	for len(rs.pending) > 0 {
		req := rs.pending[0]
		rs.pending = rs.pending[1:]
		switch req.kind {
		case "start":
			svc := &service{cfg: req.cfg}
			if svc.cfg.HeartbeatMisses == 0 {
				svc.cfg.HeartbeatMisses = 3
			}
			rs.services[req.cfg.Label] = svc
			rs.spawnInstance(c, svc)
		case "stop":
			rs.doStop(c, req.label)
		case "update":
			rs.doUpdate(c, req.cfg)
		case "kill":
			if svc, ok := rs.services[req.label]; ok && svc.running {
				// Attributed to "killed by user": RS merely relays.
				_ = c.Kill(svc.ep, req.sig)
			}
		}
	}
}

// spawnInstance starts a fresh process for svc and reintegrates it:
// privileges are applied at spawn, the new endpoint is published in the
// data store, and heartbeat monitoring restarts.
func (rs *RS) spawnInstance(c *kernel.Ctx, svc *service) {
	ep, err := c.Spawn(svc.cfg.Label, svc.cfg.Priv, svc.cfg.Binary)
	if err != nil {
		c.Logf("spawn %s: %v", svc.cfg.Label, err)
		return
	}
	svc.ep = ep
	svc.running = true
	svc.stopped = false
	svc.updating = false
	svc.killClass = 0
	svc.missed = 0
	svc.awaiting = false
	svc.hbBits = 0
	svc.hbN = 0
	svc.microCount = 0 // a fresh instance earns a fresh microreboot budget
	svc.microPending = false
	if svc.cfg.HeartbeatPeriod > 0 {
		svc.nextPing = c.Now() + svc.cfg.HeartbeatPeriod
	}
	c.Obs().Emit(obs.KindRestart, svc.cfg.Label, svc.cfg.Version, int64(ep), int64(svc.failures))
	// Publish the new endpoint; dependent components subscribed through
	// the data store learn about the restart from this (paper §5.3).
	_, err = c.SendRec(rs.dsEp, kernel.Message{
		Type: proto.DSPublish,
		Name: svc.cfg.Label,
		Arg1: int64(ep),
	})
	if err != nil {
		c.Logf("publish %s: %v", svc.cfg.Label, err)
	}
	c.Logf("service %s up at %v (failures=%d)", svc.cfg.Label, ep, svc.failures)
	if svc.cfg.Mechanism == MechStandby {
		rs.spawnStandby(c, svc) // keep the warm pool filled
	}
}

// spawnStandby parks a fresh warm replica for svc under the "/sb" label.
// The replica runs the same binary with the same privileges but does not
// touch the device until promoted (internal/drvlib's standby loop parks
// it before Init).
// [recovery:begin]
func (rs *RS) spawnStandby(c *kernel.Ctx, svc *service) {
	if svc.standbyUp || svc.stopped || svc.gaveUp {
		return
	}
	ep, err := c.Spawn(drvlib.StandbyLabel(svc.cfg.Label), svc.cfg.Priv, svc.cfg.Binary)
	if err != nil {
		c.Logf("spawn standby for %s: %v", svc.cfg.Label, err)
		return
	}
	svc.standbyEp = ep
	svc.standbyUp = true
	c.Logf("standby for %s parked at %v", svc.cfg.Label, ep)
}

// killStandby retires the parked replica (give-up, administrative stop).
// The endpoint is cleared before the kill so the resulting death event is
// not mistaken for a replica crash and back-filled.
func (rs *RS) killStandby(c *kernel.Ctx, svc *service, sig kernel.Signal) {
	if !svc.standbyUp {
		return
	}
	ep := svc.standbyEp
	svc.standbyEp = kernel.None
	svc.standbyUp = false
	_ = c.Kill(ep, sig)
}

// [recovery:end]

// [recovery:begin]
// onExitEvent handles a PM exit report — defect classes 1–3, plus the
// tail ends of classes 4–6 whose kills RS itself initiated.
func (rs *RS) onExitEvent(c *kernel.Ctx, m kernel.Message) {
	if drvlib.IsStandbyLabel(m.Name) {
		rs.onStandbyExit(c, m)
		return
	}
	svc, ok := rs.services[m.Name]
	if !ok || kernel.Endpoint(m.Arg1) != svc.ep {
		return // not ours, or a stale instance's echo
	}
	svc.running = false
	svc.termKillAt = 0
	if svc.stopped {
		return // administrative stop: expected, no recovery
	}
	var class Defect
	switch {
	case svc.updating:
		class = DefectUpdate
	case svc.killClass != 0:
		class = svc.killClass
		svc.killClass = 0
	default:
		switch m.Arg2 {
		case proto.CauseExit:
			class = DefectExit
		case proto.CauseException:
			class = DefectException
		default:
			class = DefectKilled
		}
	}
	svc.detectedAt = c.Now()
	rs.recover(c, svc, class)
}

// onStandbyExit handles a parked replica dying: clear it and back-fill,
// so the pool self-heals. Deliberate retirements (give-up, stop,
// promotion) clear standbyEp before acting and are ignored here.
func (rs *RS) onStandbyExit(c *kernel.Ctx, m kernel.Message) {
	svc, ok := rs.services[drvlib.PrimaryLabel(m.Name)]
	if !ok || !svc.standbyUp || kernel.Endpoint(m.Arg1) != svc.standbyEp {
		return
	}
	svc.standbyEp = kernel.None
	svc.standbyUp = false
	if svc.cfg.Mechanism == MechStandby {
		rs.spawnStandby(c, svc)
	}
}

// [recovery:end]

// [recovery:begin]
// recover runs the policy-driven recovery procedure (§5.2).
func (rs *RS) recover(c *kernel.Ctx, svc *service, class Defect) {
	// Consecutive-failure accounting: a long stable run resets the count.
	if svc.lastFailure != 0 && c.Now()-svc.lastFailure > stableResetAfter+svc.cfg.HeartbeatPeriod {
		svc.failures = 0
		svc.microCount = 0
	}
	switch {
	case svc.microPending:
		// This death is the failed tail of a granted microreboot, which
		// was already charged at RSMicroAsk: don't double-count it.
		svc.microPending = false
	case class != DefectUpdate:
		svc.failures++
	}
	svc.lastFailure = c.Now()
	c.Logf("defect %v in %s (repetition %d)", class, svc.cfg.Label, svc.failures)
	c.Obs().Emit(obs.KindDefect, svc.cfg.Label, class.String(), int64(svc.failures), int64(class))
	if !svc.episode.Valid() {
		svc.episode = c.Obs().StartSpan(Label, "recover:"+svc.cfg.Label, obs.SpanContext{})
	}
	if rs.dec.On(decision.KindDetect) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindDetect, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Detail: svc.hbWindow(),
			Trace:  svc.episode.Trace, Span: svc.episode.Span,
		})
	}

	if svc.cfg.MaxRestarts > 0 && svc.failures > svc.cfg.MaxRestarts {
		svc.gaveUp = true
		rs.killStandby(c, svc, kernel.SIGKILL) // no pool for an abandoned service
		rs.events = append(rs.events, Event{
			Time: c.Now(), Label: svc.cfg.Label, Defect: class,
			Repetition: svc.failures, GaveUp: true,
		})
		c.Obs().Emit(obs.KindGiveUp, svc.cfg.Label, class.String(), int64(svc.failures), 0)
		if rs.dec.On(decision.KindAction) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindAction, Service: svc.cfg.Label, Defect: int(class),
				Failures: svc.failures, Budget: restartBudget(svc),
				Action: "give-up", Detail: "restart budget exhausted",
				Trace: svc.episode.Trace, Span: svc.episode.Span,
			})
		}
		// Withdraw the name so dependents see the component as gone. The
		// episode ends unsuccessfully (status 1): the component stays down.
		c.SetTraceCtx(svc.episode)
		_, _ = c.SendRec(rs.dsEp, kernel.Message{Type: proto.DSWithdraw, Name: svc.cfg.Label})
		episode := svc.episode
		c.Obs().EndSpan(Label, svc.episode, 1)
		svc.episode = obs.SpanContext{}
		c.SetTraceCtx(obs.SpanContext{})
		if rs.dec.On(decision.KindOutcome) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindOutcome, Service: svc.cfg.Label, Defect: int(class),
				Failures: svc.failures, Budget: restartBudget(svc),
				Action: "gave-up", Status: 1, Latency: c.Now() - svc.detectedAt,
				Trace: episode.Trace, Span: episode.Span,
			})
		}
		return
	}

	// Warm-standby fast path: fail over to the parked replica instead of
	// spawning. Dynamic updates still respawn (the update's new binary
	// must run), and a missing or unpromotable replica falls through to
	// the ordinary spawn path below.
	if svc.cfg.Mechanism == MechStandby && class != DefectUpdate && svc.standbyUp {
		if rs.promoteStandby(c, svc, class) {
			return
		}
	}

	if svc.cfg.Policy == nil {
		// Direct restart (the disk-driver path of §6.2).
		if rs.dec.On(decision.KindAction) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindAction, Service: svc.cfg.Label, Defect: int(class),
				Failures: svc.failures, Budget: restartBudget(svc),
				Action: "restart-direct",
				Trace:  svc.episode.Trace, Span: svc.episode.Span,
			})
		}
		rs.completeRecovery(c, svc, class)
		return
	}
	svc.pendingClass = class
	rs.runPolicyScript(c, svc, class)
}

// [recovery:end]

// [recovery:begin]
// promoteStandby fails over to the parked warm replica: the kernel
// relabels the replica onto the service label, the replica is told to
// attach, and the data store atomically republishes the endpoint — no
// spawn and no cold device reset on the critical path, which is what
// makes the Fig. 7 dip shallower than a respawn. A fresh standby is
// back-filled in the same turn. Returns false (the caller falls back to
// the spawn path) if the kernel refuses the relabel.
func (rs *RS) promoteStandby(c *kernel.Ctx, svc *service, class Defect) bool {
	ep := svc.standbyEp
	svc.standbyEp = kernel.None
	svc.standbyUp = false
	if err := c.Relabel(ep, svc.cfg.Label); err != nil {
		c.Logf("promote %s: relabel %v: %v", svc.cfg.Label, ep, err)
		return false
	}
	if rs.dec.On(decision.KindAction) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindAction, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Action: "promote-standby", Detail: fmt.Sprintf("replica=%v", ep),
			Trace: svc.episode.Trace, Span: svc.episode.Span,
		})
	}
	c.SetTraceCtx(svc.episode)
	svc.ep = ep
	svc.running = true
	svc.updating = false
	svc.killClass = 0
	svc.missed = 0
	svc.awaiting = false
	svc.hbBits = 0
	svc.hbN = 0
	svc.microCount = 0
	svc.microPending = false
	if svc.cfg.HeartbeatPeriod > 0 {
		svc.nextPing = c.Now() + svc.cfg.HeartbeatPeriod
	}
	c.Obs().Emit(obs.KindRestart, svc.cfg.Label, svc.cfg.Version, int64(ep), int64(svc.failures))
	// The promote must be queued at the replica before the data-store
	// fanout lets dependents talk to it; per-receiver delivery is arrival
	// order, so the replica attaches before serving its first request.
	_ = c.AsyncSend(ep, kernel.Message{Type: proto.RSPromote, Name: svc.cfg.Label})
	if _, err := c.SendRec(rs.dsEp, kernel.Message{
		Type: proto.DSFailover, Name: svc.cfg.Label, Arg1: int64(ep),
	}); err != nil {
		c.Logf("failover publish %s: %v", svc.cfg.Label, err)
	}
	c.Logf("service %s failed over to standby %v (failures=%d)", svc.cfg.Label, ep, svc.failures)
	rs.events = append(rs.events, Event{
		Time: svc.detectedAt, Label: svc.cfg.Label, Defect: class,
		Repetition: svc.failures, Recovered: true,
		Duration: c.Now() - svc.detectedAt, NewEp: ep,
	})
	c.Obs().ObserveRecovery(svc.cfg.Label, c.Now()-svc.detectedAt)
	if rs.dec.On(decision.KindOutcome) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindOutcome, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Action: "recovered", Detail: "promote-standby",
			Status: 0, Latency: c.Now() - svc.detectedAt,
			Trace: svc.episode.Trace, Span: svc.episode.Span,
		})
	}
	c.Obs().EndSpan(Label, svc.episode, 0)
	svc.episode = obs.SpanContext{}
	c.SetTraceCtx(obs.SpanContext{})
	svc.detectedAt = 0
	svc.pendingClass = 0
	rs.spawnStandby(c, svc) // back-fill the pool in the background
	return true
}

// [recovery:end]

// [recovery:begin]
// onMicroAsk arbitrates a driver's request to microreboot its faulted
// ucode VM in place. Every granted microreboot is charged against the
// same consecutive-failure budget as a respawn — MaxRestarts bounds
// recoveries, not process spawns — and against the per-instance
// microreboot budget; when either is exhausted the request is denied,
// the driver carries out its original fatal, and the ladder escalates to
// a full respawn (which resets the microreboot budget).
func (rs *RS) onMicroAsk(c *kernel.Ctx, m kernel.Message) {
	svc, ok := rs.services[m.Name]
	reply := kernel.Message{Type: proto.RSAck, Arg1: proto.OK}
	if !ok || m.Source != svc.ep || svc.cfg.Mechanism != MechMicroreboot ||
		svc.stopped || svc.updating || svc.gaveUp {
		reply.Arg1 = proto.ErrPerm
		_ = c.Send(m.Source, reply)
		return
	}
	class := Defect(m.Arg1)
	if class < DefectExit || class > DefectUpdate {
		class = DefectExit
	}
	// Same stable-run reset as recover(): a long healthy stretch clears
	// both budgets.
	if svc.lastFailure != 0 && c.Now()-svc.lastFailure > stableResetAfter+svc.cfg.HeartbeatPeriod {
		svc.failures = 0
		svc.microCount = 0
	}
	var deny string
	switch {
	case svc.microCount >= microBudget:
		deny = fmt.Sprintf("microreboot budget exhausted (%d/%d)", svc.microCount, microBudget)
	case svc.cfg.MaxRestarts > 0 && svc.failures+1 > svc.cfg.MaxRestarts:
		deny = "restart budget exhausted"
	}
	if deny != "" {
		if rs.dec.On(decision.KindTrigger) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindTrigger, Service: svc.cfg.Label, Defect: int(class),
				Failures: svc.failures, Budget: restartBudget(svc),
				Action: "microreboot-deny", Detail: deny,
			})
		}
		c.Logf("microreboot of %s denied: %s", svc.cfg.Label, deny)
		reply.Arg1 = proto.ErrAgain
		_ = c.Send(m.Source, reply)
		return
	}
	svc.failures++
	svc.lastFailure = c.Now()
	svc.microCount++
	svc.microPending = true
	svc.pendingClass = class
	svc.detectedAt = c.Now()
	c.Logf("defect %v in %s: microreboot %d/%d (repetition %d)",
		class, svc.cfg.Label, svc.microCount, microBudget, svc.failures)
	if !svc.episode.Valid() {
		svc.episode = c.Obs().StartSpan(Label, "recover:"+svc.cfg.Label, obs.SpanContext{})
	}
	if rs.dec.On(decision.KindDetect) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindDetect, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Detail: svc.hbWindow(),
			Trace:  svc.episode.Trace, Span: svc.episode.Span,
		})
	}
	if rs.dec.On(decision.KindAction) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindAction, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Action: "microreboot",
			Detail: fmt.Sprintf("in-place vm reset %d/%d", svc.microCount, microBudget),
			Trace:  svc.episode.Trace, Span: svc.episode.Span,
		})
	}
	_ = c.Send(m.Source, reply)
}

// [recovery:end]

// [recovery:begin]
// onMicroDone closes an in-place microreboot episode: the driver is
// serving again on the same endpoint, so there is no republish and no
// reintegration — only the books are settled.
func (rs *RS) onMicroDone(c *kernel.Ctx, m kernel.Message) {
	svc, ok := rs.services[m.Name]
	if !ok || m.Source != svc.ep || !svc.microPending {
		return
	}
	svc.microPending = false
	svc.missed = 0
	svc.awaiting = false
	if svc.cfg.HeartbeatPeriod > 0 {
		svc.nextPing = c.Now() + svc.cfg.HeartbeatPeriod
	}
	class := rs.lastDefectClass(svc)
	c.Logf("service %s microrebooted in place (failures=%d)", svc.cfg.Label, svc.failures)
	rs.events = append(rs.events, Event{
		Time: svc.detectedAt, Label: svc.cfg.Label, Defect: class,
		Repetition: svc.failures, Recovered: true,
		Duration: c.Now() - svc.detectedAt, NewEp: svc.ep,
	})
	c.Obs().ObserveRecovery(svc.cfg.Label, c.Now()-svc.detectedAt)
	if rs.dec.On(decision.KindOutcome) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindOutcome, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Action: "recovered", Detail: "microreboot",
			Status: 0, Latency: c.Now() - svc.detectedAt,
			Trace: svc.episode.Trace, Span: svc.episode.Span,
		})
	}
	c.Obs().EndSpan(Label, svc.episode, 0)
	svc.episode = obs.SpanContext{}
	svc.detectedAt = 0
	svc.pendingClass = 0
}

// [recovery:end]

// [recovery:begin]
// completeRecovery restarts the component and records the event. The
// spawn and publish run under the episode's context, so the fresh
// instance's initialization and the data-store fanout that triggers
// dependents' reintegration are causal children of the episode span.
func (rs *RS) completeRecovery(c *kernel.Ctx, svc *service, class Defect) {
	c.SetTraceCtx(svc.episode)
	rs.spawnInstance(c, svc)
	rs.events = append(rs.events, Event{
		Time:       svc.detectedAt,
		Label:      svc.cfg.Label,
		Defect:     class,
		Repetition: svc.failures,
		Recovered:  true,
		Duration:   c.Now() - svc.detectedAt,
		NewEp:      svc.ep,
	})
	c.Obs().ObserveRecovery(svc.cfg.Label, c.Now()-svc.detectedAt)
	if rs.dec.On(decision.KindOutcome) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindOutcome, Service: svc.cfg.Label, Defect: int(class),
			Failures: svc.failures, Budget: restartBudget(svc),
			Action: "recovered", Status: 0, Latency: c.Now() - svc.detectedAt,
			Trace: svc.episode.Trace, Span: svc.episode.Span,
		})
	}
	c.Obs().EndSpan(Label, svc.episode, 0)
	svc.episode = obs.SpanContext{}
	c.SetTraceCtx(obs.SpanContext{})
	svc.detectedAt = 0
	svc.pendingClass = 0
}

// [recovery:end]

// [recovery:begin]
// runPolicyScript launches a transient process that executes the
// service's recovery script. The script's `service restart` command calls
// back into RS — "restarting is always done by requesting the
// reincarnation server to do so, since that is the only process with the
// privileges to create new servers and drivers" (§5.2).
func (rs *RS) runPolicyScript(c *kernel.Ctx, svc *service, class Defect) {
	rs.shSeq++
	runnerLabel := fmt.Sprintf("sh.%s.%d", svc.cfg.Label, rs.shSeq)
	rsEp := rs.ctx.Endpoint()
	script := svc.cfg.Policy
	args := append([]string{svc.cfg.Label, fmt.Sprint(int(class)), fmt.Sprint(svc.failures)},
		svc.cfg.PolicyParams...)
	c.Obs().Emit(obs.KindPolicyStart, svc.cfg.Label, runnerLabel, int64(class), int64(svc.failures))
	// Snapshot the episode and RS state for the runner's decision trail:
	// the script may itself complete the recovery (clearing svc.episode)
	// before its remaining steps execute.
	episode := svc.episode
	failures := svc.failures
	budget := restartBudget(svc)
	// The runner inherits the episode context at spawn: the script's
	// restart calls show up inside the episode's span tree.
	c.SetTraceCtx(svc.episode)
	_, err := c.Spawn(runnerLabel, kernel.Privileges{
		IPCTo: []string{Label},
		UID:   1000,
	}, func(sh *kernel.Ctx) {
		var interp *policy.Interp
		opts := []policy.Option{
			policy.WithArgs(args...),
			policy.WithSleep(func(d time.Duration) { sh.Sleep(d) }),
			policy.WithCommand("service", func(argv []string, stdin string) (string, int) {
				return rs.serviceCommand(sh, rsEp, argv)
			}),
			policy.WithCommand("mail", func(argv []string, stdin string) (string, int) {
				rs.mailCommand(sh, argv, stdin)
				return "", 0
			}),
			policy.WithCommand("log", func(argv []string, stdin string) (string, int) {
				sh.Logf("policy log: %v", argv[1:])
				return "", 0
			}),
			policy.WithCommand("reboot", func(argv []string, stdin string) (string, int) {
				if _, err := sh.SendRec(rsEp, kernel.Message{Type: proto.RSReboot}); err != nil {
					return "", 1
				}
				return "", 0
			}),
		}
		if rs.dec.On(decision.KindPolicyStep) {
			opts = append(opts, policy.WithTrace(func(argv []string, status int) {
				ev := decision.Event{
					Kind: decision.KindPolicyStep, Service: args[0], Defect: int(class),
					Failures: failures, Budget: budget,
					Action: argv[0], Detail: policyStepDetail(argv, interp.VarState()),
					Status: int64(status),
					Trace:  episode.Trace, Span: episode.Span,
				}
				// The sleep builtin is the script's backoff: surface the
				// computed delay as a first-class field.
				if argv[0] == "sleep" && len(argv) >= 2 {
					if secs, err := strconv.ParseFloat(argv[1], 64); err == nil && secs >= 0 {
						ev.Delay = sim.Time(secs * float64(time.Second))
					}
				}
				rs.dec.Emit(ev)
			}))
		}
		interp = policy.NewInterp(opts...)
		rc := int64(0)
		if _, err := interp.Run(script); err != nil {
			sh.Logf("policy script failed: %v", err)
			rc = 1
			// A broken policy script must not strand the component: fall
			// back to a direct restart request.
			_, _ = sh.SendRec(rsEp, kernel.Message{Type: proto.RSRestart, Name: args[0]})
		}
		if rs.dec.On(decision.KindPolicyStep) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindPolicyStep, Service: args[0], Defect: int(class),
				Failures: failures, Budget: budget,
				Action: "exit", Status: rc,
				Trace: episode.Trace, Span: episode.Span,
			})
		}
		sh.Obs().Emit(obs.KindPolicyExit, args[0], runnerLabel, rc, 0)
		sh.Exit(0)
	})
	if err != nil {
		c.Logf("policy runner for %s: %v", svc.cfg.Label, err)
		if rs.dec.On(decision.KindAction) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindAction, Service: svc.cfg.Label, Defect: int(class),
				Failures: failures, Budget: budget,
				Action: "restart-direct", Detail: "policy runner spawn failed",
				Trace: episode.Trace, Span: episode.Span,
			})
		}
		rs.completeRecovery(c, svc, class)
		return
	}
	if rs.dec.On(decision.KindAction) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindAction, Service: svc.cfg.Label, Defect: int(class),
			Failures: failures, Budget: budget,
			Action: "policy-run", Detail: strings.Join(args, " "),
			Trace: episode.Trace, Span: episode.Span,
		})
	}
}

// [recovery:end]

// [recovery:begin]
// serviceCommand implements the policy scripts' `service` builtin.
func (rs *RS) serviceCommand(sh *kernel.Ctx, rsEp kernel.Endpoint, argv []string) (string, int) {
	if len(argv) < 3 {
		return "service: usage: service restart|stop|update <label>\n", 2
	}
	var typ int32
	switch argv[1] {
	case "restart":
		typ = proto.RSRestart
	case "stop":
		typ = proto.RSStop
	case "update":
		typ = proto.RSUpdate
	default:
		return "service: unknown action " + argv[1] + "\n", 2
	}
	reply, err := sh.SendRec(rsEp, kernel.Message{Type: typ, Name: argv[2]})
	if err != nil || reply.Arg1 != proto.OK {
		return "", 1
	}
	return "", 0
}

// [recovery:end]

// [recovery:begin]
// mailCommand implements the policy scripts' `mail` (alert sink).
func (rs *RS) mailCommand(sh *kernel.Ctx, argv []string, stdin string) {
	alert := Alert{Time: sh.Now(), Body: stdin}
	for i := 1; i < len(argv); i++ {
		if argv[i] == "-s" && i+1 < len(argv) {
			alert.Subject = argv[i+1]
			i++
			continue
		}
		alert.To = argv[i]
	}
	rs.alerts = append(rs.alerts, alert)
}

// [recovery:end]

// [recovery:begin]
// onRestartRequest restarts a service on behalf of a policy script or the
// service utility.
func (rs *RS) onRestartRequest(c *kernel.Ctx, m kernel.Message) {
	svc, ok := rs.services[m.Name]
	reply := kernel.Message{Type: proto.RSAck, Arg1: proto.OK}
	switch {
	case !ok:
		reply.Arg1 = proto.ErrNotFound
	case svc.running:
		// Restart of a live service = administrative replace.
		rs.beginTermination(c, svc, DefectUpdate)
	case svc.detectedAt != 0:
		// The script is finishing a recovery already in progress.
		rs.completeRecovery(c, svc, rs.lastDefectClass(svc))
	default:
		rs.spawnInstance(c, svc)
	}
	_ = c.Send(m.Source, reply)
}

// [recovery:end]

// [recovery:begin]
// lastDefectClass reconstructs the class recorded at detection for the
// script-driven path. The class is threaded through the script's $2; for
// the event log we re-derive it from the pending detection.
func (rs *RS) lastDefectClass(svc *service) Defect {
	if svc.updating {
		return DefectUpdate
	}
	if svc.pendingClass != 0 {
		return svc.pendingClass
	}
	return DefectExit
}

// [recovery:end]

// doStop administratively stops a service.
func (rs *RS) doStop(c *kernel.Ctx, label string) {
	svc, ok := rs.services[label]
	if !ok || !svc.running {
		return
	}
	svc.stopped = true
	rs.killStandby(c, svc, kernel.SIGTERM)
	rs.beginTermination(c, svc, 0)
}

// [recovery:begin]
// doUpdate performs the dynamic-update flow: ask the component to exit
// (SIGTERM), escalate to SIGKILL after a grace period, then start the new
// binary. The exit event carries the class-6 attribution via svc.updating.
func (rs *RS) doUpdate(c *kernel.Ctx, cfg ServiceConfig) {
	svc, ok := rs.services[cfg.Label]
	if !ok {
		rs.pending = append(rs.pending, pendingReq{kind: "start", cfg: cfg})
		rs.drain(c)
		return
	}
	// Swap in the new binary/version/policy for the next instance; fields
	// left zero keep the current ones (update-in-place restart).
	if cfg.Binary != nil {
		svc.cfg.Binary = cfg.Binary
	}
	if cfg.Version != "" {
		svc.cfg.Version = cfg.Version
	}
	if cfg.Policy != nil {
		svc.cfg.Policy = cfg.Policy
		svc.cfg.PolicyParams = cfg.PolicyParams
	}
	if !svc.running {
		svc.detectedAt = c.Now()
		rs.recover(c, svc, DefectUpdate)
		return
	}
	rs.beginTermination(c, svc, DefectUpdate)
}

// [recovery:end]

// beginTermination sends SIGTERM and arms the SIGKILL escalation.
func (rs *RS) beginTermination(c *kernel.Ctx, svc *service, class Defect) {
	if class == DefectUpdate {
		svc.updating = true
		if rs.dec.On(decision.KindTrigger) {
			rs.dec.Emit(decision.Event{
				Kind: decision.KindTrigger, Service: svc.cfg.Label, Defect: int(DefectUpdate),
				Failures: svc.failures, Budget: restartBudget(svc),
				Action: "terminate", Detail: "dynamic update", Delay: termGrace,
			})
		}
	}
	svc.termKillAt = c.Now() + termGrace
	_ = c.Kill(svc.ep, kernel.SIGTERM)
}

// [recovery:begin]
// onComplaint handles defect class 5: an authorized server reports a
// malfunctioning component; RS kills and replaces it.
func (rs *RS) onComplaint(c *kernel.Ctx, m kernel.Message) {
	reply := kernel.Message{Type: proto.RSAck, Arg1: proto.OK}
	if !rs.k.MayComplain(m.Source) {
		reply.Arg1 = proto.ErrPerm
		_ = c.Send(m.Source, reply)
		return
	}
	svc, ok := rs.services[m.Name]
	if !ok || !svc.running {
		reply.Arg1 = proto.ErrNotFound
		_ = c.Send(m.Source, reply)
		return
	}
	c.Logf("complaint about %s from %s", m.Name, rs.k.LabelOf(m.Source))
	if rs.dec.On(decision.KindTrigger) {
		rs.dec.Emit(decision.Event{
			Kind: decision.KindTrigger, Service: m.Name, Defect: int(DefectComplaint),
			Failures: svc.failures, Budget: restartBudget(svc),
			Action: "complaint-kill", Detail: "complaint from " + rs.k.LabelOf(m.Source),
		})
	}
	svc.killClass = DefectComplaint
	_ = c.Kill(svc.ep, kernel.SIGKILL)
	_ = c.Send(m.Source, reply)
}

// [recovery:end]

func (rs *RS) doReboot(c *kernel.Ctx) {
	rs.rebooted = true
	c.Logf("policy script requested system reboot")
	if rs.onReboot != nil {
		rs.onReboot()
	}
}

// armTimer sets RS's alarm to the earliest pending deadline (heartbeat
// pings and SIGTERM escalations share the single kernel alarm).
func (rs *RS) armTimer(c *kernel.Ctx) {
	var next sim.Time
	for _, svc := range rs.services {
		if svc.running && svc.cfg.HeartbeatPeriod > 0 {
			if next == 0 || svc.nextPing < next {
				next = svc.nextPing
			}
		}
		if svc.running && svc.termKillAt != 0 {
			if next == 0 || svc.termKillAt < next {
				next = svc.termKillAt
			}
		}
	}
	if next == 0 {
		c.SetAlarm(0)
		return
	}
	d := next - c.Now()
	if d <= 0 {
		d = 1 // fire on the next tick, never in the past
	}
	c.SetAlarm(d)
}

// [recovery:begin]
// onTimer processes due heartbeats and SIGTERM escalations. Services are
// visited in label order: the visit order is observable through the trace
// bus (ping sends, heartbeat misses), and map order would make traces
// differ between identically-seeded runs.
func (rs *RS) onTimer(c *kernel.Ctx) {
	// Clock notifications carry no trace context, so whatever context the
	// last recovery left ambient would leak into heartbeat pings: clear it.
	c.SetTraceCtx(obs.SpanContext{})
	now := c.Now()
	labels := make([]string, 0, len(rs.services))
	for l := range rs.services {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		svc := rs.services[l]
		if !svc.running {
			continue
		}
		if svc.termKillAt != 0 && now >= svc.termKillAt {
			svc.termKillAt = 0
			if !svc.stopped && rs.dec.On(decision.KindTrigger) {
				class := 0
				if svc.updating {
					class = int(DefectUpdate)
				}
				rs.dec.Emit(decision.Event{
					Kind: decision.KindTrigger, Service: svc.cfg.Label, Defect: class,
					Failures: svc.failures, Budget: restartBudget(svc),
					Action: "escalate-sigkill", Detail: "termination grace expired",
				})
			}
			_ = c.Kill(svc.ep, kernel.SIGKILL)
			continue
		}
		if svc.cfg.HeartbeatPeriod > 0 && now >= svc.nextPing {
			if svc.awaiting {
				svc.missed++
				c.Obs().Emit(obs.KindHeartbeat, svc.cfg.Label, "miss", int64(svc.missed), 0)
				if rs.dec.On(decision.KindDetect) {
					svc.recordHB(false)
				}
				if svc.missed >= svc.cfg.HeartbeatMisses {
					// Defect class 4: the component is stuck. Kill it;
					// the exit event completes the recovery.
					c.Logf("%s missed %d heartbeats; declaring stuck", svc.cfg.Label, svc.missed)
					if rs.dec.On(decision.KindTrigger) {
						rs.dec.Emit(decision.Event{
							Kind: decision.KindTrigger, Service: svc.cfg.Label, Defect: int(DefectHeartbeat),
							Failures: svc.failures, Budget: restartBudget(svc),
							Action: "declare-stuck",
							Detail: fmt.Sprintf("hb=%s missed=%d", svc.hbWindow(), svc.missed),
						})
					}
					svc.killClass = DefectHeartbeat
					svc.awaiting = false
					svc.missed = 0
					_ = c.Kill(svc.ep, kernel.SIGKILL)
					continue
				}
			}
			// Nonblocking status request (§5.1).
			svc.awaiting = true
			_ = c.AsyncSend(svc.ep, kernel.Message{Type: proto.RSPing})
			svc.nextPing = now + svc.cfg.HeartbeatPeriod
		}
	}
}

// [recovery:end]

func (rs *RS) onPong(from kernel.Endpoint) {
	for _, svc := range rs.services {
		if svc.ep == from {
			if svc.awaiting && rs.dec.On(decision.KindDetect) {
				svc.recordHB(true)
			}
			svc.awaiting = false
			svc.missed = 0
			return
		}
	}
}
