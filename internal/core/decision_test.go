package core

import (
	"strings"
	"testing"
	"time"

	"resilientos/internal/ds"
	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
	"resilientos/internal/policy"
	"resilientos/internal/proc"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// decBoot boots a rig with a decision recorder attached.
func decBoot(t *testing.T, opts ...Option) (*rig, *decision.SliceSink) {
	t.Helper()
	sink := &decision.SliceSink{}
	rec := decision.NewRecorder(sink)
	r := boot(t, append(opts, WithDecisions(rec))...)
	rec.SetClock(r.env.Now)
	return r, sink
}

func byKind(events []decision.Event, k decision.Kind) []decision.Event {
	var out []decision.Event
	for _, e := range events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestDecisionDirectRestart(t *testing.T) {
	r, sink := decBoot(t)
	r.rs.StartService(svcCfg("drv", crashAfter(time.Second)))
	r.env.Run(3 * time.Second)

	events := sink.Events()
	if problems := decision.Check(events); len(problems) != 0 {
		t.Fatalf("decision log ill-formed: %v", problems)
	}
	detects := byKind(events, decision.KindDetect)
	if len(detects) == 0 {
		t.Fatal("no detect events")
	}
	d := detects[0]
	if d.Service != "drv" || d.Defect != int(DefectExit) || d.Failures != 1 || d.Budget != -1 {
		t.Fatalf("detect = %+v", d)
	}
	actions := byKind(events, decision.KindAction)
	if len(actions) == 0 || actions[0].Action != "restart-direct" {
		t.Fatalf("actions = %+v", actions)
	}
	outcomes := byKind(events, decision.KindOutcome)
	if len(outcomes) == 0 {
		t.Fatal("no outcome")
	}
	o := outcomes[0]
	if o.Action != "recovered" || o.Status != 0 {
		t.Fatalf("outcome = %+v", o)
	}
	// Direct restart completes in the same virtual instant as detection;
	// the latency must agree with the recovery event log.
	if o.Latency != r.rs.Events()[0].Duration {
		t.Fatalf("latency %v != event duration %v", o.Latency, r.rs.Events()[0].Duration)
	}
}

func TestDecisionPolicyScriptTrail(t *testing.T) {
	r, sink := decBoot(t)
	script := policy.MustParse(`
component=$1
reason=$2
repetition=$3
if [ ! $reason -eq 6 ]; then
	sleep $((1 << ($repetition - 1)))
fi
service restart $component
`)
	// Crash exactly once so the log ends with the episode closed.
	crashed := false
	cfg := svcCfg("drv", func(c *kernel.Ctx) {
		if !crashed {
			crashed = true
			c.Sleep(100 * time.Millisecond)
			c.Panic("induced failure")
		}
		steadyBody(c)
	})
	cfg.Policy = script
	r.rs.StartService(cfg)
	r.env.Run(5 * time.Second)

	events := sink.Events()
	if problems := decision.Check(events); len(problems) != 0 {
		t.Fatalf("decision log ill-formed: %v", problems)
	}
	actions := byKind(events, decision.KindAction)
	if len(actions) == 0 || actions[0].Action != "policy-run" {
		t.Fatalf("actions = %+v", actions)
	}
	if !strings.Contains(actions[0].Detail, "drv 1 1") {
		t.Fatalf("policy-run detail = %q, want script args", actions[0].Detail)
	}
	steps := byKind(events, decision.KindPolicyStep)
	var sleepStep, serviceStep, exitStep *decision.Event
	for i := range steps {
		switch steps[i].Action {
		case "sleep":
			if sleepStep == nil {
				sleepStep = &steps[i]
			}
		case "service":
			if serviceStep == nil {
				serviceStep = &steps[i]
			}
		case "exit":
			if exitStep == nil {
				exitStep = &steps[i]
			}
		}
	}
	if sleepStep == nil || serviceStep == nil || exitStep == nil {
		t.Fatalf("missing steps: sleep=%v service=%v exit=%v", sleepStep, serviceStep, exitStep)
	}
	// First crash: repetition 1 -> backoff 1<<0 = 1s, surfaced as Delay.
	if sleepStep.Delay != sim.Time(time.Second) {
		t.Fatalf("sleep delay = %v, want 1s", sleepStep.Delay)
	}
	// The step detail carries argv and the arith/variable state.
	if !strings.Contains(sleepStep.Detail, "sleep 1") ||
		!strings.Contains(sleepStep.Detail, "component=drv") ||
		!strings.Contains(sleepStep.Detail, "repetition=1") {
		t.Fatalf("sleep detail = %q", sleepStep.Detail)
	}
	if !strings.Contains(serviceStep.Detail, "service restart drv") || serviceStep.Status != 0 {
		t.Fatalf("service step = %+v", serviceStep)
	}
	if exitStep.Status != 0 {
		t.Fatalf("exit step status = %d", exitStep.Status)
	}
	// The outcome lands between the service step and the runner's exit
	// (the restart request completes the recovery mid-script).
	outcomes := byKind(events, decision.KindOutcome)
	if len(outcomes) == 0 || outcomes[0].Action != "recovered" {
		t.Fatalf("outcomes = %+v", outcomes)
	}
}

func TestDecisionGiveUp(t *testing.T) {
	r, sink := decBoot(t)
	cfg := svcCfg("flaky", crashAfter(50*time.Millisecond))
	cfg.MaxRestarts = 2
	r.rs.StartService(cfg)
	r.env.Run(10 * time.Second)

	events := sink.Events()
	if problems := decision.Check(events); len(problems) != 0 {
		t.Fatalf("decision log ill-formed: %v", problems)
	}
	detects := byKind(events, decision.KindDetect)
	// Budget counts down: 1 remaining after first failure, 0 after the
	// second, then the third failure exhausts it.
	if len(detects) != 3 {
		t.Fatalf("detects = %d, want 3", len(detects))
	}
	if detects[0].Budget != 1 || detects[1].Budget != 0 || detects[2].Budget != 0 {
		t.Fatalf("budgets = %d,%d,%d", detects[0].Budget, detects[1].Budget, detects[2].Budget)
	}
	var gaveUp *decision.Event
	for _, e := range byKind(events, decision.KindOutcome) {
		if e.Action == "gave-up" {
			e := e
			gaveUp = &e
		}
	}
	if gaveUp == nil {
		t.Fatal("no gave-up outcome")
	}
	if gaveUp.Status != 1 || gaveUp.Failures != 3 {
		t.Fatalf("gave-up = %+v", gaveUp)
	}
	var act *decision.Event
	for _, e := range byKind(events, decision.KindAction) {
		if e.Action == "give-up" {
			e := e
			act = &e
		}
	}
	if act == nil {
		t.Fatal("no give-up action")
	}
}

func TestDecisionHeartbeatWindow(t *testing.T) {
	r, sink := decBoot(t)
	// Answers the first two pings, then wedges (receives but stays mute).
	cfg := svcCfg("mute", func(c *kernel.Ctx) {
		answered := 0
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.RSPing && answered < 2 {
				answered++
				_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong})
			}
		}
	})
	cfg.HeartbeatPeriod = 200 * time.Millisecond
	cfg.HeartbeatMisses = 3
	r.rs.StartService(cfg)
	r.env.Run(5 * time.Second)

	events := sink.Events()
	if problems := decision.Check(events); len(problems) != 0 {
		t.Fatalf("decision log ill-formed: %v", problems)
	}
	var stuck *decision.Event
	for _, e := range byKind(events, decision.KindTrigger) {
		if e.Action == "declare-stuck" {
			e := e
			stuck = &e
			break
		}
	}
	if stuck == nil {
		t.Fatal("no declare-stuck trigger")
	}
	if stuck.Defect != int(DefectHeartbeat) {
		t.Fatalf("stuck defect = %d", stuck.Defect)
	}
	// Window: two answered pings then three misses, oldest first.
	if !strings.Contains(stuck.Detail, "hb=oommm") || !strings.Contains(stuck.Detail, "missed=3") {
		t.Fatalf("stuck detail = %q, want hb=oommm missed=3", stuck.Detail)
	}
	// The detect that follows carries the (reset-free) window too.
	detects := byKind(events, decision.KindDetect)
	if len(detects) == 0 || detects[0].Defect != int(DefectHeartbeat) {
		t.Fatalf("detects = %+v", detects)
	}
	if detects[0].Detail != "oommm" {
		t.Fatalf("detect window = %q, want oommm", detects[0].Detail)
	}
}

func TestDecisionUpdateTriggers(t *testing.T) {
	r, sink := decBoot(t)
	r.rs.StartService(svcCfg("drv", steadyBody))
	r.k.Spawn("admin", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		r.rs.UpdateService(ServiceConfig{Label: "drv", Version: "v2"})
	})
	r.env.Run(4 * time.Second)

	events := sink.Events()
	if problems := decision.Check(events); len(problems) != 0 {
		t.Fatalf("decision log ill-formed: %v", problems)
	}
	var term *decision.Event
	for _, e := range byKind(events, decision.KindTrigger) {
		if e.Action == "terminate" {
			e := e
			term = &e
		}
	}
	if term == nil {
		t.Fatal("no terminate trigger for dynamic update")
	}
	if term.Defect != int(DefectUpdate) || term.Delay != sim.Time(termGrace) {
		t.Fatalf("terminate = %+v", term)
	}
	// steadyBody honors SIGTERM, so the update completes as a recovery.
	outcomes := byKind(events, decision.KindOutcome)
	if len(outcomes) != 1 || outcomes[0].Defect != int(DefectUpdate) {
		t.Fatalf("outcomes = %+v", outcomes)
	}
}

func TestDecisionDefectNamesMatchCore(t *testing.T) {
	for d := DefectExit; d <= DefectUpdate; d++ {
		name := decision.DefectName(int(d))
		if name == "" || strings.HasPrefix(name, "class(") {
			t.Fatalf("decision.DefectName(%d) = %q", int(d), name)
		}
	}
}

func TestDecisionEpisodeLinkage(t *testing.T) {
	// With an obs recorder attached, decision events carry the episode's
	// trace/span IDs so the two logs join.
	sink := &decision.SliceSink{}
	rec := decision.NewRecorder(sink)
	obsSink := &obs.SliceSink{}
	obsRec := obs.NewRecorder(obsSink)
	env := sim.NewEnv(1)
	obsRec.SetClock(env.Now)
	k := kernel.New(env)
	k.SetObs(obsRec)
	pmEp, err := proc.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	dsEp, err := ds.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := Start(k, pmEp, dsEp, WithDecisions(rec))
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{env: env, k: k, rs: rsrv, dsEp: dsEp, pmEp: pmEp}
	rec.SetClock(r.env.Now)
	r.rs.StartService(svcCfg("drv", crashAfter(time.Second)))
	r.env.Run(3 * time.Second)

	detects := byKind(sink.Events(), decision.KindDetect)
	if len(detects) == 0 {
		t.Fatal("no detects")
	}
	if detects[0].Trace == 0 || detects[0].Span == 0 {
		t.Fatalf("detect not linked to episode span: %+v", detects[0])
	}
	found := false
	for _, e := range obsSink.Events() {
		if e.Trace == detects[0].Trace && e.Span == detects[0].Span {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no obs event shares the episode trace/span")
	}
	outcomes := byKind(sink.Events(), decision.KindOutcome)
	if len(outcomes) == 0 || outcomes[0].Trace != detects[0].Trace {
		t.Fatalf("outcome not in the same trace: %+v", outcomes)
	}
}
