package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"resilientos/internal/drvlib"
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/ucode"
)

// mechDevice is a minimal drvlib.Device with the recovery hooks, shared
// across the instances RS spawns (primary, standby, respawns) — safe
// because the simulation is single-threaded.
type mechDevice struct {
	initCount    int
	promoteCount int
	microCount   int
	failNext     bool // next request raises a fatal VM outcome
}

func (d *mechDevice) Init(c *kernel.Ctx) error { d.initCount++; return nil }
func (d *mechDevice) HandleRequest(c *kernel.Ctx, m kernel.Message) {
	if d.failNext {
		d.failNext = false
		drvlib.React(c, ucode.Result{Outcome: ucode.OutcomeAssert, Reason: "induced fault"})
		return
	}
	_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSAck})
}
func (d *mechDevice) HandleIRQ(c *kernel.Ctx, mask uint64) {}
func (d *mechDevice) HandleAlarm(c *kernel.Ctx)            {}
func (d *mechDevice) Shutdown(c *kernel.Ctx)               {}
func (d *mechDevice) Promote(c *kernel.Ctx) error          { d.promoteCount++; return nil }
func (d *mechDevice) Microreboot(c *kernel.Ctx) error      { d.microCount++; return nil }

func mechBinary(d drvlib.Device, opts drvlib.Options) Binary {
	return func(c *kernel.Ctx) { drvlib.RunWith(c, d, opts) }
}

func findService(t *testing.T, rs *RS, label string) ServiceInfo {
	t.Helper()
	for _, s := range rs.Services() {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("service %q not in snapshot", label)
	return ServiceInfo{}
}

// poke makes the device fault on its next request and delivers one.
func poke(r *rig, dev *mechDevice, label string, n int) {
	dev.failNext = true
	target := r.rs.ServiceEndpoint(label)
	r.k.Spawn(fmt.Sprintf("poke%d", n), kernel.Privileges{AllowAllIPC: true},
		func(c *kernel.Ctx) {
			_ = c.AsyncSend(target, kernel.Message{Type: proto.EthSend})
		})
	r.env.Run(time.Second)
}

// TestStandbyPromotionFailsOver is the warm-standby happy path: RS parks
// a replica alongside the primary, an external SIGKILL promotes it via
// the Promoter fast path (no re-init), the data store follows, and a
// fresh standby is back-filled at a new endpoint.
func TestStandbyPromotionFailsOver(t *testing.T) {
	r := boot(t)
	dev := &mechDevice{}
	cfg := svcCfg("drv", mechBinary(dev, drvlib.Options{Mechanism: drvlib.MechStandby}))
	cfg.Mechanism = MechStandby
	r.rs.StartService(cfg)
	r.env.Run(2 * time.Second)

	primary := r.rs.ServiceEndpoint("drv")
	info := findService(t, r.rs, "drv")
	if info.StandbyEp == kernel.None {
		t.Fatal("no warm standby parked")
	}
	standby := info.StandbyEp
	if standby == primary {
		t.Fatalf("standby shares the primary's endpoint %v", primary)
	}
	if dev.initCount != 1 {
		t.Fatalf("initCount = %d before failover: the parked replica must not touch hardware", dev.initCount)
	}

	r.rs.KillService("drv", kernel.SIGKILL)
	r.env.Run(2 * time.Second)

	if got := r.rs.ServiceEndpoint("drv"); got != standby {
		t.Fatalf("service at %v after failover, want promoted replica %v", got, standby)
	}
	if dev.promoteCount != 1 || dev.initCount != 1 {
		t.Fatalf("promote=%d init=%d: promotion must take the fast-attach path",
			dev.promoteCount, dev.initCount)
	}
	if r.rs.FailureCount("drv") != 1 {
		t.Fatalf("failures = %d, want 1: a promotion counts against the budget",
			r.rs.FailureCount("drv"))
	}
	info = findService(t, r.rs, "drv")
	if info.StandbyEp == kernel.None || info.StandbyEp == standby {
		t.Fatalf("standby pool not back-filled: %v", info.StandbyEp)
	}

	// The data store must agree with RS about the promoted endpoint.
	var published int64
	r.k.Spawn("lookup-probe", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(r.dsEp, kernel.Message{Type: proto.DSLookup, Name: "drv"})
		if err == nil {
			published = reply.Arg1
		}
	})
	r.env.Run(time.Second)
	if kernel.Endpoint(published) != standby {
		t.Fatalf("DS publishes %v after failover, want %v", published, standby)
	}
}

// TestRelabelRefusesLiveDuplicate pins the kernel half of the
// never-two-owners invariant: a relabel onto a label another live
// process bears must be refused.
func TestRelabelRefusesLiveDuplicate(t *testing.T) {
	r := boot(t)
	spawn := func(label string) kernel.Endpoint {
		ctx, err := r.k.Spawn(label, kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
			_, _ = c.Receive(kernel.Any)
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctx.Endpoint()
	}
	spawn("owner")
	other := spawn("other")
	r.env.Run(10 * time.Millisecond)
	if err := r.k.Relabel(other, "owner"); err == nil {
		t.Fatal("relabel onto a live label accepted: two owners of one name")
	}
}

// TestMicrorebootRecoversInPlace: fatal VM outcomes under MechMicroreboot
// are absorbed in place — same process, same endpoint, no respawn — until
// the per-instance budget runs out, at which point RS denies the request
// and the ladder escalates to a full respawn (which resets the budget).
func TestMicrorebootRecoversInPlace(t *testing.T) {
	r := boot(t)
	dev := &mechDevice{}
	cfg := svcCfg("drv", mechBinary(dev, drvlib.Options{Mechanism: drvlib.MechMicroreboot}))
	cfg.Mechanism = MechMicroreboot
	r.rs.StartService(cfg)
	r.env.Run(time.Second)
	ep := r.rs.ServiceEndpoint("drv")

	// Three faults: all inside the budget, all absorbed in place.
	for i := 1; i <= 3; i++ {
		poke(r, dev, "drv", i)
		if got := r.rs.ServiceEndpoint("drv"); got != ep {
			t.Fatalf("fault %d: endpoint %v, want %v (microreboot must not respawn)", i, got, ep)
		}
		if dev.microCount != i {
			t.Fatalf("fault %d: %d microreboots", i, dev.microCount)
		}
		if r.rs.FailureCount("drv") != i {
			t.Fatalf("fault %d: failures = %d — each microreboot must be charged",
				i, r.rs.FailureCount("drv"))
		}
	}
	if dev.initCount != 1 {
		t.Fatalf("initCount = %d while rebooting in place", dev.initCount)
	}

	// Fourth fault: budget exhausted, RS denies, the original fatal runs
	// and the service respawns at a fresh endpoint.
	poke(r, dev, "drv", 4)
	respawned := r.rs.ServiceEndpoint("drv")
	if respawned == ep || respawned == kernel.None {
		t.Fatalf("endpoint %v after budget exhaustion, want a fresh respawn", respawned)
	}
	if dev.microCount != 3 || dev.initCount != 2 {
		t.Fatalf("micro=%d init=%d after escalation, want 3 and 2", dev.microCount, dev.initCount)
	}
	if r.rs.FailureCount("drv") != 4 {
		t.Fatalf("failures = %d after escalation, want 4", r.rs.FailureCount("drv"))
	}

	// The respawn earned a fresh budget: the next fault microreboots again.
	poke(r, dev, "drv", 5)
	if got := r.rs.ServiceEndpoint("drv"); got != respawned {
		t.Fatalf("endpoint %v after post-respawn fault, want %v in place", got, respawned)
	}
	if dev.microCount != 4 {
		t.Fatalf("microCount = %d, want 4: respawn must reset the budget", dev.microCount)
	}
}

// TestMicrorebootCountsAgainstMaxRestarts is the give-up accounting
// contract: in-place microreboots consume the same MaxRestarts budget as
// respawns, so a service that keeps faulting gives up after the same
// number of recoveries regardless of mechanism.
func TestMicrorebootCountsAgainstMaxRestarts(t *testing.T) {
	r := boot(t)
	dev := &mechDevice{}
	cfg := svcCfg("drv", mechBinary(dev, drvlib.Options{Mechanism: drvlib.MechMicroreboot}))
	cfg.Mechanism = MechMicroreboot
	cfg.MaxRestarts = 2
	r.rs.StartService(cfg)
	r.env.Run(time.Second)

	for i := 1; i <= 3; i++ {
		poke(r, dev, "drv", i)
	}
	if dev.microCount != 2 {
		t.Fatalf("%d microreboots granted with MaxRestarts=2, want 2", dev.microCount)
	}
	info := findService(t, r.rs, "drv")
	if !info.GaveUp {
		t.Fatalf("service did not give up after exhausting MaxRestarts: %+v", info)
	}
	if r.rs.ServiceEndpoint("drv") != kernel.None {
		t.Fatal("abandoned service still has a live endpoint")
	}
	if r.rs.FailureCount("drv") != 3 {
		t.Fatalf("failures = %d at give-up, want 3", r.rs.FailureCount("drv"))
	}
}

// salvageDevice adds the Salvager hooks: SaveState flushes d.payload,
// RestoreState records what the successor adopted (or rejects it).
type salvageDevice struct {
	mechDevice
	payload      []byte
	restoreErr   error
	restoredKind string
	restored     []byte
}

func (d *salvageDevice) SaveState(c *kernel.Ctx) (string, []byte) {
	return "test.state", d.payload
}

func (d *salvageDevice) RestoreState(c *kernel.Ctx, kind string, payload []byte) error {
	if d.restoreErr != nil {
		return d.restoreErr
	}
	d.restoredKind = kind
	d.restored = append([]byte(nil), payload...)
	return nil
}

// TestSalvageAcrossUpdate: a dynamic update SIGTERMs the old instance,
// which flushes its state capsule; the successor validates and adopts it.
func TestSalvageAcrossUpdate(t *testing.T) {
	r := boot(t)
	dev := &salvageDevice{payload: []byte("cfg-v1")}
	cfg := svcCfg("drv", mechBinary(dev, drvlib.Options{Salvage: true}))
	r.rs.StartService(cfg)
	r.env.Run(time.Second)

	r.rs.UpdateService(ServiceConfig{Label: "drv", Version: "v2"})
	r.env.Run(2 * time.Second)
	if dev.initCount != 2 {
		t.Fatalf("initCount = %d after update, want 2", dev.initCount)
	}
	if dev.restoredKind != "test.state" || string(dev.restored) != "cfg-v1" {
		t.Fatalf("successor adopted (%q, %q), want (test.state, cfg-v1)",
			dev.restoredKind, dev.restored)
	}

	// A second update carries the newer state (capsule version v2).
	dev.payload = []byte("cfg-v2")
	r.rs.UpdateService(ServiceConfig{Label: "drv", Version: "v3"})
	r.env.Run(2 * time.Second)
	if string(dev.restored) != "cfg-v2" {
		t.Fatalf("second successor adopted %q, want cfg-v2", dev.restored)
	}
}

// TestSalvageRejectedKeepsColdState: a capsule the device refuses leaves
// the successor on its cold state — and alive.
func TestSalvageRejectedKeepsColdState(t *testing.T) {
	r := boot(t)
	dev := &salvageDevice{payload: []byte("poisoned"), restoreErr: errors.New("bad state")}
	cfg := svcCfg("drv", mechBinary(dev, drvlib.Options{Salvage: true}))
	r.rs.StartService(cfg)
	r.env.Run(time.Second)

	r.rs.UpdateService(ServiceConfig{Label: "drv", Version: "v2"})
	r.env.Run(2 * time.Second)
	if dev.restored != nil {
		t.Fatalf("rejected capsule adopted anyway: %q", dev.restored)
	}
	if r.rs.ServiceEndpoint("drv") == kernel.None {
		t.Fatal("service down after rejecting a capsule")
	}
}
