package core

import (
	"fmt"
	"testing"
	"time"

	"resilientos/internal/ds"
	"resilientos/internal/kernel"
	"resilientos/internal/policy"
	"resilientos/internal/proc"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

// rig is a booted minimal system: kernel + PM + DS + RS.
type rig struct {
	env  *sim.Env
	k    *kernel.Kernel
	rs   *RS
	dsEp kernel.Endpoint
	pmEp kernel.Endpoint
}

func boot(t *testing.T, opts ...Option) *rig {
	t.Helper()
	env := sim.NewEnv(1)
	k := kernel.New(env)
	pmEp, err := proc.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	dsEp, err := ds.Start(k)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Start(k, pmEp, dsEp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, k: k, rs: rs, dsEp: dsEp, pmEp: pmEp}
}

// steadyBody is a well-behaved service: answers heartbeats forever.
func steadyBody(c *kernel.Ctx) {
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		if m.Type == proto.RSPing {
			_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong})
		}
		if m.Type == kernel.MsgNotify && m.Source == kernel.System {
			for _, sig := range c.SigPending() {
				if sig == kernel.SIGTERM {
					c.Exit(0)
				}
			}
		}
	}
}

// crashAfter returns a body that panics (exit status 2) after d.
func crashAfter(d sim.Time) Binary {
	return func(c *kernel.Ctx) {
		c.Sleep(d)
		c.Panic("induced failure")
	}
}

func svcCfg(label string, b Binary) ServiceConfig {
	return ServiceConfig{
		Label:  label,
		Binary: b,
		Priv:   kernel.Privileges{AllowAllIPC: true},
	}
}

func TestServiceStartPublishesEndpoint(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", steadyBody))
	var ep int64
	r.k.Spawn("probe", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		reply, err := c.SendRec(r.dsEp, kernel.Message{Type: proto.DSLookup, Name: "drv"})
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		ep = reply.Arg1
	})
	r.env.Run(2 * time.Second)
	if ep <= 0 {
		t.Fatalf("published endpoint = %d", ep)
	}
	if kernel.Endpoint(ep) != r.rs.ServiceEndpoint("drv") {
		t.Fatal("DS and RS disagree about the endpoint")
	}
}

func TestDefectClass1PanicRestart(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", crashAfter(time.Second)))
	r.env.Run(3 * time.Second)
	events := r.rs.Events()
	if len(events) == 0 {
		t.Fatal("no recovery events")
	}
	if events[0].Defect != DefectExit {
		t.Fatalf("defect = %v, want exit/panic", events[0].Defect)
	}
	if !events[0].Recovered {
		t.Fatal("not recovered")
	}
	if r.rs.ServiceEndpoint("drv") == kernel.None {
		t.Fatal("service not running after recovery")
	}
}

func TestDefectClass2ExceptionRestart(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		c.Trap(kernel.ExcMMU)
	}))
	r.env.Run(3 * time.Second)
	events := r.rs.Events()
	if len(events) == 0 || events[0].Defect != DefectException {
		t.Fatalf("events = %+v, want exception", events)
	}
}

func TestDefectClass3UserKillRestart(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", steadyBody))
	r.env.Schedule(time.Second, func() {
		r.rs.KillService("drv", kernel.SIGKILL)
	})
	r.env.Run(3 * time.Second)
	events := r.rs.Events()
	if len(events) != 1 || events[0].Defect != DefectKilled {
		t.Fatalf("events = %+v, want one killed", events)
	}
	if r.rs.ServiceEndpoint("drv") == kernel.None {
		t.Fatal("not restarted")
	}
}

func TestDefectClass4HeartbeatStuck(t *testing.T) {
	r := boot(t)
	// A service that answers pings for 2 seconds, then wedges.
	cfg := svcCfg("drv", func(c *kernel.Ctx) {
		deadline := c.Now() + 2*time.Second
		for c.Now() < deadline {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.RSPing {
				_ = c.AsyncSend(m.Source, kernel.Message{Type: proto.RSPong})
			}
		}
		for { // stuck: alive but unresponsive
			c.Sleep(time.Hour)
		}
	})
	cfg.HeartbeatPeriod = 500 * time.Millisecond
	cfg.HeartbeatMisses = 3
	r.rs.StartService(cfg)
	r.env.Run(10 * time.Second)
	events := r.rs.Events()
	if len(events) == 0 {
		t.Fatal("stuck driver never detected")
	}
	if events[0].Defect != DefectHeartbeat {
		t.Fatalf("defect = %v, want heartbeat", events[0].Defect)
	}
	// Detection latency: ~N+1 periods after it wedged at t=2s.
	if events[0].Time > 2*time.Second+4*500*time.Millisecond+time.Second {
		t.Fatalf("detected too late: %v", events[0].Time)
	}
	if r.rs.ServiceEndpoint("drv") == kernel.None {
		t.Fatal("not restarted")
	}
}

func TestHealthyServiceNotKilledByHeartbeat(t *testing.T) {
	r := boot(t)
	cfg := svcCfg("drv", steadyBody)
	cfg.HeartbeatPeriod = 200 * time.Millisecond
	r.rs.StartService(cfg)
	r.env.Run(10 * time.Second)
	if len(r.rs.Events()) != 0 {
		t.Fatalf("healthy service produced events: %+v", r.rs.Events())
	}
}

func TestDefectClass5Complaint(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", steadyBody))
	var ackOK, ackDenied int64
	// Authorized complainer (the file server role).
	r.k.Spawn("fs", kernel.Privileges{AllowAllIPC: true, MayComplain: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		reply, err := c.SendRec(r.rs.Endpoint(), kernel.Message{Type: proto.RSComplain, Name: "drv"})
		if err != nil {
			t.Errorf("complain: %v", err)
			return
		}
		ackOK = reply.Arg1
	})
	r.env.Run(3 * time.Second)
	events := r.rs.Events()
	if ackOK != proto.OK {
		t.Fatalf("authorized complaint ack = %d", ackOK)
	}
	if len(events) != 1 || events[0].Defect != DefectComplaint {
		t.Fatalf("events = %+v, want one complaint", events)
	}
	// Unauthorized complainer is rejected.
	r.k.Spawn("rogue", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(r.rs.Endpoint(), kernel.Message{Type: proto.RSComplain, Name: "drv"})
		if err != nil {
			t.Errorf("complain: %v", err)
			return
		}
		ackDenied = reply.Arg1
	})
	r.env.Run(2 * time.Second)
	if ackDenied != proto.ErrPerm {
		t.Fatalf("unauthorized complaint ack = %d, want ErrPerm", ackDenied)
	}
	if len(r.rs.Events()) != 1 {
		t.Fatal("unauthorized complaint triggered recovery")
	}
}

func TestDefectClass6DynamicUpdate(t *testing.T) {
	r := boot(t)
	version := ""
	mkBody := func(v string) Binary {
		return func(c *kernel.Ctx) {
			version = v
			steadyBody(c)
		}
	}
	cfg := svcCfg("drv", mkBody("v1"))
	cfg.Version = "v1"
	r.rs.StartService(cfg)
	r.env.Schedule(time.Second, func() {
		cfg2 := svcCfg("drv", mkBody("v2"))
		cfg2.Version = "v2"
		r.rs.UpdateService(cfg2)
	})
	r.env.Run(5 * time.Second)
	if version != "v2" {
		t.Fatalf("running version = %q, want v2", version)
	}
	events := r.rs.Events()
	if len(events) != 1 || events[0].Defect != DefectUpdate {
		t.Fatalf("events = %+v, want one update", events)
	}
	if r.rs.FailureCount("drv") != 0 {
		t.Fatalf("update bumped failure count to %d", r.rs.FailureCount("drv"))
	}
}

func TestUpdateEscalatesToSIGKILL(t *testing.T) {
	r := boot(t)
	// A service that ignores SIGTERM.
	started := 0
	cfg := svcCfg("drv", func(c *kernel.Ctx) {
		started++
		for {
			if _, err := c.Receive(kernel.Any); err != nil {
				return
			}
			// Ignores all signals and pings.
		}
	})
	r.rs.StartService(cfg)
	r.env.Schedule(time.Second, func() { r.rs.UpdateService(cfg) })
	r.env.Run(5 * time.Second)
	if started != 2 {
		t.Fatalf("instances started = %d, want 2 (SIGKILL escalation)", started)
	}
}

func TestStopServiceNoRecovery(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", steadyBody))
	r.env.Schedule(time.Second, func() { r.rs.StopService("drv") })
	r.env.Run(5 * time.Second)
	if len(r.rs.Events()) != 0 {
		t.Fatalf("administrative stop produced events: %+v", r.rs.Events())
	}
	if r.rs.ServiceEndpoint("drv") != kernel.None {
		t.Fatal("service still running after stop")
	}
}

func TestEndpointChangesAcrossRestart(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", crashAfter(time.Second)))
	r.env.Run(500 * time.Millisecond)
	first := r.rs.ServiceEndpoint("drv")
	r.env.Run(2 * time.Second)
	second := r.rs.ServiceEndpoint("drv")
	if first == kernel.None || second == kernel.None {
		t.Fatal("service missing")
	}
	if first == second {
		t.Fatal("endpoint did not change across restart")
	}
}

func TestPolicyScriptBackoff(t *testing.T) {
	r := boot(t)
	script := policy.MustParse(`
component=$1
reason=$2
repetition=$3
if [ ! $reason -eq 6 ]; then
	sleep $((1 << ($repetition - 1)))
fi
service restart $component
`)
	cfg := svcCfg("drv", crashAfter(100*time.Millisecond))
	cfg.Policy = script
	r.rs.StartService(cfg)
	r.env.Run(20 * time.Second)
	events := r.rs.Events()
	if len(events) < 3 {
		t.Fatalf("only %d recoveries in 20s", len(events))
	}
	// Consecutive recoveries must be spaced by the exponential backoff:
	// crash ~0.1s after start, then sleep 1, 2, 4... seconds.
	for i := 0; i < len(events)-1 && i < 3; i++ {
		gap := events[i+1].Time - events[i].Time
		wantMin := time.Duration(1<<uint(i+1))*time.Second/2 + 100*time.Millisecond
		if gap < wantMin {
			t.Fatalf("gap %d->%d = %v, want >= %v (backoff)", i, i+1, gap, wantMin)
		}
	}
	// Repetition counts increase.
	if events[1].Repetition != events[0].Repetition+1 {
		t.Fatalf("repetitions: %d then %d", events[0].Repetition, events[1].Repetition)
	}
}

func TestPolicyScriptAlert(t *testing.T) {
	r := boot(t)
	script := policy.MustParse(`
component=$1
reason=$2
repetition=$3
shift 3
service restart $component
status=$?
while getopts a: option; do
	case $option in
	a)
		cat << END | mail -s "Failure Alert" "$OPTARG"
failure: $component, $reason, $repetition
restart status: $status
END
		;;
	esac
done
`)
	cfg := svcCfg("drv", crashAfter(time.Second))
	cfg.Policy = script
	cfg.PolicyParams = []string{"-a", "operator@example.org"}
	cfg.MaxRestarts = 1
	r.rs.StartService(cfg)
	r.env.Run(3 * time.Second)
	alerts := r.rs.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alert sent")
	}
	a := alerts[0]
	if a.To != "operator@example.org" || a.Subject != "Failure Alert" {
		t.Fatalf("alert = %+v", a)
	}
	if want := "failure: drv, 1, 1"; !contains(a.Body, want) {
		t.Fatalf("alert body %q missing %q", a.Body, want)
	}
}

func TestPolicyScriptReboot(t *testing.T) {
	r := boot(t)
	rebooted := false
	r.rs.onReboot = func() { rebooted = true; r.env.Stop() }
	script := policy.MustParse(`
repetition=$3
if [ $repetition -ge 3 ]; then
	reboot
	exit 0
fi
service restart $1
`)
	cfg := svcCfg("drv", crashAfter(50*time.Millisecond))
	cfg.Policy = script
	r.rs.StartService(cfg)
	r.env.Run(time.Minute)
	if !rebooted {
		t.Fatal("reboot never requested")
	}
	if !r.rs.Rebooted() {
		t.Fatal("Rebooted() = false")
	}
	if len(r.rs.Events()) != 2 {
		t.Fatalf("events before reboot = %d, want 2", len(r.rs.Events()))
	}
}

func TestMaxRestartsGivesUpAndWithdraws(t *testing.T) {
	r := boot(t)
	cfg := svcCfg("drv", crashAfter(10*time.Millisecond))
	cfg.MaxRestarts = 3
	r.rs.StartService(cfg)
	r.env.Run(10 * time.Second)
	events := r.rs.Events()
	var gaveUp bool
	recoveries := 0
	for _, e := range events {
		if e.GaveUp {
			gaveUp = true
		}
		if e.Recovered {
			recoveries++
		}
	}
	if !gaveUp {
		t.Fatal("never gave up")
	}
	if recoveries != 3 {
		t.Fatalf("recoveries = %d, want 3", recoveries)
	}
	// Name must be withdrawn from DS.
	var found int64 = proto.OK
	r.k.Spawn("probe", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(r.dsEp, kernel.Message{Type: proto.DSLookup, Name: "drv"})
		if err == nil {
			found = reply.Arg2
		}
	})
	r.env.Run(time.Second)
	if found != proto.ErrNotFound {
		t.Fatalf("DS lookup after give-up = %d, want ErrNotFound", found)
	}
}

func TestFailureCountResetsAfterStablePeriod(t *testing.T) {
	r := boot(t)
	// Crashes once, then stays up well past the stable window, then
	// crashes again: the second crash must be repetition 1 again.
	crashes := 0
	cfg := svcCfg("drv", func(c *kernel.Ctx) {
		crashes++
		if crashes <= 1 {
			c.Sleep(time.Second)
			c.Panic("first crash")
		}
		if crashes == 2 {
			c.Sleep(stableResetAfter + 10*time.Second)
			c.Panic("late crash")
		}
		steadyBody(c)
	})
	r.rs.StartService(cfg)
	r.env.Run(2 * stableResetAfter)
	events := r.rs.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[1].Repetition != 1 {
		t.Fatalf("late crash repetition = %d, want 1 (reset)", events[1].Repetition)
	}
}

func TestRecoveryEventDurations(t *testing.T) {
	r := boot(t)
	r.rs.StartService(svcCfg("drv", crashAfter(time.Second)))
	r.env.Run(3 * time.Second)
	events := r.rs.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Direct restart completes within the same virtual instant.
	if events[0].Duration > 10*time.Millisecond {
		t.Fatalf("direct restart took %v", events[0].Duration)
	}
}

func TestManyServicesIndependentRecovery(t *testing.T) {
	r := boot(t)
	for i := 0; i < 5; i++ {
		label := fmt.Sprintf("drv%d", i)
		if i == 2 {
			r.rs.StartService(svcCfg(label, crashAfter(time.Second)))
		} else {
			cfg := svcCfg(label, steadyBody)
			cfg.HeartbeatPeriod = 300 * time.Millisecond
			r.rs.StartService(cfg)
		}
	}
	r.env.Run(5 * time.Second)
	events := r.rs.Events()
	for _, e := range events {
		if e.Label != "drv2" {
			t.Fatalf("unexpected recovery of %s", e.Label)
		}
	}
	if len(events) == 0 {
		t.Fatal("drv2 never recovered")
	}
}

func TestBrokenPolicyScriptFallsBackToRestart(t *testing.T) {
	r := boot(t)
	script := policy.MustParse(`nonexistent_command_xyz`)
	cfg := svcCfg("drv", crashAfter(time.Second))
	cfg.Policy = script
	r.rs.StartService(cfg)
	r.env.Run(5 * time.Second)
	if r.rs.ServiceEndpoint("drv") == kernel.None {
		t.Fatal("service stranded by broken policy script")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestStopServiceEscalatesToSIGKILL(t *testing.T) {
	r := boot(t)
	// A service that ignores SIGTERM entirely.
	r.rs.StartService(svcCfg("stubborn", func(c *kernel.Ctx) {
		for {
			if _, err := c.Receive(kernel.Any); err != nil {
				return
			}
		}
	}))
	r.env.Schedule(time.Second, func() { r.rs.StopService("stubborn") })
	r.env.Run(10 * time.Second)
	if r.rs.ServiceEndpoint("stubborn") != kernel.None {
		t.Fatal("stubborn service survived StopService")
	}
	if len(r.rs.Events()) != 0 {
		t.Fatalf("administrative stop produced recovery events: %+v", r.rs.Events())
	}
}

func TestPolicyScriptCanStopService(t *testing.T) {
	// A policy that gives up after 2 failures by stopping the service —
	// the "at least don't crash-loop" strategy of §5.2.
	r := boot(t)
	script := policy.MustParse(`
if [ $3 -ge 3 ]; then
	service stop $1
	exit 0
fi
service restart $1
`)
	cfg := svcCfg("flaky", crashAfter(50*time.Millisecond))
	cfg.Policy = script
	r.rs.StartService(cfg)
	r.env.Run(30 * time.Second)
	if r.rs.ServiceEndpoint("flaky") != kernel.None {
		t.Fatal("service still running; script's stop was ignored")
	}
	recoveries := 0
	for _, e := range r.rs.Events() {
		if e.Recovered {
			recoveries++
		}
	}
	if recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 before the scripted stop", recoveries)
	}
}

func TestHeartbeatNotSentWhenDisabled(t *testing.T) {
	r := boot(t)
	pings := 0
	cfg := svcCfg("quiet", func(c *kernel.Ctx) {
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.RSPing {
				pings++
			}
		}
	})
	// HeartbeatPeriod zero: no monitoring.
	r.rs.StartService(cfg)
	r.env.Run(10 * time.Second)
	if pings != 0 {
		t.Fatalf("pings = %d for a service without heartbeats", pings)
	}
}
