package proto

import "testing"

// The protocol ranges are the system's wire contract: collisions between
// subsystem message types would misroute requests.
func TestMessageTypeUniqueness(t *testing.T) {
	types := map[int32]string{}
	add := func(name string, v int32) {
		if prev, dup := types[v]; dup {
			t.Errorf("message type collision: %s and %s are both %d", prev, name, v)
		}
		types[v] = name
	}
	add("PMExitEvent", PMExitEvent)
	add("PMKill", PMKill)
	add("PMSubscribe", PMSubscribe)
	add("PMAck", PMAck)
	add("DSPublish", DSPublish)
	add("DSWithdraw", DSWithdraw)
	add("DSLookup", DSLookup)
	add("DSSubscribe", DSSubscribe)
	add("DSUpdate", DSUpdate)
	add("DSStore", DSStore)
	add("DSRetrieve", DSRetrieve)
	add("DSAck", DSAck)
	add("RSPing", RSPing)
	add("RSPong", RSPong)
	add("RSRestart", RSRestart)
	add("RSStop", RSStop)
	add("RSUpdate", RSUpdate)
	add("RSComplain", RSComplain)
	add("RSReboot", RSReboot)
	add("RSAck", RSAck)
	add("EthConf", EthConf)
	add("EthSend", EthSend)
	add("EthRecv", EthRecv)
	add("EthAck", EthAck)
	add("BdevOpen", BdevOpen)
	add("BdevRead", BdevRead)
	add("BdevWrite", BdevWrite)
	add("BdevReply", BdevReply)
	add("ChrOpen", ChrOpen)
	add("ChrWrite", ChrWrite)
	add("ChrRead", ChrRead)
	add("ChrIoctl", ChrIoctl)
	add("ChrReply", ChrReply)
	add("TCPConnect", TCPConnect)
	add("TCPListen", TCPListen)
	add("TCPAccept", TCPAccept)
	add("TCPSend", TCPSend)
	add("TCPRecv", TCPRecv)
	add("TCPClose", TCPClose)
	add("UDPSend", UDPSend)
	add("UDPRecv", UDPRecv)
	add("SockReply", SockReply)
	add("FSOpen", FSOpen)
	add("FSRead", FSRead)
	add("FSWrite", FSWrite)
	add("FSClose", FSClose)
	add("FSCreate", FSCreate)
	add("FSUnlink", FSUnlink)
	add("FSStat", FSStat)
	add("FSSync", FSSync)
	add("FSMkdir", FSMkdir)
	add("FSReaddir", FSReaddir)
	add("FSIoctl", FSIoctl)
	add("FSReply", FSReply)
	if len(types) < 50 {
		t.Fatalf("only %d distinct types", len(types))
	}
}

func TestErrorCodesNegative(t *testing.T) {
	for name, v := range map[string]int64{
		"ErrNotFound": ErrNotFound, "ErrPerm": ErrPerm, "ErrIO": ErrIO,
		"ErrBadCall": ErrBadCall, "ErrAgain": ErrAgain, "ErrClosed": ErrClosed,
		"ErrExist": ErrExist, "ErrNoSpace": ErrNoSpace,
	} {
		if v >= 0 {
			t.Errorf("%s = %d, must be negative", name, v)
		}
	}
	if OK != 0 {
		t.Errorf("OK = %d", OK)
	}
}
