// Package proto defines the message protocol numbers and encodings shared
// by the servers and drivers of the simulated OS — the analogue of MINIX's
// <minix/com.h>. Each subsystem owns a hundreds-range of message types.
package proto

// Process manager (PM) protocol.
const (
	// PMExitEvent: PM -> RS (async). A system process died.
	// Name = label, Arg1 = endpoint, Arg2 = CauseKind, Arg3 = status or
	// signal number, Arg4 = exception type.
	PMExitEvent int32 = 100 + iota
	// PMKill: request PM to deliver a signal. Name = label, Arg1 = signal.
	PMKill
	// PMSubscribe: RS registers for exit events. Reply: PMAck.
	PMSubscribe
	// PMAck: generic PM reply. Arg1 = 0 on success, else error code.
	PMAck
)

// Data store (DS) protocol.
const (
	// DSPublish: publish Name -> endpoint (Arg1). Authorized publishers
	// only (the reincarnation server). Reply: DSAck.
	DSPublish int32 = 200 + iota
	// DSWithdraw: remove Name from the naming table. Reply: DSAck.
	DSWithdraw
	// DSLookup: resolve Name. Reply: DSAck with Arg1 = endpoint (or
	// ErrNotFound in Arg2).
	DSLookup
	// DSSubscribe: Name = glob pattern ("eth.*"); current matches are
	// replayed as DSUpdate messages. Reply: DSAck.
	DSSubscribe
	// DSUpdate: DS -> subscriber (async). Name = published name,
	// Arg1 = new endpoint (InvalidEndpoint when withdrawn).
	DSUpdate
	// DSStore: back up private state. Name = key, Payload = bytes. The
	// record is bound to the caller's stable label. Reply: DSAck.
	DSStore
	// DSRetrieve: fetch private state by key. Reply: DSAck with Payload.
	// Only the owning label may retrieve (authentication by stable name,
	// paper §5.3).
	DSRetrieve
	// DSAck: generic DS reply. Arg2 = 0 on success, else error code.
	DSAck
	// DSFailover: atomically republish Name -> endpoint (Arg1) during a
	// standby promotion. Authorized publishers only; refused (ErrExist)
	// when the currently published endpoint is still a live process —
	// a name never has two live owners. Reply: DSAck.
	DSFailover
)

// Reincarnation server (RS) protocol.
const (
	// RSPing: RS -> driver heartbeat request (async).
	RSPing int32 = 300 + iota
	// RSPong: driver -> RS heartbeat reply (async).
	RSPong
	// RSRestart: request a restart of service Name (used by policy
	// scripts' `service restart`). Reply: RSAck.
	RSRestart
	// RSStop: stop service Name (SIGTERM then SIGKILL). Reply: RSAck.
	RSStop
	// RSUpdate: dynamic update of service Name (defect class 6).
	// Reply: RSAck.
	RSUpdate
	// RSComplain: an authorized server reports a malfunctioning component
	// (defect class 5). Name = accused label. Reply: RSAck.
	RSComplain
	// RSReboot: policy script requested a whole-system reboot.
	RSReboot
	// RSAck: generic RS reply. Arg1 = 0 on success, else error code.
	RSAck
	// RSPromote: RS -> standby replica (async): take over service Name.
	// The replica attaches to the device and starts serving.
	RSPromote
	// RSMicroAsk: driver -> RS: my ucode VM faulted (defect class Arg1);
	// may I microreboot it in place? Reply: RSAck with Arg1 = OK to
	// proceed, else the driver must fall back to dying (full respawn).
	RSMicroAsk
	// RSMicroDone: driver -> RS (async): the in-place microreboot
	// completed and the driver is serving again.
	RSMicroDone
)

// Ethernet driver protocol (network server <-> driver).
const (
	// EthConf: configure the driver (promiscuous mode etc.), Arg1 = flags.
	// Reply: EthAck.
	EthConf int32 = 400 + iota
	// EthSend: transmit Payload as one frame. Reply: EthAck (accepted).
	EthSend
	// EthRecv: driver -> network server (async): a frame arrived
	// (Payload).
	EthRecv
	// EthAck: driver reply. Arg1 = 0 on success, else error code.
	EthAck
)

// EthConfPromisc enables promiscuous mode in EthConf's Arg1 flags.
const EthConfPromisc int64 = 1

// Block device driver protocol (file server <-> driver).
const (
	// BdevOpen: open minor device Arg1. Reply: BdevReply.
	BdevOpen int32 = 500 + iota
	// BdevRead: read Arg2 sectors at LBA Arg1 into the caller's Grant.
	// Reply: BdevReply with Arg1 = bytes read.
	BdevRead
	// BdevWrite: write Arg2 sectors at LBA Arg1 from the caller's Grant.
	// Reply: BdevReply with Arg1 = bytes written.
	BdevWrite
	// BdevReply: driver reply. Arg1 = result (>= 0 bytes, < 0 error).
	BdevReply
)

// Character device driver protocol (VFS/app <-> driver).
const (
	// ChrOpen: open the device. Reply: ChrReply.
	ChrOpen int32 = 600 + iota
	// ChrWrite: write Payload to the output stream. Reply: ChrReply with
	// Arg1 = bytes accepted.
	ChrWrite
	// ChrRead: read up to Arg1 bytes. Reply: ChrReply with Payload.
	ChrRead
	// ChrIoctl: device-specific control. Arg1 = op, Arg2 = arg.
	// Reply: ChrReply.
	ChrIoctl
	// ChrReply: driver reply. Arg1 = result (>= 0 count, < 0 error).
	ChrReply
)

// Character device ioctl operations.
const (
	// ChrIoctlPrinterSubmit submits Payload as one print line (ChrWrite is
	// equivalent; kept for protocol symmetry).
	ChrIoctlPrinterSubmit int64 = 1 + iota
	// ChrIoctlBurnBegin starts a CD burn of Arg2 total bytes.
	ChrIoctlBurnBegin
	// ChrIoctlBurnFinish finalizes a burn; reply Arg1 = 1 if disc is good.
	ChrIoctlBurnFinish
)

// Network server (INET) socket protocol (applications <-> inet).
const (
	// TCPConnect: open a TCP connection to remote port Arg1.
	// Reply: SockReply with Arg1 = socket id.
	TCPConnect int32 = 700 + iota
	// TCPListen: listen on local port Arg1. Reply: SockReply = socket id.
	TCPListen
	// TCPAccept: accept on listening socket Arg1 (blocks).
	// Reply: SockReply = connected socket id.
	TCPAccept
	// TCPSend: send Payload on socket Arg1. Reply: SockReply = bytes
	// queued.
	TCPSend
	// TCPRecv: receive up to Arg2 bytes from socket Arg1 (blocks).
	// Reply: SockReply with Payload; Arg1 = 0 on orderly close.
	TCPRecv
	// TCPClose: close socket Arg1. Reply: SockReply.
	TCPClose
	// UDPSend: send Payload as a datagram to port Arg1.
	// Reply: SockReply.
	UDPSend
	// UDPRecv: receive one datagram on local port Arg1 (blocks).
	// Reply: SockReply with Payload.
	UDPRecv
	// SockReply: INET reply. Arg1 = result (>= 0 ok, < 0 error code).
	SockReply
)

// File system protocol (applications <-> VFS, VFS <-> MFS).
const (
	// FSOpen: open path Name with flags Arg1. Reply: FSReply = fd.
	FSOpen int32 = 800 + iota
	// FSRead: read Arg2 bytes at offset Arg3 from fd Arg1.
	// Reply: FSReply with Payload.
	FSRead
	// FSWrite: write Payload at offset Arg3 to fd Arg1.
	// Reply: FSReply = bytes written.
	FSWrite
	// FSClose: close fd Arg1. Reply: FSReply.
	FSClose
	// FSCreate: create file Name. Reply: FSReply = fd.
	FSCreate
	// FSUnlink: remove file Name. Reply: FSReply.
	FSUnlink
	// FSStat: stat path Name. Reply: FSReply with Arg1 = size.
	FSStat
	// FSSync: flush caches. Reply: FSReply.
	FSSync
	// FSMkdir: create directory Name. Reply: FSReply.
	FSMkdir
	// FSReaddir: list directory Name, entries separated by '\n' in the
	// reply Payload, starting at entry index Arg3. Reply: FSReply.
	FSReaddir
	// FSIoctl: device-specific control on fd Arg1 (VFS routes to the
	// character driver). Arg2 = op, Arg3 = arg. Reply: FSReply.
	FSIoctl
	// FSReply: reply. Arg1 = result (>= 0 ok, < 0 error code).
	FSReply
)

// Open flags for FSOpen.
const (
	FSFlagRead  int64 = 1 << iota // open for reading
	FSFlagWrite                   // open for writing
)

// Result codes carried in reply Arg fields (negative = error).
const (
	OK int64 = 0
	// ErrNotFound: no such name/file/socket.
	ErrNotFound int64 = -1
	// ErrPerm: caller not authorized.
	ErrPerm int64 = -2
	// ErrIO: device I/O failed (driver dead; retried transparently where
	// idempotent, pushed up otherwise).
	ErrIO int64 = -3
	// ErrBadCall: malformed request.
	ErrBadCall int64 = -4
	// ErrAgain: transient failure; retry later.
	ErrAgain int64 = -5
	// ErrClosed: socket/fd closed.
	ErrClosed int64 = -6
	// ErrExist: file already exists.
	ErrExist int64 = -7
	// ErrNoSpace: file system full.
	ErrNoSpace int64 = -8
)

// InvalidEndpoint is the Arg1 value in DSUpdate when a name is withdrawn.
const InvalidEndpoint int64 = -1

// CauseKind values carried in PMExitEvent.Arg2 (mirror kernel.CauseKind
// without importing it; proto stays dependency-free).
const (
	CauseExit      int64 = 1
	CauseSignal    int64 = 2
	CauseException int64 = 3
)
