// Package compare is the bench-regression gate: it accumulates the
// machine-readable perf baselines (BENCH_throughput.json,
// BENCH_campaign.json, BENCH_fig7/8.json, BENCH_fleet.json,
// BENCH_recovery.json, BENCH_simspeed.json) into an append-only
// BENCH_history.jsonl trajectory, and diffs the newest entry against the
// previous one with per-metric, direction-aware thresholds — by default
// warn past 5% and fail past 10% movement in the bad direction (e.g. a
// throughput drop, or recovery-latency p95 growth). CI runs the diff as
// a gate via cmd/benchgate, so a commit that quietly costs 10% of Fig. 7
// throughput fails its build instead of landing.
//
// Metrics carry a gating class. Most are Gated: direction-aware
// percent thresholds as above. Exact metrics are deterministic counts
// (the simspeed scenarios' scheduler-event and region-entry counts) —
// ANY drift fails, because the same code at the same seed must execute
// the same events; a drift there is a behavior change smuggled in as a
// perf delta. Noisy metrics are wall-clock measurements (events/sec,
// ns/event) taken on whatever machine ran the bench — they gate
// warn-only, never failing a build on shared-runner jitter.
package compare

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"resilientos/internal/bench"
)

// Entry is one line of BENCH_history.jsonl: every baseline document a
// commit produced, plus an optional label (commit SHA, tag).
type Entry struct {
	Label      string            `json:"label,omitempty"`
	Throughput *bench.Throughput `json:"throughput,omitempty"`
	Campaign   *bench.Campaign   `json:"campaign,omitempty"`
	Figures    []bench.Figure    `json:"figures,omitempty"`
	Fleet      *bench.Fleet      `json:"fleet,omitempty"`
	Decisions  *bench.Decisions  `json:"decisions,omitempty"`
	Recovery   *bench.Recovery   `json:"recovery,omitempty"`
	Simspeed   *bench.Simspeed   `json:"simspeed,omitempty"`
}

// Empty reports whether the entry carries no documents at all.
func (e Entry) Empty() bool {
	return e.Throughput == nil && e.Campaign == nil && len(e.Figures) == 0 &&
		e.Fleet == nil && e.Decisions == nil && e.Recovery == nil &&
		e.Simspeed == nil
}

// LoadEntry gathers the baseline documents found in dir
// (BENCH_throughput.json, BENCH_campaign.json, BENCH_fig*.json; missing
// files are skipped, malformed ones are errors).
func LoadEntry(dir, label string) (Entry, error) {
	e := Entry{Label: label}
	load := func(path string, v any) (bool, error) {
		b, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		if err := json.Unmarshal(b, v); err != nil {
			return false, fmt.Errorf("%s: %w", path, err)
		}
		return true, nil
	}
	var tp bench.Throughput
	if ok, err := load(filepath.Join(dir, "BENCH_throughput.json"), &tp); err != nil {
		return e, err
	} else if ok {
		e.Throughput = &tp
	}
	var cp bench.Campaign
	if ok, err := load(filepath.Join(dir, "BENCH_campaign.json"), &cp); err != nil {
		return e, err
	} else if ok {
		e.Campaign = &cp
	}
	var fl bench.Fleet
	if ok, err := load(filepath.Join(dir, "BENCH_fleet.json"), &fl); err != nil {
		return e, err
	} else if ok {
		e.Fleet = &fl
	}
	var dc bench.Decisions
	if ok, err := load(filepath.Join(dir, "BENCH_decisions.json"), &dc); err != nil {
		return e, err
	} else if ok {
		e.Decisions = &dc
	}
	var rv bench.Recovery
	if ok, err := load(filepath.Join(dir, "BENCH_recovery.json"), &rv); err != nil {
		return e, err
	} else if ok {
		e.Recovery = &rv
	}
	var ss bench.Simspeed
	if ok, err := load(filepath.Join(dir, "BENCH_simspeed.json"), &ss); err != nil {
		return e, err
	} else if ok {
		e.Simspeed = &ss
	}
	figs, err := filepath.Glob(filepath.Join(dir, "BENCH_fig*.json"))
	if err != nil {
		return e, err
	}
	sort.Strings(figs)
	for _, path := range figs {
		var f bench.Figure
		if ok, err := load(path, &f); err != nil {
			return e, err
		} else if ok {
			e.Figures = append(e.Figures, f)
		}
	}
	return e, nil
}

// ReadHistory parses a BENCH_history.jsonl stream (blank lines skipped).
func ReadHistory(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("history line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// ReadHistoryFile reads path, returning an empty history when the file
// does not exist yet.
func ReadHistoryFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadHistory(f)
}

// AppendHistory appends e as one JSON line to path (created if absent).
func AppendHistory(path string, e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Severity of one finding.
type Severity int

// Severities, in ascending order of badness.
const (
	OK Severity = iota
	Warn
	Fail
)

func (s Severity) String() string {
	switch s {
	case Warn:
		return "WARN"
	case Fail:
		return "FAIL"
	}
	return "ok"
}

// Thresholds are the percent movements (in the bad direction) past which
// a metric warns or fails.
type Thresholds struct {
	WarnPct float64
	FailPct float64
}

// DefaultThresholds: warn past 5%, fail past 10%.
var DefaultThresholds = Thresholds{WarnPct: 5, FailPct: 10}

// Class is a metric's gating rule.
type Class int

const (
	// Gated metrics use the direction-aware percent thresholds.
	Gated Class = iota
	// Exact metrics are deterministic counts: any drift at all is a
	// Fail, regardless of direction or thresholds. Used for the
	// simspeed scenarios' scheduler-event and region-entry counts,
	// where a change means the code's behavior changed, not its speed.
	Exact
	// Noisy metrics are wall-clock measurements whose variance is
	// dominated by the machine that ran them; their severity is capped
	// at Warn so runner jitter never fails a build.
	Noisy
)

func (c Class) String() string {
	switch c {
	case Exact:
		return "exact"
	case Noisy:
		return "noisy"
	}
	return "gated"
}

// Finding is one metric's movement between two history entries.
// DeltaPct is signed with the metric's natural direction (positive =
// increased); RegressionPct is the movement in the bad direction
// (positive = worse, 0 when the metric improved or held — except for
// Exact metrics, where any movement is bad and RegressionPct is the
// absolute drift).
type Finding struct {
	Metric        string
	Old, New      float64
	HigherBetter  bool
	Class         Class
	DeltaPct      float64
	RegressionPct float64
	Severity      Severity
}

// Report is the diff of two history entries.
type Report struct {
	OldLabel, NewLabel string
	Findings           []Finding
	// Missing lists metrics present in the old entry but absent from the
	// new one — a silently dropped benchmark is reported, not ignored.
	Missing []string
}

// Worst returns the report's worst severity.
func (r Report) Worst() Severity {
	w := OK
	for _, f := range r.Findings {
		if f.Severity > w {
			w = f.Severity
		}
	}
	if len(r.Missing) > 0 && w < Warn {
		w = Warn
	}
	return w
}

// metric is one comparable scalar extracted from an entry.
type metric struct {
	name         string
	value        float64
	higherBetter bool
	class        Class
}

// metrics flattens an entry into its gated scalar metrics.
func metrics(e Entry) []metric {
	var out []metric
	add := func(name string, v float64, higher bool) {
		out = append(out, metric{name: name, value: v, higherBetter: higher})
	}
	addC := func(name string, v float64, higher bool, c Class) {
		out = append(out, metric{name: name, value: v, higherBetter: higher, class: c})
	}
	if t := e.Throughput; t != nil {
		for _, p := range t.Points {
			key := fmt.Sprintf("throughput/%s/interval_%gs", t.Experiment, p.KillIntervalS)
			add(key+"/mbps", p.MBps, true)
			if p.Recovery.Count > 0 {
				add(key+"/recovery_p95_ms", p.Recovery.P95Ms, false)
			}
		}
	}
	if c := e.Campaign; c != nil {
		add("campaign/recovery_rate_pct", c.RecoveryRatePct, true)
		add("campaign/invariant_violations", float64(c.InvariantViolations), false)
	}
	if fl := e.Fleet; fl != nil {
		add("fleet/availability_pct", fl.AvailabilityPct, true)
		add("fleet/recovered_pct", fl.RecoveredPct, true)
		if fl.Latency.Count > 0 {
			add("fleet/request_p50_ms", fl.Latency.P50Ms, false)
			add("fleet/request_p99_ms", fl.Latency.P99Ms, false)
		}
		add("fleet/max_recovery_overlap", float64(fl.MaxRecoveryOverlap), false)
		for _, cl := range fl.Classes {
			key := "fleet/class/" + cl.Class
			if cl.Latency.Count > 0 {
				add(key+"/request_p50_ms", cl.Latency.P50Ms, false)
				add(key+"/request_p95_ms", cl.Latency.P95Ms, false)
				add(key+"/request_p99_ms", cl.Latency.P99Ms, false)
			}
			if cl.SLO != nil {
				add(key+"/slo_attained_pct", cl.SLO.AttainedPct, true)
				add(key+"/slo_window_pct", cl.SLO.WindowPct, true)
			}
		}
	}
	if d := e.Decisions; d != nil {
		// Only the baseline variant is gated; overrides are
		// counterfactuals and may move by design.
		add("decisions/baseline/availability_pct", d.Baseline.AvailabilityPct, true)
		add("decisions/baseline/give_ups", float64(d.Baseline.GaveUp), false)
		if d.Baseline.Recovery.Count > 0 {
			add("decisions/baseline/recovery_p95_ms", d.Baseline.Recovery.P95Ms, false)
		}
	}
	if rv := e.Recovery; rv != nil {
		for _, m := range rv.Mechanisms {
			key := "recovery/" + m.Mechanism
			add(key+"/mean_dip_depth_pct", m.MeanDipDepth, false)
			add(key+"/mean_dip_width_ms", m.MeanDipWidthMs, false)
			add(key+"/recovered_pct", m.RecoveredPct, true)
		}
		// The headline claims: what the mechanisms buy over respawn.
		add("recovery/standby_depth_gain_pct", rv.StandbyDepthGainPct, true)
		add("recovery/micro_width_gain_ms", rv.MicroWidthGainMs, true)
	}
	if ss := e.Simspeed; ss != nil {
		for _, sc := range ss.Scenarios {
			key := "simspeed/" + sc.Name
			// Deterministic skeleton: hard-gated. Direction is moot for
			// Exact metrics (any drift fails) but recorded as
			// higher=better for display consistency.
			addC(key+"/events", float64(sc.Events), true, Exact)
			addC(key+"/bare_events", float64(sc.BareEvents), true, Exact)
			addC(key+"/obs_events", float64(sc.ObsEvents), true, Exact)
			for _, rr := range sc.Regions {
				addC(key+"/region/"+rr.Region+"/count",
					float64(rr.Count), true, Exact)
			}
			// Wall-clock speed: warn-only.
			addC(key+"/events_per_sec", sc.EventsPerSec, true, Noisy)
			addC(key+"/ns_per_event", sc.NsPerEvent, false, Noisy)
			addC(key+"/allocs_per_event", sc.AllocsPerEvent, false, Noisy)
			addC(key+"/overhead_pct", sc.OverheadPct, false, Noisy)
		}
	}
	for _, f := range e.Figures {
		key := "figure/" + f.Name
		add(key+"/baseline_mbps", f.BaselineMBps, true)
		add(key+"/mean_mbps", f.MeanMBps, true)
		add(key+"/recovered_pct", f.RecoveredPct, true)
		if f.Dips > 0 {
			add(key+"/mean_dip_width_ms", f.MeanDipWidthMs, false)
		}
		if f.Recovery.Count > 0 {
			add(key+"/recovery_p95_ms", f.Recovery.P95Ms, false)
		}
	}
	return out
}

// Diff compares the newest entry against the previous one. Metrics only
// present on one side are not scored (but old-side-only ones are listed
// as Missing); a zero old value with a worse nonzero new value fails
// outright (the percent rule cannot grade growth from zero). Exact
// metrics fail on any drift; Noisy metrics never exceed Warn.
func Diff(old, new Entry, th Thresholds) Report {
	if th.WarnPct == 0 && th.FailPct == 0 {
		th = DefaultThresholds
	}
	r := Report{OldLabel: old.Label, NewLabel: new.Label}
	oldM := make(map[string]metric)
	for _, m := range metrics(old) {
		oldM[m.name] = m
	}
	for _, m := range metrics(new) {
		o, ok := oldM[m.name]
		if !ok {
			continue // new benchmark: becomes the baseline next round
		}
		delete(oldM, m.name)
		f := Finding{
			Metric: m.name, Old: o.value, New: m.value,
			HigherBetter: m.higherBetter, Class: m.class,
		}
		switch {
		case o.value == m.value:
			// unchanged
		case m.class == Exact:
			// Deterministic count drifted: fail outright, whatever the
			// direction or magnitude — the code's behavior changed.
			if o.value != 0 {
				f.DeltaPct = 100 * (m.value - o.value) / o.value
			}
			f.RegressionPct = f.DeltaPct
			if f.RegressionPct < 0 {
				f.RegressionPct = -f.RegressionPct
			}
			if f.RegressionPct == 0 {
				f.RegressionPct = 100 // drift from zero
			}
			f.Severity = Fail
		case o.value == 0:
			// Growth from zero: gradable only by direction.
			if !m.higherBetter && m.value > 0 {
				f.RegressionPct = 100
				f.Severity = Fail
			}
		default:
			f.DeltaPct = 100 * (m.value - o.value) / o.value
			if m.higherBetter {
				f.RegressionPct = -f.DeltaPct
			} else {
				f.RegressionPct = f.DeltaPct
			}
			if f.RegressionPct < 0 {
				f.RegressionPct = 0 // improvement
			}
			switch {
			case f.RegressionPct > th.FailPct:
				f.Severity = Fail
			case f.RegressionPct > th.WarnPct:
				f.Severity = Warn
			}
		}
		if m.class == Noisy && f.Severity > Warn {
			f.Severity = Warn // machine noise never fails a build
		}
		r.Findings = append(r.Findings, f)
	}
	for name := range oldM {
		r.Missing = append(r.Missing, name)
	}
	sort.Strings(r.Missing)
	sort.Slice(r.Findings, func(i, j int) bool {
		if r.Findings[i].Severity != r.Findings[j].Severity {
			return r.Findings[i].Severity > r.Findings[j].Severity
		}
		return r.Findings[i].Metric < r.Findings[j].Metric
	})
	return r
}

// WriteText renders the report for CI logs: failures first, then warns,
// then the unchanged/improved remainder, then dropped metrics.
func (r Report) WriteText(w io.Writer) {
	label := func(s string) string {
		if s == "" {
			return "(unlabeled)"
		}
		return s
	}
	fmt.Fprintf(w, "bench trajectory: %s -> %s\n", label(r.OldLabel), label(r.NewLabel))
	for _, f := range r.Findings {
		dir := "higher=better"
		if !f.HigherBetter {
			dir = "lower=better"
		}
		switch f.Class {
		case Exact:
			dir = "exact: any drift fails"
		case Noisy:
			dir += ", noisy: warn-only"
		}
		fmt.Fprintf(w, "  %-4s %-48s %12.3f -> %-12.3f %+6.1f%% (%s)\n",
			f.Severity, f.Metric, f.Old, f.New, f.DeltaPct, dir)
	}
	for _, m := range r.Missing {
		fmt.Fprintf(w, "  WARN %-48s dropped from newest entry\n", m)
	}
	fmt.Fprintf(w, "worst: %s\n", r.Worst())
}
