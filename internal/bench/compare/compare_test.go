package compare

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilientos/internal/bench"
)

// baseEntry builds a representative history entry with every document
// kind the gate trends.
func baseEntry(label string) Entry {
	return Entry{
		Label: label,
		Throughput: &bench.Throughput{
			Schema: bench.SchemaThroughput, Experiment: "fig7", Seed: 11,
			Points: []bench.ThroughputPoint{
				{KillIntervalS: 0, MBps: 10.8, OK: true},
				{KillIntervalS: 2, MBps: 9.5, OK: true,
					Recovery: bench.LatencyMs{Count: 3, P95Ms: 120}},
			},
		},
		Campaign: &bench.Campaign{
			Schema: bench.SchemaCampaign, RecoveryRatePct: 99.9,
		},
		Figures: []bench.Figure{{
			Schema: bench.SchemaFigure, Name: "fig7", Seed: 11, OK: true,
			BaselineMBps: 11.3, MeanMBps: 10.2, RecoveredPct: 100,
			Dips: 3, MeanDipWidthMs: 1000,
			Recovery: bench.LatencyMs{Count: 3, P95Ms: 120},
		}},
		Fleet: &bench.Fleet{
			Schema: bench.SchemaFleet, Nodes: 4, Seed: 11,
			Policy: "failure-aware", Storm: "correlated:eth.rtl8139,k=2,every=1s,mode=kill",
			Workload:        "mixed-seed11",
			AvailabilityPct: 95, NodeAvailabilityPct: 100, RecoveredPct: 100,
			Latency:            bench.LatencyMs{Count: 500, P50Ms: 4.5, P99Ms: 60},
			MaxRecoveryOverlap: 2,
			Classes: []bench.FleetClass{{
				Class: "net", AvailabilityPct: 96, Requests: 360,
				Latency: bench.LatencyMs{Count: 360, P50Ms: 4.2, P95Ms: 7.3, P99Ms: 9.7},
				SLO:     &bench.FleetSLO{BudgetMs: 25, AttainedPct: 99.4, WindowPct: 95},
			}, {
				Class: "disk", AvailabilityPct: 100, Requests: 175,
				Latency: bench.LatencyMs{Count: 175, P50Ms: 6.8, P95Ms: 12.4, P99Ms: 17.8},
				SLO:     &bench.FleetSLO{BudgetMs: 40, AttainedPct: 100, WindowPct: 100},
			}},
		},
		Simspeed: &bench.Simspeed{
			Schema: bench.SchemaSimspeed, Seed: 1, WallClockS: 2.5,
			Scenarios: []bench.SimspeedScenario{{
				Name: "fig7", Events: 110240, BareEvents: 66000,
				VirtualMs: 6400, ObsEvents: 58215,
				WallMs: 620, EventsPerSec: 177000, NsPerEvent: 5600,
				AllocsPerEvent: 8.2, VirtualPerWall: 10.2,
				BareWallMs: 170, BareEventsPerSec: 380000, OverheadPct: 115,
				Regions: []bench.SimspeedRegion{
					{Region: "step", Count: 110240, Samples: 1722,
						TotalNs: 314959000, SelfNs: 243862000,
						NsPerEntry: 2212, AllocsPerEntry: 5.6},
					{Region: "kernel.ipc", Count: 127495, Samples: 1992,
						TotalNs: 25281000, SelfNs: 25281000, NsPerEntry: 198},
				},
			}},
		},
		Decisions: &bench.Decisions{
			Schema: bench.SchemaDecisions,
			Spec:   "seeds=11 victims=eth.rtl8139 faults=bit-flip per-cell=10",
			Baseline: bench.DecisionVariant{
				Name: "baseline", Crashes: 9, Recovered: 9,
				AvailabilityPct: 99.2, Events: 120,
				Recovery: bench.LatencyMs{Count: 9, P95Ms: 95},
			},
			Overrides: []bench.DecisionVariant{{
				Name: "budget=1", Crashes: 9, Recovered: 2, GaveUp: 1,
				AvailabilityPct: 42.5, Events: 60,
			}},
		},
	}
}

func TestDiffUnchangedPasses(t *testing.T) {
	r := Diff(baseEntry("a"), baseEntry("b"), DefaultThresholds)
	if got := r.Worst(); got != OK {
		var buf bytes.Buffer
		r.WriteText(&buf)
		t.Fatalf("identical entries graded %v:\n%s", got, buf.String())
	}
	if len(r.Findings) == 0 {
		t.Fatal("no metrics compared")
	}
	if len(r.Missing) != 0 {
		t.Fatalf("missing metrics on identical entries: %v", r.Missing)
	}
}

// The acceptance case: a synthetic 10%+ throughput regression must fail
// the gate; the same movement in recovery-latency p95 must too.
func TestDiffTenPercentRegressionFails(t *testing.T) {
	old, cur := baseEntry("good"), baseEntry("bad")
	cur.Throughput.Points[1].MBps = old.Throughput.Points[1].MBps * 0.89 // -11%
	r := Diff(old, cur, DefaultThresholds)
	if got := r.Worst(); got != Fail {
		t.Fatalf("11%% throughput drop graded %v, want FAIL", got)
	}
	found := false
	for _, f := range r.Findings {
		if f.Metric == "throughput/fig7/interval_2s/mbps" {
			found = true
			if f.Severity != Fail || f.RegressionPct < 10 {
				t.Errorf("finding = %+v, want Fail with regression >= 10%%", f)
			}
		}
	}
	if !found {
		t.Fatal("throughput metric not in report")
	}

	old, cur = baseEntry("good"), baseEntry("slow")
	cur.Figures[0].Recovery.P95Ms = old.Figures[0].Recovery.P95Ms * 1.15 // +15%
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != Fail {
		t.Fatalf("15%% recovery-p95 growth graded %v, want FAIL", got)
	}
}

// The fleet acceptance case: a synthetic ~10% fleet-availability drop
// must fail the gate (availability is higher-better), and a 10%+ p99
// request-latency growth must too (lower-better).
func TestDiffFleetRegressionFails(t *testing.T) {
	old, cur := baseEntry("good"), baseEntry("outage")
	cur.Fleet.AvailabilityPct = old.Fleet.AvailabilityPct * 0.89 // -11%
	r := Diff(old, cur, DefaultThresholds)
	found := false
	for _, f := range r.Findings {
		if f.Metric == "fleet/availability_pct" {
			found = true
			if f.Severity != Fail || !f.HigherBetter {
				t.Errorf("finding = %+v, want higher-better Fail", f)
			}
		}
	}
	if !found {
		t.Fatal("fleet/availability_pct not in report")
	}
	if got := r.Worst(); got != Fail {
		t.Fatalf("11%% availability drop graded %v, want FAIL", got)
	}

	old, cur = baseEntry("good"), baseEntry("slow")
	cur.Fleet.Latency.P99Ms = old.Fleet.Latency.P99Ms * 1.12 // +12%
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != Fail {
		t.Fatalf("12%% fleet p99 growth graded %v, want FAIL", got)
	}
	// Latency FALLING is an improvement, never a regression.
	old, cur = baseEntry("good"), baseEntry("fast")
	cur.Fleet.Latency.P99Ms = old.Fleet.Latency.P99Ms * 0.5
	cur.Fleet.AvailabilityPct = 100
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != OK {
		t.Fatalf("fleet improvement graded %v, want ok", got)
	}
}

// TestDiffSLORegressionFails: per-class SLO attainment is higher-better
// — a synthetic 11% attainment drop must fail, and per-class latency
// percentiles gate too.
func TestDiffSLORegressionFails(t *testing.T) {
	old, cur := baseEntry("good"), baseEntry("missed-slo")
	cur.Fleet.Classes[0].SLO.AttainedPct = old.Fleet.Classes[0].SLO.AttainedPct * 0.89
	r := Diff(old, cur, DefaultThresholds)
	found := false
	for _, f := range r.Findings {
		if f.Metric == "fleet/class/net/slo_attained_pct" {
			found = true
			if f.Severity != Fail || !f.HigherBetter {
				t.Errorf("finding = %+v, want higher-better Fail", f)
			}
		}
	}
	if !found {
		t.Fatal("fleet/class/net/slo_attained_pct not in report")
	}
	if got := r.Worst(); got != Fail {
		t.Fatalf("11%% SLO attainment drop graded %v, want FAIL", got)
	}

	old, cur = baseEntry("good"), baseEntry("slow-class")
	cur.Fleet.Classes[1].Latency.P95Ms = old.Fleet.Classes[1].Latency.P95Ms * 1.2
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != Fail {
		t.Fatalf("20%% class p95 growth graded %v, want FAIL", got)
	}

	// Dropping the SLO block entirely is reported as missing, not ignored.
	old, cur = baseEntry("good"), baseEntry("no-slo")
	cur.Fleet.Classes[0].SLO = nil
	r = Diff(old, cur, DefaultThresholds)
	if len(r.Missing) == 0 || r.Worst() < Warn {
		t.Fatalf("dropped SLO block: missing=%v worst=%v, want warn", r.Missing, r.Worst())
	}
}

func TestDiffSmallMovementWarns(t *testing.T) {
	old, cur := baseEntry("a"), baseEntry("b")
	cur.Figures[0].MeanMBps = old.Figures[0].MeanMBps * 0.93 // -7%: warn
	r := Diff(old, cur, DefaultThresholds)
	if got := r.Worst(); got != Warn {
		t.Fatalf("7%% drop graded %v, want WARN", got)
	}
	// Movement in the GOOD direction never trips the gate.
	old, cur = baseEntry("a"), baseEntry("c")
	cur.Figures[0].MeanMBps = old.Figures[0].MeanMBps * 1.5
	cur.Figures[0].Recovery.P95Ms = old.Figures[0].Recovery.P95Ms * 0.5
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != OK {
		t.Fatalf("improvement graded %v, want ok", got)
	}
}

func TestDiffInvariantViolationsFromZeroFail(t *testing.T) {
	old, cur := baseEntry("a"), baseEntry("b")
	old.Campaign.InvariantViolations = 0
	cur.Campaign.InvariantViolations = 1
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != Fail {
		t.Fatalf("invariant violations 0 -> 1 graded %v, want FAIL", got)
	}
}

func TestDiffDroppedMetricWarns(t *testing.T) {
	old, cur := baseEntry("a"), baseEntry("b")
	cur.Campaign = nil
	r := Diff(old, cur, DefaultThresholds)
	if got := r.Worst(); got != Warn {
		t.Fatalf("dropped campaign graded %v, want WARN", got)
	}
	if len(r.Missing) == 0 {
		t.Fatal("dropped metrics not listed")
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	// Absent file reads as empty history.
	if h, err := ReadHistoryFile(path); err != nil || len(h) != 0 {
		t.Fatalf("absent history: %d entries, err=%v", len(h), err)
	}
	for _, label := range []string{"one", "two", "three"} {
		if err := AppendHistory(path, baseEntry(label)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := ReadHistoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 3 || h[0].Label != "one" || h[2].Label != "three" {
		t.Fatalf("round trip: %d entries, labels %q %q", len(h), h[0].Label, h[len(h)-1].Label)
	}
	if h[1].Throughput == nil || h[1].Campaign == nil || len(h[1].Figures) != 1 {
		t.Fatalf("entry 1 lost documents: %+v", h[1])
	}
}

func TestLoadEntry(t *testing.T) {
	dir := t.TempDir()
	e := baseEntry("")
	if err := bench.WriteFile(filepath.Join(dir, "BENCH_throughput.json"), e.Throughput); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteFile(filepath.Join(dir, "BENCH_fig7.json"), e.Figures[0]); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteFile(filepath.Join(dir, "BENCH_fleet.json"), e.Fleet); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEntry(dir, "sha1234")
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "sha1234" || got.Throughput == nil || got.Campaign != nil || len(got.Figures) != 1 {
		t.Fatalf("loaded entry = %+v", got)
	}
	if got.Fleet == nil || got.Fleet.Policy != "failure-aware" {
		t.Fatalf("fleet document not loaded: %+v", got.Fleet)
	}
	if got.Figures[0].Name != "fig7" {
		t.Fatalf("figure name %q", got.Figures[0].Name)
	}
	// Malformed document is an error, not a skip.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_campaign.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEntry(dir, ""); err == nil {
		t.Fatal("malformed BENCH_campaign.json not reported")
	}
}

func TestReportText(t *testing.T) {
	old, cur := baseEntry("aaa"), baseEntry("bbb")
	cur.Throughput.Points[1].MBps *= 0.8
	var buf bytes.Buffer
	Diff(old, cur, DefaultThresholds).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"aaa -> bbb", "FAIL", "throughput/fig7/interval_2s/mbps", "worst: FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiffDecisionsRegression(t *testing.T) {
	// Baseline availability and give-ups are gated; override variants are
	// counterfactuals and must not be.
	old, cur := baseEntry("a"), baseEntry("b")
	cur.Decisions.Baseline.AvailabilityPct *= 0.8
	cur.Decisions.Baseline.GaveUp = 3
	cur.Decisions.Overrides[0].AvailabilityPct = 1 // should not matter
	r := Diff(old, cur, DefaultThresholds)
	if got := r.Worst(); got != Fail {
		var buf bytes.Buffer
		r.WriteText(&buf)
		t.Fatalf("decisions regression graded %v, want FAIL:\n%s", got, buf.String())
	}
	for _, f := range r.Findings {
		if strings.Contains(f.Metric, "override") {
			t.Fatalf("override variant gated: %+v", f)
		}
	}
}

func TestLoadEntryDecisions(t *testing.T) {
	dir := t.TempDir()
	e := baseEntry("")
	if err := bench.WriteFile(filepath.Join(dir, "BENCH_decisions.json"), e.Decisions); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEntry(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Decisions == nil || got.Decisions.Baseline.AvailabilityPct != 99.2 {
		t.Fatalf("decisions document not loaded: %+v", got.Decisions)
	}
	if len(got.Decisions.Overrides) != 1 || got.Decisions.Overrides[0].Name != "budget=1" {
		t.Fatalf("overrides lost: %+v", got.Decisions.Overrides)
	}
}

// Exact metrics: a deterministic event count that drifts — by any
// amount, in any direction — is a behavior change and must FAIL, far
// below the percent thresholds.
func TestSimspeedExactCountDriftFails(t *testing.T) {
	old, cur := baseEntry("a"), baseEntry("b")
	cur.Simspeed.Scenarios[0].Events++ // +0.0009%: invisible to thresholds
	r := Diff(old, cur, DefaultThresholds)
	if got := r.Worst(); got != Fail {
		var buf bytes.Buffer
		r.WriteText(&buf)
		t.Fatalf("event-count drift graded %v, want FAIL:\n%s", got, buf.String())
	}
	found := false
	for _, f := range r.Findings {
		if f.Metric == "simspeed/fig7/events" {
			found = true
			if f.Severity != Fail || f.Class != Exact {
				t.Fatalf("events finding: %+v", f)
			}
		}
	}
	if !found {
		t.Fatal("simspeed/fig7/events not gated")
	}

	// A drift downward ("improvement" by direction) fails just the same.
	old, cur = baseEntry("a"), baseEntry("b")
	cur.Simspeed.Scenarios[0].Regions[1].Count -= 10
	if got := Diff(old, cur, DefaultThresholds).Worst(); got != Fail {
		t.Fatalf("region-count drift downward graded %v, want FAIL", got)
	}
}

// Noisy metrics: wall-clock speed can swing arbitrarily on a shared
// runner; even a 50% collapse must cap at WARN, never failing a build.
func TestSimspeedWallClockCapsAtWarn(t *testing.T) {
	old, cur := baseEntry("a"), baseEntry("b")
	cur.Simspeed.Scenarios[0].EventsPerSec *= 0.5
	cur.Simspeed.Scenarios[0].NsPerEvent *= 2
	cur.Simspeed.Scenarios[0].OverheadPct *= 3
	r := Diff(old, cur, DefaultThresholds)
	if got := r.Worst(); got != Warn {
		var buf bytes.Buffer
		r.WriteText(&buf)
		t.Fatalf("wall-clock collapse graded %v, want WARN:\n%s", got, buf.String())
	}
	for _, f := range r.Findings {
		if f.Class == Noisy && f.Severity > Warn {
			t.Fatalf("noisy metric exceeded WARN: %+v", f)
		}
	}
}

func TestSimspeedUnchangedPasses(t *testing.T) {
	if got := Diff(baseEntry("a"), baseEntry("b"), DefaultThresholds).Worst(); got != OK {
		t.Fatalf("identical simspeed entries graded %v", got)
	}
}

// The report text marks the class so a CI log reads why a 0.001% move
// failed or a 50% move only warned.
func TestSimspeedReportTextMarksClasses(t *testing.T) {
	old, cur := baseEntry("a"), baseEntry("b")
	cur.Simspeed.Scenarios[0].Events++
	cur.Simspeed.Scenarios[0].EventsPerSec *= 0.5
	var buf bytes.Buffer
	Diff(old, cur, DefaultThresholds).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"exact: any drift fails", "noisy: warn-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadEntrySimspeed(t *testing.T) {
	dir := t.TempDir()
	e := baseEntry("")
	if err := bench.WriteFile(filepath.Join(dir, "BENCH_simspeed.json"), e.Simspeed); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEntry(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Empty() {
		t.Fatal("entry with simspeed document reported Empty")
	}
	if got.Simspeed == nil || len(got.Simspeed.Scenarios) != 1 ||
		got.Simspeed.Scenarios[0].Events != 110240 {
		t.Fatalf("simspeed document not loaded: %+v", got.Simspeed)
	}
}
