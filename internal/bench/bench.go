// Package bench defines the machine-readable performance baselines the
// benchmark commands emit (BENCH_throughput.json, BENCH_campaign.json).
// The schemas are documented in EXPERIMENTS.md; CI uploads the files as
// artifacts so regressions are diffable across commits. Virtual-time
// numbers are deterministic for a fixed seed+workload; wall-clock fields
// describe the run machine and are expected to vary.
package bench

import (
	"encoding/json"
	"os"

	"resilientos/internal/obs"
	"resilientos/internal/sim"
)

// Schema identifiers; bump the version on incompatible field changes.
const (
	SchemaThroughput = "resilientos/bench/throughput/v1"
	SchemaCampaign   = "resilientos/bench/campaign/v1"
	SchemaFigure     = "resilientos/bench/figure/v1"
	SchemaFleet      = "resilientos/bench/fleet/v1"
	SchemaDecisions  = "resilientos/bench/decisions/v1"
	SchemaRecovery   = "resilientos/bench/recovery/v1"
	SchemaSimspeed   = "resilientos/bench/simspeed/v1"
)

// LatencyMs is a recovery-latency distribution in virtual milliseconds.
type LatencyMs struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Latency converts an obs summary to the JSON shape.
func Latency(s obs.LatencySummary) LatencyMs {
	ms := func(t sim.Time) float64 { return float64(t) / 1e6 }
	return LatencyMs{
		Count: s.Count, MeanMs: ms(s.Mean),
		P50Ms: ms(s.P50), P95Ms: ms(s.P95), P99Ms: ms(s.P99), MaxMs: ms(s.Max),
	}
}

// ThroughputPoint is one kill-interval point of a Fig. 7/8 sweep.
type ThroughputPoint struct {
	KillIntervalS  float64   `json:"kill_interval_s"` // 0 = uninterrupted
	Bytes          int64     `json:"bytes"`
	VirtualS       float64   `json:"virtual_s"` // transfer duration, virtual time
	MBps           float64   `json:"mbps"`
	OpsPerVirtualS float64   `json:"ops_per_virtual_s"` // 64 KiB reads per virtual second
	Kills          int       `json:"kills"`
	Recoveries     int       `json:"recoveries"`
	OK             bool      `json:"ok"`
	Recovery       LatencyMs `json:"recovery"`
}

// Throughput is the BENCH_throughput.json document.
type Throughput struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"` // "fig7" or "fig8"
	Seed       int64             `json:"seed"`
	SizeBytes  int64             `json:"size_bytes"`
	WallClockS float64           `json:"wall_clock_s"`
	Points     []ThroughputPoint `json:"points"`
}

// Figure is the BENCH_fig7.json / BENCH_fig8.json document: the summary
// of one windowed figure run (cmd/figures), the per-commit shape the
// bench-regression gate (compare) trends. Virtual-time fields are
// deterministic for a fixed seed; WallClockS varies by machine.
type Figure struct {
	Schema         string    `json:"schema"`
	Name           string    `json:"name"` // "fig7" or "fig8"
	Seed           int64     `json:"seed"`
	SizeBytes      int64     `json:"size_bytes"`
	KillIntervalS  float64   `json:"kill_interval_s"`
	Windows        int       `json:"windows"`
	Kills          int       `json:"kills"`
	OK             bool      `json:"ok"`
	MBps           float64   `json:"mbps"`          // end-to-end transfer rate
	BaselineMBps   float64   `json:"baseline_mbps"` // pre-kill windowed rate
	MeanMBps       float64   `json:"mean_mbps"`
	MinMBps        float64   `json:"min_mbps"`
	Dips           int       `json:"dips"`
	MeanDipDepth   float64   `json:"mean_dip_depth_pct"`
	MeanDipWidthMs float64   `json:"mean_dip_width_ms"`
	RecoveredPct   float64   `json:"recovered_pct"` // post-recovery rate vs baseline
	Recovery       LatencyMs `json:"recovery"`
	WallClockS     float64   `json:"wall_clock_s"`
}

// CampaignFault aggregates one fault type of a SWIFI campaign.
type CampaignFault struct {
	Fault     string    `json:"fault"`
	Injected  int       `json:"injected"`
	Crashes   int       `json:"crashes"`
	Recovered int       `json:"recovered"`
	GaveUp    int       `json:"gave_up"`
	Recovery  LatencyMs `json:"recovery"`
}

// Campaign is the BENCH_campaign.json document.
type Campaign struct {
	Schema              string          `json:"schema"`
	Seeds               int             `json:"seeds"`
	Cells               int             `json:"cells"`
	FaultsPerCell       int             `json:"faults_per_cell"`
	Workers             int             `json:"workers"`
	Injected            int             `json:"injected"`
	Crashes             int             `json:"crashes"`
	Recovered           int             `json:"recovered"`
	GaveUp              int             `json:"gave_up"`
	RecoveryRatePct     float64         `json:"recovery_rate_pct"`
	InvariantViolations int             `json:"invariant_violations"`
	WallClockS          float64         `json:"wall_clock_s"`
	ByFault             []CampaignFault `json:"by_fault"`
}

// FleetSLO is one class's attainment against its workload-declared
// latency budget.
type FleetSLO struct {
	BudgetMs    float64 `json:"budget_ms"`
	AttainedPct float64 `json:"attained_pct"` // requests within budget; higher is better
	WindowPct   float64 `json:"window_pct"`   // windows within budget; higher is better
}

// FleetClass is one service class's slice of a fleet campaign.
type FleetClass struct {
	Class               string    `json:"class"`
	AvailabilityPct     float64   `json:"availability_pct"`      // higher is better
	NodeAvailabilityPct float64   `json:"node_availability_pct"` // higher is better
	Requests            int64     `json:"requests"`
	Latency             LatencyMs `json:"latency"`       // request latency, lower is better
	SLO                 *FleetSLO `json:"slo,omitempty"` // nil without a declared budget
}

// Fleet is the BENCH_fleet.json document: the summary of one
// cmd/fleetbench campaign (internal/cluster). Direction conventions for
// the regression gate: availability and recovery percentages are
// higher-better, request-latency percentiles are lower-better. All
// fields but WallClockS are deterministic for a fixed fleet seed.
type Fleet struct {
	Schema   string  `json:"schema"`
	Nodes    int     `json:"nodes"`
	Seed     int64   `json:"seed"`
	Policy   string  `json:"policy"`
	Storm    string  `json:"storm"`
	Workload string  `json:"workload,omitempty"` // driving spec/trace name
	HorizonS float64 `json:"horizon_s"`
	WindowMs float64 `json:"window_ms"`
	Windows  int     `json:"windows"`

	AvailabilityPct     float64 `json:"availability_pct"`      // higher is better
	NodeAvailabilityPct float64 `json:"node_availability_pct"` // higher is better

	Requests  int64     `json:"requests"`
	Completed int64     `json:"completed"`
	Reroutes  int64     `json:"reroutes"`
	Latency   LatencyMs `json:"latency"` // request latency, lower is better

	Kills        int     `json:"kills"`
	Injections   int     `json:"injections"`
	Crashes      int     `json:"crashes"`
	Recovered    int     `json:"recovered"`
	GaveUp       int     `json:"gave_up"`
	RecoveredPct float64 `json:"recovered_pct"` // higher is better

	MaxRecoveryOverlap  int     `json:"max_recovery_overlap"`
	MeanRecoveryOverlap float64 `json:"mean_recovery_overlap"`

	WallClockS float64      `json:"wall_clock_s"`
	Classes    []FleetClass `json:"classes"`
}

// DecisionVariant is one knob configuration of a counterfactual sweep:
// the baseline, or one override re-run of the same recorded campaign.
type DecisionVariant struct {
	Name            string    `json:"name"` // "baseline" or the override spec
	Crashes         int       `json:"crashes"`
	Recovered       int       `json:"recovered"`
	GaveUp          int       `json:"gave_up"`
	AvailabilityPct float64   `json:"availability_pct"` // higher is better
	Events          int       `json:"events"`           // decision-trace length
	Recovery        LatencyMs `json:"recovery"`
}

// Decisions is the BENCH_decisions.json document: the summary of one
// cmd/whatif counterfactual sweep over a recorded campaign. The baseline
// feeds the regression gate (availability, give-ups, recovery p95);
// override variants are trended but not gated — they exist to show what
// each knob costs, not to pin it.
type Decisions struct {
	Schema     string            `json:"schema"`
	Spec       string            `json:"spec"` // canonical baseline scenario
	Workers    int               `json:"workers"`
	WallClockS float64           `json:"wall_clock_s"`
	Baseline   DecisionVariant   `json:"baseline"`
	Overrides  []DecisionVariant `json:"overrides"`
}

// RecoveryMechanism is one mechanism's slice of a recovery-mechanism
// comparison: the same figure run (seed, size, crash cadence) under one
// recovery mechanism. Dip depth and width are lower-better.
type RecoveryMechanism struct {
	Mechanism      string    `json:"mechanism"` // respawn, microreboot, standby
	OK             bool      `json:"ok"`
	MBps           float64   `json:"mbps"`
	BaselineMBps   float64   `json:"baseline_mbps"`
	Crashes        int       `json:"crashes"`
	Dips           int       `json:"dips"`
	MeanDipDepth   float64   `json:"mean_dip_depth_pct"` // lower is better
	MeanDipWidthMs float64   `json:"mean_dip_width_ms"`  // lower is better
	RecoveredPct   float64   `json:"recovered_pct"`      // higher is better
	Recovery       LatencyMs `json:"recovery"`
}

// Recovery is the BENCH_recovery.json document: the paper-style extension
// table comparing Fig. 7 dip depth/width across recovery mechanisms, one
// identical run per mechanism with VM-level crash injection. The gain
// fields pin the headline claims — a warm standby buys dip depth, a
// microreboot buys dip width — so a commit that erodes either fails the
// bench gate. All fields but WallClockS are deterministic per seed.
type Recovery struct {
	Schema      string              `json:"schema"`
	Fig         int                 `json:"fig"`
	Seed        int64               `json:"seed"`
	SizeBytes   int64               `json:"size_bytes"`
	CrashEveryS float64             `json:"crash_every_s"`
	WallClockS  float64             `json:"wall_clock_s"`
	Mechanisms  []RecoveryMechanism `json:"mechanisms"`

	// StandbyDepthGainPct is respawn's mean dip depth minus standby's
	// (percentage points; higher is better). MicroWidthGainMs is
	// respawn's mean dip width minus microreboot's (ms; higher is
	// better).
	StandbyDepthGainPct float64 `json:"standby_depth_gain_pct"`
	MicroWidthGainMs    float64 `json:"micro_width_gain_ms"`
}

// SimspeedRegion is one instrumented region's row of a simspeed
// scenario: the per-subsystem cost attribution of internal/perf. Count
// and Samples are deterministic for a fixed seed+workload; the ns and
// alloc fields observe the run machine.
type SimspeedRegion struct {
	Region         string  `json:"region"`
	Count          uint64  `json:"count"`            // entries (deterministic)
	Samples        uint64  `json:"samples"`          // alloc-sampled entries (deterministic)
	TotalNs        int64   `json:"total_ns"`         // inclusive wall ns
	SelfNs         int64   `json:"self_ns"`          // exclusive wall ns
	NsPerEntry     float64 `json:"ns_per_entry"`     // self ns per entry, lower is better
	AllocsPerEntry float64 `json:"allocs_per_entry"` // heap objects per entry
}

// SimspeedScenario is one battery scenario of cmd/simspeed, run twice:
// instrumented (obs + invariant checker + decision log attached) and
// bare (all recorders nil). Events/BareEvents/VirtualMs and every
// region's Count/Samples are deterministic; everything else is
// wall-clock and varies by machine.
type SimspeedScenario struct {
	Name string `json:"name"`

	Events     uint64  `json:"events"`      // scheduler events, instrumented run
	BareEvents uint64  `json:"bare_events"` // scheduler events, nil-recorder run
	VirtualMs  float64 `json:"virtual_ms"`  // virtual time simulated
	ObsEvents  uint64  `json:"obs_events"`  // trace events emitted past the mask

	WallMs           float64 `json:"wall_ms"`
	EventsPerSec     float64 `json:"events_per_sec"`   // higher is better
	NsPerEvent       float64 `json:"ns_per_event"`     // lower is better
	AllocsPerEvent   float64 `json:"allocs_per_event"` // lower is better
	VirtualPerWall   float64 `json:"virtual_per_wall"` // higher is better
	BareWallMs       float64 `json:"bare_wall_ms"`
	BareEventsPerSec float64 `json:"bare_events_per_sec"` // higher is better
	// OverheadPct is the obs/check/decision stack's wall-clock cost:
	// instrumented ns/event over bare ns/event, as a percentage
	// increase. Lower is better.
	OverheadPct float64 `json:"overhead_pct"`

	Regions []SimspeedRegion `json:"regions"`
}

// Simspeed is the BENCH_simspeed.json document: wall-clock speed of the
// simulator itself over the standard cmd/simspeed battery. The
// deterministic fields are hard-gated by the bench gate (any drift
// fails: the same code must execute the same events); the wall-clock
// fields are gated warn-only (shared-runner noise).
type Simspeed struct {
	Schema     string             `json:"schema"`
	Seed       int64              `json:"seed"`
	WallClockS float64            `json:"wall_clock_s"`
	Scenarios  []SimspeedScenario `json:"scenarios"`
}

// Canonical returns a deep copy with every wall-clock field zeroed,
// leaving only the deterministic skeleton (scenario names, event and
// region entry counts, virtual time). Two runs of the same binary and
// seed must produce byte-identical canonical documents — the
// determinism-separation gate cmd/simspeed tests and CI enforce.
func (s Simspeed) Canonical() Simspeed {
	out := s
	out.WallClockS = 0
	out.Scenarios = make([]SimspeedScenario, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		sc.WallMs = 0
		sc.EventsPerSec = 0
		sc.NsPerEvent = 0
		sc.AllocsPerEvent = 0
		sc.VirtualPerWall = 0
		sc.BareWallMs = 0
		sc.BareEventsPerSec = 0
		sc.OverheadPct = 0
		sc.Regions = make([]SimspeedRegion, len(s.Scenarios[i].Regions))
		for j, rr := range s.Scenarios[i].Regions {
			rr.TotalNs = 0
			rr.SelfNs = 0
			rr.NsPerEntry = 0
			rr.AllocsPerEntry = 0
			sc.Regions[j] = rr
		}
		out.Scenarios[i] = sc
	}
	return out
}

// WriteFile marshals v as indented JSON (plus trailing newline) to path.
func WriteFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
