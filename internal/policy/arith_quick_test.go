package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// arithExpr generates a random arithmetic expression together with its
// expected value, avoiding division/modulo by zero and shift-range traps
// by construction.
func arithExpr(r *rand.Rand, depth int) (string, int64) {
	if depth == 0 || r.Intn(3) == 0 {
		n := int64(r.Intn(200) - 100)
		if n < 0 {
			return fmt.Sprintf("(%d)", n), n
		}
		return fmt.Sprintf("%d", n), n
	}
	ls, lv := arithExpr(r, depth-1)
	rs, rv := arithExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", ls, rs), lv / rv
	case 4:
		b := func(v bool) int64 {
			if v {
				return 1
			}
			return 0
		}
		return fmt.Sprintf("(%s < %s)", ls, rs), b(lv < rv)
	default:
		sh := int64(r.Intn(8))
		return fmt.Sprintf("(%s << %d)", ls, sh), lv << uint(sh)
	}
}

// Property: the shell's $(( )) evaluator agrees with Go's own arithmetic
// on randomly generated expressions.
func TestArithAgreesWithGo(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			s, v := arithExpr(r, 4)
			args[0] = reflect.ValueOf(s)
			args[1] = reflect.ValueOf(v)
		},
	}
	f := func(expr string, want int64) bool {
		in := NewInterp()
		got, err := in.evalArith(expr)
		if err != nil {
			t.Logf("expr %s: %v", expr, err)
			return false
		}
		return got == want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
