package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// evalArith evaluates a $(( ... )) expression. Variables may appear bare
// (repetition) or with a dollar ($repetition); undefined variables read as
// zero, as in POSIX shells.
func (in *Interp) evalArith(expr string) (int64, error) {
	p := &arithParser{src: expr, in: in}
	v, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("arith: trailing %q", p.src[p.pos:])
	}
	return v, nil
}

type arithParser struct {
	src string
	pos int
	in  *Interp
}

func (p *arithParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *arithParser) peekOp(ops ...string) string {
	p.skipSpace()
	for _, op := range ops {
		if strings.HasPrefix(p.src[p.pos:], op) {
			return op
		}
	}
	return ""
}

func (p *arithParser) take(op string) { p.pos += len(op) }

func (p *arithParser) parseTernary() (int64, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return 0, err
	}
	if p.peekOp("?") == "" {
		return cond, nil
	}
	p.take("?")
	a, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if p.peekOp(":") == "" {
		return 0, fmt.Errorf("arith: ?: missing :")
	}
	p.take(":")
	b, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	if cond != 0 {
		return a, nil
	}
	return b, nil
}

// Precedence levels, loosest first.
var arithLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<=", ">=", "<<", ">>", "<", ">"}, // shifts share chars with compares; handled below
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *arithParser) parseBinary(level int) (int64, error) {
	if level >= len(arithLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return 0, err
	}
	for {
		op := p.peekOp(arithLevels[level]...)
		if op == "" {
			return left, nil
		}
		// Disambiguate shifts vs. comparisons at the shared level.
		if level == 6 {
			if two := p.peekOp("<<", ">>", "<=", ">="); two != "" {
				op = two
			}
		}
		// Don't eat "||"/"&&" as "|"/"&".
		if (op == "|" && p.peekOp("||") != "") || (op == "&" && p.peekOp("&&") != "") {
			return left, nil
		}
		p.take(op)
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return 0, err
		}
		left, err = applyArith(op, left, right)
		if err != nil {
			return 0, err
		}
	}
}

func applyArith(op string, a, b int64) (int64, error) {
	btoi := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case "||":
		return btoi(a != 0 || b != 0), nil
	case "&&":
		return btoi(a != 0 && b != 0), nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "&":
		return a & b, nil
	case "==":
		return btoi(a == b), nil
	case "!=":
		return btoi(a != b), nil
	case "<":
		return btoi(a < b), nil
	case "<=":
		return btoi(a <= b), nil
	case ">":
		return btoi(a > b), nil
	case ">=":
		return btoi(a >= b), nil
	case "<<":
		if b < 0 || b > 63 {
			return 0, fmt.Errorf("arith: shift count %d", b)
		}
		return a << uint(b), nil
	case ">>":
		if b < 0 || b > 63 {
			return 0, fmt.Errorf("arith: shift count %d", b)
		}
		return a >> uint(b), nil
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("arith: division by zero")
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, fmt.Errorf("arith: modulo by zero")
		}
		return a % b, nil
	}
	return 0, fmt.Errorf("arith: bad operator %q", op)
}

func (p *arithParser) parseUnary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("arith: unexpected end")
	}
	switch c := p.src[p.pos]; c {
	case '-':
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case '+':
		p.pos++
		return p.parseUnary()
	case '!':
		p.pos++
		v, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case '~':
		p.pos++
		v, err := p.parseUnary()
		return ^v, err
	case '(':
		p.pos++
		v, err := p.parseTernary()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("arith: missing )")
		}
		p.pos++
		return v, nil
	case '$':
		p.pos++
		return p.parseName()
	default:
		if c >= '0' && c <= '9' {
			start := p.pos
			for p.pos < len(p.src) && (isNameByte(p.src[p.pos])) {
				p.pos++
			}
			v, err := strconv.ParseInt(p.src[start:p.pos], 0, 64)
			if err != nil {
				return 0, fmt.Errorf("arith: bad number %q", p.src[start:p.pos])
			}
			return v, nil
		}
		if isNameByte(c) {
			return p.parseName()
		}
		return 0, fmt.Errorf("arith: unexpected %q", string(c))
	}
}

func (p *arithParser) parseName() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		return 0, fmt.Errorf("arith: empty variable name")
	}
	val := p.in.lookupVar(name)
	if val == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(strings.TrimSpace(val), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("arith: variable %s=%q is not a number", name, val)
	}
	return v, nil
}
