package policy

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Command is a host-provided command (e.g. `service`, `mail`, `reboot`
// bound by the reincarnation server). It receives the expanded argv
// (argv[0] is the command name) and the piped-in stdin; it returns its
// stdout and exit status.
type Command func(argv []string, stdin string) (stdout string, status int)

// Interp executes parsed policy scripts. The zero value is not usable;
// call NewInterp.
type Interp struct {
	vars     map[string]string
	args     []string // positional parameters $1..
	status   int      // $?
	commands map[string]Command
	sleep    func(time.Duration)
	stdout   io.Writer
	limit    int    // remaining execution steps (runaway guard)
	docsRef  []word // heredoc bodies of the script being run
	optind   int    // getopts cursor (1-based position in args)
	trace    Trace  // step-level hook, nil when tracing is off
}

// Trace is the step-level trace hook: it is called after every executed
// simple command with the fully-expanded argv and the command's exit
// status (decision tracing uses it to record a script's "why" trail).
type Trace func(argv []string, status int)

// Option configures an Interp.
type Option func(*Interp)

// WithCommand binds a host command.
func WithCommand(name string, fn Command) Option {
	return func(in *Interp) { in.commands[name] = fn }
}

// WithSleep binds the sleep builtin's clock (the reincarnation server
// binds virtual time). Default: sleeping is a no-op.
func WithSleep(fn func(time.Duration)) Option {
	return func(in *Interp) { in.sleep = fn }
}

// WithStdout directs unpiped command output.
func WithStdout(w io.Writer) Option {
	return func(in *Interp) { in.stdout = w }
}

// WithArgs sets the positional parameters.
func WithArgs(args ...string) Option {
	return func(in *Interp) { in.args = append([]string(nil), args...) }
}

// WithVar presets a variable.
func WithVar(name, value string) Option {
	return func(in *Interp) { in.vars[name] = value }
}

// WithTrace installs the step-level trace hook.
func WithTrace(fn Trace) Option {
	return func(in *Interp) { in.trace = fn }
}

// VarState renders the interpreter's shell variables as a canonical
// space-separated "name=value" list in name order, so trace hooks can
// snapshot the arith/variable state deterministically.
func (in *Interp) VarState() string {
	if len(in.vars) == 0 {
		return ""
	}
	names := make([]string, 0, len(in.vars))
	for n := range in.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(in.vars[n])
	}
	return b.String()
}

// stepLimit bounds total commands executed per run; a policy script that
// exceeds it is defective itself.
const stepLimit = 100_000

// NewInterp creates an interpreter.
func NewInterp(opts ...Option) *Interp {
	in := &Interp{
		vars:     make(map[string]string),
		commands: make(map[string]Command),
		sleep:    func(time.Duration) {},
		stdout:   io.Discard,
		limit:    stepLimit,
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// exitError unwinds the script on `exit N`.
type exitError struct{ status int }

func (e *exitError) Error() string { return fmt.Sprintf("exit %d", e.status) }

// Run executes a parsed script and returns its exit status.
func (in *Interp) Run(s *Script) (int, error) {
	in.docsRef = s.docs
	err := in.execList(s.root)
	var ex *exitError
	if errors.As(err, &ex) {
		in.status = ex.status
		return ex.status, nil
	}
	if err != nil {
		return 1, err
	}
	return in.status, nil
}

// RunSource parses and executes src.
func (in *Interp) RunSource(src string) (int, error) {
	s, err := Parse(src)
	if err != nil {
		return 1, err
	}
	return in.Run(s)
}

// Var returns the value of a variable after a run (tests, host queries).
func (in *Interp) Var(name string) string { return in.vars[name] }

func (in *Interp) step() error {
	in.limit--
	if in.limit <= 0 {
		return fmt.Errorf("policy: script exceeded %d steps", stepLimit)
	}
	return nil
}

func (in *Interp) lookupVar(name string) string {
	switch name {
	case "?":
		return strconv.Itoa(in.status)
	case "#":
		return strconv.Itoa(len(in.args))
	case "@", "*":
		return strings.Join(in.args, " ")
	}
	if len(name) == 1 && name[0] >= '0' && name[0] <= '9' {
		idx := int(name[0] - '0')
		if idx == 0 {
			return "policy" // $0
		}
		if idx <= len(in.args) {
			return in.args[idx-1]
		}
		return ""
	}
	return in.vars[name]
}

// expandWord expands a word into fields (IFS splitting applies to unquoted
// expansions).
func (in *Interp) expandWord(w word) ([]string, error) {
	type frag struct {
		s      string
		quoted bool
	}
	var frags []frag
	for _, p := range w {
		switch p.kind {
		case partLit:
			frags = append(frags, frag{p.s, p.quoted})
		case partVar:
			frags = append(frags, frag{in.lookupVar(p.s), p.quoted})
		case partArith:
			v, err := in.evalArith(p.s)
			if err != nil {
				return nil, err
			}
			frags = append(frags, frag{strconv.FormatInt(v, 10), p.quoted})
		}
	}
	// Assemble fields: quoted fragments never split; unquoted fragments
	// split on whitespace.
	var fields []string
	cur := ""
	started := false
	flush := func() {
		if started {
			fields = append(fields, cur)
			cur = ""
			started = false
		}
	}
	for _, f := range frags {
		if f.quoted {
			cur += f.s
			started = true
			continue
		}
		parts := strings.Fields(f.s)
		if len(parts) == 0 {
			if f.s == "" {
				continue
			}
			// whitespace-only unquoted expansion: separator
			flush()
			continue
		}
		lead := f.s[0] == ' ' || f.s[0] == '\t' || f.s[0] == '\n'
		trail := f.s[len(f.s)-1] == ' ' || f.s[len(f.s)-1] == '\t' || f.s[len(f.s)-1] == '\n'
		for i, pt := range parts {
			if i == 0 && !lead {
				cur += pt
				started = true
			} else {
				flush()
				cur = pt
				started = true
			}
		}
		if trail {
			flush()
		}
	}
	flush()
	return fields, nil
}

// expandOne expands a word into exactly one string (no field splitting) —
// for assignments and case subjects.
func (in *Interp) expandOne(w word) (string, error) {
	var b strings.Builder
	for _, p := range w {
		switch p.kind {
		case partLit:
			b.WriteString(p.s)
		case partVar:
			b.WriteString(in.lookupVar(p.s))
		case partArith:
			v, err := in.evalArith(p.s)
			if err != nil {
				return "", err
			}
			b.WriteString(strconv.FormatInt(v, 10))
		}
	}
	return b.String(), nil
}

func (in *Interp) execList(l *listNode) error {
	for _, item := range l.items {
		if err := in.execNode(item, "", nil); err != nil {
			return err
		}
	}
	return nil
}

// execNode executes a node. stdin is the piped input; if out is non-nil
// the node's output is collected there instead of going to in.stdout.
func (in *Interp) execNode(n node, stdin string, out *strings.Builder) error {
	if err := in.step(); err != nil {
		return err
	}
	switch n := n.(type) {
	case *listNode:
		return in.execList(n)
	case *andOrNode:
		if err := in.execNode(n.first, stdin, out); err != nil {
			return err
		}
		for _, link := range n.rest {
			if (link.op == "&&" && in.status != 0) || (link.op == "||" && in.status == 0) {
				continue
			}
			if err := in.execNode(link.next, stdin, out); err != nil {
				return err
			}
		}
		return nil
	case *pipeNode:
		data := stdin
		for i, cmd := range n.cmds {
			var buf strings.Builder
			sink := &buf
			if i == len(n.cmds)-1 {
				sink = out // may be nil -> stdout
			}
			if err := in.execNode(cmd, data, sink); err != nil {
				return err
			}
			if i < len(n.cmds)-1 {
				data = buf.String()
			}
		}
		return nil
	case *simpleNode:
		return in.execSimple(n, stdin, out)
	case *ifNode:
		for _, arm := range n.arms {
			if err := in.execList(arm.cond); err != nil {
				return err
			}
			if in.status == 0 {
				return in.execList(arm.body)
			}
		}
		if n.elseBody != nil {
			return in.execList(n.elseBody)
		}
		in.status = 0
		return nil
	case *whileNode:
		for {
			if err := in.execList(n.cond); err != nil {
				return err
			}
			if in.status != 0 {
				in.status = 0
				return nil
			}
			if err := in.execList(n.body); err != nil {
				return err
			}
		}
	case *forNode:
		var items []string
		for _, w := range n.words {
			fields, err := in.expandWord(w)
			if err != nil {
				return err
			}
			items = append(items, fields...)
		}
		for _, item := range items {
			in.vars[n.name] = item
			if err := in.execList(n.body); err != nil {
				return err
			}
		}
		in.status = 0
		return nil
	case *caseNode:
		subj, err := in.expandOne(n.subject)
		if err != nil {
			return err
		}
		for _, arm := range n.arms {
			for _, pw := range arm.patterns {
				pat, err := in.expandOne(pw)
				if err != nil {
					return err
				}
				if globMatch(pat, subj) {
					return in.execList(arm.body)
				}
			}
		}
		in.status = 0
		return nil
	}
	return fmt.Errorf("policy: unknown node %T", n)
}

func (in *Interp) execSimple(n *simpleNode, stdin string, out *strings.Builder) error {
	// Assignments.
	for _, a := range n.assigns {
		val, err := in.expandOne(a.value)
		if err != nil {
			return err
		}
		in.vars[a.name] = val
	}
	if len(n.words) == 0 {
		in.status = 0
		return nil
	}
	var argv []string
	for _, w := range n.words {
		fields, err := in.expandWord(w)
		if err != nil {
			return err
		}
		argv = append(argv, fields...)
	}
	if len(argv) == 0 {
		in.status = 0
		return nil
	}
	if n.heredoc >= 0 {
		doc, err := in.expandOne(in.docsRef[n.heredoc])
		if err != nil {
			return err
		}
		stdin = doc
	}
	stdout, status, err := in.invoke(argv, stdin)
	if err != nil {
		return err
	}
	in.status = status
	if in.trace != nil {
		in.trace(argv, status)
	}
	if stdout != "" {
		if out != nil {
			out.WriteString(stdout)
		} else {
			io.WriteString(in.stdout, stdout)
		}
	}
	return nil
}

// globMatch implements shell pattern matching with * and ?.
func globMatch(pat, s string) bool {
	// Dynamic programming over pattern/string positions.
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '?' || pat[pi] == s[si]):
			pi++
			si++
		case pi < len(pat) && pat[pi] == '*':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '*' {
		pi++
	}
	return pi == len(pat)
}
