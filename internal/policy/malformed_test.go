package policy

import (
	"strings"
	"testing"
)

// runNoPanic executes src and converts any interpreter panic into a test
// failure carrying the offending script. Recovery policies come from
// operator-editable files (paper §5.2): a malformed script must degrade
// to an error the reincarnation server can log, never take down the host.
func runNoPanic(t *testing.T, src string, opts ...Option) (status int, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("script %q panicked: %v", src, r)
		}
	}()
	in := NewInterp(opts...)
	return in.RunSource(src)
}

func TestMalformedScriptsErrorNeverPanic(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		// Unknown verbs: not builtins and not host-bound commands.
		{"unknown-verb", `restrt "$1"`},
		{"unknown-verb-in-if", `if true; then frobnicate; fi`},
		{"unknown-verb-in-pipe", `echo x | mangle`},

		// Unterminated strings and expansions.
		{"unterminated-double-quote", `service restart "eth`},
		{"unterminated-single-quote", `mail 'driver died`},
		{"unterminated-brace-var", `echo ${label`},
		{"unterminated-arith", `t=$((t * 2`},
		{"unterminated-heredoc", "mail root << EOF\nsubject: down\n"},
		{"dangling-backslash", `echo oops\`},

		// Backoff arithmetic gone wrong: the Fig. 2 pattern with a shift
		// or operand that overflows must error out of the run.
		{"backoff-shift-overflow", `
count=70
sleep $((1 << count))
`},
		{"backoff-negative-shift", `sleep $((1 << -1))`},
		{"backoff-huge-literal", `sleep $((99999999999999999999 * 2))`},
		{"backoff-divide-by-zero", `sleep $((60 / (count - count)))`},
		{"backoff-bad-variable", `
period=soon
sleep $((period * 2))
`},
		{"sleep-overflowing-duration", `sleep 9e999`},
		{"sleep-negative", `sleep -5`},

		// Structural damage around the same constructs.
		{"if-without-fi", `if test $count -gt 3; then mail root`},
		{"while-without-done", `while true; do service restart net`},
		{"case-pattern-junk", `case $1 in |) echo x;; esac`},
		{"background-job", `service restart net &`},
		{"shift-bad-count", `shift banana`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, err := runNoPanic(t, tc.src)
			if err == nil && status == 0 {
				t.Errorf("script %q: no error and status 0, want failure", tc.src)
			}
		})
	}
}

// TestMalformedBackoffScriptUnderHost runs a damaged variant of the
// paper's Fig. 2 generic script with host commands bound, the way RS
// runs it: the overflow must surface as an error, not kill the host.
func TestMalformedBackoffScriptUnderHost(t *testing.T) {
	var restarts int
	_, err := runNoPanic(t, `
repetition=$1
t=1
while test $repetition -gt 0; do
	t=$((t << repetition))
	sleep $t
	repetition=$((repetition - 1))
done
service restart
`,
		WithArgs("70"), // shift count beyond 63 on the first iteration
		WithCommand("service", func(argv []string, stdin string) (string, int) {
			restarts++
			return "", 0
		}),
	)
	if err == nil || !strings.Contains(err.Error(), "shift count") {
		t.Fatalf("err = %v, want shift-count overflow", err)
	}
	if restarts != 0 {
		t.Fatalf("restart ran %d times after broken backoff", restarts)
	}
}

// TestParseNeverPanicsOnMangledSources sweeps byte-level mutations of a
// valid policy script through the parser; every result must be a clean
// parse or a clean error.
func TestParseNeverPanicsOnMangledSources(t *testing.T) {
	base := `
repetition=$1
if test $repetition -le 3; then
	sleep $((1 << repetition))
	service restart
else
	mail root "driver keeps crashing"
fi
`
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for i := 0; i < len(base); i++ {
		for _, b := range []byte{'"', '\'', '$', '(', ')', '|', '&', '<', '{', 0} {
			mangled := base[:i] + string(b) + base[i+1:]
			_, _ = Parse(mangled) // must not panic; error is fine
		}
		_, _ = Parse(base[:i]) // truncations too
	}
}
