package policy

import (
	"reflect"
	"testing"
)

func TestWithTraceSeesEveryStep(t *testing.T) {
	type step struct {
		argv   []string
		status int
		vars   string
	}
	var steps []step
	var in *Interp
	in = NewInterp(
		WithArgs("eth", "4", "2"),
		WithTrace(func(argv []string, status int) {
			steps = append(steps, step{
				argv:   append([]string(nil), argv...),
				status: status,
				vars:   in.VarState(),
			})
		}),
		WithCommand("service", func(argv []string, stdin string) (string, int) {
			return "", 0
		}),
	)
	script := MustParse(`
component=$1
backoff=$((1 << ($3 - 1)))
sleep $backoff
service restart $component
false
`)
	if _, err := in.Run(script); err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"sleep", "2"},
		{"service", "restart", "eth"},
		{"false"},
	}
	if len(steps) != len(want) {
		t.Fatalf("traced %d steps, want %d: %+v", len(steps), len(want), steps)
	}
	for i, w := range want {
		if !reflect.DeepEqual(steps[i].argv, w) {
			t.Fatalf("step %d argv = %v, want %v", i, steps[i].argv, w)
		}
	}
	if steps[2].status != 1 {
		t.Fatalf("false traced with status %d", steps[2].status)
	}
	// Variable state is canonical: sorted name order.
	if steps[0].vars != "backoff=2 component=eth" {
		t.Fatalf("vars = %q", steps[0].vars)
	}
}

func TestVarStateEmpty(t *testing.T) {
	if got := NewInterp().VarState(); got != "" {
		t.Fatalf("empty interp VarState = %q", got)
	}
}
