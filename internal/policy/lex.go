// Package policy implements the policy-script engine of the recovery
// procedure (paper §5.2): a small POSIX-flavored shell. Recovery policies
// are real scripts — the paper's Fig. 2 generic script runs here nearly
// verbatim — with host-provided commands (`service`, `mail`, `reboot`)
// bound by the reincarnation server and `sleep` bound to virtual time.
//
// Supported: variables and positional parameters, `shift`, quoting,
// `$((...))` arithmetic, `if`/`elif`/`else`, `while`, `for`, `case` with
// glob patterns, pipelines, `&&`/`||`, `getopts`, heredocs, and the
// builtins echo, cat, test/[, sleep, exit, true, false, log, and `:`.
package policy

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokWord    tokKind = iota + 1
	tokOp              // | ; && || ( ) ;;
	tokNewline         // line break (separator)
	tokHeredoc         // << TAG; Doc holds the body index
	tokEOF
)

type token struct {
	kind tokKind
	op   string // for tokOp
	w    word   // for tokWord
	doc  int    // for tokHeredoc: index into lexer.docs
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokWord:
		return fmt.Sprintf("word(%s)", t.w.debug())
	case tokOp:
		return fmt.Sprintf("op(%s)", t.op)
	case tokNewline:
		return "newline"
	case tokHeredoc:
		return "heredoc"
	case tokEOF:
		return "eof"
	}
	return "tok?"
}

// partKind distinguishes the pieces a word is assembled from.
type partKind int

const (
	partLit   partKind = iota + 1 // literal text
	partVar                       // $name / ${name} / $1 / $? / $# / $@ / $*
	partArith                     // $(( expr ))
)

type part struct {
	kind   partKind
	s      string // literal text, variable name, or arithmetic source
	quoted bool   // inside quotes: exempt from field splitting
}

// word is a sequence of parts expanded at run time.
type word []part

func (w word) debug() string {
	var b strings.Builder
	for _, p := range w {
		switch p.kind {
		case partLit:
			b.WriteString(p.s)
		case partVar:
			b.WriteString("$" + p.s)
		case partArith:
			b.WriteString("$((" + p.s + "))")
		}
	}
	return b.String()
}

// literal reports whether the word is a single unquoted literal equal to s
// (used to recognize reserved words).
func (w word) literal() (string, bool) {
	if len(w) == 1 && w[0].kind == partLit && !w[0].quoted {
		return w[0].s, true
	}
	return "", false
}

type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("policy: line %d: %s", e.line, e.msg) }

type lexer struct {
	lines []string
	toks  []token
	docs  []word // heredoc bodies (expandable)
}

// lex tokenizes the whole script eagerly, resolving heredocs.
func lex(src string) (*lexer, error) {
	lx := &lexer{lines: strings.Split(src, "\n")}
	for li := 0; li < len(lx.lines); li++ {
		line := lx.lines[li]
		var pendingDocs []struct {
			tag string
			idx int
		}
		pos := 0
		lineNo := li + 1
		for pos < len(line) {
			c := line[pos]
			switch {
			case c == ' ' || c == '\t':
				pos++
			case c == '#':
				pos = len(line) // comment to end of line
			case c == '|':
				if pos+1 < len(line) && line[pos+1] == '|' {
					lx.emitOp("||", lineNo)
					pos += 2
				} else {
					lx.emitOp("|", lineNo)
					pos++
				}
			case c == '&':
				if pos+1 < len(line) && line[pos+1] == '&' {
					lx.emitOp("&&", lineNo)
					pos += 2
				} else {
					return nil, &lexError{lineNo, "background jobs not supported"}
				}
			case c == ';':
				if pos+1 < len(line) && line[pos+1] == ';' {
					lx.emitOp(";;", lineNo)
					pos += 2
				} else {
					lx.emitOp(";", lineNo)
					pos++
				}
			case c == '(':
				lx.emitOp("(", lineNo)
				pos++
			case c == ')':
				lx.emitOp(")", lineNo)
				pos++
			case c == '<':
				if pos+1 < len(line) && line[pos+1] == '<' {
					pos += 2
					// Lex the tag word.
					for pos < len(line) && (line[pos] == ' ' || line[pos] == '\t') {
						pos++
					}
					start := pos
					for pos < len(line) && !strings.ContainsRune(" \t|;#()", rune(line[pos])) {
						pos++
					}
					tag := strings.Trim(line[start:pos], `"'`)
					if tag == "" {
						return nil, &lexError{lineNo, "heredoc without tag"}
					}
					idx := len(lx.docs)
					lx.docs = append(lx.docs, nil)
					lx.toks = append(lx.toks, token{kind: tokHeredoc, doc: idx, line: lineNo})
					pendingDocs = append(pendingDocs, struct {
						tag string
						idx int
					}{tag, idx})
				} else {
					return nil, &lexError{lineNo, "input redirection not supported"}
				}
			default:
				w, n, err := lexWord(line[pos:], lineNo)
				if err != nil {
					return nil, err
				}
				lx.toks = append(lx.toks, token{kind: tokWord, w: w, line: lineNo})
				pos += n
			}
		}
		lx.toks = append(lx.toks, token{kind: tokNewline, line: lineNo})
		// Collect heredoc bodies following this line.
		for _, pd := range pendingDocs {
			var body []string
			li++
			found := false
			for ; li < len(lx.lines); li++ {
				if strings.TrimRight(lx.lines[li], " \t") == pd.tag {
					found = true
					break
				}
				body = append(body, lx.lines[li])
			}
			if !found {
				return nil, &lexError{lineNo, fmt.Sprintf("heredoc tag %q not terminated", pd.tag)}
			}
			doc, err := lexDocBody(strings.Join(body, "\n")+"\n", lineNo)
			if err != nil {
				return nil, err
			}
			lx.docs[pd.idx] = doc
		}
	}
	lx.toks = append(lx.toks, token{kind: tokEOF, line: len(lx.lines)})
	return lx, nil
}

func (lx *lexer) emitOp(op string, line int) {
	lx.toks = append(lx.toks, token{kind: tokOp, op: op, line: line})
}

// wordBreak reports whether c terminates an unquoted word.
func wordBreak(c byte) bool {
	switch c {
	case ' ', '\t', '|', ';', '#', '(', ')', '&', '<':
		return true
	}
	return false
}

// lexWord scans one word starting at s[0]; returns the word and the bytes
// consumed.
func lexWord(s string, line int) (word, int, error) {
	var w word
	pos := 0
	appendLit := func(text string, quoted bool) {
		if text == "" {
			return
		}
		// Merge adjacent literals with the same quoting.
		if n := len(w); n > 0 && w[n-1].kind == partLit && w[n-1].quoted == quoted {
			w[n-1].s += text
			return
		}
		w = append(w, part{kind: partLit, s: text, quoted: quoted})
	}
	for pos < len(s) && !wordBreak(s[pos]) {
		switch c := s[pos]; c {
		case '\'':
			end := strings.IndexByte(s[pos+1:], '\'')
			if end < 0 {
				return nil, 0, &lexError{line, "unterminated single quote"}
			}
			text := s[pos+1 : pos+1+end]
			if text == "" {
				w = append(w, part{kind: partLit, s: "", quoted: true})
			}
			appendLit(text, true)
			pos += end + 2
		case '"':
			pos++
			start := pos
			empty := true
			for pos < len(s) && s[pos] != '"' {
				if s[pos] == '\\' && pos+1 < len(s) {
					appendLit(s[start:pos], true)
					appendLit(unescape(s[pos+1]), true)
					pos += 2
					start = pos
					empty = false
					continue
				}
				if s[pos] == '$' {
					appendLit(s[start:pos], true)
					p, n, err := lexDollar(s[pos:], line, true)
					if err != nil {
						return nil, 0, err
					}
					w = append(w, p)
					pos += n
					start = pos
					empty = false
					continue
				}
				pos++
			}
			if pos >= len(s) {
				return nil, 0, &lexError{line, "unterminated double quote"}
			}
			if s[start:pos] == "" && empty && len(w) == 0 {
				w = append(w, part{kind: partLit, s: "", quoted: true})
			}
			appendLit(s[start:pos], true)
			pos++ // closing quote
		case '\\':
			if pos+1 >= len(s) {
				return nil, 0, &lexError{line, "dangling backslash"}
			}
			appendLit(string(s[pos+1]), true)
			pos += 2
		case '$':
			p, n, err := lexDollar(s[pos:], line, false)
			if err != nil {
				return nil, 0, err
			}
			w = append(w, p)
			pos += n
		default:
			start := pos
			for pos < len(s) && !wordBreak(s[pos]) &&
				s[pos] != '\'' && s[pos] != '"' && s[pos] != '\\' && s[pos] != '$' {
				pos++
			}
			appendLit(s[start:pos], false)
		}
	}
	if len(w) == 0 {
		return nil, 0, &lexError{line, "empty word"}
	}
	return w, pos, nil
}

func unescape(c byte) string {
	switch c {
	case 'n':
		return "\n"
	case 't':
		return "\t"
	default:
		return string(c)
	}
}

// lexDollar scans a $-expansion at s[0] == '$'.
func lexDollar(s string, line int, quoted bool) (part, int, error) {
	if len(s) < 2 {
		return part{kind: partLit, s: "$", quoted: quoted}, 1, nil
	}
	switch c := s[1]; {
	case c == '(':
		if strings.HasPrefix(s, "$((") {
			depth := 0
			for i := 3; i < len(s)-1; i++ {
				switch s[i] {
				case '(':
					depth++
				case ')':
					if depth == 0 && s[i+1] == ')' {
						return part{kind: partArith, s: s[3:i], quoted: quoted}, i + 2, nil
					}
					depth--
				}
			}
			return part{}, 0, &lexError{line, "unterminated $(( ))"}
		}
		return part{}, 0, &lexError{line, "command substitution not supported"}
	case c == '{':
		end := strings.IndexByte(s, '}')
		if end < 0 {
			return part{}, 0, &lexError{line, "unterminated ${ }"}
		}
		return part{kind: partVar, s: s[2:end], quoted: quoted}, end + 1, nil
	case c >= '0' && c <= '9':
		return part{kind: partVar, s: string(c), quoted: quoted}, 2, nil
	case c == '?' || c == '#' || c == '@' || c == '*':
		return part{kind: partVar, s: string(c), quoted: quoted}, 2, nil
	case isNameByte(c) && !(c >= '0' && c <= '9'):
		end := 1
		for end < len(s) && isNameByte(s[end]) {
			end++
		}
		return part{kind: partVar, s: s[1:end], quoted: quoted}, end, nil
	default:
		return part{kind: partLit, s: "$", quoted: quoted}, 1, nil
	}
}

func isNameByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// lexDocBody turns a heredoc body into an expandable word ($ expansions
// honored, everything else literal).
func lexDocBody(body string, line int) (word, error) {
	var w word
	start := 0
	for i := 0; i < len(body); {
		if body[i] == '$' {
			if start < i {
				w = append(w, part{kind: partLit, s: body[start:i], quoted: true})
			}
			p, n, err := lexDollar(body[i:], line, true)
			if err != nil {
				return nil, err
			}
			w = append(w, p)
			i += n
			start = i
			continue
		}
		i++
	}
	if start < len(body) {
		w = append(w, part{kind: partLit, s: body[start:], quoted: true})
	}
	return w, nil
}
