package policy

import (
	"fmt"
	"strings"
)

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("policy: line %d: %s", e.line, e.msg) }

type parser struct {
	toks []token
	docs []word
	pos  int
}

// Parse compiles a script into its AST. The result is reusable across
// executions.
func Parse(src string) (*Script, error) {
	lx, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: lx.toks, docs: lx.docs}
	list, err := p.parseList(nil)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, &parseError{p.peek().line, fmt.Sprintf("unexpected %v", p.peek())}
	}
	return &Script{root: list, docs: lx.docs, src: src}, nil
}

// MustParse is Parse that panics on error, for compiled-in policies.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) skipSeparators() {
	for {
		t := p.peek()
		if t.kind == tokNewline || (t.kind == tokOp && t.op == ";") {
			p.pos++
			continue
		}
		return
	}
}

// atReserved reports whether the next token is one of the given reserved
// words in command position.
func (p *parser) atReserved(words ...string) (string, bool) {
	t := p.peek()
	if t.kind != tokWord {
		return "", false
	}
	lit, ok := t.w.literal()
	if !ok {
		return "", false
	}
	for _, w := range words {
		if lit == w {
			return lit, true
		}
	}
	return "", false
}

func (p *parser) expectReserved(word string) error {
	p.skipSeparators()
	if _, ok := p.atReserved(word); !ok {
		return &parseError{p.peek().line, fmt.Sprintf("expected %q, got %v", word, p.peek())}
	}
	p.next()
	return nil
}

// parseList parses until EOF or any of the stop reserved words (not
// consumed).
func (p *parser) parseList(stops []string) (*listNode, error) {
	list := &listNode{}
	for {
		p.skipSeparators()
		t := p.peek()
		if t.kind == tokEOF {
			return list, nil
		}
		if t.kind == tokOp && (t.op == ")" || t.op == ";;") {
			return list, nil
		}
		if len(stops) > 0 {
			if _, ok := p.atReserved(stops...); ok {
				return list, nil
			}
		}
		item, err := p.parseAndOr(stops)
		if err != nil {
			return nil, err
		}
		list.items = append(list.items, item)
	}
}

func (p *parser) parseAndOr(stops []string) (node, error) {
	first, err := p.parsePipeline(stops)
	if err != nil {
		return nil, err
	}
	ao := &andOrNode{first: first}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.op == "&&" || t.op == "||") {
			p.next()
			p.skipSeparators() // allow continuation on the next line
			next, err := p.parsePipeline(stops)
			if err != nil {
				return nil, err
			}
			ao.rest = append(ao.rest, andOrLink{op: t.op, next: next})
			continue
		}
		break
	}
	if len(ao.rest) == 0 {
		return ao.first, nil
	}
	return ao, nil
}

func (p *parser) parsePipeline(stops []string) (node, error) {
	first, err := p.parseCommand(stops)
	if err != nil {
		return nil, err
	}
	pipe := &pipeNode{cmds: []node{first}}
	for {
		t := p.peek()
		if t.kind == tokOp && t.op == "|" {
			p.next()
			p.skipSeparators()
			cmd, err := p.parseCommand(stops)
			if err != nil {
				return nil, err
			}
			pipe.cmds = append(pipe.cmds, cmd)
			continue
		}
		break
	}
	if len(pipe.cmds) == 1 {
		return first, nil
	}
	return pipe, nil
}

func (p *parser) parseCommand(stops []string) (node, error) {
	if word, ok := p.atReserved("if", "while", "for", "case"); ok {
		switch word {
		case "if":
			return p.parseIf()
		case "while":
			return p.parseWhile()
		case "for":
			return p.parseFor()
		case "case":
			return p.parseCase()
		}
	}
	return p.parseSimple()
}

func (p *parser) parseIf() (node, error) {
	line := p.peek().line
	p.next() // "if"
	n := &ifNode{}
	for {
		cond, err := p.parseList([]string{"then"})
		if err != nil {
			return nil, err
		}
		if err := p.expectReserved("then"); err != nil {
			return nil, err
		}
		body, err := p.parseList([]string{"elif", "else", "fi"})
		if err != nil {
			return nil, err
		}
		n.arms = append(n.arms, ifArm{cond: cond, body: body})
		p.skipSeparators()
		if kw, ok := p.atReserved("elif", "else", "fi"); ok {
			p.next()
			switch kw {
			case "elif":
				continue
			case "else":
				elseBody, err := p.parseList([]string{"fi"})
				if err != nil {
					return nil, err
				}
				n.elseBody = elseBody
				if err := p.expectReserved("fi"); err != nil {
					return nil, err
				}
				return n, nil
			case "fi":
				return n, nil
			}
		}
		return nil, &parseError{line, "if without fi"}
	}
}

func (p *parser) parseWhile() (node, error) {
	p.next() // "while"
	cond, err := p.parseList([]string{"do"})
	if err != nil {
		return nil, err
	}
	if err := p.expectReserved("do"); err != nil {
		return nil, err
	}
	body, err := p.parseList([]string{"done"})
	if err != nil {
		return nil, err
	}
	if err := p.expectReserved("done"); err != nil {
		return nil, err
	}
	return &whileNode{cond: cond, body: body}, nil
}

func (p *parser) parseFor() (node, error) {
	line := p.peek().line
	p.next() // "for"
	nameTok := p.next()
	name, ok := "", false
	if nameTok.kind == tokWord {
		name, ok = nameTok.w.literal()
	}
	if !ok || name == "" {
		return nil, &parseError{line, "for needs a variable name"}
	}
	if err := p.expectReserved("in"); err != nil {
		return nil, err
	}
	var words []word
	for p.peek().kind == tokWord {
		words = append(words, p.next().w)
	}
	if err := p.expectReserved("do"); err != nil {
		return nil, err
	}
	body, err := p.parseList([]string{"done"})
	if err != nil {
		return nil, err
	}
	if err := p.expectReserved("done"); err != nil {
		return nil, err
	}
	return &forNode{name: name, words: words, body: body}, nil
}

func (p *parser) parseCase() (node, error) {
	line := p.peek().line
	p.next() // "case"
	subjTok := p.next()
	if subjTok.kind != tokWord {
		return nil, &parseError{line, "case needs a subject word"}
	}
	if err := p.expectReserved("in"); err != nil {
		return nil, err
	}
	n := &caseNode{subject: subjTok.w}
	for {
		p.skipSeparators()
		if _, ok := p.atReserved("esac"); ok {
			p.next()
			return n, nil
		}
		if p.peek().kind == tokEOF {
			return nil, &parseError{line, "case without esac"}
		}
		// Optional '(' then patterns separated by '|', then ')'.
		if t := p.peek(); t.kind == tokOp && t.op == "(" {
			p.next()
		}
		var patterns []word
		for {
			t := p.next()
			if t.kind != tokWord {
				return nil, &parseError{t.line, "expected case pattern"}
			}
			patterns = append(patterns, t.w)
			sep := p.next()
			if sep.kind == tokOp && sep.op == "|" {
				continue
			}
			if sep.kind == tokOp && sep.op == ")" {
				break
			}
			return nil, &parseError{sep.line, fmt.Sprintf("expected | or ) in case pattern, got %v", sep)}
		}
		body, err := p.parseList([]string{"esac"})
		if err != nil {
			return nil, err
		}
		n.arms = append(n.arms, caseArm{patterns: patterns, body: body})
		// Arm terminator ';;' is optional before esac.
		p.skipSeparators()
		if t := p.peek(); t.kind == tokOp && t.op == ";;" {
			p.next()
		}
	}
}

func (p *parser) parseSimple() (node, error) {
	n := &simpleNode{heredoc: -1, line: p.peek().line}
	// Leading assignments: WORD of the shape name=value with literal name.
	for {
		t := p.peek()
		if t.kind != tokWord {
			break
		}
		if a, ok := splitAssign(t.w); ok && len(n.words) == 0 {
			n.assigns = append(n.assigns, a)
			p.next()
			continue
		}
		n.words = append(n.words, t.w)
		p.next()
	}
	// Optional heredoc.
	if t := p.peek(); t.kind == tokHeredoc {
		n.heredoc = t.doc
		p.next()
		// Words may follow a heredoc on the same line (rare); accept them.
		for p.peek().kind == tokWord {
			n.words = append(n.words, p.next().w)
		}
	}
	if len(n.assigns) == 0 && len(n.words) == 0 {
		return nil, &parseError{n.line, fmt.Sprintf("expected command, got %v", p.peek())}
	}
	return n, nil
}

// splitAssign recognizes name=value words. The name must be a literal
// prefix; the value keeps its parts.
func splitAssign(w word) (assign, bool) {
	if len(w) == 0 || w[0].kind != partLit || w[0].quoted {
		return assign{}, false
	}
	eq := strings.IndexByte(w[0].s, '=')
	if eq <= 0 {
		return assign{}, false
	}
	name := w[0].s[:eq]
	for i := 0; i < len(name); i++ {
		if !isNameByte(name[i]) || (i == 0 && name[i] >= '0' && name[i] <= '9') {
			return assign{}, false
		}
	}
	val := word{}
	if rest := w[0].s[eq+1:]; rest != "" {
		val = append(val, part{kind: partLit, s: rest})
	}
	val = append(val, w[1:]...)
	return assign{name: name, value: val}, true
}

// Script is a parsed policy script.
type Script struct {
	root *listNode
	docs []word
	src  string
}

// Source returns the script's source text.
func (s *Script) Source() string { return s.src }
