package policy

// AST node types. A script is a list of and-or chains of pipelines of
// commands; compound commands (if/while/for/case) nest lists.

// node is any executable AST node.
type node interface{ isNode() }

// listNode is a sequence of and-or chains separated by ';' or newline.
type listNode struct {
	items []node
}

// andOrNode chains pipelines with && / ||.
type andOrNode struct {
	first node
	rest  []andOrLink
}

type andOrLink struct {
	op   string // "&&" or "||"
	next node
}

// pipeNode connects commands with '|'.
type pipeNode struct {
	cmds []node
}

// simpleNode is assignments + argv words (+ optional heredoc stdin).
type simpleNode struct {
	assigns []assign
	words   []word
	heredoc int // index into lexer.docs, -1 if none
	line    int
}

type assign struct {
	name  string
	value word
}

// ifNode: if cond then body [elif...] [else] fi.
type ifNode struct {
	arms     []ifArm
	elseBody *listNode
}

type ifArm struct {
	cond *listNode
	body *listNode
}

// whileNode: while cond do body done.
type whileNode struct {
	cond *listNode
	body *listNode
}

// forNode: for name in words; do body done.
type forNode struct {
	name  string
	words []word
	body  *listNode
}

// caseNode: case word in pattern) body ;; ... esac.
type caseNode struct {
	subject word
	arms    []caseArm
}

type caseArm struct {
	patterns []word
	body     *listNode
}

func (*listNode) isNode()   {}
func (*andOrNode) isNode()  {}
func (*pipeNode) isNode()   {}
func (*simpleNode) isNode() {}
func (*ifNode) isNode()     {}
func (*whileNode) isNode()  {}
func (*forNode) isNode()    {}
func (*caseNode) isNode()   {}
