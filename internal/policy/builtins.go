package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// invoke dispatches argv to a builtin or a host-bound command.
func (in *Interp) invoke(argv []string, stdin string) (stdout string, status int, err error) {
	name := argv[0]
	switch name {
	case ":", "true":
		return "", 0, nil
	case "false":
		return "", 1, nil
	case "echo":
		return strings.Join(argv[1:], " ") + "\n", 0, nil
	case "cat":
		// cat without file arguments echoes stdin (the heredoc case).
		return stdin, 0, nil
	case "exit":
		st := in.status
		if len(argv) > 1 {
			st, _ = strconv.Atoi(argv[1])
		}
		return "", 0, &exitError{status: st}
	case "shift":
		n := 1
		if len(argv) > 1 {
			v, convErr := strconv.Atoi(argv[1])
			if convErr != nil || v < 0 {
				return "", 1, fmt.Errorf("policy: shift: bad count %q", argv[1])
			}
			n = v
		}
		if n > len(in.args) {
			return "", 1, nil
		}
		in.args = in.args[n:]
		in.optind = 0 // positional params changed; restart option parsing
		return "", 0, nil
	case "test", "[":
		args := argv[1:]
		if name == "[" {
			if len(args) == 0 || args[len(args)-1] != "]" {
				return "", 2, fmt.Errorf("policy: [ without closing ]")
			}
			args = args[:len(args)-1]
		}
		ok, testErr := evalTest(args)
		if testErr != nil {
			return "", 2, testErr
		}
		if ok {
			return "", 0, nil
		}
		return "", 1, nil
	case "sleep":
		if len(argv) < 2 {
			return "", 1, fmt.Errorf("policy: sleep: missing duration")
		}
		secs, convErr := strconv.ParseFloat(argv[1], 64)
		if convErr != nil || secs < 0 {
			return "", 1, fmt.Errorf("policy: sleep: bad duration %q", argv[1])
		}
		in.sleep(time.Duration(secs * float64(time.Second)))
		return "", 0, nil
	case "getopts":
		return in.getopts(argv[1:])
	case "read":
		// read var: first line of stdin into var.
		if len(argv) < 2 {
			return "", 1, nil
		}
		line := stdin
		if i := strings.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		in.vars[argv[1]] = line
		if stdin == "" {
			return "", 1, nil
		}
		return "", 0, nil
	}
	if fn, ok := in.commands[name]; ok {
		out, st := fn(argv, stdin)
		return out, st, nil
	}
	return "", 127, fmt.Errorf("policy: unknown command %q", name)
}

// getopts implements the POSIX getopts builtin over the positional
// parameters: `getopts a:b opt` sets opt (and OPTARG) per call and fails
// when options are exhausted.
func (in *Interp) getopts(args []string) (string, int, error) {
	if len(args) < 2 {
		return "", 2, fmt.Errorf("policy: getopts: usage: getopts optstring name")
	}
	optstring, varname := args[0], args[1]
	if in.optind == 0 {
		in.optind = 1
	}
	idx := in.optind - 1
	if idx >= len(in.args) {
		in.vars[varname] = "?"
		return "", 1, nil
	}
	arg := in.args[idx]
	if len(arg) < 2 || arg[0] != '-' || arg == "--" {
		in.vars[varname] = "?"
		return "", 1, nil
	}
	opt := arg[1]
	spec := strings.IndexByte(optstring, opt)
	if spec < 0 {
		in.vars[varname] = "?"
		delete(in.vars, "OPTARG")
		in.optind++
		return "", 0, nil // unknown option: opt='?', status 0 (keep looping)
	}
	in.vars[varname] = string(opt)
	if spec+1 < len(optstring) && optstring[spec+1] == ':' {
		// Option takes an argument: either the rest of this arg or the next.
		if len(arg) > 2 {
			in.vars["OPTARG"] = arg[2:]
			in.optind++
		} else {
			if idx+1 >= len(in.args) {
				in.vars[varname] = "?"
				return "", 1, nil
			}
			in.vars["OPTARG"] = in.args[idx+1]
			in.optind += 2
		}
	} else {
		delete(in.vars, "OPTARG")
		in.optind++
	}
	return "", 0, nil
}

// evalTest implements the test/[ builtin's expression language: unary
// string tests, binary string/integer comparisons, and ! negation.
func evalTest(args []string) (bool, error) {
	if len(args) == 0 {
		return false, nil
	}
	if args[0] == "!" {
		ok, err := evalTest(args[1:])
		return !ok, err
	}
	switch len(args) {
	case 1:
		return args[0] != "", nil
	case 2:
		switch args[0] {
		case "-z":
			return args[1] == "", nil
		case "-n":
			return args[1] != "", nil
		}
		return false, fmt.Errorf("policy: test: bad unary %q", args[0])
	case 3:
		a, op, b := args[0], args[1], args[2]
		switch op {
		case "=", "==":
			return a == b, nil
		case "!=":
			return a != b, nil
		case "-eq", "-ne", "-lt", "-le", "-gt", "-ge":
			x, err1 := strconv.ParseInt(a, 10, 64)
			y, err2 := strconv.ParseInt(b, 10, 64)
			if err1 != nil || err2 != nil {
				return false, fmt.Errorf("policy: test: integer expected: %q %s %q", a, op, b)
			}
			switch op {
			case "-eq":
				return x == y, nil
			case "-ne":
				return x != y, nil
			case "-lt":
				return x < y, nil
			case "-le":
				return x <= y, nil
			case "-gt":
				return x > y, nil
			case "-ge":
				return x >= y, nil
			}
		}
		return false, fmt.Errorf("policy: test: bad operator %q", op)
	}
	return false, fmt.Errorf("policy: test: too many arguments")
}
