package policy

import (
	"strings"
	"testing"
	"time"
)

func run(t *testing.T, src string, opts ...Option) (*Interp, int) {
	t.Helper()
	in := NewInterp(opts...)
	status, err := in.RunSource(src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return in, status
}

func TestAssignmentAndExpansion(t *testing.T) {
	in, _ := run(t, `
x=hello
y=$x
z="$x world"
w='$x world'
`)
	if in.Var("y") != "hello" {
		t.Fatalf("y = %q", in.Var("y"))
	}
	if in.Var("z") != "hello world" {
		t.Fatalf("z = %q", in.Var("z"))
	}
	if in.Var("w") != "$x world" {
		t.Fatalf("w = %q (single quotes must not expand)", in.Var("w"))
	}
}

func TestPositionalParams(t *testing.T) {
	in, _ := run(t, `
a=$1
b=$2
n=$#
shift 1
c=$1
m=$#
`, WithArgs("one", "two", "three"))
	for k, want := range map[string]string{"a": "one", "b": "two", "n": "3", "c": "two", "m": "2"} {
		if got := in.Var(k); got != want {
			t.Errorf("%s = %q, want %q", k, got, want)
		}
	}
}

func TestEchoToStdout(t *testing.T) {
	var sb strings.Builder
	run(t, `echo hello world`, WithStdout(&sb))
	if sb.String() != "hello world\n" {
		t.Fatalf("stdout = %q", sb.String())
	}
}

func TestStatusVariable(t *testing.T) {
	in, _ := run(t, `
false
a=$?
true
b=$?
`)
	if in.Var("a") != "1" || in.Var("b") != "0" {
		t.Fatalf("a=%q b=%q", in.Var("a"), in.Var("b"))
	}
}

func TestIfElse(t *testing.T) {
	in, _ := run(t, `
x=5
if [ $x -eq 5 ]; then
	r=five
elif [ $x -eq 6 ]; then
	r=six
else
	r=other
fi
`)
	if in.Var("r") != "five" {
		t.Fatalf("r = %q", in.Var("r"))
	}
}

func TestElifAndElse(t *testing.T) {
	src := `
if [ $x -eq 1 ]; then r=a
elif [ $x -eq 2 ]; then r=b
else r=c
fi
`
	for x, want := range map[string]string{"1": "a", "2": "b", "9": "c"} {
		in, _ := run(t, src, WithVar("x", x))
		if in.Var("r") != want {
			t.Errorf("x=%s: r=%q want %q", x, in.Var("r"), want)
		}
	}
}

func TestNegatedTest(t *testing.T) {
	// The Fig. 2 idiom: if [ ! $reason -eq 6 ].
	in, _ := run(t, `
reason=2
if [ ! $reason -eq 6 ]; then
	r=backoff
fi
`)
	if in.Var("r") != "backoff" {
		t.Fatalf("r = %q", in.Var("r"))
	}
	in, _ = run(t, `
reason=6
r=none
if [ ! $reason -eq 6 ]; then
	r=backoff
fi
`)
	if in.Var("r") != "none" {
		t.Fatalf("r = %q", in.Var("r"))
	}
}

func TestWhileLoop(t *testing.T) {
	in, _ := run(t, `
i=0
sum=0
while [ $i -lt 5 ]; do
	sum=$(($sum + $i))
	i=$(($i + 1))
done
`)
	if in.Var("sum") != "10" {
		t.Fatalf("sum = %q", in.Var("sum"))
	}
}

func TestForLoop(t *testing.T) {
	in, _ := run(t, `
acc=
for x in a b c; do
	acc=$acc$x
done
`)
	if in.Var("acc") != "abc" {
		t.Fatalf("acc = %q", in.Var("acc"))
	}
}

func TestCaseGlob(t *testing.T) {
	src := `
case $x in
	eth*) r=net ;;
	disk|sata) r=blk ;;
	?) r=single ;;
	*) r=other ;;
esac
`
	for x, want := range map[string]string{
		"eth0": "net", "ethernet": "net", "sata": "blk", "disk": "blk",
		"a": "single", "printer": "other",
	} {
		in, _ := run(t, src, WithVar("x", x))
		if in.Var("r") != want {
			t.Errorf("x=%q: r=%q, want %q", x, in.Var("r"), want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]string{
		`$((1 + 2 * 3))`:       "7",
		`$(( (1+2) * 3 ))`:     "9",
		`$((1 << 4))`:          "16",
		`$((16 >> 2))`:         "4",
		`$((7 % 3))`:           "1",
		`$((10 / 2))`:          "5",
		`$((5 > 3))`:           "1",
		`$((5 < 3))`:           "0",
		`$((!0))`:              "1",
		`$((~0))`:              "-1",
		`$((-4))`:              "-4",
		`$((1 ? 10 : 20))`:     "10",
		`$((0 ? 10 : 20))`:     "20",
		`$((3 & 6))`:           "2",
		`$((3 | 6))`:           "7",
		`$((3 ^ 6))`:           "5",
		`$((2 == 2 && 1 < 2))`: "1",
		`$((0 || 0))`:          "0",
	}
	for expr, want := range cases {
		in, _ := run(t, "x="+expr)
		if got := in.Var("x"); got != want {
			t.Errorf("%s = %q, want %q", expr, got, want)
		}
	}
}

func TestArithWithVariables(t *testing.T) {
	// Both $name and bare name forms, as in Fig. 2's
	// sleep $((1 << ($repetition - 1))).
	in, _ := run(t, `
repetition=4
a=$((1 << ($repetition - 1)))
b=$((repetition * 2))
`)
	if in.Var("a") != "8" || in.Var("b") != "8" {
		t.Fatalf("a=%q b=%q", in.Var("a"), in.Var("b"))
	}
}

func TestPipelines(t *testing.T) {
	var got string
	in := NewInterp(WithCommand("upper", func(argv []string, stdin string) (string, int) {
		return strings.ToUpper(stdin), 0
	}), WithCommand("sink", func(argv []string, stdin string) (string, int) {
		got = stdin
		return "", 0
	}))
	if _, err := in.RunSource(`echo hello | upper | sink`); err != nil {
		t.Fatal(err)
	}
	if got != "HELLO\n" {
		t.Fatalf("got %q", got)
	}
}

func TestAndOrChains(t *testing.T) {
	in, _ := run(t, `
true && a=yes
false && b=yes
false || c=yes
true || d=yes
`)
	if in.Var("a") != "yes" || in.Var("b") != "" || in.Var("c") != "yes" || in.Var("d") != "" {
		t.Fatalf("a=%q b=%q c=%q d=%q", in.Var("a"), in.Var("b"), in.Var("c"), in.Var("d"))
	}
}

func TestHeredoc(t *testing.T) {
	var got string
	in := NewInterp(WithCommand("sink", func(argv []string, stdin string) (string, int) {
		got = stdin
		return "", 0
	}))
	_, err := in.RunSource(`
name=world
cat << END | sink
hello $name
second line
END
`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello world\nsecond line\n" {
		t.Fatalf("heredoc = %q", got)
	}
}

func TestGetopts(t *testing.T) {
	in, _ := run(t, `
aval=
bseen=
while getopts a:b option; do
	case $option in
	a) aval=$OPTARG ;;
	b) bseen=yes ;;
	esac
done
`, WithArgs("-b", "-a", "admin@example.com", "tail"))
	if in.Var("aval") != "admin@example.com" {
		t.Fatalf("aval = %q", in.Var("aval"))
	}
	if in.Var("bseen") != "yes" {
		t.Fatalf("bseen = %q", in.Var("bseen"))
	}
}

func TestGetoptsNoOptions(t *testing.T) {
	in, _ := run(t, `
hits=0
while getopts a: option; do
	hits=$(($hits + 1))
done
`, WithArgs("plain", "args"))
	if in.Var("hits") != "0" {
		t.Fatalf("hits = %q", in.Var("hits"))
	}
}

func TestExitStatus(t *testing.T) {
	in := NewInterp()
	status, err := in.RunSource(`
exit 3
x=never
`)
	if err != nil {
		t.Fatal(err)
	}
	if status != 3 {
		t.Fatalf("status = %d", status)
	}
	if in.Var("x") != "" {
		t.Fatal("execution continued after exit")
	}
}

func TestHostCommand(t *testing.T) {
	var calls [][]string
	in := NewInterp(WithCommand("service", func(argv []string, stdin string) (string, int) {
		calls = append(calls, argv)
		return "", 0
	}))
	if _, err := in.RunSource(`service restart eth0`); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0][1] != "restart" || calls[0][2] != "eth0" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestUnknownCommandErrors(t *testing.T) {
	in := NewInterp()
	if _, err := in.RunSource(`frobnicate`); err == nil {
		t.Fatal("unknown command did not error")
	}
}

func TestSleepUsesHostClock(t *testing.T) {
	var slept time.Duration
	in := NewInterp(WithSleep(func(d time.Duration) { slept += d }))
	if _, err := in.RunSource(`sleep 2`); err != nil {
		t.Fatal(err)
	}
	if slept != 2*time.Second {
		t.Fatalf("slept %v", slept)
	}
}

func TestRunawayScriptStopped(t *testing.T) {
	in := NewInterp()
	_, err := in.RunSource(`
while true; do
	:
done
`)
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("err = %v, want step-limit error", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`if true; then echo hi`,  // missing fi
		`while true; do echo hi`, // missing done
		`case x in`,              // missing esac
		`echo "unterminated`,     // bad quote
		`echo 'unterminated`,     // bad quote
		`cat << EOF`,             // unterminated heredoc
		`echo $((1 + 2)`,         // unterminated arith is a lex error
		`for do done`,            // bad for
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "anything", true},
		{"*", "", true},
		{"eth.*", "eth.rtl8139", true},
		{"eth.*", "disk.sata", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*.log", "x.log", true},
		{"*.log", "x.logs", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXcYb", false},
		{"exact", "exact", true},
		{"exact", "exacT", false},
	}
	for _, tc := range cases {
		if got := globMatch(tc.pat, tc.s); got != tc.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

// genericScript is the paper's Fig. 2 script, modulo mail's -s flag
// handling (our mail host command takes the subject as given).
const genericScript = `
component=$1
reason=$2
repetition=$3
shift 3

if [ ! $reason -eq 6 ]; then
	sleep $((1 << ($repetition - 1)))
fi
service restart $component
status=$?

while getopts a: option; do
	case $option in
	a)
		cat << END | mail -s "Failure Alert" "$OPTARG"
failure: $component, $reason, $repetition
restart status: $status
END
		;;
	esac
done
`

func TestFig2GenericScriptRestartsWithBackoff(t *testing.T) {
	var slept []time.Duration
	var restarts []string
	in := NewInterp(
		WithSleep(func(d time.Duration) { slept = append(slept, d) }),
		WithCommand("service", func(argv []string, stdin string) (string, int) {
			restarts = append(restarts, strings.Join(argv[1:], " "))
			return "", 0
		}),
		WithCommand("mail", func(argv []string, stdin string) (string, int) {
			t.Errorf("mail sent without -a flag: %v", argv)
			return "", 0
		}),
		WithArgs("eth.rtl8139", "1", "3"),
	)
	if _, err := in.RunSource(genericScript); err != nil {
		t.Fatal(err)
	}
	// repetition 3 -> backoff 1 << 2 = 4 seconds.
	if len(slept) != 1 || slept[0] != 4*time.Second {
		t.Fatalf("slept = %v, want [4s]", slept)
	}
	if len(restarts) != 1 || restarts[0] != "restart eth.rtl8139" {
		t.Fatalf("restarts = %v", restarts)
	}
}

func TestFig2GenericScriptSkipsBackoffForUpdate(t *testing.T) {
	var slept []time.Duration
	in := NewInterp(
		WithSleep(func(d time.Duration) { slept = append(slept, d) }),
		WithCommand("service", func(argv []string, stdin string) (string, int) { return "", 0 }),
		WithArgs("disk.sata", "6", "1"), // reason 6 = dynamic update
	)
	if _, err := in.RunSource(genericScript); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 0 {
		t.Fatalf("slept = %v, want none for dynamic update", slept)
	}
}

func TestFig2GenericScriptSendsAlert(t *testing.T) {
	var mailTo, mailBody, mailSubj string
	in := NewInterp(
		WithCommand("service", func(argv []string, stdin string) (string, int) { return "", 7 }),
		WithCommand("mail", func(argv []string, stdin string) (string, int) {
			// argv: mail -s "Failure Alert" addr
			for i, a := range argv {
				if a == "-s" && i+1 < len(argv) {
					mailSubj = argv[i+1]
				}
			}
			mailTo = argv[len(argv)-1]
			mailBody = stdin
			return "", 0
		}),
		WithArgs("eth.dp8390", "4", "1", "-a", "root@example.org"),
	)
	if _, err := in.RunSource(genericScript); err != nil {
		t.Fatal(err)
	}
	if mailTo != "root@example.org" {
		t.Fatalf("mail to = %q", mailTo)
	}
	if mailSubj != "Failure Alert" {
		t.Fatalf("subject = %q", mailSubj)
	}
	if !strings.Contains(mailBody, "failure: eth.dp8390, 4, 1") {
		t.Fatalf("body = %q", mailBody)
	}
	if !strings.Contains(mailBody, "restart status: 7") {
		t.Fatalf("body = %q", mailBody)
	}
}

func TestBackoffSequenceIsExponential(t *testing.T) {
	// Repeated failures 1..6 must sleep 1,2,4,8,16,32 seconds.
	for rep := 1; rep <= 6; rep++ {
		var slept time.Duration
		in := NewInterp(
			WithSleep(func(d time.Duration) { slept += d }),
			WithCommand("service", func(argv []string, stdin string) (string, int) { return "", 0 }),
			WithArgs("drv", "1", strings.TrimSpace(string(rune('0'+rep)))),
		)
		if _, err := in.RunSource(genericScript); err != nil {
			t.Fatal(err)
		}
		want := time.Duration(1<<(rep-1)) * time.Second
		if slept != want {
			t.Fatalf("rep %d: slept %v, want %v", rep, slept, want)
		}
	}
}

func TestScriptReuse(t *testing.T) {
	s := MustParse(`x=$(($1 * 2))`)
	for i := 1; i <= 3; i++ {
		in := NewInterp(WithArgs(strings.TrimSpace(string(rune('0' + i)))))
		if _, err := in.Run(s); err != nil {
			t.Fatal(err)
		}
		want := strings.TrimSpace(string(rune('0' + 2*i)))
		if in.Var("x") != want {
			t.Fatalf("run %d: x=%q want %q", i, in.Var("x"), want)
		}
	}
}

func TestEmptyAndCommentOnlyScript(t *testing.T) {
	_, status := run(t, "\n# just a comment\n\n")
	if status != 0 {
		t.Fatalf("status = %d", status)
	}
}

func TestQuotedEmptyArg(t *testing.T) {
	var argv []string
	in := NewInterp(WithCommand("probe", func(a []string, stdin string) (string, int) {
		argv = a
		return "", 0
	}))
	if _, err := in.RunSource(`probe "" second`); err != nil {
		t.Fatal(err)
	}
	if len(argv) != 3 || argv[1] != "" || argv[2] != "second" {
		t.Fatalf("argv = %q", argv)
	}
}

func TestFieldSplittingUnquoted(t *testing.T) {
	var argv []string
	in := NewInterp(WithCommand("probe", func(a []string, stdin string) (string, int) {
		argv = a
		return "", 0
	}), WithVar("v", "one two  three"))
	if _, err := in.RunSource(`probe $v "$v"`); err != nil {
		t.Fatal(err)
	}
	if len(argv) != 5 {
		t.Fatalf("argv = %q (want split + unsplit)", argv)
	}
	if argv[4] != "one two  three" {
		t.Fatalf("quoted arg = %q", argv[4])
	}
}
