// Package proc implements the process manager (PM). PM is the parent-side
// bookkeeper of paper §5.1: it observes every system-process death through
// the kernel, records the exit status or killing signal, and reports it to
// the reincarnation server — the SIGCHLD path that feeds defect classes
// 1–3. It also delivers user-initiated signals ("killed by user", and the
// crash-simulation scripts' SIGKILL).
//
// Notably, PM itself needs *zero* recovery-specific code (Fig. 9 lists the
// process manager at 0 recovery LoC): everything here is ordinary POSIX
// process management; the recovery logic lives in the reincarnation server.
package proc

import (
	"resilientos/internal/kernel"
	"resilientos/internal/proto"
)

// Label is PM's stable component label.
const Label = "pm"

// Privileges returns the privilege set PM runs with.
func Privileges() kernel.Privileges {
	return kernel.Privileges{
		AllowAllIPC: true,
		Calls:       []kernel.Call{kernel.CallKill},
		UID:         0,
	}
}

// PM is the process manager.
type PM struct {
	ctx        *kernel.Ctx
	subscriber kernel.Endpoint // the reincarnation server, once subscribed
	backlog    []kernel.Message
}

// Start spawns the process manager on k and returns its endpoint. The
// kernel death hook is registered immediately so no death is missed
// between boot steps.
func Start(k *kernel.Kernel) (kernel.Endpoint, error) {
	pm := &PM{}
	ctx, err := k.Spawn(Label, Privileges(), pm.run)
	if err != nil {
		return kernel.None, err
	}
	pmEp := ctx.Endpoint()
	k.OnDeath(func(label string, ep kernel.Endpoint, cause kernel.Cause) {
		if label == Label {
			return // PM does not report its own death
		}
		msg := exitEventMessage(label, ep, cause)
		// Hand the event to PM's message loop; PM forwards it to the
		// subscriber (the reincarnation server).
		_ = k.PostAsync(pmEp, msg)
	})
	return pmEp, nil
}

func exitEventMessage(label string, ep kernel.Endpoint, cause kernel.Cause) kernel.Message {
	msg := kernel.Message{
		Type: proto.PMExitEvent,
		Name: label,
		Arg1: int64(ep),
	}
	switch cause.Kind {
	case kernel.CauseExit:
		msg.Arg2 = proto.CauseExit
		msg.Arg3 = int64(cause.Status)
	case kernel.CauseSignal:
		msg.Arg2 = proto.CauseSignal
		msg.Arg3 = int64(cause.Signal)
	case kernel.CauseException:
		msg.Arg2 = proto.CauseException
		msg.Arg3 = int64(cause.Signal)
		msg.Arg4 = int64(cause.Exc)
	}
	return msg
}

// run is PM's message loop.
func (pm *PM) run(c *kernel.Ctx) {
	pm.ctx = c
	for {
		m, err := c.Receive(kernel.Any)
		if err != nil {
			return
		}
		switch m.Type {
		case proto.PMExitEvent:
			// Kernel-originated (Source == System): forward to subscriber.
			if m.Source != kernel.System {
				continue // forged exit events are ignored
			}
			pm.forward(m)
		case proto.PMSubscribe:
			pm.subscriber = m.Source
			reply := kernel.Message{Type: proto.PMAck, Arg1: proto.OK}
			_ = c.Send(m.Source, reply)
			// Drain anything that died before the subscriber arrived.
			backlog := pm.backlog
			pm.backlog = nil
			for _, ev := range backlog {
				pm.forward(ev)
			}
		case proto.PMKill:
			pm.kill(m)
		}
	}
}

func (pm *PM) forward(ev kernel.Message) {
	if pm.subscriber == kernel.None || pm.subscriber == 0 {
		pm.backlog = append(pm.backlog, ev)
		return
	}
	ev.Source = 0 // rewritten by the kernel on send
	if err := pm.ctx.AsyncSend(pm.subscriber, ev); err != nil {
		pm.backlog = append(pm.backlog, ev)
		pm.subscriber = kernel.None
	}
}

func (pm *PM) kill(m kernel.Message) {
	reply := kernel.Message{Type: proto.PMAck, Arg1: proto.OK}
	target := pm.ctx.LookupLabel(m.Name)
	if target == kernel.None {
		reply.Arg1 = proto.ErrNotFound
	} else if err := pm.ctx.Kill(target, kernel.Signal(m.Arg1)); err != nil {
		reply.Arg1 = proto.ErrIO
	}
	_ = pm.ctx.Send(m.Source, reply)
}
