package proc

import (
	"testing"
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/proto"
	"resilientos/internal/sim"
)

func bootPM(t *testing.T) (*sim.Env, *kernel.Kernel, kernel.Endpoint) {
	t.Helper()
	env := sim.NewEnv(1)
	k := kernel.New(env)
	ep, err := Start(k)
	if err != nil {
		t.Fatal(err)
	}
	return env, k, ep
}

// subscribe spawns an "rs" process that subscribes and collects exit
// events into the returned slice.
func subscribe(t *testing.T, k *kernel.Kernel, pmEp kernel.Endpoint) *[]kernel.Message {
	t.Helper()
	events := &[]kernel.Message{}
	_, err := k.Spawn("rs", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		if _, err := c.SendRec(pmEp, kernel.Message{Type: proto.PMSubscribe}); err != nil {
			t.Errorf("subscribe: %v", err)
			return
		}
		for {
			m, err := c.Receive(kernel.Any)
			if err != nil {
				return
			}
			if m.Type == proto.PMExitEvent {
				*events = append(*events, m)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestExitEventForPanic(t *testing.T) {
	env, k, pmEp := bootPM(t)
	events := subscribe(t, k, pmEp)
	k.Spawn("drv", kernel.Privileges{}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		c.Exit(2)
	})
	env.Run(3 * time.Second)
	if len(*events) != 1 {
		t.Fatalf("events = %d", len(*events))
	}
	e := (*events)[0]
	if e.Name != "drv" || e.Arg2 != proto.CauseExit || e.Arg3 != 2 {
		t.Fatalf("event = %+v", e)
	}
}

func TestExitEventForException(t *testing.T) {
	env, k, pmEp := bootPM(t)
	events := subscribe(t, k, pmEp)
	k.Spawn("drv", kernel.Privileges{}, func(c *kernel.Ctx) {
		c.Trap(kernel.ExcCPU)
	})
	env.Run(time.Second)
	if len(*events) != 1 {
		t.Fatalf("events = %d", len(*events))
	}
	e := (*events)[0]
	if e.Arg2 != proto.CauseException || kernel.Exception(e.Arg4) != kernel.ExcCPU {
		t.Fatalf("event = %+v", e)
	}
}

func TestBacklogDeliveredToLateSubscriber(t *testing.T) {
	env, k, pmEp := bootPM(t)
	// Something dies before the subscriber exists.
	k.Spawn("early", kernel.Privileges{}, func(c *kernel.Ctx) { c.Exit(1) })
	env.Run(time.Second)
	events := subscribe(t, k, pmEp)
	env.Run(time.Second)
	if len(*events) != 1 || (*events)[0].Name != "early" {
		t.Fatalf("backlog events = %+v", *events)
	}
}

func TestPMKillByLabel(t *testing.T) {
	env, k, pmEp := bootPM(t)
	events := subscribe(t, k, pmEp)
	k.Spawn("victim", kernel.Privileges{}, func(c *kernel.Ctx) {
		c.Sleep(time.Hour)
	})
	var ack int64 = -99
	k.Spawn("user", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		c.Sleep(time.Second)
		reply, err := c.SendRec(pmEp, kernel.Message{
			Type: proto.PMKill, Name: "victim", Arg1: int64(kernel.SIGKILL),
		})
		if err != nil {
			t.Errorf("kill: %v", err)
			return
		}
		ack = reply.Arg1
		c.Sleep(time.Hour) // stay alive; only the victim's event matters
	})
	env.Run(3 * time.Second)
	if ack != proto.OK {
		t.Fatalf("ack = %d", ack)
	}
	if len(*events) != 1 || (*events)[0].Arg2 != proto.CauseSignal {
		t.Fatalf("events = %+v", *events)
	}
	if (*events)[0].Name != "victim" {
		t.Fatalf("event for %q", (*events)[0].Name)
	}
}

func TestPMKillUnknownLabel(t *testing.T) {
	env, k, pmEp := bootPM(t)
	var ack int64
	k.Spawn("user", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		reply, err := c.SendRec(pmEp, kernel.Message{
			Type: proto.PMKill, Name: "ghost", Arg1: int64(kernel.SIGKILL),
		})
		if err != nil {
			t.Errorf("kill: %v", err)
			return
		}
		ack = reply.Arg1
	})
	env.Run(time.Second)
	if ack != proto.ErrNotFound {
		t.Fatalf("ack = %d, want ErrNotFound", ack)
	}
}

func TestForgedExitEventIgnored(t *testing.T) {
	env, k, pmEp := bootPM(t)
	events := subscribe(t, k, pmEp)
	k.Spawn("forger", kernel.Privileges{AllowAllIPC: true}, func(c *kernel.Ctx) {
		_ = c.AsyncSend(pmEp, kernel.Message{
			Type: proto.PMExitEvent, Name: "fake", Arg2: proto.CauseExit,
		})
		c.Sleep(time.Hour) // stay alive; its own death is not the point
	})
	env.Run(time.Second)
	if len(*events) != 0 {
		t.Fatalf("forged event forwarded: %+v", *events)
	}
}
