package hw

import (
	"resilientos/internal/kernel"
	"resilientos/internal/sim"
)

// Character devices. These model the essential property the paper builds
// §6.3 on: character streams are *not* idempotent. Input can be read from
// the controller only once (a dead driver loses it), and there is no way to
// tell how much of an output stream reached the device, so transparent
// recovery is impossible and the failure must be pushed up to the
// application layer.

// Character device register offsets (shared by audio/printer/burner).
const (
	CharRegCmd    = 0x00
	CharRegStatus = 0x04
)

// Character device commands.
const (
	CharCmdReset = 1
	CharCmdStart = 2
	CharCmdStop  = 3
)

// Character device status bits.
const (
	CharStatReady   = 1 << 0
	CharStatRunning = 1 << 1
	CharStatLowBuf  = 1 << 2 // playback buffer below refill watermark
	CharStatInAvail = 1 << 3 // capture bytes available
)

// ---------------------------------------------------------------------------
// Audio codec

// AudioConfig configures the audio device.
type AudioConfig struct {
	Base      uint32
	IRQ       int
	PlayRate  int64    // playback consumption, bytes/s
	BufSize   int      // playback buffer capacity in bytes
	Watermark int      // refill IRQ threshold
	Tick      sim.Time // consumption granularity

	// CaptureRate enables the input side: the codec produces this many
	// bytes/s of samples into a small ring. Input can be read from the
	// controller exactly once: if no driver drains the ring, samples are
	// gone forever (§6.3's read-once property).
	CaptureRate int64
	// CaptureBuf is the capture ring capacity (default 16 KiB).
	CaptureBuf int
}

// Audio is a playback codec: the driver feeds samples, the device consumes
// them at a fixed rate, and an empty buffer while running is an audible
// hiccup.
type Audio struct {
	env *sim.Env
	k   *kernel.Kernel
	cfg AudioConfig

	running bool
	buf     int // bytes buffered (content does not matter, only timing)

	capture    []byte // capture ring (content is sequence-numbered)
	captureSeq uint32 // next sample sequence number

	Consumed    int64
	Underruns   int   // distinct hiccup episodes
	CaptureMade int64 // capture bytes produced by the codec
	CaptureLost int64 // capture bytes dropped because nobody read them
	inUnderrun  bool  // currently starved
	ticker      *sim.Event
}

var _ kernel.Device = (*Audio)(nil)

// NewAudio creates the audio device and maps it at [Base, Base+0x10).
func NewAudio(env *sim.Env, k *kernel.Kernel, cfg AudioConfig) *Audio {
	if cfg.PlayRate == 0 {
		cfg.PlayRate = 176_400 // 44.1 kHz, 16-bit stereo
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = 65536
	}
	if cfg.Watermark == 0 {
		cfg.Watermark = cfg.BufSize / 4
	}
	if cfg.Tick == 0 {
		cfg.Tick = 10 * sim.Time(1e6) // 10ms
	}
	if cfg.CaptureBuf == 0 {
		cfg.CaptureBuf = 16 << 10
	}
	a := &Audio{env: env, k: k, cfg: cfg}
	k.MapDevice(kernel.PortRange{Lo: cfg.Base, Hi: cfg.Base + 0x10}, a)
	if cfg.CaptureRate > 0 {
		a.scheduleCapture()
	}
	return a
}

// scheduleCapture runs the codec's input side: samples appear whether or
// not a driver is alive to read them, and overflow is silent loss.
func (a *Audio) scheduleCapture() {
	a.env.Schedule(a.cfg.Tick, func() {
		n := int(a.cfg.CaptureRate * int64(a.cfg.Tick) / int64(sim.Time(1e9)))
		n &^= 3 // whole 4-byte samples
		for i := 0; i < n; i += 4 {
			a.CaptureMade += 4
			if len(a.capture)+4 > a.cfg.CaptureBuf {
				a.CaptureLost += 4
				a.captureSeq++ // the sample existed; it is simply gone
				continue
			}
			var w [4]byte
			w[0] = byte(a.captureSeq)
			w[1] = byte(a.captureSeq >> 8)
			w[2] = byte(a.captureSeq >> 16)
			w[3] = byte(a.captureSeq >> 24)
			a.capture = append(a.capture, w[:]...)
			a.captureSeq++
		}
		if len(a.capture) > 0 {
			a.k.RaiseIRQ(a.cfg.IRQ)
		}
		a.scheduleCapture()
	})
}

// PortRange returns the ports an audio driver needs.
func (a *Audio) PortRange() kernel.PortRange {
	return kernel.PortRange{Lo: a.cfg.Base, Hi: a.cfg.Base + 0x10}
}

// IRQ returns the audio interrupt line.
func (a *Audio) IRQ() int { return a.cfg.IRQ }

// PortIn implements kernel.Device.
func (a *Audio) PortIn(port uint32) (uint32, error) {
	if port-a.cfg.Base == CharRegStatus {
		var s uint32 = CharStatReady
		if a.running {
			s |= CharStatRunning
		}
		if a.buf < a.cfg.Watermark {
			s |= CharStatLowBuf
		}
		if len(a.capture) > 0 {
			s |= CharStatInAvail
		}
		return s, nil
	}
	return 0, nil
}

// PortOut implements kernel.Device.
func (a *Audio) PortOut(port uint32, val uint32) error {
	if port-a.cfg.Base != CharRegCmd {
		return nil
	}
	switch val {
	case CharCmdReset:
		a.stop()
		a.buf = 0
		a.inUnderrun = false
		// Resetting the codec flushes the capture FIFO: whatever input
		// was pending is unrecoverable (read-once, §6.3). A restarted
		// driver always resets.
		a.CaptureLost += int64(len(a.capture))
		a.capture = nil
	case CharCmdStart:
		if !a.running {
			a.running = true
			a.scheduleTick()
		}
	case CharCmdStop:
		a.stop()
	}
	return nil
}

func (a *Audio) stop() {
	a.running = false
	if a.ticker != nil {
		a.ticker.Cancel()
		a.ticker = nil
	}
}

func (a *Audio) scheduleTick() {
	a.ticker = a.env.Schedule(a.cfg.Tick, func() {
		if !a.running {
			return
		}
		need := int(a.cfg.PlayRate * int64(a.cfg.Tick) / int64(sim.Time(1e9)))
		if a.buf >= need {
			a.buf -= need
			a.Consumed += int64(need)
			a.inUnderrun = false
		} else {
			// Starved: whatever remains plays, then silence. One episode
			// counts once however many ticks it lasts.
			a.Consumed += int64(a.buf)
			a.buf = 0
			if !a.inUnderrun {
				a.Underruns++
				a.inUnderrun = true
			}
		}
		if a.buf < a.cfg.Watermark {
			a.k.RaiseIRQ(a.cfg.IRQ)
		}
		a.scheduleTick()
	})
}

// AudioHandle is the driver-side sample data window.
type AudioHandle struct{ a *Audio }

// Handle returns the audio DMA handle.
func (a *Audio) Handle() *AudioHandle { return &AudioHandle{a: a} }

// Feed appends n bytes of samples to the playback buffer; it returns how
// many bytes fit.
func (h *AudioHandle) Feed(n int) int {
	room := h.a.cfg.BufSize - h.a.buf
	if n > room {
		n = room
	}
	h.a.buf += n
	return n
}

// Buffered returns the bytes currently queued for playback.
func (h *AudioHandle) Buffered() int { return h.a.buf }

// ReadCapture pops up to max captured bytes from the controller. The
// data is consumed by the read: a second read never sees it again.
func (h *AudioHandle) ReadCapture(max int) []byte {
	a := h.a
	if max > len(a.capture) {
		max = len(a.capture)
	}
	max &^= 3
	out := make([]byte, max)
	copy(out, a.capture[:max])
	a.capture = a.capture[max:]
	return out
}

// ---------------------------------------------------------------------------
// Line printer

// PrinterConfig configures the printer device.
type PrinterConfig struct {
	Base     uint32
	IRQ      int
	LineTime sim.Time // time to print one line
}

// Printer prints lines one at a time. The driver cannot observe how far
// into a line the device got — the §6.3 "duplicate printouts may result"
// property.
type Printer struct {
	env *sim.Env
	k   *kernel.Kernel
	cfg PrinterConfig

	busy    bool
	pending string

	Output []string // lines that completed on paper
}

var _ kernel.Device = (*Printer)(nil)

// NewPrinter creates the printer device mapped at [Base, Base+0x10).
func NewPrinter(env *sim.Env, k *kernel.Kernel, cfg PrinterConfig) *Printer {
	if cfg.LineTime == 0 {
		cfg.LineTime = 50 * sim.Time(1e6) // 50ms/line
	}
	p := &Printer{env: env, k: k, cfg: cfg}
	k.MapDevice(kernel.PortRange{Lo: cfg.Base, Hi: cfg.Base + 0x10}, p)
	return p
}

// PortRange returns the ports a printer driver needs.
func (p *Printer) PortRange() kernel.PortRange {
	return kernel.PortRange{Lo: p.cfg.Base, Hi: p.cfg.Base + 0x10}
}

// IRQ returns the printer interrupt line.
func (p *Printer) IRQ() int { return p.cfg.IRQ }

// PortIn implements kernel.Device.
func (p *Printer) PortIn(port uint32) (uint32, error) {
	if port-p.cfg.Base == CharRegStatus {
		var s uint32
		if !p.busy {
			s = CharStatReady
		} else {
			s = CharStatRunning
		}
		return s, nil
	}
	return 0, nil
}

// PortOut implements kernel.Device.
func (p *Printer) PortOut(port uint32, val uint32) error {
	if port-p.cfg.Base == CharRegCmd && val == CharCmdReset {
		// Reset mid-line: the partial line is lost; the device cannot say
		// whether it completed.
		p.busy = false
		p.pending = ""
	}
	return nil
}

// PrinterHandle is the driver-side data window.
type PrinterHandle struct{ p *Printer }

// Handle returns the printer data handle.
func (p *Printer) Handle() *PrinterHandle { return &PrinterHandle{p: p} }

// Submit starts printing one line; returns false if the device is busy.
// An IRQ announces completion.
func (h *PrinterHandle) Submit(line string) bool {
	p := h.p
	if p.busy {
		return false
	}
	p.busy = true
	p.pending = line
	p.env.Schedule(p.cfg.LineTime, func() {
		if !p.busy { // reset raced the completion
			return
		}
		p.Output = append(p.Output, p.pending)
		p.busy = false
		p.pending = ""
		p.k.RaiseIRQ(p.cfg.IRQ)
	})
	return true
}

// ---------------------------------------------------------------------------
// CD burner

// BurnerConfig configures the CD burner.
type BurnerConfig struct {
	Base     uint32
	IRQ      int
	WriteBps int64    // laser write rate
	GapLimit sim.Time // max stall before the burn is ruined (buffer underrun)
}

// Burner models the one device where recovery can never help: a burn in
// progress that stalls longer than the buffer can cover ruins the disc
// (paper §6.3's "continuing the CD burn will most certainly produce a
// corrupted disc").
type Burner struct {
	env *sim.Env
	k   *kernel.Kernel
	cfg BurnerConfig

	burning   bool
	ruined    bool
	written   int64
	total     int64
	lastWrite sim.Time
	guard     *sim.Event
}

var _ kernel.Device = (*Burner)(nil)

// NewBurner creates the burner mapped at [Base, Base+0x10).
func NewBurner(env *sim.Env, k *kernel.Kernel, cfg BurnerConfig) *Burner {
	if cfg.WriteBps == 0 {
		cfg.WriteBps = 2_400_000
	}
	if cfg.GapLimit == 0 {
		cfg.GapLimit = 300 * sim.Time(1e6) // 300ms of buffer
	}
	b := &Burner{env: env, k: k, cfg: cfg}
	k.MapDevice(kernel.PortRange{Lo: cfg.Base, Hi: cfg.Base + 0x10}, b)
	return b
}

// PortRange returns the ports a burner driver needs.
func (b *Burner) PortRange() kernel.PortRange {
	return kernel.PortRange{Lo: b.cfg.Base, Hi: b.cfg.Base + 0x10}
}

// IRQ returns the burner interrupt line.
func (b *Burner) IRQ() int { return b.cfg.IRQ }

// PortIn implements kernel.Device.
func (b *Burner) PortIn(port uint32) (uint32, error) {
	if port-b.cfg.Base == CharRegStatus {
		var s uint32 = CharStatReady
		if b.burning {
			s |= CharStatRunning
		}
		return s, nil
	}
	return 0, nil
}

// PortOut implements kernel.Device.
func (b *Burner) PortOut(port uint32, val uint32) error {
	if port-b.cfg.Base == CharRegCmd && val == CharCmdReset {
		// Resetting the controller mid-burn aborts the write session: the
		// disc is ruined (§6.3's "will most certainly produce a corrupted
		// disc"). A restarted driver always resets.
		if b.burning && b.written < b.total {
			b.ruined = true
		}
	}
	return nil
}

// BurnerHandle is the driver-side data window.
type BurnerHandle struct{ b *Burner }

// Handle returns the burner data handle.
func (b *Burner) Handle() *BurnerHandle { return &BurnerHandle{b: b} }

// Begin starts a burn of total bytes.
func (h *BurnerHandle) Begin(total int64) {
	b := h.b
	b.burning = true
	b.ruined = false
	b.written = 0
	b.total = total
	b.lastWrite = b.env.Now()
	b.armGuard()
}

func (b *Burner) armGuard() {
	if b.guard != nil {
		b.guard.Cancel()
	}
	b.guard = b.env.Schedule(b.cfg.GapLimit, func() {
		if b.burning && b.written < b.total {
			b.ruined = true
		}
	})
}

// Write feeds the next chunk of the burn. Late chunks (after the gap
// limit) find the disc already ruined; the burn state still advances so
// the failure is detected at Finish.
func (h *BurnerHandle) Write(n int64) {
	b := h.b
	if !b.burning {
		return
	}
	b.written += n
	b.lastWrite = b.env.Now()
	b.armGuard()
}

// Finish ends the burn and reports whether the disc is good.
func (h *BurnerHandle) Finish() (ok bool) {
	b := h.b
	if b.guard != nil {
		b.guard.Cancel()
		b.guard = nil
	}
	ok = b.burning && !b.ruined && b.written >= b.total
	b.burning = false
	return ok
}

// Ruined reports whether the current/last burn was ruined.
func (b *Burner) Ruined() bool { return b.ruined }
