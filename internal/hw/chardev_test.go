package hw

import (
	"testing"
	"time"
)

func TestAudioPlaybackConsumes(t *testing.T) {
	env, k := testRig(t)
	a := NewAudio(env, k, AudioConfig{Base: 0x3000, IRQ: 5, PlayRate: 100_000})
	h := a.Handle()
	h.Feed(50_000)
	a.PortOut(0x3000+CharRegCmd, CharCmdStart)
	env.Run(200 * time.Millisecond)
	if a.Consumed == 0 {
		t.Fatal("nothing consumed")
	}
	if a.Consumed > 50_000 {
		t.Fatalf("consumed %d > fed 50000", a.Consumed)
	}
}

func TestAudioUnderrunOnStarvation(t *testing.T) {
	env, k := testRig(t)
	a := NewAudio(env, k, AudioConfig{Base: 0x3000, IRQ: 5, PlayRate: 100_000})
	h := a.Handle()
	h.Feed(10_000) // 100ms of audio
	a.PortOut(0x3000+CharRegCmd, CharCmdStart)
	env.Run(time.Second) // runs dry
	if a.Underruns != 1 {
		t.Fatalf("Underruns = %d, want 1 episode", a.Underruns)
	}
	// Refill: a second starvation is a second episode.
	h.Feed(10_000)
	env.Run(time.Second)
	if a.Underruns != 2 {
		t.Fatalf("Underruns = %d, want 2", a.Underruns)
	}
}

func TestAudioFeedRespectsCapacity(t *testing.T) {
	env, k := testRig(t)
	a := NewAudio(env, k, AudioConfig{Base: 0x3000, IRQ: 5, BufSize: 1000})
	h := a.Handle()
	if n := h.Feed(800); n != 800 {
		t.Fatalf("Feed = %d, want 800", n)
	}
	if n := h.Feed(800); n != 200 {
		t.Fatalf("Feed = %d, want 200 (capacity)", n)
	}
	if h.Buffered() != 1000 {
		t.Fatalf("Buffered = %d", h.Buffered())
	}
	_ = env
}

func TestAudioStopAndReset(t *testing.T) {
	env, k := testRig(t)
	a := NewAudio(env, k, AudioConfig{Base: 0x3000, IRQ: 5, PlayRate: 100_000})
	a.Handle().Feed(50_000)
	a.PortOut(0x3000+CharRegCmd, CharCmdStart)
	env.Run(100 * time.Millisecond)
	a.PortOut(0x3000+CharRegCmd, CharCmdStop)
	consumed := a.Consumed
	env.Run(time.Second)
	if a.Consumed != consumed {
		t.Fatal("device consumed while stopped")
	}
	a.PortOut(0x3000+CharRegCmd, CharCmdReset)
	if a.Handle().Buffered() != 0 {
		t.Fatal("reset kept buffer")
	}
}

func TestPrinterPrintsLines(t *testing.T) {
	env, k := testRig(t)
	p := NewPrinter(env, k, PrinterConfig{Base: 0x3100, IRQ: 7})
	h := p.Handle()
	if !h.Submit("page 1") {
		t.Fatal("submit rejected on idle printer")
	}
	if h.Submit("page 2") {
		t.Fatal("submit accepted while busy")
	}
	env.Run(time.Second)
	if !h.Submit("page 2") {
		t.Fatal("submit rejected after completion")
	}
	env.Run(time.Second)
	if len(p.Output) != 2 || p.Output[0] != "page 1" || p.Output[1] != "page 2" {
		t.Fatalf("output = %v", p.Output)
	}
}

func TestPrinterResetLosesInFlightLine(t *testing.T) {
	env, k := testRig(t)
	p := NewPrinter(env, k, PrinterConfig{Base: 0x3100, IRQ: 7})
	p.Handle().Submit("doomed")
	p.PortOut(0x3100+CharRegCmd, CharCmdReset)
	env.Run(time.Second)
	if len(p.Output) != 0 {
		t.Fatalf("output = %v, want empty (line was lost by reset)", p.Output)
	}
}

func TestBurnerCompletesWhenFed(t *testing.T) {
	env, k := testRig(t)
	b := NewBurner(env, k, BurnerConfig{Base: 0x3200, IRQ: 11, GapLimit: 100 * time.Millisecond})
	h := b.Handle()
	h.Begin(1000)
	for i := 0; i < 10; i++ {
		env.Run(50 * time.Millisecond) // inside the gap limit
		h.Write(100)
	}
	if !h.Finish() {
		t.Fatal("well-fed burn failed")
	}
}

func TestBurnerRuinedByGap(t *testing.T) {
	env, k := testRig(t)
	b := NewBurner(env, k, BurnerConfig{Base: 0x3200, IRQ: 11, GapLimit: 100 * time.Millisecond})
	h := b.Handle()
	h.Begin(1000)
	h.Write(100)
	env.Run(500 * time.Millisecond) // driver dead: gap exceeds the limit
	for i := 0; i < 9; i++ {
		h.Write(100)
		env.Run(10 * time.Millisecond)
	}
	if h.Finish() {
		t.Fatal("burn with a half-second stall produced a good disc")
	}
	if !b.Ruined() {
		t.Fatal("Ruined not reported")
	}
}

func TestBurnerIncompleteIsBad(t *testing.T) {
	env, k := testRig(t)
	b := NewBurner(env, k, BurnerConfig{Base: 0x3200, IRQ: 11})
	h := b.Handle()
	h.Begin(1000)
	h.Write(100)
	if h.Finish() {
		t.Fatal("10% burn reported good")
	}
	_ = env
}

func TestMachineAssembly(t *testing.T) {
	env, k := testRig(t)
	m := NewMachine(env, k, MachineConfig{DiskSeed: 3})
	if m.NIC0 == nil || m.NIC1 == nil || m.Remote == nil || m.Disk == nil {
		t.Fatal("machine incomplete")
	}
	// NIC0 and the remote peer are wired together.
	enable(m.NIC0)
	enable(m.Remote)
	m.Remote.Handle().SetTx([]byte("from afar"))
	m.Remote.PortOut(0xF000+NICRegTxGo, 1)
	env.Run(time.Second)
	if s, _ := m.NIC0.PortIn(PortNIC0 + NICRegStatus); s&NICStatRxAvail == 0 {
		t.Fatal("remote frame did not reach NIC0")
	}
	if m.Disk.Sectors() != 8<<20 {
		t.Fatalf("default disk sectors = %d", m.Disk.Sectors())
	}
}
