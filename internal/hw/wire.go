package hw

import "resilientos/internal/sim"

// Wire is a full-duplex point-to-point Ethernet segment between two NICs.
// It computes the FCS at ingress (the sending NIC's MAC would), optionally
// corrupts or drops frames, and delivers after a propagation delay.
type Wire struct {
	env   *sim.Env
	nics  [2]*NIC
	Delay sim.Time // one-way propagation delay

	// LossProb drops a frame with the given probability (models a lossy
	// path for TCP tests; zero for the paper's experiments).
	LossProb float64
	// CorruptProb flips a byte (and so fails the FCS at the receiver).
	CorruptProb float64

	Carried int // frames accepted for transport
	Lost    int // frames dropped in transit
}

// Connect joins two NICs with a wire.
func Connect(env *sim.Env, a, b *NIC) *Wire {
	w := &Wire{env: env, nics: [2]*NIC{a, b}, Delay: 50 * sim.Time(1e3)} // 50µs
	a.wire, a.side = w, 0
	b.wire, b.side = w, 1
	return w
}

// carry transports a frame from the NIC on side `from` to its peer.
func (w *Wire) carry(from int, frame []byte) {
	w.Carried++
	if w.LossProb > 0 && w.env.Rand().Float64() < w.LossProb {
		w.Lost++
		return
	}
	fcs := FCS(frame)
	if w.CorruptProb > 0 && w.env.Rand().Float64() < w.CorruptProb && len(frame) > 0 {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		cp[w.env.Rand().Intn(len(cp))] ^= 0xFF
		frame = cp
	}
	dst := w.nics[1-from]
	w.env.Schedule(w.Delay, func() { dst.deliver(frame, fcs) })
}
