package hw

import (
	"resilientos/internal/kernel"
	"resilientos/internal/sim"
)

// Canonical machine layout: port bases and IRQ lines for the devices the
// reproduction's standard machine carries. Drivers receive privileges for
// exactly their device's range and line (least authority, paper §4).
const (
	PortNIC0    uint32 = 0x1000 // RTL8139-class NIC (local host)
	PortNIC1    uint32 = 0x1100 // DP8390-class NIC (fault-injection target)
	PortDisk    uint32 = 0x2000 // SATA-class disk
	PortRAMDisk uint32 = 0x2100 // RAM disk (no real hardware behind it)
	PortAudio   uint32 = 0x3000
	PortPrinter uint32 = 0x3100
	PortBurner  uint32 = 0x3200

	IRQNIC0    = 9
	IRQNIC1    = 10
	IRQDisk    = 14
	IRQAudio   = 5
	IRQPrinter = 7
	IRQBurner  = 11
)

// MachineConfig tunes the standard machine.
type MachineConfig struct {
	DiskSectors     int64   // default 4 GiB worth
	DiskSeed        int64   // content seed for unwritten sectors
	NICMasterReset  bool    // whether local NICs support master reset
	NICConfuseProb  float64 // P(garbage command wedges a NIC)
	NICDeepProb     float64 // P(wedge is deep), given wedged
	RemotePeer      bool    // attach a remote host NIC to NIC0's wire
	WireLossProb    float64
	WireCorruptProb float64
}

// Machine is the standard simulated hardware complement: two NICs (one
// wired to a remote peer), a disk, and the character devices.
type Machine struct {
	NIC0    *NIC // local NIC used by the RTL8139-class driver
	NIC1    *NIC // local NIC used by the DP8390-class driver
	Remote  *NIC // the far end of NIC0's wire (the "Internet" peer)
	Remote1 *NIC // the far end of NIC1's wire
	Wire0   *Wire
	Wire1   *Wire
	Disk    *Disk
	Audio   *Audio
	Printer *Printer
	Burner  *Burner
}

// NewMachine builds the standard machine on the environment and kernel.
func NewMachine(env *sim.Env, k *kernel.Kernel, cfg MachineConfig) *Machine {
	if cfg.DiskSectors == 0 {
		cfg.DiskSectors = 8 << 20 // 8 Mi sectors = 4 GiB
	}
	m := &Machine{}
	m.NIC0 = NewNIC(env, k, NICConfig{
		Base: PortNIC0, IRQ: IRQNIC0,
		MasterReset: cfg.NICMasterReset,
		ConfuseProb: cfg.NICConfuseProb, DeepConfuseProb: cfg.NICDeepProb,
	})
	m.NIC1 = NewNIC(env, k, NICConfig{
		Base: PortNIC1, IRQ: IRQNIC1,
		MasterReset: cfg.NICMasterReset,
		ConfuseProb: cfg.NICConfuseProb, DeepConfuseProb: cfg.NICDeepProb,
	})
	// Remote peers live outside the simulated OS: their "drivers" are
	// ideal and never fail, so only the local side's recovery is measured.
	m.Remote = NewNIC(env, k, NICConfig{Base: 0xF000, IRQ: 30, MasterReset: true})
	m.Remote1 = NewNIC(env, k, NICConfig{Base: 0xF100, IRQ: 31, MasterReset: true})
	m.Wire0 = Connect(env, m.NIC0, m.Remote)
	m.Wire1 = Connect(env, m.NIC1, m.Remote1)
	m.Wire0.LossProb = cfg.WireLossProb
	m.Wire0.CorruptProb = cfg.WireCorruptProb
	m.Disk = NewDisk(env, k, DiskConfig{
		Base: PortDisk, IRQ: IRQDisk,
		Sectors: cfg.DiskSectors, Seed: cfg.DiskSeed,
	})
	m.Audio = NewAudio(env, k, AudioConfig{Base: PortAudio, IRQ: IRQAudio, CaptureRate: 64000})
	m.Printer = NewPrinter(env, k, PrinterConfig{Base: PortPrinter, IRQ: IRQPrinter})
	m.Burner = NewBurner(env, k, BurnerConfig{Base: PortBurner, IRQ: IRQBurner})
	return m
}
