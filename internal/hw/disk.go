package hw

import (
	"encoding/binary"

	"resilientos/internal/kernel"
	"resilientos/internal/sim"
)

// SectorSize is the disk sector size in bytes.
const SectorSize = 512

// Disk register offsets.
const (
	DiskRegCmd    = 0x00 // command
	DiskRegStatus = 0x04 // status
	DiskRegLBA    = 0x08 // logical block address of the transfer
	DiskRegCount  = 0x0C // sector count of the transfer
)

// Disk commands.
const (
	DiskCmdRead  = 1 // read COUNT sectors at LBA into the device buffer
	DiskCmdWrite = 2 // write the device buffer to COUNT sectors at LBA
	DiskCmdReset = 3 // reset + identify; quiesces any in-flight command
)

// Disk status bits.
const (
	DiskStatReady = 1 << 0 // idle and operational
	DiskStatBusy  = 1 << 1 // command in progress
	DiskStatError = 1 << 2 // last command failed (bad LBA/COUNT)
	DiskStatDRQ   = 1 << 3 // data buffer holds a completed read
)

// DiskConfig configures a simulated disk.
type DiskConfig struct {
	Base       uint32
	IRQ        int
	Sectors    int64 // capacity in sectors
	Seed       int64 // generator seed for unwritten sector content
	RateBps    int64 // media rate; default DiskRateBps
	Overhead   sim.Time
	ResetDelay sim.Time
}

// Disk is a register-level model of a simple SATA-like disk. Unwritten
// sectors have deterministic pseudo-random content derived from the seed,
// so a "1-GB file filled with random data" (the paper's dd experiment)
// needs no host memory; written sectors are kept copy-on-write.
type Disk struct {
	env *sim.Env
	k   *kernel.Kernel
	cfg DiskConfig

	cow map[int64][]byte

	lba    uint32
	count  uint32
	busy   bool
	errbit bool
	drq    bool
	buf    []byte // device transfer buffer
	gen    int    // bumped by reset; invalidates in-flight completions

	Stats DiskStats
}

// DiskStats counts disk-level events.
type DiskStats struct {
	Reads      int
	Writes     int
	Resets     int
	BadCmds    int
	SectorsIO  int64
	InFlightKO int // commands quiesced by a reset while busy
}

var _ kernel.Device = (*Disk)(nil)

// NewDisk creates a disk and maps its registers at [Base, Base+0x10).
func NewDisk(env *sim.Env, k *kernel.Kernel, cfg DiskConfig) *Disk {
	if cfg.RateBps == 0 {
		cfg.RateBps = DiskRateBps
	}
	if cfg.Overhead == 0 {
		cfg.Overhead = DiskCmdOverhead
	}
	if cfg.ResetDelay == 0 {
		cfg.ResetDelay = DiskResetDelay
	}
	d := &Disk{env: env, k: k, cfg: cfg, cow: make(map[int64][]byte)}
	k.MapDevice(kernel.PortRange{Lo: cfg.Base, Hi: cfg.Base + 0x10}, d)
	return d
}

// PortRange returns the ports a disk driver needs privileges for.
func (d *Disk) PortRange() kernel.PortRange {
	return kernel.PortRange{Lo: d.cfg.Base, Hi: d.cfg.Base + 0x10}
}

// IRQ returns the disk's interrupt line.
func (d *Disk) IRQ() int { return d.cfg.IRQ }

// Sectors returns the disk capacity in sectors.
func (d *Disk) Sectors() int64 { return d.cfg.Sectors }

// PortIn implements kernel.Device.
func (d *Disk) PortIn(port uint32) (uint32, error) {
	switch port - d.cfg.Base {
	case DiskRegStatus:
		var s uint32
		if !d.busy {
			s |= DiskStatReady
		}
		if d.busy {
			s |= DiskStatBusy
		}
		if d.errbit {
			s |= DiskStatError
		}
		if d.drq {
			s |= DiskStatDRQ
		}
		return s, nil
	case DiskRegLBA:
		return d.lba, nil
	case DiskRegCount:
		return d.count, nil
	default:
		return 0, nil
	}
}

// PortOut implements kernel.Device.
func (d *Disk) PortOut(port uint32, val uint32) error {
	switch port - d.cfg.Base {
	case DiskRegLBA:
		d.lba = val
	case DiskRegCount:
		d.count = val
	case DiskRegCmd:
		d.command(val)
	}
	return nil
}

func (d *Disk) command(val uint32) {
	switch val {
	case DiskCmdReset:
		d.Stats.Resets++
		if d.busy {
			d.Stats.InFlightKO++
		}
		d.gen++ // quiesce any in-flight command completion
		gen := d.gen
		d.busy = true // busy during reset+identify
		d.errbit = false
		d.drq = false
		d.buf = nil
		d.env.Schedule(d.cfg.ResetDelay, func() {
			if d.gen != gen {
				return
			}
			d.busy = false
			d.k.RaiseIRQ(d.cfg.IRQ)
		})
	case DiskCmdRead, DiskCmdWrite:
		if d.busy {
			return // command register ignored while busy
		}
		lba, count := int64(d.lba), int64(d.count)
		if count == 0 || lba < 0 || lba+count > d.cfg.Sectors {
			d.errbit = true
			d.k.RaiseIRQ(d.cfg.IRQ)
			return
		}
		d.errbit = false
		d.busy = true
		bytes := count * SectorSize
		dur := d.cfg.Overhead + sim.Time(bytes*int64(sim.Time(1e9))/d.cfg.RateBps)
		gen := d.gen
		if val == DiskCmdRead {
			d.Stats.Reads++
			d.env.Schedule(dur, func() {
				if d.gen != gen {
					return // quiesced by a reset
				}
				d.buf = d.readSectors(lba, count)
				d.busy = false
				d.drq = true
				d.Stats.SectorsIO += count
				d.k.RaiseIRQ(d.cfg.IRQ)
			})
		} else {
			d.Stats.Writes++
			data := d.buf // latched at command time
			d.env.Schedule(dur, func() {
				if d.gen != gen {
					return // quiesced by a reset
				}
				d.writeSectors(lba, count, data)
				d.busy = false
				d.drq = false
				d.buf = nil
				d.Stats.SectorsIO += count
				d.k.RaiseIRQ(d.cfg.IRQ)
			})
		}
	default:
		d.Stats.BadCmds++
		d.errbit = true
	}
}

// sectorContent returns the deterministic content of an unwritten sector.
func (d *Disk) sectorContent(lba int64) []byte {
	s := make([]byte, SectorSize)
	x := uint64(d.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(lba)*0xBF58476D1CE4E5B9 + 1
	for i := 0; i < SectorSize; i += 8 {
		// xorshift64*
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(s[i:], x*0x2545F4914F6CDD1D)
	}
	return s
}

func (d *Disk) readSectors(lba, count int64) []byte {
	out := make([]byte, 0, count*SectorSize)
	for i := int64(0); i < count; i++ {
		if s, ok := d.cow[lba+i]; ok {
			out = append(out, s...)
		} else {
			out = append(out, d.sectorContent(lba+i)...)
		}
	}
	return out
}

func (d *Disk) writeSectors(lba, count int64, data []byte) {
	for i := int64(0); i < count; i++ {
		s := make([]byte, SectorSize)
		if off := i * SectorSize; off < int64(len(data)) {
			copy(s, data[off:])
		}
		d.cow[lba+i] = s
	}
}

// DiskHandle is the driver-side data window standing in for DMA.
type DiskHandle struct{ d *Disk }

// Handle returns the disk's DMA handle.
func (d *Disk) Handle() *DiskHandle { return &DiskHandle{d: d} }

// TakeData returns (and clears) the device buffer after a completed read.
// Returns nil if no read data is pending.
func (h *DiskHandle) TakeData() []byte {
	if !h.d.drq {
		return nil
	}
	b := h.d.buf
	h.d.buf = nil
	h.d.drq = false
	return b
}

// PutData loads the device buffer in preparation for a write command.
func (h *DiskHandle) PutData(b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	h.d.buf = cp
}

// PeekSector reads a sector's current content directly, bypassing the
// driver path. Test/verification use only.
func (d *Disk) PeekSector(lba int64) []byte {
	if s, ok := d.cow[lba]; ok {
		cp := make([]byte, SectorSize)
		copy(cp, s)
		return cp
	}
	return d.sectorContent(lba)
}

// PokeSector writes a sector's content directly, bypassing the driver
// path. Used to prepare disk images (mkfs) and by tests.
func (d *Disk) PokeSector(lba int64, data []byte) {
	s := make([]byte, SectorSize)
	copy(s, data)
	d.cow[lba] = s
}
