// Package hw provides the simulated hardware the drivers in this
// reproduction drive: Ethernet NICs joined by a wire, a sector-addressed
// disk, and character devices (audio codec, line printer, CD burner).
//
// Each device is mapped into the kernel's port space, so a driver's
// *control path* (commands, status, configuration) goes through privileged
// port I/O that a fault-injected driver can garble; bulk data moves through
// a typed device handle, standing in for DMA. Devices raise IRQs through
// the kernel and model transfer timing in virtual time, which is what
// calibrates the throughput experiments (Figs. 7 and 8).
//
// The NIC also models the paper's §7.2 hardware gate: a garbled command
// stream can leave the card "confused"; ordinary confusion clears on a
// RESET command, deep confusion requires a master reset — and, like the
// authors' RealTek card, a NIC can be configured without master-reset
// support, in which case only a host-level BIOS reset recovers it.
package hw

import (
	"hash/crc32"

	"resilientos/internal/sim"
)

// Calibration constants for the simulated machine. These are the knobs
// that set the absolute throughput scale of the reproduced figures; see
// EXPERIMENTS.md for the calibration against the paper's testbed.
const (
	// NICRateBps is the NIC serialization rate. With TCP/IP header and ACK
	// overhead this yields roughly the paper's 10.8 MB/s wget throughput.
	NICRateBps = 11_000_000

	// NICResetDelay is how long a NIC RESET takes; a restarted network
	// driver pays this once during reinitialization.
	NICResetDelay = 120 * sim.Time(1e6) // 120ms

	// DiskRateBps is the disk media transfer rate; after per-command
	// overhead and server hops at 64 KiB transfers this yields the
	// paper's uninterrupted 32.7 MB/s.
	DiskRateBps = 34_100_000

	// DiskCmdOverhead is the fixed per-command cost (seek + submission).
	DiskCmdOverhead = 50 * sim.Time(1e3) // 50µs

	// DiskResetDelay is the reset+identify time a restarted disk driver
	// pays; this dominates the disk recovery cost in Fig. 8 (the paper's
	// per-kill loss at 1 s intervals works out to ~0.6 s, of which the
	// device reset is the bulk).
	DiskResetDelay = 600 * sim.Time(1e6) // 600ms
)

// FCS computes the frame check sequence the NIC appends on transmit and
// verifies on receive.
func FCS(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
