package hw

import (
	"bytes"
	"testing"
	"time"

	"resilientos/internal/kernel"
	"resilientos/internal/sim"
)

func testRig(t *testing.T) (*sim.Env, *kernel.Kernel) {
	t.Helper()
	env := sim.NewEnv(1)
	return env, kernel.New(env)
}

func nicPair(env *sim.Env, k *kernel.Kernel, cfg NICConfig) (*NIC, *NIC, *Wire) {
	a := NewNIC(env, k, cfg)
	bCfg := cfg
	bCfg.Base = cfg.Base + 0x100
	bCfg.IRQ = cfg.IRQ + 1
	b := NewNIC(env, k, bCfg)
	w := Connect(env, a, b)
	return a, b, w
}

// enable turns the receiver on directly (tests drive registers without a
// kernel process, via the Device interface).
func enable(n *NIC) {
	n.PortOut(n.cfg.Base+NICRegCmd, NICCmdRxEnable)
}

func TestNICFrameTransfer(t *testing.T) {
	env, k := testRig(t)
	a, b, _ := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9})
	enable(a)
	enable(b)
	payload := []byte("hello ethernet")
	a.Handle().SetTx(payload)
	a.PortOut(0x1000+NICRegTxGo, 1)
	env.Run(time.Second)
	if got, _ := b.PortIn(b.cfg.Base + NICRegStatus); got&NICStatRxAvail == 0 {
		t.Fatal("no frame pending at receiver")
	}
	ln, _ := b.PortIn(b.cfg.Base + NICRegRxLen)
	if int(ln) != len(payload) {
		t.Fatalf("RxLen = %d, want %d", ln, len(payload))
	}
	b.PortOut(b.cfg.Base+NICRegRxPop, 1)
	got := b.Handle().TakeRx()
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q, want %q", got, payload)
	}
	if a.Stats.TxFrames != 1 || b.Stats.RxDelivered != 1 {
		t.Fatalf("stats: tx=%d rx=%d", a.Stats.TxFrames, b.Stats.RxDelivered)
	}
}

func TestNICDropsWhenDisabled(t *testing.T) {
	env, k := testRig(t)
	a, b, _ := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9})
	enable(a) // receiver b NOT enabled
	a.Handle().SetTx([]byte("lost"))
	a.PortOut(0x1000+NICRegTxGo, 1)
	env.Run(time.Second)
	if b.Stats.RxDropped != 1 {
		t.Fatalf("RxDropped = %d, want 1", b.Stats.RxDropped)
	}
}

func TestNICRingOverflow(t *testing.T) {
	env, k := testRig(t)
	a, b, _ := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9, RingSize: 2})
	enable(a)
	enable(b)
	for i := 0; i < 5; i++ {
		a.Handle().SetTx([]byte{byte(i)})
		a.PortOut(0x1000+NICRegTxGo, 1)
		env.Run(time.Millisecond) // let each serialize
	}
	env.Run(time.Second)
	if b.Stats.RxDropped != 3 {
		t.Fatalf("RxDropped = %d, want 3 (ring of 2, 5 frames)", b.Stats.RxDropped)
	}
}

func TestNICTxBusySerializes(t *testing.T) {
	env, k := testRig(t)
	a, b, _ := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9})
	enable(a)
	enable(b)
	a.Handle().SetTx(make([]byte, 1500))
	a.PortOut(0x1000+NICRegTxGo, 1)
	// Second TxGo while busy: the window is empty anyway, nothing sends.
	a.PortOut(0x1000+NICRegTxGo, 1)
	env.Run(time.Second)
	if a.Stats.TxFrames != 1 {
		t.Fatalf("TxFrames = %d, want 1", a.Stats.TxFrames)
	}
}

func TestNICSerializationDelayMatchesRate(t *testing.T) {
	env, k := testRig(t)
	a, b, _ := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9, RateBps: 1_000_000})
	enable(a)
	enable(b)
	a.Handle().SetTx(make([]byte, 1000)) // 1000B at 1MB/s = 1ms + 50µs wire
	a.PortOut(0x1000+NICRegTxGo, 1)
	var arrived sim.Time
	for i := sim.Time(0); i < 10*time.Millisecond; i += 10 * time.Microsecond {
		env.Run(10 * time.Microsecond)
		if b.Stats.RxDelivered == 0 {
			if s, _ := b.PortIn(b.cfg.Base + NICRegStatus); s&NICStatRxAvail != 0 {
				arrived = env.Now()
				break
			}
		}
	}
	want := sim.Time(1050 * time.Microsecond)
	if arrived != want {
		t.Fatalf("frame arrived at %v, want %v", arrived, want)
	}
}

func TestWireCorruptionDroppedByFCS(t *testing.T) {
	env, k := testRig(t)
	a, b, w := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9})
	w.CorruptProb = 1.0
	enable(a)
	enable(b)
	a.Handle().SetTx([]byte("garbled on the wire"))
	a.PortOut(0x1000+NICRegTxGo, 1)
	env.Run(time.Second)
	if b.Stats.FCSErrors != 1 {
		t.Fatalf("FCSErrors = %d, want 1", b.Stats.FCSErrors)
	}
	if b.Stats.RxDelivered != 0 {
		t.Fatal("corrupted frame delivered")
	}
}

func TestWireLoss(t *testing.T) {
	env, k := testRig(t)
	a, b, w := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9})
	w.LossProb = 1.0
	enable(a)
	enable(b)
	a.Handle().SetTx([]byte("into the void"))
	a.PortOut(0x1000+NICRegTxGo, 1)
	env.Run(time.Second)
	if w.Lost != 1 {
		t.Fatalf("Lost = %d, want 1", w.Lost)
	}
}

func TestNICConfusionOnGarbageCommand(t *testing.T) {
	env, k := testRig(t)
	n := NewNIC(env, k, NICConfig{Base: 0x1000, IRQ: 9, ConfuseProb: 1.0})
	n.PortOut(0x1000+NICRegCmd, 0xDEAD) // garbage command
	confused, deep := n.Confused()
	if !confused || deep {
		t.Fatalf("confused=%v deep=%v, want soft confusion", confused, deep)
	}
	// Enable is ignored while confused.
	enable(n)
	if s, _ := n.PortIn(0x1000 + NICRegStatus); s&NICStatEnabled != 0 {
		t.Fatal("confused card accepted RxEnable")
	}
	// A soft reset clears it.
	n.PortOut(0x1000+NICRegCmd, NICCmdReset)
	env.Run(time.Second)
	if c, _ := n.Confused(); c {
		t.Fatal("reset did not clear soft confusion")
	}
	enable(n)
	if s, _ := n.PortIn(0x1000 + NICRegStatus); s&NICStatEnabled == 0 {
		t.Fatal("card not enabled after reset")
	}
}

func TestNICDeepConfusionNeedsMasterReset(t *testing.T) {
	env, k := testRig(t)
	n := NewNIC(env, k, NICConfig{
		Base: 0x1000, IRQ: 9,
		ConfuseProb: 1.0, DeepConfuseProb: 1.0, MasterReset: true,
	})
	n.PortOut(0x1000+NICRegCmd, 0xDEAD)
	if _, deep := n.Confused(); !deep {
		t.Fatal("expected deep confusion")
	}
	// Soft reset does not clear deep confusion.
	n.PortOut(0x1000+NICRegCmd, NICCmdReset)
	env.Run(time.Second)
	if c, _ := n.Confused(); !c {
		t.Fatal("soft reset cleared deep confusion")
	}
	// Master reset does.
	n.PortOut(0x1000+NICRegCmd, NICCmdMasterReset)
	env.Run(time.Second)
	if c, _ := n.Confused(); c {
		t.Fatal("master reset did not clear deep confusion")
	}
}

func TestNICWithoutMasterResetNeedsBIOS(t *testing.T) {
	// The authors' card: no master reset command, so only a host-level
	// BIOS reset recovers deep confusion (paper §7.2).
	env, k := testRig(t)
	n := NewNIC(env, k, NICConfig{
		Base: 0x1000, IRQ: 9,
		ConfuseProb: 1.0, DeepConfuseProb: 1.0, MasterReset: false,
	})
	n.PortOut(0x1000+NICRegCmd, 0xBAD)
	if _, deep := n.Confused(); !deep {
		t.Fatal("expected deep confusion")
	}
	n.PortOut(0x1000+NICRegCmd, NICCmdReset)
	env.Run(time.Second)
	n.PortOut(0x1000+NICRegCmd, NICCmdMasterReset) // unsupported
	env.Run(time.Second)
	if c, _ := n.Confused(); !c {
		t.Fatal("unsupported master reset cleared confusion")
	}
	n.BIOSReset()
	if c, _ := n.Confused(); c {
		t.Fatal("BIOS reset did not clear confusion")
	}
}

func TestNICResetDropsPendingFrames(t *testing.T) {
	env, k := testRig(t)
	a, b, _ := nicPair(env, k, NICConfig{Base: 0x1000, IRQ: 9})
	enable(a)
	enable(b)
	a.Handle().SetTx([]byte("pending"))
	a.PortOut(0x1000+NICRegTxGo, 1)
	env.Run(time.Second)
	b.PortOut(b.cfg.Base+NICRegCmd, NICCmdReset)
	env.Run(time.Second)
	if ln, _ := b.PortIn(b.cfg.Base + NICRegRxLen); ln != 0 {
		t.Fatal("reset kept pending rx frames")
	}
}
