package hw

import (
	"resilientos/internal/kernel"
	"resilientos/internal/sim"
)

// NIC register offsets (from the device's port base).
const (
	NICRegCmd    = 0x00 // write-only command register
	NICRegStatus = 0x04 // read-only status register
	NICRegCfg    = 0x08 // configuration (promiscuous bit etc.)
	NICRegRxLen  = 0x0C // length of the head receive frame, 0 if none
	NICRegRxPop  = 0x10 // write: pop head frame into the DMA window
	NICRegTxGo   = 0x14 // write: transmit the DMA window contents
	NICRegBnry   = 0x18 // write: boundary page pointer (DP8390-style)
)

// NICBnryPages is the number of valid boundary pages; writing a value
// outside [0, NICBnryPages) is the kind of garbage that can wedge the
// card (the §7.2 hardware gate). Matches the DP8390-class ring size.
const NICBnryPages = 16

// NIC commands (values written to NICRegCmd).
const (
	NICCmdReset       = 1 // soft reset; clears ordinary confusion
	NICCmdRxEnable    = 2 // enable the receiver
	NICCmdMasterReset = 3 // full reset; clears deep confusion if supported
)

// NIC status bits (read from NICRegStatus).
const (
	NICStatLink     = 1 << 0 // link is up
	NICStatRxAvail  = 1 << 1 // at least one received frame pending
	NICStatTxBusy   = 1 << 2 // transmitter serializing a frame
	NICStatConfused = 1 << 3 // card wedged by a bad command stream
	NICStatEnabled  = 1 << 4 // receiver enabled
	NICStatResetBsy = 1 << 5 // reset in progress
)

// NIC configuration bits (NICRegCfg).
const (
	NICCfgPromisc = 1 << 0
)

// nicConfusion levels.
const (
	nicOK   = 0
	nicSoft = 1 // cleared by NICCmdReset
	nicDeep = 2 // cleared by master reset (if supported) or BIOSReset
)

// NICStats counts observable NIC events for tests and experiments.
type NICStats struct {
	RxDelivered  int // frames handed to the driver
	RxDropped    int // frames lost (ring overflow or receiver disabled)
	TxFrames     int
	FCSErrors    int // frames dropped for bad FCS
	Confusions   int // times the card entered a confused state
	DeepConfused int // times the card entered deep confusion
	BnryWrites   int // boundary-register writes
	BadBnry      int // boundary writes with garbage values
}

// NICConfig configures a simulated Ethernet controller.
type NICConfig struct {
	Base            uint32  // port base
	IRQ             int     // interrupt line
	RingSize        int     // receive ring capacity (frames); default 64
	RateBps         int64   // serialization rate; default NICRateBps
	MasterReset     bool    // whether the card supports a master reset
	ConfuseProb     float64 // P(bad command confuses the card)
	DeepConfuseProb float64 // P(confusion is deep), given confused
}

// NIC is a register-level model of an Ethernet controller.
type NIC struct {
	env *sim.Env
	k   *kernel.Kernel
	cfg NICConfig

	wire *Wire
	side int // 0 or 1 on the wire

	enabled   bool
	promisc   bool
	confusion int
	resetBusy bool

	rxRing  [][]byte
	txFrame []byte // DMA window, set by the driver handle
	txBusy  bool
	dmaRx   [][]byte // popped frames awaiting pickup by the driver handle

	Stats NICStats
}

var _ kernel.Device = (*NIC)(nil)

// NewNIC creates a NIC and maps it into the kernel's port space at
// [cfg.Base, cfg.Base+0x20).
func NewNIC(env *sim.Env, k *kernel.Kernel, cfg NICConfig) *NIC {
	if cfg.RingSize == 0 {
		cfg.RingSize = 64
	}
	if cfg.RateBps == 0 {
		cfg.RateBps = NICRateBps
	}
	n := &NIC{env: env, k: k, cfg: cfg}
	k.MapDevice(kernel.PortRange{Lo: cfg.Base, Hi: cfg.Base + 0x20}, n)
	return n
}

// PortRange returns the ports a driver of this NIC needs privileges for.
func (n *NIC) PortRange() kernel.PortRange {
	return kernel.PortRange{Lo: n.cfg.Base, Hi: n.cfg.Base + 0x20}
}

// IRQ returns the NIC's interrupt line.
func (n *NIC) IRQ() int { return n.cfg.IRQ }

// PortIn implements kernel.Device.
func (n *NIC) PortIn(port uint32) (uint32, error) {
	switch port - n.cfg.Base {
	case NICRegStatus:
		var s uint32
		if n.wire != nil {
			s |= NICStatLink
		}
		if len(n.rxRing) > 0 {
			s |= NICStatRxAvail
		}
		if n.txBusy {
			s |= NICStatTxBusy
		}
		if n.confusion != nicOK {
			s |= NICStatConfused
		}
		if n.enabled {
			s |= NICStatEnabled
		}
		if n.resetBusy {
			s |= NICStatResetBsy
		}
		return s, nil
	case NICRegCfg:
		var c uint32
		if n.promisc {
			c |= NICCfgPromisc
		}
		return c, nil
	case NICRegRxLen:
		if len(n.rxRing) == 0 {
			return 0, nil
		}
		return uint32(len(n.rxRing[0])), nil
	default:
		return 0, nil
	}
}

// PortOut implements kernel.Device.
func (n *NIC) PortOut(port uint32, val uint32) error {
	switch port - n.cfg.Base {
	case NICRegCmd:
		n.command(val)
	case NICRegCfg:
		n.promisc = val&NICCfgPromisc != 0
	case NICRegRxPop:
		if len(n.rxRing) > 0 {
			n.dmaRx = append(n.dmaRx, n.rxRing[0])
			n.rxRing = n.rxRing[1:]
		}
	case NICRegTxGo:
		n.transmit()
	case NICRegBnry:
		n.Stats.BnryWrites++
		if val >= NICBnryPages {
			n.Stats.BadBnry++
			// A garbage boundary pointer desynchronizes the receive
			// engine; on some cards this wedges the chip.
			n.maybeConfuse()
		}
	default:
		// Writes to undefined registers can confuse the card too.
		n.maybeConfuse()
	}
	return nil
}

func (n *NIC) command(val uint32) {
	if n.resetBusy {
		return
	}
	switch val {
	case NICCmdReset:
		n.beginReset(false)
	case NICCmdMasterReset:
		if !n.cfg.MasterReset {
			// The card does not implement this command; poking it is a
			// protocol violation like any other garbage command.
			n.maybeConfuse()
			return
		}
		n.beginReset(true)
	case NICCmdRxEnable:
		if n.confusion != nicOK {
			return // wedged card ignores enable
		}
		n.enabled = true
	default:
		n.maybeConfuse()
	}
}

func (n *NIC) beginReset(master bool) {
	n.resetBusy = true
	n.enabled = false
	n.rxRing = nil
	n.dmaRx = nil
	n.txBusy = false
	n.env.Schedule(NICResetDelay, func() {
		n.resetBusy = false
		switch {
		case master:
			n.confusion = nicOK
		case n.confusion == nicSoft:
			n.confusion = nicOK
		}
	})
}

// maybeConfuse models the card wedging on a garbage command stream.
func (n *NIC) maybeConfuse() {
	if n.cfg.ConfuseProb <= 0 || n.confusion == nicDeep {
		return
	}
	if n.env.Rand().Float64() >= n.cfg.ConfuseProb {
		return
	}
	n.Stats.Confusions++
	n.confusion = nicSoft
	if n.env.Rand().Float64() < n.cfg.DeepConfuseProb {
		n.confusion = nicDeep
		n.Stats.DeepConfused++
	}
	n.enabled = false
}

// BIOSReset is the host-level recovery of last resort for a deeply
// confused card (paper §7.2: "a low-level BIOS reset was needed"). It is
// not reachable from driver code.
func (n *NIC) BIOSReset() {
	n.confusion = nicOK
	n.enabled = false
	n.resetBusy = false
	n.rxRing = nil
	n.dmaRx = nil
	n.txBusy = false
}

// Confused reports whether the card is currently wedged (and deeply).
func (n *NIC) Confused() (confused, deep bool) {
	return n.confusion != nicOK, n.confusion == nicDeep
}

// transmit serializes the DMA window onto the wire.
func (n *NIC) transmit() {
	if n.confusion != nicOK || n.txBusy || n.txFrame == nil || n.wire == nil {
		return
	}
	frame := n.txFrame
	n.txFrame = nil
	n.txBusy = true
	n.Stats.TxFrames++
	serialize := sim.Time(int64(len(frame)) * int64(sim.Time(1e9)) / n.cfg.RateBps)
	n.env.Schedule(serialize, func() {
		n.txBusy = false
		n.k.RaiseIRQ(n.cfg.IRQ) // TX-done interrupt
		n.wire.carry(n.side, frame)
	})
}

// deliver is called by the wire when a frame arrives.
func (n *NIC) deliver(frame []byte, fcs uint32) {
	if !n.enabled || n.confusion != nicOK {
		n.Stats.RxDropped++
		return
	}
	if FCS(frame) != fcs {
		n.Stats.FCSErrors++
		return
	}
	if len(n.rxRing) >= n.cfg.RingSize {
		n.Stats.RxDropped++
		return
	}
	n.rxRing = append(n.rxRing, frame)
	n.k.RaiseIRQ(n.cfg.IRQ)
}

// NICHandle is the driver-side DMA window: the data path a real driver
// would program with DMA descriptors. Control decisions still go through
// the port registers.
type NICHandle struct{ n *NIC }

// Handle returns the DMA handle for the driver.
func (n *NIC) Handle() *NICHandle { return &NICHandle{n: n} }

// TakeRx returns the oldest frame popped via NICRegRxPop and not yet
// collected, or nil when the DMA window is empty.
func (h *NICHandle) TakeRx() []byte {
	if len(h.n.dmaRx) == 0 {
		return nil
	}
	f := h.n.dmaRx[0]
	h.n.dmaRx = h.n.dmaRx[1:]
	h.n.Stats.RxDelivered++
	return f
}

// SetTx places a frame in the DMA window for the next NICRegTxGo command.
func (h *NICHandle) SetTx(frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	h.n.txFrame = cp
}
