package hw

import (
	"bytes"
	"testing"
	"time"
)

func newTestDisk(t *testing.T) (*Disk, func(horizon time.Duration)) {
	t.Helper()
	env, k := testRig(t)
	d := NewDisk(env, k, DiskConfig{
		Base: 0x2000, IRQ: 14, Sectors: 1024, Seed: 7,
	})
	return d, func(h time.Duration) { env.Run(h) }
}

func (d *Disk) out(reg, val uint32) { d.PortOut(d.cfg.Base+reg, val) }

func (d *Disk) in(reg uint32) uint32 {
	v, _ := d.PortIn(d.cfg.Base + reg)
	return v
}

func TestDiskReadCommand(t *testing.T) {
	d, run := newTestDisk(t)
	d.out(DiskRegLBA, 10)
	d.out(DiskRegCount, 2)
	d.out(DiskRegCmd, DiskCmdRead)
	if d.in(DiskRegStatus)&DiskStatBusy == 0 {
		t.Fatal("disk not busy after read command")
	}
	run(time.Second)
	st := d.in(DiskRegStatus)
	if st&DiskStatDRQ == 0 || st&DiskStatReady == 0 {
		t.Fatalf("status = %#x, want DRQ|READY", st)
	}
	data := d.Handle().TakeData()
	if len(data) != 2*SectorSize {
		t.Fatalf("len = %d", len(data))
	}
	if !bytes.Equal(data[:SectorSize], d.PeekSector(10)) {
		t.Fatal("sector 10 content mismatch")
	}
	if !bytes.Equal(data[SectorSize:], d.PeekSector(11)) {
		t.Fatal("sector 11 content mismatch")
	}
}

func TestDiskWriteCommand(t *testing.T) {
	d, run := newTestDisk(t)
	payload := bytes.Repeat([]byte{0xAB}, SectorSize)
	d.Handle().PutData(payload)
	d.out(DiskRegLBA, 20)
	d.out(DiskRegCount, 1)
	d.out(DiskRegCmd, DiskCmdWrite)
	run(time.Second)
	if !bytes.Equal(d.PeekSector(20), payload) {
		t.Fatal("write did not commit")
	}
}

func TestDiskWriteReadRoundtrip(t *testing.T) {
	d, run := newTestDisk(t)
	payload := bytes.Repeat([]byte{0x5C}, 3*SectorSize)
	d.Handle().PutData(payload)
	d.out(DiskRegLBA, 100)
	d.out(DiskRegCount, 3)
	d.out(DiskRegCmd, DiskCmdWrite)
	run(time.Second)
	d.out(DiskRegLBA, 100)
	d.out(DiskRegCount, 3)
	d.out(DiskRegCmd, DiskCmdRead)
	run(time.Second)
	if !bytes.Equal(d.Handle().TakeData(), payload) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestDiskDeterministicContent(t *testing.T) {
	d1, _ := newTestDisk(t)
	d2, _ := newTestDisk(t)
	for _, lba := range []int64{0, 1, 512, 1023} {
		if !bytes.Equal(d1.PeekSector(lba), d2.PeekSector(lba)) {
			t.Fatalf("sector %d differs between same-seed disks", lba)
		}
	}
	if bytes.Equal(d1.PeekSector(0), d1.PeekSector(1)) {
		t.Fatal("adjacent sectors identical; generator is degenerate")
	}
}

func TestDiskBadLBA(t *testing.T) {
	d, run := newTestDisk(t)
	d.out(DiskRegLBA, 2000) // beyond 1024 sectors
	d.out(DiskRegCount, 1)
	d.out(DiskRegCmd, DiskCmdRead)
	run(time.Second)
	if d.in(DiskRegStatus)&DiskStatError == 0 {
		t.Fatal("no error for out-of-range LBA")
	}
}

func TestDiskZeroCount(t *testing.T) {
	d, run := newTestDisk(t)
	d.out(DiskRegLBA, 0)
	d.out(DiskRegCount, 0)
	d.out(DiskRegCmd, DiskCmdRead)
	run(time.Second)
	if d.in(DiskRegStatus)&DiskStatError == 0 {
		t.Fatal("no error for zero count")
	}
}

func TestDiskBadCommand(t *testing.T) {
	d, run := newTestDisk(t)
	d.out(DiskRegCmd, 0x77)
	run(time.Second)
	if d.Stats.BadCmds != 1 {
		t.Fatalf("BadCmds = %d, want 1", d.Stats.BadCmds)
	}
	if d.in(DiskRegStatus)&DiskStatError == 0 {
		t.Fatal("no error bit for bad command")
	}
}

func TestDiskResetQuiescesInFlight(t *testing.T) {
	d, run := newTestDisk(t)
	d.out(DiskRegLBA, 0)
	d.out(DiskRegCount, 64)
	d.out(DiskRegCmd, DiskCmdRead)
	// Reset while the read is in flight (what a restarted driver does).
	d.out(DiskRegCmd, DiskCmdReset)
	run(10 * time.Second)
	if d.Stats.InFlightKO != 1 {
		t.Fatalf("InFlightKO = %d, want 1", d.Stats.InFlightKO)
	}
	st := d.in(DiskRegStatus)
	if st&DiskStatReady == 0 {
		t.Fatalf("disk not ready after reset: %#x", st)
	}
	if d.Handle().TakeData() != nil {
		t.Fatal("stale read data survived reset")
	}
}

func TestDiskCommandIgnoredWhileBusy(t *testing.T) {
	d, run := newTestDisk(t)
	d.out(DiskRegLBA, 0)
	d.out(DiskRegCount, 8)
	d.out(DiskRegCmd, DiskCmdRead)
	d.out(DiskRegCmd, DiskCmdRead) // ignored
	run(time.Second)
	if d.Stats.Reads != 1 {
		t.Fatalf("Reads = %d, want 1", d.Stats.Reads)
	}
}

func TestDiskTimingMatchesRate(t *testing.T) {
	env, k := testRig(t)
	d := NewDisk(env, k, DiskConfig{
		Base: 0x2000, IRQ: 14, Sectors: 1 << 20, Seed: 1,
		RateBps: 32 * 1024 * 1024, Overhead: 0,
	})
	d.out(DiskRegLBA, 0)
	d.out(DiskRegCount, 64) // 32 KiB at 32 MiB/s = ~1ms
	d.out(DiskRegCmd, DiskCmdRead)
	env.Run(500 * time.Microsecond)
	if d.in(DiskRegStatus)&DiskStatBusy == 0 {
		t.Fatal("finished too early")
	}
	env.Run(time.Second)
	if d.in(DiskRegStatus)&DiskStatDRQ == 0 {
		t.Fatal("read never completed")
	}
}

func TestDiskPokePeek(t *testing.T) {
	d, _ := newTestDisk(t)
	d.PokeSector(5, []byte("bootblock"))
	got := d.PeekSector(5)
	if !bytes.HasPrefix(got, []byte("bootblock")) {
		t.Fatalf("got %q", got[:16])
	}
	if len(got) != SectorSize {
		t.Fatalf("len = %d", len(got))
	}
}
