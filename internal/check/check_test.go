package check_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"resilientos"
	"resilientos/internal/check"
	"resilientos/internal/core"
	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/sim"
)

// ---------------------------------------------------------------------
// Fake views: each invariant is driven from a hand-built system state.

func ep(slot, gen int) kernel.Endpoint { return kernel.Endpoint(gen*4096 + slot) }

type fakeKernel struct {
	procs  []kernel.ProcInfo
	grants []kernel.GrantInfo
	labels map[string]kernel.Endpoint
	alive  map[kernel.Endpoint]bool
}

func (f *fakeKernel) VisitProcs(fn func(kernel.ProcInfo)) {
	for _, p := range f.procs {
		fn(p)
	}
}

func (f *fakeKernel) VisitGrants(fn func(kernel.GrantInfo)) {
	for _, g := range f.grants {
		fn(g)
	}
}

func (f *fakeKernel) LookupLabel(l string) kernel.Endpoint {
	if e, ok := f.labels[l]; ok {
		return e
	}
	return kernel.None
}

func (f *fakeKernel) Alive(e kernel.Endpoint) bool { return f.alive[e] }

type fakeRS struct{ svcs []core.ServiceInfo }

func (f *fakeRS) Services() []core.ServiceInfo { return f.svcs }

type nameEntry struct {
	name string
	ep   kernel.Endpoint
}

type fakeDS struct{ names []nameEntry }

func (f *fakeDS) VisitNames(fn func(string, kernel.Endpoint)) {
	for _, n := range f.names {
		fn(n.name, n.ep)
	}
}

func liveProc(slot, gen int, label string) kernel.ProcInfo {
	return kernel.ProcInfo{Slot: slot, Gen: gen, Ep: ep(slot, gen), Label: label, Alive: true}
}

func countInvariant(c *check.Checker, invariant string) int {
	n := 0
	for _, v := range c.Violations() {
		if v.Invariant == invariant {
			n++
		}
	}
	return n
}

func wantInvariant(t *testing.T, c *check.Checker, invariant string) check.Violation {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Invariant == invariant {
			return v
		}
	}
	t.Fatalf("no %q violation; got %v", invariant, c.Violations())
	return check.Violation{}
}

func TestCleanStateOK(t *testing.T) {
	fk := &fakeKernel{
		procs:  []kernel.ProcInfo{liveProc(0, 1, "rs"), liveProc(1, 2, "eth.x")},
		labels: map[string]kernel.Endpoint{"rs": ep(0, 1), "eth.x": ep(1, 2)},
		alive:  map[kernel.Endpoint]bool{ep(0, 1): true, ep(1, 2): true},
	}
	fr := &fakeRS{svcs: []core.ServiceInfo{{Label: "eth.x", Ep: ep(1, 2), Running: true}}}
	fd := &fakeDS{names: []nameEntry{{"eth.x", ep(1, 2)}}}
	c := check.New(check.Config{Kernel: fk, RS: fr, DS: fd})
	for i := 0; i < 100; i++ {
		c.Step()
	}
	c.Finish()
	if !c.Ok() {
		t.Fatalf("clean state reported violations: %v", c.Violations())
	}
}

func TestDuplicateEndpoint(t *testing.T) {
	fk := &fakeKernel{procs: []kernel.ProcInfo{
		liveProc(3, 1, "a"),
		{Slot: 3, Gen: 1, Ep: ep(3, 1), Label: "b", Alive: true},
	}}
	c := check.New(check.Config{Kernel: fk})
	c.Step()
	v := wantInvariant(t, c, "endpoint-unique")
	if !strings.Contains(v.Detail, "shared") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestDuplicateLabel(t *testing.T) {
	fk := &fakeKernel{procs: []kernel.ProcInfo{liveProc(1, 1, "mfs"), liveProc(2, 1, "mfs")}}
	c := check.New(check.Config{Kernel: fk})
	c.Step()
	v := wantInvariant(t, c, "endpoint-unique")
	if !strings.Contains(v.Detail, `label "mfs"`) {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestEndpointSlotMismatch(t *testing.T) {
	fk := &fakeKernel{procs: []kernel.ProcInfo{
		{Slot: 5, Gen: 1, Ep: ep(4, 1), Label: "a", Alive: true},
	}}
	c := check.New(check.Config{Kernel: fk})
	c.Step()
	wantInvariant(t, c, "endpoint-unique")
}

func TestDeadOwnerKeepsGrants(t *testing.T) {
	fk := &fakeKernel{procs: []kernel.ProcInfo{
		{Slot: 2, Gen: 1, Ep: ep(2, 1), Label: "mfs", Alive: false, Grants: 2},
	}}
	c := check.New(check.Config{Kernel: fk})
	c.Step()
	v := wantInvariant(t, c, "grant-safety")
	if !strings.Contains(v.Detail, "dead instance") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestStaleGranteeGrantGrace(t *testing.T) {
	dead := ep(7, 1)
	fk := &fakeKernel{
		procs: []kernel.ProcInfo{liveProc(1, 1, "mfs")},
		grants: []kernel.GrantInfo{
			{Owner: ep(1, 1), OwnerLabel: "mfs", ID: 9, To: dead, Access: kernel.GrantRead, Len: 512},
		},
		alive: map[kernel.Endpoint]bool{ep(1, 1): true}, // dead is not alive
	}
	c := check.New(check.Config{Kernel: fk, GrantGraceSteps: 4})
	for i := 0; i < 4; i++ {
		c.Step()
	}
	if n := countInvariant(c, "grant-safety"); n != 0 {
		t.Fatalf("violation inside revocation grace window: %v", c.Violations())
	}
	for i := 0; i < 3; i++ {
		c.Step()
	}
	wantInvariant(t, c, "grant-safety")

	// Revoking the grant re-arms the episode.
	fk.grants = nil
	c.Step()
}

func TestGrantToAnyIsFine(t *testing.T) {
	fk := &fakeKernel{
		procs: []kernel.ProcInfo{liveProc(1, 1, "mfs")},
		grants: []kernel.GrantInfo{
			{Owner: ep(1, 1), OwnerLabel: "mfs", ID: 1, To: kernel.Any, Access: kernel.GrantWrite},
		},
	}
	c := check.New(check.Config{Kernel: fk, GrantGraceSteps: 1})
	for i := 0; i < 10; i++ {
		c.Step()
	}
	if !c.Ok() {
		t.Fatalf("grant to Any flagged: %v", c.Violations())
	}
}

func TestStaleEndpointAfterRestart(t *testing.T) {
	fk := &fakeKernel{
		procs:  []kernel.ProcInfo{liveProc(1, 2, "eth.x")},
		labels: map[string]kernel.Endpoint{"eth.x": ep(1, 2)},
		alive:  map[kernel.Endpoint]bool{ep(1, 2): true},
	}
	fd := &fakeDS{names: []nameEntry{{"eth.x", ep(1, 1)}}} // stale generation
	c := check.New(check.Config{Kernel: fk, DS: fd})
	c.Step()
	v := wantInvariant(t, c, "stale-endpoint")
	if !strings.Contains(v.Detail, "live instance") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestStaleEndpointPublishWindow(t *testing.T) {
	fk := &fakeKernel{
		procs:  []kernel.ProcInfo{liveProc(1, 2, "eth.x")},
		labels: map[string]kernel.Endpoint{"eth.x": ep(1, 2)},
		alive:  map[kernel.Endpoint]bool{ep(1, 2): true},
	}
	fd := &fakeDS{names: []nameEntry{{"eth.x", ep(1, 1)}}}
	c := check.New(check.Config{Kernel: fk, DS: fd})

	// Restart announced: the publish is legitimately in flight.
	c.Emit(obs.Event{Kind: obs.KindRestart, Comp: "eth.x", V1: int64(ep(1, 2))})
	for i := 0; i < 50; i++ {
		c.Step()
	}
	if n := countInvariant(c, "stale-endpoint"); n != 0 {
		t.Fatalf("violation during publish window: %v", c.Violations())
	}

	// Publish lands but the data store still shows the old endpoint (the
	// fake never updates): now it is a real violation.
	c.Emit(obs.Event{Kind: obs.KindPublish, Comp: "ds", Aux: "eth.x", V1: int64(ep(1, 2))})
	c.Step()
	wantInvariant(t, c, "stale-endpoint")
}

func TestStaleEndpointNoLiveInstanceSkipped(t *testing.T) {
	// StopService leaves the name behind with no live instance; that is
	// not reachable-stale (nothing to confuse it with), so no violation.
	fk := &fakeKernel{labels: map[string]kernel.Endpoint{}}
	fd := &fakeDS{names: []nameEntry{{"chr.audio", ep(3, 1)}}}
	c := check.New(check.Config{Kernel: fk, DS: fd})
	c.Step()
	if !c.Ok() {
		t.Fatalf("withdrawn-instance name flagged: %v", c.Violations())
	}
}

func TestRSGuardEndpointMismatch(t *testing.T) {
	fk := &fakeKernel{
		procs:  []kernel.ProcInfo{liveProc(1, 2, "eth.x")},
		labels: map[string]kernel.Endpoint{"eth.x": ep(1, 2)},
		alive:  map[kernel.Endpoint]bool{ep(1, 2): true},
	}
	fr := &fakeRS{svcs: []core.ServiceInfo{{Label: "eth.x", Ep: ep(1, 1), Running: true}}}
	c := check.New(check.Config{Kernel: fk, RS: fr})
	c.Step()
	v := wantInvariant(t, c, "rs-guard")
	if !strings.Contains(v.Detail, "kernel's live") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestRSGuardDeadBeyondGrace(t *testing.T) {
	var now sim.Time
	fk := &fakeKernel{labels: map[string]kernel.Endpoint{}} // instance gone
	fr := &fakeRS{svcs: []core.ServiceInfo{{Label: "eth.x", Ep: ep(1, 1), Running: true}}}
	c := check.New(check.Config{
		Kernel: fk, RS: fr,
		Now:       func() sim.Time { return now },
		DeadGrace: 10 * time.Millisecond,
	})
	c.Step() // arms deadSince at t=0
	now = 5 * time.Millisecond
	c.Step()
	if n := countInvariant(c, "rs-guard"); n != 0 {
		t.Fatalf("violation inside death-detection grace: %v", c.Violations())
	}
	now = 11 * time.Millisecond
	c.Step()
	wantInvariant(t, c, "rs-guard")
}

func TestRSGuardStoppedServiceIgnored(t *testing.T) {
	var now sim.Time
	fk := &fakeKernel{labels: map[string]kernel.Endpoint{}}
	fr := &fakeRS{svcs: []core.ServiceInfo{
		{Label: "chr.audio", Ep: ep(1, 1), Running: false, Stopped: true},
		{Label: "eth.bad", Ep: ep(2, 1), Running: false, GaveUp: true},
	}}
	c := check.New(check.Config{
		Kernel: fk, RS: fr,
		Now: func() sim.Time { return now }, DeadGrace: time.Millisecond,
	})
	for i := 0; i < 10; i++ {
		now += time.Millisecond
		c.Step()
	}
	if !c.Ok() {
		t.Fatalf("stopped/given-up services flagged: %v", c.Violations())
	}
}

func TestHeartbeatMissesAtThreshold(t *testing.T) {
	fr := &fakeRS{svcs: []core.ServiceInfo{{
		Label: "eth.x", Ep: ep(1, 1), Running: true,
		HeartbeatPeriod: 500 * time.Millisecond, HeartbeatMisses: 3,
		Missed: 3, Awaiting: true,
	}}}
	c := check.New(check.Config{RS: fr})
	c.Step()
	v := wantInvariant(t, c, "heartbeat")
	if !strings.Contains(v.Detail, "consecutive heartbeat misses") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestHeartbeatMonitoringStalled(t *testing.T) {
	var now sim.Time = 10 * time.Second
	fr := &fakeRS{svcs: []core.ServiceInfo{{
		Label: "eth.x", Ep: ep(1, 1), Running: true,
		HeartbeatPeriod: 500 * time.Millisecond, HeartbeatMisses: 3,
		NextPing: time.Second, // ping due 9s ago, never sent
	}}}
	c := check.New(check.Config{RS: fr, Now: func() sim.Time { return now }})
	c.Step()
	v := wantInvariant(t, c, "heartbeat")
	if !strings.Contains(v.Detail, "stalled") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestDefectSpanDeadline(t *testing.T) {
	var now sim.Time
	c := check.New(check.Config{
		Now:          func() sim.Time { return now },
		SpanDeadline: time.Second,
	})
	c.Emit(obs.Event{T: 0, Kind: obs.KindDefect, Comp: "eth.x", Aux: "exit"})
	now = 500 * time.Millisecond
	c.Step()
	if n := countInvariant(c, "trace-span"); n != 0 {
		t.Fatalf("violation before deadline: %v", c.Violations())
	}
	now = 1500 * time.Millisecond
	c.Step()
	v := wantInvariant(t, c, "trace-span")
	if !strings.Contains(v.Detail, "unresolved") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestSpanClosedByRestartAndGiveUp(t *testing.T) {
	var now sim.Time
	c := check.New(check.Config{Now: func() sim.Time { return now }, SpanDeadline: time.Second})
	c.Emit(obs.Event{Kind: obs.KindDefect, Comp: "eth.x"})
	c.Emit(obs.Event{Kind: obs.KindRestart, Comp: "eth.x"})
	c.Emit(obs.Event{Kind: obs.KindDefect, Comp: "disk.sata"})
	c.Emit(obs.Event{Kind: obs.KindGiveUp, Comp: "disk.sata"})
	now = 10 * time.Second
	c.Step()
	c.Finish()
	if !c.Ok() {
		t.Fatalf("closed spans flagged: %v", c.Violations())
	}
}

func TestPolicySpanNeverExits(t *testing.T) {
	c := check.New(check.Config{})
	c.Emit(obs.Event{T: time.Second, Kind: obs.KindPolicyStart, Comp: "eth.x"})
	c.Finish()
	v := wantInvariant(t, c, "trace-span")
	if !strings.Contains(v.Detail, "never exited") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
}

func TestFinishFlagsOpenSpan(t *testing.T) {
	c := check.New(check.Config{})
	c.Emit(obs.Event{Kind: obs.KindDefect, Comp: "eth.x"})
	c.Finish()
	wantInvariant(t, c, "trace-span")
}

func TestMarkResetsOpenState(t *testing.T) {
	c := check.New(check.Config{})
	c.Emit(obs.Event{Kind: obs.KindDefect, Comp: "eth.x"})
	c.Emit(obs.Event{Kind: obs.KindPolicyStart, Comp: "eth.x"})
	c.Emit(obs.Event{Kind: obs.KindMark, Comp: "experiment", Aux: "run-boundary"})
	c.Finish()
	if !c.Ok() {
		t.Fatalf("state survived a mark: %v", c.Violations())
	}
}

func TestViolationEpisodeDedup(t *testing.T) {
	fk := &fakeKernel{procs: []kernel.ProcInfo{
		{Slot: 2, Gen: 1, Ep: ep(2, 1), Label: "mfs", Alive: false, Grants: 1},
	}}
	c := check.New(check.Config{Kernel: fk})
	for i := 0; i < 500; i++ {
		c.Step()
	}
	if n := countInvariant(c, "grant-safety"); n != 1 {
		t.Fatalf("persistent condition reported %d times, want 1", n)
	}
}

func TestTraceTailKeepsRecentEvents(t *testing.T) {
	c := check.New(check.Config{TraceTail: 4})
	for i := 0; i < 10; i++ {
		c.Emit(obs.Event{T: sim.Time(i), Kind: obs.KindHeartbeat, Comp: "eth.x"})
	}
	tail := c.TraceTail()
	if len(tail) != 4 {
		t.Fatalf("tail length %d, want 4", len(tail))
	}
	if tail[0].T != 6 || tail[3].T != 9 {
		t.Fatalf("tail not the most recent events: %v", tail)
	}
}

func TestEveryNSampling(t *testing.T) {
	fk := &fakeKernel{procs: []kernel.ProcInfo{
		{Slot: 2, Gen: 1, Ep: ep(2, 1), Label: "mfs", Alive: false, Grants: 1},
	}}
	c := check.New(check.Config{Kernel: fk, EveryN: 10})
	for i := 0; i < 9; i++ {
		c.Step()
	}
	if !c.Ok() {
		t.Fatal("sampled checker scanned before its Nth step")
	}
	c.Step()
	wantInvariant(t, c, "grant-safety")
}

// ---------------------------------------------------------------------
// Real-system tests: the checker rides a full booted OS.

// TestFullSystemUnderCrashesHoldsInvariants drives the standard machine
// through repeated driver crashes with the checker attached to every
// scheduler step; the seed system must hold every invariant.
func TestFullSystemUnderCrashesHoldsInvariants(t *testing.T) {
	const seed, size = 42, int64(2 << 20)
	rec := obs.NewRecorder()
	rec.Disable(obs.KindIPCSend, obs.KindIPCRecv) // hot kinds; not needed here
	sys := resilientos.New(resilientos.Config{Seed: seed, Obs: rec})
	ck := check.Attach(sys.Env, rec, check.Config{
		Kernel: sys.Kernel, RS: sys.RS, DS: sys.DS,
	})
	sys.Run(3 * time.Second) // boot settle
	sys.ServeFile(80, seed, size)
	var res resilientos.WgetResult
	sys.Wget(resilientos.DriverRTL8139, 80, seed, size, &res)
	sys.Every(700*time.Millisecond, func() { sys.KillDriver(resilientos.DriverRTL8139) })
	sys.Every(1100*time.Millisecond, func() { sys.KillDriver(resilientos.DriverSATA) })
	sys.Run(10 * time.Second)
	ck.Finish()
	for _, v := range ck.Violations() {
		t.Errorf("invariant violation: %v", v)
	}
	if res.Bytes == 0 {
		t.Error("wget transferred nothing; workload never exercised the system")
	}
}

// TestBrokenKernelCaught deliberately breaks the kernel's grants-die-
// with-their-owner invariant (test-only reap mutation) and proves the
// checker catches it — with a trace tail usable as a repro.
func TestBrokenKernelCaught(t *testing.T) {
	run := func(broken bool) *check.Checker {
		env := sim.NewEnv(7)
		k := kernel.New(env)
		rec := obs.NewRecorder()
		rec.SetClock(env.Now)
		obs.AttachSim(env, rec)
		k.SetObs(rec)
		k.DebugLeakGrantsOnDeath(broken)
		ck := check.Attach(env, rec, check.Config{Kernel: k})

		priv := kernel.Privileges{AllowAllIPC: true, Calls: []kernel.Call{kernel.CallSafeCopy}}
		bCtx, err := k.Spawn("grantee", priv, func(c *kernel.Ctx) {
			_, _ = c.Receive(kernel.Any)
		})
		if err != nil {
			t.Fatal(err)
		}
		aCtx, err := k.Spawn("owner", priv, func(c *kernel.Ctx) {
			c.CreateGrant(make([]byte, 64), kernel.GrantRead|kernel.GrantWrite, bCtx.Endpoint())
			_, _ = c.Receive(kernel.Any)
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Schedule(10*time.Millisecond, func() {
			_ = k.Kill(aCtx.Endpoint(), kernel.SIGKILL)
		})
		env.Run(50 * time.Millisecond)
		ck.Finish()
		return ck
	}

	if ck := run(false); !ck.Ok() {
		t.Fatalf("intact kernel flagged: %v", ck.Violations())
	}
	ck := run(true)
	v := wantInvariant(t, ck, "grant-safety")
	if !strings.Contains(v.Detail, "grants must die with their owner") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
	if len(ck.TraceTail()) == 0 {
		t.Fatal("no trace tail for the repro dump")
	}
}

// TestWindowMonotonicInvariant wires the windowed telemetry sampler's
// self-check into the checker: a healthy sampled run reports nothing,
// and an injected series violation surfaces as window-monotonic — both
// from Step (mid-run polls) and from the final Finish poll.
func TestWindowMonotonicInvariant(t *testing.T) {
	var winErr error
	c := check.New(check.Config{Windows: func() error { return winErr }})
	c.Step()
	c.Finish()
	if !c.Ok() {
		t.Fatalf("healthy sampler flagged: %v", c.Violations())
	}

	winErr = errors.New("timeseries: segment 0: window 2 starts at 3s, previous ended at 2s")
	c = check.New(check.Config{Windows: func() error { return winErr }})
	for i := 0; i < 10; i++ {
		c.Step()
	}
	c.Finish()
	v := wantInvariant(t, c, "window-monotonic")
	if !strings.Contains(v.Detail, "previous ended") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
	if n := countInvariant(c, "window-monotonic"); n != 1 {
		t.Fatalf("violation reported %d times; episodes must dedup", n)
	}

	// Finish alone must also catch a violation that only appears in the
	// sampler's final partial-window flush.
	fired := false
	c = check.New(check.Config{Windows: func() error {
		if !fired {
			return nil
		}
		return errors.New("timeseries: segment 0: first window starts at 1s, segment at 0s")
	}})
	c.Step()
	fired = true
	c.Finish()
	wantInvariant(t, c, "window-monotonic")
}

// ---------------------------------------------------------------------
// Failover invariants: standby-never-serves and capsule monotonicity.

// failoverState builds a kernel with a live primary and its parked warm
// standby replica; published names are the caller's choice.
func failoverState(names []nameEntry) (*fakeKernel, *fakeDS) {
	fk := &fakeKernel{
		procs: []kernel.ProcInfo{
			liveProc(0, 1, "rs"),
			liveProc(1, 2, "eth.x"),
			liveProc(2, 1, "eth.x/sb"),
		},
		labels: map[string]kernel.Endpoint{
			"rs": ep(0, 1), "eth.x": ep(1, 2), "eth.x/sb": ep(2, 1),
		},
		alive: map[kernel.Endpoint]bool{ep(0, 1): true, ep(1, 2): true, ep(2, 1): true},
	}
	return fk, &fakeDS{names: names}
}

func TestStandbyParkedIsFine(t *testing.T) {
	fk, fd := failoverState([]nameEntry{{"eth.x", ep(1, 2)}})
	c := check.New(check.Config{Kernel: fk, DS: fd})
	for i := 0; i < 100; i++ {
		c.Step()
	}
	c.Finish()
	if !c.Ok() {
		t.Fatalf("parked standby flagged: %v", c.Violations())
	}
}

func TestStandbyServesBeforePromotion(t *testing.T) {
	// The data store resolves the service name to the live, unpromoted
	// replica — a standby serving before promotion.
	fk, fd := failoverState([]nameEntry{{"eth.x", ep(2, 1)}})
	c := check.New(check.Config{Kernel: fk, DS: fd})
	c.Step()
	v := wantInvariant(t, c, "failover")
	if !strings.Contains(v.Detail, "standby") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}
	if n := countInvariant(c, "failover"); n != 1 {
		t.Fatalf("violation reported %d times before repromotion", n)
	}

	// Promotion relabels the replica onto the service label; the same
	// endpoint serving is now legal and the episode clears.
	fk.procs[2].Label = "eth.x"
	fk.procs[1].Alive = false
	fk.alive[ep(1, 2)] = false
	c.Step()
	if n := countInvariant(c, "failover"); n != 1 {
		t.Fatalf("promotion did not clear the episode: %d violations", n)
	}
}

func TestCapsuleVersionMonotone(t *testing.T) {
	c := check.New(check.Config{})
	save := func(v int64) {
		c.Emit(obs.Event{Kind: obs.KindCapsuleSave, Comp: "eth.x", Aux: "conf", V1: v})
	}
	adopt := func(v, rejected int64) {
		c.Emit(obs.Event{Kind: obs.KindCapsuleAdopt, Comp: "eth.x", Aux: "conf", V1: v, V2: rejected})
	}

	save(1)
	adopt(1, 0)
	save(2)
	save(3)
	c.Finish()
	if !c.Ok() {
		t.Fatalf("monotone capsule chain flagged: %v", c.Violations())
	}

	// A save that repeats or regresses the version is a violation.
	c = check.New(check.Config{})
	save(3)
	save(3)
	v := wantInvariant(t, c, "failover")
	if !strings.Contains(v.Detail, "not monotone") {
		t.Fatalf("unexpected detail: %q", v.Detail)
	}

	// Adopting a capsule older than the last written one is a violation:
	// the successor resurrected stale state.
	c = check.New(check.Config{})
	save(5)
	adopt(2, 0)
	wantInvariant(t, c, "failover")

	// A rejected adopt means the successor cold-started: its restart from
	// version 1 is legal, not a regression.
	c = check.New(check.Config{})
	save(5)
	adopt(5, 1) // rejected (e.g. corrupt payload)
	save(1)
	c.Finish()
	if !c.Ok() {
		t.Fatalf("post-rejection cold restart flagged: %v", c.Violations())
	}
}
