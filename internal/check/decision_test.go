package check_test

import (
	"strings"
	"testing"

	"resilientos/internal/check"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
)

func decSink(c *check.Checker) decision.Sink { return c.DecisionSink() }

func TestDecisionWellFormedFlow(t *testing.T) {
	c := check.New(check.Config{})
	s := decSink(c)
	s.Emit(decision.Event{Kind: decision.KindTrigger, Service: "eth", Action: "declare-stuck"})
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	s.Emit(decision.Event{Kind: decision.KindAction, Service: "eth", Action: "policy-run"})
	s.Emit(decision.Event{Kind: decision.KindPolicyStep, Service: "eth", Action: "sleep"})
	s.Emit(decision.Event{Kind: decision.KindPolicyStep, Service: "eth", Action: "service"})
	s.Emit(decision.Event{Kind: decision.KindOutcome, Service: "eth", Action: "recovered"})
	s.Emit(decision.Event{Kind: decision.KindPolicyStep, Service: "eth", Action: "exit"})
	c.Finish()
	if !c.Ok() {
		t.Fatalf("well-formed flow flagged: %v", c.Violations())
	}
}

func TestDecisionActionWithoutEpisode(t *testing.T) {
	c := check.New(check.Config{})
	decSink(c).Emit(decision.Event{Kind: decision.KindAction, Service: "eth", Action: "restart-direct"})
	c.Finish()
	v := wantInvariant(t, c, "decision")
	if !strings.Contains(v.Detail, "decision-without-episode") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestDecisionDoubleTerminal(t *testing.T) {
	c := check.New(check.Config{})
	s := decSink(c)
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	s.Emit(decision.Event{Kind: decision.KindOutcome, Service: "eth", Action: "recovered"})
	s.Emit(decision.Event{Kind: decision.KindOutcome, Service: "eth", Action: "recovered"})
	c.Finish()
	v := wantInvariant(t, c, "decision")
	if !strings.Contains(v.Detail, "second terminal") && !strings.Contains(v.Detail, "without an open episode") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestDecisionEpisodeNeverClosed(t *testing.T) {
	c := check.New(check.Config{})
	decSink(c).Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	c.Finish()
	v := wantInvariant(t, c, "decision")
	if !strings.Contains(v.Detail, "episode-without-terminal-decision") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestDecisionPolicyStepOutsideRun(t *testing.T) {
	c := check.New(check.Config{})
	s := decSink(c)
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	s.Emit(decision.Event{Kind: decision.KindPolicyStep, Service: "eth", Action: "sleep"})
	s.Emit(decision.Event{Kind: decision.KindOutcome, Service: "eth", Action: "recovered"})
	c.Finish()
	v := wantInvariant(t, c, "decision")
	if !strings.Contains(v.Detail, "outside a policy run") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestDecisionMarkResets(t *testing.T) {
	// Both a decision-level mark and an obs-level mark clear open state.
	c := check.New(check.Config{})
	s := decSink(c)
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	s.Emit(decision.Event{Kind: decision.KindMark, Service: "campaign", Action: "cell"})
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "disk"})
	c.Emit(obs.Event{Kind: obs.KindMark, Comp: "experiment"})
	c.Finish()
	if !c.Ok() {
		t.Fatalf("marks did not reset decision state: %v", c.Violations())
	}
}

func TestDecisionReDetectWhileOpenAllowed(t *testing.T) {
	// A second defect before recovery finished re-arms the same episode
	// (RS reuses the open episode span); one terminal still closes it.
	c := check.New(check.Config{})
	s := decSink(c)
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	s.Emit(decision.Event{Kind: decision.KindDetect, Service: "eth"})
	s.Emit(decision.Event{Kind: decision.KindAction, Service: "eth", Action: "restart-direct"})
	s.Emit(decision.Event{Kind: decision.KindOutcome, Service: "eth", Action: "recovered"})
	c.Finish()
	if !c.Ok() {
		t.Fatalf("re-detect flagged: %v", c.Violations())
	}
}
