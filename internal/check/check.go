// Package check is a live kernel/recovery invariant checker. It watches a
// running simulation from two angles at once — as a trace-bus sink
// (internal/obs events, in emission order) and as a scheduler step hook
// (internal/sim, after every executed event) — and asserts the safety and
// liveness properties the recovery architecture promises:
//
//   - rs-guard: the reincarnation server's view of every guarded service
//     matches the kernel's process table — a running service's recorded
//     endpoint IS the kernel's live instance of that label, and a dead
//     instance is detected (and recovery begun) within a bounded delay.
//   - endpoint-unique: no two live processes share an IPC endpoint or a
//     stable label, and every endpoint encodes its own table slot.
//   - stale-endpoint: after a restart is published, the data store never
//     maps a label to anything but the kernel's live instance of that
//     label (no stale endpoint can reach a successor instance).
//   - grant-safety: grants die with their owner (a dead instance's grant
//     table is empty), and no live grant keeps referencing a dead grantee
//     incarnation beyond a small revocation window.
//   - heartbeat: every monitored service either answers its pings or is
//     declared defective within its policy deadline — the miss counter
//     never lingers at/over the kill threshold, and pings never stall.
//   - trace-span: recovery traces are well-formed — every defect span
//     closes (restart or give-up) within a deadline, and every policy
//     script that starts also exits.
//   - span-leak: causal request spans are well-formed — no span begins
//     twice or terminates without being open, and at the end of the run
//     every opened span was ended or orphaned (a span whose owner died
//     must have been orphaned by the kernel's reaper; an open span with
//     a live owner is a request legitimately still in flight, unless
//     StrictSpanLeaks is set).
//   - decision: the recovery-decision log (internal/obs/decision) is
//     consistent with the episode lifecycle — no action, policy step, or
//     terminal outcome outside an open recovery episode
//     (decision-without-episode), and every crash's episode ends with
//     exactly one terminal decision (episode-without-terminal-decision).
//   - failover: warm-standby failover is safe — the data store never maps
//     a published name to a live standby replica that was not promoted
//     (a standby never serves before promotion; together with
//     endpoint-unique this also means a name never has two live owners),
//     and state-capsule versions are monotone per driver: every save
//     strictly exceeds the last version seen, and a successor never
//     adopts a capsule older than one already written (a rejected adopt
//     legitimately restarts the chain — the successor cold-starts).
//
// Violations carry the virtual time and a one-line detail; the checker
// also keeps a bounded tail of recent trace events so a campaign can turn
// any violation into a one-command repro (seed + mutated instruction +
// last K events).
//
// Checking is deterministic: state scans visit kernel and server tables
// in sorted order, so identically-seeded runs report identical
// violations.
package check

import (
	"fmt"
	"time"

	"resilientos/internal/core"
	"resilientos/internal/drvlib"
	"resilientos/internal/kernel"
	"resilientos/internal/obs"
	"resilientos/internal/obs/decision"
	"resilientos/internal/sim"
)

// KernelView is the slice of the kernel the checker inspects.
type KernelView interface {
	VisitProcs(func(kernel.ProcInfo))
	VisitGrants(func(kernel.GrantInfo))
	LookupLabel(string) kernel.Endpoint
	Alive(kernel.Endpoint) bool
}

// RSView is the slice of the reincarnation server the checker inspects.
type RSView interface {
	Services() []core.ServiceInfo
}

// NameView is the slice of the data store the checker inspects.
type NameView interface {
	VisitNames(func(name string, ep kernel.Endpoint))
}

// Config wires a Checker to a running system. Kernel, RS, and DS may each
// be nil; the invariants needing them are skipped (the trace-span checks
// only need events).
type Config struct {
	Kernel KernelView
	RS     RSView
	DS     NameView
	Now    func() sim.Time // virtual clock; nil stamps violations with 0

	// EveryN samples the state-scan invariants to every Nth scheduler
	// step (default 1: every step). Event-driven checks always run.
	EveryN int
	// TraceTail bounds the kept-events ring for repro dumps (default 64).
	TraceTail int
	// MaxViolations stops recording after this many (default 128).
	MaxViolations int

	// DeadGrace is how long a guarded service may be dead before RS must
	// have begun recovery (default 200ms of virtual time).
	DeadGrace sim.Time
	// GrantGraceSteps is how many scheduler steps a grant may keep
	// referencing a dead grantee before it counts as leaked (default 64;
	// the owner is woken by the rendezvous abort in the same virtual
	// instant, so a healthy owner revokes within a couple of steps).
	GrantGraceSteps int
	// SpanDeadline bounds defect→restart and policy start→exit spans
	// (default 60s of virtual time; policy backoff sleeps count).
	SpanDeadline sim.Time
	// HeartbeatSlack is extra allowance past a missed ping deadline
	// before the monitoring itself is declared stalled (default: one
	// heartbeat period).
	HeartbeatSlack sim.Time

	// Windows, if set, is polled during state scans for the windowed
	// telemetry sampler's structural self-check (timeseries.Sampler.Err):
	// a non-nil result — windows out of order, overlapping, or with
	// non-dense indices — is a window-monotonic violation. The poll is a
	// single function call per scan, so attaching a sampler to a checked
	// run costs nothing measurable.
	Windows func() error

	// StrictSpanLeaks makes every causal span still open at Finish a
	// span-leak violation. The default is lenient: an open span whose
	// owning component is still alive is a request legitimately in
	// flight (a blocked socket read, say) — only spans owned by dead
	// components count, and those indicate the kernel reaper failed to
	// orphan them. Set it for workloads known to quiesce before the end
	// of the run.
	StrictSpanLeaks bool
}

// Violation is one invariant failure.
type Violation struct {
	T         sim.Time
	Invariant string // "rs-guard", "endpoint-unique", "stale-endpoint", "grant-safety", "heartbeat", "trace-span", "span-leak", "window-monotonic", "decision", "failover"
	Comp      string // component label the violation is about
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s(%s): %s", time.Duration(v.T), v.Invariant, v.Comp, v.Detail)
}

// Checker enforces the invariants. Attach it with obs.Recorder.AddSink
// (events) and sim.Env.SetStepHook (state scans).
type Checker struct {
	cfg  Config
	tail *obs.RingSink

	step       int // scheduler steps seen
	violations []Violation
	active     map[string]bool // violation episodes currently firing

	// Event-driven state.
	pendingPublish map[string]bool      // label restarted, DS publish not yet seen
	openSpans      map[string]sim.Time  // label -> defect detection time
	openPolicies   map[string]sim.Time  // label -> policy script start time
	deadSince      map[string]sim.Time  // label -> first seen dead-while-running
	staleGrants    map[grantKey]int     // grant -> step first seen with dead grantee
	openCausal     map[int64]causalSpan // causal span ID -> begin info (span-leak)
	openDecisions  map[string]sim.Time  // label -> decision-level detect time
	openDecPolicy  map[string]sim.Time  // label -> decision-level policy-run time
	capsuleVer     map[string]int64     // label -> last capsule version saved or adopted

	// Per-step scratch state, reused to keep the every-step scans
	// allocation-free.
	seenEp     map[kernel.Endpoint]string
	seenLabel  map[string]kernel.Endpoint
	liveStale  map[grantKey]bool
	svcBuf     []core.ServiceInfo
	liveLabels map[string]bool
	standbyEps map[kernel.Endpoint]string // live standby replicas, by endpoint
}

type grantKey struct {
	owner kernel.Endpoint
	id    kernel.GrantID
	to    kernel.Endpoint
}

// causalSpan is the begin-side record of one open causal request span.
type causalSpan struct {
	comp string
	t    sim.Time
}

// Attach wires a checker into a live simulation: cfg.Now defaults to
// env.Now, the checker joins rec's sinks (nil-safe), and the scheduler's
// step hook runs the state scans after every executed event.
func Attach(env *sim.Env, rec *obs.Recorder, cfg Config) *Checker {
	if cfg.Now == nil && env != nil {
		cfg.Now = env.Now
	}
	c := New(cfg)
	rec.AddSink(c)
	if env != nil {
		env.SetStepHook(c.Step)
	}
	return c
}

// New creates a checker.
func New(cfg Config) *Checker {
	if cfg.EveryN <= 0 {
		cfg.EveryN = 1
	}
	if cfg.TraceTail <= 0 {
		cfg.TraceTail = 64
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 128
	}
	if cfg.DeadGrace <= 0 {
		cfg.DeadGrace = 200 * time.Millisecond
	}
	if cfg.GrantGraceSteps <= 0 {
		cfg.GrantGraceSteps = 64
	}
	if cfg.SpanDeadline <= 0 {
		cfg.SpanDeadline = 60 * time.Second
	}
	return &Checker{
		cfg:            cfg,
		tail:           obs.NewRingSink(cfg.TraceTail),
		active:         make(map[string]bool),
		pendingPublish: make(map[string]bool),
		openSpans:      make(map[string]sim.Time),
		openPolicies:   make(map[string]sim.Time),
		deadSince:      make(map[string]sim.Time),
		staleGrants:    make(map[grantKey]int),
		openCausal:     make(map[int64]causalSpan),
		openDecisions:  make(map[string]sim.Time),
		openDecPolicy:  make(map[string]sim.Time),
		capsuleVer:     make(map[string]int64),
		seenEp:         make(map[kernel.Endpoint]string),
		seenLabel:      make(map[string]kernel.Endpoint),
		liveStale:      make(map[grantKey]bool),
		liveLabels:     make(map[string]bool),
		standbyEps:     make(map[kernel.Endpoint]string),
	}
}

func (c *Checker) now() sim.Time {
	if c.cfg.Now == nil {
		return 0
	}
	return c.cfg.Now()
}

// report records one violation episode; key dedupes a condition that
// holds across many consecutive steps (clearKey re-arms it).
func (c *Checker) report(key, invariant, comp, detail string) {
	if c.active[key] {
		return
	}
	c.active[key] = true
	if len(c.violations) >= c.cfg.MaxViolations {
		return
	}
	c.violations = append(c.violations, Violation{
		T: c.now(), Invariant: invariant, Comp: comp, Detail: detail,
	})
}

func (c *Checker) clearKey(key string) { delete(c.active, key) }

// Violations returns everything recorded so far.
func (c *Checker) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// Ok reports whether no invariant has failed.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }

// TraceTail returns the most recent trace events (oldest first), for
// repro dumps.
func (c *Checker) TraceTail() []obs.Event { return c.tail.Events() }

// ---------------------------------------------------------------------
// Event-driven checks (obs.Sink).

// Emit implements obs.Sink: it feeds the repro tail and maintains the
// span and publish state machines.
func (c *Checker) Emit(e obs.Event) {
	c.tail.Emit(e)
	switch e.Kind {
	case obs.KindMark:
		// Run boundary: forget open state, as the timeline builder does.
		c.pendingPublish = make(map[string]bool)
		c.openSpans = make(map[string]sim.Time)
		c.openPolicies = make(map[string]sim.Time)
		c.openCausal = make(map[int64]causalSpan)
		c.openDecisions = make(map[string]sim.Time)
		c.openDecPolicy = make(map[string]sim.Time)
		c.capsuleVer = make(map[string]int64)
	case obs.KindSpanBegin:
		if prev, dup := c.openCausal[e.Span]; dup {
			c.report(fmt.Sprintf("spanbegin:%d", e.Span), "span-leak", e.Comp,
				fmt.Sprintf("span %d begun twice (first by %s at %v)",
					e.Span, prev.comp, time.Duration(prev.t)))
		}
		c.openCausal[e.Span] = causalSpan{comp: e.Comp, t: e.T}
	case obs.KindSpanEnd, obs.KindSpanOrphan:
		if _, open := c.openCausal[e.Span]; !open {
			c.report(fmt.Sprintf("spanterm:%d", e.Span), "span-leak", e.Comp,
				fmt.Sprintf("span %d terminated without being open (never begun, or terminated twice)", e.Span))
		}
		delete(c.openCausal, e.Span)
	case obs.KindDefect:
		// A re-defect before recovery finished re-arms the deadline.
		c.openSpans[e.Comp] = e.T
	case obs.KindPolicyStart:
		c.openPolicies[e.Comp] = e.T
	case obs.KindPolicyExit:
		delete(c.openPolicies, e.Comp)
	case obs.KindRestart:
		c.pendingPublish[e.Comp] = true
		delete(c.openSpans, e.Comp)
		c.clearKey("span:" + e.Comp)
	case obs.KindGiveUp:
		delete(c.openSpans, e.Comp)
		c.clearKey("span:" + e.Comp)
	case obs.KindPublish:
		// Aux is the published name (V2=1 marks a withdraw).
		delete(c.pendingPublish, e.Aux)
	case obs.KindCapsuleSave:
		// Capsule versions must be strictly monotone per driver label.
		if prev, ok := c.capsuleVer[e.Comp]; ok && e.V1 <= prev {
			c.report(fmt.Sprintf("capver:%s:%d", e.Comp, e.V1), "failover", e.Comp,
				fmt.Sprintf("capsule version not monotone: saved v%d after v%d", e.V1, prev))
		}
		c.capsuleVer[e.Comp] = e.V1
	case obs.KindCapsuleAdopt:
		if e.V2 != 0 {
			// Rejected capsule: the successor cold-starts and legitimately
			// restarts the version chain from zero.
			delete(c.capsuleVer, e.Comp)
			break
		}
		if prev, ok := c.capsuleVer[e.Comp]; ok && e.V1 < prev {
			c.report(fmt.Sprintf("capadopt:%s:%d", e.Comp, e.V1), "failover", e.Comp,
				fmt.Sprintf("adopted capsule v%d older than last written v%d", e.V1, prev))
		}
		c.capsuleVer[e.Comp] = e.V1
	}
}

// DecisionSink returns the sink to attach to a decision.Recorder
// (decision.Recorder.AddSink); every recovery-decision event then flows
// through the decision invariant.
func (c *Checker) DecisionSink() decision.Sink { return decisionSink{c} }

// decisionSink adapts the checker to decision.Sink (the checker itself
// already implements obs.Sink with an incompatible Emit).
type decisionSink struct{ c *Checker }

func (s decisionSink) Emit(e decision.Event) { s.c.onDecision(e) }

// onDecision maintains the decision-level episode state machine: detect
// opens, exactly one outcome closes, actions and policy steps must fall
// inside. Triggers are pre-episode by design and always allowed. Marks
// reset the state via the obs-side KindMark case — but decision logs can
// carry their own marks too (whatif cell boundaries), handled here.
func (c *Checker) onDecision(e decision.Event) {
	switch e.Kind {
	case decision.KindMark:
		c.openDecisions = make(map[string]sim.Time)
		c.openDecPolicy = make(map[string]sim.Time)
	case decision.KindTrigger:
		// Pre-episode by design.
	case decision.KindDetect:
		c.openDecisions[e.Service] = e.T
		c.clearKey("decact:" + e.Service)
		c.clearKey("decterm:" + e.Service)
	case decision.KindAction:
		if _, open := c.openDecisions[e.Service]; !open {
			c.report("decact:"+e.Service, "decision", e.Service,
				fmt.Sprintf("decision-without-episode: action %q at %v outside an open recovery episode",
					e.Action, time.Duration(e.T)))
		}
		if e.Action == "policy-run" {
			c.openDecPolicy[e.Service] = e.T
		}
	case decision.KindPolicyStep:
		if _, open := c.openDecPolicy[e.Service]; !open {
			c.report("decstep:"+e.Service, "decision", e.Service,
				fmt.Sprintf("decision-without-episode: policy step %q at %v outside a policy run",
					e.Action, time.Duration(e.T)))
		}
		if e.Action == "exit" {
			delete(c.openDecPolicy, e.Service)
			c.clearKey("decstep:" + e.Service)
		}
	case decision.KindOutcome:
		if _, open := c.openDecisions[e.Service]; !open {
			c.report("decterm:"+e.Service, "decision", e.Service,
				fmt.Sprintf("decision-without-episode: terminal decision %q at %v without an open episode (missing detect, or a second terminal)",
					e.Action, time.Duration(e.T)))
		}
		delete(c.openDecisions, e.Service)
	}
}

// ---------------------------------------------------------------------
// State-scan checks (scheduler step hook).

// Step runs the state scans; attach it via sim.Env.SetStepHook. The
// event-driven state it consults is already up to date for the step, as
// sinks run synchronously inside the step's event.
func (c *Checker) Step() {
	c.step++
	if c.step%c.cfg.EveryN != 0 {
		return
	}
	now := c.now()
	if c.cfg.Kernel != nil {
		c.scanProcs()
		c.scanGrants()
		if c.cfg.DS != nil {
			c.scanNames()
		}
	}
	if c.cfg.RS != nil {
		c.scanServices(now)
	}
	c.scanSpans(now)
	if c.cfg.Windows != nil {
		if err := c.cfg.Windows(); err != nil {
			c.report("windows", "window-monotonic", "timeseries", err.Error())
		}
	}
}

// Finish flushes end-of-run checks: spans and policy scripts still open
// are violations regardless of deadline (the run is over; they can never
// close). Call it once after the final Run.
func (c *Checker) Finish() {
	// Final poll of the window series: the sampler's own Finish flushes a
	// partial window after the scheduler's last step hook has run.
	if c.cfg.Windows != nil {
		if err := c.cfg.Windows(); err != nil {
			c.report("windows", "window-monotonic", "timeseries", err.Error())
		}
	}
	for _, comp := range sortedTimeKeys(c.openSpans) {
		c.report("finish-span:"+comp, "trace-span", comp,
			fmt.Sprintf("recovery span open at end of run (defect at %v, no restart/give-up)",
				time.Duration(c.openSpans[comp])))
	}
	for _, comp := range sortedTimeKeys(c.openPolicies) {
		c.report("finish-policy:"+comp, "trace-span", comp,
			fmt.Sprintf("policy script started at %v never exited",
				time.Duration(c.openPolicies[comp])))
	}
	for _, comp := range sortedTimeKeys(c.openDecisions) {
		c.report("finish-decision:"+comp, "decision", comp,
			fmt.Sprintf("episode-without-terminal-decision: crash detected at %v has no terminal decision",
				time.Duration(c.openDecisions[comp])))
	}
	for _, id := range sortedSpanIDs(c.openCausal) {
		sp := c.openCausal[id]
		if !c.cfg.StrictSpanLeaks {
			// Lenient mode: an open span whose owner is still alive is a
			// request legitimately in flight. Only a dead owner's open
			// span is a leak — the reaper should have orphaned it.
			if c.cfg.Kernel == nil || c.cfg.Kernel.LookupLabel(sp.comp) != kernel.None {
				continue
			}
		}
		c.report(fmt.Sprintf("finish-causal:%d", id), "span-leak", sp.comp,
			fmt.Sprintf("span %d opened at %v never ended or orphaned",
				id, time.Duration(sp.t)))
	}
}

// scanProcs asserts endpoint and label uniqueness and slot consistency,
// and that dead instances hold no grants. The scratch maps are reused
// across steps: this runs after every scheduler event.
func (c *Checker) scanProcs() {
	seenEp := c.seenEp
	seenLabel := c.seenLabel
	for k := range seenEp {
		delete(seenEp, k)
	}
	for k := range seenLabel {
		delete(seenLabel, k)
	}
	for k := range c.standbyEps {
		delete(c.standbyEps, k)
	}
	c.cfg.Kernel.VisitProcs(func(p kernel.ProcInfo) {
		if !p.Alive {
			if p.Grants > 0 {
				c.report(fmt.Sprintf("leak:%v", p.Ep), "grant-safety", p.Label,
					fmt.Sprintf("dead instance %v still holds %d grant(s); grants must die with their owner",
						p.Ep, p.Grants))
			}
			return
		}
		if int(p.Ep)%4096 != p.Slot { // endpoint must encode its own slot
			c.report(fmt.Sprintf("slot:%v", p.Ep), "endpoint-unique", p.Label,
				fmt.Sprintf("endpoint %v does not encode its table slot %d", p.Ep, p.Slot))
		}
		if prev, dup := seenEp[p.Ep]; dup {
			c.report(fmt.Sprintf("dupep:%v", p.Ep), "endpoint-unique", p.Label,
				fmt.Sprintf("endpoint %v shared by %q and %q", p.Ep, prev, p.Label))
		}
		seenEp[p.Ep] = p.Label
		if prev, dup := seenLabel[p.Label]; dup {
			c.report("duplabel:"+p.Label, "endpoint-unique", p.Label,
				fmt.Sprintf("label %q borne by two live instances (%v and %v)", p.Label, prev, p.Ep))
		}
		seenLabel[p.Label] = p.Ep
		if drvlib.IsStandbyLabel(p.Label) {
			c.standbyEps[p.Ep] = p.Label
		}
	})
}

// scanGrants asserts that no grant keeps referencing a dead grantee
// incarnation beyond the revocation window.
func (c *Checker) scanGrants() {
	live := c.liveStale
	for k := range live {
		delete(live, k)
	}
	c.cfg.Kernel.VisitGrants(func(g kernel.GrantInfo) {
		if g.To == kernel.Any || c.cfg.Kernel.Alive(g.To) {
			return
		}
		k := grantKey{owner: g.Owner, id: g.ID, to: g.To}
		live[k] = true
		first, seen := c.staleGrants[k]
		if !seen {
			c.staleGrants[k] = c.step
			return
		}
		if c.step-first > c.cfg.GrantGraceSteps {
			c.report(fmt.Sprintf("stalegrant:%v:%d", g.Owner, g.ID), "grant-safety", g.OwnerLabel,
				fmt.Sprintf("grant %d of %s (%v) still targets dead incarnation %v after %d steps",
					g.ID, g.OwnerLabel, g.Owner, g.To, c.step-first))
		}
	})
	for k := range c.staleGrants {
		if !live[k] {
			delete(c.staleGrants, k)
			c.clearKey(fmt.Sprintf("stalegrant:%v:%d", k.owner, k.id))
		}
	}
}

// scanNames asserts the no-stale-endpoint-after-restart invariant: a
// published name with a live instance of the same label must map to that
// instance, unless the publish for a just-restarted instance is still in
// flight.
func (c *Checker) scanNames() {
	c.cfg.DS.VisitNames(func(name string, ep kernel.Endpoint) {
		// failover: a published name must never route to a live standby
		// replica — a standby serves only after promotion relabels it.
		if lbl, isStandby := c.standbyEps[ep]; isStandby {
			c.report("sbserve:"+name, "failover", name,
				fmt.Sprintf("data store maps %q to %v, a live unpromoted standby (%s)",
					name, ep, lbl))
		} else {
			c.clearKey("sbserve:" + name)
		}
		if c.pendingPublish[name] {
			return // restart published in the data store momentarily
		}
		liveEp := c.cfg.Kernel.LookupLabel(name)
		if liveEp == kernel.None || liveEp == ep {
			c.clearKey("stale:" + name)
			return
		}
		c.report("stale:"+name, "stale-endpoint", name,
			fmt.Sprintf("data store maps %q to %v but the live instance is %v", name, ep, liveEp))
	})
}

// scanServices asserts the rs-guard and heartbeat invariants against the
// reincarnation server's own bookkeeping.
func (c *Checker) scanServices(now sim.Time) {
	// Snapshot into a reused buffer when the view supports it (the real
	// RS does); this scan runs after every scheduler event.
	var svcs []core.ServiceInfo
	if s, ok := c.cfg.RS.(interface {
		ServicesInto([]core.ServiceInfo) []core.ServiceInfo
	}); ok {
		c.svcBuf = s.ServicesInto(c.svcBuf[:0])
		svcs = c.svcBuf
	} else {
		svcs = c.cfg.RS.Services()
	}
	liveLabels := c.liveLabels
	for k := range liveLabels {
		delete(liveLabels, k)
	}
	for _, svc := range svcs {
		liveLabels[svc.Label] = true
		if !svc.Running || svc.Stopped || svc.GaveUp {
			delete(c.deadSince, svc.Label)
			c.clearKey("guard:" + svc.Label)
			c.clearKey("dead:" + svc.Label)
			continue
		}
		kernelEp := kernel.None
		if c.cfg.Kernel != nil {
			kernelEp = c.cfg.Kernel.LookupLabel(svc.Label)
		}
		// rs-guard part 1: a live instance of a guarded label must be the
		// incarnation RS spawned (RS is the parent of all system procs).
		if kernelEp != kernel.None && kernelEp != svc.Ep {
			c.report("guard:"+svc.Label, "rs-guard", svc.Label,
				fmt.Sprintf("RS records instance %v but the kernel's live %q is %v",
					svc.Ep, svc.Label, kernelEp))
		} else {
			c.clearKey("guard:" + svc.Label)
		}
		// rs-guard part 2: a dead instance must be detected within the
		// grace window (defect classes 1-3 flow through PM immediately).
		if c.cfg.Kernel != nil && kernelEp == kernel.None {
			first, seen := c.deadSince[svc.Label]
			if !seen {
				c.deadSince[svc.Label] = now
			} else if now-first > c.cfg.DeadGrace {
				c.report("dead:"+svc.Label, "rs-guard", svc.Label,
					fmt.Sprintf("instance %v dead for %v with no recovery begun",
						svc.Ep, time.Duration(now-first)))
			}
		} else {
			delete(c.deadSince, svc.Label)
			c.clearKey("dead:" + svc.Label)
		}
		// Heartbeat liveness.
		if svc.HeartbeatPeriod > 0 {
			misses := svc.HeartbeatMisses
			if misses <= 0 {
				misses = 3
			}
			if svc.Missed >= misses {
				c.report("hbmiss:"+svc.Label, "heartbeat", svc.Label,
					fmt.Sprintf("%d consecutive heartbeat misses (threshold %d) without a defect",
						svc.Missed, misses))
			} else {
				c.clearKey("hbmiss:" + svc.Label)
			}
			slack := c.cfg.HeartbeatSlack
			if slack <= 0 {
				slack = svc.HeartbeatPeriod
			}
			if svc.NextPing > 0 && now > svc.NextPing+svc.HeartbeatPeriod+slack {
				c.report("hbstall:"+svc.Label, "heartbeat", svc.Label,
					fmt.Sprintf("heartbeat monitoring stalled: ping due at %v never sent (now %v)",
						time.Duration(svc.NextPing), time.Duration(now)))
			} else {
				c.clearKey("hbstall:" + svc.Label)
			}
		}
	}
	for label := range c.deadSince {
		if !liveLabels[label] {
			delete(c.deadSince, label)
		}
	}
}

// scanSpans asserts recovery spans and policy scripts close in time.
func (c *Checker) scanSpans(now sim.Time) {
	for _, comp := range sortedTimeKeys(c.openSpans) {
		if now-c.openSpans[comp] > c.cfg.SpanDeadline {
			c.report("span:"+comp, "trace-span", comp,
				fmt.Sprintf("defect at %v still unresolved after %v (no restart or give-up)",
					time.Duration(c.openSpans[comp]), time.Duration(now-c.openSpans[comp])))
		}
	}
	for _, comp := range sortedTimeKeys(c.openPolicies) {
		if now-c.openPolicies[comp] > c.cfg.SpanDeadline {
			c.report("policy:"+comp, "trace-span", comp,
				fmt.Sprintf("policy script running since %v (deadline %v)",
					time.Duration(c.openPolicies[comp]), time.Duration(c.cfg.SpanDeadline)))
		}
	}
}

func sortedSpanIDs(m map[int64]causalSpan) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func sortedTimeKeys(m map[string]sim.Time) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the maps are tiny (open spans are rare).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
