package kernel

import "resilientos/internal/obs"

// Message is the fixed-shape IPC unit, modeled on MINIX's small fixed-size
// messages: a type tag, a few scalar arguments, an optional grant reference
// for bulk data, and a small inline payload used where real MINIX would use
// a grant for brevity's sake (e.g. network frames). The kernel fills in
// Source on delivery.
type Message struct {
	Source Endpoint
	Type   int32

	// Trace is the causal trace context the message carries. When
	// observability is on, the kernel stamps the sender's ambient context
	// here at Send (unless the sender set one explicitly) and the receiver
	// adopts it as its own ambient context on delivery; notifications are
	// always context-free. With a nil recorder the field stays zero and
	// costs nothing.
	Trace obs.SpanContext

	// Scalar arguments; meaning depends on Type (like MINIX's m1_i1 etc.).
	Arg1, Arg2, Arg3, Arg4 int64

	// Grant is a memory grant in the *sender's* grant table that the
	// receiver may access via SafeCopy while handling this request.
	Grant GrantID

	// Name carries a short string argument (device names, labels).
	Name string

	// Payload is small inline data. Slices are shared, not copied; by
	// convention senders do not mutate a payload after sending.
	Payload []byte
}

// Message types used by the kernel itself. Servers and drivers define their
// own protocol types in higher packages; kernel-reserved values are negative
// to stay out of their way.
const (
	// MsgNotify is a notification; Source tells who sent it. For Hardware
	// notifications Arg1 holds the pending-IRQ bitmask; for System
	// notifications the pending signals must be fetched with SigPending.
	MsgNotify int32 = -100
)
