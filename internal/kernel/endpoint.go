package kernel

import "fmt"

// Endpoint identifies a process instance for IPC. Endpoints are temporally
// unique: they combine a process-table slot with a generation number that is
// bumped each time the slot is reused, so messages addressed to a dead
// instance of a component fail instead of reaching its successor. This is
// the mechanism the paper relies on for safe recovery ("our design uses
// temporarily unique IPC endpoints, so that messages cannot be delivered to
// the wrong process during a failure").
type Endpoint int32

// maxSlots bounds the process table; generous for a simulated OS.
const maxSlots = 4096

// Reserved pseudo-endpoints.
const (
	// Any matches any sender in Receive.
	Any Endpoint = -1
	// None is the zero of "no endpoint".
	None Endpoint = -2
	// Hardware is the pseudo-source of IRQ notifications.
	Hardware Endpoint = -3
	// Clock is the pseudo-source of alarm notifications.
	Clock Endpoint = -4
	// System is the pseudo-source of signal notifications.
	System Endpoint = -5
)

func makeEndpoint(slot, gen int) Endpoint {
	return Endpoint(gen*maxSlots + slot)
}

func (e Endpoint) slot() int { return int(e) % maxSlots }

func (e Endpoint) valid() bool { return e >= 0 }

// String renders the endpoint as slot:generation, or the reserved name.
func (e Endpoint) String() string {
	switch e {
	case Any:
		return "ANY"
	case None:
		return "NONE"
	case Hardware:
		return "HARDWARE"
	case Clock:
		return "CLOCK"
	case System:
		return "SYSTEM"
	}
	return fmt.Sprintf("%d:%d", e.slot(), int(e)/maxSlots)
}
