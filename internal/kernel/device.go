package kernel

// Device is the hardware side of the port-I/O bus. Device models in
// internal/hw implement it and are mapped into the kernel's port space; a
// driver reaches them only through Ctx.DevIn/DevOut, which enforce the
// per-process port privileges (paper §4).
type Device interface {
	// PortIn reads the device register at port (absolute port number).
	PortIn(port uint32) (uint32, error)
	// PortOut writes the device register at port.
	PortOut(port uint32, val uint32) error
}

// MapDevice maps dev into the kernel port space for the given range.
// Overlapping an existing mapping panics: the machine topology is fixed at
// boot and overlap is a configuration bug.
func (k *Kernel) MapDevice(r PortRange, dev Device) {
	for p := r.Lo; p < r.Hi; p++ {
		if _, dup := k.ports[p]; dup {
			panic("kernel: overlapping device port mapping")
		}
		k.ports[p] = dev
	}
}

// irqLine fans an interrupt line out to subscribed processes.
type irqLine struct {
	line int
	subs []*procEntry
	mask map[*procEntry]bool // true = disabled (masked) for that subscriber
}

func (l *irqLine) unsubscribe(e *procEntry) {
	for i, s := range l.subs {
		if s == e {
			l.subs = append(l.subs[:i], l.subs[i+1:]...)
			delete(l.mask, e)
			return
		}
	}
}

func (k *Kernel) irqLineFor(line int) *irqLine {
	l, ok := k.irqs[line]
	if !ok {
		l = &irqLine{line: line, mask: make(map[*procEntry]bool)}
		k.irqs[line] = l
	}
	return l
}

// RaiseIRQ asserts interrupt line `line`: every subscribed, unmasked
// process gets (or merges) a Hardware notification with the line's bit set
// in the pending mask. Device models call this.
func (k *Kernel) RaiseIRQ(line int) {
	l, ok := k.irqs[line]
	if !ok {
		return // no driver attached; interrupt is lost, as on real hardware
	}
	for _, e := range l.subs {
		if l.mask[e] || !e.alive {
			continue
		}
		e.irqPending |= 1 << uint(line)
		k.notifyEntry(e, Hardware)
	}
}

// devIn performs a privileged port read for e.
func (k *Kernel) devIn(e *procEntry, port uint32) (uint32, error) {
	if !e.priv.allowsCall(CallDevIO) || !e.priv.allowsPort(port) {
		return 0, ErrNotAllowed
	}
	dev, ok := k.ports[port]
	if !ok {
		return 0, ErrBadPort
	}
	return dev.PortIn(port)
}

// devOut performs a privileged port write for e.
func (k *Kernel) devOut(e *procEntry, port uint32, val uint32) error {
	if !e.priv.allowsCall(CallDevIO) || !e.priv.allowsPort(port) {
		return ErrNotAllowed
	}
	dev, ok := k.ports[port]
	if !ok {
		return ErrBadPort
	}
	return dev.PortOut(port, val)
}

// irqSubscribe attaches e to the line (enabled).
func (k *Kernel) irqSubscribe(e *procEntry, line int) error {
	if !e.priv.allowsCall(CallIRQCtl) || !e.priv.allowsIRQ(line) {
		return ErrNotAllowed
	}
	l := k.irqLineFor(line)
	for _, s := range l.subs {
		if s == e {
			l.mask[e] = false
			return nil
		}
	}
	l.subs = append(l.subs, e)
	l.mask[e] = false
	return nil
}

// irqSetMask masks or unmasks the line for e.
func (k *Kernel) irqSetMask(e *procEntry, line int, masked bool) error {
	if !e.priv.allowsCall(CallIRQCtl) || !e.priv.allowsIRQ(line) {
		return ErrNotAllowed
	}
	l, ok := k.irqs[line]
	if !ok {
		return ErrBadIRQ
	}
	found := false
	for _, s := range l.subs {
		if s == e {
			found = true
		}
	}
	if !found {
		return ErrBadIRQ
	}
	l.mask[e] = masked
	return nil
}
