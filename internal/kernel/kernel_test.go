package kernel

import (
	"errors"
	"testing"
	"time"

	"resilientos/internal/sim"
)

// trusted returns privileges with everything a test server needs.
func trusted() Privileges {
	return Privileges{
		AllowAllIPC: true,
		Calls: []Call{
			CallSafeCopy, CallDevIO, CallIRQCtl, CallAlarm,
			CallKill, CallSpawn, CallPrivCtl,
		},
	}
}

func newKernel(t *testing.T) (*sim.Env, *Kernel) {
	t.Helper()
	env := sim.NewEnv(1)
	return env, New(env)
}

func TestSendReceiveRendezvous(t *testing.T) {
	env, k := newKernel(t)
	var got Message
	rc, err := k.Spawn("receiver", trusted(), func(c *Ctx) {
		m, err := c.Receive(Any)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		got = m
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("sender", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		if err := c.Send(rc.Endpoint(), Message{Type: 7, Arg1: 42}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Run(0)
	if got.Type != 7 || got.Arg1 != 42 {
		t.Fatalf("got %+v", got)
	}
	if got.Source == None || got.Source == Any {
		t.Fatalf("source not filled in: %v", got.Source)
	}
}

func TestSendBlocksUntilReceive(t *testing.T) {
	env, k := newKernel(t)
	var sendDone sim.Time
	rc, _ := k.Spawn("receiver", trusted(), func(c *Ctx) {
		c.Sleep(5 * time.Second)
		if _, err := c.Receive(Any); err != nil {
			t.Errorf("receive: %v", err)
		}
	})
	k.Spawn("sender", trusted(), func(c *Ctx) {
		if err := c.Send(rc.Endpoint(), Message{Type: 1}); err != nil {
			t.Errorf("send: %v", err)
		}
		sendDone = c.Now()
	})
	env.Run(0)
	if sendDone != 5*time.Second {
		t.Fatalf("send completed at %v, want 5s (rendezvous)", sendDone)
	}
}

func TestSendRecRoundtrip(t *testing.T) {
	env, k := newKernel(t)
	srv, _ := k.Spawn("server", trusted(), func(c *Ctx) {
		for i := 0; i < 3; i++ {
			m, err := c.Receive(Any)
			if err != nil {
				t.Errorf("receive: %v", err)
				return
			}
			if err := c.Send(m.Source, Message{Type: m.Type, Arg1: m.Arg1 * 2}); err != nil {
				t.Errorf("reply: %v", err)
			}
		}
	})
	var replies []int64
	k.Spawn("client", trusted(), func(c *Ctx) {
		for i := int64(1); i <= 3; i++ {
			r, err := c.SendRec(srv.Endpoint(), Message{Type: 5, Arg1: i})
			if err != nil {
				t.Errorf("sendrec: %v", err)
				return
			}
			replies = append(replies, r.Arg1)
		}
	})
	env.Run(0)
	if len(replies) != 3 || replies[0] != 2 || replies[1] != 4 || replies[2] != 6 {
		t.Fatalf("replies = %v", replies)
	}
}

func TestSendToDeadEndpoint(t *testing.T) {
	env, k := newKernel(t)
	victim, _ := k.Spawn("victim", trusted(), func(c *Ctx) { c.Exit(0) })
	var got error
	k.Spawn("sender", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		got = c.Send(victim.Endpoint(), Message{Type: 1})
	})
	env.Run(0)
	if !errors.Is(got, ErrDeadDst) {
		t.Fatalf("err = %v, want ErrDeadDst", got)
	}
}

func TestStaleEndpointAfterRestart(t *testing.T) {
	// A new instance on the same slot must not receive messages addressed
	// to the previous generation.
	env, k := newKernel(t)
	first, _ := k.Spawn("drv", trusted(), func(c *Ctx) { c.Exit(0) })
	oldEp := first.Endpoint()
	var newEp Endpoint
	var sendErr error
	k.Spawn("rs", trusted(), func(c *Ctx) {
		c.Sleep(time.Second) // let the first instance die
		ep, err := c.Spawn("drv", trusted(), func(c *Ctx) {
			c.Receive(Any) // should never get the stale message
			t.Error("new instance received a message for the old one")
		})
		if err != nil {
			t.Errorf("respawn: %v", err)
			return
		}
		newEp = ep
		sendErr = c.Send(oldEp, Message{Type: 9})
	})
	env.Run(0)
	if !errors.Is(sendErr, ErrDeadDst) {
		t.Fatalf("send to stale endpoint: %v, want ErrDeadDst", sendErr)
	}
	if newEp == oldEp {
		t.Fatal("restart reused the same endpoint value")
	}
	if newEp.slot() != oldEp.slot() {
		t.Fatalf("restart did not reuse slot: old %v new %v", oldEp, newEp)
	}
}

func TestBlockedSenderAbortedOnReceiverDeath(t *testing.T) {
	env, k := newKernel(t)
	victim, _ := k.Spawn("victim", trusted(), func(c *Ctx) {
		c.Sleep(time.Hour) // never receives
	})
	var got error
	var when sim.Time
	k.Spawn("sender", trusted(), func(c *Ctx) {
		got = c.Send(victim.Endpoint(), Message{Type: 1})
		when = c.Now()
	})
	k.Spawn("killer", trusted(), func(c *Ctx) {
		c.Sleep(2 * time.Second)
		if err := c.Kill(victim.Endpoint(), SIGKILL); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	env.Run(0)
	if !errors.Is(got, ErrDeadDst) {
		t.Fatalf("send err = %v, want ErrDeadDst", got)
	}
	if when != 2*time.Second {
		t.Fatalf("send aborted at %v, want 2s", when)
	}
}

func TestReceiverAbortedWhenAwaitedSourceDies(t *testing.T) {
	// The paper's §6.2 condition: FS blocked on a reply from the disk
	// driver when the driver dies; the rendezvous is aborted by the kernel.
	env, k := newKernel(t)
	drv, _ := k.Spawn("drv", trusted(), func(c *Ctx) {
		// Accept the request, then crash before replying.
		if _, err := c.Receive(Any); err != nil {
			t.Errorf("drv receive: %v", err)
		}
		c.Sleep(time.Second)
		c.Exit(2) // panic
	})
	var got error
	k.Spawn("fs", trusted(), func(c *Ctx) {
		_, got = c.SendRec(drv.Endpoint(), Message{Type: 3})
	})
	env.Run(0)
	if !errors.Is(got, ErrSrcDied) {
		t.Fatalf("sendrec err = %v, want ErrSrcDied", got)
	}
}

func TestReceiveAnySurvivesUnrelatedDeath(t *testing.T) {
	env, k := newKernel(t)
	k.Spawn("dier", trusted(), func(c *Ctx) { c.Exit(0) })
	var got Message
	rc, _ := k.Spawn("server", trusted(), func(c *Ctx) {
		m, err := c.Receive(Any)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		got = m
	})
	k.Spawn("lateSender", trusted(), func(c *Ctx) {
		c.Sleep(10 * time.Second)
		c.Send(rc.Endpoint(), Message{Type: 4})
	})
	env.Run(0)
	if got.Type != 4 {
		t.Fatalf("got %+v, want type 4", got)
	}
}

func TestNotifyDelivery(t *testing.T) {
	env, k := newKernel(t)
	var got Message
	rc, _ := k.Spawn("receiver", trusted(), func(c *Ctx) {
		m, err := c.Receive(Any)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		got = m
	})
	sender, _ := k.Spawn("notifier", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		if err := c.Notify(rc.Endpoint()); err != nil {
			t.Errorf("notify: %v", err)
		}
	})
	env.Run(0)
	if got.Type != MsgNotify || got.Source != sender.Endpoint() {
		t.Fatalf("got %+v", got)
	}
}

func TestNotifyMergesDuplicates(t *testing.T) {
	env, k := newKernel(t)
	count := 0
	rc, _ := k.Spawn("receiver", trusted(), func(c *Ctx) {
		c.Sleep(2 * time.Second)
		for {
			c.SetAlarm(time.Second)
			m, err := c.Receive(Any)
			if err != nil {
				return
			}
			if m.Source == Clock {
				return // idle for a second: done
			}
			count++
		}
	})
	k.Spawn("notifier", trusted(), func(c *Ctx) {
		for i := 0; i < 5; i++ {
			c.Notify(rc.Endpoint())
		}
	})
	env.Run(0)
	if count != 1 {
		t.Fatalf("notification count = %d, want 1 (merged)", count)
	}
}

func TestNotifyNonblocking(t *testing.T) {
	env, k := newKernel(t)
	rc, _ := k.Spawn("busy", trusted(), func(c *Ctx) { c.Sleep(time.Hour) })
	var done sim.Time
	k.Spawn("notifier", trusted(), func(c *Ctx) {
		if err := c.Notify(rc.Endpoint()); err != nil {
			t.Errorf("notify: %v", err)
		}
		done = c.Now()
	})
	env.Run(2 * time.Second)
	if done != 0 {
		t.Fatalf("notify blocked until %v", done)
	}
}

func TestAsyncSendQueued(t *testing.T) {
	env, k := newKernel(t)
	var got []int64
	rc, _ := k.Spawn("receiver", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			m, err := c.Receive(Any)
			if err != nil {
				t.Errorf("receive: %v", err)
			}
			got = append(got, m.Arg1)
		}
	})
	k.Spawn("sender", trusted(), func(c *Ctx) {
		for i := int64(1); i <= 3; i++ {
			if err := c.AsyncSend(rc.Endpoint(), Message{Type: 2, Arg1: i}); err != nil {
				t.Errorf("asyncsend: %v", err)
			}
		}
	})
	env.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestReceiveSpecificLeavesOthersQueued(t *testing.T) {
	env, k := newKernel(t)
	var order []string
	var aEp, bEp Endpoint
	rc, _ := k.Spawn("receiver", trusted(), func(c *Ctx) {
		c.Sleep(2 * time.Second)
		m, err := c.Receive(bEp)
		if err != nil {
			t.Errorf("receive b: %v", err)
		}
		order = append(order, m.Name)
		m, err = c.Receive(aEp)
		if err != nil {
			t.Errorf("receive a: %v", err)
		}
		order = append(order, m.Name)
	})
	ac, _ := k.Spawn("a", trusted(), func(c *Ctx) {
		c.Send(rc.Endpoint(), Message{Type: 1, Name: "a"})
	})
	bc, _ := k.Spawn("b", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		c.Send(rc.Endpoint(), Message{Type: 1, Name: "b"})
	})
	aEp, bEp = ac.Endpoint(), bc.Endpoint()
	env.Run(0)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestIPCPrivilegeEnforced(t *testing.T) {
	env, k := newKernel(t)
	rc, _ := k.Spawn("fs", trusted(), func(c *Ctx) {
		c.Sleep(time.Hour)
	})
	var sendErr, notifyErr error
	restricted := Privileges{IPCTo: []string{"ds"}} // may not talk to fs
	k.Spawn("drv", restricted, func(c *Ctx) {
		sendErr = c.Send(rc.Endpoint(), Message{Type: 1})
		notifyErr = c.Notify(rc.Endpoint())
	})
	env.Run(time.Second)
	if !errors.Is(sendErr, ErrNotAllowed) {
		t.Fatalf("send err = %v, want ErrNotAllowed", sendErr)
	}
	if !errors.Is(notifyErr, ErrNotAllowed) {
		t.Fatalf("notify err = %v, want ErrNotAllowed", notifyErr)
	}
}

func TestKernelCallPrivilegeEnforced(t *testing.T) {
	env, k := newKernel(t)
	other, _ := k.Spawn("other", trusted(), func(c *Ctx) { c.Sleep(time.Hour) })
	var killErr, spawnErr error
	k.Spawn("drv", Privileges{AllowAllIPC: true}, func(c *Ctx) {
		killErr = c.Kill(other.Endpoint(), SIGKILL)
		_, spawnErr = c.Spawn("evil", trusted(), func(*Ctx) {})
	})
	env.Run(time.Second)
	if !errors.Is(killErr, ErrNotAllowed) {
		t.Fatalf("kill err = %v, want ErrNotAllowed", killErr)
	}
	if !errors.Is(spawnErr, ErrNotAllowed) {
		t.Fatalf("spawn err = %v, want ErrNotAllowed", spawnErr)
	}
	if !other.p.Alive() {
		t.Fatal("unprivileged kill succeeded")
	}
}

func TestSignalDeliveryCatchable(t *testing.T) {
	env, k := newKernel(t)
	var got []Signal
	rc, _ := k.Spawn("drv", trusted(), func(c *Ctx) {
		m, err := c.Receive(Any)
		if err != nil {
			t.Errorf("receive: %v", err)
			return
		}
		if m.Source == System {
			got = c.SigPending()
		}
	})
	k.Spawn("pm", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		if err := c.Kill(rc.Endpoint(), SIGTERM); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	env.Run(0)
	if len(got) != 1 || got[0] != SIGTERM {
		t.Fatalf("signals = %v, want [SIGTERM]", got)
	}
}

func TestSIGKILLTerminates(t *testing.T) {
	env, k := newKernel(t)
	rc, _ := k.Spawn("drv", trusted(), func(c *Ctx) { c.Sleep(time.Hour) })
	k.Spawn("pm", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		c.Kill(rc.Endpoint(), SIGKILL)
	})
	env.Run(10 * time.Second)
	cause, ok := k.CauseOf(rc.Endpoint())
	if !ok {
		t.Fatal("no cause recorded")
	}
	if cause.Kind != CauseSignal || cause.Signal != SIGKILL {
		t.Fatalf("cause = %v, want killed(SIGKILL)", cause)
	}
}

func TestTrapRecordsException(t *testing.T) {
	env, k := newKernel(t)
	rc, _ := k.Spawn("drv", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		c.Trap(ExcMMU)
		t.Error("survived trap")
	})
	env.Run(0)
	cause, ok := k.CauseOf(rc.Endpoint())
	if !ok {
		t.Fatal("no cause recorded")
	}
	if cause.Kind != CauseException || cause.Exc != ExcMMU || cause.Signal != SIGSEGV {
		t.Fatalf("cause = %v", cause)
	}
}

func TestExitCauseRecorded(t *testing.T) {
	env, k := newKernel(t)
	rc, _ := k.Spawn("drv", trusted(), func(c *Ctx) { c.Exit(3) })
	env.Run(0)
	cause, ok := k.CauseOf(rc.Endpoint())
	if !ok {
		t.Fatal("no cause recorded")
	}
	if cause.Kind != CauseExit || cause.Status != 3 {
		t.Fatalf("cause = %v, want exit(3)", cause)
	}
}

func TestDeathHookFires(t *testing.T) {
	env, k := newKernel(t)
	var label string
	var cause Cause
	k.OnDeath(func(l string, ep Endpoint, c Cause) { label, cause = l, c })
	k.Spawn("drv", trusted(), func(c *Ctx) { c.Exit(2) })
	env.Run(0)
	if label != "drv" || cause.Kind != CauseExit || cause.Status != 2 {
		t.Fatalf("hook got label=%q cause=%v", label, cause)
	}
}

func TestAlarm(t *testing.T) {
	env, k := newKernel(t)
	var when sim.Time
	k.Spawn("drv", trusted(), func(c *Ctx) {
		c.SetAlarm(3 * time.Second)
		m, err := c.Receive(Clock)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		if m.Source != Clock {
			t.Errorf("source = %v", m.Source)
		}
		when = c.Now()
	})
	env.Run(0)
	if when != 3*time.Second {
		t.Fatalf("alarm fired at %v, want 3s", when)
	}
}

func TestAlarmReplacedAndCanceled(t *testing.T) {
	env, k := newKernel(t)
	fired := 0
	k.Spawn("drv", trusted(), func(c *Ctx) {
		c.SetAlarm(time.Second)
		c.SetAlarm(2 * time.Second) // replaces
		m, _ := c.Receive(Clock)
		if m.Source == Clock {
			fired++
			if c.Now() != 2*time.Second {
				t.Errorf("fired at %v, want 2s", c.Now())
			}
		}
		c.SetAlarm(time.Second)
		c.SetAlarm(0) // cancel
		c.Sleep(5 * time.Second)
	})
	env.Run(0)
	if fired != 1 {
		t.Fatalf("alarms fired = %d, want 1", fired)
	}
}

func TestGrantSafeCopy(t *testing.T) {
	env, k := newKernel(t)
	buf := []byte("hello world")
	var ownerEp Endpoint
	var gid GrantID
	owner, _ := k.Spawn("fs", trusted(), func(c *Ctx) {
		gid = c.CreateGrant(buf, GrantRead|GrantWrite, Any)
		c.Sleep(time.Hour)
	})
	ownerEp = owner.Endpoint()
	var readBack []byte
	var copyErr error
	k.Spawn("drv", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		readBack = make([]byte, 5)
		if err := c.SafeCopyFrom(ownerEp, gid, 6, readBack); err != nil {
			t.Errorf("safecopyfrom: %v", err)
		}
		copyErr = c.SafeCopyTo(ownerEp, gid, 0, []byte("HELLO"))
	})
	env.Run(2 * time.Second)
	if string(readBack) != "world" {
		t.Fatalf("read %q, want world", readBack)
	}
	if copyErr != nil {
		t.Fatalf("safecopyto: %v", copyErr)
	}
	if string(buf[:5]) != "HELLO" {
		t.Fatalf("buf = %q", buf)
	}
}

func TestGrantBoundsAndAccess(t *testing.T) {
	env, k := newKernel(t)
	buf := make([]byte, 8)
	var ownerEp Endpoint
	var gid GrantID
	owner, _ := k.Spawn("fs", trusted(), func(c *Ctx) {
		gid = c.CreateGrant(buf, GrantRead, Any)
		c.Sleep(time.Hour)
	})
	ownerEp = owner.Endpoint()
	var oob, wr error
	k.Spawn("drv", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		oob = c.SafeCopyFrom(ownerEp, gid, 4, make([]byte, 8)) // out of bounds
		wr = c.SafeCopyTo(ownerEp, gid, 0, []byte{1})          // read-only grant
	})
	env.Run(2 * time.Second)
	if !errors.Is(oob, ErrBadGrant) {
		t.Fatalf("oob err = %v, want ErrBadGrant", oob)
	}
	if !errors.Is(wr, ErrBadGrant) {
		t.Fatalf("write err = %v, want ErrBadGrant", wr)
	}
}

func TestGrantRevokedOnDeath(t *testing.T) {
	env, k := newKernel(t)
	buf := make([]byte, 8)
	var gid GrantID
	owner, _ := k.Spawn("fs", trusted(), func(c *Ctx) {
		gid = c.CreateGrant(buf, GrantRead, Any)
		c.Sleep(time.Second)
		c.Exit(0)
	})
	var got error
	k.Spawn("drv", trusted(), func(c *Ctx) {
		c.Sleep(2 * time.Second)
		got = c.SafeCopyFrom(owner.Endpoint(), gid, 0, make([]byte, 4))
	})
	env.Run(0)
	if !errors.Is(got, ErrDeadDst) {
		t.Fatalf("err = %v, want ErrDeadDst", got)
	}
}

func TestGrantGranteeRestriction(t *testing.T) {
	env, k := newKernel(t)
	buf := make([]byte, 8)
	var gid GrantID
	intended, _ := k.Spawn("intended", trusted(), func(c *Ctx) { c.Sleep(time.Hour) })
	owner, _ := k.Spawn("fs", trusted(), func(c *Ctx) {
		gid = c.CreateGrant(buf, GrantRead, intended.Endpoint())
		c.Sleep(time.Hour)
	})
	var got error
	k.Spawn("imposter", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		got = c.SafeCopyFrom(owner.Endpoint(), gid, 0, make([]byte, 4))
	})
	env.Run(2 * time.Second)
	if !errors.Is(got, ErrBadGrant) {
		t.Fatalf("err = %v, want ErrBadGrant", got)
	}
}

func TestLookupLabel(t *testing.T) {
	env, k := newKernel(t)
	rc, _ := k.Spawn("fs", trusted(), func(c *Ctx) { c.Sleep(time.Hour) })
	env.Run(time.Second)
	if got := k.LookupLabel("fs"); got != rc.Endpoint() {
		t.Fatalf("LookupLabel = %v, want %v", got, rc.Endpoint())
	}
	if got := k.LookupLabel("nope"); got != None {
		t.Fatalf("LookupLabel(nope) = %v, want None", got)
	}
}

func TestProcCount(t *testing.T) {
	env, k := newKernel(t)
	k.Spawn("a", trusted(), func(c *Ctx) { c.Sleep(time.Hour) })
	k.Spawn("b", trusted(), func(c *Ctx) { c.Exit(0) })
	env.Run(time.Second)
	if n := k.ProcCount(); n != 1 {
		t.Fatalf("ProcCount = %d, want 1", n)
	}
}

func TestTryReceive(t *testing.T) {
	env, k := newKernel(t)
	var got []int32
	var missed int
	rc, _ := k.Spawn("server", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		// Drain everything queued without blocking.
		for {
			m, ok := c.TryReceive(Any)
			if !ok {
				break
			}
			got = append(got, m.Type)
		}
		// Nothing left: TryReceive reports false.
		if _, ok := c.TryReceive(Any); ok {
			missed++
		}
	})
	k.Spawn("sender", trusted(), func(c *Ctx) {
		c.AsyncSend(rc.Endpoint(), Message{Type: 5})
		c.AsyncSend(rc.Endpoint(), Message{Type: 6})
	})
	env.Run(2 * time.Second)
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("got %v", got)
	}
	if missed != 0 {
		t.Fatal("TryReceive returned a message from an empty queue")
	}
}

func TestTryReceiveUnblocksSender(t *testing.T) {
	env, k := newKernel(t)
	var senderDone bool
	rc, _ := k.Spawn("server", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		if m, ok := c.TryReceive(Any); !ok || m.Type != 9 {
			t.Errorf("tryreceive: ok=%v m=%+v", ok, m)
		}
		c.Sleep(time.Second)
	})
	k.Spawn("sender", trusted(), func(c *Ctx) {
		if err := c.Send(rc.Endpoint(), Message{Type: 9}); err != nil {
			t.Errorf("send: %v", err)
		}
		senderDone = true
	})
	env.Run(3 * time.Second)
	if !senderDone {
		t.Fatal("rendezvous sender not released by TryReceive")
	}
}

func TestTryReceiveSourceFilter(t *testing.T) {
	env, k := newKernel(t)
	var aEp, bEp Endpoint
	var first Endpoint
	rc, _ := k.Spawn("server", trusted(), func(c *Ctx) {
		c.Sleep(time.Second)
		// Only take b's message even though a's arrived first.
		if m, ok := c.TryReceive(bEp); ok {
			first = m.Source
		}
		// a's message is still queued.
		if m, ok := c.TryReceive(Any); !ok || m.Source != aEp {
			t.Errorf("a's message lost: ok=%v", ok)
		}
	})
	ac, _ := k.Spawn("a", trusted(), func(c *Ctx) {
		c.AsyncSend(rc.Endpoint(), Message{Type: 1})
	})
	bc, _ := k.Spawn("b", trusted(), func(c *Ctx) {
		c.Sleep(100 * time.Millisecond)
		c.AsyncSend(rc.Endpoint(), Message{Type: 2})
	})
	aEp, bEp = ac.Endpoint(), bc.Endpoint()
	env.Run(2 * time.Second)
	if first != bEp {
		t.Fatalf("first = %v, want b", first)
	}
}
