package kernel

import (
	"resilientos/internal/obs"
	"resilientos/internal/sim"
)

// Ctx is a system process's handle on the kernel: every kernel call and IPC
// primitive a server or driver may use goes through it, with the process's
// privileges enforced. A Ctx is only valid on its own process's goroutine.
type Ctx struct {
	k *Kernel
	e *procEntry
	p *sim.Proc
}

// Kernel returns the kernel this context belongs to.
func (c *Ctx) Kernel() *Kernel { return c.k }

// Endpoint returns the process's own (generation-tagged) endpoint.
func (c *Ctx) Endpoint() Endpoint { return c.e.ep }

// Label returns the process's stable component label.
func (c *Ctx) Label() string { return c.e.label }

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.k.env.Now() }

// Obs returns the kernel's observability recorder. It may be nil; all
// recorder methods are nil-safe, so callers instrument unconditionally.
func (c *Ctx) Obs() *obs.Recorder { return c.k.obs }

// Logf traces a line attributed to this process.
func (c *Ctx) Logf(format string, args ...any) {
	c.k.env.Logf(c.e.label, format, args...)
}

// Sleep suspends the process for d of virtual time.
func (c *Ctx) Sleep(d sim.Time) { c.p.Sleep(d) }

// Yield lets other same-instant work run.
func (c *Ctx) Yield() { c.p.Yield() }

// Send performs a blocking rendezvous send.
func (c *Ctx) Send(dst Endpoint, msg Message) error { return c.k.send(c.e, dst, msg) }

// Receive blocks until a message from the given source (or Any) arrives.
func (c *Ctx) Receive(from Endpoint) (Message, error) { return c.k.receive(c.e, from) }

// TryReceive returns a pending message from the given source without
// blocking; ok is false when nothing matching is queued. Servers use it
// to answer heartbeats while logically blocked on another condition.
func (c *Ctx) TryReceive(from Endpoint) (Message, bool) {
	return c.k.tryReceive(c.e, from)
}

// SendRec sends msg to dst and blocks for dst's reply. If dst dies before
// replying the call fails with ErrSrcDied (or ErrDeadDst if it died before
// accepting the request), which is exactly the condition the file server
// treats as "mark request pending and await the restart" (paper §6.2).
//
// When span tracing is on, the round trip becomes a "call:<dst-label>"
// span under the caller's ambient context: it travels in the request so
// the callee's work nests under it, ends when the reply lands, and is
// orphaned when the callee's death aborts the rendezvous — the per-request
// crash marker the recovery stories hang off. The caller's ambient context
// is restored afterwards (the reply's context must not leak into the
// caller's next, unrelated call).
func (c *Ctx) SendRec(dst Endpoint, msg Message) (Message, error) {
	start := c.k.env.Now()
	var sc, ambient obs.SpanContext
	var dstLabel string
	traced := c.k.obs.On(obs.KindSpanBegin)
	if traced {
		ambient = c.e.traceCtx
		dstLabel = c.k.labelFor(dst)
		sc = c.k.obs.StartSpan(c.e.label, "call:"+dstLabel, ambient)
		msg.Trace = sc
		c.e.openSpans = append(c.e.openSpans, sc)
	}
	reply, err := c.sendRec(dst, msg)
	if traced {
		switch err {
		case nil:
			c.k.obs.EndSpan(c.e.label, sc, 0)
		case ErrDeadDst, ErrSrcDied:
			c.k.obs.OrphanSpan(c.e.label, sc, "crash:"+dstLabel)
		default:
			c.k.obs.EndSpan(c.e.label, sc, 1)
		}
		c.dropOpenSpan(sc)
		c.e.traceCtx = ambient
	}
	if err == nil {
		c.k.obs.ObserveSendRec(c.k.env.Now() - start)
	}
	return reply, err
}

func (c *Ctx) sendRec(dst Endpoint, msg Message) (Message, error) {
	if err := c.k.send(c.e, dst, msg); err != nil {
		return Message{}, err
	}
	return c.k.receive(c.e, dst)
}

// Notify posts a nonblocking notification to dst.
func (c *Ctx) Notify(dst Endpoint) error { return c.k.notifyFrom(c.e, dst) }

// AsyncSend queues msg at dst without ever blocking the caller (MINIX
// senda); the reincarnation server uses it for heartbeat requests.
func (c *Ctx) AsyncSend(dst Endpoint, msg Message) error { return c.k.asyncSend(c.e, dst, msg) }

// Exit terminates the calling process voluntarily with the given status.
// Status 0 is a clean exit; nonzero is how a driver "panics" (defect class
// 1 of paper §5.1).
func (c *Ctx) Exit(status int) {
	c.e.cause = Cause{Kind: CauseExit, Status: status}
	c.p.Exit(status)
}

// Panic terminates the calling process as a driver panic: an exit with a
// nonzero status after logging the reason.
func (c *Ctx) Panic(reason string) {
	c.Logf("panic: %s", reason)
	c.Exit(2)
}

// Trap terminates the calling process as if the CPU/MMU raised exc; the
// kernel converts it into a kill by the corresponding signal (defect class
// 2 of paper §5.1).
func (c *Ctx) Trap(exc Exception) {
	sig := SIGILL
	if exc == ExcMMU {
		sig = SIGSEGV
	}
	c.e.cause = Cause{Kind: CauseException, Signal: sig, Exc: exc}
	c.p.Kill() // self-kill unwinds immediately
}

// SigPending returns and clears the process's queued catchable signals.
// Message loops call this after a System notification.
func (c *Ctx) SigPending() []Signal {
	sigs := c.e.sigPending
	c.e.sigPending = nil
	return sigs
}

// Kill sends sig to the process with endpoint ep (requires CallKill).
func (c *Ctx) Kill(ep Endpoint, sig Signal) error {
	if !c.e.priv.allowsCall(CallKill) {
		return ErrNotAllowed
	}
	d := c.k.lookup(ep)
	if d == nil {
		return ErrDeadDst
	}
	c.k.deliverSignal(d, sig)
	return nil
}

// Spawn creates a new system process (requires CallSpawn). Only the process
// manager / reincarnation server hold this privilege.
func (c *Ctx) Spawn(label string, priv Privileges, body func(*Ctx)) (Endpoint, error) {
	if !c.e.priv.allowsCall(CallSpawn) {
		return None, ErrNotAllowed
	}
	nc, err := c.k.Spawn(label, priv, body)
	if err != nil {
		return None, err
	}
	// The child starts under the spawner's causal context: an instance the
	// reincarnation server spawns during a recovery episode roots its
	// initialization under that episode's span.
	if c.k.obs != nil {
		nc.e.traceCtx = c.e.traceCtx
	}
	return nc.e.ep, nil
}

// Relabel changes the stable label of the live process with endpoint ep
// (requires CallPrivCtl — label assignment is a privilege-control
// operation only the reincarnation server holds). Used during standby
// promotion to hand a hot replica the dead primary's service label.
func (c *Ctx) Relabel(ep Endpoint, label string) error {
	if !c.e.priv.allowsCall(CallPrivCtl) {
		return ErrNotAllowed
	}
	return c.k.Relabel(ep, label)
}

// SetLocal stores one process-local value on the calling process. The
// driver library uses the slot for per-instance run state that package-
// level helpers (React, Stuck) must reach with only the Ctx in hand.
func (c *Ctx) SetLocal(v any) { c.e.local = v }

// Local returns the value stored by SetLocal (nil if never set).
func (c *Ctx) Local() any { return c.e.local }

// CreateGrant exposes buf to the grantee (or Any) with the given access and
// returns the grant ID to pass along in a request message.
func (c *Ctx) CreateGrant(buf []byte, access GrantAccess, to Endpoint) GrantID {
	return c.e.createGrant(buf, access, to)
}

// RevokeGrant removes a grant from the caller's table.
func (c *Ctx) RevokeGrant(id GrantID) { delete(c.e.grants, id) }

// SafeCopyFrom copies len(dst) bytes from the granted buffer (owner, id) at
// offset into dst (requires CallSafeCopy and a read grant).
func (c *Ctx) SafeCopyFrom(owner Endpoint, id GrantID, offset int, dst []byte) error {
	return c.k.safeCopyFrom(c.e, owner, id, offset, dst)
}

// SafeCopyTo copies src into the granted buffer (owner, id) at offset
// (requires CallSafeCopy and a write grant).
func (c *Ctx) SafeCopyTo(owner Endpoint, id GrantID, offset int, src []byte) error {
	return c.k.safeCopyTo(c.e, owner, id, offset, src)
}

// DevIn reads a device register (requires CallDevIO and port privilege).
func (c *Ctx) DevIn(port uint32) (uint32, error) { return c.k.devIn(c.e, port) }

// DevOut writes a device register (requires CallDevIO and port privilege).
func (c *Ctx) DevOut(port uint32, val uint32) error { return c.k.devOut(c.e, port, val) }

// IRQSubscribe attaches the process to an interrupt line; subsequent
// interrupts arrive as Hardware notifications with the line's bit set.
func (c *Ctx) IRQSubscribe(line int) error { return c.k.irqSubscribe(c.e, line) }

// IRQMask masks (true) or unmasks (false) the line for this process.
func (c *Ctx) IRQMask(line int, masked bool) error { return c.k.irqSetMask(c.e, line, masked) }

// SetAlarm arranges a Clock notification after d; any previous alarm is
// replaced. d <= 0 cancels.
func (c *Ctx) SetAlarm(d sim.Time) {
	if c.e.alarm != nil {
		c.e.alarm.Cancel()
		c.e.alarm = nil
	}
	if d <= 0 {
		return
	}
	e := c.e
	e.alarm = c.k.env.Schedule(d, func() {
		e.alarm = nil
		if e.alive {
			c.k.notifyEntry(e, Clock)
		}
	})
}

// MayComplain reports whether this process is authorized to file
// malfunction complaints with the reincarnation server.
func (c *Ctx) MayComplain() bool { return c.e.priv.MayComplain }

// LookupLabel resolves a stable label to the live instance's endpoint
// (None when down). System processes normally use the data store for this;
// the kernel-level lookup backs the data store itself and tests.
func (c *Ctx) LookupLabel(label string) Endpoint { return c.k.LookupLabel(label) }

// ---------------------------------------------------------------------
// Causal tracing

// TraceCtx returns the process's current ambient causal context: the
// context of the last non-notification message it received (or the span
// it most recently opened with BeginWork). Zero when tracing is off.
func (c *Ctx) TraceCtx() obs.SpanContext { return c.e.traceCtx }

// SetTraceCtx replaces the ambient causal context; subsequent sends are
// stamped with it. Servers use this to bind their worker loop to a
// specific request's context.
func (c *Ctx) SetTraceCtx(sc obs.SpanContext) { c.e.traceCtx = sc }

// BeginWork opens a span for a unit of work this process performs on
// behalf of parent (pass the zero context to root a fresh trace), makes
// it the ambient context, and registers it with the kernel: if the
// process dies before EndWork the kernel orphans the span in reap, which
// is how crash-interrupted requests become visible in traces. Returns
// the zero context (all the paired calls no-op) when tracing is off.
func (c *Ctx) BeginWork(name string, parent obs.SpanContext) obs.SpanContext {
	sc := c.k.obs.StartSpan(c.e.label, name, parent)
	if !sc.Valid() {
		return sc
	}
	c.e.openSpans = append(c.e.openSpans, sc)
	c.e.traceCtx = sc
	return sc
}

// EndWork closes a span opened by BeginWork with the given status and
// restores the ambient context to the enclosing open span, if any.
func (c *Ctx) EndWork(sc obs.SpanContext, status int64) {
	if !sc.Valid() {
		return
	}
	c.k.obs.EndSpan(c.e.label, sc, status)
	c.finishWork(sc)
}

// OrphanWork terminates a span opened by BeginWork as orphaned-by-crash:
// the work can never complete because a component it depended on died.
// The caller keeps running (unlike kernel-side orphaning in reap) — the
// file server uses this for block requests lost to a driver crash before
// reissuing them.
func (c *Ctx) OrphanWork(sc obs.SpanContext, reason string) {
	if !sc.Valid() {
		return
	}
	c.k.obs.OrphanSpan(c.e.label, sc, reason)
	c.finishWork(sc)
}

func (c *Ctx) finishWork(sc obs.SpanContext) {
	c.dropOpenSpan(sc)
	if n := len(c.e.openSpans); n > 0 {
		c.e.traceCtx = c.e.openSpans[n-1]
	} else {
		c.e.traceCtx = obs.SpanContext{}
	}
}

func (c *Ctx) dropOpenSpan(sc obs.SpanContext) {
	open := c.e.openSpans
	for i := len(open) - 1; i >= 0; i-- {
		if open[i] == sc {
			c.e.openSpans = append(open[:i], open[i+1:]...)
			return
		}
	}
}
