package kernel

import (
	"resilientos/internal/obs"
	"resilientos/internal/sim"
)

// Ctx is a system process's handle on the kernel: every kernel call and IPC
// primitive a server or driver may use goes through it, with the process's
// privileges enforced. A Ctx is only valid on its own process's goroutine.
type Ctx struct {
	k *Kernel
	e *procEntry
	p *sim.Proc
}

// Kernel returns the kernel this context belongs to.
func (c *Ctx) Kernel() *Kernel { return c.k }

// Endpoint returns the process's own (generation-tagged) endpoint.
func (c *Ctx) Endpoint() Endpoint { return c.e.ep }

// Label returns the process's stable component label.
func (c *Ctx) Label() string { return c.e.label }

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.k.env.Now() }

// Obs returns the kernel's observability recorder. It may be nil; all
// recorder methods are nil-safe, so callers instrument unconditionally.
func (c *Ctx) Obs() *obs.Recorder { return c.k.obs }

// Logf traces a line attributed to this process.
func (c *Ctx) Logf(format string, args ...any) {
	c.k.env.Logf(c.e.label, format, args...)
}

// Sleep suspends the process for d of virtual time.
func (c *Ctx) Sleep(d sim.Time) { c.p.Sleep(d) }

// Yield lets other same-instant work run.
func (c *Ctx) Yield() { c.p.Yield() }

// Send performs a blocking rendezvous send.
func (c *Ctx) Send(dst Endpoint, msg Message) error { return c.k.send(c.e, dst, msg) }

// Receive blocks until a message from the given source (or Any) arrives.
func (c *Ctx) Receive(from Endpoint) (Message, error) { return c.k.receive(c.e, from) }

// TryReceive returns a pending message from the given source without
// blocking; ok is false when nothing matching is queued. Servers use it
// to answer heartbeats while logically blocked on another condition.
func (c *Ctx) TryReceive(from Endpoint) (Message, bool) {
	return c.k.tryReceive(c.e, from)
}

// SendRec sends msg to dst and blocks for dst's reply. If dst dies before
// replying the call fails with ErrSrcDied (or ErrDeadDst if it died before
// accepting the request), which is exactly the condition the file server
// treats as "mark request pending and await the restart" (paper §6.2).
func (c *Ctx) SendRec(dst Endpoint, msg Message) (Message, error) {
	start := c.k.env.Now()
	if err := c.k.send(c.e, dst, msg); err != nil {
		return Message{}, err
	}
	reply, err := c.k.receive(c.e, dst)
	if err == nil {
		c.k.obs.ObserveSendRec(c.k.env.Now() - start)
	}
	return reply, err
}

// Notify posts a nonblocking notification to dst.
func (c *Ctx) Notify(dst Endpoint) error { return c.k.notifyFrom(c.e, dst) }

// AsyncSend queues msg at dst without ever blocking the caller (MINIX
// senda); the reincarnation server uses it for heartbeat requests.
func (c *Ctx) AsyncSend(dst Endpoint, msg Message) error { return c.k.asyncSend(c.e, dst, msg) }

// Exit terminates the calling process voluntarily with the given status.
// Status 0 is a clean exit; nonzero is how a driver "panics" (defect class
// 1 of paper §5.1).
func (c *Ctx) Exit(status int) {
	c.e.cause = Cause{Kind: CauseExit, Status: status}
	c.p.Exit(status)
}

// Panic terminates the calling process as a driver panic: an exit with a
// nonzero status after logging the reason.
func (c *Ctx) Panic(reason string) {
	c.Logf("panic: %s", reason)
	c.Exit(2)
}

// Trap terminates the calling process as if the CPU/MMU raised exc; the
// kernel converts it into a kill by the corresponding signal (defect class
// 2 of paper §5.1).
func (c *Ctx) Trap(exc Exception) {
	sig := SIGILL
	if exc == ExcMMU {
		sig = SIGSEGV
	}
	c.e.cause = Cause{Kind: CauseException, Signal: sig, Exc: exc}
	c.p.Kill() // self-kill unwinds immediately
}

// SigPending returns and clears the process's queued catchable signals.
// Message loops call this after a System notification.
func (c *Ctx) SigPending() []Signal {
	sigs := c.e.sigPending
	c.e.sigPending = nil
	return sigs
}

// Kill sends sig to the process with endpoint ep (requires CallKill).
func (c *Ctx) Kill(ep Endpoint, sig Signal) error {
	if !c.e.priv.allowsCall(CallKill) {
		return ErrNotAllowed
	}
	d := c.k.lookup(ep)
	if d == nil {
		return ErrDeadDst
	}
	c.k.deliverSignal(d, sig)
	return nil
}

// Spawn creates a new system process (requires CallSpawn). Only the process
// manager / reincarnation server hold this privilege.
func (c *Ctx) Spawn(label string, priv Privileges, body func(*Ctx)) (Endpoint, error) {
	if !c.e.priv.allowsCall(CallSpawn) {
		return None, ErrNotAllowed
	}
	nc, err := c.k.Spawn(label, priv, body)
	if err != nil {
		return None, err
	}
	return nc.e.ep, nil
}

// CreateGrant exposes buf to the grantee (or Any) with the given access and
// returns the grant ID to pass along in a request message.
func (c *Ctx) CreateGrant(buf []byte, access GrantAccess, to Endpoint) GrantID {
	return c.e.createGrant(buf, access, to)
}

// RevokeGrant removes a grant from the caller's table.
func (c *Ctx) RevokeGrant(id GrantID) { delete(c.e.grants, id) }

// SafeCopyFrom copies len(dst) bytes from the granted buffer (owner, id) at
// offset into dst (requires CallSafeCopy and a read grant).
func (c *Ctx) SafeCopyFrom(owner Endpoint, id GrantID, offset int, dst []byte) error {
	return c.k.safeCopyFrom(c.e, owner, id, offset, dst)
}

// SafeCopyTo copies src into the granted buffer (owner, id) at offset
// (requires CallSafeCopy and a write grant).
func (c *Ctx) SafeCopyTo(owner Endpoint, id GrantID, offset int, src []byte) error {
	return c.k.safeCopyTo(c.e, owner, id, offset, src)
}

// DevIn reads a device register (requires CallDevIO and port privilege).
func (c *Ctx) DevIn(port uint32) (uint32, error) { return c.k.devIn(c.e, port) }

// DevOut writes a device register (requires CallDevIO and port privilege).
func (c *Ctx) DevOut(port uint32, val uint32) error { return c.k.devOut(c.e, port, val) }

// IRQSubscribe attaches the process to an interrupt line; subsequent
// interrupts arrive as Hardware notifications with the line's bit set.
func (c *Ctx) IRQSubscribe(line int) error { return c.k.irqSubscribe(c.e, line) }

// IRQMask masks (true) or unmasks (false) the line for this process.
func (c *Ctx) IRQMask(line int, masked bool) error { return c.k.irqSetMask(c.e, line, masked) }

// SetAlarm arranges a Clock notification after d; any previous alarm is
// replaced. d <= 0 cancels.
func (c *Ctx) SetAlarm(d sim.Time) {
	if c.e.alarm != nil {
		c.e.alarm.Cancel()
		c.e.alarm = nil
	}
	if d <= 0 {
		return
	}
	e := c.e
	e.alarm = c.k.env.Schedule(d, func() {
		e.alarm = nil
		if e.alive {
			c.k.notifyEntry(e, Clock)
		}
	})
}

// MayComplain reports whether this process is authorized to file
// malfunction complaints with the reincarnation server.
func (c *Ctx) MayComplain() bool { return c.e.priv.MayComplain }

// LookupLabel resolves a stable label to the live instance's endpoint
// (None when down). System processes normally use the data store for this;
// the kernel-level lookup backs the data store itself and tests.
func (c *Ctx) LookupLabel(label string) Endpoint { return c.k.LookupLabel(label) }
