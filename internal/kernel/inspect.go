package kernel

import "sort"

// Kernel state inspection for the live invariant checker (internal/check).
// The visitors expose read-only views of the process table and grant
// tables in deterministic (slot, grant-ID) order, so checkers attached to
// the scheduler's step hook observe identical state on identically-seeded
// runs.

// ProcInfo is a read-only snapshot of one process-table slot.
type ProcInfo struct {
	Slot   int
	Gen    int
	Ep     Endpoint
	Label  string
	Alive  bool
	Grants int // live entries in the instance's grant table
}

// VisitProcs calls fn for every process-table slot that has ever been
// used, in slot order. Dead instances are included (Alive=false) until
// their slot is reused, which is exactly what stale-state invariants need
// to see.
func (k *Kernel) VisitProcs(fn func(ProcInfo)) {
	for _, e := range k.slots {
		if e == nil {
			continue
		}
		fn(ProcInfo{
			Slot:   e.slot,
			Gen:    e.gen,
			Ep:     e.ep,
			Label:  e.label,
			Alive:  e.alive,
			Grants: len(e.grants),
		})
	}
}

// GrantInfo is a read-only snapshot of one memory grant.
type GrantInfo struct {
	Owner      Endpoint
	OwnerLabel string
	ID         GrantID
	To         Endpoint // grantee; Any means any process
	Access     GrantAccess
	Len        int // granted buffer length
}

// VisitGrants calls fn for every grant of every live process, in (slot,
// grant ID) order.
func (k *Kernel) VisitGrants(fn func(GrantInfo)) {
	for _, e := range k.slots {
		if e == nil || !e.alive || len(e.grants) == 0 {
			continue
		}
		ids := make([]GrantID, 0, len(e.grants))
		for id := range e.grants {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			g := e.grants[id]
			fn(GrantInfo{
				Owner:      e.ep,
				OwnerLabel: e.label,
				ID:         id,
				To:         g.to,
				Access:     g.access,
				Len:        len(g.buf),
			})
		}
	}
}

// DebugLeakGrantsOnDeath disables grant revocation in reap. It exists
// solely so tests can break the "grants die with their owner" kernel
// invariant and prove the live checker catches it; never enable it
// outside a test.
func (k *Kernel) DebugLeakGrantsOnDeath(leak bool) { k.debugLeakGrants = leak }
