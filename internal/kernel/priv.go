package kernel

// Call identifies a kernel call class for privilege checking, mirroring the
// per-process kernel call masks MINIX 3 enforces (principle of least
// authority, paper §4).
type Call int

// Kernel call classes.
const (
	CallSafeCopy Call = iota + 1 // copy via grants between address spaces
	CallDevIO                    // device port I/O
	CallIRQCtl                   // IRQ policy/enable/disable
	CallAlarm                    // clock alarms
	CallKill                     // send signals to other processes
	CallSpawn                    // create system processes
	CallPrivCtl                  // assign privileges (reincarnation server)
	CallExit                     // voluntary exit (all processes)
)

func (c Call) String() string {
	switch c {
	case CallSafeCopy:
		return "SAFECOPY"
	case CallDevIO:
		return "DEVIO"
	case CallIRQCtl:
		return "IRQCTL"
	case CallAlarm:
		return "ALARM"
	case CallKill:
		return "KILL"
	case CallSpawn:
		return "SPAWN"
	case CallPrivCtl:
		return "PRIVCTL"
	case CallExit:
		return "EXIT"
	default:
		return "CALL?"
	}
}

// PortRange is a half-open range [Lo, Hi) of device I/O ports.
type PortRange struct {
	Lo, Hi uint32
}

// Contains reports whether the range covers port p.
func (r PortRange) Contains(p uint32) bool { return p >= r.Lo && p < r.Hi }

// Privileges is the isolation policy for one system process: which
// components it may talk to, which kernel calls it may make, which I/O
// ports and IRQ lines it may touch, and whether it may file complaints
// about other components (paper §4, §5.1). The zero value permits nothing.
type Privileges struct {
	// IPCTo lists the stable component labels this process may send to.
	// Nil means "may send to anything" is NOT implied; an empty list blocks
	// all sends. Use AllowAllIPC for trusted servers.
	IPCTo []string

	// AllowAllIPC lifts the IPC target restriction (used by the trusted
	// core servers: PM, RS, DS).
	AllowAllIPC bool

	// Calls lists the permitted kernel call classes.
	Calls []Call

	// Ports lists the device port ranges the process may access.
	Ports []PortRange

	// IRQs lists the IRQ lines the process may subscribe to.
	IRQs []int

	// MayComplain authorizes reporting malfunctioning components to the
	// reincarnation server (e.g. the file server complaining about a disk
	// driver that violates the protocol).
	MayComplain bool

	// UID is the unprivileged user ID system processes run under.
	UID int
}

// Clone returns a deep copy so a stored policy cannot be mutated through
// shared slices.
func (pr Privileges) Clone() Privileges {
	cp := pr
	cp.IPCTo = append([]string(nil), pr.IPCTo...)
	cp.Calls = append([]Call(nil), pr.Calls...)
	cp.Ports = append([]PortRange(nil), pr.Ports...)
	cp.IRQs = append([]int(nil), pr.IRQs...)
	return cp
}

func (pr *Privileges) allowsCall(c Call) bool {
	if c == CallExit {
		return true
	}
	for _, have := range pr.Calls {
		if have == c {
			return true
		}
	}
	return false
}

func (pr *Privileges) allowsIPCTo(label string) bool {
	if pr.AllowAllIPC {
		return true
	}
	for _, l := range pr.IPCTo {
		if l == label {
			return true
		}
	}
	return false
}

func (pr *Privileges) allowsPort(p uint32) bool {
	for _, r := range pr.Ports {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

func (pr *Privileges) allowsIRQ(line int) bool {
	for _, l := range pr.IRQs {
		if l == line {
			return true
		}
	}
	return false
}
