package kernel

import (
	"errors"
	"testing"
	"time"

	"resilientos/internal/sim"
)

// fakeDev is a trivial register file device for tests.
type fakeDev struct {
	regs map[uint32]uint32
}

func (d *fakeDev) PortIn(port uint32) (uint32, error) { return d.regs[port], nil }

func (d *fakeDev) PortOut(port uint32, val uint32) error {
	d.regs[port] = val
	return nil
}

func driverPriv(ports PortRange, irqs ...int) Privileges {
	return Privileges{
		AllowAllIPC: true,
		Calls:       []Call{CallDevIO, CallIRQCtl, CallAlarm},
		Ports:       []PortRange{ports},
		IRQs:        irqs,
	}
}

func TestDevInOut(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	dev := &fakeDev{regs: map[uint32]uint32{}}
	k.MapDevice(PortRange{0x100, 0x110}, dev)
	var got uint32
	k.Spawn("drv", driverPriv(PortRange{0x100, 0x110}), func(c *Ctx) {
		if err := c.DevOut(0x104, 0xBEEF); err != nil {
			t.Errorf("devout: %v", err)
		}
		v, err := c.DevIn(0x104)
		if err != nil {
			t.Errorf("devin: %v", err)
		}
		got = v
	})
	env.Run(0)
	if got != 0xBEEF {
		t.Fatalf("got %#x", got)
	}
}

func TestDevIOPortPrivilege(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	dev := &fakeDev{regs: map[uint32]uint32{}}
	k.MapDevice(PortRange{0x100, 0x110}, dev)
	k.MapDevice(PortRange{0x200, 0x210}, dev)
	var inErr, outErr error
	k.Spawn("drv", driverPriv(PortRange{0x100, 0x110}), func(c *Ctx) {
		_, inErr = c.DevIn(0x200) // other device's range
		outErr = c.DevOut(0x208, 1)
	})
	env.Run(0)
	if !errors.Is(inErr, ErrNotAllowed) || !errors.Is(outErr, ErrNotAllowed) {
		t.Fatalf("errs = %v, %v, want ErrNotAllowed", inErr, outErr)
	}
}

func TestDevIOUnmappedPort(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	var err error
	k.Spawn("drv", driverPriv(PortRange{0x300, 0x310}), func(c *Ctx) {
		_, err = c.DevIn(0x300) // allowed but nothing mapped
	})
	env.Run(0)
	if !errors.Is(err, ErrBadPort) {
		t.Fatalf("err = %v, want ErrBadPort", err)
	}
}

func TestIRQDelivery(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	var mask int64
	k.Spawn("drv", driverPriv(PortRange{}, 5), func(c *Ctx) {
		if err := c.IRQSubscribe(5); err != nil {
			t.Errorf("subscribe: %v", err)
		}
		m, err := c.Receive(Hardware)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		mask = m.Arg1
	})
	env.Schedule(time.Second, func() { k.RaiseIRQ(5) })
	env.Run(0)
	if mask != 1<<5 {
		t.Fatalf("pending mask = %#x, want bit 5", mask)
	}
}

func TestIRQMasking(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	got := 0
	k.Spawn("drv", driverPriv(PortRange{}, 3), func(c *Ctx) {
		if err := c.IRQSubscribe(3); err != nil {
			t.Errorf("subscribe: %v", err)
		}
		if err := c.IRQMask(3, true); err != nil {
			t.Errorf("mask: %v", err)
		}
		c.SetAlarm(5 * time.Second)
		m, _ := c.Receive(Any)
		if m.Source == Hardware {
			got++
		}
	})
	env.Schedule(time.Second, func() { k.RaiseIRQ(3) })
	env.Run(0)
	if got != 0 {
		t.Fatalf("masked IRQ delivered %d times", got)
	}
}

func TestIRQPrivilege(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	var err error
	k.Spawn("drv", driverPriv(PortRange{}, 3), func(c *Ctx) {
		err = c.IRQSubscribe(9) // not our line
	})
	env.Run(0)
	if !errors.Is(err, ErrNotAllowed) {
		t.Fatalf("err = %v, want ErrNotAllowed", err)
	}
}

func TestIRQUnsubscribedOnDeath(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	rc, _ := k.Spawn("drv", driverPriv(PortRange{}, 4), func(c *Ctx) {
		c.IRQSubscribe(4)
		c.Sleep(time.Second)
		c.Exit(0)
	})
	env.Run(2 * time.Second)
	_ = rc
	// Raising the line after the driver died must not panic or deliver.
	k.RaiseIRQ(4)
	env.Run(time.Second)
	if l := k.irqs[4]; len(l.subs) != 0 {
		t.Fatalf("dead driver still subscribed: %d subs", len(l.subs))
	}
}

func TestIRQLostWithoutDriver(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	k.RaiseIRQ(7) // no subscribers: dropped silently
	env.Run(0)
}

func TestHardwareNotificationMergesLines(t *testing.T) {
	env := sim.NewEnv(1)
	k := New(env)
	var mask int64
	k.Spawn("drv", Privileges{
		AllowAllIPC: true,
		Calls:       []Call{CallIRQCtl},
		IRQs:        []int{2, 3},
	}, func(c *Ctx) {
		c.IRQSubscribe(2)
		c.IRQSubscribe(3)
		c.Sleep(2 * time.Second) // both IRQs fire while busy
		m, err := c.Receive(Hardware)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		mask = m.Arg1
	})
	env.Schedule(time.Second, func() { k.RaiseIRQ(2); k.RaiseIRQ(3) })
	env.Run(0)
	if mask != (1<<2 | 1<<3) {
		t.Fatalf("mask = %#x, want bits 2+3", mask)
	}
}
