package kernel

import (
	"testing"
	"testing/quick"
)

// Property: endpoint encoding round-trips slot and stays temporally
// unique across generations.
func TestEndpointEncodingProperties(t *testing.T) {
	f := func(slot uint16, gen uint8) bool {
		s := int(slot) % maxSlots
		g := int(gen)%500 + 1
		ep := makeEndpoint(s, g)
		if !ep.valid() {
			return false
		}
		if ep.slot() != s {
			return false
		}
		// A different generation on the same slot is a different endpoint.
		return makeEndpoint(s, g+1) != ep
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: privilege checks are pure set membership — cloning a policy
// never changes any answer, and mutation of the clone never leaks back.
func TestPrivilegesCloneIsolation(t *testing.T) {
	f := func(targets []string, ports []uint32, probe uint32, probeTarget string) bool {
		var pr Privileges
		for _, p := range ports {
			pr.Ports = append(pr.Ports, PortRange{Lo: p, Hi: p + 16})
		}
		pr.IPCTo = targets
		cp := pr.Clone()
		if cp.allowsPort(probe) != pr.allowsPort(probe) {
			return false
		}
		if cp.allowsIPCTo(probeTarget) != pr.allowsIPCTo(probeTarget) {
			return false
		}
		// Mutate the clone; the original must be unaffected.
		cp.IPCTo = append(cp.IPCTo, probeTarget)
		cp.Ports = append(cp.Ports, PortRange{Lo: probe, Hi: probe + 1})
		if !pr.allowsIPCTo(probeTarget) && len(pr.IPCTo) != len(targets) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
