package kernel

import "errors"

// IPC and kernel-call errors. Names follow the MINIX error conditions they
// model.
var (
	// ErrDeadDst is returned when sending to a dead or stale endpoint
	// (MINIX EDEADSRCDST on the send side).
	ErrDeadDst = errors.New("kernel: destination endpoint dead or stale")

	// ErrSrcDied aborts a Receive (or the reply leg of SendRec) because the
	// awaited source died (MINIX EDEADSRCDST on the receive side). This is
	// the signal the file server uses to mark requests pending.
	ErrSrcDied = errors.New("kernel: awaited source died")

	// ErrBadEndpoint is returned for malformed endpoint arguments.
	ErrBadEndpoint = errors.New("kernel: bad endpoint")

	// ErrNotAllowed is returned when the caller's privileges do not permit
	// the IPC target or kernel call.
	ErrNotAllowed = errors.New("kernel: operation not permitted")

	// ErrBadGrant is returned for invalid, revoked, or out-of-bounds grant
	// access.
	ErrBadGrant = errors.New("kernel: bad grant")

	// ErrBadPort is returned for device port access outside the caller's
	// granted ranges or with no device mapped.
	ErrBadPort = errors.New("kernel: bad device port")

	// ErrBadIRQ is returned for IRQ control on lines the caller may not use.
	ErrBadIRQ = errors.New("kernel: bad IRQ line")

	// ErrDying is returned for kernel calls from a process that is being
	// torn down.
	ErrDying = errors.New("kernel: process is dying")

	// ErrNoSlot is returned when the process table is full.
	ErrNoSlot = errors.New("kernel: process table full")
)
