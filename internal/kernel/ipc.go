package kernel

import (
	"resilientos/internal/obs"
	"resilientos/internal/perf"
)

// IPC primitives, modeled on MINIX 3:
//
//   - Send: rendezvous; blocks until the destination receives. Fails with
//     ErrDeadDst for dead/stale endpoints, and is aborted with the same
//     error if the destination dies while we are queued.
//   - Receive: blocks for a matching notification, async message, or
//     sender. Receive from a *specific* source is aborted with ErrSrcDied
//     when that source dies; receive-from-Any keeps waiting.
//   - SendRec: Send followed by Receive from the same destination (the
//     standard request/reply shape for driver protocols).
//   - Notify: nonblocking notification bit, never fails against a live
//     target, merged if already pending.
//   - AsyncSend: nonblocking queued message (MINIX senda), used by the
//     reincarnation server for heartbeat pings so a stuck driver cannot
//     block it (paper §5.1).
//
// Delivery priority in Receive follows MINIX: notifications (Hardware,
// Clock, System first) > async messages > queued senders.

// send implements the blocking rendezvous send from e to dst.
//
// The wall-clock region (RegionKernelIPC) covers the dispatch attempt
// only and is always closed before Park: a region spanning a park would
// interleave with other events' regions and corrupt the LIFO stack.
func (k *Kernel) send(e *procEntry, dst Endpoint, msg Message) error {
	if !e.alive {
		return ErrDying
	}
	k.perf.Begin(perf.RegionKernelIPC)
	d := k.lookup(dst)
	if d == nil {
		k.obs.Emit(obs.KindIPCAbort, e.label, k.labelFor(dst), int64(msg.Type), 0)
		k.perf.End(perf.RegionKernelIPC)
		return ErrDeadDst
	}
	if !e.priv.allowsIPCTo(d.label) {
		k.perf.End(perf.RegionKernelIPC)
		return ErrNotAllowed
	}
	if k.obs != nil {
		if !msg.Trace.Valid() {
			msg.Trace = e.traceCtx
		}
		k.ipcSend.Add(1)
		k.obs.EmitCtx(obs.KindIPCSend, e.label, d.label, int64(msg.Type), 0, msg.Trace)
	}
	msg.Source = e.ep
	if d.recvWait && (d.recvFrom == Any || d.recvFrom == e.ep) {
		d.recvWait = false
		d.proc.Wake(deliveredMsg{msg: msg})
		k.perf.End(perf.RegionKernelIPC)
		return nil
	}
	// Destination not ready: queue and block.
	e.sendMsg = msg
	e.sendTo = d
	d.senders = append(d.senders, e)
	k.perf.End(perf.RegionKernelIPC)
	switch v := e.proc.Park().(type) {
	case sendOK:
		return nil
	case ipcAbort:
		k.obs.Emit(obs.KindIPCAbort, e.label, k.labelFor(dst), int64(msg.Type), 0)
		return v.err
	default:
		panic("kernel: unexpected wake value in send")
	}
}

// receive implements the blocking receive for e, wrapping the inner
// receive with trace-context adoption and trace emission: every
// delivered message becomes an ipc.recv event, every death-abort an
// ipc.abort, and the receiver adopts the message's causal context as its
// ambient context (notifications never carry one, so they cannot clobber
// a context a driver is working under).
func (k *Kernel) receive(e *procEntry, from Endpoint) (Message, error) {
	m, err := k.receiveInner(e, from)
	if k.obs != nil {
		if err == nil {
			k.ipcRecv.Add(1)
			if m.Type != MsgNotify {
				e.traceCtx = m.Trace
			}
		}
		if k.obs.On(obs.KindIPCRecv) {
			if err != nil {
				k.obs.Emit(obs.KindIPCAbort, e.label, k.labelFor(from), 0, 1)
			} else {
				k.obs.EmitCtx(obs.KindIPCRecv, e.label, k.labelFor(m.Source), int64(m.Type), 0, m.Trace)
			}
		}
	}
	return m, err
}

// receiveInner implements the blocking receive for e. As in send, the
// wall-clock region covers the delivery scan only, never the park.
func (k *Kernel) receiveInner(e *procEntry, from Endpoint) (Message, error) {
	if !e.alive {
		return Message{}, ErrDying
	}
	k.perf.Begin(perf.RegionKernelIPC)
	for {
		// 1. Pending notifications, pseudo-sources first.
		if msg, ok := e.takeNotification(from); ok {
			k.perf.End(perf.RegionKernelIPC)
			return msg, nil
		}
		// 2. Queued asynchronous messages.
		for i, m := range e.asyncQ {
			if from == Any || m.Source == from {
				e.asyncQ = append(e.asyncQ[:i], e.asyncQ[i+1:]...)
				k.perf.End(perf.RegionKernelIPC)
				return m, nil
			}
		}
		// 3. Blocked senders.
		for i, s := range e.senders {
			if from == Any || s.ep == from {
				e.senders = append(e.senders[:i], e.senders[i+1:]...)
				msg := s.sendMsg
				s.sendTo = nil
				s.sendMsg = Message{}
				s.proc.Wake(sendOK{})
				k.perf.End(perf.RegionKernelIPC)
				return msg, nil
			}
		}
		// 4. If waiting for a specific process source, make sure it is
		// alive (pseudo-sources like Hardware/Clock never "die").
		if from.valid() && k.lookup(from) == nil {
			k.perf.End(perf.RegionKernelIPC)
			return Message{}, ErrSrcDied
		}
		// 5. Block.
		e.recvWait = true
		e.recvFrom = from
		k.perf.End(perf.RegionKernelIPC)
		switch v := e.proc.Park().(type) {
		case deliveredMsg:
			return v.msg, nil
		case ipcAbort:
			return Message{}, v.err
		default:
			panic("kernel: unexpected wake value in receive")
		}
	}
}

// takeNotification pops the highest-priority pending notification matching
// from, building its message.
func (e *procEntry) takeNotification(from Endpoint) (Message, bool) {
	pick := -1
	// Pseudo-sources get priority in fixed order.
	for _, pri := range []Endpoint{Hardware, Clock, System} {
		if from != Any && from != pri {
			continue
		}
		for i, src := range e.notifyQ {
			if src == pri {
				pick = i
				break
			}
		}
		if pick >= 0 {
			break
		}
	}
	if pick < 0 {
		for i, src := range e.notifyQ {
			if from == Any || src == from {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return Message{}, false
	}
	src := e.notifyQ[pick]
	e.notifyQ = append(e.notifyQ[:pick], e.notifyQ[pick+1:]...)
	msg := Message{Source: src, Type: MsgNotify}
	if src == Hardware {
		msg.Arg1 = int64(e.irqPending)
		e.irqPending = 0
	}
	return msg, true
}

// tryReceive is the nonblocking receive (MINIX's RECEIVE with the
// non-blocking flag): it returns a matching pending notification, queued
// async message, or blocked sender's message if one exists, and reports
// false otherwise. Like receive, it adopts the delivered message's causal
// context.
func (k *Kernel) tryReceive(e *procEntry, from Endpoint) (Message, bool) {
	m, ok := k.tryReceiveInner(e, from)
	if ok && k.obs != nil && m.Type != MsgNotify {
		e.traceCtx = m.Trace
	}
	return m, ok
}

func (k *Kernel) tryReceiveInner(e *procEntry, from Endpoint) (Message, bool) {
	if !e.alive {
		return Message{}, false
	}
	k.perf.Begin(perf.RegionKernelIPC)
	defer k.perf.End(perf.RegionKernelIPC)
	if msg, ok := e.takeNotification(from); ok {
		return msg, true
	}
	for i, m := range e.asyncQ {
		if from == Any || m.Source == from {
			e.asyncQ = append(e.asyncQ[:i], e.asyncQ[i+1:]...)
			return m, true
		}
	}
	for i, snd := range e.senders {
		if from == Any || snd.ep == from {
			e.senders = append(e.senders[:i], e.senders[i+1:]...)
			msg := snd.sendMsg
			snd.sendTo = nil
			snd.sendMsg = Message{}
			snd.proc.Wake(sendOK{})
			return msg, true
		}
	}
	return Message{}, false
}

// notify posts a notification from src to the entry, merging duplicates,
// and delivers immediately when the target is blocked and matching.
func (k *Kernel) notifyEntry(d *procEntry, src Endpoint) {
	if d == nil || !d.alive {
		return
	}
	if d.recvWait && (d.recvFrom == Any || d.recvFrom == src) {
		d.recvWait = false
		msg := Message{Source: src, Type: MsgNotify}
		if src == Hardware {
			msg.Arg1 = int64(d.irqPending)
			d.irqPending = 0
		}
		d.proc.Wake(deliveredMsg{msg: msg})
		return
	}
	for _, pending := range d.notifyQ {
		if pending == src {
			return // merged
		}
	}
	d.notifyQ = append(d.notifyQ, src)
}

// notifyFrom is the process-level notify call.
func (k *Kernel) notifyFrom(e *procEntry, dst Endpoint) error {
	if !e.alive {
		return ErrDying
	}
	k.perf.Begin(perf.RegionKernelIPC)
	defer k.perf.End(perf.RegionKernelIPC)
	d := k.lookup(dst)
	if d == nil {
		return ErrDeadDst
	}
	if !e.priv.allowsIPCTo(d.label) {
		return ErrNotAllowed
	}
	k.notifyEntry(d, e.ep)
	return nil
}

// PostAsync queues msg at dst on behalf of the kernel itself (Source =
// System). It is usable from scheduler context — device completions and
// death hooks use it to hand events to system processes.
func (k *Kernel) PostAsync(dst Endpoint, msg Message) error {
	k.perf.Begin(perf.RegionKernelIPC)
	defer k.perf.End(perf.RegionKernelIPC)
	d := k.lookup(dst)
	if d == nil {
		return ErrDeadDst
	}
	msg.Source = System
	if d.recvWait && (d.recvFrom == Any || d.recvFrom == System) {
		d.recvWait = false
		d.proc.Wake(deliveredMsg{msg: msg})
		return nil
	}
	d.asyncQ = append(d.asyncQ, msg)
	return nil
}

// asyncSend queues msg at the destination without blocking the sender.
func (k *Kernel) asyncSend(e *procEntry, dst Endpoint, msg Message) error {
	if !e.alive {
		return ErrDying
	}
	k.perf.Begin(perf.RegionKernelIPC)
	defer k.perf.End(perf.RegionKernelIPC)
	d := k.lookup(dst)
	if d == nil {
		return ErrDeadDst
	}
	if !e.priv.allowsIPCTo(d.label) {
		return ErrNotAllowed
	}
	if k.obs != nil {
		if !msg.Trace.Valid() {
			msg.Trace = e.traceCtx
		}
		k.ipcSend.Add(1)
		k.obs.EmitCtx(obs.KindIPCSend, e.label, d.label, int64(msg.Type), 1, msg.Trace)
	}
	msg.Source = e.ep
	if d.recvWait && (d.recvFrom == Any || d.recvFrom == e.ep) {
		d.recvWait = false
		d.proc.Wake(deliveredMsg{msg: msg})
		return nil
	}
	d.asyncQ = append(d.asyncQ, msg)
	return nil
}
