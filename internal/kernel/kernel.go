// Package kernel simulates the MINIX 3 microkernel layer the paper's
// recovery architecture sits on: a process table with generation-tagged IPC
// endpoints, rendezvous message passing that is aborted by the kernel when a
// party dies, asynchronous notifications, per-process privileges enforced on
// every kernel call, capability-style memory grants with SafeCopy, device
// port I/O, IRQ delivery, clock alarms, and POSIX-flavored signals.
//
// The kernel runs on the deterministic virtual-time engine in internal/sim;
// each system process is a sim coroutine driving kernel calls through a Ctx.
package kernel

import (
	"fmt"

	"resilientos/internal/obs"
	"resilientos/internal/perf"
	"resilientos/internal/sim"
)

// CauseKind classifies why a process died; the process manager turns this
// into the defect classes of paper §5.1.
type CauseKind int

// Death cause kinds.
const (
	CauseExit      CauseKind = iota + 1 // voluntary exit (status 0) or panic (status != 0)
	CauseSignal                         // killed by a signal (user kill, RS SIGKILL)
	CauseException                      // killed by the kernel for a CPU/MMU exception
)

func (k CauseKind) String() string {
	switch k {
	case CauseExit:
		return "exit"
	case CauseSignal:
		return "signal"
	case CauseException:
		return "exception"
	default:
		return fmt.Sprintf("CauseKind(%d)", int(k))
	}
}

// Cause records how a process died.
type Cause struct {
	Kind   CauseKind
	Status int       // exit status for CauseExit
	Signal Signal    // killing signal for CauseSignal
	Exc    Exception // exception type for CauseException
}

func (c Cause) String() string {
	switch c.Kind {
	case CauseExit:
		return fmt.Sprintf("exit(%d)", c.Status)
	case CauseSignal:
		return fmt.Sprintf("killed(%v)", c.Signal)
	case CauseException:
		return fmt.Sprintf("exception(%v)", c.Exc)
	default:
		return "unknown"
	}
}

// Exception is a hardware exception type.
type Exception int

// Exception types observed by the fault-injection experiments.
const (
	ExcNone Exception = iota
	ExcMMU            // bad memory access
	ExcCPU            // illegal instruction, divide by zero, ...
)

func (e Exception) String() string {
	switch e {
	case ExcNone:
		return "none"
	case ExcMMU:
		return "MMU"
	case ExcCPU:
		return "CPU"
	default:
		return fmt.Sprintf("Exception(%d)", int(e))
	}
}

// DeathHook observes process deaths (the process manager registers one to
// generate SIGCHLD-equivalent events for the reincarnation server).
type DeathHook func(label string, ep Endpoint, cause Cause)

// Kernel is the simulated microkernel.
type Kernel struct {
	env  *sim.Env
	obs  *obs.Recorder  // nil = observability off (zero cost)
	perf *perf.Profiler // nil = wall-clock telemetry off (zero cost)

	// Registry counters cached at SetObs so the IPC hot path pays one
	// pointer increment, never a map lookup. The windowed telemetry
	// sampler (internal/obs/timeseries) reads them as per-window deltas.
	ipcSend *obs.Counter // messages sent (rendezvous + async)
	ipcRecv *obs.Counter // messages delivered

	slots    []*procEntry // process table; index = slot
	byLabel  map[string]*procEntry
	deathFns []DeathHook

	ports map[uint32]Device // device port space
	irqs  map[int]*irqLine

	debugLeakGrants bool // test-only: skip grant revocation in reap
}

// New creates a kernel on the given simulation environment.
func New(env *sim.Env) *Kernel {
	return &Kernel{
		env:     env,
		byLabel: make(map[string]*procEntry),
		ports:   make(map[uint32]Device),
		irqs:    make(map[int]*irqLine),
	}
}

// Env returns the simulation environment.
func (k *Kernel) Env() *sim.Env { return k.env }

// SetObs installs the observability recorder every kernel-layer event is
// emitted through. A nil recorder (the default) keeps all instrumented
// paths free.
func (k *Kernel) SetObs(r *obs.Recorder) {
	k.obs = r
	k.ipcSend = r.Metrics().Counter("kernel.ipc.send")
	k.ipcRecv = r.Metrics().Counter("kernel.ipc.recv")
}

// Obs returns the recorder (possibly nil; obs methods are nil-safe).
func (k *Kernel) Obs() *obs.Recorder { return k.obs }

// SetPerf installs the wall-clock profiler bracketing the IPC dispatch
// paths (RegionKernelIPC). A nil profiler (the default) keeps the hot
// path free; profiler methods are nil-safe.
func (k *Kernel) SetPerf(p *perf.Profiler) { k.perf = p }

// labelFor resolves an endpoint to a trace-friendly name: stable labels
// for live processes, pseudo-source names for the kernel's own sources.
func (k *Kernel) labelFor(ep Endpoint) string {
	if ep.valid() {
		if e := k.lookup(ep); e != nil {
			return e.label
		}
		return "dead"
	}
	return ep.String()
}

// OnDeath registers a hook called (in scheduler context) whenever a system
// process dies, after all IPC cleanup for the death completed.
func (k *Kernel) OnDeath(fn DeathHook) { k.deathFns = append(k.deathFns, fn) }

// procEntry is one process-table slot instance.
type procEntry struct {
	k     *Kernel
	slot  int
	gen   int
	ep    Endpoint
	label string
	proc  *sim.Proc
	priv  Privileges
	alive bool
	cause Cause

	// IPC state.
	recvWait bool       // blocked in Receive
	recvFrom Endpoint   // who we are waiting for (Any allowed)
	sendTo   *procEntry // non-nil when blocked sending to that process
	sendMsg  Message    // the message being sent while blocked
	senders  []*procEntry
	asyncQ   []Message
	notifyQ  []Endpoint // pending notification sources, insertion order

	irqPending uint64
	sigPending []Signal

	grants    map[GrantID]*grant
	nextGrant GrantID

	alarm *sim.Event

	// Causal-tracing state (only touched when the kernel has a recorder).
	traceCtx  obs.SpanContext   // ambient context stamped on outgoing sends
	openSpans []obs.SpanContext // spans opened via Ctx, orphaned if we die

	local any // process-local library slot (Ctx.SetLocal / Ctx.Local)
}

// wake values delivered through sim.Proc.Park.
type (
	deliveredMsg struct{ msg Message }
	ipcAbort     struct{ err error }
	sendOK       struct{}
)

// Spawn creates a new system process with the given stable label,
// privileges, and body. The slot is the lowest free one and the endpoint
// carries a fresh generation, so endpoints of previous instances with the
// same label remain stale. Returns the new instance's Ctx handle (endpoint
// available immediately, e.g. for the spawner to publish it).
func (k *Kernel) Spawn(label string, priv Privileges, body func(c *Ctx)) (*Ctx, error) {
	slot := -1
	gen := 1
	for i, e := range k.slots {
		if e == nil {
			slot = i
			break
		}
		if !e.alive && e.proc.State() == sim.StateDead {
			slot = i
			gen = e.gen + 1
			break
		}
	}
	if slot == -1 {
		if len(k.slots) >= maxSlots {
			return nil, ErrNoSlot
		}
		k.slots = append(k.slots, nil)
		slot = len(k.slots) - 1
	}
	e := &procEntry{
		k:      k,
		slot:   slot,
		gen:    gen,
		ep:     makeEndpoint(slot, gen),
		label:  label,
		alive:  true,
		priv:   priv.Clone(),
		grants: make(map[GrantID]*grant),
	}
	k.slots[slot] = e
	k.byLabel[label] = e
	ctx := &Ctx{k: k, e: e}
	e.proc = k.env.Spawn(fmt.Sprintf("%s/%d", label, gen), func(p *sim.Proc) {
		ctx.p = p
		body(ctx)
	})
	// All death paths (exit, kill, exception, crash) funnel through the sim
	// process's exit hook so IPC cleanup is centralized.
	e.proc.OnExit(func(status int) { k.reap(e, status) })
	k.env.Logf("kernel", "spawn %s ep=%v", label, e.ep)
	return ctx, nil
}

// lookup resolves a live endpoint to its process entry.
func (k *Kernel) lookup(ep Endpoint) *procEntry {
	if !ep.valid() {
		return nil
	}
	slot := ep.slot()
	if slot >= len(k.slots) {
		return nil
	}
	e := k.slots[slot]
	if e == nil || !e.alive || e.ep != ep {
		return nil
	}
	return e
}

// LookupLabel returns the endpoint of the live process with the given
// stable label, or None.
func (k *Kernel) LookupLabel(label string) Endpoint {
	if e, ok := k.byLabel[label]; ok && e.alive {
		return e.ep
	}
	return None
}

// Alive reports whether the endpoint refers to a live process instance.
func (k *Kernel) Alive(ep Endpoint) bool { return k.lookup(ep) != nil }

// LabelOf returns the stable label of the live process instance with the
// given endpoint, or "" if the endpoint is dead or stale. Labels come from
// the kernel's own table and cannot be forged by message senders.
func (k *Kernel) LabelOf(ep Endpoint) string {
	e := k.lookup(ep)
	if e == nil {
		return ""
	}
	return e.label
}

// Relabel changes the stable label of a live process instance — the
// kernel half of a standby promotion: the reincarnation server renames
// a hot replica ("eth.rtl8139/sb") to the service label its dead
// primary just freed, so label-authenticated facilities (the data
// store's private records, PM death reporting, trace components) treat
// the replica as the service's next incarnation. Refused when another
// live process already bears the target label: two live owners of one
// label would break endpoint-unique.
func (k *Kernel) Relabel(ep Endpoint, label string) error {
	e := k.lookup(ep)
	if e == nil {
		return ErrDeadDst
	}
	if cur, ok := k.byLabel[label]; ok && cur != e && cur.alive {
		return ErrNotAllowed
	}
	k.env.Logf("kernel", "relabel %s -> %s ep=%v", e.label, label, ep)
	if k.byLabel[e.label] == e {
		delete(k.byLabel, e.label)
	}
	e.label = label
	k.byLabel[label] = e
	return nil
}

// MayComplain reports whether the process with the given endpoint holds
// the complaint authority (paper §5.1: "The authority to replace other
// components is part of the protection file"). The reincarnation server
// consults this before acting on a complaint.
func (k *Kernel) MayComplain(ep Endpoint) bool {
	e := k.lookup(ep)
	return e != nil && e.priv.MayComplain
}

// Cause returns the recorded death cause for an endpoint's instance. Valid
// for dead instances whose slot has not been reused.
func (k *Kernel) CauseOf(ep Endpoint) (Cause, bool) {
	if !ep.valid() || ep.slot() >= len(k.slots) {
		return Cause{}, false
	}
	e := k.slots[ep.slot()]
	if e == nil || e.ep != ep || e.alive {
		return Cause{}, false
	}
	return e.cause, true
}

// reap performs all kernel-side cleanup for a dead process and notifies
// death hooks. Runs in scheduler context via the sim exit hook.
func (k *Kernel) reap(e *procEntry, status int) {
	if e.cause.Kind == 0 {
		if status >= 0 {
			// Body returned normally (or called sim-level exit).
			e.cause = Cause{Kind: CauseExit, Status: status}
		} else {
			// Killed at the sim level without a recorded kernel cause.
			e.cause = Cause{Kind: CauseSignal, Signal: SIGKILL}
		}
	}
	if e.cause.Kind == CauseExit {
		e.cause.Status = status
	}
	e.alive = false
	k.env.Logf("kernel", "reap %s ep=%v cause=%v", e.label, e.ep, e.cause)
	if e.cause.Kind == CauseException {
		k.obs.Emit(obs.KindProcException, e.label, e.cause.Exc.String(), int64(e.ep), 0)
	}
	// Spans the dead process opened and never closed can never complete:
	// terminate them as orphaned-by-crash, newest first, so a trace reader
	// sees exactly which in-flight work the death interrupted.
	if k.obs != nil && len(e.openSpans) > 0 {
		reason := "crash:" + e.cause.String()
		for i := len(e.openSpans) - 1; i >= 0; i-- {
			k.obs.OrphanSpan(e.label, e.openSpans[i], reason)
		}
		e.openSpans = nil
	}
	e.traceCtx = obs.SpanContext{}

	if e.alarm != nil {
		e.alarm.Cancel()
		e.alarm = nil
	}
	// Unhook from any send queue we were sitting in.
	if e.sendTo != nil {
		e.sendTo.removeSender(e)
		e.sendTo = nil
	}
	// Abort everyone blocked sending to us.
	for _, s := range e.senders {
		s.sendTo = nil
		s.proc.Wake(ipcAbort{err: ErrDeadDst})
	}
	e.senders = nil
	e.asyncQ = nil
	e.notifyQ = nil
	// Abort everyone blocked receiving specifically from us (this is the
	// rendezvous abort the file server relies on, paper §6.2).
	for _, other := range k.slots {
		if other == nil || !other.alive || !other.recvWait {
			continue
		}
		if other.recvFrom == e.ep {
			other.recvWait = false
			other.proc.Wake(ipcAbort{err: ErrSrcDied})
		}
	}
	// Revoke grants and IRQ subscriptions.
	if !k.debugLeakGrants {
		e.grants = map[GrantID]*grant{}
	}
	for _, line := range k.irqs {
		line.unsubscribe(e)
	}
	if k.byLabel[e.label] == e {
		delete(k.byLabel, e.label)
	}
	for _, fn := range k.deathFns {
		fn(e.label, e.ep, e.cause)
	}
}

func (e *procEntry) removeSender(s *procEntry) {
	for i, q := range e.senders {
		if q == s {
			e.senders = append(e.senders[:i], e.senders[i+1:]...)
			return
		}
	}
}

// kill terminates a process instance with the given cause. No-op when the
// target instance is already gone.
func (k *Kernel) kill(e *procEntry, cause Cause) {
	if e == nil || !e.alive {
		return
	}
	if e.cause.Kind == 0 {
		e.cause = cause
	}
	// Detach from IPC wait queues immediately so no delivery tries to wake
	// the process while its unwind is in flight; blocked peers are aborted
	// when reap runs.
	e.recvWait = false
	if e.sendTo != nil {
		e.sendTo.removeSender(e)
		e.sendTo = nil
	}
	e.proc.Kill()
}

// Kill terminates the process with the given endpoint as if by an uncaught
// signal. Privilege checking is the caller's job (Ctx.Kill enforces it).
func (k *Kernel) Kill(ep Endpoint, sig Signal) error {
	e := k.lookup(ep)
	if e == nil {
		return ErrDeadDst
	}
	k.kill(e, Cause{Kind: CauseSignal, Signal: sig})
	return nil
}

// ProcCount returns the number of live system processes (for tests).
func (k *Kernel) ProcCount() int {
	n := 0
	for _, e := range k.slots {
		if e != nil && e.alive {
			n++
		}
	}
	return n
}
