package kernel

// Memory grants: the capability-protected cross-address-space copy
// mechanism of paper §4. A process that wants to expose part of its memory
// creates a grant describing the buffer and access rights and passes the
// grant ID in a request message; the other party moves data with SafeCopy.
// Grants die with their owner, so a restarted component cannot be tricked
// into serving a stale capability.

// GrantID names a grant in its owner's grant table. Zero is "no grant".
type GrantID int32

// GrantAccess describes permitted directions of a grant.
type GrantAccess int

// Grant access modes.
const (
	GrantRead  GrantAccess = 1 << iota // grantee may read (copy-from)
	GrantWrite                         // grantee may write (copy-to)
)

type grant struct {
	buf    []byte
	access GrantAccess
	to     Endpoint // grantee; Any allows any process
}

// createGrant installs a grant over buf in e's table.
func (e *procEntry) createGrant(buf []byte, access GrantAccess, to Endpoint) GrantID {
	e.nextGrant++
	id := e.nextGrant
	e.grants[id] = &grant{buf: buf, access: access, to: to}
	return id
}

// findGrant validates grantee access to (owner, id).
func (k *Kernel) findGrant(owner Endpoint, id GrantID, grantee *procEntry, want GrantAccess) (*grant, error) {
	o := k.lookup(owner)
	if o == nil {
		return nil, ErrDeadDst
	}
	g, ok := o.grants[id]
	if !ok {
		return nil, ErrBadGrant
	}
	if g.to != Any && g.to != grantee.ep {
		return nil, ErrBadGrant
	}
	if g.access&want == 0 {
		return nil, ErrBadGrant
	}
	return g, nil
}

// safeCopyFrom copies from (owner, id) at offset into dst on behalf of e.
func (k *Kernel) safeCopyFrom(e *procEntry, owner Endpoint, id GrantID, offset int, dst []byte) error {
	if !e.priv.allowsCall(CallSafeCopy) {
		return ErrNotAllowed
	}
	g, err := k.findGrant(owner, id, e, GrantRead)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(dst) > len(g.buf) {
		return ErrBadGrant
	}
	copy(dst, g.buf[offset:])
	return nil
}

// safeCopyTo copies src into (owner, id) at offset on behalf of e.
func (k *Kernel) safeCopyTo(e *procEntry, owner Endpoint, id GrantID, offset int, src []byte) error {
	if !e.priv.allowsCall(CallSafeCopy) {
		return ErrNotAllowed
	}
	g, err := k.findGrant(owner, id, e, GrantWrite)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(src) > len(g.buf) {
		return ErrBadGrant
	}
	copy(g.buf[offset:], src)
	return nil
}
