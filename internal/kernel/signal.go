package kernel

import "fmt"

// Signal is a POSIX-flavored signal number. Only the signals the recovery
// architecture uses are defined.
type Signal int

// Signals used by the recovery procedure.
const (
	SIGTERM Signal = 15 // polite shutdown request (dynamic update, §6)
	SIGKILL Signal = 9  // forced kill (crash simulation, unresponsive driver)
	SIGSEGV Signal = 11 // MMU exception
	SIGILL  Signal = 4  // CPU exception
	SIGCHLD Signal = 17 // child status change, PM -> RS
)

func (s Signal) String() string {
	switch s {
	case SIGTERM:
		return "SIGTERM"
	case SIGKILL:
		return "SIGKILL"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGILL:
		return "SIGILL"
	case SIGCHLD:
		return "SIGCHLD"
	default:
		return fmt.Sprintf("SIG(%d)", int(s))
	}
}

// deliverSignal posts sig to the target. SIGKILL (and any signal a system
// process cannot catch) terminates immediately; catchable signals are
// queued and announced with a System notification so the target's message
// loop can fetch them with SigPending.
func (k *Kernel) deliverSignal(d *procEntry, sig Signal) {
	switch sig {
	case SIGKILL:
		k.kill(d, Cause{Kind: CauseSignal, Signal: SIGKILL})
	default:
		d.sigPending = append(d.sigPending, sig)
		k.notifyEntry(d, System)
	}
}

// SendSignal delivers sig to the process with endpoint ep. It is the
// kernel-level entry point used by the process manager; processes use
// Ctx.Kill which enforces privileges.
func (k *Kernel) SendSignal(ep Endpoint, sig Signal) error {
	d := k.lookup(ep)
	if d == nil {
		return ErrDeadDst
	}
	k.deliverSignal(d, sig)
	return nil
}
