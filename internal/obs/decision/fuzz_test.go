package decision

import (
	"bytes"
	"testing"
)

// FuzzParseJSONL holds two properties of the decision-log parser: it
// never panics on arbitrary input, and anything it accepts re-encodes
// to a canonical fixed point (parse → encode → parse → encode is
// byte-stable).
func FuzzParseJSONL(f *testing.F) {
	f.Add([]byte(""))
	f.Add(Encode(sample))
	f.Add([]byte(`{"t":1,"kind":"detect","svc":"x","defect":4,"failures":1,"budget":-1,"action":"","detail":"","delay":0,"status":0,"latency":0,"tr":7,"sp":9}` + "\n"))
	f.Add([]byte(`{"t":-5,"kind":"mark","svc":"","defect":0,"failures":0,"budget":0,"action":"","detail":"\"","delay":0,"status":0,"latency":0}` + "\n"))
	f.Add([]byte("{\"t\":1\nnot json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc := Encode(events)
		again, err := ParseJSONL(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical re-encoding failed to parse: %v\n%s", err, enc)
		}
		if !bytes.Equal(Encode(again), enc) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", enc, Encode(again))
		}
		// Check must never panic either, whatever the log contains.
		_ = Check(events)
	})
}
