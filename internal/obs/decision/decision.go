// Package decision is the recovery-decision trace: every choice the
// reincarnation server makes — declaring a driver stuck, escalating
// SIGTERM to SIGKILL, picking direct restart vs. a policy script,
// spending restart budget, giving up — becomes one structured Event,
// linked by trace ID to the recover:<label> episode spans of package
// obs. Policy-script execution is traced at step granularity (each
// command with its argv, exit status, and variable state), so a
// script-driven recovery leaves a readable "why" trail.
//
// Like obs, everything is deterministic and nil-safe: a nil *Recorder
// is valid and free, timestamps are virtual time, and the JSONL
// encoding has a fixed field order so same-seed runs produce
// byte-identical decision logs (usable as golden files and as the
// replay substrate of cmd/whatif).
package decision

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"resilientos/internal/perf"
	"resilientos/internal/sim"
)

// Kind is the type tag of a decision event.
type Kind uint8

// The decision taxonomy. Kinds are stable: their String values are the
// on-disk JSONL identifiers.
const (
	// KindMark is an annotation (run/cell boundaries). Offline verifiers
	// reset their per-service state at a mark, so independent runs can
	// share one decision log.
	KindMark Kind = iota + 1
	// KindTrigger is an RS-initiated choice made *before* a defect
	// materializes: declaring a heartbeat-silent driver stuck, killing on
	// a server complaint, granting an update its termination grace, or
	// escalating SIGTERM to SIGKILL. Triggers stand outside recovery
	// episodes (the kill they cause opens one).
	KindTrigger
	// KindDetect is a defect being attributed and a recovery episode
	// opening (Defect = class, Failures/Budget = consecutive-failure
	// count and restarts remaining, Detail = heartbeat history window).
	KindDetect
	// KindAction is the chosen recovery action for an open episode:
	// "restart-direct", "policy-run" (Detail = script argv), "give-up".
	KindAction
	// KindPolicyStep is one executed policy-script command (Action =
	// command name, Detail = expanded argv plus variable state, Status =
	// exit status, Delay = parsed sleep duration for the sleep builtin).
	// The synthetic final step "exit" carries the script's return code.
	KindPolicyStep
	// KindOutcome is the terminal decision of an episode: "recovered"
	// (Status 0) or "gave-up" (Status 1), with Latency = virtual time
	// from detection to terminal.
	KindOutcome

	kindMax
)

var kindNames = [...]string{
	KindMark:       "mark",
	KindTrigger:    "trigger",
	KindDetect:     "detect",
	KindAction:     "action",
	KindPolicyStep: "policy",
	KindOutcome:    "outcome",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a JSONL kind identifier; ok is false for unknown.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name != "" && name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Kinds returns every defined kind, in numeric order.
func Kinds() []Kind {
	out := make([]Kind, 0, int(kindMax)-1)
	for k := Kind(1); k < kindMax; k++ {
		out = append(out, k)
	}
	return out
}

// DefectName names a defect class (the numeric values of
// core.Defect, which are also the $2 argument of policy scripts).
// Unknown classes render as "class(N)".
func DefectName(class int) string {
	switch class {
	case 0:
		return "-"
	case 1:
		return "exit"
	case 2:
		return "exception"
	case 3:
		return "killed"
	case 4:
		return "heartbeat"
	case 5:
		return "complaint"
	case 6:
		return "update"
	}
	return fmt.Sprintf("class(%d)", class)
}

// Event is one recovery decision. T is virtual time; Service is the
// stable component label the decision is about. Defect, Failures and
// Budget snapshot the RS state the decision was computed from (Budget
// is restarts remaining before give-up, -1 = unlimited). Action names
// the choice; Detail carries kind-specific context (heartbeat window,
// script argv, variable state). Delay is a computed wait (termination
// grace, policy backoff), Status an exit/outcome status, Latency the
// detect-to-terminal recovery latency on outcomes. Trace/Span link the
// event to its obs recovery-episode span (zero when spans are off).
type Event struct {
	T        sim.Time
	Kind     Kind
	Service  string
	Defect   int
	Failures int
	Budget   int
	Action   string
	Detail   string
	Delay    sim.Time
	Status   int64
	Latency  sim.Time

	Trace int64
	Span  int64
}

// Sink receives every event the recorder emits. Sinks run synchronously
// in scheduler order, so anything they do must be deterministic.
type Sink interface {
	Emit(Event)
}

// Recorder is the decision bus: it stamps events with virtual time,
// filters by kind, and fans out to its sinks. A nil *Recorder is valid —
// every method is a no-op — so the RS hot path with decision tracing
// off costs a single nil check per decision point.
type Recorder struct {
	clock func() sim.Time
	sinks []Sink
	mask  uint64 // bit i set = Kind(i) enabled

	perf  *perf.Profiler // wall-clock cost attribution (nil = off)
	nemit uint64         // events emitted past the mask (deterministic)
}

// NewRecorder creates a recorder with all kinds enabled.
func NewRecorder(sinks ...Sink) *Recorder {
	return &Recorder{sinks: sinks, mask: ^uint64(0)}
}

// SetClock installs the virtual-time source (the simulation
// environment's Now). Events emitted before a clock is set are stamped
// with their pre-filled T (zero by default).
func (r *Recorder) SetClock(fn func() sim.Time) {
	if r == nil {
		return
	}
	r.clock = fn
}

// AddSink attaches another sink.
func (r *Recorder) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.sinks = append(r.sinks, s)
}

// Disable turns the given kinds off; their Emit calls become no-ops and
// On reports false (instrumentation uses On to skip argument work).
func (r *Recorder) Disable(kinds ...Kind) {
	if r == nil {
		return
	}
	for _, k := range kinds {
		r.mask &^= 1 << uint(k)
	}
}

// Enable turns kinds (back) on.
func (r *Recorder) Enable(kinds ...Kind) {
	if r == nil {
		return
	}
	for _, k := range kinds {
		r.mask |= 1 << uint(k)
	}
}

// On reports whether events of kind k are recorded. Nil-safe; the RS
// calls this before computing expensive event details (heartbeat
// windows, joined argv).
func (r *Recorder) On(k Kind) bool {
	return r != nil && r.mask&(1<<uint(k)) != 0
}

// SetPerf installs the wall-clock profiler: every emitted event's
// stamping and sink fan-out runs inside RegionDecision. Nil-safe; a nil
// profiler (the default) keeps the emit path free.
func (r *Recorder) SetPerf(p *perf.Profiler) {
	if r == nil {
		return
	}
	r.perf = p
}

// Emitted reports how many events passed the kind mask and reached the
// sinks — the recorder's deterministic work counter. Nil-safe.
func (r *Recorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	return r.nemit
}

// Emit stamps e with the current virtual time and publishes it to every
// sink. Nil-safe.
func (r *Recorder) Emit(e Event) {
	if r == nil || r.mask&(1<<uint(e.Kind)) == 0 {
		return
	}
	r.nemit++
	r.perf.Begin(perf.RegionDecision)
	if r.clock != nil {
		e.T = r.clock()
	}
	for _, s := range r.sinks {
		s.Emit(e)
	}
	r.perf.End(perf.RegionDecision)
}

// SliceSink appends every event to an unbounded slice.
type SliceSink struct {
	events []Event
}

// Emit implements Sink.
func (s *SliceSink) Emit(e Event) { s.events = append(s.events, e) }

// Events returns the recorded events in emission order (not a copy).
func (s *SliceSink) Events() []Event { return s.events }

// JSONLSink writes each event as one canonical JSON line. The first
// write error is retained and silences the sink.
type JSONLSink struct {
	w   io.Writer
	buf []byte
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSONL(s.buf[:0], e)
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// AppendJSONL appends e's canonical JSONL encoding (including the
// trailing newline) to dst. Field order is fixed — t, kind, svc,
// defect, failures, budget, action, detail, delay, status, latency,
// then tr and sp only when the event carries span linkage — so
// same-seed runs produce byte-identical logs.
func AppendJSONL(dst []byte, e Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, int64(e.T), 10)
	dst = append(dst, `,"kind":`...)
	dst = strconv.AppendQuote(dst, e.Kind.String())
	dst = append(dst, `,"svc":`...)
	dst = strconv.AppendQuote(dst, e.Service)
	dst = append(dst, `,"defect":`...)
	dst = strconv.AppendInt(dst, int64(e.Defect), 10)
	dst = append(dst, `,"failures":`...)
	dst = strconv.AppendInt(dst, int64(e.Failures), 10)
	dst = append(dst, `,"budget":`...)
	dst = strconv.AppendInt(dst, int64(e.Budget), 10)
	dst = append(dst, `,"action":`...)
	dst = strconv.AppendQuote(dst, e.Action)
	dst = append(dst, `,"detail":`...)
	dst = strconv.AppendQuote(dst, e.Detail)
	dst = append(dst, `,"delay":`...)
	dst = strconv.AppendInt(dst, int64(e.Delay), 10)
	dst = append(dst, `,"status":`...)
	dst = strconv.AppendInt(dst, e.Status, 10)
	dst = append(dst, `,"latency":`...)
	dst = strconv.AppendInt(dst, int64(e.Latency), 10)
	if e.Trace != 0 || e.Span != 0 {
		dst = append(dst, `,"tr":`...)
		dst = strconv.AppendInt(dst, e.Trace, 10)
		dst = append(dst, `,"sp":`...)
		dst = strconv.AppendInt(dst, e.Span, 10)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// Encode renders events as a canonical JSONL document.
func Encode(events []Event) []byte {
	var dst []byte
	for _, e := range events {
		dst = AppendJSONL(dst, e)
	}
	return dst
}

// jsonlRecord mirrors the canonical encoding for parsing.
type jsonlRecord struct {
	T        int64  `json:"t"`
	Kind     string `json:"kind"`
	Svc      string `json:"svc"`
	Defect   int    `json:"defect"`
	Failures int    `json:"failures"`
	Budget   int    `json:"budget"`
	Action   string `json:"action"`
	Detail   string `json:"detail"`
	Delay    int64  `json:"delay"`
	Status   int64  `json:"status"`
	Latency  int64  `json:"latency"`
	Tr       int64  `json:"tr"`
	Sp       int64  `json:"sp"`
}

// ParseJSONL reads a decision log back into events. The parser is
// strict — unknown fields, unknown kinds, and malformed lines are
// errors, never panics — and re-encoding its output reproduces a
// canonical log byte-for-byte (the round-trip property the fuzz target
// holds). Blank lines are skipped; lines are capped at 1 MiB.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var rec jsonlRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("decision: log line %d: %v", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("decision: log line %d: trailing data after record", line)
		}
		k, ok := ParseKind(rec.Kind)
		if !ok {
			return nil, fmt.Errorf("decision: log line %d: unknown kind %q", line, rec.Kind)
		}
		out = append(out, Event{
			T: sim.Time(rec.T), Kind: k, Service: rec.Svc,
			Defect: rec.Defect, Failures: rec.Failures, Budget: rec.Budget,
			Action: rec.Action, Detail: rec.Detail,
			Delay: sim.Time(rec.Delay), Status: rec.Status, Latency: sim.Time(rec.Latency),
			Trace: rec.Tr, Span: rec.Sp,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Check verifies a decision log's well-formedness offline, mirroring
// the live internal/check invariant: a detect opens an episode for its
// service, actions and policy steps only occur inside one, each episode
// gets exactly one terminal outcome, and policy steps only occur inside
// a policy run opened by a "policy-run" action and closed by its "exit"
// step. Marks reset all state (independent runs sharing one log).
// Returns a description of every problem found (nil = well-formed).
func Check(events []Event) []string {
	var problems []string
	open := map[string]sim.Time{}      // service -> detect time
	policyRun := map[string]sim.Time{} // service -> policy-run time
	for i, e := range events {
		switch e.Kind {
		case KindMark:
			open = map[string]sim.Time{}
			policyRun = map[string]sim.Time{}
		case KindTrigger:
			// Triggers stand outside episodes by design.
		case KindDetect:
			open[e.Service] = e.T
		case KindAction:
			if _, ok := open[e.Service]; !ok {
				problems = append(problems, fmt.Sprintf(
					"event %d at %v: action %q for %s outside an open episode",
					i, e.T, e.Action, e.Service))
			}
			if e.Action == "policy-run" {
				policyRun[e.Service] = e.T
			}
		case KindPolicyStep:
			if _, ok := policyRun[e.Service]; !ok {
				problems = append(problems, fmt.Sprintf(
					"event %d at %v: policy step %q for %s outside a policy run",
					i, e.T, e.Action, e.Service))
			}
			if e.Action == "exit" {
				delete(policyRun, e.Service)
			}
		case KindOutcome:
			if _, ok := open[e.Service]; !ok {
				problems = append(problems, fmt.Sprintf(
					"event %d at %v: terminal decision %q for %s without an open episode",
					i, e.T, e.Action, e.Service))
			} else {
				delete(open, e.Service)
			}
		default:
			problems = append(problems, fmt.Sprintf(
				"event %d at %v: unknown kind %d", i, e.T, int(e.Kind)))
		}
	}
	// Map-derived tail problems get a sorted, deterministic order.
	var tail []string
	for svc, t := range open {
		tail = append(tail, fmt.Sprintf(
			"episode for %s detected at %v has no terminal decision", svc, t))
	}
	for svc, t := range policyRun {
		tail = append(tail, fmt.Sprintf(
			"policy run for %s started at %v never exited", svc, t))
	}
	sort.Strings(tail)
	return append(problems, tail...)
}
