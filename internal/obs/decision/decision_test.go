package decision

import (
	"bytes"
	"strings"
	"testing"

	"resilientos/internal/sim"
)

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	r.SetClock(func() sim.Time { return 1 })
	r.AddSink(&SliceSink{})
	r.Disable(KindDetect)
	r.Enable(KindDetect)
	if r.On(KindDetect) {
		t.Fatal("nil recorder reports On")
	}
	r.Emit(Event{Kind: KindDetect, Service: "eth"}) // must not panic
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, got, ok, k)
		}
	}
	if _, ok := ParseKind("nonsense"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestMaskFilters(t *testing.T) {
	sink := &SliceSink{}
	r := NewRecorder(sink)
	r.Disable(KindPolicyStep)
	if r.On(KindPolicyStep) {
		t.Fatal("disabled kind reports On")
	}
	r.Emit(Event{Kind: KindPolicyStep, Service: "x"})
	r.Emit(Event{Kind: KindDetect, Service: "x"})
	if len(sink.Events()) != 1 || sink.Events()[0].Kind != KindDetect {
		t.Fatalf("mask filtering broken: %+v", sink.Events())
	}
	r.Enable(KindPolicyStep)
	r.Emit(Event{Kind: KindPolicyStep, Service: "x"})
	if len(sink.Events()) != 2 {
		t.Fatalf("re-enabled kind not recorded")
	}
}

func TestClockStamps(t *testing.T) {
	sink := &SliceSink{}
	r := NewRecorder(sink)
	var now sim.Time = 42
	r.SetClock(func() sim.Time { return now })
	r.Emit(Event{Kind: KindDetect, Service: "x"})
	now = 99
	r.Emit(Event{Kind: KindOutcome, Service: "x", Action: "recovered"})
	evs := sink.Events()
	if evs[0].T != 42 || evs[1].T != 99 {
		t.Fatalf("timestamps %v, %v; want 42, 99", evs[0].T, evs[1].T)
	}
}

var sample = []Event{
	{T: 0, Kind: KindMark, Service: "whatif", Action: "campaign", Detail: "seeds=11"},
	{T: 100, Kind: KindTrigger, Service: "eth.rtl8139", Defect: 4, Action: "declare-stuck", Detail: "hb=oom missed=3"},
	{T: 150, Kind: KindDetect, Service: "eth.rtl8139", Defect: 4, Failures: 1, Budget: -1, Detail: "oom", Trace: 7, Span: 9},
	{T: 160, Kind: KindAction, Service: "eth.rtl8139", Defect: 4, Failures: 1, Budget: -1, Action: "policy-run", Detail: "net.sh eth.rtl8139 4 1", Trace: 7, Span: 9},
	{T: 170, Kind: KindPolicyStep, Service: "eth.rtl8139", Defect: 4, Action: "sleep", Detail: "sleep 1 [component=eth.rtl8139]", Delay: sim.Time(1e9), Trace: 7, Span: 9},
	{T: 200, Kind: KindPolicyStep, Service: "eth.rtl8139", Defect: 4, Action: "service", Detail: "service restart eth.rtl8139", Trace: 7, Span: 9},
	{T: 210, Kind: KindOutcome, Service: "eth.rtl8139", Defect: 4, Failures: 1, Budget: -1, Action: "recovered", Latency: 60, Trace: 7, Span: 9},
	{T: 220, Kind: KindPolicyStep, Service: "eth.rtl8139", Defect: 4, Action: "exit", Status: 0, Trace: 7, Span: 9},
}

func TestJSONLRoundTrip(t *testing.T) {
	enc := Encode(sample)
	got, err := ParseJSONL(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(sample) {
		t.Fatalf("parsed %d events, want %d", len(got), len(sample))
	}
	for i := range got {
		if got[i] != sample[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], sample[i])
		}
	}
	if !bytes.Equal(Encode(got), enc) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestJSONLOmitsZeroSpanContext(t *testing.T) {
	line := string(AppendJSONL(nil, Event{T: 5, Kind: KindTrigger, Service: "x", Action: "escalate-sigkill"}))
	if strings.Contains(line, `"tr"`) || strings.Contains(line, `"sp"`) {
		t.Fatalf("context-free event carries tr/sp: %s", line)
	}
	line = string(AppendJSONL(nil, Event{T: 5, Kind: KindDetect, Service: "x", Trace: 1, Span: 2}))
	if !strings.Contains(line, `"tr":1,"sp":2`) {
		t.Fatalf("span linkage missing: %s", line)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown kind":  `{"t":1,"kind":"bogus","svc":"x","defect":0,"failures":0,"budget":0,"action":"","detail":"","delay":0,"status":0,"latency":0}`,
		"unknown field": `{"t":1,"kind":"detect","svc":"x","defect":0,"failures":0,"budget":0,"action":"","detail":"","delay":0,"status":0,"latency":0,"extra":1}`,
		"not json":      `detect eth.rtl8139`,
		"trailing data": `{"t":1,"kind":"detect","svc":"x","defect":0,"failures":0,"budget":0,"action":"","detail":"","delay":0,"status":0,"latency":0} {"t":2}`,
	}
	for name, line := range cases {
		if _, err := ParseJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: parse accepted %s", name, line)
		}
	}
	// Blank lines are fine.
	evs, err := ParseJSONL(strings.NewReader("\n" + string(Encode(sample[:1])) + "\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank-line handling: %v, %d events", err, len(evs))
	}
}

func TestDefectNames(t *testing.T) {
	want := map[int]string{0: "-", 1: "exit", 2: "exception", 3: "killed",
		4: "heartbeat", 5: "complaint", 6: "update"}
	for class, name := range want {
		if got := DefectName(class); got != name {
			t.Errorf("DefectName(%d) = %q, want %q", class, got, name)
		}
	}
	if got := DefectName(42); got != "class(42)" {
		t.Errorf("DefectName(42) = %q", got)
	}
}

func TestCheckWellFormed(t *testing.T) {
	if problems := Check(sample); len(problems) != 0 {
		t.Fatalf("well-formed log reported problems: %v", problems)
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{
			"action without episode",
			[]Event{{Kind: KindAction, Service: "x", Action: "restart-direct"}},
			"outside an open episode",
		},
		{
			"outcome without episode",
			[]Event{{Kind: KindOutcome, Service: "x", Action: "recovered"}},
			"without an open episode",
		},
		{
			"double terminal",
			[]Event{
				{Kind: KindDetect, Service: "x"},
				{Kind: KindOutcome, Service: "x", Action: "recovered"},
				{Kind: KindOutcome, Service: "x", Action: "recovered"},
			},
			"without an open episode",
		},
		{
			"episode without terminal",
			[]Event{{T: 7, Kind: KindDetect, Service: "x"}},
			"no terminal decision",
		},
		{
			"policy step without run",
			[]Event{
				{Kind: KindDetect, Service: "x"},
				{Kind: KindPolicyStep, Service: "x", Action: "sleep"},
			},
			"outside a policy run",
		},
		{
			"policy run never exited",
			[]Event{
				{Kind: KindDetect, Service: "x"},
				{Kind: KindAction, Service: "x", Action: "policy-run"},
				{Kind: KindOutcome, Service: "x", Action: "recovered"},
			},
			"never exited",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Check(tc.events)
			found := false
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a problem containing %q, got %v", tc.want, problems)
			}
		})
	}
}

func TestCheckMarkResets(t *testing.T) {
	events := []Event{
		{Kind: KindDetect, Service: "x"},
		{Kind: KindAction, Service: "x", Action: "policy-run"},
		{Kind: KindMark, Service: "campaign", Action: "cell"},
		{Kind: KindDetect, Service: "x"},
		{Kind: KindOutcome, Service: "x", Action: "recovered"},
	}
	if problems := Check(events); len(problems) != 0 {
		t.Fatalf("mark did not reset state: %v", problems)
	}
}
