package obs

import "testing"

func TestSegments(t *testing.T) {
	mark := Event{Kind: KindMark, Comp: "run"}
	span := Event{Kind: KindSpanBegin, Comp: "mfs", Trace: 1, Span: 1}

	cases := []struct {
		name   string
		events []Event
		want   []int // events per segment
	}{
		{"empty", nil, []int{0}},
		{"no marks", []Event{span, span}, []int{2}},
		{"leading mark", []Event{mark, span}, []int{2}},
		{"two runs", []Event{mark, span, span, mark, span}, []int{3, 2}},
		{"back-to-back marks", []Event{mark, mark, span}, []int{1, 2}},
	}
	for _, tc := range cases {
		segs := Segments(tc.events)
		if len(segs) != len(tc.want) {
			t.Errorf("%s: %d segments, want %d", tc.name, len(segs), len(tc.want))
			continue
		}
		for i, seg := range segs {
			if len(seg) != tc.want[i] {
				t.Errorf("%s: segment %d has %d events, want %d", tc.name, i, len(seg), tc.want[i])
			}
		}
	}
}
