package profile

import (
	"strings"
	"testing"

	"resilientos/internal/obs"
	"resilientos/internal/sim"
)

// fixture: vfs.read [0,10ms] contains call:mfs [1ms,9ms]; the first
// attempt orphans at 4ms, the retry runs [7ms,9ms] with a retry-of link.
func fixture() []obs.Event {
	at := func(t int64, k obs.Kind, comp, aux string, tr, sp, pa int64) obs.Event {
		return obs.Event{T: sim.Time(t), Kind: k, Comp: comp, Aux: aux, Trace: tr, Span: sp, Parent: pa}
	}
	ms := int64(1e6)
	return []obs.Event{
		at(0, obs.KindSpanBegin, "app", "vfs.read", 1, 1, 0),
		at(1*ms, obs.KindSpanBegin, "vfs", "call:mfs", 1, 2, 1),
		at(2*ms, obs.KindSpanBegin, "mfs", "bdev.read", 1, 3, 2),
		at(4*ms, obs.KindSpanOrphan, "mfs", "crash:disk", 1, 3, 0),
		at(7*ms, obs.KindSpanBegin, "mfs", "bdev.read", 1, 4, 2),
		at(7*ms, obs.KindSpanLink, "mfs", "retry-of", 1, 4, 3),
		at(9*ms, obs.KindSpanEnd, "mfs", "", 1, 4, 0),
		at(9*ms, obs.KindSpanEnd, "vfs", "", 1, 2, 0),
		at(10*ms, obs.KindSpanEnd, "app", "", 1, 1, 0),
	}
}

func TestPhaseAttribution(t *testing.T) {
	p := Build(fixture())
	ms := sim.Time(1e6)
	if p.Spans != 4 || p.Open != 0 {
		t.Fatalf("spans=%d open=%d, want 4/0", p.Spans, p.Open)
	}
	// app: 10ms total minus 8ms child = 2ms compute.
	if got := p.Phases["app"].Compute; got != 2*ms {
		t.Fatalf("app compute = %v, want 2ms", got)
	}
	// vfs call:mfs: 8ms minus children (2ms orphan + 2ms retry) = 4ms blocked.
	if got := p.Phases["vfs"].Blocked; got != 4*ms {
		t.Fatalf("vfs blocked = %v, want 4ms", got)
	}
	// mfs: 2ms (orphaned attempt) + 2ms (retry) compute, 3ms dead
	// (orphan at 4ms -> retry at 7ms).
	if got := p.Phases["mfs"].Compute; got != 4*ms {
		t.Fatalf("mfs compute = %v, want 4ms", got)
	}
	if got := p.Phases["mfs"].Dead; got != 3*ms {
		t.Fatalf("mfs dead = %v, want 3ms", got)
	}
}

func TestTopRowsAggregated(t *testing.T) {
	p := Build(fixture())
	top := p.Top(1)
	if len(top) != 1 {
		t.Fatalf("top(1) = %d rows", len(top))
	}
	// mfs bdev.read aggregates both attempts: 2 spans, 4ms total/self.
	if top[0].Comp != "mfs" || top[0].Name != "bdev.read" || top[0].Count != 2 {
		t.Fatalf("top row = %+v", top[0])
	}
}

// TestSegmentedRunsAggregate feeds two mark-delimited runs with
// colliding span IDs (each run boots a fresh recorder) and checks the
// profiler folds each segment independently, then sums.
func TestSegmentedRunsAggregate(t *testing.T) {
	mark := obs.Event{Kind: obs.KindMark, Comp: "run", Aux: "run 1"}
	events := append([]obs.Event{mark}, fixture()...)
	events = append(events, obs.Event{Kind: obs.KindMark, Comp: "run", Aux: "run 2"})
	events = append(events, fixture()...)

	p := Build(events)
	ms := sim.Time(1e6)
	if p.Spans != 8 || p.Open != 0 {
		t.Fatalf("spans=%d open=%d, want 8/0", p.Spans, p.Open)
	}
	if got := p.Phases["mfs"].Dead; got != 6*ms {
		t.Fatalf("mfs dead = %v, want 6ms (3ms per run)", got)
	}
	if top := p.Top(1); top[0].Count != 4 {
		t.Fatalf("top row count = %d, want 4 (2 attempts per run)", top[0].Count)
	}
}

func TestFoldedStacks(t *testing.T) {
	p := Build(fixture())
	var sb strings.Builder
	p.WriteFolded(&sb)
	out := sb.String()
	want := "app:vfs.read 2000\n" +
		"app:vfs.read;vfs:call:mfs 4000\n" +
		"app:vfs.read;vfs:call:mfs;mfs:bdev.read 4000\n"
	if out != want {
		t.Fatalf("folded stacks:\n%s\nwant:\n%s", out, want)
	}
}
