// Package profile is the virtual-time profiler: it folds a trace's span
// forest into per-component time attribution. Because timestamps are the
// deterministic simulation clock, the numbers are exact — no sampling —
// and identical across runs of the same seed+workload.
//
// Attribution splits each span's extent three ways:
//
//   - self (compute): the span's duration minus its children's — time the
//     component itself spent on the request.
//   - blocked: self time of "call:*" spans — time spent blocked in an IPC
//     rendezvous waiting for another component.
//   - dead: for each "retry-of" link whose predecessor was orphaned, the
//     gap between the orphan's terminal and the retry's start — time the
//     request spent dead because the serving component was being
//     recovered. Charged to the component that owned the orphaned span.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"resilientos/internal/obs"
	"resilientos/internal/sim"
)

// Row is one aggregated (component, span name) profile entry.
type Row struct {
	Comp  string
	Name  string
	Count int      // spans aggregated
	Total sim.Time // wall extent including children
	Self  sim.Time // extent minus children (the component's own share)
}

// PhaseTimes is one component's time split by phase.
type PhaseTimes struct {
	Compute sim.Time // self time of ordinary spans
	Blocked sim.Time // self time of call:* spans (blocked in rendezvous)
	Dead    sim.Time // orphan -> retry gaps (dead during recovery)
}

// Profile is the folded result.
type Profile struct {
	Rows   []Row                 // by (comp, name), self-time descending
	Phases map[string]PhaseTimes // comp -> phase split
	Spans  int                   // terminated spans profiled
	Open   int                   // unterminated spans skipped

	forests []*obs.Forest // one per mark-delimited segment
}

// Build folds events into a profile. Span IDs are only unique within one
// mark-delimited segment (each experiment run boots a fresh recorder), so
// the forest is built per segment and the aggregation spans all of them.
func Build(events []obs.Event) *Profile {
	p := &Profile{Phases: make(map[string]PhaseTimes)}
	rows := make(map[[2]string]*Row)
	for _, seg := range obs.Segments(events) {
		f := obs.BuildForest(seg)
		p.forests = append(p.forests, f)
		p.fold(f, rows)
	}
	p.Rows = make([]Row, 0, len(rows))
	for _, r := range rows {
		p.Rows = append(p.Rows, *r)
	}
	sort.Slice(p.Rows, func(i, j int) bool {
		a, b := p.Rows[i], p.Rows[j]
		if a.Self != b.Self {
			return a.Self > b.Self
		}
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		return a.Name < b.Name
	})
	return p
}

// fold accumulates one segment's forest into the profile.
func (p *Profile) fold(f *obs.Forest, rows map[[2]string]*Row) {
	for _, s := range f.ByID {
		if !s.Terminated() {
			p.Open++
			continue
		}
		p.Spans++
		self := selfTime(s)
		k := [2]string{s.Comp, s.Name}
		r := rows[k]
		if r == nil {
			r = &Row{Comp: s.Comp, Name: s.Name}
			rows[k] = r
		}
		r.Count++
		r.Total += s.Duration()
		r.Self += self
		ph := p.Phases[s.Comp]
		if strings.HasPrefix(s.Name, "call:") {
			ph.Blocked += self
		} else {
			ph.Compute += self
		}
		p.Phases[s.Comp] = ph
	}
	// Dead-during-recovery: the orphan -> retry gap, charged to the
	// component whose request was interrupted.
	for _, l := range f.Links {
		if l.Kind != "retry-of" {
			continue
		}
		pred, succ := f.ByID[l.To], f.ByID[l.From]
		if pred == nil || succ == nil || !pred.Orphaned {
			continue
		}
		if gap := succ.Start - pred.End; gap > 0 {
			ph := p.Phases[pred.Comp]
			ph.Dead += gap
			p.Phases[pred.Comp] = ph
		}
	}
}

// selfTime is a span's duration minus its children's (clamped at 0:
// asynchronous fan-out can overlap a parent with multiple children).
func selfTime(s *obs.TraceSpan) sim.Time {
	d := s.Duration()
	for _, c := range s.Children {
		if c.Terminated() {
			d -= c.Duration()
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Top returns the n largest rows by self time.
func (p *Profile) Top(n int) []Row {
	if n > len(p.Rows) {
		n = len(p.Rows)
	}
	return p.Rows[:n]
}

// Comps returns the profiled components in sorted order.
func (p *Profile) Comps() []string {
	out := make([]string, 0, len(p.Phases))
	for c := range p.Phases {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// WriteTable renders the top-n rows and the per-component phase split as
// a fixed-width table (virtual microseconds).
func (p *Profile) WriteTable(w io.Writer, n int) {
	fmt.Fprintf(w, "%-12s %-18s %8s %12s %12s\n", "COMP", "SPAN", "COUNT", "TOTAL(us)", "SELF(us)")
	for _, r := range p.Top(n) {
		fmt.Fprintf(w, "%-12s %-18s %8d %12d %12d\n",
			r.Comp, r.Name, r.Count, int64(r.Total)/1000, int64(r.Self)/1000)
	}
	fmt.Fprintf(w, "\n%-12s %12s %12s %12s\n", "COMP", "COMPUTE(us)", "BLOCKED(us)", "DEAD(us)")
	for _, c := range p.Comps() {
		ph := p.Phases[c]
		fmt.Fprintf(w, "%-12s %12d %12d %12d\n",
			c, int64(ph.Compute)/1000, int64(ph.Blocked)/1000, int64(ph.Dead)/1000)
	}
}

// WriteFolded emits the profile in folded-stacks format (one line per
// unique root->span path, weight = accumulated self time in virtual
// microseconds), ready for flamegraph.pl or speedscope. Lines are sorted,
// so output is deterministic.
func (p *Profile) WriteFolded(w io.Writer) {
	stacks := make(map[string]int64)
	for _, f := range p.forests {
		for _, s := range f.ByID {
			if !s.Terminated() {
				continue
			}
			self := int64(selfTime(s)) / 1000
			if self <= 0 {
				continue
			}
			stacks[stackOf(f, s)] += self
		}
	}
	lines := make([]string, 0, len(stacks))
	for stack, weight := range stacks {
		lines = append(lines, fmt.Sprintf("%s %d", stack, weight))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// stackOf renders a span's root->self frame path.
func stackOf(f *obs.Forest, s *obs.TraceSpan) string {
	var frames []string
	for cur := s; cur != nil; cur = f.ByID[cur.Parent] {
		frames = append(frames, cur.Comp+":"+cur.Name)
		if cur.Parent == 0 || cur.Parent >= cur.ID {
			break // parent IDs precede children; anything else is malformed
		}
	}
	// Reverse: root first.
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}
	return strings.Join(frames, ";")
}
