package obs

import (
	"bytes"
	"strings"
	"testing"

	"resilientos/internal/sim"
)

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	// Every method must be a no-op, never a panic.
	r.SetClock(func() sim.Time { return 0 })
	r.AddSink(&SliceSink{})
	r.Disable(KindIPCSend)
	r.Enable(KindIPCSend)
	r.Emit(KindDefect, "eth", "exit/panic", 1, 0)
	r.ObserveSendRec(5)
	r.ObserveRecovery("eth", 7)
	if r.On(KindDefect) {
		t.Fatal("nil recorder reports kinds enabled")
	}
	if r.Metrics() != nil {
		t.Fatal("nil recorder returned a registry")
	}
	// Chained nil-safe metric calls.
	r.Metrics().Counter("x").Add(1)
	r.Metrics().Gauge("y").Set(2)
	r.Metrics().Histogram("z", nil).Observe(3)
	if got := r.Metrics().Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
}

func TestRecorderFiltering(t *testing.T) {
	s := &SliceSink{}
	r := NewRecorder(s)
	r.Disable(KindIPCSend, KindIPCRecv)
	r.Emit(KindIPCSend, "a", "b", 0, 0)
	r.Emit(KindDefect, "eth", "exit/panic", 1, 0)
	if r.On(KindIPCSend) || !r.On(KindDefect) {
		t.Fatal("On does not reflect the mask")
	}
	if len(s.Events()) != 1 || s.Events()[0].Kind != KindDefect {
		t.Fatalf("filtering failed: %v", s.Events())
	}
	r.Enable(KindIPCSend)
	r.Emit(KindIPCSend, "a", "b", 0, 0)
	if len(s.Events()) != 2 {
		t.Fatal("re-enabled kind not recorded")
	}
}

func TestRecorderClockStamps(t *testing.T) {
	s := &SliceSink{}
	r := NewRecorder(s)
	var now sim.Time = 42
	r.SetClock(func() sim.Time { return now })
	r.Emit(KindMark, "", "", 0, 0)
	now = 99
	r.Emit(KindMark, "", "", 0, 0)
	ev := s.Events()
	if ev[0].T != 42 || ev[1].T != 99 {
		t.Fatalf("timestamps = %v, %v", ev[0].T, ev[1].T)
	}
}

func TestRingSinkOverflowDropsOldest(t *testing.T) {
	s := NewRingSink(3)
	for i := int64(1); i <= 5; i++ {
		s.Emit(Event{Kind: KindMark, V1: i})
	}
	ev := s.Events()
	if len(ev) != 3 {
		t.Fatalf("len = %d, want 3", len(ev))
	}
	// Oldest (1, 2) dropped; 3, 4, 5 retained oldest-first.
	for i, want := range []int64{3, 4, 5} {
		if ev[i].V1 != want {
			t.Fatalf("event %d = %d, want %d", i, ev[i].V1, want)
		}
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped())
	}
}

func TestRingSinkUnderCapacity(t *testing.T) {
	s := NewRingSink(8)
	s.Emit(Event{V1: 1})
	s.Emit(Event{V1: 2})
	ev := s.Events()
	if len(ev) != 2 || ev[0].V1 != 1 || ev[1].V1 != 2 || s.Dropped() != 0 {
		t.Fatalf("unexpected ring state: %v dropped=%d", ev, s.Dropped())
	}
}

func TestCountSink(t *testing.T) {
	s := NewCountSink()
	s.Emit(Event{Kind: KindDefect, Comp: "eth"})
	s.Emit(Event{Kind: KindDefect, Comp: "eth"})
	s.Emit(Event{Kind: KindRestart, Comp: "disk"})
	if s.Total != 3 || s.ByKind[KindDefect] != 2 || s.ByComp["disk"] != 1 {
		t.Fatalf("counts: total=%d kinds=%v comps=%v", s.Total, s.ByKind, s.ByComp)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindMark, Comp: "run", Aux: "fig7"},
		{T: 1500000, Kind: KindDefect, Comp: "eth.rtl8139", Aux: "killed", V1: 1, V2: 3},
		{T: 2000000, Kind: KindRestart, Comp: "eth.rtl8139", Aux: `v"2"`, V1: 258, V2: 1},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLEncodingIsCanonical(t *testing.T) {
	e := Event{T: 7, Kind: KindIPCSend, Comp: "inet", Aux: "eth.rtl8139", V1: 300, V2: 1}
	line := string(AppendJSONL(nil, e))
	want := `{"t":7,"kind":"ipc.send","comp":"inet","aux":"eth.rtl8139","v1":300,"v2":1}` + "\n"
	if line != want {
		t.Fatalf("encoding:\n got %q\nwant %q", line, want)
	}
	// Re-encoding a parsed trace must be byte-identical (field order fixed).
	parsed, err := ParseJSONL(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(AppendJSONL(nil, parsed[0])); got != line {
		t.Fatalf("re-encode mismatch:\n got %q\nwant %q", got, line)
	}
}

func TestParseJSONLRejectsUnknownKind(t *testing.T) {
	_, err := ParseJSONL(strings.NewReader(`{"t":0,"kind":"nope","comp":"","aux":"","v1":0,"v2":0}`))
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d (%s) does not round-trip", k, k)
		}
	}
}

func TestAttachSim(t *testing.T) {
	env := sim.NewEnv(1)
	s := &SliceSink{}
	r := NewRecorder(s)
	r.SetClock(env.Now)
	AttachSim(env, r)
	p := env.Spawn("eth.rtl8139/2", func(p *sim.Proc) {})
	env.Run(0)
	_ = p
	ev := s.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want spawn+exit", len(ev))
	}
	if ev[0].Kind != KindProcSpawn || ev[0].Comp != "eth.rtl8139" || ev[0].Aux != "eth.rtl8139/2" {
		t.Fatalf("spawn event = %+v", ev[0])
	}
	if ev[1].Kind != KindProcExit {
		t.Fatalf("exit event = %+v", ev[1])
	}
}

// Overflow under sustained high rate: a flight-recorder ring fed
// through the Recorder at trace rates must account for every event —
// kept + dropped == emitted — keep exactly the newest window in
// emission order, and stamp the drop mark with the exact count and the
// oldest survivor's time so a rendered timeline stays monotone.
func TestRingSinkOverflowUnderHighRate(t *testing.T) {
	const capacity = 256
	const emitted = 10_000
	ring := NewRingSink(capacity)
	rec := NewRecorder(ring)
	var now sim.Time
	rec.SetClock(func() sim.Time { return now })
	for i := 0; i < emitted; i++ {
		now = sim.Time(i)
		rec.Emit(KindIPCSend, "eth.rtl8139", "burst", int64(i), 0)
	}
	if rec.Emitted() != emitted {
		t.Fatalf("recorder emitted %d, want %d", rec.Emitted(), emitted)
	}
	if ring.Dropped() != emitted-capacity {
		t.Fatalf("dropped %d, want %d", ring.Dropped(), emitted-capacity)
	}
	evs := ring.Events()
	if len(evs) != capacity {
		t.Fatalf("kept %d events, want %d", len(evs), capacity)
	}
	for j, e := range evs {
		if e.V1 != int64(emitted-capacity+j) {
			t.Fatalf("window broken at %d: got V1=%d, want %d", j, e.V1, emitted-capacity+j)
		}
	}
	marked := ring.EventsWithDropMark()
	if len(marked) != capacity+1 {
		t.Fatalf("marked stream has %d events, want %d", len(marked), capacity+1)
	}
	m := marked[0]
	if m.Kind != KindMark || m.Comp != DropMarkComp || m.Aux != DropMarkAux {
		t.Fatalf("leading event is not a drop mark: %+v", m)
	}
	if m.V1 != emitted-capacity {
		t.Fatalf("drop mark count %d, want %d", m.V1, emitted-capacity)
	}
	if m.T != marked[1].T {
		t.Fatalf("drop mark stamped %v, oldest survivor %v", m.T, marked[1].T)
	}
}
