package obs

import (
	"fmt"
	"sort"
	"time"
)

// Registry holds named metrics. Get-or-create accessors make call sites
// one-liners; a nil *Registry (from a nil Recorder) returns nil metrics
// whose methods are no-ops, so instrumentation is free when observability
// is off. Snapshot order is sorted by name, keeping dumps deterministic.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	v, ok := g.gauges[name]
	if !ok {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds are ignored for an existing one).
func (g *Registry) Histogram(name string, bounds []int64) *Histogram {
	if g == nil {
		return nil
	}
	h, ok := g.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		g.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value metric.
type Gauge struct{ v int64 }

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// LatencyBuckets is the default bucket layout for virtual-time latency
// histograms, in nanoseconds: 1ms .. 30s, roughly logarithmic, plus the
// implicit +Inf overflow bucket.
var LatencyBuckets = []int64{
	int64(1 * time.Millisecond),
	int64(2 * time.Millisecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(20 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(200 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2 * time.Second),
	int64(5 * time.Second),
	int64(10 * time.Second),
	int64(30 * time.Second),
}

// Histogram is a fixed-bucket histogram: counts[i] holds observations
// v <= bounds[i] (and greater than the previous bound); the final bucket
// is the +Inf overflow. Bounds are ascending and fixed at creation.
//
// Bucket boundary semantics: bucket i covers the half-open interval
// (bounds[i-1], bounds[i]] — closed on the upper end — so an observation
// exactly equal to a bound lands in that bound's bucket, not the next
// one. The overflow bucket covers (bounds[last], +Inf).
type Histogram struct {
	bounds []int64
	counts []int64
	sum    int64
	n      int64
}

// NewHistogram creates a histogram with the given ascending upper bounds
// (LatencyBuckets when bounds is nil).
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum += v
	h.n++
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1), using the nearest-rank method: the target rank
// is round(q*n), clamped to at least 1. Because only the bucket's upper
// bound is reported, results are conservative — the true quantile is at
// most the returned value, never above it — and two quantiles falling in
// the same bucket are indistinguishable (both report that bound; there
// is no intra-bucket interpolation). Observations past the last bound
// report the largest bound (the histogram cannot resolve the overflow
// bucket).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.n == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := int64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // overflow bucket
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one histogram row for dumps.
type Bucket struct {
	UpperBound int64 // -1 for the +Inf overflow bucket
	Count      int64
}

// Buckets returns the bucket rows, ascending, including the overflow.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, 0, len(h.counts))
	for i, c := range h.counts {
		ub := int64(-1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out = append(out, Bucket{UpperBound: ub, Count: c})
	}
	return out
}

// VisitCounters calls fn for every counter, in name order (deterministic).
// The windowed telemetry sampler (internal/obs/timeseries) uses this to
// compute per-window counter deltas without allocating a full Snapshot.
func (g *Registry) VisitCounters(fn func(name string, v int64)) {
	if g == nil {
		return
	}
	names := make([]string, 0, len(g.counters))
	for name := range g.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn(name, g.counters[name].Value())
	}
}

// MetricValue is one row of a registry snapshot.
type MetricValue struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value holds the counter/gauge value, or the histogram count.
	Value int64
	// Hist is set for histograms.
	Hist *Histogram
}

// Snapshot returns every metric, sorted by name (deterministic).
func (g *Registry) Snapshot() []MetricValue {
	if g == nil {
		return nil
	}
	out := make([]MetricValue, 0, len(g.counters)+len(g.gauges)+len(g.hists))
	for name, c := range g.counters {
		out = append(out, MetricValue{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, v := range g.gauges {
		out = append(out, MetricValue{Name: name, Kind: "gauge", Value: v.Value()})
	}
	for name, h := range g.hists {
		out = append(out, MetricValue{Name: name, Kind: "histogram", Value: h.Count(), Hist: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders a metric row compactly (histograms as count/mean).
func (m MetricValue) String() string {
	if m.Kind == "histogram" {
		return fmt.Sprintf("%s: n=%d mean=%v", m.Name, m.Value,
			time.Duration(m.Hist.Mean()).Round(time.Microsecond))
	}
	return fmt.Sprintf("%s: %d", m.Name, m.Value)
}
