package obs

import (
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	for _, v := range []int64{1, 10, 11, 20, 21, 50, 51, 1000} {
		h.Observe(v)
	}
	// v <= 10 -> bucket 0; 11..20 -> 1; 21..50 -> 2; rest overflow.
	b := h.Buckets()
	wantCounts := []int64{2, 2, 2, 2}
	wantBounds := []int64{10, 20, 50, -1}
	if len(b) != 4 {
		t.Fatalf("bucket rows = %d, want 4", len(b))
	}
	for i := range b {
		if b[i].Count != wantCounts[i] || b[i].UpperBound != wantBounds[i] {
			t.Fatalf("bucket %d = %+v, want ub=%d n=%d", i, b[i], wantBounds[i], wantCounts[i])
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1+10+11+20+21+50+51+1000 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket <=10
	}
	for i := 0; i < 10; i++ {
		h.Observe(30) // bucket <=50
	}
	if q := h.Quantile(0.50); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := h.Quantile(0.99); q != 50 {
		t.Fatalf("p99 = %d, want 50", q)
	}
	// Overflow observations report the largest finite bound.
	h2 := NewHistogram([]int64{10})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 10 {
		t.Fatalf("overflow quantile = %d, want 10", q)
	}
}

// TestHistogramQuantileRankSemantics pins the nearest-rank percentile
// behaviour the bench gate depends on (recovery-latency p95 is a gated
// metric): the target rank is round(q*n) clamped to >= 1, the reported
// value is always a bucket upper bound (conservative, never below the
// true quantile), and there is no intra-bucket interpolation.
func TestHistogramQuantileRankSemantics(t *testing.T) {
	// 20 observations, one per bucket-edge-straddling value: ranks are
	// exact so rounding is observable. Buckets: <=10 (10 obs), <=20
	// (5), <=50 (5).
	h := NewHistogram([]int64{10, 20, 50})
	for i := 0; i < 10; i++ {
		h.Observe(10) // exactly on a bound: lands in that bound's bucket
	}
	for i := 0; i < 5; i++ {
		h.Observe(11)
	}
	for i := 0; i < 5; i++ {
		h.Observe(50)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 10}, // rank 10: last observation of the first bucket
		{0.52, 10}, // rank round(10.4) = 10: still the first bucket
		{0.53, 20}, // rank round(10.6) = 11: first observation past it
		{0.75, 20}, // rank 15: last of the middle bucket
		{0.76, 20}, // rank round(15.2) = 15: nearest rank stays in the middle bucket
		{0.78, 50}, // rank round(15.6) = 16: the top bucket
		{0.95, 50},
		{1.00, 50},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", c.q, got, c.want)
		}
	}

	// Quantiles falling in the same bucket are indistinguishable: p90 and
	// p99 of a single-bucket population report the same bound.
	one := NewHistogram([]int64{100, 200})
	for i := 0; i < 1000; i++ {
		one.Observe(int64(150))
	}
	if p90, p99 := one.Quantile(0.90), one.Quantile(0.99); p90 != 200 || p99 != 200 {
		t.Errorf("single-bucket p90/p99 = %d/%d, want 200/200", p90, p99)
	}

	// Tiny populations: rank clamps to 1, so any q maps to the only
	// observation's bucket.
	single := NewHistogram([]int64{10, 20})
	single.Observe(15)
	for _, q := range []float64{0.01, 0.5, 0.999} {
		if got := single.Quantile(q); got != 20 {
			t.Errorf("n=1 Quantile(%g) = %d, want 20", q, got)
		}
	}
	// Empty and nil histograms report 0.
	if got := NewHistogram(nil).Quantile(0.95); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.95); got != 0 {
		t.Errorf("nil Quantile = %d, want 0", got)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]int64{50, 10, 20})
	h.Observe(15)
	b := h.Buckets()
	if b[0].UpperBound != 10 || b[1].UpperBound != 20 || b[1].Count != 1 {
		t.Fatalf("bounds not sorted: %+v", b)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	g := NewRegistry()
	c1 := g.Counter("restarts.eth")
	c1.Add(2)
	if g.Counter("restarts.eth") != c1 {
		t.Fatal("counter not cached")
	}
	if c1.Value() != 2 {
		t.Fatalf("counter = %d", c1.Value())
	}
	g.Gauge("procs").Set(7)
	if g.Gauge("procs").Value() != 7 {
		t.Fatal("gauge lost value")
	}
	h := g.Histogram("lat", nil)
	h.Observe(int64(3 * time.Millisecond))
	if g.Histogram("lat", []int64{1}) != h {
		t.Fatal("histogram not cached")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	g := NewRegistry()
	g.Counter("z").Add(1)
	g.Counter("a").Add(1)
	g.Gauge("m").Set(5)
	snap := g.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot rows = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
}
