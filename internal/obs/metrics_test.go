package obs

import (
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	for _, v := range []int64{1, 10, 11, 20, 21, 50, 51, 1000} {
		h.Observe(v)
	}
	// v <= 10 -> bucket 0; 11..20 -> 1; 21..50 -> 2; rest overflow.
	b := h.Buckets()
	wantCounts := []int64{2, 2, 2, 2}
	wantBounds := []int64{10, 20, 50, -1}
	if len(b) != 4 {
		t.Fatalf("bucket rows = %d, want 4", len(b))
	}
	for i := range b {
		if b[i].Count != wantCounts[i] || b[i].UpperBound != wantBounds[i] {
			t.Fatalf("bucket %d = %+v, want ub=%d n=%d", i, b[i], wantBounds[i], wantCounts[i])
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1+10+11+20+21+50+51+1000 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket <=10
	}
	for i := 0; i < 10; i++ {
		h.Observe(30) // bucket <=50
	}
	if q := h.Quantile(0.50); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := h.Quantile(0.99); q != 50 {
		t.Fatalf("p99 = %d, want 50", q)
	}
	// Overflow observations report the largest finite bound.
	h2 := NewHistogram([]int64{10})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 10 {
		t.Fatalf("overflow quantile = %d, want 10", q)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]int64{50, 10, 20})
	h.Observe(15)
	b := h.Buckets()
	if b[0].UpperBound != 10 || b[1].UpperBound != 20 || b[1].Count != 1 {
		t.Fatalf("bounds not sorted: %+v", b)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	g := NewRegistry()
	c1 := g.Counter("restarts.eth")
	c1.Add(2)
	if g.Counter("restarts.eth") != c1 {
		t.Fatal("counter not cached")
	}
	if c1.Value() != 2 {
		t.Fatalf("counter = %d", c1.Value())
	}
	g.Gauge("procs").Set(7)
	if g.Gauge("procs").Value() != 7 {
		t.Fatal("gauge lost value")
	}
	h := g.Histogram("lat", nil)
	h.Observe(int64(3 * time.Millisecond))
	if g.Histogram("lat", []int64{1}) != h {
		t.Fatal("histogram not cached")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	g := NewRegistry()
	g.Counter("z").Add(1)
	g.Counter("a").Add(1)
	g.Gauge("m").Set(5)
	snap := g.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot rows = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
}
