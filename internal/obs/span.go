package obs

// Causal request tracing. A SpanContext names one span of one trace; the
// kernel carries contexts through IPC rendezvous (stamped at send, adopted
// at receive) so a user-visible operation — a VFS read fanning out through
// MFS to the block driver, a TCP segment flowing app → INET → eth driver —
// becomes a tree of spans in virtual time. Spans a crash interrupts are
// terminated with span.orphan instead of span.end, and the reissued or
// retransmitted successors are linked back with span.link edges
// ("retry-of" to the orphaned predecessor, "recovered-by" to the RS
// recovery-episode span), turning the flat event stream into explainable
// recovery stories.
//
// IDs are allocated from plain recorder counters: the simulation scheduler
// is single-threaded and deterministic, so a fixed seed+workload yields
// identical IDs — and therefore byte-identical exported traces.

import (
	"fmt"
	"sort"

	"resilientos/internal/sim"
)

// SpanContext identifies one span within one trace. The zero value means
// "no context"; it is what propagates when tracing is off.
type SpanContext struct {
	Trace int64
	Span  int64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// StartSpan opens a new span owned by comp. With a valid parent the span
// joins the parent's trace as its child; otherwise it becomes the root of
// a fresh trace. Returns the zero context (and emits nothing) when the
// recorder is nil or span tracing is disabled — callers can propagate the
// result unconditionally.
func (r *Recorder) StartSpan(comp, name string, parent SpanContext) SpanContext {
	if r == nil || r.mask&(1<<uint(KindSpanBegin)) == 0 {
		return SpanContext{}
	}
	r.nextSpan++
	sc := SpanContext{Span: r.nextSpan}
	var pa int64
	if parent.Valid() {
		sc.Trace = parent.Trace
		pa = parent.Span
	} else {
		r.nextTrace++
		sc.Trace = r.nextTrace
	}
	r.emitSpan(KindSpanBegin, comp, name, 0, sc.Trace, sc.Span, pa)
	return sc
}

// EndSpan closes a span normally with the given status (0 = ok). No-op
// for the zero context.
func (r *Recorder) EndSpan(comp string, sc SpanContext, status int64) {
	if r == nil || !sc.Valid() || r.mask&(1<<uint(KindSpanEnd)) == 0 {
		return
	}
	r.emitSpan(KindSpanEnd, comp, "", status, sc.Trace, sc.Span, 0)
}

// OrphanSpan terminates a span that can never complete because a crash
// interrupted it; reason conventionally starts with "crash:". No-op for
// the zero context.
func (r *Recorder) OrphanSpan(comp string, sc SpanContext, reason string) {
	if r == nil || !sc.Valid() || r.mask&(1<<uint(KindSpanOrphan)) == 0 {
		return
	}
	r.emitSpan(KindSpanOrphan, comp, reason, 0, sc.Trace, sc.Span, 0)
}

// LinkSpan records a causal edge from span `from` (the successor, e.g. a
// reissued request) to span `to` (the predecessor it retries, or the
// recovery episode that made the retry possible). kind names the edge:
// "retry-of", "recovered-by". No-op unless both contexts are valid.
func (r *Recorder) LinkSpan(comp string, from, to SpanContext, kind string) {
	if r == nil || !from.Valid() || !to.Valid() || r.mask&(1<<uint(KindSpanLink)) == 0 {
		return
	}
	r.emitSpan(KindSpanLink, comp, kind, 0, from.Trace, from.Span, to.Span)
}

// ---------------------------------------------------------------------
// Span forest reconstruction

// Segments splits a trace at its mark events. Experiments boot a fresh
// recorder per run and emit a mark at each boundary, so span and trace
// IDs are only unique within one segment; consumers that resolve IDs —
// BuildForest, the profiler, the exporter — must process segments
// independently, just as Timeline and the live checker reset at marks.
// Each mark starts a new segment and remains its first event; a trace
// with no marks is a single segment. Subslices alias events.
func Segments(events []Event) [][]Event {
	var segs [][]Event
	start := 0
	for i, e := range events {
		if e.Kind == KindMark && i > start {
			segs = append(segs, events[start:i])
			start = i
		}
	}
	if start < len(events) || len(segs) == 0 {
		segs = append(segs, events[start:])
	}
	return segs
}

// TraceSpan is one reconstructed span of a trace's tree.
type TraceSpan struct {
	ID     int64
	Trace  int64
	Parent int64 // parent span ID; 0 = trace root
	Comp   string
	Name   string
	Start  sim.Time
	End    sim.Time // terminal time; == Start for unterminated spans
	Status int64    // span.end status

	Closed   bool // saw span.end
	Orphaned bool // saw span.orphan
	Reason   string

	Children []*TraceSpan // in begin order
	Links    []Link       // outgoing causal edges (this span is the successor)
}

// Terminated reports whether the span got its terminal event.
func (s *TraceSpan) Terminated() bool { return s.Closed || s.Orphaned }

// Duration is the span's virtual-time extent (0 when unterminated).
func (s *TraceSpan) Duration() sim.Time { return s.End - s.Start }

// Link is a causal edge recorded by span.link.
type Link struct {
	Kind string
	From int64 // successor span ID
	To   int64 // predecessor span ID
}

// Forest is the reconstructed span forest of a trace.
type Forest struct {
	Roots []*TraceSpan // spans without a resolvable parent, in begin order
	ByID  map[int64]*TraceSpan
	Links []Link

	// Problems collects well-formedness violations found while building:
	// duplicate begins, terminals without a begin, double terminals,
	// parents that begin after their children. Empty for a healthy trace.
	Problems []string
}

// BuildForest reconstructs the span forest from a trace's events. Events
// must be in emission order (as every sink preserves). Non-span events
// are ignored. The builder is total: malformed inputs produce Problems
// entries, never panics, so it doubles as the well-formedness check used
// by the invariant tests.
func BuildForest(events []Event) *Forest {
	f := &Forest{ByID: make(map[int64]*TraceSpan)}
	for _, e := range events {
		switch e.Kind {
		case KindSpanBegin:
			if prev, dup := f.ByID[e.Span]; dup {
				f.Problems = append(f.Problems,
					fmt.Sprintf("span %d (%s %q): duplicate begin at t=%d (first t=%d)",
						e.Span, e.Comp, e.Aux, e.T, prev.Start))
				continue
			}
			s := &TraceSpan{
				ID: e.Span, Trace: e.Trace, Parent: e.Parent,
				Comp: e.Comp, Name: e.Aux, Start: e.T, End: e.T,
			}
			f.ByID[e.Span] = s
			if p := f.ByID[e.Parent]; e.Parent != 0 && p != nil {
				if p.Trace != s.Trace {
					f.Problems = append(f.Problems,
						fmt.Sprintf("span %d: trace %d but parent %d is in trace %d",
							s.ID, s.Trace, p.ID, p.Trace))
				}
				if p.Start > s.Start {
					f.Problems = append(f.Problems,
						fmt.Sprintf("span %d begins at t=%d before its parent %d (t=%d)",
							s.ID, s.Start, p.ID, p.Start))
				}
				p.Children = append(p.Children, s)
			} else {
				if e.Parent != 0 {
					f.Problems = append(f.Problems,
						fmt.Sprintf("span %d: parent %d never began", s.ID, e.Parent))
				}
				f.Roots = append(f.Roots, s)
			}
		case KindSpanEnd, KindSpanOrphan:
			s := f.ByID[e.Span]
			if s == nil {
				f.Problems = append(f.Problems,
					fmt.Sprintf("span %d: terminal %v without a begin", e.Span, e.Kind))
				continue
			}
			if s.Terminated() {
				f.Problems = append(f.Problems,
					fmt.Sprintf("span %d: second terminal %v at t=%d", e.Span, e.Kind, e.T))
				continue
			}
			s.End = e.T
			if e.Kind == KindSpanEnd {
				s.Closed = true
				s.Status = e.V1
			} else {
				s.Orphaned = true
				s.Reason = e.Aux
			}
		case KindSpanLink:
			l := Link{Kind: e.Aux, From: e.Span, To: e.Parent}
			f.Links = append(f.Links, l)
			if s := f.ByID[e.Span]; s != nil {
				s.Links = append(s.Links, l)
			}
		}
	}
	return f
}

// Open returns the spans that never got a terminal event, in ID order.
func (f *Forest) Open() []*TraceSpan {
	var out []*TraceSpan
	for _, s := range f.ByID {
		if !s.Terminated() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Check runs the structural well-formedness audit the property tests
// assert on: build-time Problems, plus per-trace single-root and
// ancestry checks. Child IDs always exceed parent IDs (the allocator is
// monotonic), which Check verifies — it is what rules out cycles.
func (f *Forest) Check() []string {
	problems := append([]string(nil), f.Problems...)
	rootByTrace := make(map[int64]int64) // trace -> first declared-root span
	for _, s := range orderedSpans(f) {
		if s.Parent == 0 {
			if first, ok := rootByTrace[s.Trace]; ok {
				problems = append(problems,
					fmt.Sprintf("trace %d: second root span %d (first %d)", s.Trace, s.ID, first))
			} else {
				rootByTrace[s.Trace] = s.ID
			}
		} else if s.Parent >= s.ID {
			problems = append(problems,
				fmt.Sprintf("span %d: parent %d does not precede it", s.ID, s.Parent))
		}
	}
	return problems
}

func orderedSpans(f *Forest) []*TraceSpan {
	out := make([]*TraceSpan, 0, len(f.ByID))
	for _, s := range f.ByID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
