package obs

import (
	"testing"
	"time"

	"resilientos/internal/sim"
)

const ms = sim.Time(time.Millisecond)

func TestTimelineFullSpan(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindRestart, Comp: "eth", V1: 1}, // initial start: no span
		{T: 100 * ms, Kind: KindDefect, Comp: "eth", Aux: "killed", V1: 1},
		{T: 101 * ms, Kind: KindPolicyStart, Comp: "eth"},
		{T: 150 * ms, Kind: KindPolicyExit, Comp: "eth"},
		{T: 150 * ms, Kind: KindRestart, Comp: "eth", V1: 2},
		{T: 270 * ms, Kind: KindReintegrate, Comp: "inet", Aux: "eth"},
	}
	spans := Timeline(events)
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1: %v", len(spans), spans)
	}
	s := spans[0]
	if s.Comp != "eth" || s.Defect != "killed" || s.Open || s.GaveUp {
		t.Fatalf("span = %+v", s)
	}
	if s.Start != 100*ms || s.PolicyStart != 101*ms || s.PolicyEnd != 150*ms ||
		s.Restart != 150*ms || s.Reintegrated != 270*ms {
		t.Fatalf("span times = %+v", s)
	}
	if s.Latency() != 170*ms {
		t.Fatalf("latency = %v, want 170ms", s.Latency())
	}
}

func TestTimelineRestartWithoutReintegration(t *testing.T) {
	events := []Event{
		{T: 10 * ms, Kind: KindDefect, Comp: "chr.audio", Aux: "exit/panic", V1: 1},
		{T: 15 * ms, Kind: KindRestart, Comp: "chr.audio", V1: 2},
	}
	spans := Timeline(events)
	if len(spans) != 1 || spans[0].Latency() != 5*ms {
		t.Fatalf("spans = %v", spans)
	}
}

func TestTimelineGiveUpAndOpen(t *testing.T) {
	events := []Event{
		{T: 10 * ms, Kind: KindDefect, Comp: "a", V1: 4},
		{T: 11 * ms, Kind: KindGiveUp, Comp: "a", V1: 4},
		{T: 20 * ms, Kind: KindDefect, Comp: "b", V1: 1},
		// trace ends with b's recovery unfinished
	}
	spans := Timeline(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if !spans[0].GaveUp || spans[0].Latency() != 0 {
		t.Fatalf("give-up span = %+v", spans[0])
	}
	if !spans[1].Open || spans[1].Latency() != 0 {
		t.Fatalf("open span = %+v", spans[1])
	}
}

func TestTimelineMarkSeparatesRuns(t *testing.T) {
	events := []Event{
		{T: 10 * ms, Kind: KindDefect, Comp: "eth", V1: 1},
		{T: 12 * ms, Kind: KindRestart, Comp: "eth", V1: 2},
		{T: 0, Kind: KindMark, Comp: "run"},
		// Second run: a reintegrate without its own restart must not
		// complete the previous run's span.
		{T: 5 * ms, Kind: KindReintegrate, Comp: "inet", Aux: "eth"},
	}
	spans := Timeline(events)
	if len(spans) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Reintegrated != 0 {
		t.Fatalf("span completed across a run boundary: %+v", spans[0])
	}
}

func TestTimelineBackToBackRecoveries(t *testing.T) {
	events := []Event{
		{T: 10 * ms, Kind: KindDefect, Comp: "eth", V1: 1},
		{T: 12 * ms, Kind: KindRestart, Comp: "eth", V1: 2},
		{T: 20 * ms, Kind: KindReintegrate, Comp: "inet", Aux: "eth"},
		{T: 30 * ms, Kind: KindDefect, Comp: "eth", V1: 2},
		{T: 33 * ms, Kind: KindRestart, Comp: "eth", V1: 3},
		{T: 45 * ms, Kind: KindReintegrate, Comp: "inet", Aux: "eth"},
	}
	spans := Timeline(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Latency() != 10*ms || spans[1].Latency() != 15*ms {
		t.Fatalf("latencies = %v, %v", spans[0].Latency(), spans[1].Latency())
	}
}

func TestRecoveryLatenciesFilter(t *testing.T) {
	spans := []Span{
		{Comp: "a", Start: 1, Restart: 3},
		{Comp: "b", Start: 1, Restart: 2, Reintegrated: 10},
		{Comp: "a", Start: 5, Open: true},
	}
	if got := RecoveryLatencies(spans, "a"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("filtered latencies = %v", got)
	}
	if got := RecoveryLatencies(spans, ""); len(got) != 2 {
		t.Fatalf("all latencies = %v", got)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var lat []sim.Time
	for i := 1; i <= 100; i++ {
		lat = append(lat, sim.Time(i)*ms)
	}
	s := Summarize(lat)
	if s.Count != 100 || s.Min != 1*ms || s.Max != 100*ms {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 50*ms || s.P95 != 95*ms || s.P99 != 99*ms {
		t.Fatalf("percentiles = p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	// Mean of 1..100 ms is 50.5ms.
	if s.Mean != 50*ms+ms/2 {
		t.Fatalf("mean = %v, want 50.5ms", s.Mean)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	one := Summarize([]sim.Time{7 * ms})
	if one.P50 != 7*ms || one.P99 != 7*ms || one.Mean != 7*ms {
		t.Fatalf("single summary = %+v", one)
	}
}
